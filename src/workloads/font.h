/**
 * @file
 * A text-shaping and reflow engine standing in for libgraphite (§6.2).
 *
 * The paper's font benchmark "reflows the text on a page ten times via
 * the sandboxed libgraphite, using multiple font sizes to avoid any
 * effects from font caches". Our engine does real shaping work over
 * sandbox memory: per-glyph advance widths, kerning-pair adjustments,
 * greedy line breaking at word boundaries against a page width, and a
 * per-line vertical layout pass. Different font sizes rescale the metric
 * tables, so each reflow touches fresh table entries like the paper's
 * cache-defeating setup.
 */

#ifndef HFI_WORKLOADS_FONT_H
#define HFI_WORKLOADS_FONT_H

#include <cstdint>
#include <string>

#include "sfi/sandbox.h"

namespace hfi::workloads::font
{

/** Deterministic lorem-ipsum-like text of roughly @p words words. */
std::string makeTestText(std::uint64_t words, std::uint32_t seed);

/** Result of one reflow pass. */
struct ReflowResult
{
    std::uint64_t lines = 0;
    std::uint64_t glyphs = 0;
    std::uint64_t checksum = 0;
};

/**
 * Shape and reflow @p text inside the sandbox at @p font_size (pixels)
 * against a page @p page_width pixels wide.
 */
ReflowResult reflowSandboxed(sfi::Sandbox &sandbox, const std::string &text,
                             std::uint32_t font_size,
                             std::uint32_t page_width);

/**
 * The full §6.2 benchmark body: ten reflows across a cycle of font
 * sizes, as the paper describes.
 * @return combined checksum.
 */
std::uint64_t renderPage(sfi::Sandbox &sandbox, const std::string &text,
                         std::uint32_t page_width);

} // namespace hfi::workloads::font

#endif // HFI_WORKLOADS_FONT_H
