/**
 * @file
 * A block-transform image codec standing in for libjpeg (§6.2, Fig 4).
 *
 * The *encoder* runs host-side (it plays the role of the image file on
 * disk): synthetic images are split into 8x8 blocks, forward-DCT'd in
 * integer arithmetic, quantized by a quality level, and entropy coded
 * with run-length + varint coefficients. The *decoder* runs inside a
 * sandbox: it entropy-decodes from linear memory, dequantizes, runs the
 * inverse transform, and writes pixels into an output buffer it
 * allocates incrementally — which drives memory_grow during decode just
 * like dlmalloc under libjpeg does, the behaviour that makes Fig 4
 * sensitive to the backend's heap-growth cost.
 *
 * Three quality levels mirror the figure's compression levels:
 *  - None: blocks are stored raw (little decode compute);
 *  - Default: moderate quantization;
 *  - Best: heavy quantization (the most compute per output pixel).
 */

#ifndef HFI_WORKLOADS_IMAGE_H
#define HFI_WORKLOADS_IMAGE_H

#include <cstdint>
#include <vector>

#include "sfi/sandbox.h"

namespace hfi::workloads::image
{

/** Compression level, matching Fig 4's {best, default, none}. */
enum class Quality
{
    None,
    Default,
    Best,
};

const char *qualityName(Quality q);

/** An encoded image (host-side artifact, like a .jpg file). */
struct EncodedImage
{
    std::uint32_t width = 0;
    std::uint32_t height = 0;
    Quality quality = Quality::Default;
    std::vector<std::uint8_t> bits;
};

/** Deterministic synthetic test image (gradient + seeded texture). */
std::vector<std::uint8_t> makeTestImage(std::uint32_t width,
                                        std::uint32_t height,
                                        std::uint32_t seed);

/** Encode @p pixels (8-bit grayscale, row-major) host-side. */
EncodedImage encode(const std::vector<std::uint8_t> &pixels,
                    std::uint32_t width, std::uint32_t height,
                    Quality quality);

/**
 * Decode @p img inside @p sandbox.
 *
 * The bitstream is staged into linear memory, then decoded with every
 * access metered; the output buffer is bump-allocated during decode.
 * @return FNV checksum of the decoded pixels.
 */
std::uint64_t decodeSandboxed(sfi::Sandbox &sandbox,
                              const EncodedImage &img);

/**
 * Decode host-side (reference for functional tests).
 * @return decoded pixels.
 */
std::vector<std::uint8_t> decodeReference(const EncodedImage &img);

} // namespace hfi::workloads::image

#endif // HFI_WORKLOADS_IMAGE_H
