#include "workloads/font.h"

#include "workloads/support.h"

namespace hfi::workloads::font
{

namespace
{

const char *const kWords[] = {
    "lorem", "ipsum", "dolor", "sit",   "amet",    "consectetur",
    "adipiscing", "elit", "sed", "do",  "eiusmod", "tempor",
    "incididunt", "ut", "labore", "et", "dolore",  "magna",
    "aliqua", "enim", "ad", "minim",    "veniam",  "quis"};

} // namespace

std::string
makeTestText(std::uint64_t words, std::uint32_t seed)
{
    Rng rng(seed);
    std::string text;
    for (std::uint64_t i = 0; i < words; ++i) {
        if (i)
            text += ' ';
        text += kWords[rng.nextBelow(std::size(kWords))];
    }
    return text;
}

ReflowResult
reflowSandboxed(sfi::Sandbox &s, const std::string &text,
                std::uint32_t font_size, std::uint32_t page_width)
{
    Arena arena(s);

    // Stage the text.
    const std::uint64_t buf = arena.alloc(text.size() + 1);
    for (std::size_t i = 0; i < text.size(); ++i)
        s.store<std::uint8_t>(buf + i,
                              static_cast<std::uint8_t>(text[i]));
    s.store<std::uint8_t>(buf + text.size(), 0);

    // Build metric tables for this font size: advance widths per char
    // and a 32x32 kerning matrix, both scaled by the size so each size
    // touches distinct values (the paper's cache-defeating trick).
    const std::uint64_t advances = arena.alloc(128 * 4);
    const std::uint64_t kerning = arena.alloc(32 * 32 * 2);
    for (int c = 0; c < 128; ++c) {
        const std::uint32_t w =
            font_size * (4 + (c * 7 + font_size) % 5) / 8;
        s.store<std::uint32_t>(advances + c * 4, w);
    }
    for (int a = 0; a < 32; ++a) {
        for (int b = 0; b < 32; ++b) {
            const std::int16_t k = static_cast<std::int16_t>(
                ((a * 31 + b * 17 + font_size) % 7) - 3);
            s.store<std::int16_t>(kerning + (a * 32 + b) * 2, k);
        }
    }

    // Glyph records laid out during shaping: {x u32, y u32, glyph u32}.
    const std::uint64_t glyphs = arena.alloc(text.size() * 12 + 12);

    ReflowResult res;
    Checksum sum;
    std::uint32_t pen_x = 0;
    std::uint32_t pen_y = font_size;
    std::uint8_t prev = 0;
    std::uint64_t word_start_glyph = 0;
    std::uint32_t word_start_x = 0;
    std::uint64_t glyph_count = 0;
    res.lines = 1;

    for (std::size_t i = 0; i <= text.size(); ++i) {
        const std::uint8_t c = s.load<std::uint8_t>(buf + i);
        s.chargeOps(4);
        if (c == ' ' || c == 0) {
            pen_x += font_size / 2;
            prev = 0;
            word_start_glyph = glyph_count;
            word_start_x = pen_x;
            if (c == 0)
                break;
            continue;
        }

        std::uint32_t advance =
            s.load<std::uint32_t>(advances + (c & 127) * 4);
        if (prev) {
            advance = static_cast<std::uint32_t>(
                static_cast<std::int32_t>(advance) +
                s.load<std::int16_t>(kerning +
                                     ((prev & 31) * 32 + (c & 31)) * 2));
        }
        s.chargeOps(6);

        if (pen_x + advance > page_width) {
            // Break the line at the start of the current word and move
            // its already-shaped glyphs down.
            pen_y += font_size * 5 / 4;
            const std::uint32_t shift = word_start_x;
            for (std::uint64_t g = word_start_glyph; g < glyph_count; ++g) {
                const std::uint32_t gx =
                    s.load<std::uint32_t>(glyphs + g * 12);
                s.store<std::uint32_t>(glyphs + g * 12, gx - shift);
                s.store<std::uint32_t>(glyphs + g * 12 + 4, pen_y);
                s.chargeOps(4);
            }
            pen_x -= shift;
            word_start_x = 0;
            ++res.lines;
        }

        s.store<std::uint32_t>(glyphs + glyph_count * 12, pen_x);
        s.store<std::uint32_t>(glyphs + glyph_count * 12 + 4, pen_y);
        s.store<std::uint32_t>(glyphs + glyph_count * 12 + 8, c);
        ++glyph_count;
        pen_x += advance;
        prev = c;
        // Shaping arithmetic: cluster mapping, hinting rounds, mark
        // attachment — real shapers spend most of their time here.
        s.chargeOps(18);
    }

    // "Rasterize": fold every positioned glyph into the checksum, as a
    // stand-in for blitting coverage.
    for (std::uint64_t g = 0; g < glyph_count; ++g) {
        sum.mix(s.load<std::uint32_t>(glyphs + g * 12));
        sum.mix(s.load<std::uint32_t>(glyphs + g * 12 + 4));
        sum.mix(s.load<std::uint32_t>(glyphs + g * 12 + 8));
        s.chargeOps(6);
    }

    res.glyphs = glyph_count;
    res.checksum = sum.value();
    return res;
}

std::uint64_t
renderPage(sfi::Sandbox &sandbox, const std::string &text,
           std::uint32_t page_width)
{
    // §6.2: ten reflows across multiple font sizes.
    static const std::uint32_t kSizes[] = {12, 14, 16, 18, 24};
    Checksum sum;
    for (int pass = 0; pass < 10; ++pass) {
        const std::uint32_t size = kSizes[pass % std::size(kSizes)];
        const ReflowResult res =
            reflowSandboxed(sandbox, text, size, page_width);
        sum.mix(res.checksum);
        sum.mix(res.lines);
    }
    return sum.value();
}

} // namespace hfi::workloads::font
