/**
 * @file
 * Long-running compute kernels standing in for the SPEC CPU 2006 subset
 * the paper runs under Wasm (Fig 3).
 *
 * We cannot ship SPEC sources, so each benchmark is replaced by a
 * miniature analogue with the same computational character — the same
 * reason the paper chose it: 401.bzip2 is block-sorting compression,
 * 429.mcf is pointer-chasing network optimization, 445.gobmk is a
 * big-code board evaluator (the icache-pressure outlier of §6.1), and
 * so on. What Fig 3 measures is the interaction between each kernel's
 * memory-access density and the isolation backend's per-access cost,
 * and that density is the property the analogues preserve.
 */

#ifndef HFI_WORKLOADS_SPEC_LIKE_H
#define HFI_WORKLOADS_SPEC_LIKE_H

#include "workloads/support.h"

namespace hfi::workloads::spec
{

std::uint64_t runBzip2(sfi::Sandbox &s, std::uint64_t scale,
                       std::uint32_t seed);
std::uint64_t runMcf(sfi::Sandbox &s, std::uint64_t scale,
                     std::uint32_t seed);
std::uint64_t runMilc(sfi::Sandbox &s, std::uint64_t scale,
                      std::uint32_t seed);
std::uint64_t runGobmk(sfi::Sandbox &s, std::uint64_t scale,
                       std::uint32_t seed);
std::uint64_t runHmmer(sfi::Sandbox &s, std::uint64_t scale,
                       std::uint32_t seed);
std::uint64_t runSjeng(sfi::Sandbox &s, std::uint64_t scale,
                       std::uint32_t seed);
std::uint64_t runLibquantum(sfi::Sandbox &s, std::uint64_t scale,
                            std::uint32_t seed);
std::uint64_t runH264ref(sfi::Sandbox &s, std::uint64_t scale,
                         std::uint32_t seed);
std::uint64_t runLbm(sfi::Sandbox &s, std::uint64_t scale,
                     std::uint32_t seed);
std::uint64_t runAstar(sfi::Sandbox &s, std::uint64_t scale,
                       std::uint32_t seed);
std::uint64_t runXalancbmk(sfi::Sandbox &s, std::uint64_t scale,
                           std::uint32_t seed);

/** The Fig 3 benchmark set (11 kernels). */
const std::vector<Workload> &suite();

} // namespace hfi::workloads::spec

#endif // HFI_WORKLOADS_SPEC_LIKE_H
