#include "workloads/image.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "workloads/support.h"

namespace hfi::workloads::image
{

namespace
{

/** Zig-zag scan order for an 8x8 block. */
constexpr int kZigzag[64] = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

/** Quantization step for coefficient (u, v) at a quality level. */
int
quantStep(Quality q, int u, int v)
{
    switch (q) {
      case Quality::None:
        return 1;
      case Quality::Default:
        return 8 + (u + v) * 4;
      case Quality::Best:
        return 16 + (u + v) * 12;
    }
    return 1;
}

/**
 * Integer DCT basis, scaled by 2^10. C[u][x] = c(u) * cos((2x+1)u*pi/16).
 */
const std::int32_t *
dctBasis()
{
    static std::int32_t basis[64];
    static bool init = false;
    if (!init) {
        for (int u = 0; u < 8; ++u) {
            const double cu = u == 0 ? std::sqrt(0.5) : 1.0;
            for (int x = 0; x < 8; ++x) {
                basis[u * 8 + x] = static_cast<std::int32_t>(
                    std::lround(cu * std::cos((2 * x + 1) * u * M_PI / 16.0) *
                                1024.0 * 0.5));
            }
        }
        init = true;
    }
    return basis;
}

/** Forward 8x8 DCT (host-side, integer). */
void
fdct(const std::int32_t in[64], std::int32_t out[64])
{
    const std::int32_t *c = dctBasis();
    std::int32_t tmp[64];
    for (int u = 0; u < 8; ++u) {
        for (int x = 0; x < 8; ++x) {
            std::int64_t acc = 0;
            for (int k = 0; k < 8; ++k)
                acc += static_cast<std::int64_t>(c[u * 8 + k]) * in[k * 8 + x];
            tmp[u * 8 + x] = static_cast<std::int32_t>(acc >> 10);
        }
    }
    for (int u = 0; u < 8; ++u) {
        for (int v = 0; v < 8; ++v) {
            std::int64_t acc = 0;
            for (int k = 0; k < 8; ++k)
                acc += static_cast<std::int64_t>(c[v * 8 + k]) * tmp[u * 8 + k];
            out[u * 8 + v] = static_cast<std::int32_t>(acc >> 10);
        }
    }
}

/** Append an unsigned LEB128-style varint. */
void
putVarint(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

/** Zig-zag-encode a signed value into unsigned varint space. */
std::uint32_t
zigzagEncode(std::int32_t v)
{
    return (static_cast<std::uint32_t>(v) << 1) ^
           static_cast<std::uint32_t>(v >> 31);
}

std::int32_t
zigzagDecode(std::uint32_t v)
{
    return static_cast<std::int32_t>(v >> 1) ^
           -static_cast<std::int32_t>(v & 1);
}

constexpr std::uint8_t kEob = 0xff;

} // namespace

const char *
qualityName(Quality q)
{
    switch (q) {
      case Quality::None: return "none";
      case Quality::Default: return "default";
      case Quality::Best: return "best";
    }
    return "?";
}

std::vector<std::uint8_t>
makeTestImage(std::uint32_t width, std::uint32_t height, std::uint32_t seed)
{
    std::vector<std::uint8_t> px(static_cast<std::size_t>(width) * height);
    Rng rng(seed);
    // Smooth gradient plus block texture plus sparse noise — enough
    // structure to compress, enough detail to keep coefficients alive.
    for (std::uint32_t y = 0; y < height; ++y) {
        for (std::uint32_t x = 0; x < width; ++x) {
            int v = static_cast<int>((x * 255) / width / 2 +
                                     (y * 255) / height / 2);
            v += static_cast<int>((x / 16 + y / 16) % 2 ? 12 : -12);
            if (rng.nextBelow(31) == 0)
                v += static_cast<int>(rng.nextBelow(32)) - 16;
            px[static_cast<std::size_t>(y) * width + x] =
                static_cast<std::uint8_t>(std::clamp(v, 0, 255));
        }
    }
    return px;
}

EncodedImage
encode(const std::vector<std::uint8_t> &pixels, std::uint32_t width,
       std::uint32_t height, Quality quality)
{
    EncodedImage img;
    img.width = width;
    img.height = height;
    img.quality = quality;

    for (std::uint32_t by = 0; by < height; by += 8) {
        for (std::uint32_t bx = 0; bx < width; bx += 8) {
            std::int32_t block[64];
            for (int y = 0; y < 8; ++y) {
                for (int x = 0; x < 8; ++x) {
                    const std::uint32_t sy = std::min(by + y, height - 1);
                    const std::uint32_t sx = std::min(bx + x, width - 1);
                    block[y * 8 + x] =
                        pixels[static_cast<std::size_t>(sy) * width + sx] -
                        128;
                }
            }
            std::int32_t coef[64];
            fdct(block, coef);

            // Quantize, zig-zag, run-length encode.
            int run = 0;
            for (int i = 0; i < 64; ++i) {
                const int at = kZigzag[i];
                const int q = quantStep(quality, at / 8, at % 8);
                const std::int32_t v = coef[at] / q;
                if (v == 0) {
                    ++run;
                    continue;
                }
                while (run > 62) {
                    img.bits.push_back(62);
                    putVarint(img.bits, zigzagEncode(0));
                    run -= 62;
                }
                img.bits.push_back(static_cast<std::uint8_t>(run));
                putVarint(img.bits, zigzagEncode(v));
                run = 0;
            }
            img.bits.push_back(kEob);
        }
    }
    return img;
}

std::uint64_t
decodeSandboxed(sfi::Sandbox &s, const EncodedImage &img)
{
    Arena arena(s);

    // Stage the bitstream (playing the role of the bytes handed to the
    // sandboxed decoder by the host): staged via the metered store path
    // because the host must copy them into sandbox memory.
    const std::uint64_t bits = arena.alloc(img.bits.size() + 8);
    for (std::size_t i = 0; i < img.bits.size(); ++i)
        s.store<std::uint8_t>(bits + i, img.bits[i]);

    const std::uint64_t out =
        arena.alloc(static_cast<std::uint64_t>(img.width) * img.height);

    const std::uint64_t pixel_count =
        static_cast<std::uint64_t>(img.width) * img.height;
    auto checksumOutput = [&] {
        // Row-major checksum of the decoded image, read back through
        // the metered path (the host consuming the decoder's output).
        Checksum sum;
        for (std::uint64_t i = 0; i < pixel_count; ++i) {
            sum.mix(s.load<std::uint8_t>(out + i));
            s.chargeOps(2);
        }
        return sum.value();
    };

    const std::int32_t *c = dctBasis();
    std::uint64_t cursor = 0;
    for (std::uint32_t by = 0; by < img.height; by += 8) {
        for (std::uint32_t bx = 0; bx < img.width; bx += 8) {
            // Entropy decode one block.
            std::int32_t coef[64] = {};
            int at = 0;
            while (true) {
                const std::uint8_t run = s.load<std::uint8_t>(bits + cursor++);
                s.chargeOps(3);
                if (run == kEob)
                    break;
                at += run;
                std::uint32_t raw = 0;
                int shift = 0;
                while (true) {
                    const std::uint8_t b =
                        s.load<std::uint8_t>(bits + cursor++);
                    raw |= static_cast<std::uint32_t>(b & 0x7f) << shift;
                    shift += 7;
                    s.chargeOps(4);
                    if (!(b & 0x80))
                        break;
                }
                const int zz = kZigzag[at];
                const int q = quantStep(img.quality, zz / 8, zz % 8);
                coef[zz] = zigzagDecode(raw) * q;
                ++at;
                s.chargeOps(5);
            }

            // Inverse DCT (rows then columns).
            std::int32_t tmp[64];
            for (int x = 0; x < 8; ++x) {
                for (int yy = 0; yy < 8; ++yy) {
                    std::int64_t acc = 0;
                    for (int u = 0; u < 8; ++u)
                        acc += static_cast<std::int64_t>(c[u * 8 + yy]) *
                               coef[u * 8 + x];
                    tmp[yy * 8 + x] = static_cast<std::int32_t>(acc >> 10);
                }
            }
            for (int yy = 0; yy < 8; ++yy) {
                for (int x = 0; x < 8; ++x) {
                    std::int64_t acc = 0;
                    for (int v = 0; v < 8; ++v)
                        acc += static_cast<std::int64_t>(c[v * 8 + x]) *
                               tmp[yy * 8 + v];
                    const std::int32_t px =
                        static_cast<std::int32_t>(acc >> 10) + 128;
                    const std::uint32_t oy = by + static_cast<std::uint32_t>(yy);
                    const std::uint32_t ox = bx + static_cast<std::uint32_t>(x);
                    if (oy < img.height && ox < img.width) {
                        const std::uint8_t clamped = static_cast<std::uint8_t>(
                            std::clamp(px, 0, 255));
                        s.store<std::uint8_t>(
                            out + static_cast<std::uint64_t>(oy) * img.width +
                                ox,
                            clamped);
                    }
                }
                s.chargeOps(8 * 10);
            }
            s.chargeOps(8 * 8 * 2);
        }
    }
    return checksumOutput();
}

std::vector<std::uint8_t>
decodeReference(const EncodedImage &img)
{
    std::vector<std::uint8_t> out(
        static_cast<std::size_t>(img.width) * img.height, 0);
    const std::int32_t *c = dctBasis();
    std::size_t cursor = 0;
    for (std::uint32_t by = 0; by < img.height; by += 8) {
        for (std::uint32_t bx = 0; bx < img.width; bx += 8) {
            std::int32_t coef[64] = {};
            int at = 0;
            while (true) {
                const std::uint8_t run = img.bits[cursor++];
                if (run == kEob)
                    break;
                at += run;
                std::uint32_t raw = 0;
                int shift = 0;
                while (true) {
                    const std::uint8_t b = img.bits[cursor++];
                    raw |= static_cast<std::uint32_t>(b & 0x7f) << shift;
                    shift += 7;
                    if (!(b & 0x80))
                        break;
                }
                const int zz = kZigzag[at];
                coef[zz] = zigzagDecode(raw) *
                           quantStep(img.quality, zz / 8, zz % 8);
                ++at;
            }
            std::int32_t tmp[64];
            for (int x = 0; x < 8; ++x) {
                for (int yy = 0; yy < 8; ++yy) {
                    std::int64_t acc = 0;
                    for (int u = 0; u < 8; ++u)
                        acc += static_cast<std::int64_t>(c[u * 8 + yy]) *
                               coef[u * 8 + x];
                    tmp[yy * 8 + x] = static_cast<std::int32_t>(acc >> 10);
                }
            }
            for (int yy = 0; yy < 8; ++yy) {
                for (int x = 0; x < 8; ++x) {
                    std::int64_t acc = 0;
                    for (int v = 0; v < 8; ++v)
                        acc += static_cast<std::int64_t>(c[v * 8 + x]) *
                               tmp[yy * 8 + v];
                    const std::int32_t px =
                        static_cast<std::int32_t>(acc >> 10) + 128;
                    const std::uint32_t oy = by + static_cast<std::uint32_t>(yy);
                    const std::uint32_t ox = bx + static_cast<std::uint32_t>(x);
                    if (oy < img.height && ox < img.width) {
                        out[static_cast<std::size_t>(oy) * img.width + ox] =
                            static_cast<std::uint8_t>(std::clamp(px, 0, 255));
                    }
                }
            }
        }
    }
    return out;
}

} // namespace hfi::workloads::image
