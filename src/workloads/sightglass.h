/**
 * @file
 * The Sightglass kernel suite (§5.2, Fig 2).
 *
 * Sightglass is the set of short Wasm-friendly programs — "primitives
 * from cryptography, mathematics, string manipulation, and control
 * flow" — that the paper uses to cross-validate its gem5 simulation
 * against its compiler-based emulation. We implement the sixteen kernels
 * Fig 2 reports as real algorithms over sandbox linear memory. Each
 * takes a scale parameter (iteration count / buffer size knob) and a
 * seed, and returns a checksum that is independent of the isolation
 * backend — the property the functional tests assert.
 */

#ifndef HFI_WORKLOADS_SIGHTGLASS_H
#define HFI_WORKLOADS_SIGHTGLASS_H

#include "workloads/support.h"

namespace hfi::workloads::sightglass
{

std::uint64_t runBlake3Scalar(sfi::Sandbox &s, std::uint64_t scale,
                              std::uint32_t seed);
std::uint64_t runAckermann(sfi::Sandbox &s, std::uint64_t scale,
                           std::uint32_t seed);
std::uint64_t runBase64(sfi::Sandbox &s, std::uint64_t scale,
                        std::uint32_t seed);
std::uint64_t runCtype(sfi::Sandbox &s, std::uint64_t scale,
                       std::uint32_t seed);
std::uint64_t runFib2(sfi::Sandbox &s, std::uint64_t scale,
                      std::uint32_t seed);
std::uint64_t runGimli(sfi::Sandbox &s, std::uint64_t scale,
                       std::uint32_t seed);
std::uint64_t runKeccak(sfi::Sandbox &s, std::uint64_t scale,
                        std::uint32_t seed);
std::uint64_t runMemmove(sfi::Sandbox &s, std::uint64_t scale,
                         std::uint32_t seed);
std::uint64_t runMinicsv(sfi::Sandbox &s, std::uint64_t scale,
                         std::uint32_t seed);
std::uint64_t runNestedloop(sfi::Sandbox &s, std::uint64_t scale,
                            std::uint32_t seed);
std::uint64_t runRandom(sfi::Sandbox &s, std::uint64_t scale,
                        std::uint32_t seed);
std::uint64_t runRatelimit(sfi::Sandbox &s, std::uint64_t scale,
                           std::uint32_t seed);
std::uint64_t runSieve(sfi::Sandbox &s, std::uint64_t scale,
                       std::uint32_t seed);
std::uint64_t runSwitch(sfi::Sandbox &s, std::uint64_t scale,
                        std::uint32_t seed);
std::uint64_t runXblabla20(sfi::Sandbox &s, std::uint64_t scale,
                           std::uint32_t seed);
std::uint64_t runXchacha20(sfi::Sandbox &s, std::uint64_t scale,
                           std::uint32_t seed);

/** The sixteen Fig 2 kernels, in the figure's order. */
const std::vector<Workload> &suite();

} // namespace hfi::workloads::sightglass

#endif // HFI_WORKLOADS_SIGHTGLASS_H
