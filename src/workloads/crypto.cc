#include "workloads/crypto.h"

#include <bit>
#include <cstring>

#include "workloads/support.h"

namespace hfi::workloads::crypto
{

namespace
{

constexpr std::array<std::uint32_t, 64> kSha256K = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::array<std::uint32_t, 8> kSha256Init = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

/** One SHA-256 compression round over a prepared 64-byte block. */
void
sha256Compress(std::array<std::uint32_t, 8> &h, const std::uint8_t *block)
{
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
        w[i] = static_cast<std::uint32_t>(block[4 * i]) << 24 |
               static_cast<std::uint32_t>(block[4 * i + 1]) << 16 |
               static_cast<std::uint32_t>(block[4 * i + 2]) << 8 |
               static_cast<std::uint32_t>(block[4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
        const std::uint32_t s0 = std::rotr(w[i - 15], 7) ^
                                 std::rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
        const std::uint32_t s1 = std::rotr(w[i - 2], 17) ^
                                 std::rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    std::uint32_t a = h[0], b = h[1], c = h[2], d = h[3];
    std::uint32_t e = h[4], f = h[5], g = h[6], hh = h[7];
    for (int i = 0; i < 64; ++i) {
        const std::uint32_t s1 =
            std::rotr(e, 6) ^ std::rotr(e, 11) ^ std::rotr(e, 25);
        const std::uint32_t ch = (e & f) ^ (~e & g);
        const std::uint32_t t1 = hh + s1 + ch + kSha256K[i] + w[i];
        const std::uint32_t s0 =
            std::rotr(a, 2) ^ std::rotr(a, 13) ^ std::rotr(a, 22);
        const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        const std::uint32_t t2 = s0 + maj;
        hh = g; g = f; f = e; e = d + t1;
        d = c; c = b; b = a; a = t1 + t2;
    }
    h[0] += a; h[1] += b; h[2] += c; h[3] += d;
    h[4] += e; h[5] += f; h[6] += g; h[7] += hh;
}

/** Finish padding + length and squeeze the digest. */
std::array<std::uint8_t, 32>
sha256Finish(std::array<std::uint32_t, 8> &h, std::uint8_t *tail,
             std::size_t tail_len, std::uint64_t total_len)
{
    std::uint8_t block[128] = {};
    std::memcpy(block, tail, tail_len);
    block[tail_len] = 0x80;
    const std::size_t blocks = tail_len + 9 <= 64 ? 1 : 2;
    const std::uint64_t bit_len = total_len * 8;
    for (int i = 0; i < 8; ++i)
        block[blocks * 64 - 1 - i] = static_cast<std::uint8_t>(bit_len >> (8 * i));
    sha256Compress(h, block);
    if (blocks == 2)
        sha256Compress(h, block + 64);

    std::array<std::uint8_t, 32> digest;
    for (int i = 0; i < 8; ++i) {
        digest[4 * i] = static_cast<std::uint8_t>(h[i] >> 24);
        digest[4 * i + 1] = static_cast<std::uint8_t>(h[i] >> 16);
        digest[4 * i + 2] = static_cast<std::uint8_t>(h[i] >> 8);
        digest[4 * i + 3] = static_cast<std::uint8_t>(h[i]);
    }
    return digest;
}

/** ChaCha20 quarter round. */
inline void
quarterRound(std::uint32_t &a, std::uint32_t &b, std::uint32_t &c,
             std::uint32_t &d)
{
    a += b; d ^= a; d = std::rotl(d, 16);
    c += d; b ^= c; b = std::rotl(b, 12);
    a += b; d ^= a; d = std::rotl(d, 8);
    c += d; b ^= c; b = std::rotl(b, 7);
}

/** Core ChaCha20 block into @p out (16 words). */
void
chachaCore(const std::uint32_t state[16], std::uint32_t out[16])
{
    std::uint32_t x[16];
    std::memcpy(x, state, sizeof(x));
    for (int round = 0; round < 10; ++round) {
        quarterRound(x[0], x[4], x[8], x[12]);
        quarterRound(x[1], x[5], x[9], x[13]);
        quarterRound(x[2], x[6], x[10], x[14]);
        quarterRound(x[3], x[7], x[11], x[15]);
        quarterRound(x[0], x[5], x[10], x[15]);
        quarterRound(x[1], x[6], x[11], x[12]);
        quarterRound(x[2], x[7], x[8], x[13]);
        quarterRound(x[3], x[4], x[9], x[14]);
    }
    for (int i = 0; i < 16; ++i)
        out[i] = x[i] + state[i];
}

std::uint32_t
readLe32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
}

} // namespace

std::array<std::uint8_t, 32>
sha256(const std::uint8_t *data, std::size_t len)
{
    std::array<std::uint32_t, 8> h = kSha256Init;
    std::size_t off = 0;
    while (len - off >= 64) {
        sha256Compress(h, data + off);
        off += 64;
    }
    std::uint8_t tail[64];
    // len == 0 arrives with data == nullptr; memcpy requires non-null
    // pointers even for a zero-byte copy.
    if (len - off > 0)
        std::memcpy(tail, data + off, len - off);
    return sha256Finish(h, tail, len - off, len);
}

std::uint64_t
sha256Sandboxed(sfi::Sandbox &sandbox, std::uint64_t in_off,
                std::uint64_t len, std::uint64_t out_off)
{
    std::array<std::uint32_t, 8> h = kSha256Init;
    std::uint8_t block[64];
    std::uint64_t off = 0;
    while (len - off >= 64) {
        for (int i = 0; i < 64; i += 8) {
            const std::uint64_t v = sandbox.load<std::uint64_t>(in_off + off + i);
            std::memcpy(block + i, &v, 8);
        }
        sha256Compress(h, block);
        // The compression function is ~64 rounds of ~12 ALU ops plus
        // the message schedule.
        sandbox.chargeOps(64 * 12 + 48 * 8);
        off += 64;
    }
    std::uint8_t tail[64];
    for (std::uint64_t i = 0; i < len - off; ++i)
        tail[i] = sandbox.load<std::uint8_t>(in_off + off + i);
    const auto digest = sha256Finish(h, tail, len - off, len);
    sandbox.chargeOps(64 * 12 + 48 * 8);
    for (int i = 0; i < 32; ++i)
        sandbox.store<std::uint8_t>(out_off + i, digest[i]);

    Checksum sum;
    for (int i = 0; i < 32; ++i)
        sum.mix(digest[i]);
    return sum.value();
}

std::array<std::uint8_t, 64>
chacha20Block(const std::array<std::uint8_t, 32> &key,
              const std::array<std::uint8_t, 12> &nonce,
              std::uint32_t counter)
{
    std::uint32_t state[16] = {0x61707865, 0x3320646e, 0x79622d32,
                               0x6b206574};
    for (int i = 0; i < 8; ++i)
        state[4 + i] = readLe32(key.data() + 4 * i);
    state[12] = counter;
    for (int i = 0; i < 3; ++i)
        state[13 + i] = readLe32(nonce.data() + 4 * i);

    std::uint32_t out[16];
    chachaCore(state, out);

    std::array<std::uint8_t, 64> bytes;
    for (int i = 0; i < 16; ++i) {
        bytes[4 * i] = static_cast<std::uint8_t>(out[i]);
        bytes[4 * i + 1] = static_cast<std::uint8_t>(out[i] >> 8);
        bytes[4 * i + 2] = static_cast<std::uint8_t>(out[i] >> 16);
        bytes[4 * i + 3] = static_cast<std::uint8_t>(out[i] >> 24);
    }
    return bytes;
}

std::uint64_t
chacha20Sandboxed(sfi::Sandbox &sandbox, std::uint64_t data_off,
                  std::uint64_t len, std::uint32_t seed)
{
    std::array<std::uint8_t, 32> key;
    std::array<std::uint8_t, 12> nonce;
    Rng rng(seed);
    for (auto &b : key)
        b = static_cast<std::uint8_t>(rng.next());
    for (auto &b : nonce)
        b = static_cast<std::uint8_t>(rng.next());

    Checksum sum;
    std::uint32_t counter = 1;
    for (std::uint64_t off = 0; off < len; off += 64, ++counter) {
        const auto stream = chacha20Block(key, nonce, counter);
        sandbox.chargeOps(20 * 4 * 4 + 16); // 10 double-rounds + feed-forward
        const std::uint64_t n = std::min<std::uint64_t>(64, len - off);
        for (std::uint64_t i = 0; i < n; ++i) {
            const std::uint8_t b =
                sandbox.load<std::uint8_t>(data_off + off + i) ^ stream[i];
            sandbox.store<std::uint8_t>(data_off + off + i, b);
            sum.mix(b);
        }
    }
    return sum.value();
}

} // namespace hfi::workloads::crypto
