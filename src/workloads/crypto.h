/**
 * @file
 * Real cryptographic primitives: SHA-256 and ChaCha20.
 *
 * These do genuine work — the host-side variants are bit-exact
 * implementations tested against published vectors, and the sandboxed
 * variants stream their data through Sandbox::load/store so every byte
 * is isolation-checked and cost-metered. They power the Sightglass
 * xchacha20 kernel (Fig 2), the Check-SHA-256 FaaS workload (Table 1),
 * and the NGINX "OpenSSL" session layer (Fig 5).
 */

#ifndef HFI_WORKLOADS_CRYPTO_H
#define HFI_WORKLOADS_CRYPTO_H

#include <array>
#include <cstdint>
#include <vector>

#include "sfi/sandbox.h"

namespace hfi::workloads::crypto
{

/** SHA-256 of @p data (host-side reference). */
std::array<std::uint8_t, 32> sha256(const std::uint8_t *data,
                                    std::size_t len);

/**
 * SHA-256 over @p len bytes at @p in_off of the sandbox memory; the
 * 32-byte digest is stored at @p out_off.
 * @return FNV checksum of the digest.
 */
std::uint64_t sha256Sandboxed(sfi::Sandbox &sandbox, std::uint64_t in_off,
                              std::uint64_t len, std::uint64_t out_off);

/** One ChaCha20 block (host-side reference, RFC 8439 semantics). */
std::array<std::uint8_t, 64> chacha20Block(
    const std::array<std::uint8_t, 32> &key,
    const std::array<std::uint8_t, 12> &nonce, std::uint32_t counter);

/**
 * XOR the ChaCha20 keystream over @p len bytes at @p data_off in the
 * sandbox (encrypt in place). Key/nonce are synthesized from @p seed.
 * @return FNV checksum of the ciphertext.
 */
std::uint64_t chacha20Sandboxed(sfi::Sandbox &sandbox,
                                std::uint64_t data_off, std::uint64_t len,
                                std::uint32_t seed);

} // namespace hfi::workloads::crypto

#endif // HFI_WORKLOADS_CRYPTO_H
