/**
 * @file
 * The four FaaS request handlers of Table 1: XML-to-JSON transcoding,
 * image classification, SHA-256 checking, and templated HTML rendering.
 *
 * Each handler consumes a request payload staged into sandbox memory and
 * produces a response, doing real work (parsing, fixed-point inference,
 * hashing, string assembly) through the metered access path. The Table 1
 * bench runs them under a simulated webserver with different isolation /
 * Spectre-protection schemes; the workloads themselves are scheme-
 * agnostic.
 */

#ifndef HFI_WORKLOADS_FAAS_WORKLOADS_H
#define HFI_WORKLOADS_FAAS_WORKLOADS_H

#include <cstdint>
#include <string>
#include <vector>

#include "sfi/sandbox.h"

namespace hfi::workloads::faas
{

/** Deterministic XML request document of roughly @p records records. */
std::string makeXmlDocument(std::uint64_t records, std::uint32_t seed);

/**
 * Parse the XML request at in_off/in_len and serialize it as JSON into
 * an output buffer.
 * @return FNV checksum of the JSON bytes.
 */
std::uint64_t xmlToJson(sfi::Sandbox &s, std::uint64_t in_off,
                        std::uint64_t in_len);

/**
 * Classify a @p side x @p side grayscale image with a small fixed-point
 * convolutional network (weights synthesized from @p seed).
 * @return winning class index mixed with the logit checksum.
 */
std::uint64_t classifyImage(sfi::Sandbox &s, std::uint64_t img_off,
                            std::uint32_t side, std::uint32_t seed);

/**
 * Check the SHA-256 of the payload at in_off/in_len against an expected
 * digest at digest_off (the Table 1 "Check SHA-256" handler).
 * @return 1 if the digest matches, else 0 (mixed with digest checksum).
 */
std::uint64_t checkSha256(sfi::Sandbox &s, std::uint64_t in_off,
                          std::uint64_t in_len, std::uint64_t digest_off);

/** Deterministic HTML template with {{placeholders}} and {{#loops}}. */
std::string makeHtmlTemplate(std::uint32_t seed);

/**
 * Render the template at tpl_off/tpl_len with @p rows data rows into an
 * output buffer ({{name}} substitution plus {{#each}} expansion).
 * @return FNV checksum of the rendered bytes.
 */
std::uint64_t renderTemplate(sfi::Sandbox &s, std::uint64_t tpl_off,
                             std::uint64_t tpl_len, std::uint64_t rows,
                             std::uint32_t seed);

} // namespace hfi::workloads::faas

#endif // HFI_WORKLOADS_FAAS_WORKLOADS_H
