/**
 * @file
 * Shared workload plumbing: an in-sandbox bump allocator, a deterministic
 * RNG, and the Workload descriptor used by benches and tests.
 *
 * Workloads are real algorithms whose data lives in sandbox linear
 * memory — every byte moves through Sandbox::load/store so the isolation
 * backend checks and charges each access — and whose ALU work is metered
 * with Sandbox::chargeOps. Each kernel returns a checksum so functional
 * correctness is testable independently of the backend.
 */

#ifndef HFI_WORKLOADS_SUPPORT_H
#define HFI_WORKLOADS_SUPPORT_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sfi/sandbox.h"

namespace hfi::workloads
{

/** xorshift64* — deterministic, seedable, fast. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state(seed ? seed : 0x9e3779b9) {}

    std::uint64_t
    next()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545f4914f6cdd1dULL;
    }

    /** Uniform in [0, n). */
    std::uint64_t nextBelow(std::uint64_t n) { return next() % n; }

  private:
    std::uint64_t state;
};

/**
 * Bump allocator over a sandbox's linear memory. Grows the memory in
 * 64 KiB Wasm pages on demand — exactly how dlmalloc-on-Wasm drives
 * memory_grow, which is what makes allocation-heavy workloads (image
 * decoding, §6.2) sensitive to the backend's growth cost.
 */
class Arena
{
  public:
    explicit Arena(sfi::Sandbox &sandbox, std::uint64_t start = 64)
        : sandbox(sandbox), top(start)
    {
    }

    /** Allocate @p bytes (8-byte aligned); grows memory as needed.
     *  Growth requests are rounded up to 8 Wasm pages (512 KiB), the
     *  chunked memory_grow pattern dlmalloc-on-Wasm produces. */
    std::uint64_t
    alloc(std::uint64_t bytes)
    {
        const std::uint64_t addr = (top + 7) & ~7ULL;
        top = addr + bytes;
        if (top > sandbox.memory().size()) {
            const std::uint64_t need =
                (top - sandbox.memory().size() + sfi::kWasmPageSize - 1) /
                sfi::kWasmPageSize;
            const std::uint64_t chunk = (need + 7) & ~7ULL;
            if (sandbox.memoryGrow(chunk) < 0 &&
                sandbox.memoryGrow(need) < 0) {
                throw sfi::SandboxTrap(top, 0, true); // out of memory
            }
        }
        return addr;
    }

    /** Current high-water mark. */
    std::uint64_t used() const { return top; }

  private:
    sfi::Sandbox &sandbox;
    std::uint64_t top;
};

/** FNV-1a accumulator for workload checksums. */
class Checksum
{
  public:
    void
    mix(std::uint64_t v)
    {
        hash ^= v;
        hash *= 0x100000001b3ULL;
    }

    std::uint64_t value() const { return hash; }

  private:
    std::uint64_t hash = 0xcbf29ce484222325ULL;
};

/** A named kernel plus the metadata benches need to run it. */
struct Workload
{
    std::string name;
    /**
     * Instruction-cache sensitivity (0..100) fed to SandboxOptions:
     * how much this kernel's code footprint suffers from hmov's longer
     * encodings (§6.1 — 445.gobmk is the paper's outlier).
     */
    unsigned icacheSensitivity = 0;
    /** Kernel entry point: (sandbox, scale, seed) -> checksum. */
    std::function<std::uint64_t(sfi::Sandbox &, std::uint64_t,
                                std::uint32_t)>
        run;
};

} // namespace hfi::workloads

#endif // HFI_WORKLOADS_SUPPORT_H
