#include "workloads/spec_like.h"

#include <algorithm>
#include <bit>

namespace hfi::workloads::spec
{

namespace
{

void
fillRandom(sfi::Sandbox &s, std::uint64_t off, std::uint64_t len,
           std::uint32_t seed)
{
    Rng rng(seed);
    std::uint64_t i = 0;
    for (; i + 8 <= len; i += 8)
        s.store<std::uint64_t>(off + i, rng.next());
    for (; i < len; ++i)
        s.store<std::uint8_t>(off + i, static_cast<std::uint8_t>(rng.next()));
}

} // namespace

std::uint64_t
runBzip2(sfi::Sandbox &s, std::uint64_t scale, std::uint32_t seed)
{
    // Block compression: run-length encode, move-to-front transform,
    // then a frequency-weighted checksum — the byte-granular
    // transform-heavy profile of 401.bzip2.
    Arena arena(s);
    const std::uint64_t len = 32 * 1024 * scale;
    const std::uint64_t src = arena.alloc(len);
    const std::uint64_t mtf = arena.alloc(256);
    const std::uint64_t out = arena.alloc(len * 2 + 64);

    // Compressible input: runs of slowly varying bytes.
    Rng rng(seed);
    std::uint8_t current = 0;
    for (std::uint64_t i = 0; i < len; ++i) {
        if (rng.nextBelow(8) == 0)
            current = static_cast<std::uint8_t>(rng.nextBelow(64));
        s.store<std::uint8_t>(src + i, current);
    }
    for (int i = 0; i < 256; ++i)
        s.store<std::uint8_t>(mtf + i, static_cast<std::uint8_t>(i));

    // RLE pass.
    std::uint64_t at = 0;
    std::uint64_t i = 0;
    while (i < len) {
        const std::uint8_t b = s.load<std::uint8_t>(src + i);
        std::uint64_t run = 1;
        while (i + run < len && run < 255 &&
               s.load<std::uint8_t>(src + i + run) == b) {
            ++run;
            s.chargeOps(3);
        }
        s.store<std::uint8_t>(out + at++, b);
        s.store<std::uint8_t>(out + at++, static_cast<std::uint8_t>(run));
        i += run;
        s.chargeOps(6);
    }

    // Move-to-front over the RLE output.
    std::uint64_t freq[8] = {};
    for (std::uint64_t j = 0; j < at; ++j) {
        const std::uint8_t b = s.load<std::uint8_t>(out + j);
        std::uint8_t rank = 0;
        while (s.load<std::uint8_t>(mtf + rank) != b) {
            ++rank;
            s.chargeOps(5); // compare + branch + pointer arithmetic
        }
        for (std::uint8_t k = rank; k > 0; --k)
            s.store<std::uint8_t>(mtf + k, s.load<std::uint8_t>(mtf + k - 1));
        s.store<std::uint8_t>(mtf, b);
        freq[std::bit_width(static_cast<unsigned>(rank))]++;
        s.chargeOps(9);
    }

    Checksum sum;
    sum.mix(at);
    for (std::uint64_t f : freq)
        sum.mix(f);
    return sum.value();
}

std::uint64_t
runMcf(sfi::Sandbox &s, std::uint64_t scale, std::uint32_t seed)
{
    // Single-source cheapest paths by Bellman-Ford-with-queue over a
    // sparse network: 429.mcf's pointer-chasing, cache-hostile profile.
    Arena arena(s);
    const std::uint64_t nodes = 2048 * scale;
    const std::uint64_t degree = 4;
    const std::uint64_t edges = nodes * degree;
    const std::uint64_t head = arena.alloc(nodes * 4);  // first edge index
    const std::uint64_t dest = arena.alloc(edges * 4);
    const std::uint64_t cost = arena.alloc(edges * 4);
    const std::uint64_t dist = arena.alloc(nodes * 8);
    const std::uint64_t queue = arena.alloc(nodes * 16 * 4);

    Rng rng(seed);
    for (std::uint64_t v = 0; v < nodes; ++v) {
        s.store<std::uint32_t>(head + v * 4,
                               static_cast<std::uint32_t>(v * degree));
        for (std::uint64_t e = 0; e < degree; ++e) {
            // Mostly local edges plus a few long hops: mcf-like locality.
            const std::uint64_t to =
                e < 2 ? (v + 1 + rng.nextBelow(16)) % nodes
                      : rng.nextBelow(nodes);
            s.store<std::uint32_t>(dest + (v * degree + e) * 4,
                                   static_cast<std::uint32_t>(to));
            s.store<std::uint32_t>(cost + (v * degree + e) * 4,
                                   static_cast<std::uint32_t>(
                                       1 + rng.nextBelow(100)));
        }
        s.store<std::uint64_t>(dist + v * 8, UINT64_MAX / 2);
    }

    s.store<std::uint64_t>(dist, 0);
    std::uint64_t qh = 0, qt = 0;
    auto push = [&](std::uint32_t v) {
        s.store<std::uint32_t>(queue + (qt++ % (nodes * 16)) * 4, v);
    };
    push(0);

    std::uint64_t relaxations = 0;
    while (qh < qt) {
        const std::uint32_t v =
            s.load<std::uint32_t>(queue + (qh++ % (nodes * 16)) * 4);
        const std::uint64_t dv = s.load<std::uint64_t>(dist + v * 8);
        const std::uint32_t first = s.load<std::uint32_t>(head + v * 4);
        for (std::uint64_t e = 0; e < degree; ++e) {
            const std::uint32_t to =
                s.load<std::uint32_t>(dest + (first + e) * 4);
            const std::uint32_t w =
                s.load<std::uint32_t>(cost + (first + e) * 4);
            if (dv + w < s.load<std::uint64_t>(dist + to * 8)) {
                s.store<std::uint64_t>(dist + to * 8, dv + w);
                push(to);
                ++relaxations;
            }
            s.chargeOps(4);
        }
    }

    Checksum sum;
    sum.mix(relaxations);
    for (std::uint64_t v = 0; v < nodes; v += 97)
        sum.mix(s.load<std::uint64_t>(dist + v * 8));
    return sum.value();
}

std::uint64_t
runMilc(sfi::Sandbox &s, std::uint64_t scale, std::uint32_t seed)
{
    // 3x3 complex matrix multiplies over a 4D lattice in fixed point:
    // 433.milc's dense streaming-FLOP profile.
    Arena arena(s);
    const std::uint64_t sites = 256 * scale;
    const std::uint64_t words = sites * 18; // 3x3 complex, 2 ints each
    std::uint64_t a = arena.alloc(words * 4);
    const std::uint64_t b = arena.alloc(words * 4);
    std::uint64_t c = arena.alloc(words * 4);
    fillRandom(s, a, words * 4, seed);
    fillRandom(s, b, words * 4, seed ^ 1);

    for (int sweep = 0; sweep < 4; ++sweep) {
        for (std::uint64_t site = 0; site < sites; ++site) {
            const std::uint64_t ma = a + site * 72;
            const std::uint64_t mb = b + site * 72;
            const std::uint64_t mc = c + site * 72;
            for (int row = 0; row < 3; ++row) {
                for (int col = 0; col < 3; ++col) {
                    // The accumulators intentionally wrap (the product
                    // feeds the next sweep as pseudo-random input), so
                    // they are unsigned: the stored bits 16..47 are the
                    // same as under two's-complement signed wraparound,
                    // without the signed-overflow UB.
                    std::uint64_t re = 0, im = 0;
                    for (int k = 0; k < 3; ++k) {
                        const auto are = static_cast<std::int32_t>(
                            s.load<std::uint32_t>(ma + (row * 3 + k) * 8));
                        const auto aim = static_cast<std::int32_t>(
                            s.load<std::uint32_t>(ma + (row * 3 + k) * 8 + 4));
                        const auto bre = static_cast<std::int32_t>(
                            s.load<std::uint32_t>(mb + (k * 3 + col) * 8));
                        const auto bim = static_cast<std::int32_t>(
                            s.load<std::uint32_t>(mb + (k * 3 + col) * 8 + 4));
                        re += static_cast<std::uint64_t>(
                                  static_cast<std::int64_t>(are) * bre) -
                              static_cast<std::uint64_t>(
                                  static_cast<std::int64_t>(aim) * bim);
                        im += static_cast<std::uint64_t>(
                                  static_cast<std::int64_t>(are) * bim) +
                              static_cast<std::uint64_t>(
                                  static_cast<std::int64_t>(aim) * bre);
                    }
                    s.store<std::uint32_t>(mc + (row * 3 + col) * 8,
                                           static_cast<std::uint32_t>(re >> 16));
                    s.store<std::uint32_t>(mc + (row * 3 + col) * 8 + 4,
                                           static_cast<std::uint32_t>(im >> 16));
                    s.chargeOps(3 * 8 + 4);
                }
            }
        }
        // Ping-pong: the product becomes next sweep's left operand.
        std::swap(a, c);
    }

    Checksum sum;
    for (std::uint64_t site = 0; site < sites; site += 13)
        sum.mix(s.load<std::uint32_t>(c + site * 72));
    return sum.value();
}

std::uint64_t
runGobmk(sfi::Sandbox &s, std::uint64_t scale, std::uint32_t seed)
{
    // Go-board evaluation: flood-fill liberty counting plus a wide
    // pattern-dispatch switch. 445.gobmk is the paper's icache-pressure
    // outlier; the sandbox options mark it maximally sensitive.
    Arena arena(s);
    const std::uint64_t n = 19;
    const std::uint64_t board = arena.alloc(n * n);
    const std::uint64_t marks = arena.alloc(n * n);
    const std::uint64_t stack = arena.alloc(n * n * 4);

    Rng rng(seed);
    std::uint64_t evals = 0;
    Checksum sum;
    const std::uint64_t positions = 40 * scale;
    for (std::uint64_t pos = 0; pos < positions; ++pos) {
        for (std::uint64_t i = 0; i < n * n; ++i) {
            s.store<std::uint8_t>(board + i,
                                  static_cast<std::uint8_t>(rng.nextBelow(3)));
            s.store<std::uint8_t>(marks + i, 0);
        }
        // Count liberties of every group via flood fill.
        std::uint64_t score = 0;
        for (std::uint64_t start = 0; start < n * n; ++start) {
            if (s.load<std::uint8_t>(marks + start))
                continue;
            const std::uint8_t color = s.load<std::uint8_t>(board + start);
            if (color == 0)
                continue;
            std::uint64_t sp = 0, libs = 0, stones = 0;
            s.store<std::uint32_t>(stack,
                                   static_cast<std::uint32_t>(start));
            sp = 1;
            s.store<std::uint8_t>(marks + start, 1);
            while (sp) {
                const std::uint32_t at =
                    s.load<std::uint32_t>(stack + --sp * 4);
                ++stones;
                const std::uint64_t r = at / n, c = at % n;
                const std::int64_t dr[4] = {-1, 1, 0, 0};
                const std::int64_t dc[4] = {0, 0, -1, 1};
                for (int d = 0; d < 4; ++d) {
                    const std::int64_t nr = static_cast<std::int64_t>(r) + dr[d];
                    const std::int64_t nc = static_cast<std::int64_t>(c) + dc[d];
                    if (nr < 0 || nc < 0 || nr >= static_cast<std::int64_t>(n) ||
                        nc >= static_cast<std::int64_t>(n))
                        continue;
                    const std::uint64_t nb =
                        static_cast<std::uint64_t>(nr) * n +
                        static_cast<std::uint64_t>(nc);
                    const std::uint8_t v = s.load<std::uint8_t>(board + nb);
                    if (v == 0) {
                        ++libs;
                    } else if (v == color &&
                               !s.load<std::uint8_t>(marks + nb)) {
                        s.store<std::uint8_t>(marks + nb, 1);
                        s.store<std::uint32_t>(stack + sp++ * 4,
                                               static_cast<std::uint32_t>(nb));
                    }
                    s.chargeOps(8);
                }
            }
            // Pattern dispatch: a wide switch on the group signature —
            // the big-code shape that stresses the icache.
            const std::uint64_t sig = (stones * 31 + libs) & 63;
            switch (sig & 15) {
              case 0: score += libs * 2; break;
              case 1: score += stones; break;
              case 2: score += libs + stones; break;
              case 3: score += libs > 1 ? 5 : 0; break;
              case 4: score += stones * libs; break;
              case 5: score += libs == 1 ? 10 : 1; break;
              case 6: score += (stones << 1) ^ libs; break;
              case 7: score += stones > 4 ? 7 : 2; break;
              case 8: score += libs * libs; break;
              case 9: score += stones + 3; break;
              case 10: score += libs ^ 5; break;
              case 11: score += stones % 7; break;
              case 12: score += libs + 11; break;
              case 13: score += stones * 3 - libs; break;
              case 14: score += (libs + stones) / 2; break;
              case 15: score += 1; break;
            }
            s.chargeOps(14);
            ++evals;
        }
        sum.mix(score);
    }
    sum.mix(evals);
    return sum.value();
}

std::uint64_t
runHmmer(sfi::Sandbox &s, std::uint64_t scale, std::uint32_t seed)
{
    // Viterbi decoding over a profile HMM: 456.hmmer's add/max dynamic-
    // programming inner loop, three score streams per cell.
    Arena arena(s);
    const std::uint64_t model = 128;
    const std::uint64_t seq_len = 256 * scale;
    const std::uint64_t match = arena.alloc((model + 1) * 4);
    const std::uint64_t insert = arena.alloc((model + 1) * 4);
    const std::uint64_t del = arena.alloc((model + 1) * 4);
    const std::uint64_t emit = arena.alloc(model * 32 * 4);
    const std::uint64_t sequence = arena.alloc(seq_len);

    Rng rng(seed);
    for (std::uint64_t i = 0; i < model * 32; ++i)
        s.store<std::uint32_t>(emit + i * 4,
                               static_cast<std::uint32_t>(rng.nextBelow(64)));
    for (std::uint64_t i = 0; i < seq_len; ++i)
        s.store<std::uint8_t>(sequence + i,
                              static_cast<std::uint8_t>(rng.nextBelow(32)));
    for (std::uint64_t k = 0; k <= model; ++k) {
        s.store<std::uint32_t>(match + k * 4, 0);
        s.store<std::uint32_t>(insert + k * 4, 0);
        s.store<std::uint32_t>(del + k * 4, 0);
    }

    std::uint32_t best = 0;
    for (std::uint64_t i = 0; i < seq_len; ++i) {
        const std::uint8_t sym = s.load<std::uint8_t>(sequence + i);
        std::uint32_t prev_m = 0, prev_i = 0, prev_d = 0;
        for (std::uint64_t k = 1; k <= model; ++k) {
            const std::uint32_t e =
                s.load<std::uint32_t>(emit + ((k - 1) * 32 + sym) * 4);
            const std::uint32_t m = s.load<std::uint32_t>(match + k * 4);
            const std::uint32_t ins = s.load<std::uint32_t>(insert + k * 4);
            const std::uint32_t d = s.load<std::uint32_t>(del + k * 4);
            const std::uint32_t new_m =
                std::max({prev_m, prev_i, prev_d}) + e;
            const std::uint32_t new_i = std::max(m, ins);
            const std::uint32_t new_d = std::max(new_m, d) / 2;
            prev_m = m;
            prev_i = ins;
            prev_d = d;
            s.store<std::uint32_t>(match + k * 4, new_m);
            s.store<std::uint32_t>(insert + k * 4, new_i);
            s.store<std::uint32_t>(del + k * 4, new_d);
            best = std::max(best, new_m);
            s.chargeOps(12);
        }
    }
    return best;
}

std::uint64_t
runSjeng(sfi::Sandbox &s, std::uint64_t scale, std::uint32_t seed)
{
    // Fixed-depth alpha-beta negamax over a toy 6x6 capture game:
    // 458.sjeng's branchy search profile with board state in memory.
    Arena arena(s);
    const std::uint64_t n = 6;
    const std::uint64_t board = arena.alloc(n * n);
    // Undo stack and move list live in linear memory like sjeng's.
    const std::uint64_t undo = arena.alloc(1024);

    Rng rng(seed);
    for (std::uint64_t i = 0; i < n * n; ++i)
        s.store<std::uint8_t>(board + i,
                              static_cast<std::uint8_t>(rng.nextBelow(3)));

    std::uint64_t nodes = 0;
    // Recursive lambda via explicit depth-limited search.
    std::function<std::int64_t(int, std::int64_t, std::int64_t, int)> search =
        [&](int depth, std::int64_t alpha, std::int64_t beta,
            int player) -> std::int64_t {
        ++nodes;
        if (depth == 0) {
            std::int64_t eval = 0;
            for (std::uint64_t i = 0; i < n * n; ++i) {
                const std::uint8_t v = s.load<std::uint8_t>(board + i);
                eval += v == 1 ? 3 : v == 2 ? -3 : 0;
                s.chargeOps(3);
            }
            return player == 1 ? eval : -eval;
        }
        std::int64_t best = -100000;
        for (std::uint64_t i = 0; i < n * n; ++i) {
            const std::uint8_t v = s.load<std::uint8_t>(board + i);
            s.chargeOps(4);
            if (v != 0)
                continue;
            s.store<std::uint8_t>(board + i,
                                  static_cast<std::uint8_t>(player));
            s.store<std::uint8_t>(undo + (depth & 127),
                                  static_cast<std::uint8_t>(i));
            const std::int64_t score =
                -search(depth - 1, -beta, -alpha, 3 - player);
            s.store<std::uint8_t>(board + i, 0);
            best = std::max(best, score);
            alpha = std::max(alpha, score);
            s.chargeOps(6);
            if (alpha >= beta)
                break;
        }
        return best == -100000 ? 0 : best;
    };

    Checksum sum;
    const std::uint64_t games = scale;
    for (std::uint64_t g = 0; g < games; ++g) {
        // Mutate a couple of squares between searches.
        for (int k = 0; k < 4; ++k)
            s.store<std::uint8_t>(board + rng.nextBelow(n * n),
                                  static_cast<std::uint8_t>(rng.nextBelow(3)));
        sum.mix(static_cast<std::uint64_t>(
            search(4, -100000, 100000, 1) + 50000));
    }
    sum.mix(nodes);
    return sum.value();
}

std::uint64_t
runLibquantum(sfi::Sandbox &s, std::uint64_t scale, std::uint32_t seed)
{
    // Quantum register simulation: each basis state is a (amplitude,
    // index) record; gates stream over the whole register —
    // 462.libquantum's long sequential sweeps.
    Arena arena(s);
    const std::uint64_t states = 8192 * scale;
    const std::uint64_t amp = arena.alloc(states * 8);
    const std::uint64_t idx = arena.alloc(states * 8);
    fillRandom(s, amp, states * 8, seed);
    for (std::uint64_t i = 0; i < states; ++i)
        s.store<std::uint64_t>(idx + i * 8, i);

    std::uint64_t toggles = 0;
    for (int gate = 0; gate < 24; ++gate) {
        const std::uint64_t target = 1ULL << (gate % 13);
        const std::uint64_t control = 1ULL << ((gate + 5) % 13);
        for (std::uint64_t i = 0; i < states; ++i) {
            const std::uint64_t basis = s.load<std::uint64_t>(idx + i * 8);
            if (basis & control) {
                s.store<std::uint64_t>(idx + i * 8, basis ^ target);
                const std::uint64_t a = s.load<std::uint64_t>(amp + i * 8);
                s.store<std::uint64_t>(amp + i * 8,
                                       a * 0x9e3779b97f4a7c15ULL + 1);
                ++toggles;
            }
            s.chargeOps(5);
        }
    }
    Checksum sum;
    sum.mix(toggles);
    for (std::uint64_t i = 0; i < states; i += 1021)
        sum.mix(s.load<std::uint64_t>(amp + i * 8));
    return sum.value();
}

std::uint64_t
runH264ref(sfi::Sandbox &s, std::uint64_t scale, std::uint32_t seed)
{
    // Motion estimation: 16x16 SAD search over a reference window —
    // 464.h264ref's blocked 2D access pattern.
    Arena arena(s);
    const std::uint64_t w = 176, h = 144; // QCIF
    const std::uint64_t cur = arena.alloc(w * h);
    const std::uint64_t ref = arena.alloc(w * h);
    fillRandom(s, cur, w * h, seed);
    fillRandom(s, ref, w * h, seed ^ 7);

    std::uint64_t total_sad = 0;
    const std::uint64_t frames = scale;
    for (std::uint64_t f = 0; f < frames; ++f) {
        for (std::uint64_t by = 0; by + 16 <= h; by += 16) {
            for (std::uint64_t bx = 0; bx + 16 <= w; bx += 16) {
                std::uint64_t best = UINT64_MAX;
                for (std::int64_t dy = -4; dy <= 4; dy += 2) {
                    for (std::int64_t dx = -4; dx <= 4; dx += 2) {
                        const std::int64_t ry = static_cast<std::int64_t>(by) + dy;
                        const std::int64_t rx = static_cast<std::int64_t>(bx) + dx;
                        if (ry < 0 || rx < 0 || ry + 16 > static_cast<std::int64_t>(h) ||
                            rx + 16 > static_cast<std::int64_t>(w))
                            continue;
                        std::uint64_t sad = 0;
                        for (std::uint64_t y = 0; y < 16; ++y) {
                            for (std::uint64_t x = 0; x < 16; x += 8) {
                                const std::uint64_t a = s.load<std::uint64_t>(
                                    cur + (by + y) * w + bx + x);
                                const std::uint64_t b = s.load<std::uint64_t>(
                                    ref + static_cast<std::uint64_t>(ry + static_cast<std::int64_t>(y)) * w +
                                    static_cast<std::uint64_t>(rx) + x);
                                // Byte-wise |a-b| accumulated in parallel.
                                for (int byte = 0; byte < 8; ++byte) {
                                    const std::int32_t av =
                                        static_cast<std::uint8_t>(a >> (8 * byte));
                                    const std::int32_t bv =
                                        static_cast<std::uint8_t>(b >> (8 * byte));
                                    sad += static_cast<std::uint64_t>(
                                        av > bv ? av - bv : bv - av);
                                }
                                s.chargeOps(18);
                            }
                        }
                        best = std::min(best, sad);
                    }
                }
                total_sad += best;
            }
        }
    }
    return total_sad;
}

std::uint64_t
runLbm(sfi::Sandbox &s, std::uint64_t scale, std::uint32_t seed)
{
    // Lattice-Boltzmann stream-and-collide in fixed point over a 2D
    // grid with 9 directions: 470.lbm's bandwidth-bound sweep.
    Arena arena(s);
    const std::uint64_t w = 64, h = 64;
    const std::uint64_t cells = w * h;
    const std::uint64_t f0 = arena.alloc(cells * 9 * 4);
    const std::uint64_t f1 = arena.alloc(cells * 9 * 4);
    fillRandom(s, f0, cells * 9 * 4, seed);

    const std::int64_t dx[9] = {0, 1, -1, 0, 0, 1, -1, 1, -1};
    const std::int64_t dy[9] = {0, 0, 0, 1, -1, 1, -1, -1, 1};

    std::uint64_t src = f0, dst = f1;
    const std::uint64_t steps = 4 * scale;
    for (std::uint64_t t = 0; t < steps; ++t) {
        for (std::uint64_t y = 0; y < h; ++y) {
            for (std::uint64_t x = 0; x < w; ++x) {
                const std::uint64_t cell = (y * w + x) * 9;
                // Collide: relax toward the mean.
                std::uint64_t rho = 0;
                std::uint32_t fi[9];
                for (int d = 0; d < 9; ++d) {
                    fi[d] = s.load<std::uint32_t>(src + (cell + d) * 4) &
                            0xffffff;
                    rho += fi[d];
                }
                const std::uint32_t eq =
                    static_cast<std::uint32_t>(rho / 9);
                for (int d = 0; d < 9; ++d) {
                    const std::uint32_t relaxed = fi[d] - (fi[d] >> 2) +
                                                  (eq >> 2);
                    // Stream to the neighbour in direction d (periodic).
                    const std::uint64_t nx =
                        (x + static_cast<std::uint64_t>(dx[d] + 64)) % w;
                    const std::uint64_t ny =
                        (y + static_cast<std::uint64_t>(dy[d] + 64)) % h;
                    s.store<std::uint32_t>(dst + ((ny * w + nx) * 9 +
                                                  static_cast<std::uint64_t>(d)) * 4,
                                           relaxed);
                }
                s.chargeOps(9 * 6);
            }
        }
        std::swap(src, dst);
    }

    Checksum sum;
    for (std::uint64_t i = 0; i < cells; i += 37)
        sum.mix(s.load<std::uint32_t>(src + i * 9 * 4));
    return sum.value();
}

std::uint64_t
runAstar(sfi::Sandbox &s, std::uint64_t scale, std::uint32_t seed)
{
    // A* over a weighted grid with a binary heap in linear memory:
    // 473.astar's mixed heap/grid access pattern.
    Arena arena(s);
    const std::uint64_t n = 128;
    const std::uint64_t weight = arena.alloc(n * n);
    const std::uint64_t dist = arena.alloc(n * n * 4);
    const std::uint64_t heap = arena.alloc(n * n * 8 * 4);

    Rng rng(seed);
    for (std::uint64_t i = 0; i < n * n; ++i)
        s.store<std::uint8_t>(weight + i,
                              static_cast<std::uint8_t>(1 + rng.nextBelow(9)));

    Checksum sum;
    const std::uint64_t searches = 2 * scale;
    for (std::uint64_t q = 0; q < searches; ++q) {
        for (std::uint64_t i = 0; i < n * n; ++i)
            s.store<std::uint32_t>(dist + i * 4, UINT32_MAX);

        const std::uint64_t goal = n * n - 1;
        std::uint64_t heap_size = 0;
        auto heapPush = [&](std::uint32_t key, std::uint32_t node) {
            std::uint64_t i = heap_size++;
            s.store<std::uint64_t>(heap + i * 8,
                                   (static_cast<std::uint64_t>(key) << 32) |
                                       node);
            while (i > 0) {
                const std::uint64_t parent = (i - 1) / 2;
                const std::uint64_t pv = s.load<std::uint64_t>(heap + parent * 8);
                const std::uint64_t iv = s.load<std::uint64_t>(heap + i * 8);
                s.chargeOps(5);
                if (pv <= iv)
                    break;
                s.store<std::uint64_t>(heap + parent * 8, iv);
                s.store<std::uint64_t>(heap + i * 8, pv);
                i = parent;
            }
        };
        auto heapPop = [&]() {
            const std::uint64_t top = s.load<std::uint64_t>(heap);
            const std::uint64_t last =
                s.load<std::uint64_t>(heap + --heap_size * 8);
            s.store<std::uint64_t>(heap, last);
            std::uint64_t i = 0;
            while (true) {
                const std::uint64_t l = 2 * i + 1, r = 2 * i + 2;
                std::uint64_t smallest = i;
                std::uint64_t sv = s.load<std::uint64_t>(heap + i * 8);
                if (l < heap_size &&
                    s.load<std::uint64_t>(heap + l * 8) < sv) {
                    smallest = l;
                    sv = s.load<std::uint64_t>(heap + l * 8);
                }
                if (r < heap_size &&
                    s.load<std::uint64_t>(heap + r * 8) < sv)
                    smallest = r;
                s.chargeOps(8);
                if (smallest == i)
                    break;
                const std::uint64_t tmp = s.load<std::uint64_t>(heap + i * 8);
                s.store<std::uint64_t>(heap + i * 8,
                                       s.load<std::uint64_t>(heap + smallest * 8));
                s.store<std::uint64_t>(heap + smallest * 8, tmp);
                i = smallest;
            }
            return top;
        };

        s.store<std::uint32_t>(dist, 0);
        heapPush(0, 0);
        std::uint32_t found = 0;
        while (heap_size) {
            const std::uint64_t top = heapPop();
            const std::uint32_t node = static_cast<std::uint32_t>(top);
            if (node == goal) {
                found = static_cast<std::uint32_t>(top >> 32);
                break;
            }
            const std::uint32_t d = s.load<std::uint32_t>(dist + node * 4);
            const std::uint64_t r = node / n, c = node % n;
            const std::int64_t dr[4] = {-1, 1, 0, 0};
            const std::int64_t dc[4] = {0, 0, -1, 1};
            for (int dir = 0; dir < 4; ++dir) {
                const std::int64_t nr = static_cast<std::int64_t>(r) + dr[dir];
                const std::int64_t nc = static_cast<std::int64_t>(c) + dc[dir];
                if (nr < 0 || nc < 0 || nr >= static_cast<std::int64_t>(n) ||
                    nc >= static_cast<std::int64_t>(n))
                    continue;
                const std::uint64_t nb = static_cast<std::uint64_t>(nr) * n +
                                         static_cast<std::uint64_t>(nc);
                const std::uint32_t nd =
                    d + s.load<std::uint8_t>(weight + nb);
                if (nd < s.load<std::uint32_t>(dist + nb * 4)) {
                    s.store<std::uint32_t>(dist + nb * 4, nd);
                    // Manhattan heuristic keeps it A* rather than
                    // Dijkstra.
                    const std::uint32_t hcost = static_cast<std::uint32_t>(
                        (n - 1 - static_cast<std::uint64_t>(nr)) +
                        (n - 1 - static_cast<std::uint64_t>(nc)));
                    heapPush(nd + hcost, static_cast<std::uint32_t>(nb));
                }
                s.chargeOps(10);
            }
        }
        sum.mix(found);
        // New start weights for the next search.
        for (int k = 0; k < 64; ++k)
            s.store<std::uint8_t>(weight + rng.nextBelow(n * n),
                                  static_cast<std::uint8_t>(1 + rng.nextBelow(9)));
    }
    return sum.value();
}

std::uint64_t
runXalancbmk(sfi::Sandbox &s, std::uint64_t scale, std::uint32_t seed)
{
    // Build an XML-ish node tree in linear memory and run a recursive
    // transform over it: 483.xalancbmk's pointer-heavy tree churn.
    Arena arena(s);
    const std::uint64_t max_nodes = 4096 * scale;
    // Node: {first_child u32, next_sibling u32, tag u32, value u32}.
    const std::uint64_t nodes = arena.alloc(max_nodes * 16);

    Rng rng(seed);
    std::uint64_t count = 1;
    s.store<std::uint32_t>(nodes, 0);
    s.store<std::uint32_t>(nodes + 4, 0);
    s.store<std::uint32_t>(nodes + 8, 1);
    s.store<std::uint32_t>(nodes + 12, 0);

    // Grow a random tree by attaching each new node to a random parent.
    for (std::uint64_t i = 1; i < max_nodes; ++i) {
        const std::uint64_t parent = rng.nextBelow(count);
        const std::uint64_t node = nodes + i * 16;
        s.store<std::uint32_t>(node, 0);
        s.store<std::uint32_t>(node + 4,
                               s.load<std::uint32_t>(nodes + parent * 16));
        s.store<std::uint32_t>(node + 8,
                               static_cast<std::uint32_t>(rng.nextBelow(16)));
        s.store<std::uint32_t>(node + 12,
                               static_cast<std::uint32_t>(rng.nextBelow(1000)));
        s.store<std::uint32_t>(nodes + parent * 16,
                               static_cast<std::uint32_t>(i));
        ++count;
        s.chargeOps(8);
    }

    // Transform: iterative DFS computing per-tag aggregates.
    std::uint64_t agg[16] = {};
    const std::uint64_t stack = arena.alloc(max_nodes * 4);
    std::uint64_t sp = 0;
    s.store<std::uint32_t>(stack, 0);
    sp = 1;
    while (sp) {
        const std::uint32_t at = s.load<std::uint32_t>(stack + --sp * 4);
        const std::uint64_t node = nodes + static_cast<std::uint64_t>(at) * 16;
        const std::uint32_t tag = s.load<std::uint32_t>(node + 8);
        const std::uint32_t value = s.load<std::uint32_t>(node + 12);
        agg[tag & 15] += value;
        std::uint32_t child = s.load<std::uint32_t>(node);
        while (child) {
            s.store<std::uint32_t>(stack + sp++ * 4, child);
            child = s.load<std::uint32_t>(
                nodes + static_cast<std::uint64_t>(child) * 16 + 4);
            s.chargeOps(4);
        }
        s.chargeOps(6);
    }

    Checksum sum;
    for (std::uint64_t a : agg)
        sum.mix(a);
    return sum.value();
}

const std::vector<Workload> &
suite()
{
    static const std::vector<Workload> kSuite = {
        {"401.bzip2", 10, runBzip2},
        {"429.mcf", 5, runMcf},
        {"433.milc", 0, runMilc},
        {"445.gobmk", 80, runGobmk},
        {"456.hmmer", 0, runHmmer},
        {"458.sjeng", 25, runSjeng},
        {"462.libquantum", 0, runLibquantum},
        {"464.h264ref", 5, runH264ref},
        {"470.lbm", 0, runLbm},
        {"473.astar", 10, runAstar},
        {"483.xalancbmk", 30, runXalancbmk},
    };
    return kSuite;
}

} // namespace hfi::workloads::spec
