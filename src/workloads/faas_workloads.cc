#include "workloads/faas_workloads.h"

#include <algorithm>

#include "workloads/crypto.h"
#include "workloads/support.h"

namespace hfi::workloads::faas
{

std::string
makeXmlDocument(std::uint64_t records, std::uint32_t seed)
{
    Rng rng(seed);
    std::string xml = "<orders>";
    for (std::uint64_t i = 0; i < records; ++i) {
        xml += "<order><id>" + std::to_string(rng.nextBelow(1000000)) +
               "</id><qty>" + std::to_string(1 + rng.nextBelow(99)) +
               "</qty><price>" + std::to_string(rng.nextBelow(10000)) +
               "</price></order>";
    }
    xml += "</orders>";
    return xml;
}

std::uint64_t
xmlToJson(sfi::Sandbox &s, std::uint64_t in_off, std::uint64_t in_len)
{
    Arena arena(s, in_off + in_len + 8);
    const std::uint64_t out = arena.alloc(in_len * 2 + 64);

    Checksum sum;
    std::uint64_t at = 0;
    auto emit = [&](char c) {
        s.store<std::uint8_t>(out + at++, static_cast<std::uint8_t>(c));
        sum.mix(static_cast<std::uint8_t>(c));
    };

    // Event-driven XML scan: tags become JSON keys, text becomes values.
    std::uint64_t i = 0;
    int depth = 0;
    bool first_at_depth[16] = {};
    while (i < in_len) {
        const char c = static_cast<char>(s.load<std::uint8_t>(in_off + i));
        s.chargeOps(4);
        if (c == '<') {
            const bool closing =
                static_cast<char>(s.load<std::uint8_t>(in_off + i + 1)) ==
                '/';
            // Scan the tag name.
            std::uint64_t j = i + (closing ? 2 : 1);
            std::string tag;
            while (j < in_len) {
                const char t =
                    static_cast<char>(s.load<std::uint8_t>(in_off + j));
                s.chargeOps(3);
                if (t == '>')
                    break;
                tag += t;
                ++j;
            }
            if (closing) {
                emit('}');
                --depth;
            } else {
                if (depth > 0 && !first_at_depth[depth])
                    emit(',');
                first_at_depth[depth] = false;
                emit('"');
                for (char t : tag)
                    emit(t);
                emit('"');
                emit(':');
                emit('{');
                ++depth;
                if (depth < 16)
                    first_at_depth[depth] = true;
            }
            i = j + 1;
        } else {
            // Text content: emit as a "value" field.
            if (depth < 16 && !first_at_depth[depth])
                emit(',');
            if (depth < 16)
                first_at_depth[depth] = false;
            emit('"');
            emit('v');
            emit('"');
            emit(':');
            while (i < in_len) {
                const char t =
                    static_cast<char>(s.load<std::uint8_t>(in_off + i));
                s.chargeOps(3);
                if (t == '<')
                    break;
                emit(t);
                ++i;
            }
        }
    }
    sum.mix(at);
    return sum.value();
}

std::uint64_t
classifyImage(sfi::Sandbox &s, std::uint64_t img_off, std::uint32_t side,
              std::uint32_t seed)
{
    // Conv(3x3, 8 filters) -> ReLU -> 2x2 max pool -> dense(10), all in
    // 16.16 fixed point with weights in sandbox memory.
    Arena arena(s, img_off + static_cast<std::uint64_t>(side) * side + 8);
    const std::uint32_t filters = 8;
    const std::uint64_t conv_w = arena.alloc(filters * 9 * 4);
    const std::uint64_t fmap =
        arena.alloc(static_cast<std::uint64_t>(filters) * side * side * 4);
    const std::uint32_t pooled_side = side / 2;
    const std::uint64_t pooled = arena.alloc(
        static_cast<std::uint64_t>(filters) * pooled_side * pooled_side * 4);

    Rng rng(seed);
    for (std::uint64_t i = 0; i < filters * 9; ++i) {
        s.store<std::int32_t>(conv_w + i * 4,
                              static_cast<std::int32_t>(rng.nextBelow(512)) -
                                  256);
    }

    // Convolution.
    for (std::uint32_t f = 0; f < filters; ++f) {
        for (std::uint32_t y = 1; y + 1 < side; ++y) {
            for (std::uint32_t x = 1; x + 1 < side; ++x) {
                std::int64_t acc = 0;
                for (int ky = -1; ky <= 1; ++ky) {
                    for (int kx = -1; kx <= 1; ++kx) {
                        const std::uint64_t px_off =
                            img_off +
                            static_cast<std::uint64_t>(
                                static_cast<std::int64_t>(y) + ky) *
                                side +
                            static_cast<std::uint64_t>(
                                static_cast<std::int64_t>(x) + kx);
                        const std::uint8_t px =
                            s.load<std::uint8_t>(px_off);
                        const std::int32_t w = s.load<std::int32_t>(
                            conv_w + (f * 9 +
                                      static_cast<std::uint32_t>(
                                          (ky + 1) * 3 + kx + 1)) *
                                         4);
                        acc += static_cast<std::int64_t>(px) * w;
                    }
                }
                const std::int32_t relu = static_cast<std::int32_t>(
                    std::max<std::int64_t>(acc >> 4, 0));
                s.store<std::int32_t>(
                    fmap + (static_cast<std::uint64_t>(f) * side * side +
                            static_cast<std::uint64_t>(y) * side + x) *
                               4,
                    relu);
                s.chargeOps(9 * 3 + 4);
            }
        }
    }

    // 2x2 max pool.
    for (std::uint32_t f = 0; f < filters; ++f) {
        for (std::uint32_t y = 0; y < pooled_side; ++y) {
            for (std::uint32_t x = 0; x < pooled_side; ++x) {
                std::int32_t best = 0;
                for (int dy = 0; dy < 2; ++dy) {
                    for (int dx = 0; dx < 2; ++dx) {
                        best = std::max(
                            best,
                            s.load<std::int32_t>(
                                fmap +
                                (static_cast<std::uint64_t>(f) * side * side +
                                 (2 * y + static_cast<std::uint32_t>(dy)) *
                                     side +
                                 2 * x + static_cast<std::uint32_t>(dx)) *
                                    4));
                    }
                }
                s.store<std::int32_t>(
                    pooled + (static_cast<std::uint64_t>(f) * pooled_side *
                                  pooled_side +
                              static_cast<std::uint64_t>(y) * pooled_side +
                              x) *
                                 4,
                    best);
                s.chargeOps(8);
            }
        }
    }

    // Dense layer to 10 logits; weights derived on the fly from the rng
    // stream (kept in registers — a weight *matrix* would dwarf memory).
    Rng dense_rng(seed ^ 0xd15ea5e);
    std::int64_t logits[10] = {};
    const std::uint64_t feat_count =
        static_cast<std::uint64_t>(filters) * pooled_side * pooled_side;
    for (std::uint64_t i = 0; i < feat_count; ++i) {
        const std::int32_t v = s.load<std::int32_t>(pooled + i * 4);
        const std::uint64_t w = dense_rng.next();
        for (int k = 0; k < 10; ++k) {
            logits[k] += static_cast<std::int64_t>(v) *
                         (static_cast<std::int32_t>((w >> (6 * k)) & 63) - 32);
        }
        s.chargeOps(22);
    }

    int winner = 0;
    Checksum sum;
    for (int k = 0; k < 10; ++k) {
        if (logits[k] > logits[winner])
            winner = k;
        sum.mix(static_cast<std::uint64_t>(logits[k]));
    }
    sum.mix(static_cast<std::uint64_t>(winner));
    return sum.value();
}

std::uint64_t
checkSha256(sfi::Sandbox &s, std::uint64_t in_off, std::uint64_t in_len,
            std::uint64_t digest_off)
{
    Arena arena(s, digest_off + 64);
    const std::uint64_t computed = arena.alloc(32);
    const std::uint64_t digest_sum =
        crypto::sha256Sandboxed(s, in_off, in_len, computed);

    bool match = true;
    for (int i = 0; i < 32; ++i) {
        if (s.load<std::uint8_t>(computed + i) !=
            s.load<std::uint8_t>(digest_off + i))
            match = false;
        s.chargeOps(3);
    }
    Checksum sum;
    sum.mix(digest_sum);
    sum.mix(match ? 1 : 0);
    return sum.value();
}

std::string
makeHtmlTemplate(std::uint32_t seed)
{
    (void)seed;
    return "<html><head><title>{{title}}</title></head><body>"
           "<h1>{{title}}</h1><p>Hello {{user}}, your balance is "
           "{{balance}}.</p><table>{{#rows}}<tr><td>{{item}}</td>"
           "<td>{{count}}</td><td>{{total}}</td></tr>{{/rows}}"
           "</table><footer>{{footer}}</footer></body></html>";
}

std::uint64_t
renderTemplate(sfi::Sandbox &s, std::uint64_t tpl_off, std::uint64_t tpl_len,
               std::uint64_t rows, std::uint32_t seed)
{
    Arena arena(s, tpl_off + tpl_len + 8);
    const std::uint64_t out = arena.alloc(tpl_len + rows * 96 + 512);

    Rng rng(seed);
    Checksum sum;
    std::uint64_t at = 0;
    auto emit = [&](char c) {
        s.store<std::uint8_t>(out + at++, static_cast<std::uint8_t>(c));
        sum.mix(static_cast<std::uint8_t>(c));
    };
    auto emitStr = [&](const std::string &str) {
        for (char c : str)
            emit(c);
    };

    auto substitute = [&](const std::string &name) {
        if (name == "title")
            emitStr("Order Summary");
        else if (name == "user")
            emitStr("tenant-" + std::to_string(rng.nextBelow(1000)));
        else if (name == "balance")
            emitStr(std::to_string(rng.nextBelow(100000)));
        else if (name == "item")
            emitStr("sku-" + std::to_string(rng.nextBelow(10000)));
        else if (name == "count")
            emitStr(std::to_string(1 + rng.nextBelow(9)));
        else if (name == "total")
            emitStr(std::to_string(rng.nextBelow(50000)));
        else if (name == "footer")
            emitStr("generated in-sandbox");
        else
            emitStr("?");
    };

    // One-pass renderer with loop-section expansion.
    std::uint64_t i = 0;
    std::uint64_t loop_start = 0;
    std::uint64_t loop_remaining = 0;
    while (i < tpl_len) {
        const char c = static_cast<char>(s.load<std::uint8_t>(tpl_off + i));
        s.chargeOps(4);
        if (c != '{' || i + 1 >= tpl_len ||
            static_cast<char>(s.load<std::uint8_t>(tpl_off + i + 1)) != '{') {
            emit(c);
            ++i;
            continue;
        }
        // Read the {{token}}.
        std::uint64_t j = i + 2;
        std::string token;
        while (j + 1 < tpl_len) {
            const char t =
                static_cast<char>(s.load<std::uint8_t>(tpl_off + j));
            s.chargeOps(3);
            if (t == '}' &&
                static_cast<char>(s.load<std::uint8_t>(tpl_off + j + 1)) ==
                    '}')
                break;
            token += t;
            ++j;
        }
        i = j + 2;
        if (!token.empty() && token[0] == '#') {
            loop_start = i;
            loop_remaining = rows;
        } else if (!token.empty() && token[0] == '/') {
            if (loop_remaining > 1) {
                --loop_remaining;
                i = loop_start;
            }
        } else {
            substitute(token);
        }
    }
    sum.mix(at);
    return sum.value();
}

} // namespace hfi::workloads::faas
