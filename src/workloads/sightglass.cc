#include "workloads/sightglass.h"

#include <bit>

#include "workloads/crypto.h"

namespace hfi::workloads::sightglass
{

namespace
{

/** Fill [off, off+len) with seeded pseudo-random bytes. */
void
fillRandom(sfi::Sandbox &s, std::uint64_t off, std::uint64_t len,
           std::uint32_t seed)
{
    Rng rng(seed);
    std::uint64_t i = 0;
    for (; i + 8 <= len; i += 8)
        s.store<std::uint64_t>(off + i, rng.next());
    for (; i < len; ++i)
        s.store<std::uint8_t>(off + i, static_cast<std::uint8_t>(rng.next()));
}

} // namespace

std::uint64_t
runBlake3Scalar(sfi::Sandbox &s, std::uint64_t scale, std::uint32_t seed)
{
    // Scalar BLAKE3-style compression: 7 rounds of G-mixing over a
    // 16-word state, chaining across `scale` KiB of input.
    Arena arena(s);
    const std::uint64_t len = scale * 1024;
    const std::uint64_t buf = arena.alloc(len);
    fillRandom(s, buf, len, seed);

    std::uint32_t v[16];
    for (int i = 0; i < 16; ++i)
        v[i] = 0x6a09e667u + static_cast<std::uint32_t>(i) * 0x9e3779b9u;

    auto g = [&](int a, int b, int c, int d, std::uint32_t x,
                 std::uint32_t y) {
        v[a] = v[a] + v[b] + x;
        v[d] = std::rotr(v[d] ^ v[a], 16);
        v[c] = v[c] + v[d];
        v[b] = std::rotr(v[b] ^ v[c], 12);
        v[a] = v[a] + v[b] + y;
        v[d] = std::rotr(v[d] ^ v[a], 8);
        v[c] = v[c] + v[d];
        v[b] = std::rotr(v[b] ^ v[c], 7);
    };

    for (std::uint64_t off = 0; off + 64 <= len; off += 64) {
        std::uint32_t m[16];
        for (int i = 0; i < 16; ++i)
            m[i] = s.load<std::uint32_t>(buf + off + 4 * i);
        for (int round = 0; round < 7; ++round) {
            g(0, 4, 8, 12, m[0], m[1]);
            g(1, 5, 9, 13, m[2], m[3]);
            g(2, 6, 10, 14, m[4], m[5]);
            g(3, 7, 11, 15, m[6], m[7]);
            g(0, 5, 10, 15, m[8], m[9]);
            g(1, 6, 11, 12, m[10], m[11]);
            g(2, 7, 8, 13, m[12], m[13]);
            g(3, 4, 9, 14, m[14], m[15]);
        }
        s.chargeOps(7 * 8 * 14);
    }

    Checksum sum;
    for (int i = 0; i < 16; ++i)
        sum.mix(v[i]);
    return sum.value();
}

std::uint64_t
runAckermann(sfi::Sandbox &s, std::uint64_t scale, std::uint32_t seed)
{
    // Ackermann(2, n) evaluated with an explicit stack in linear memory
    // (deep recursion is what the original benchmark stresses).
    (void)seed;
    Arena arena(s);
    const std::uint64_t stack = arena.alloc(1 << 20);
    const std::uint32_t n = static_cast<std::uint32_t>(4 + scale % 8);

    std::uint64_t sp = 0;
    auto push = [&](std::uint32_t m_v, std::uint32_t n_v) {
        s.store<std::uint32_t>(stack + sp, m_v);
        s.store<std::uint32_t>(stack + sp + 4, n_v);
        sp += 8;
    };

    push(2, n);
    std::uint64_t result = 0;
    while (sp > 0) {
        sp -= 8;
        std::uint32_t m = s.load<std::uint32_t>(stack + sp);
        std::uint32_t nn = s.load<std::uint32_t>(stack + sp + 4);
        s.chargeOps(6);
        // Iteratively resolve: result currently holds the value of the
        // "inner" call when m's continuation pops.
        while (true) {
            if (m == 0) {
                result = nn + 1;
                break;
            }
            if (nn == 0) {
                m -= 1;
                nn = 1;
                s.chargeOps(2);
                continue;
            }
            // ack(m, n) = ack(m-1, ack(m, n-1)): push continuation.
            push(m - 1, 0xffffffffu); // marker: fill n from result
            nn = nn - 1;
            s.chargeOps(4);
        }
        // Resolve any pending continuations whose argument is ready.
        while (sp > 0) {
            const std::uint32_t cm = s.load<std::uint32_t>(stack + sp - 8);
            const std::uint32_t cn = s.load<std::uint32_t>(stack + sp - 4);
            s.chargeOps(4);
            if (cn != 0xffffffffu)
                break;
            sp -= 8;
            push(cm, static_cast<std::uint32_t>(result));
            break;
        }
    }
    return result;
}

std::uint64_t
runBase64(sfi::Sandbox &s, std::uint64_t scale, std::uint32_t seed)
{
    static const char kAlphabet[] =
        "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    Arena arena(s);
    const std::uint64_t len = scale * 1024;
    const std::uint64_t src = arena.alloc(len);
    const std::uint64_t dst = arena.alloc((len / 3 + 1) * 4 + 4);
    const std::uint64_t back = arena.alloc(len + 4);
    fillRandom(s, src, len, seed);

    // Encode.
    std::uint64_t out = 0;
    for (std::uint64_t i = 0; i + 3 <= len; i += 3) {
        const std::uint32_t b0 = s.load<std::uint8_t>(src + i);
        const std::uint32_t b1 = s.load<std::uint8_t>(src + i + 1);
        const std::uint32_t b2 = s.load<std::uint8_t>(src + i + 2);
        const std::uint32_t triple = b0 << 16 | b1 << 8 | b2;
        s.store<std::uint8_t>(dst + out++, kAlphabet[triple >> 18 & 63]);
        s.store<std::uint8_t>(dst + out++, kAlphabet[triple >> 12 & 63]);
        s.store<std::uint8_t>(dst + out++, kAlphabet[triple >> 6 & 63]);
        s.store<std::uint8_t>(dst + out++, kAlphabet[triple & 63]);
        s.chargeOps(12);
    }

    // Decode and checksum the round trip.
    std::uint8_t inverse[256] = {};
    for (int i = 0; i < 64; ++i)
        inverse[static_cast<std::uint8_t>(kAlphabet[i])] =
            static_cast<std::uint8_t>(i);

    Checksum sum;
    std::uint64_t back_at = 0;
    for (std::uint64_t i = 0; i + 4 <= out; i += 4) {
        std::uint32_t triple = 0;
        for (int j = 0; j < 4; ++j)
            triple = triple << 6 | inverse[s.load<std::uint8_t>(dst + i + j)];
        s.store<std::uint8_t>(back + back_at++,
                              static_cast<std::uint8_t>(triple >> 16));
        s.store<std::uint8_t>(back + back_at++,
                              static_cast<std::uint8_t>(triple >> 8));
        s.store<std::uint8_t>(back + back_at++,
                              static_cast<std::uint8_t>(triple));
        s.chargeOps(14);
        sum.mix(triple);
    }
    return sum.value();
}

std::uint64_t
runCtype(sfi::Sandbox &s, std::uint64_t scale, std::uint32_t seed)
{
    // Character-classification table lookups over a text buffer.
    Arena arena(s);
    const std::uint64_t len = scale * 1024;
    const std::uint64_t buf = arena.alloc(len);
    const std::uint64_t table = arena.alloc(256);
    fillRandom(s, buf, len, seed);
    for (int c = 0; c < 256; ++c) {
        std::uint8_t cls = 0;
        if (c >= 'a' && c <= 'z') cls |= 1;
        if (c >= 'A' && c <= 'Z') cls |= 2;
        if (c >= '0' && c <= '9') cls |= 4;
        if (c == ' ' || c == '\t' || c == '\n') cls |= 8;
        s.store<std::uint8_t>(table + c, cls);
    }

    std::uint64_t counts[4] = {};
    for (std::uint64_t i = 0; i < len; ++i) {
        const std::uint8_t c = s.load<std::uint8_t>(buf + i);
        const std::uint8_t cls = s.load<std::uint8_t>(table + c);
        for (int bit = 0; bit < 4; ++bit)
            counts[bit] += cls >> bit & 1;
        s.chargeOps(8);
    }
    Checksum sum;
    for (std::uint64_t c : counts)
        sum.mix(c);
    return sum.value();
}

std::uint64_t
runFib2(sfi::Sandbox &s, std::uint64_t scale, std::uint32_t seed)
{
    // Iterative Fibonacci with the working pair kept in memory — the
    // Sightglass kernel stresses tight load/op/store dependences.
    (void)seed;
    Arena arena(s);
    const std::uint64_t cell = arena.alloc(16);
    s.store<std::uint64_t>(cell, 0);
    s.store<std::uint64_t>(cell + 8, 1);
    const std::uint64_t n = 1000 * scale;
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t a = s.load<std::uint64_t>(cell);
        const std::uint64_t b = s.load<std::uint64_t>(cell + 8);
        s.store<std::uint64_t>(cell, b);
        s.store<std::uint64_t>(cell + 8, a + b);
        s.chargeOps(4);
    }
    return s.load<std::uint64_t>(cell);
}

std::uint64_t
runGimli(sfi::Sandbox &s, std::uint64_t scale, std::uint32_t seed)
{
    // The Gimli permutation (real), applied repeatedly to a 384-bit
    // state held in linear memory.
    Arena arena(s);
    const std::uint64_t st = arena.alloc(48);
    fillRandom(s, st, 48, seed);

    const std::uint64_t rounds_total = 24 * scale;
    for (std::uint64_t iter = 0; iter < rounds_total; iter += 24) {
        std::uint32_t x[12];
        for (int i = 0; i < 12; ++i)
            x[i] = s.load<std::uint32_t>(st + 4 * i);
        for (int round = 24; round > 0; --round) {
            for (int col = 0; col < 4; ++col) {
                const std::uint32_t a = std::rotl(x[col], 24);
                const std::uint32_t b = std::rotl(x[col + 4], 9);
                const std::uint32_t c = x[col + 8];
                x[col + 8] = a ^ (c << 1) ^ ((b & c) << 2);
                x[col + 4] = b ^ a ^ ((a | c) << 1);
                x[col] = c ^ b ^ ((a & b) << 3);
            }
            if ((round & 3) == 0) {
                std::swap(x[0], x[1]);
                std::swap(x[2], x[3]);
            }
            if ((round & 3) == 2) {
                std::swap(x[0], x[2]);
                std::swap(x[1], x[3]);
            }
            if ((round & 3) == 0)
                x[0] ^= 0x9e377900u | static_cast<std::uint32_t>(round);
            s.chargeOps(4 * 12 + 4);
        }
        for (int i = 0; i < 12; ++i)
            s.store<std::uint32_t>(st + 4 * i, x[i]);
    }

    Checksum sum;
    for (int i = 0; i < 12; ++i)
        sum.mix(s.load<std::uint32_t>(st + 4 * i));
    return sum.value();
}

std::uint64_t
runKeccak(sfi::Sandbox &s, std::uint64_t scale, std::uint32_t seed)
{
    // Keccak-f[1600] permutation (theta/rho/pi/chi/iota), state in
    // linear memory between permutations.
    static const std::uint64_t kRc[24] = {
        0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808aULL,
        0x8000000080008000ULL, 0x000000000000808bULL, 0x0000000080000001ULL,
        0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008aULL,
        0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000aULL,
        0x000000008000808bULL, 0x800000000000008bULL, 0x8000000000008089ULL,
        0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
        0x000000000000800aULL, 0x800000008000000aULL, 0x8000000080008081ULL,
        0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL};
    static const int kRot[25] = {0,  1,  62, 28, 27, 36, 44, 6,  55,
                                 20, 3,  10, 43, 25, 39, 41, 45, 15,
                                 21, 8,  18, 2,  61, 56, 14};
    static const int kPi[25] = {0,  6,  12, 18, 24, 3,  9,  10, 16,
                                22, 1,  7,  13, 19, 20, 4,  5,  11,
                                17, 23, 2,  8,  14, 15, 21};

    Arena arena(s);
    const std::uint64_t st = arena.alloc(200);
    fillRandom(s, st, 200, seed);

    for (std::uint64_t perm = 0; perm < scale; ++perm) {
        std::uint64_t a[25];
        for (int i = 0; i < 25; ++i)
            a[i] = s.load<std::uint64_t>(st + 8 * i);
        for (int round = 0; round < 24; ++round) {
            std::uint64_t c[5], d[5];
            for (int x = 0; x < 5; ++x)
                c[x] = a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20];
            for (int x = 0; x < 5; ++x)
                d[x] = c[(x + 4) % 5] ^ std::rotl(c[(x + 1) % 5], 1);
            for (int i = 0; i < 25; ++i)
                a[i] ^= d[i % 5];
            std::uint64_t b[25];
            for (int i = 0; i < 25; ++i)
                b[kPi[i]] = std::rotl(a[i], kRot[i]);
            for (int y = 0; y < 5; ++y) {
                for (int x = 0; x < 5; ++x) {
                    a[y * 5 + x] = b[y * 5 + x] ^
                                   (~b[y * 5 + (x + 1) % 5] &
                                    b[y * 5 + (x + 2) % 5]);
                }
            }
            a[0] ^= kRc[round];
            s.chargeOps(25 * 8);
        }
        for (int i = 0; i < 25; ++i)
            s.store<std::uint64_t>(st + 8 * i, a[i]);
    }

    Checksum sum;
    for (int i = 0; i < 25; ++i)
        sum.mix(s.load<std::uint64_t>(st + 8 * i));
    return sum.value();
}

std::uint64_t
runMemmove(sfi::Sandbox &s, std::uint64_t scale, std::uint32_t seed)
{
    // Overlapping word-wise moves — the most access-dense kernel.
    Arena arena(s);
    const std::uint64_t len = scale * 4096;
    const std::uint64_t buf = arena.alloc(len + 64);
    fillRandom(s, buf, len, seed);

    for (int pass = 0; pass < 8; ++pass) {
        // Shift right by 8 bytes (reverse copy for overlap safety)...
        for (std::uint64_t i = len; i >= 8; i -= 8) {
            s.store<std::uint64_t>(buf + i,
                                   s.load<std::uint64_t>(buf + i - 8));
            s.chargeOps(2);
        }
        // ...then back left.
        for (std::uint64_t i = 0; i + 8 <= len; i += 8) {
            s.store<std::uint64_t>(buf + i,
                                   s.load<std::uint64_t>(buf + i + 8));
            s.chargeOps(2);
        }
    }
    Checksum sum;
    for (std::uint64_t i = 0; i + 8 <= len; i += 512)
        sum.mix(s.load<std::uint64_t>(buf + i));
    return sum.value();
}

std::uint64_t
runMinicsv(sfi::Sandbox &s, std::uint64_t scale, std::uint32_t seed)
{
    // Generate a CSV of integers in memory, then parse it: field
    // splitting, integer parsing, per-column sums.
    Arena arena(s);
    Rng rng(seed);
    const std::uint64_t rows = 64 * scale;
    const std::uint64_t cap = rows * 5 * 12 + 64;
    const std::uint64_t buf = arena.alloc(cap);

    std::uint64_t at = 0;
    for (std::uint64_t r = 0; r < rows; ++r) {
        for (int col = 0; col < 5; ++col) {
            std::uint64_t v = rng.nextBelow(100000);
            char tmp[12];
            int n = 0;
            do {
                tmp[n++] = static_cast<char>('0' + v % 10);
                v /= 10;
            } while (v);
            while (n)
                s.store<std::uint8_t>(buf + at++,
                                      static_cast<std::uint8_t>(tmp[--n]));
            s.store<std::uint8_t>(buf + at++, col == 4 ? '\n' : ',');
        }
    }

    std::uint64_t sums[5] = {};
    int col = 0;
    std::uint64_t val = 0;
    for (std::uint64_t i = 0; i < at; ++i) {
        const std::uint8_t c = s.load<std::uint8_t>(buf + i);
        s.chargeOps(4);
        if (c == ',' || c == '\n') {
            sums[col] += val;
            val = 0;
            col = c == '\n' ? 0 : col + 1;
        } else {
            val = val * 10 + (c - '0');
        }
    }
    Checksum sum;
    for (std::uint64_t v : sums)
        sum.mix(v);
    return sum.value();
}

std::uint64_t
runNestedloop(sfi::Sandbox &s, std::uint64_t scale, std::uint32_t seed)
{
    // Pure control flow: triple nested loop, almost no memory traffic.
    (void)seed;
    std::uint64_t acc = 0;
    const std::uint64_t n = 16 + scale;
    for (std::uint64_t i = 0; i < n; ++i) {
        for (std::uint64_t j = 0; j < n; ++j) {
            for (std::uint64_t k = 0; k < n; ++k)
                acc += i * j + k;
            s.chargeOps(3 * n);
        }
    }
    Arena arena(s);
    const std::uint64_t out = arena.alloc(8);
    s.store<std::uint64_t>(out, acc);
    return s.load<std::uint64_t>(out);
}

std::uint64_t
runRandom(sfi::Sandbox &s, std::uint64_t scale, std::uint32_t seed)
{
    // Pointer-chase style random access over a table.
    Arena arena(s);
    const std::uint64_t slots = 4096;
    const std::uint64_t table = arena.alloc(slots * 8);
    Rng rng(seed);
    for (std::uint64_t i = 0; i < slots; ++i)
        s.store<std::uint64_t>(table + i * 8, rng.nextBelow(slots));

    std::uint64_t at = 0;
    const std::uint64_t steps = 20000 * scale;
    for (std::uint64_t i = 0; i < steps; ++i) {
        at = s.load<std::uint64_t>(table + at * 8);
        s.store<std::uint64_t>(table + at * 8, (at * 6364136223846793005ULL +
                                                1442695040888963407ULL) %
                                                   slots);
        at = s.load<std::uint64_t>(table + at * 8) % slots;
        s.chargeOps(5);
    }
    return at;
}

std::uint64_t
runRatelimit(sfi::Sandbox &s, std::uint64_t scale, std::uint32_t seed)
{
    // Token-bucket rate limiter over a bucket table: the request stream
    // updates per-key state, the typical edge-compute primitive.
    Arena arena(s);
    const std::uint64_t buckets = 1024;
    const std::uint64_t table = arena.alloc(buckets * 16);
    for (std::uint64_t i = 0; i < buckets; ++i) {
        s.store<std::uint64_t>(table + i * 16, 10);    // tokens
        s.store<std::uint64_t>(table + i * 16 + 8, 0); // last-refill tick
    }

    Rng rng(seed);
    std::uint64_t allowed = 0;
    const std::uint64_t requests = 10000 * scale;
    for (std::uint64_t tick = 0; tick < requests; ++tick) {
        const std::uint64_t key = rng.nextBelow(buckets);
        const std::uint64_t slot = table + key * 16;
        std::uint64_t tokens = s.load<std::uint64_t>(slot);
        const std::uint64_t last = s.load<std::uint64_t>(slot + 8);
        tokens = std::min<std::uint64_t>(10, tokens + (tick - last) / 64);
        if (tokens > 0) {
            --tokens;
            ++allowed;
        }
        s.store<std::uint64_t>(slot, tokens);
        s.store<std::uint64_t>(slot + 8, tick);
        s.chargeOps(10);
    }
    return allowed;
}

std::uint64_t
runSieve(sfi::Sandbox &s, std::uint64_t scale, std::uint32_t seed)
{
    (void)seed;
    Arena arena(s);
    const std::uint64_t n = 50000 * scale;
    const std::uint64_t flags = arena.alloc(n);
    for (std::uint64_t i = 0; i < n; ++i)
        s.store<std::uint8_t>(flags + i, 1);

    std::uint64_t count = 0;
    for (std::uint64_t p = 2; p < n; ++p) {
        if (!s.load<std::uint8_t>(flags + p))
            continue;
        ++count;
        for (std::uint64_t m = p * p; m < n; m += p) {
            s.store<std::uint8_t>(flags + m, 0);
            s.chargeOps(2);
        }
        s.chargeOps(3);
    }
    return count;
}

std::uint64_t
runSwitch(sfi::Sandbox &s, std::uint64_t scale, std::uint32_t seed)
{
    // Dense dispatch over a 32-way switch driven by an opcode stream —
    // Sightglass's control-flow stressor.
    Arena arena(s);
    const std::uint64_t len = 4096;
    const std::uint64_t ops = arena.alloc(len);
    Rng rng(seed);
    for (std::uint64_t i = 0; i < len; ++i)
        s.store<std::uint8_t>(ops + i,
                              static_cast<std::uint8_t>(rng.nextBelow(32)));

    std::uint64_t acc = 1;
    const std::uint64_t passes = 200 * scale;
    for (std::uint64_t pass = 0; pass < passes; ++pass) {
        for (std::uint64_t i = 0; i < len; ++i) {
            const std::uint8_t op = s.load<std::uint8_t>(ops + i);
            switch (op & 7) {
              case 0: acc += op; break;
              case 1: acc ^= acc << 3; break;
              case 2: acc = std::rotl(acc, op & 31); break;
              case 3: acc -= op * 3; break;
              case 4: acc |= 0x55; break;
              case 5: acc *= 0x9e3779b97f4a7c15ULL; break;
              case 6: acc ^= acc >> 7; break;
              case 7: acc += acc >> 2; break;
            }
            s.chargeOps(4);
        }
    }
    return acc;
}

std::uint64_t
runXblabla20(sfi::Sandbox &s, std::uint64_t scale, std::uint32_t seed)
{
    // BlaBla20: the 64-bit-word ChaCha variant. Real double rounds over
    // a 16x64-bit state, keystream XORed over a buffer.
    Arena arena(s);
    const std::uint64_t len = scale * 1024;
    const std::uint64_t buf = arena.alloc(len);
    fillRandom(s, buf, len, seed);

    std::uint64_t st[16];
    Rng rng(seed ^ 0xb1ab1a20);
    for (auto &w : st)
        w = rng.next();

    auto qr = [&](std::uint64_t &a, std::uint64_t &b, std::uint64_t &c,
                  std::uint64_t &d) {
        a += b; d ^= a; d = std::rotr(d, 32);
        c += d; b ^= c; b = std::rotr(b, 24);
        a += b; d ^= a; d = std::rotr(d, 16);
        c += d; b ^= c; b = std::rotr(b, 63);
    };

    Checksum sum;
    for (std::uint64_t off = 0; off < len; off += 128) {
        std::uint64_t x[16];
        for (int i = 0; i < 16; ++i)
            x[i] = st[i];
        for (int round = 0; round < 10; ++round) {
            qr(x[0], x[4], x[8], x[12]);
            qr(x[1], x[5], x[9], x[13]);
            qr(x[2], x[6], x[10], x[14]);
            qr(x[3], x[7], x[11], x[15]);
            qr(x[0], x[5], x[10], x[15]);
            qr(x[1], x[6], x[11], x[12]);
            qr(x[2], x[7], x[8], x[13]);
            qr(x[3], x[4], x[9], x[14]);
        }
        s.chargeOps(10 * 8 * 14);
        st[12] += 1; // counter
        const std::uint64_t n = std::min<std::uint64_t>(128, len - off);
        for (std::uint64_t i = 0; i + 8 <= n; i += 8) {
            const std::uint64_t w =
                s.load<std::uint64_t>(buf + off + i) ^ (x[i / 8] + st[i / 8]);
            s.store<std::uint64_t>(buf + off + i, w);
            sum.mix(w);
            s.chargeOps(3);
        }
    }
    return sum.value();
}

std::uint64_t
runXchacha20(sfi::Sandbox &s, std::uint64_t scale, std::uint32_t seed)
{
    Arena arena(s);
    const std::uint64_t len = scale * 1024;
    const std::uint64_t buf = arena.alloc(len);
    fillRandom(s, buf, len, seed);
    return crypto::chacha20Sandboxed(s, buf, len, seed);
}

const std::vector<Workload> &
suite()
{
    static const std::vector<Workload> kSuite = {
        {"blake3-scalar", 5, runBlake3Scalar},
        {"ackermann", 0, runAckermann},
        {"base64", 5, runBase64},
        {"ctype", 0, runCtype},
        {"fib2", 0, runFib2},
        {"gimli", 5, runGimli},
        {"keccak", 10, runKeccak},
        {"memmove", 0, runMemmove},
        {"minicsv", 5, runMinicsv},
        {"nestedloop", 0, runNestedloop},
        {"random", 0, runRandom},
        {"ratelimit", 5, runRatelimit},
        {"sieve", 0, runSieve},
        {"switch", 15, runSwitch},
        {"xblabla20", 5, runXblabla20},
        {"xchacha20", 5, runXchacha20},
    };
    return kSuite;
}

} // namespace hfi::workloads::sightglass
