/**
 * @file
 * Sharded run queues with bounded capacity and work stealing.
 *
 * Each simulated core owns one shard; arrivals hash to a shard and an
 * idle core whose own shard is dry steals the *oldest* request from the
 * deepest other shard (FIFO stealing — kind to tail latency, unlike
 * LIFO deque stealing which is kind to cache locality we don't model).
 * A full shard sheds the arrival at admission: under open-loop overload
 * the only alternatives are unbounded queues (unbounded tail latency)
 * or backpressure, and an open loop by definition cannot be pushed
 * back on.
 */

#ifndef HFI_SERVE_SHARD_QUEUE_H
#define HFI_SERVE_SHARD_QUEUE_H

#include <algorithm>
#include <cstddef>
#include <deque>
#include <vector>

#include "obs/trace.h"
#include "serve/request.h"

namespace hfi::serve
{

class ShardedQueues
{
  public:
    /** @p capacity bounds each shard's depth; 0 means unbounded. */
    ShardedQueues(unsigned shards, std::size_t capacity)
        : queues(shards), shedPerShard_(shards, 0),
          traceBufs_(shards, nullptr), capacity_(capacity)
    {
    }

    /**
     * Attach @p shard's owning core's trace ring: admissions record
     * QueuePush/QueueShed stamped at the request's arrival time, into
     * the shard's — i.e. that core's — buffer, so the per-core event
     * streams are identical in the sequential and the threaded driver.
     */
    void setTrace(unsigned shard, obs::TraceBuffer *buf)
    {
        traceBufs_[shard] = buf;
    }

    /** Admit @p req to @p shard. @return false when the shard is full. */
    bool
    offer(unsigned shard, const Request &req)
    {
        auto &q = queues[shard];
        if (capacity_ != 0 && q.size() >= capacity_) {
            ++shedPerShard_[shard];
            HFI_OBS_RECORD(traceBufs_[shard], obs::EventType::QueueShed,
                           req.arrivalNs, req.id,
                           traceBufs_[shard] ? traceBufs_[shard]->core() : 0);
            return false;
        }
        q.push_back(req);
        maxDepth_ = std::max(maxDepth_, q.size());
        HFI_OBS_RECORD(traceBufs_[shard], obs::EventType::QueuePush,
                       req.arrivalNs, req.id,
                       traceBufs_[shard] ? traceBufs_[shard]->core() : 0);
        return true;
    }

    /**
     * The shard worker @p worker should serve from next: its own shard
     * if non-empty, otherwise (with @p steal) the deepest other shard,
     * ties to the lowest index. @return -1 when every queue is empty.
     */
    int
    pickFor(unsigned worker, bool steal) const
    {
        if (!queues[worker].empty())
            return static_cast<int>(worker);
        if (!steal)
            return -1;
        int best = -1;
        std::size_t bestDepth = 0;
        for (unsigned s = 0; s < queues.size(); ++s) {
            if (s == worker)
                continue;
            if (queues[s].size() > bestDepth) {
                bestDepth = queues[s].size();
                best = static_cast<int>(s);
            }
        }
        return best;
    }

    const Request &front(unsigned shard) const { return queues[shard].front(); }

    Request
    take(unsigned shard)
    {
        Request req = queues[shard].front();
        queues[shard].pop_front();
        return req;
    }

    bool
    empty() const
    {
        for (const auto &q : queues)
            if (!q.empty())
                return false;
        return true;
    }

    std::size_t size(unsigned shard) const { return queues[shard].size(); }

    /** Arrivals shed at admission to @p shard (the per-core counter the
        engine's by-core breakdown and global total both read). */
    std::size_t shedCount(unsigned shard) const
    {
        return shedPerShard_[shard];
    }

    /** Total shed across all shards. */
    std::size_t
    shedCount() const
    {
        std::size_t total = 0;
        for (std::size_t s : shedPerShard_)
            total += s;
        return total;
    }

    std::size_t maxDepth() const { return maxDepth_; }

  private:
    std::vector<std::deque<Request>> queues;
    std::vector<std::size_t> shedPerShard_;
    std::vector<obs::TraceBuffer *> traceBufs_;
    std::size_t capacity_;
    std::size_t maxDepth_ = 0;
};

} // namespace hfi::serve

#endif // HFI_SERVE_SHARD_QUEUE_H
