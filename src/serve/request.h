/**
 * @file
 * Core vocabulary of the serving engine: requests, protection schemes,
 * and the handler signature shared with the FaaS platform.
 *
 * A Request is one unit of tenant work flowing through the engine. Its
 * arrival time is virtual nanoseconds on the engine's simulated wall
 * clock; its seed parameterizes the handler so every request does
 * deterministic-but-distinct real work.
 */

#ifndef HFI_SERVE_REQUEST_H
#define HFI_SERVE_REQUEST_H

#include <cstdint>
#include <functional>

#include "sfi/sandbox.h"

namespace hfi::serve
{

/**
 * How handler execution is protected against escapes/Spectre — the
 * Table 1 / §6.5 schemes. faas::Protection is a declaration-order
 * compatible alias of this enum (checked by a static_assert in
 * faas/platform.cc).
 */
enum class Scheme
{
    Unsafe,          ///< Lucet baseline: isolation, no Spectre hardening
    HfiNative,       ///< HFI native sandbox, serialized enter/exit (§3.4)
    HfiSwitchOnExit, ///< HFI with the switch-on-exit extension (§4.5)
    Swivel,          ///< Swivel-SFI compiler hardening [53]
};

const char *schemeName(Scheme s);

/**
 * A request handler: given the instance's sandbox and a per-request
 * seed, do the work. Handlers must be pure functions of (sandbox, seed)
 * — any hidden state would break the engine's determinism guarantee
 * across worker counts.
 */
using Handler = std::function<void(sfi::Sandbox &, std::uint32_t seed)>;

/** One request travelling through the engine. */
struct Request
{
    std::uint64_t id = 0;    ///< issue-order identifier
    double arrivalNs = 0;    ///< virtual wall-clock arrival time
    std::uint32_t seed = 0;  ///< handler parameterization
    int client = -1;         ///< closed-loop client, -1 for open loop
};

} // namespace hfi::serve

#endif // HFI_SERVE_REQUEST_H
