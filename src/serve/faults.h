/**
 * @file
 * Deterministic fault injection for the serving engine.
 *
 * The paper's HFI sandboxes are built to *fail safely*: an out-of-bounds
 * access, a syscall from a native sandbox, or an hmov whose effective-
 * address computation overflows all trap to the trusted runtime with the
 * reason in the exit-reason MSR (§3.3.2, §4.3). The FaaS evaluation
 * (§6.3) assumes a runtime that keeps serving while individual instances
 * misbehave. This module makes a configurable fraction of requests
 * exercise those paths so the engine's robustness machinery (timeouts,
 * bounded retry, instance quarantine + respawn — see serve/worker.cc)
 * can be measured under load.
 *
 * Every decision is a pure function of (engine seed, fault seed, request
 * id, attempt), so a campaign replays bit-identically from
 * (seed, fault_rate) — in the sequential event loop *and* in realThreads
 * mode, where requests are partitioned by id across host threads.
 * Injected HFI exits are produced by the real src/core checker paths
 * (AccessChecker::checkData/checkFetch/checkHmov, HfiContext::onSyscall)
 * and delivered through HfiContext::onFault, so the recorded MSR reason
 * and the charged costs are exactly what the hardware model produces.
 */

#ifndef HFI_SERVE_FAULTS_H
#define HFI_SERVE_FAULTS_H

#include <array>
#include <cstdint>

#include "core/context.h"

namespace hfi::serve
{

/** What an injected fault makes the request do inside the sandbox. */
enum class FaultKind : std::uint8_t
{
    None = 0,
    DataOob,       ///< load misses every implicit data region (§4.1)
    CodeOob,       ///< fetch misses every code region
    SyscallStorm,  ///< syscall burst; the first one redirects (§4.4)
    HmovOverflow,  ///< hmov effective-address overflow trap (§4.2)
    Stall,         ///< the handler wedges; the deadline watchdog fires
    Poison,        ///< request completes but corrupts its instance
};

constexpr unsigned kNumFaultKinds =
    static_cast<unsigned>(FaultKind::Poison) + 1;

const char *faultKindName(FaultKind kind);

/** True for kinds that raise an HFI exit (leave an MSR reason). */
constexpr bool
faultRaisesExit(FaultKind kind)
{
    return kind == FaultKind::DataOob || kind == FaultKind::CodeOob ||
           kind == FaultKind::SyscallStorm ||
           kind == FaultKind::HmovOverflow;
}

/** Fault-injection knobs (rate 0 = the stock happy path, zero cost). */
struct FaultConfig
{
    /** Fraction of attempts that draw a fault, in [0, 1]. */
    double rate = 0;
    /** Mixed with the engine seed; lets campaigns vary independently. */
    std::uint64_t seed = 0;
    /**
     * How long a stalled handler wedges before the livelock clears, in
     * virtual ns. With no request timeout the request eventually
     * completes (slowly); with one, the watchdog kills it first.
     */
    double stallNs = 2'000'000.0;
};

/** Per-core robustness accounting; merged engine-wide by the engine. */
struct RobustnessStats
{
    /** Faulted attempts by recorded MSR exit reason. */
    std::array<std::uint64_t, core::kNumExitReasons> exitsByReason{};
    /** Attempts that drew any injected fault kind. */
    std::uint64_t faultsInjected = 0;
    /** Faulted attempts (sum of exitsByReason). */
    std::uint64_t exits = 0;
    std::uint64_t retries = 0;
    std::uint64_t timeouts = 0;
    /** Instances discarded as suspect (poisoned or wedged). */
    std::uint64_t quarantines = 0;
    /** Pool instances recreated after a quarantine. */
    std::uint64_t respawns = 0;
    /** Requests dropped after exhausting their retry budget. */
    std::uint64_t failed = 0;
    /** Dispatches that had to wait for a pending respawn. */
    std::uint64_t poolWaits = 0;

    /** Per-core served/shed, for the by-core breakdown. */
    std::uint64_t served = 0;
    std::uint64_t shed = 0;

    void
    merge(const RobustnessStats &o)
    {
        for (unsigned r = 0; r < core::kNumExitReasons; ++r)
            exitsByReason[r] += o.exitsByReason[r];
        faultsInjected += o.faultsInjected;
        exits += o.exits;
        retries += o.retries;
        timeouts += o.timeouts;
        quarantines += o.quarantines;
        respawns += o.respawns;
        failed += o.failed;
        poolWaits += o.poolWaits;
        served += o.served;
        shed += o.shed;
    }
};

/**
 * Draws fault decisions and raises them through the real checker paths.
 *
 * decide() is stateless over (request id, attempt) so the schedule of
 * faults does not depend on service order or worker count; raise()
 * drives the core model the way a misbehaving tenant would.
 */
class FaultInjector
{
  public:
    FaultInjector(const FaultConfig &config, std::uint64_t engine_seed);

    /**
     * The fault (if any) attempt @p attempt of request @p request_id
     * draws. Retried attempts draw independently, so a retry can
     * recover a request whose first attempt faulted.
     */
    FaultKind decide(std::uint64_t request_id, unsigned attempt) const;

    /**
     * Make the sandboxed request raise @p kind against @p ctx: run the
     * corresponding access through the real checker, then deliver the
     * failed check's reason via HfiContext::onFault (the hardware trap +
     * OS signal of §3.3.2). For SyscallStorm on a live native sandbox
     * the redirect goes through HfiContext::onSyscall instead (§4.4).
     *
     * When @p ctx is not in HFI mode (the Unsafe/Swivel schemes), the
     * access is evaluated against a reference native-sandbox bank so the
     * recorded reason is still the one the real checker computes for the
     * same access.
     *
     * @return the MSR reason recorded for the exit.
     */
    core::ExitReason raise(FaultKind kind, core::HfiContext &ctx) const;

    double stallNs() const { return config_.stallNs; }

  private:
    FaultConfig config_;
    std::uint64_t seed_;
};

} // namespace hfi::serve

#endif // HFI_SERVE_FAULTS_H
