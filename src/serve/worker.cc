#include "serve/worker.h"

#include <algorithm>
#include <string>

#include "core/checker.h"

namespace hfi::serve
{

const char *
schemeName(Scheme s)
{
    switch (s) {
      case Scheme::Unsafe: return "Lucet(Unsafe)";
      case Scheme::HfiNative: return "Lucet+HFI";
      case Scheme::HfiSwitchOnExit: return "Lucet+HFI(soe)";
      case Scheme::Swivel: return "Lucet+Swivel";
    }
    return "?";
}

Worker::Worker(unsigned index, const WorkerConfig &config,
               const Handler &handler, std::uint64_t engine_seed)
    : index_(index), config_(config), handler_(handler)
{
    ownClock = std::make_unique<vm::VirtualClock>();
    ownMmu = std::make_unique<vm::Mmu>(*ownClock, config_.vaBits);
    ownCtx = std::make_unique<core::HfiContext>(*ownClock);
    sfi::RuntimeConfig rc;
    rc.backend = config_.backend;
    runtime = std::make_unique<sfi::Runtime>(*ownMmu, *ownCtx, rc);
    clock_ = ownClock.get();
    ctx_ = ownCtx.get();

    sched_.emplace(*ctx_, config_.schedulerCosts);
    serverPid = sched_->createProcess("server-core" + std::to_string(index));
    tenantPid = sched_->createProcess("tenant-core" + std::to_string(index));

    if (config_.faults.rate > 0)
        injector_.emplace(config_.faults, engine_seed);
    // Pre-warm the pool; creation is charged to the clock before the
    // first request, like a platform's boot phase.
    for (std::size_t i = 0; i < config_.poolSize; ++i) {
        auto s = runtime->createSandbox(config_.sandboxOptions);
        if (!s)
            break;
        ++stats_.instancesCreated;
        pool_.push_back(std::move(s));
    }
    freeNs_ = clock_->nowNs();
}

Worker::Worker(unsigned index, const WorkerConfig &config,
               const Handler &handler, core::HfiContext &ctx,
               sfi::Sandbox &resident_sandbox, std::uint64_t engine_seed)
    : index_(index), config_(config), handler_(handler)
{
    // Borrowed mode serves on the caller's clock against a resident
    // instance; the scheduler path is disabled so the cost sequence is
    // exactly the original closed-loop serveOne. No pool: the resident
    // instance cannot be quarantined, only its requests retried.
    config_.dispatchViaScheduler = false;
    config_.quantumNs = 0;
    config_.poolSize = 0;
    clock_ = &ctx.clock();
    ctx_ = &ctx;
    resident = &resident_sandbox;
    if (config_.faults.rate > 0)
        injector_.emplace(config_.faults, engine_seed);
    freeNs_ = clock_->nowNs();
}

void
Worker::attachTrace(obs::Trace *trace)
{
    engineTrace_ = trace;
    trace_ = trace && index_ < trace->cores() ? &trace->buffer(index_)
                                              : nullptr;
    ctx_->setTrace(trace_);
    if (sched_)
        sched_->setTrace(trace_);
    if (!trace)
        return;
    // Export-time labelers: events store raw enum values; these spell
    // them out in trace JSON and flight dumps (obs itself cannot name
    // the serve/core enums — it sits below both).
    trace->setLabeler(obs::EventType::SandboxExit, [](const obs::Event &e) {
        return core::toString(static_cast<core::ExitReason>(e.b));
    });
    trace->setLabeler(obs::EventType::HfiFault, [](const obs::Event &e) {
        return core::toString(static_cast<core::ExitReason>(e.a));
    });
    trace->setLabeler(obs::EventType::FaultInject, [](const obs::Event &e) {
        return faultKindName(static_cast<FaultKind>(e.b));
    });
}

void
Worker::exportMetrics(obs::MetricsRegistry &m) const
{
    m.counterAdd("serve.served", stats_.served);
    m.counterAdd("serve.rejected", stats_.rejected);
    m.counterAdd("serve.preemptions", stats_.preemptions);
    m.counterAdd("serve.instances_created", stats_.instancesCreated);
    m.counterAdd("serve.reclaim_batches", stats_.reclaimBatches);
    m.counterAdd("serve.hfi_state_mismatches", stats_.hfiStateMismatches);
    m.counterAdd("serve.context_switches", contextSwitches());

    const RobustnessStats &r = stats_.robustness;
    m.counterAdd("robust.faults_injected", r.faultsInjected);
    m.counterAdd("robust.exits", r.exits);
    m.counterAdd("robust.retries", r.retries);
    m.counterAdd("robust.timeouts", r.timeouts);
    m.counterAdd("robust.quarantines", r.quarantines);
    m.counterAdd("robust.respawns", r.respawns);
    m.counterAdd("robust.failed", r.failed);
    m.counterAdd("robust.pool_waits", r.poolWaits);
    for (unsigned i = 0; i < core::kNumExitReasons; ++i)
        m.counterAdd(std::string("robust.exit.") +
                         core::toString(static_cast<core::ExitReason>(i)),
                     r.exitsByReason[i]);

    obs::Histogram &h = m.histogram("serve.latency_ns");
    for (double s : latencies_.values())
        h.observe(static_cast<std::uint64_t>(s));
}

void
Worker::preemptForQuantum(double service_start_ns)
{
    if (config_.quantumNs <= 0 || !sched_ || !config_.dispatchViaScheduler)
        return;
    const double elapsed = clock_->nowNs() - service_start_ns;
    auto slices =
        static_cast<std::uint64_t>(elapsed / config_.quantumNs);
    // A sanity cap: one request cannot eat more timer ticks than a
    // pathological config would generate (keeps runaway costs bounded).
    slices = std::min<std::uint64_t>(slices, 64);

    const bool wasEnabled = ctx_->enabled();
    const core::SandboxConfig wasConfig = ctx_->config();
    for (std::uint64_t i = 0; i < slices; ++i) {
        // Timer fires: the kernel switches to another process and back,
        // xsave/xrstor-ing the live HFI register file both ways.
        sched_->switchTo(serverPid);
        sched_->switchTo(tenantPid);
        ++stats_.preemptions;
    }
    // The §3.3.3 guarantee: a process preempted mid-sandbox resumes
    // still sandboxed, with the same configuration.
    if (ctx_->enabled() != wasEnabled ||
        (wasEnabled &&
         (ctx_->config().isHybrid != wasConfig.isHybrid ||
          ctx_->config().switchOnExit != wasConfig.switchOnExit ||
          ctx_->config().isSerialized != wasConfig.isSerialized)))
        ++stats_.hfiStateMismatches;
}

void
Worker::runBody(sfi::Sandbox &sandbox, std::uint32_t seed, FaultKind kind,
                AttemptOutcome &out)
{
    if (kind == FaultKind::Stall) {
        if (config_.requestTimeoutNs > 0) {
            // The handler wedges and never returns; the watchdog kills
            // the attempt at the deadline, leaving the instance in an
            // unknown state.
            clock_->tick(clock_->nsToCycles(config_.requestTimeoutNs));
            out.completed = false;
            out.timedOut = true;
            out.poisoned = true;
            return;
        }
        // No watchdog: the livelock eventually clears and the request
        // completes — slowly. (This is why deadlines matter.)
        clock_->tick(clock_->nsToCycles(injector_->stallNs()));
    }
    handler_(sandbox, seed);
    if (kind == FaultKind::Poison)
        // The response is produced, but the request corrupted instance
        // state on the way out — it must not serve another request.
        out.poisoned = true;
}

Worker::AttemptOutcome
Worker::runProtected(sfi::Sandbox &sandbox, std::uint32_t seed,
                     double service_start_ns, FaultKind kind)
{
    AttemptOutcome out;
    const bool raises = faultRaisesExit(kind);
    switch (config_.scheme) {
      case Scheme::Unsafe:
      case Scheme::Swivel:
        // Plain springboard transition around the handler. An injected
        // bad access becomes a guard-page SIGSEGV; the recorded reason
        // still comes from the real checker (see FaultInjector::raise).
        sandbox.enter();
        runBody(sandbox, seed, kind, out);
        if (out.completed && raises) {
            out.exitReason = injector_->raise(kind, *ctx_);
            out.completed = false;
        }
        if (out.completed)
            preemptForQuantum(service_start_ns);
        sandbox.exit();
        break;
      case Scheme::HfiNative: {
        // "Two state transitions per connection" (§6.5): a serialized
        // hfi_enter into a native sandbox around the normal springboard
        // pair, and the matching exit.
        core::SandboxConfig sc;
        sc.isHybrid = false;
        sc.isSerialized = true;
        sc.exitHandler = 0x7000'0000;
        ctx_->enter(sc);
        sandbox.enter();
        runBody(sandbox, seed, kind, out);
        if (out.completed && raises) {
            out.exitReason = injector_->raise(kind, *ctx_);
            out.completed = false;
        }
        if (out.completed)
            preemptForQuantum(service_start_ns);
        sandbox.exit();
        if (out.completed) {
            ctx_->exit();
        } else {
            // The trap already left HFI mode (onFault/onSyscall
            // disabled it); a watchdog kill finds the sandbox still
            // live and tears it down as a hardware fault. Either way
            // the runtime's handler reads the MSR to classify the exit
            // (§3.3.2).
            if (ctx_->enabled())
                ctx_->onFault(core::ExitReason::HardwareFault);
            ctx_->readExitReasonMsr();
        }
        break;
      }
      case Scheme::HfiSwitchOnExit: {
        // The runtime itself sits in a serialized hybrid sandbox and
        // launches the tenant with switch-on-exit (§4.5) — entered once
        // per connection here.
        core::SandboxConfig sc;
        sc.isHybrid = false;
        sc.switchOnExit = true;
        ctx_->enter(sc);
        sandbox.enter();
        runBody(sandbox, seed, kind, out);
        if (out.completed && raises) {
            out.exitReason = injector_->raise(kind, *ctx_);
            out.completed = false;
        }
        if (out.completed)
            preemptForQuantum(service_start_ns);
        sandbox.exit();
        if (out.completed) {
            ctx_->exit();
        } else {
            if (ctx_->enabled())
                ctx_->onFault(core::ExitReason::HardwareFault);
            ctx_->readExitReasonMsr();
        }
        break;
      }
    }
    return out;
}

void
Worker::retire(std::unique_ptr<sfi::Sandbox> instance)
{
    retired.push_back(std::move(instance));
    if (retired.size() < config_.teardownBatch || !runtime)
        return;
    // One madvise spanning the whole batch of adjacent instances — the
    // §6.3.1 batched teardown; destruction then releases the VA so the
    // pool's arena stays bounded.
    std::vector<sfi::Sandbox *> raw;
    raw.reserve(retired.size());
    for (const auto &s : retired)
        raw.push_back(s.get());
    runtime->reclaim(raw, config_.reclaimPolicy, retired.size());
    ++stats_.reclaimBatches;
    retired.clear();
}

std::unique_ptr<sfi::Sandbox>
Worker::acquireInstance(double wall_ns, double *wait_ns)
{
    *wait_ns = 0;
    if (config_.poolSize == 0) {
        // FaaS instance-per-request: a cold instance from this core's
        // pool shard. Creation cost (mmap + backend setup) is part of
        // the request's latency, as it is on a real platform.
        auto fresh = runtime->createSandbox(config_.sandboxOptions);
        if (fresh)
            ++stats_.instancesCreated;
        return fresh;
    }
    // Background respawns whose delay elapsed: the platform recreated
    // quarantined slots off the critical path; the creation work is
    // charged at the first dispatch that can observe the new instance.
    while (!respawns_.empty() && respawns_.front() <= wall_ns) {
        respawns_.pop_front();
        auto s = runtime->createSandbox(config_.sandboxOptions);
        if (s) {
            ++stats_.instancesCreated;
            ++stats_.robustness.respawns;
            HFI_OBS_RECORD(trace_, obs::EventType::Respawn, wall_ns,
                           stats_.robustness.respawns);
            pool_.push_back(std::move(s));
        }
    }
    if (pool_.empty() && !respawns_.empty()) {
        // Every warm slot is quarantined right now. Quarantine always
        // schedules a respawn, so the pool can momentarily dry up but
        // never drains for good: wait for the earliest respawn.
        ++stats_.robustness.poolWaits;
        *wait_ns = respawns_.front() - wall_ns;
        respawns_.pop_front();
        auto s = runtime->createSandbox(config_.sandboxOptions);
        if (s) {
            ++stats_.instancesCreated;
            ++stats_.robustness.respawns;
            HFI_OBS_RECORD(trace_, obs::EventType::Respawn, wall_ns,
                           stats_.robustness.respawns);
            return s;
        }
    }
    if (pool_.empty()) {
        // Zero warm slots survived construction (VA exhaustion); fall
        // back to a cold synchronous create.
        auto s = runtime->createSandbox(config_.sandboxOptions);
        if (s)
            ++stats_.instancesCreated;
        return s;
    }
    auto inst = std::move(pool_.front());
    pool_.pop_front();
    return inst;
}

Worker::Outcome
Worker::serve(const Request &req)
{
    // Queueing is arithmetic (the clock never idles): service begins at
    // the later of the worker becoming free and the request arriving.
    const double begin = std::max(freeNs_, req.arrivalNs);
    // Virtual wall time the current attempt's dispatch starts; retries
    // push it forward by the failed service plus backoff.
    double wall = begin;

    for (unsigned attempt = 0;; ++attempt) {
        HFI_OBS_RECORD(trace_, obs::EventType::SandboxEnter, wall, req.id,
                       attempt);
        const FaultKind kind =
            injector_ ? injector_->decide(req.id, attempt) : FaultKind::None;
        if (kind != FaultKind::None) {
            ++stats_.robustness.faultsInjected;
            HFI_OBS_RECORD(trace_, obs::EventType::FaultInject, wall, req.id,
                           static_cast<std::uint64_t>(kind));
        }

        const double service_start = clock_->nowNs();
        if (config_.dispatchViaScheduler && sched_)
            sched_->switchTo(tenantPid);

        sfi::Sandbox *sandbox = resident;
        std::unique_ptr<sfi::Sandbox> instance;
        double poolWait = 0;
        if (!sandbox) {
            instance = acquireInstance(wall, &poolWait);
            if (!instance) {
                ++stats_.rejected;
                if (config_.dispatchViaScheduler && sched_)
                    sched_->switchTo(serverPid);
                return {};
            }
            sandbox = instance.get();
            // Warm-pool dispatch: the core's register file was swapped
            // by process switches since this instance last ran, so its
            // enforcement state must be re-installed — before the
            // scheme's own (region-locking) hfi_enter. Cold per-request
            // instances were created under the live bank and need
            // nothing.
            if (config_.poolSize > 0) {
                HFI_OBS_RECORD(trace_, obs::EventType::RegionRebind, wall,
                               req.id);
                sandbox->rebindRegions();
            }
            if (poolWait > 0)
                HFI_OBS_RECORD(trace_, obs::EventType::PoolWait, wall,
                               req.id);
        }

        AttemptOutcome at =
            runProtected(*sandbox, req.seed, service_start, kind);

        double service = clock_->nowNs() - service_start;
        if (config_.scheme == Scheme::Swivel &&
            config_.swivelEffect.computeFactor > 1.0) {
            // Swivel's hardening multiplies the executed cycles; charge
            // the extra time to the clock so the whole simulation stays
            // causal.
            const double extra =
                service * (config_.swivelEffect.computeFactor - 1.0);
            clock_->tick(clock_->nsToCycles(extra));
            service += extra;
        }
        // Watchdog: an attempt that ran past the deadline is counted
        // out even if it eventually produced a response — the client
        // has given up. (Injected stalls hit this in runBody already.)
        if (config_.requestTimeoutNs > 0 && !at.timedOut &&
            service > config_.requestTimeoutNs)
            at.timedOut = true;

        const double done = wall + poolWait + service;
        HFI_OBS_RECORD(trace_, obs::EventType::SandboxExit, done, req.id,
                       static_cast<std::uint64_t>(at.exitReason));
        if (at.timedOut) {
            HFI_OBS_RECORD(trace_, obs::EventType::WatchdogTimeout, done,
                           req.id, attempt);
            HFI_OBS_STMT(if (engineTrace_ &&
                             engineTrace_->config().flightOnWatchdog)
                             engineTrace_->flightDump("watchdog-timeout"));
        }

        // Post-response work — recycling or quarantining the instance
        // and switching back to the server process — delays the *next*
        // attempt/request but is invisible to this one's latency: the
        // response (or fault signal) has already left.
        const double post_start = clock_->nowNs();
        if (instance) {
            if (config_.poolSize > 0) {
                if (at.poisoned) {
                    // Quarantine: tear the suspect instance down (it
                    // joins the batched-madvise path) and schedule a
                    // background respawn for its slot.
                    ++stats_.robustness.quarantines;
                    HFI_OBS_RECORD(trace_, obs::EventType::Quarantine, done,
                                   req.id);
                    respawns_.push_back(done + config_.respawnDelayNs);
                    retire(std::move(instance));
                } else {
                    // HFI contained the fault (or the request was
                    // clean): the instance state is intact, back into
                    // the warm pool.
                    pool_.push_back(std::move(instance));
                }
            } else {
                if (at.poisoned) {
                    ++stats_.robustness.quarantines;
                    HFI_OBS_RECORD(trace_, obs::EventType::Quarantine, done,
                                   req.id);
                }
                retire(std::move(instance));
            }
        }
        if (config_.dispatchViaScheduler && sched_) {
            if (at.completed)
                sched_->switchTo(serverPid);
            else
                // The kernel delivers the fault signal to the trusted
                // runtime on its way back (§3.3.2).
                sched_->deliverFault(serverPid);
        }
        const double post = clock_->nowNs() - post_start;

        if (at.completed && !at.timedOut) {
            freeNs_ = done + post;
            ++stats_.served;
            ++stats_.robustness.served;
            latencies_.add(done - req.arrivalNs);

            Outcome out;
            out.ok = true;
            out.doneNs = done;
            out.latencyNs = done - req.arrivalNs;
            return out;
        }

        // Failed attempt: account it, then retry or give up.
        if (at.timedOut)
            ++stats_.robustness.timeouts;
        if (at.exitReason != core::ExitReason::None) {
            ++stats_.robustness.exits;
            ++stats_.robustness
                  .exitsByReason[static_cast<unsigned>(at.exitReason)];
        }

        if (attempt >= config_.maxRetries) {
            ++stats_.robustness.failed;
            freeNs_ = done + post;
            Outcome out;
            out.failed = true;
            out.doneNs = done; // the error response leaves before cleanup
            out.latencyNs = done - req.arrivalNs;
            return out;
        }
        ++stats_.robustness.retries;
        // Exponential backoff before the next attempt; the worker is
        // idle for the gap (arithmetic time, like queueing delay).
        wall = done + post +
               config_.retryBackoffNs * static_cast<double>(1ULL << attempt);
        HFI_OBS_RECORD(trace_, obs::EventType::Retry, wall, req.id,
                       attempt + 1);
    }
}

} // namespace hfi::serve
