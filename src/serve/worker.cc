#include "serve/worker.h"

#include <algorithm>

namespace hfi::serve
{

const char *
schemeName(Scheme s)
{
    switch (s) {
      case Scheme::Unsafe: return "Lucet(Unsafe)";
      case Scheme::HfiNative: return "Lucet+HFI";
      case Scheme::HfiSwitchOnExit: return "Lucet+HFI(soe)";
      case Scheme::Swivel: return "Lucet+Swivel";
    }
    return "?";
}

Worker::Worker(unsigned index, const WorkerConfig &config,
               const Handler &handler)
    : index_(index), config_(config), handler_(handler)
{
    ownClock = std::make_unique<vm::VirtualClock>();
    ownMmu = std::make_unique<vm::Mmu>(*ownClock, config_.vaBits);
    ownCtx = std::make_unique<core::HfiContext>(*ownClock);
    sfi::RuntimeConfig rc;
    rc.backend = config_.backend;
    runtime = std::make_unique<sfi::Runtime>(*ownMmu, *ownCtx, rc);
    clock_ = ownClock.get();
    ctx_ = ownCtx.get();

    sched_.emplace(*ctx_, config_.schedulerCosts);
    serverPid = sched_->createProcess("server-core" + std::to_string(index));
    tenantPid = sched_->createProcess("tenant-core" + std::to_string(index));
    freeNs_ = clock_->nowNs();
}

Worker::Worker(unsigned index, const WorkerConfig &config,
               const Handler &handler, core::HfiContext &ctx,
               sfi::Sandbox &resident_sandbox)
    : index_(index), config_(config), handler_(handler)
{
    // Borrowed mode serves on the caller's clock against a resident
    // instance; the scheduler path is disabled so the cost sequence is
    // exactly the original closed-loop serveOne.
    config_.dispatchViaScheduler = false;
    config_.quantumNs = 0;
    clock_ = &ctx.clock();
    ctx_ = &ctx;
    resident = &resident_sandbox;
    freeNs_ = clock_->nowNs();
}

void
Worker::preemptForQuantum(double service_start_ns)
{
    if (config_.quantumNs <= 0 || !sched_ || !config_.dispatchViaScheduler)
        return;
    const double elapsed = clock_->nowNs() - service_start_ns;
    auto slices =
        static_cast<std::uint64_t>(elapsed / config_.quantumNs);
    // A sanity cap: one request cannot eat more timer ticks than a
    // pathological config would generate (keeps runaway costs bounded).
    slices = std::min<std::uint64_t>(slices, 64);

    const bool wasEnabled = ctx_->enabled();
    const core::SandboxConfig wasConfig = ctx_->config();
    for (std::uint64_t i = 0; i < slices; ++i) {
        // Timer fires: the kernel switches to another process and back,
        // xsave/xrstor-ing the live HFI register file both ways.
        sched_->switchTo(serverPid);
        sched_->switchTo(tenantPid);
        ++stats_.preemptions;
    }
    // The §3.3.3 guarantee: a process preempted mid-sandbox resumes
    // still sandboxed, with the same configuration.
    if (ctx_->enabled() != wasEnabled ||
        (wasEnabled &&
         (ctx_->config().isHybrid != wasConfig.isHybrid ||
          ctx_->config().switchOnExit != wasConfig.switchOnExit ||
          ctx_->config().isSerialized != wasConfig.isSerialized)))
        ++stats_.hfiStateMismatches;
}

void
Worker::runProtected(sfi::Sandbox &sandbox, std::uint32_t seed,
                     double service_start_ns)
{
    switch (config_.scheme) {
      case Scheme::Unsafe:
      case Scheme::Swivel:
        // Plain springboard transition around the handler.
        sandbox.enter();
        handler_(sandbox, seed);
        preemptForQuantum(service_start_ns);
        sandbox.exit();
        break;
      case Scheme::HfiNative: {
        // "Two state transitions per connection" (§6.5): a serialized
        // hfi_enter into a native sandbox around the normal springboard
        // pair, and the matching exit.
        core::SandboxConfig sc;
        sc.isHybrid = false;
        sc.isSerialized = true;
        sc.exitHandler = 0x7000'0000;
        ctx_->enter(sc);
        sandbox.enter();
        handler_(sandbox, seed);
        preemptForQuantum(service_start_ns);
        sandbox.exit();
        ctx_->exit();
        break;
      }
      case Scheme::HfiSwitchOnExit: {
        // The runtime itself sits in a serialized hybrid sandbox and
        // launches the tenant with switch-on-exit (§4.5) — entered once
        // per connection here.
        core::SandboxConfig sc;
        sc.isHybrid = false;
        sc.switchOnExit = true;
        ctx_->enter(sc);
        sandbox.enter();
        handler_(sandbox, seed);
        preemptForQuantum(service_start_ns);
        sandbox.exit();
        ctx_->exit();
        break;
      }
    }
}

void
Worker::retire(std::unique_ptr<sfi::Sandbox> instance)
{
    retired.push_back(std::move(instance));
    if (retired.size() < config_.teardownBatch || !runtime)
        return;
    // One madvise spanning the whole batch of adjacent instances — the
    // §6.3.1 batched teardown; destruction then releases the VA so the
    // pool's arena stays bounded.
    std::vector<sfi::Sandbox *> raw;
    raw.reserve(retired.size());
    for (const auto &s : retired)
        raw.push_back(s.get());
    runtime->reclaim(raw, config_.reclaimPolicy, retired.size());
    ++stats_.reclaimBatches;
    retired.clear();
}

Worker::Outcome
Worker::serve(const Request &req)
{
    // Queueing is arithmetic (the clock never idles): service begins at
    // the later of the worker becoming free and the request arriving.
    const double begin = std::max(freeNs_, req.arrivalNs);
    const double service_start = clock_->nowNs();

    if (config_.dispatchViaScheduler && sched_)
        sched_->switchTo(tenantPid);

    sfi::Sandbox *sandbox = resident;
    std::unique_ptr<sfi::Sandbox> fresh;
    if (!sandbox) {
        // FaaS instance-per-request: a cold instance from this core's
        // pool shard. Creation cost (mmap + backend setup) is part of
        // the request's latency, as it is on a real platform.
        fresh = runtime->createSandbox(config_.sandboxOptions);
        if (!fresh) {
            ++stats_.rejected;
            if (config_.dispatchViaScheduler && sched_)
                sched_->switchTo(serverPid);
            return {};
        }
        ++stats_.instancesCreated;
        sandbox = fresh.get();
    }

    runProtected(*sandbox, req.seed, service_start);

    double service = clock_->nowNs() - service_start;
    if (config_.scheme == Scheme::Swivel &&
        config_.swivelEffect.computeFactor > 1.0) {
        // Swivel's hardening multiplies the executed cycles; charge the
        // extra time to the clock so the whole simulation stays causal.
        const double extra =
            service * (config_.swivelEffect.computeFactor - 1.0);
        clock_->tick(clock_->nsToCycles(extra));
        service += extra;
    }
    const double done = begin + service;

    // Post-response work — retiring the instance (with its batched
    // madvise teardown when the batch fills) and switching back to the
    // server process — delays the *next* request but is invisible to
    // this one's latency: the response has already left.
    const double post_start = clock_->nowNs();
    if (fresh)
        retire(std::move(fresh));
    if (config_.dispatchViaScheduler && sched_)
        sched_->switchTo(serverPid);
    const double post = clock_->nowNs() - post_start;

    freeNs_ = done + post;
    ++stats_.served;
    latencies_.add(done - req.arrivalNs);

    Outcome out;
    out.ok = true;
    out.doneNs = done;
    out.latencyNs = done - req.arrivalNs;
    return out;
}

} // namespace hfi::serve
