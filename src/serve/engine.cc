#include "serve/engine.h"

#include <algorithm>
#include <thread>

#include "serve/shard_queue.h"

namespace hfi::serve
{

ServeEngine::ServeEngine(EngineConfig config, Handler handler)
    : config_(std::move(config)), handler_(std::move(handler))
{
}

/**
 * Fill the ServeResult scalar fields from the merged registry. Counter
 * sums are order-independent uint64 additions, so these views are
 * bit-identical to the manual per-field merging they replaced — in both
 * the sequential and the threaded driver, which now share this one
 * reduction.
 */
static void
deriveFromMetrics(ServeResult &res)
{
    const obs::MetricsRegistry &m = res.metrics;
    res.served = static_cast<std::size_t>(m.counter("serve.served"));
    res.shed = static_cast<std::size_t>(m.counter("serve.shed"));
    res.rejected = static_cast<std::size_t>(m.counter("serve.rejected"));
    res.stolen = static_cast<std::size_t>(m.counter("serve.stolen"));
    res.maxQueueDepth =
        static_cast<std::size_t>(m.gauge("serve.max_queue_depth"));
    res.contextSwitches = m.counter("serve.context_switches");
    res.preemptions = m.counter("serve.preemptions");
    res.instancesCreated = m.counter("serve.instances_created");
    res.reclaimBatches = m.counter("serve.reclaim_batches");
    res.hfiStateMismatches = m.counter("serve.hfi_state_mismatches");
}

bool
ServeEngine::threadable(const EngineConfig &config)
{
    return config.realThreads && config.mode == LoadMode::OpenLoop &&
           config.sharding == Sharding::RoundRobin &&
           !config.workStealing && config.workers > 1;
}

ServeResult
ServeEngine::run()
{
    if (threadable(config_))
        return runThreaded();

    std::vector<std::unique_ptr<Worker>> workers;
    workers.reserve(config_.workers);
    for (unsigned w = 0; w < config_.workers; ++w)
        workers.push_back(std::make_unique<Worker>(w, config_.worker,
                                                   handler_, config_.seed));

    if (config_.mode == LoadMode::ClosedLoop) {
        ClosedLoopSource source(config_.clients, config_.requests, 0.0,
                                config_.seed, config_.closedLoopLegacySeeds);
        return drive(workers, source, config_, 0.0);
    }
    OpenLoopPoissonSource source(config_.requests,
                                 config_.meanInterarrivalNs, config_.seed,
                                 0.0);
    return drive(workers, source, config_, 0.0);
}

ServeResult
ServeEngine::runThreaded()
{
    // With round-robin sharding and no stealing, worker w only ever
    // touches shard w, and open-loop arrivals do not depend on
    // completions — so the global event loop is the disjoint union of n
    // per-shard event loops, one per core. Generate the one global
    // arrival sequence, partition it by shard, and replay each
    // partition through the ordinary drive() on its own host thread
    // with a single-worker queue set. Per-shard event order (including
    // the admit-vs-serve tie break and bounded-queue shedding) is
    // exactly what the shard would see inside the sequential loop, so
    // the merged result is bit-identical.
    const unsigned n = config_.workers;
    OpenLoopPoissonSource global(config_.requests, config_.meanInterarrivalNs,
                                 config_.seed, 0.0);
    std::vector<std::vector<Request>> parts(n);
    for (const Request &req : global.arrivals())
        parts[static_cast<std::size_t>(req.id % n)].push_back(req);

    std::vector<ServeResult> sub(n);
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (unsigned w = 0; w < n; ++w) {
        threads.emplace_back([this, w, &parts, &sub] {
            std::vector<std::unique_ptr<Worker>> one;
            one.push_back(std::make_unique<Worker>(w, config_.worker,
                                                   handler_, config_.seed));
            VectorSource source(std::move(parts[w]));
            sub[w] = drive(one, source, config_, 0.0);
        });
    }
    for (auto &t : threads)
        t.join();

    // Merge in worker-index order — the same order the sequential
    // driver folds per-worker recorders — so every derived statistic
    // matches bit-for-bit.
    ServeResult res;
    res.usedThreads = n;
    res.perCore.resize(n);
    for (unsigned w = 0; w < n; ++w) {
        const ServeResult &s = sub[w];
        // Same single typed merge the sequential driver uses: each
        // sub-run's registry (counters sum, gauges max) carries every
        // scalar the result's view fields need — including per-shard
        // shed, the one source of truth, with no double counting.
        res.metrics.merge(s.metrics);
        res.latencies.merge(s.latencies);
        res.durationNs = std::max(res.durationNs, s.durationNs);
        // Each sub-run drove one worker over one shard: its per-core
        // entry 0 *is* core w's breakdown.
        res.perCore[w] = s.perCore.empty() ? RobustnessStats{}
                                           : s.perCore[0];
        res.robustness.merge(res.perCore[w]);
    }
    deriveFromMetrics(res);
    res.throughputRps = res.latencies.throughput(res.durationNs);
    res.meanLatencyNs = res.latencies.mean();
    res.latency = res.latencies.percentiles();
    return res;
}

ServeResult
ServeEngine::runResident(const EngineConfig &config, core::HfiContext &ctx,
                         sfi::Sandbox &sandbox, const Handler &handler)
{
    const double start = ctx.clock().nowNs();
    std::vector<std::unique_ptr<Worker>> workers;
    workers.push_back(std::make_unique<Worker>(0, config.worker, handler,
                                               ctx, sandbox, config.seed));

    if (config.mode == LoadMode::ClosedLoop) {
        ClosedLoopSource source(config.clients, config.requests, start,
                                config.seed, config.closedLoopLegacySeeds);
        return drive(workers, source, config, start);
    }
    OpenLoopPoissonSource source(config.requests, config.meanInterarrivalNs,
                                 config.seed, start);
    return drive(workers, source, config, start);
}

ServeResult
ServeEngine::drive(std::vector<std::unique_ptr<Worker>> &workers,
                   ArrivalSource &source, const EngineConfig &config,
                   double start_ns)
{
    const unsigned n = static_cast<unsigned>(workers.size());
    ShardedQueues queues(n, config.queueCapacity);
    std::size_t stolen = 0;

    // Wire the trace: worker w (and its HfiContext/Scheduler) records
    // into the ring of its *global* core index, and so does queue shard
    // w — in the threaded driver this sub-run drives one worker whose
    // index is the core, so the per-core streams come out identical to
    // the sequential run's.
    HFI_OBS_STMT(if (config.trace) for (unsigned w = 0; w < n; ++w) {
        workers[w]->attachTrace(config.trace);
        queues.setTrace(w, &config.trace->buffer(workers[w]->index()));
    });

    std::optional<Request> staged = source.next();

    while (true) {
        // The earliest possible service start across all cores: each
        // worker considers its own shard first, then (work stealing)
        // the deepest other shard. Ties break to the lowest core index,
        // so the schedule is a pure function of the configuration.
        int bestWorker = -1;
        int bestShard = -1;
        double bestStart = 0;
        for (unsigned w = 0; w < n; ++w) {
            const int shard = queues.pickFor(w, config.workStealing);
            if (shard < 0)
                continue;
            const double start = std::max(
                workers[w]->freeNs(),
                queues.front(static_cast<unsigned>(shard)).arrivalNs);
            if (bestWorker < 0 || start < bestStart) {
                bestWorker = static_cast<int>(w);
                bestShard = shard;
                bestStart = start;
            }
        }

        // Admit any arrival that happens strictly before that start
        // (at an exact tie the server dequeues first, so an arrival at
        // the same instant sees the freed slot).
        if (staged &&
            (bestWorker < 0 || staged->arrivalNs < bestStart)) {
            const unsigned shard =
                config.sharding == Sharding::SingleShard
                    ? 0
                    : static_cast<unsigned>(staged->id % n);
            queues.offer(shard, *staged);
            staged = source.next();
            continue;
        }

        if (bestWorker < 0)
            break; // no queued work and the source is dry

        const Request req = queues.take(static_cast<unsigned>(bestShard));
        if (bestShard != bestWorker)
            ++stolen;
        // Pop/steal are acts of the serving core: they go to *its* ring
        // (a steal names the victim core in b), stamped at the service
        // start the event loop computed.
        HFI_OBS_STMT(if (config.trace) config.trace
                         ->buffer(workers[bestWorker]->index())
                         .record(bestShard != bestWorker
                                     ? obs::EventType::QueueSteal
                                     : obs::EventType::QueuePop,
                                 bestStart, req.id,
                                 workers[bestShard]->index()));
        const auto outcome = workers[bestWorker]->serve(req);
        // A request that exhausted its retries still produced an error
        // response, so a closed-loop client unblocks either way.
        if (outcome.ok || outcome.failed)
            source.onComplete(req, outcome.doneNs);
        // A closed-loop source may only now have a next arrival.
        if (!staged)
            staged = source.next();
    }

    ServeResult res;
    res.perCore.resize(n);
    double lastFree = start_ns;
    for (unsigned w = 0; w < n; ++w) {
        // One typed merge per worker: the worker exports its plain
        // counters into a registry (plus this shard's admission shed)
        // and the engine folds registries — no per-field summing here.
        obs::MetricsRegistry wm;
        workers[w]->exportMetrics(wm);
        wm.counterAdd("serve.shed", queues.shedCount(w));
        res.metrics.merge(wm);

        res.latencies.merge(workers[w]->latencies());
        lastFree = std::max(lastFree, workers[w]->freeNs());

        // By-core breakdown; shed comes from the core's queue shard —
        // the one source of truth the engine-wide total sums (the
        // threaded merge derives it the same way, so sequential and
        // threaded shed always agree).
        res.perCore[w] = workers[w]->stats().robustness;
        res.perCore[w].shed = queues.shedCount(w);
        res.robustness.merge(res.perCore[w]);
    }
    res.metrics.counterAdd("serve.stolen", stolen);
    res.metrics.gaugeSet("serve.max_queue_depth", queues.maxDepth());

    deriveFromMetrics(res);
    res.durationNs = lastFree - start_ns;
    res.throughputRps = res.latencies.throughput(res.durationNs);
    res.meanLatencyNs = res.latencies.mean();
    res.latency = res.latencies.percentiles();
    return res;
}

} // namespace hfi::serve
