#include "serve/engine.h"

#include <algorithm>

#include "serve/shard_queue.h"

namespace hfi::serve
{

ServeEngine::ServeEngine(EngineConfig config, Handler handler)
    : config_(std::move(config)), handler_(std::move(handler))
{
}

ServeResult
ServeEngine::run()
{
    std::vector<std::unique_ptr<Worker>> workers;
    workers.reserve(config_.workers);
    for (unsigned w = 0; w < config_.workers; ++w)
        workers.push_back(
            std::make_unique<Worker>(w, config_.worker, handler_));

    if (config_.mode == LoadMode::ClosedLoop) {
        ClosedLoopSource source(config_.clients, config_.requests, 0.0);
        return drive(workers, source, config_, 0.0);
    }
    OpenLoopPoissonSource source(config_.requests,
                                 config_.meanInterarrivalNs, config_.seed,
                                 0.0);
    return drive(workers, source, config_, 0.0);
}

ServeResult
ServeEngine::runResident(const EngineConfig &config, core::HfiContext &ctx,
                         sfi::Sandbox &sandbox, const Handler &handler)
{
    const double start = ctx.clock().nowNs();
    std::vector<std::unique_ptr<Worker>> workers;
    workers.push_back(
        std::make_unique<Worker>(0, config.worker, handler, ctx, sandbox));

    if (config.mode == LoadMode::ClosedLoop) {
        ClosedLoopSource source(config.clients, config.requests, start);
        return drive(workers, source, config, start);
    }
    OpenLoopPoissonSource source(config.requests, config.meanInterarrivalNs,
                                 config.seed, start);
    return drive(workers, source, config, start);
}

ServeResult
ServeEngine::drive(std::vector<std::unique_ptr<Worker>> &workers,
                   ArrivalSource &source, const EngineConfig &config,
                   double start_ns)
{
    const unsigned n = static_cast<unsigned>(workers.size());
    ShardedQueues queues(n, config.queueCapacity);
    std::size_t stolen = 0;

    std::optional<Request> staged = source.next();

    while (true) {
        // The earliest possible service start across all cores: each
        // worker considers its own shard first, then (work stealing)
        // the deepest other shard. Ties break to the lowest core index,
        // so the schedule is a pure function of the configuration.
        int bestWorker = -1;
        int bestShard = -1;
        double bestStart = 0;
        for (unsigned w = 0; w < n; ++w) {
            const int shard = queues.pickFor(w, config.workStealing);
            if (shard < 0)
                continue;
            const double start = std::max(
                workers[w]->freeNs(),
                queues.front(static_cast<unsigned>(shard)).arrivalNs);
            if (bestWorker < 0 || start < bestStart) {
                bestWorker = static_cast<int>(w);
                bestShard = shard;
                bestStart = start;
            }
        }

        // Admit any arrival that happens strictly before that start
        // (at an exact tie the server dequeues first, so an arrival at
        // the same instant sees the freed slot).
        if (staged &&
            (bestWorker < 0 || staged->arrivalNs < bestStart)) {
            const unsigned shard =
                config.sharding == Sharding::SingleShard
                    ? 0
                    : static_cast<unsigned>(staged->id % n);
            queues.offer(shard, *staged);
            staged = source.next();
            continue;
        }

        if (bestWorker < 0)
            break; // no queued work and the source is dry

        const Request req = queues.take(static_cast<unsigned>(bestShard));
        if (bestShard != bestWorker)
            ++stolen;
        const auto outcome = workers[bestWorker]->serve(req);
        if (outcome.ok)
            source.onComplete(req, outcome.doneNs);
        // A closed-loop source may only now have a next arrival.
        if (!staged)
            staged = source.next();
    }

    ServeResult res;
    res.shed = queues.shedCount();
    res.stolen = stolen;
    res.maxQueueDepth = queues.maxDepth();
    double lastFree = start_ns;
    for (const auto &w : workers) {
        const auto &stats = w->stats();
        res.served += stats.served;
        res.rejected += stats.rejected;
        res.preemptions += stats.preemptions;
        res.instancesCreated += stats.instancesCreated;
        res.reclaimBatches += stats.reclaimBatches;
        res.hfiStateMismatches += stats.hfiStateMismatches;
        res.contextSwitches += w->contextSwitches();
        res.latencies.merge(w->latencies());
        lastFree = std::max(lastFree, w->freeNs());
    }
    res.durationNs = lastFree - start_ns;
    res.throughputRps = res.latencies.throughput(res.durationNs);
    res.meanLatencyNs = res.latencies.mean();
    res.latency = res.latencies.percentiles();
    return res;
}

} // namespace hfi::serve
