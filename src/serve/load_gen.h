/**
 * @file
 * Load generation for the serving engine: an *open-loop* Poisson
 * arrival process and the *closed-loop* client population of Table 1.
 *
 * The distinction matters for tail latency (and is the reason both
 * exist, see EXPERIMENTS.md): a closed loop self-throttles — a slow
 * server slows its own clients down, hiding overload — while an open
 * loop keeps arriving at the configured rate regardless of server
 * state, which is what exposes queueing collapse and makes admission
 * control meaningful. Both generators are seeded and fully
 * deterministic on the virtual clock.
 */

#ifndef HFI_SERVE_LOAD_GEN_H
#define HFI_SERVE_LOAD_GEN_H

#include <cstdint>
#include <optional>
#include <vector>

#include "serve/request.h"

namespace hfi::serve
{

/** splitmix64 step — the engine's only RNG primitive. */
std::uint64_t splitmix64(std::uint64_t &state);

/** Deterministic per-request handler seed for open-loop request @p id. */
std::uint32_t mixSeed(std::uint64_t seed, std::uint64_t id);

/**
 * A source of requests, pulled by the engine in arrival order.
 *
 * next() returns the next request to arrive, or nullopt when the source
 * is (possibly temporarily) dry. Closed-loop sources replenish when
 * onComplete() reports a finished request.
 */
class ArrivalSource
{
  public:
    virtual ~ArrivalSource() = default;

    virtual std::optional<Request> next() = 0;

    /** A previously issued request completed at @p done_ns. */
    virtual void onComplete(const Request &req, double done_ns)
    {
        (void)req;
        (void)done_ns;
    }
};

/**
 * Open loop: @p requests arrivals with exponential(mean) interarrival
 * gaps — a Poisson process — generated up front from @p seed.
 */
class OpenLoopPoissonSource : public ArrivalSource
{
  public:
    OpenLoopPoissonSource(unsigned requests, double mean_interarrival_ns,
                          std::uint64_t seed, double start_ns = 0);

    std::optional<Request> next() override;

    const std::vector<Request> &arrivals() const { return arrivals_; }

  private:
    std::vector<Request> arrivals_;
    std::size_t nextIndex = 0;
};

/**
 * A source over a pre-built arrival list (already in time order).
 *
 * This is how the threaded engine drives one shard: the open-loop
 * arrival sequence is generated once up front, partitioned by shard,
 * and each host thread replays its partition through the ordinary
 * event loop.
 */
class VectorSource : public ArrivalSource
{
  public:
    explicit VectorSource(std::vector<Request> arrivals)
        : arrivals_(std::move(arrivals))
    {
    }

    std::optional<Request>
    next() override
    {
        if (nextIndex >= arrivals_.size())
            return std::nullopt;
        return arrivals_[nextIndex++];
    }

  private:
    std::vector<Request> arrivals_;
    std::size_t nextIndex = 0;
};

/**
 * Closed loop: @p clients concurrent clients, each sending its next
 * request the moment its previous response lands (the Table 1 model).
 * Earliest-ready client issues first; ties go to the lowest index.
 *
 * Per-request handler seeds mix @p seed with the issue index, so runs
 * with different engine seeds draw different work. @p legacy_seeds
 * restores the historical `issued * 2654435761u` sequence (which
 * ignored the engine seed — the bug) for Table 1 golden compatibility.
 */
class ClosedLoopSource : public ArrivalSource
{
  public:
    ClosedLoopSource(unsigned clients, unsigned requests, double start_ns,
                     std::uint64_t seed = 0, bool legacy_seeds = true);

    std::optional<Request> next() override;
    void onComplete(const Request &req, double done_ns) override;

  private:
    std::vector<double> ready;
    std::vector<bool> outstanding;
    unsigned issued = 0;
    unsigned total;
    std::uint64_t seed_;
    bool legacySeeds_;
};

} // namespace hfi::serve

#endif // HFI_SERVE_LOAD_GEN_H
