#include "serve/faults.h"

#include "core/checker.h"
#include "serve/load_gen.h"

namespace hfi::serve
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::None: return "none";
      case FaultKind::DataOob: return "data-oob";
      case FaultKind::CodeOob: return "code-oob";
      case FaultKind::SyscallStorm: return "syscall-storm";
      case FaultKind::HmovOverflow: return "hmov-overflow";
      case FaultKind::Stall: return "stall";
      case FaultKind::Poison: return "poison";
    }
    return "?";
}

namespace
{

/**
 * The bank injected accesses are checked against when the live context
 * is not in HFI mode (Unsafe/Swivel schemes, or an hmov probe from a
 * native sandbox whose bank carries no explicit region): an enabled
 * native-sandbox register file with one small explicit region, so the
 * same wild access produces the same checker verdict it would under
 * HFI.
 */
const core::HfiRegisterFile &
referenceBank()
{
    static const core::HfiRegisterFile bank = [] {
        core::HfiRegisterFile b;
        b.config.isHybrid = false;
        b.enabled = true;
        core::ExplicitDataRegion heap;
        heap.baseAddress = 0x1000'0000;
        heap.bound = 64 * 1024;
        heap.permRead = true;
        heap.permWrite = true;
        heap.isLargeRegion = false;
        b.setRegion(core::kFirstExplicitRegion, core::Region{heap});
        return b;
    }();
    return bank;
}

/** An address no configured region of any scheme's bank contains. */
constexpr core::VAddr kWildAddress = 0xdead'beef'f000ULL;

} // namespace

FaultInjector::FaultInjector(const FaultConfig &config,
                             std::uint64_t engine_seed)
    : config_(config)
{
    // Fold the engine seed and the injector's own seed into one stream
    // key; splitmix64 separates nearby seeds.
    std::uint64_t state = engine_seed ^ (config.seed * 0x9e3779b97f4a7c15ULL);
    seed_ = splitmix64(state);
}

FaultKind
FaultInjector::decide(std::uint64_t request_id, unsigned attempt) const
{
    if (config_.rate <= 0)
        return FaultKind::None;
    // Pure function of (seed, id, attempt): the draw is independent of
    // service order and of how requests are partitioned across cores.
    std::uint64_t state = seed_ ^ (request_id * 0x2545f4914f6cdd1dULL) ^
                          (static_cast<std::uint64_t>(attempt) << 48);
    const double u =
        static_cast<double>(splitmix64(state) >> 11) * 0x1p-53;
    if (u >= config_.rate)
        return FaultKind::None;
    // Weighted over the injectable kinds: containable HFI exits and
    // state corruption dominate real fault populations; a full wedge
    // (the only kind that burns a whole deadline) is the rare
    // pathological case.
    static constexpr struct
    {
        FaultKind kind;
        unsigned weight;
    } kMix[] = {
        {FaultKind::DataOob, 3},      {FaultKind::CodeOob, 3},
        {FaultKind::SyscallStorm, 3}, {FaultKind::HmovOverflow, 3},
        {FaultKind::Stall, 1},        {FaultKind::Poison, 3},
    };
    constexpr unsigned kTotal = 16; // sum of the weights above
    std::uint64_t pick = splitmix64(state) % kTotal;
    for (const auto &m : kMix) {
        if (pick < m.weight)
            return m.kind;
        pick -= m.weight;
    }
    return FaultKind::Poison; // unreachable; the weights sum to kTotal
}

core::ExitReason
FaultInjector::raise(FaultKind kind, core::HfiContext &ctx) const
{
    using core::AccessChecker;
    using core::ExitReason;

    const core::HfiRegisterFile &live =
        ctx.enabled() ? ctx.registerFile() : referenceBank();

    ExitReason reason = ExitReason::None;
    switch (kind) {
      case FaultKind::DataOob: {
        // A load outside every implicit data region — the parallel
        // comparators next to the dtb miss (§4.1).
        const auto res = AccessChecker::checkData(live, kWildAddress, 8,
                                                  /*write=*/false);
        reason = res.ok ? ExitReason::DataBoundsViolation : res.reason;
        break;
      }
      case FaultKind::CodeOob: {
        // An indirect jump out of the code regions.
        const auto res = AccessChecker::checkFetch(live, kWildAddress);
        reason = res.ok ? ExitReason::CodeBoundsViolation : res.reason;
        break;
      }
      case FaultKind::SyscallStorm: {
        if (ctx.enabled() && !ctx.config().isHybrid) {
            // The burst's first syscall is converted into a jump to the
            // exit handler and leaves HFI mode (§4.4); the rest of the
            // storm never executes sandboxed.
            ctx.onSyscall();
            return ctx.exitReason();
        }
        // No HFI redirect in this scheme: the seccomp interposer kills
        // the instance and the runtime records the equivalent reason.
        reason = ExitReason::Syscall;
        break;
      }
      case FaultKind::HmovOverflow: {
        // hmov whose scaled index overflows the effective-address
        // computation (§4.2). The worker's native bank carries no
        // explicit region, so probe the reference bank's — selectRegion
        // would otherwise fail earlier with HmovEmptyRegion.
        core::HmovOperands ops;
        ops.index = static_cast<std::int64_t>(1) << 62;
        ops.scale = 8;
        ops.displacement = 0;
        ops.width = 8;
        const core::HfiRegisterFile &bank =
            live.flat(core::kFirstExplicitRegion).kind ==
                    core::RegionKind::ExplicitData
                ? live
                : referenceBank();
        const auto res = AccessChecker::checkHmov(bank, 0, ops,
                                                  /*write=*/false);
        reason = res.ok ? ExitReason::HmovOverflow : res.reason;
        break;
      }
      case FaultKind::None:
      case FaultKind::Stall:
      case FaultKind::Poison:
        return ExitReason::None; // not HFI exits; handled by the worker
    }

    // The hardware trap: disable HFI, record the reason in the MSR; the
    // OS then delivers a signal to the trusted runtime (§3.3.2).
    ctx.onFault(reason);
    return reason;
}

} // namespace hfi::serve
