#include "serve/load_gen.h"

#include <cmath>

namespace hfi::serve
{

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint32_t
mixSeed(std::uint64_t seed, std::uint64_t id)
{
    std::uint64_t state = seed ^ (id * 0x2545f4914f6cdd1dULL);
    return static_cast<std::uint32_t>(splitmix64(state));
}

OpenLoopPoissonSource::OpenLoopPoissonSource(unsigned requests,
                                             double mean_interarrival_ns,
                                             std::uint64_t seed,
                                             double start_ns)
{
    arrivals_.reserve(requests);
    std::uint64_t state = seed ^ 0x7e57ab1e5eedULL;
    double t = start_ns;
    for (unsigned i = 0; i < requests; ++i) {
        // Inverse-CDF exponential sample; u is uniform in [0, 1), so
        // 1-u is in (0, 1] and the log is finite.
        const double u =
            static_cast<double>(splitmix64(state) >> 11) * 0x1p-53;
        t += -mean_interarrival_ns * std::log(1.0 - u);
        Request req;
        req.id = i;
        req.arrivalNs = t;
        req.seed = mixSeed(seed, i);
        arrivals_.push_back(req);
    }
}

std::optional<Request>
OpenLoopPoissonSource::next()
{
    if (nextIndex >= arrivals_.size())
        return std::nullopt;
    return arrivals_[nextIndex++];
}

ClosedLoopSource::ClosedLoopSource(unsigned clients, unsigned requests,
                                   double start_ns, std::uint64_t seed,
                                   bool legacy_seeds)
    : ready(clients, start_ns), outstanding(clients, false), total(requests),
      seed_(seed), legacySeeds_(legacy_seeds)
{
}

std::optional<Request>
ClosedLoopSource::next()
{
    if (issued >= total || ready.empty())
        return std::nullopt;
    int who = -1;
    for (unsigned cl = 0; cl < ready.size(); ++cl) {
        if (outstanding[cl])
            continue;
        if (who < 0 || ready[cl] < ready[who])
            who = static_cast<int>(cl);
    }
    if (who < 0)
        return std::nullopt; // every client is waiting on a response
    Request req;
    req.id = issued;
    req.arrivalNs = ready[who];
    // Per-request work draws from the engine seed like the open-loop
    // source; the legacy Knuth-hash sequence (which ignored the seed)
    // is kept behind a flag so Table 1 reproduces bit-for-bit.
    req.seed = legacySeeds_
                   ? static_cast<std::uint32_t>(issued) * 2654435761u
                   : mixSeed(seed_, issued);
    req.client = who;
    outstanding[who] = true;
    ++issued;
    return req;
}

void
ClosedLoopSource::onComplete(const Request &req, double done_ns)
{
    if (req.client < 0 ||
        req.client >= static_cast<int>(ready.size()))
        return;
    ready[req.client] = done_ns;
    outstanding[req.client] = false;
}

} // namespace hfi::serve
