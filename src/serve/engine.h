/**
 * @file
 * The multi-core sandbox serving engine.
 *
 * N simulated cores — each a serve::Worker with its own VirtualClock,
 * Mmu arena, HfiContext (per-core region registers and exit-reason MSR)
 * and os::Scheduler — pull requests from sharded run queues with work
 * stealing and serve them under a Table 1 protection scheme. Load is
 * generated either open-loop (seeded Poisson arrivals, with bounded
 * queues and shedding at admission) or closed-loop (the Table 1 client
 * population). Per-worker latency accumulators are merged into global
 * p50/p95/p99/p999.
 *
 * The engine is a sequential discrete-event simulation: at every step
 * the earliest actionable event (an arrival, or the earliest possible
 * service start across all cores, ties to the lowest core index) is
 * processed. All state is seeded and virtual-clocked, so a run is
 * bit-for-bit reproducible — and, when requests do not contend, the
 * per-request latency multiset is identical for any worker count.
 */

#ifndef HFI_SERVE_ENGINE_H
#define HFI_SERVE_ENGINE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "faas/latency.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/load_gen.h"
#include "serve/request.h"
#include "serve/worker.h"

namespace hfi::serve
{

/** How arrivals are generated. */
enum class LoadMode
{
    OpenLoop,   ///< seeded Poisson process at a fixed rate
    ClosedLoop, ///< fixed client population, send-on-response
};

/** How arrivals map to queue shards. */
enum class Sharding
{
    RoundRobin,  ///< request id modulo worker count
    SingleShard, ///< everything lands on shard 0 (stealing stress test)
};

struct EngineConfig
{
    unsigned workers = 1;
    LoadMode mode = LoadMode::OpenLoop;

    /** Total requests to generate. */
    unsigned requests = 400;
    /** Open loop: mean interarrival gap in virtual ns. */
    double meanInterarrivalNs = 100'000.0;
    /** Closed loop: client population. */
    unsigned clients = 100;
    /** Master seed for arrivals and per-request handler seeds. */
    std::uint64_t seed = 1;

    /** Per-shard queue bound; 0 = unbounded (no shedding). */
    std::size_t queueCapacity = 0;
    bool workStealing = true;
    Sharding sharding = Sharding::RoundRobin;

    /**
     * Compatibility switch for the closed-loop per-request seed
     * sequence. Closed-loop seeds were historically
     * `issued * 2654435761u`, ignoring EngineConfig::seed entirely —
     * every closed-loop run drew identical per-request work. Table 1's
     * golden numbers are pinned against that sequence, so
     * faas::runClosedLoop keeps it; new closed-loop users get seeds
     * mixed from EngineConfig::seed.
     */
    bool closedLoopLegacySeeds = false;

    /**
     * Run one host std::thread per simulated core instead of the
     * sequential event loop. Only configurations whose cores are
     * provably independent qualify — open loop, round-robin sharding,
     * no work stealing — because then the global event loop decomposes
     * into per-shard loops with no cross-core event ordering, and the
     * merged result is bit-identical to the sequential run (asserted by
     * tests and the serve_scaling --threads gate). Anything else
     * (closed loop couples clients to completions; stealing couples
     * queues) silently falls back to the sequential driver; check
     * ServeResult::usedThreads for what actually ran. Handlers must be
     * pure functions of (sandbox, seed) — already required for
     * determinism — and are called concurrently in this mode.
     */
    bool realThreads = false;

    /**
     * Caller-owned event trace (nullptr = tracing off). Must be built
     * with cores() >= workers; each worker records into the ring of its
     * core index (single-writer even in realThreads mode), the queue
     * shards record admissions into their owning core's ring, and the
     * HfiContext/Scheduler of every core are wired to the same ring.
     * Ignored when HFI_OBS=OFF compiled the record sites away.
     */
    obs::Trace *trace = nullptr;

    /** Per-worker knobs (scheme, pool, scheduler, quantum). */
    WorkerConfig worker{};
};

/** Merged engine-wide results. */
struct ServeResult
{
    std::size_t served = 0;
    std::size_t shed = 0;     ///< dropped at admission (queue full)
    std::size_t rejected = 0; ///< dropped at dispatch (pool exhausted)
    std::size_t stolen = 0;   ///< requests served off another shard
    std::size_t maxQueueDepth = 0;

    double durationNs = 0; ///< first arrival issue to last completion
    double throughputRps = 0;
    double meanLatencyNs = 0;
    faas::Percentiles latency{};

    std::uint64_t contextSwitches = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t instancesCreated = 0;
    std::uint64_t reclaimBatches = 0;
    std::uint64_t hfiStateMismatches = 0;

    /** Host threads the run actually used (1 = sequential driver). */
    unsigned usedThreads = 1;

    /**
     * Engine-wide robustness accounting (exits by reason, retries,
     * timeouts, quarantines, respawns, failures). All zero on the
     * happy path.
     */
    RobustnessStats robustness{};
    /**
     * The same breakdown per core, index = worker index. Each entry's
     * `shed` comes from that core's queue shard — the single source of
     * truth ServeResult::shed is derived from, in both the sequential
     * and the threaded driver.
     */
    std::vector<RobustnessStats> perCore{};

    /** Merged per-request latencies (service order), for tests. */
    faas::LatencyRecorder latencies{};

    /**
     * The engine-wide metrics registry every worker exported into —
     * the single typed merge both drivers share. The scalar fields
     * above are views derived from it (counter sums are order-
     * independent, so they are bit-identical to the historical manual
     * merging); this carries the full breakdown for exporters.
     */
    obs::MetricsRegistry metrics{};
};

class ServeEngine
{
  public:
    ServeEngine(EngineConfig config, Handler handler);

    /** Run with owned per-core stacks (the normal configuration). */
    ServeResult run();

    /**
     * Single-worker run on the caller's clock/context with a resident
     * caller-owned sandbox — the faas::runClosedLoop compatibility
     * path.
     */
    static ServeResult runResident(const EngineConfig &config,
                                   core::HfiContext &ctx,
                                   sfi::Sandbox &sandbox,
                                   const Handler &handler);

  private:
    static ServeResult drive(std::vector<std::unique_ptr<Worker>> &workers,
                             ArrivalSource &source,
                             const EngineConfig &config, double start_ns);

    /** One host thread per core; requires threadable(config_). */
    ServeResult runThreaded();

    /** True when the configuration decomposes into independent shards. */
    static bool threadable(const EngineConfig &config);

    EngineConfig config_;
    Handler handler_;
};

} // namespace hfi::serve

#endif // HFI_SERVE_ENGINE_H
