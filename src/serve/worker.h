/**
 * @file
 * One simulated serving core.
 *
 * A Worker owns a full per-core stack — VirtualClock, Mmu (its address-
 * space shard), HfiContext (per-core region registers and exit-reason
 * MSR, §3.3.3), sfi::Runtime, and an os::Scheduler — plus the shard of
 * the instance pool it serves requests from. Request dispatch goes
 * through the scheduler: switching onto the tenant process (and the
 * timer preemptions a long handler suffers) xsave/xrstors the HFI
 * register file with the §3.3.3 save-hfi-regs flag, so the OS-side cost
 * of HFI is charged on every context switch and the register state is
 * round-tripped while a sandbox is live.
 *
 * The worker's clock only accumulates *busy* time; idle gaps are
 * handled arithmetically by the engine (begin = max(freeNs, arrival)),
 * exactly like the original closed-loop model. That keeps per-request
 * service independent of arrival spacing, which is what makes latency
 * multisets reproducible across worker counts.
 *
 * A Worker can instead *borrow* a caller-provided clock/context/sandbox
 * (resident-instance mode): that is how faas::runClosedLoop becomes a
 * thin single-worker configuration of this engine without perturbing
 * Table 1.
 */

#ifndef HFI_SERVE_WORKER_H
#define HFI_SERVE_WORKER_H

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "core/context.h"
#include "faas/latency.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "os/scheduler.h"
#include "serve/faults.h"
#include "serve/request.h"
#include "sfi/runtime.h"
#include "swivel/swivel.h"
#include "vm/mmu.h"
#include "vm/virtual_clock.h"

namespace hfi::serve
{

/** Per-worker configuration (shared by all workers of one engine). */
struct WorkerConfig
{
    Scheme scheme = Scheme::Unsafe;
    /** Swivel effect (used when scheme == Swivel). */
    swivel::SwivelEffect swivelEffect{};

    /** Dispatch requests through the os::Scheduler (tenant process). */
    bool dispatchViaScheduler = true;
    /**
     * Timer quantum in virtual ns; a handler running longer is
     * preempted once per elapsed quantum (a context-switch round trip
     * with the HFI state xsave/xrstored mid-sandbox). 0 disables.
     */
    double quantumNs = 0;

    /** Isolation backend for pool instances. */
    sfi::BackendKind backend = sfi::BackendKind::Hfi;
    sfi::SandboxOptions sandboxOptions{1, 64};
    /** Retired instances per batched-madvise teardown (§6.3.1). */
    std::size_t teardownBatch = 32;
    sfi::ReclaimPolicy reclaimPolicy = sfi::ReclaimPolicy::Batched;

    /** Address-space width of each core's arena. */
    unsigned vaBits = 48;
    os::SchedulerCosts schedulerCosts{};

    /** Fault injection (rate 0 = stock happy path, zero overhead). */
    FaultConfig faults{};
    /**
     * Per-request deadline on the virtual clock: an attempt whose
     * service time exceeds this is killed by the watchdog, its instance
     * quarantined. 0 disables the watchdog.
     */
    double requestTimeoutNs = 0;
    /** Retry budget after a faulted/timed-out attempt. 0 = fail fast. */
    unsigned maxRetries = 0;
    /** Backoff before retry k is retryBackoffNs * 2^k (virtual ns). */
    double retryBackoffNs = 50'000.0;
    /**
     * Warm instances kept per core. 0 keeps the stock FaaS
     * instance-per-request model (create + retire around every
     * request); > 0 serves from a warm pool whose quarantined members
     * are respawned in the background after respawnDelayNs.
     */
    std::size_t poolSize = 0;
    /** Delay before a quarantined pool slot is respawned (virtual ns). */
    double respawnDelayNs = 200'000.0;
};

/** Counters one worker accumulates; merged by the engine. */
struct WorkerStats
{
    std::uint64_t served = 0;
    std::uint64_t instancesCreated = 0;
    std::uint64_t reclaimBatches = 0;
    std::uint64_t preemptions = 0;
    /** Instance-pool creation failures (address space exhausted). */
    std::uint64_t rejected = 0;
    /**
     * Times the HFI enabled/config state did not survive a preemption
     * save/restore round trip. Always 0 unless the §3.3.3 kernel
     * restore path regresses; asserted by tests.
     */
    std::uint64_t hfiStateMismatches = 0;
    /** Fault/timeout/retry/quarantine accounting (see serve/faults.h). */
    RobustnessStats robustness{};
};

class Worker
{
  public:
    /**
     * Owned-resources worker: a full per-core stack. @p engine_seed
     * keys the fault injector (when config.faults.rate > 0) so fault
     * schedules follow the engine's master seed.
     */
    Worker(unsigned index, const WorkerConfig &config,
           const Handler &handler, std::uint64_t engine_seed = 0);

    /**
     * Borrowed-resources worker: serve on the caller's clock/context
     * with a caller-owned resident sandbox (no pool, no scheduler).
     */
    Worker(unsigned index, const WorkerConfig &config,
           const Handler &handler, core::HfiContext &ctx,
           sfi::Sandbox &resident, std::uint64_t engine_seed = 0);

    Worker(Worker &&) = delete;

    /** Virtual time at which this worker can next begin service. */
    double freeNs() const { return freeNs_; }

    struct Outcome
    {
        bool ok = false;
        /** Request gave up (retries exhausted); an error response was
            still produced at doneNs, so closed-loop clients unblock. */
        bool failed = false;
        double doneNs = 0;    ///< response completion time
        double latencyNs = 0; ///< doneNs - arrival
    };

    /** Serve @p req to completion (called by the engine event loop). */
    Outcome serve(const Request &req);

    const WorkerStats &stats() const { return stats_; }
    const faas::LatencyRecorder &latencies() const { return latencies_; }
    core::HfiContext &context() { return *ctx_; }

    /** This worker's (global) core index. */
    unsigned index() const { return index_; }

    /**
     * Attach the engine-wide trace: this worker records into its core's
     * ring (serve() request envelope, robustness transitions) and wires
     * the same ring into its HfiContext and Scheduler. The Trace handle
     * is kept so a watchdog timeout can fire the flight recorder.
     */
    void attachTrace(obs::Trace *trace);

    /**
     * Export this worker's counters into @p m — the typed end-of-run
     * path the engine merges instead of summing WorkerStats fields by
     * hand. Hot-path accounting stays plain struct increments.
     */
    void exportMetrics(obs::MetricsRegistry &m) const;
    std::uint64_t
    contextSwitches() const
    {
        return sched_ ? sched_->totalSwitches() : 0;
    }

  private:
    /** What one attempt inside the sandbox did (see runProtected). */
    struct AttemptOutcome
    {
        bool completed = true; ///< handler ran to completion, response sent
        bool timedOut = false; ///< watchdog killed a wedged attempt
        bool poisoned = false; ///< instance is suspect; do not reuse
        /** MSR reason when the attempt raised an HFI exit. */
        core::ExitReason exitReason = core::ExitReason::None;
    };

    /** Run the handler under the configured protection scheme. */
    AttemptOutcome runProtected(sfi::Sandbox &sandbox, std::uint32_t seed,
                                double service_start_ns, FaultKind kind);
    /** The handler body plus injected stall/poison effects. */
    void runBody(sfi::Sandbox &sandbox, std::uint32_t seed, FaultKind kind,
                 AttemptOutcome &out);
    /** Timer preemptions for a handler that ran past the quantum. */
    void preemptForQuantum(double service_start_ns);
    void retire(std::unique_ptr<sfi::Sandbox> instance);
    /**
     * An instance to run the attempt in: a fresh per-request create
     * (poolSize 0, the stock path) or the next warm pool member —
     * draining any respawn whose delay elapsed by virtual time
     * @p wall_ns first, and waiting for one (*wait_ns) if the pool is
     * momentarily dry.
     */
    std::unique_ptr<sfi::Sandbox> acquireInstance(double wall_ns,
                                                  double *wait_ns);

    unsigned index_;
    WorkerConfig config_;
    Handler handler_;

    // Owned per-core stack (null in borrowed mode).
    std::unique_ptr<vm::VirtualClock> ownClock;
    std::unique_ptr<vm::Mmu> ownMmu;
    std::unique_ptr<core::HfiContext> ownCtx;
    std::unique_ptr<sfi::Runtime> runtime;

    vm::VirtualClock *clock_ = nullptr;
    core::HfiContext *ctx_ = nullptr;
    sfi::Sandbox *resident = nullptr;

    std::optional<os::Scheduler> sched_;
    int serverPid = -1;
    int tenantPid = -1;

    /** Retired instances awaiting the next batched teardown. */
    std::vector<std::unique_ptr<sfi::Sandbox>> retired;

    /** Fault injector (engaged when config.faults.rate > 0). */
    std::optional<FaultInjector> injector_;
    /** Warm instances (FIFO reuse), when config.poolSize > 0. */
    std::deque<std::unique_ptr<sfi::Sandbox>> pool_;
    /** Virtual times pending respawns become ready (monotone). */
    std::deque<double> respawns_;

    double freeNs_ = 0;
    WorkerStats stats_;
    faas::LatencyRecorder latencies_;

    /** Engine trace (flight recorder) and this core's ring. */
    obs::Trace *engineTrace_ = nullptr;
    obs::TraceBuffer *trace_ = nullptr;
};

} // namespace hfi::serve

#endif // HFI_SERVE_WORKER_H
