#include "mpk/mpk.h"

namespace hfi::mpk
{

MpkDomainManager::MpkDomainManager(vm::Mmu &mmu, MpkCostParams params)
    : mmu(mmu), params_(params)
{
    keyUsed[0] = true; // the default key
}

std::optional<unsigned>
MpkDomainManager::pkeyAlloc()
{
    mmu.clock().tick(mmu.clock().nsToCycles(params_.pkeySyscallNs));
    for (unsigned k = 1; k < kNumPkeys; ++k) {
        if (!keyUsed[k]) {
            keyUsed[k] = true;
            ++allocated;
            return k;
        }
    }
    return std::nullopt;
}

bool
MpkDomainManager::pkeyFree(unsigned key)
{
    mmu.clock().tick(mmu.clock().nsToCycles(params_.pkeySyscallNs));
    if (key == 0 || key >= kNumPkeys || !keyUsed[key])
        return false;
    keyUsed[key] = false;
    --allocated;
    return true;
}

bool
MpkDomainManager::pkeyMprotect(vm::VAddr addr, std::uint64_t size,
                               unsigned key)
{
    if (key >= kNumPkeys || !keyUsed[key])
        return false;
    // Same kernel path as mprotect: VMA split + PTE rewrite + shootdown.
    mmu.mprotect(addr, size, vm::PageProt::ReadWrite);
    const vm::VAddr first = vm::alignDown(addr, vm::kPageSize) /
                            vm::kPageSize;
    const vm::VAddr last = vm::alignUp(addr + size, vm::kPageSize) /
                           vm::kPageSize;
    for (vm::VAddr page = first; page < last; ++page) {
        if (key == 0)
            tags.erase(page);
        else
            tags[page] = key;
    }
    return true;
}

void
MpkDomainManager::wrpkru(const std::array<PkeyRights, kNumPkeys> &rights)
{
    mmu.clock().tick(params_.wrpkruCycles);
    pkru = rights;
    ++wrpkrus;
}

void
MpkDomainManager::switchToDomain(unsigned key)
{
    std::array<PkeyRights, kNumPkeys> rights;
    for (unsigned k = 0; k < kNumPkeys; ++k) {
        const bool open = k == 0 || k == key;
        rights[k] = PkeyRights{!open, !open};
    }
    wrpkru(rights);
}

bool
MpkDomainManager::checkAccess(vm::VAddr addr, bool write) const
{
    const unsigned key = keyAt(addr);
    const PkeyRights &r = pkru[key];
    if (r.accessDisable)
        return false;
    if (write && r.writeDisable)
        return false;
    return true;
}

unsigned
MpkDomainManager::keyAt(vm::VAddr addr) const
{
    const auto it = tags.find(addr / vm::kPageSize);
    return it == tags.end() ? 0 : it->second;
}

} // namespace hfi::mpk
