/**
 * @file
 * Intel Memory Protection Keys model — the ERIM-style baseline (§6.4.2,
 * Fig 5, §7).
 *
 * MPK tags each page with one of 16 protection keys; the user-mode PKRU
 * register holds per-key access-disable / write-disable bits, switched
 * with the unprivileged (but serializing-ish) wrpkru instruction. The
 * model captures the two properties the paper contrasts with HFI:
 *
 *  - switching the active domain is cheap (a wrpkru, ~23-30 cycles) but
 *    *tagging* memory requires a pkey_mprotect system call; and
 *  - only 16 keys exist (15 usable), so MPK cannot scale to the
 *    thousands of concurrent sandboxes HFI targets (§7).
 */

#ifndef HFI_MPK_MPK_H
#define HFI_MPK_MPK_H

#include <array>
#include <cstdint>
#include <map>
#include <optional>

#include "vm/mmu.h"

namespace hfi::mpk
{

/** Number of architectural protection keys on x86. */
constexpr unsigned kNumPkeys = 16;

/** Cycle/ns costs of MPK operations. */
struct MpkCostParams
{
    /** wrpkru: write the PKRU register (ERIM measures ~11-260 cycles
     *  depending on surrounding serialization; 48 matches ERIM's
     *  steady-state switch cost incl. the check sequence around it). */
    std::uint64_t wrpkruCycles = 48;
    /** rdpkru. */
    std::uint64_t rdpkruCycles = 6;
    /** pkey_alloc / pkey_free system calls (ring transition). */
    double pkeySyscallNs = 1800.0;
};

/** Per-key access bits in PKRU (true = disabled). */
struct PkeyRights
{
    bool accessDisable = false;
    bool writeDisable = false;
};

/**
 * The MPK state of one thread: key allocation bitmap, per-page key tags
 * (kept at 4 KiB granularity in the shared PageTable's address space),
 * and the PKRU register.
 */
class MpkDomainManager
{
  public:
    explicit MpkDomainManager(vm::Mmu &mmu, MpkCostParams params = {});

    /**
     * pkey_alloc: allocate a protection key.
     * @return the key, or std::nullopt when all 15 are taken — the
     *         scaling wall §7 describes.
     */
    std::optional<unsigned> pkeyAlloc();

    /** pkey_free. */
    bool pkeyFree(unsigned key);

    /** pkey_mprotect: tag [addr, addr+size) with @p key (syscall). */
    bool pkeyMprotect(vm::VAddr addr, std::uint64_t size, unsigned key);

    /** wrpkru: replace the PKRU with @p rights for each key. */
    void wrpkru(const std::array<PkeyRights, kNumPkeys> &rights);

    /**
     * Convenience domain switch: enable only @p key (plus key 0, the
     * default), disabling access to every other allocated key — the
     * ERIM transition sequence (two wrpkru per boundary crossing).
     */
    void switchToDomain(unsigned key);

    /**
     * Check a data access at @p addr under the current PKRU.
     * @return true when permitted.
     */
    bool checkAccess(vm::VAddr addr, bool write) const;

    /** Key tagged on the page containing @p addr (0 = default). */
    unsigned keyAt(vm::VAddr addr) const;

    unsigned allocatedKeys() const { return allocated; }
    const MpkCostParams &params() const { return params_; }

    /** Number of wrpkru executed (for the Fig 5 accounting). */
    std::uint64_t wrpkruCount() const { return wrpkrus; }

  private:
    vm::Mmu &mmu;
    MpkCostParams params_;
    /** Allocation state; key 0 always allocated (the default key). */
    std::array<bool, kNumPkeys> keyUsed{};
    unsigned allocated = 1;
    /** Page-number -> key; absent means key 0. */
    std::map<vm::VAddr, unsigned> tags;
    std::array<PkeyRights, kNumPkeys> pkru{};
    std::uint64_t wrpkrus = 0;
};

} // namespace hfi::mpk

#endif // HFI_MPK_MPK_H
