#include "core/context.h"

#include "core/checker.h"

namespace hfi::core
{

HfiContext::HfiContext(vm::VirtualClock &clock, HfiCostParams costs)
    : clock_(clock), costs_(costs)
{
}

void
HfiContext::serialize()
{
    charge(costs_.serializeCycles);
    ++stats_.serializations;
}

/**
 * True when @p region may legally be stored in register number @p n:
 * the variant alternative must match the register class and the value
 * must obey its well-formedness rules. EmptyRegion is storable anywhere
 * (it is what hfi_clear_region writes).
 */
static bool
regionMatchesSlot(unsigned n, const Region &region)
{
    if (std::holds_alternative<EmptyRegion>(region))
        return true;
    switch (regionClassOf(n)) {
      case RegionClass::Code:
        return std::holds_alternative<ImplicitCodeRegion>(region) &&
               std::get<ImplicitCodeRegion>(region).wellFormed();
      case RegionClass::ImplicitData:
        return std::holds_alternative<ImplicitDataRegion>(region) &&
               std::get<ImplicitDataRegion>(region).wellFormed();
      case RegionClass::ExplicitData:
        return std::holds_alternative<ExplicitDataRegion>(region) &&
               std::get<ExplicitDataRegion>(region).wellFormed();
    }
    return false;
}

HfiResult
HfiContext::setRegion(unsigned n, const Region &region)
{
    charge(costs_.setRegionCycles);
    if (n >= kNumRegions || regionsLocked() || !regionMatchesSlot(n, region)) {
        msrExitReason = ExitReason::IllegalRegionUpdate;
        return HfiResult::Trap;
    }
    if (bank.enabled) {
        // Inside a hybrid sandbox region updates serialize to keep
        // in-flight memory operations correct (§4.3); code-region
        // updates additionally flush pending memory operations.
        charge(costs_.hybridRegionUpdateSerializeCycles);
        ++stats_.serializations;
        if (regionClassOf(n) == RegionClass::Code)
            charge(costs_.codeRegionFlushCycles);
    }
    bank.setRegion(n, region);
    ++stats_.regionUpdates;
    HFI_OBS_RECORD(trace_, obs::EventType::RegionSet, clock_.nowNsFast(), n);
    return HfiResult::Ok;
}

std::optional<Region>
HfiContext::getRegion(unsigned n)
{
    charge(costs_.getRegionCycles);
    if (n >= kNumRegions || regionsLocked()) {
        msrExitReason = ExitReason::IllegalRegionUpdate;
        return std::nullopt;
    }
    return bank.region(n);
}

HfiResult
HfiContext::clearRegion(unsigned n)
{
    charge(costs_.clearRegionCycles);
    if (n >= kNumRegions || regionsLocked()) {
        msrExitReason = ExitReason::IllegalRegionUpdate;
        return HfiResult::Trap;
    }
    bank.setRegion(n, EmptyRegion{});
    ++stats_.regionUpdates;
    HFI_OBS_RECORD(trace_, obs::EventType::RegionClear, clock_.nowNsFast(), n);
    return HfiResult::Ok;
}

HfiResult
HfiContext::clearAllRegions()
{
    charge(costs_.clearAllRegionsCycles);
    if (regionsLocked()) {
        msrExitReason = ExitReason::IllegalRegionUpdate;
        return HfiResult::Trap;
    }
    for (unsigned r = 0; r < kNumRegions; ++r)
        bank.setRegion(r, EmptyRegion{});
    ++stats_.regionUpdates;
    HFI_OBS_RECORD(trace_, obs::EventType::RegionClear, clock_.nowNsFast(),
                   kNumRegions);
    return HfiResult::Ok;
}

HfiResult
HfiContext::enter(const SandboxConfig &config)
{
    charge(costs_.enterCycles);
    if (config.isSerialized)
        serialize();

    if (config.switchOnExit) {
        // Preserve the trusted runtime's register bank so hfi_exit can
        // atomically switch back instead of disabling HFI (§4.5).
        shadow = bank;
        shadowValid = true;
        charge(costs_.switchBankCycles);
        ++stats_.bankSwitches;
    }

    bank.config = config;
    bank.enabled = true;
    lastConfig = config;
    lastConfigValid = true;
    ++stats_.enters;
    HFI_OBS_RECORD(trace_, obs::EventType::HfiEnter, clock_.nowNsFast(),
                   config.isHybrid, config.switchOnExit);
    return HfiResult::Ok;
}

VAddr
HfiContext::exit()
{
    charge(costs_.exitCycles);
    ++stats_.exits;
    lastExitSwitched_ = false;

    if (bank.enabled && bank.config.switchOnExit && shadowValid) {
        // Switch-on-exit: restore the runtime's bank; HFI stays enabled
        // inside the runtime's own (hybrid) sandbox, so no serialization
        // is required for Spectre safety (§3.4).
        bank = shadow;
        shadowValid = false;
        charge(costs_.switchBankCycles);
        ++stats_.bankSwitches;
        msrExitReason = ExitReason::HfiExit;
        lastExitSwitched_ = true;
        HFI_OBS_RECORD(trace_, obs::EventType::HfiExit, clock_.nowNsFast(), 0, 1);
        return 0;
    }

    if (bank.config.isSerialized)
        serialize();

    const bool was_native = bank.enabled && !bank.config.isHybrid;
    bank.enabled = false;
    msrExitReason = ExitReason::HfiExit;
    // Native sandboxes always transfer control to the installed exit
    // handler; hybrid exits fall through to the code after hfi_exit
    // unless a handler was explicitly installed (§3.3.2).
    const VAddr handler =
        was_native || bank.config.exitHandler ? bank.config.exitHandler : 0;
    HFI_OBS_RECORD(trace_, obs::EventType::HfiExit, clock_.nowNsFast(), handler,
                   0);
    return handler;
}

HfiResult
HfiContext::reenter()
{
    charge(costs_.reenterCycles);
    if (!lastConfigValid || bank.enabled)
        return HfiResult::Trap;
    return enter(lastConfig);
}

std::optional<VAddr>
HfiContext::onSyscall()
{
    if (!bank.enabled)
        return std::nullopt;
    // §4.4: one extra microcode cycle checks the is-hybrid flag.
    charge(costs_.syscallCheckCycles);
    if (bank.config.isHybrid)
        return std::nullopt; // trusted code: syscalls go through

    // Native sandbox: convert the syscall into a jump to the exit
    // handler. HFI mode is disabled atomically with the redirect.
    charge(costs_.syscallRedirectCycles);
    if (bank.config.isSerialized)
        serialize();
    bank.enabled = false;
    msrExitReason = ExitReason::Syscall;
    ++stats_.syscallRedirects;
    HFI_OBS_RECORD(trace_, obs::EventType::SyscallRedirect, clock_.nowNsFast(),
                   bank.config.exitHandler);
    return bank.config.exitHandler;
}

void
HfiContext::onFault(ExitReason reason)
{
    bank.enabled = false;
    shadowValid = false;
    msrExitReason = reason;
    ++stats_.faults;
    HFI_OBS_RECORD(trace_, obs::EventType::HfiFault, clock_.nowNsFast(),
                   static_cast<std::uint64_t>(reason));
}

ExitReason
HfiContext::readExitReasonMsr()
{
    charge(costs_.readMsrCycles);
    return msrExitReason;
}

HfiRegisterFile
HfiContext::xsave()
{
    charge(costs_.xsaveHfiCycles);
    return bank;
}

HfiResult
HfiContext::xrstor(const HfiRegisterFile &file)
{
    charge(costs_.xrstorHfiCycles);
    if (bank.enabled && !bank.config.isHybrid) {
        // §3.3.3: allowing a native sandbox to rewrite the HFI registers
        // would break sandboxing, so the instruction traps.
        onFault(ExitReason::IllegalXrstor);
        return HfiResult::Trap;
    }
    bank = file;
    return HfiResult::Ok;
}

void
HfiContext::kernelXrstor(const HfiRegisterFile &file)
{
    charge(costs_.xrstorHfiCycles);
    bank = file;
    HFI_OBS_RECORD(trace_, obs::EventType::KernelXrstor, clock_.nowNsFast(),
                   file.enabled);
}

} // namespace hfi::core
