#include "core/checker.h"

namespace hfi::core
{

CheckResult
AccessChecker::checkData(const HfiRegisterFile &bank, VAddr addr,
                         std::uint32_t width, bool write)
{
    if (!bank.enabled)
        return CheckResult::pass(kNumRegions);

    const VAddr last = addr + width - 1;
    for (unsigned n = kFirstImplicitDataRegion; n < kFirstExplicitRegion;
         ++n) {
        const Region &reg = bank.regions[n];
        if (!std::holds_alternative<ImplicitDataRegion>(reg))
            continue;
        const auto &r = std::get<ImplicitDataRegion>(reg);
        if (!r.contains(addr))
            continue;
        // First match decides (§3.2). The access must not straddle the
        // region's (power-of-two) end: the last byte must share the
        // checked prefix, which hardware verifies with the same AND+cmp.
        if (!r.contains(last))
            return CheckResult::fail(ExitReason::DataBoundsViolation);
        if (write ? !r.permWrite : !r.permRead)
            return CheckResult::fail(ExitReason::PermissionViolation);
        return CheckResult::pass(n);
    }
    return CheckResult::fail(ExitReason::DataBoundsViolation);
}

CheckResult
AccessChecker::checkFetch(const HfiRegisterFile &bank, VAddr addr)
{
    if (!bank.enabled)
        return CheckResult::pass(kNumRegions);

    for (unsigned n = kFirstCodeRegion; n < kFirstImplicitDataRegion; ++n) {
        const Region &reg = bank.regions[n];
        if (!std::holds_alternative<ImplicitCodeRegion>(reg))
            continue;
        const auto &r = std::get<ImplicitCodeRegion>(reg);
        if (!r.contains(addr))
            continue;
        if (!r.permExec)
            return CheckResult::fail(ExitReason::PermissionViolation);
        return CheckResult::pass(n);
    }
    return CheckResult::fail(ExitReason::CodeBoundsViolation);
}

/**
 * Shared operand validation: the sign-bit and overflow checks of §4.2
 * that make the positive-offset guarantee hold. On success *offset_out
 * holds index*scale + displacement.
 */
static bool
computeOffset(const HmovOperands &ops, std::uint64_t *offset_out,
              ExitReason *reason_out)
{
    if (ops.index < 0 || ops.displacement < 0) {
        *reason_out = ExitReason::HmovNegativeOperand;
        return false;
    }
    const auto index = static_cast<std::uint64_t>(ops.index);
    const auto disp = static_cast<std::uint64_t>(ops.displacement);
    const std::uint64_t scaled = index * static_cast<std::uint64_t>(ops.scale);
    if (ops.scale != 1 && scaled / ops.scale != index) {
        *reason_out = ExitReason::HmovOverflow;
        return false;
    }
    const std::uint64_t offset = scaled + disp;
    if (offset < scaled) {
        *reason_out = ExitReason::HmovOverflow;
        return false;
    }
    *offset_out = offset;
    return true;
}

/**
 * Fetch the explicit region selected by hmov<n>, or fail. A cleared
 * register, an index outside 0..3, and a region without the needed
 * permission are all traps.
 */
static const ExplicitDataRegion *
selectRegion(const HfiRegisterFile &bank, unsigned explicit_index,
             ExitReason *reason_out)
{
    if (explicit_index >= kNumExplicitRegions) {
        *reason_out = ExitReason::HmovEmptyRegion;
        return nullptr;
    }
    const Region &reg =
        bank.regions[kFirstExplicitRegion + explicit_index];
    if (!std::holds_alternative<ExplicitDataRegion>(reg)) {
        *reason_out = ExitReason::HmovEmptyRegion;
        return nullptr;
    }
    return &std::get<ExplicitDataRegion>(reg);
}

HmovResult
AccessChecker::checkHmov(const HfiRegisterFile &bank,
                         unsigned explicit_index, const HmovOperands &ops,
                         bool write)
{
    HmovResult res;
    const ExplicitDataRegion *r =
        selectRegion(bank, explicit_index, &res.reason);
    if (!r)
        return res;
    if (write ? !r->permWrite : !r->permRead) {
        res.reason = ExitReason::PermissionViolation;
        return res;
    }

    std::uint64_t offset = 0;
    if (!computeOffset(ops, &offset, &res.reason))
        return res;

    // The AGU adds the (precomputed) region base; a carry out of bit 63
    // is the effective-address overflow the paper traps on.
    const VAddr ea = r->baseAddress + offset;
    if (ea < r->baseAddress) {
        res.reason = ExitReason::HmovOverflow;
        return res;
    }
    const VAddr last = ea + ops.width - 1;
    if (last < ea) {
        res.reason = ExitReason::HmovOverflow;
        return res;
    }

    if (r->isLargeRegion) {
        // Large regions: base and bound are 64 KiB aligned, addresses
        // are 48 bits, so "last < base + bound" reduces to one 32-bit
        // compare of bits [47:16] — the limit's low 16 bits are zero
        // (§4.2).
        const std::uint64_t limit = r->baseAddress + r->bound;
        if ((last >> 16) >= (limit >> 16)) {
            res.reason = ExitReason::HmovBoundsViolation;
            return res;
        }
    } else {
        // Small regions never span a 4 GiB boundary, so only the bottom
        // 32 bits of the effective address need checking; the comparator
        // keeps the carry bit so a region ending exactly on a boundary
        // (limit's low 32 bits = 0) still admits its top bytes.
        const std::uint64_t base_low = r->baseAddress & 0xffffffffULL;
        const std::uint64_t limit33 = base_low + r->bound;
        const std::uint64_t last33 = base_low + offset + ops.width - 1;
        if (last33 >= limit33) {
            res.reason = ExitReason::HmovBoundsViolation;
            return res;
        }
    }

    res.ok = true;
    res.reason = ExitReason::None;
    res.address = ea;
    return res;
}

HmovResult
AccessChecker::checkHmovNaive(const HfiRegisterFile &bank,
                              unsigned explicit_index,
                              const HmovOperands &ops, bool write)
{
    HmovResult res;
    const ExplicitDataRegion *r =
        selectRegion(bank, explicit_index, &res.reason);
    if (!r)
        return res;
    if (write ? !r->permWrite : !r->permRead) {
        res.reason = ExitReason::PermissionViolation;
        return res;
    }

    std::uint64_t offset = 0;
    if (!computeOffset(ops, &offset, &res.reason))
        return res;

    const VAddr ea = r->baseAddress + offset;
    if (ea < r->baseAddress || ea + ops.width - 1 < ea) {
        res.reason = ExitReason::HmovOverflow;
        return res;
    }
    // Full-width reference check: the entire access must fall inside
    // [base, base + bound). Two 64-bit comparisons.
    if (offset >= r->bound || r->bound - offset < ops.width) {
        res.reason = ExitReason::HmovBoundsViolation;
        return res;
    }
    res.ok = true;
    res.reason = ExitReason::None;
    res.address = ea;
    return res;
}

CheckResult
AccessChecker::checkData(const HfiContext &ctx, VAddr addr,
                         std::uint32_t width, bool write)
{
    return checkData(ctx.registerFile(), addr, width, write);
}

CheckResult
AccessChecker::checkFetch(const HfiContext &ctx, VAddr addr)
{
    return checkFetch(ctx.registerFile(), addr);
}

HmovResult
AccessChecker::checkHmov(const HfiContext &ctx, unsigned explicit_index,
                         const HmovOperands &ops, bool write)
{
    return checkHmov(ctx.registerFile(), explicit_index, ops, write);
}

HmovResult
AccessChecker::checkHmovNaive(const HfiContext &ctx, unsigned explicit_index,
                              const HmovOperands &ops, bool write)
{
    return checkHmovNaive(ctx.registerFile(), explicit_index, ops, write);
}

} // namespace hfi::core
