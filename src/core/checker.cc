#include "core/checker.h"

namespace hfi::core
{

const char *
toString(ExitReason reason)
{
    switch (reason) {
      case ExitReason::None: return "none";
      case ExitReason::HfiExit: return "hfi_exit";
      case ExitReason::Syscall: return "syscall";
      case ExitReason::DataBoundsViolation: return "data-bounds-violation";
      case ExitReason::CodeBoundsViolation: return "code-bounds-violation";
      case ExitReason::PermissionViolation: return "permission-violation";
      case ExitReason::HmovBoundsViolation: return "hmov-bounds-violation";
      case ExitReason::HmovNegativeOperand: return "hmov-negative-operand";
      case ExitReason::HmovOverflow: return "hmov-overflow";
      case ExitReason::HmovEmptyRegion: return "hmov-empty-region";
      case ExitReason::HardwareFault: return "hardware-fault";
      case ExitReason::IllegalRegionUpdate: return "illegal-region-update";
      case ExitReason::IllegalXrstor: return "illegal-xrstor";
    }
    return "unknown";
}

HmovResult
AccessChecker::checkHmovNaive(const HfiRegisterFile &bank,
                              unsigned explicit_index,
                              const HmovOperands &ops, bool write)
{
    HmovResult res;
    const FlatRegionSlot *r =
        detail::selectRegion(bank, explicit_index, &res.reason);
    if (!r)
        return res;
    if (write ? !r->permWrite : !r->permRead) {
        res.reason = ExitReason::PermissionViolation;
        return res;
    }

    std::uint64_t offset = 0;
    if (!detail::computeOffset(ops, &offset, &res.reason))
        return res;

    const VAddr ea = r->base + offset;
    if (ea < r->base || ea + ops.width - 1 < ea) {
        res.reason = ExitReason::HmovOverflow;
        return res;
    }
    // Full-width reference check: the entire access must fall inside
    // [base, base + bound). Two 64-bit comparisons.
    if (offset >= r->bound || r->bound - offset < ops.width) {
        res.reason = ExitReason::HmovBoundsViolation;
        return res;
    }
    res.ok = true;
    res.reason = ExitReason::None;
    res.address = ea;
    return res;
}

CheckResult
AccessChecker::checkData(const HfiContext &ctx, VAddr addr,
                         std::uint32_t width, bool write)
{
    return checkData(ctx.registerFile(), addr, width, write);
}

CheckResult
AccessChecker::checkFetch(const HfiContext &ctx, VAddr addr)
{
    return checkFetch(ctx.registerFile(), addr);
}

HmovResult
AccessChecker::checkHmov(const HfiContext &ctx, unsigned explicit_index,
                         const HmovOperands &ops, bool write)
{
    return checkHmov(ctx.registerFile(), explicit_index, ops, write);
}

HmovResult
AccessChecker::checkHmovNaive(const HfiContext &ctx, unsigned explicit_index,
                              const HmovOperands &ops, bool write)
{
    return checkHmovNaive(ctx.registerFile(), explicit_index, ops, write);
}

} // namespace hfi::core
