/**
 * @file
 * HFI region types (§3.2 and appendix A.1 of the paper).
 *
 * Two families of regions control all memory access while HFI mode is
 * enabled:
 *
 *  - Implicit regions check *every* load/store (data regions) or
 *    instruction fetch (code regions) by prefix matching: the lsb_mask
 *    drops the least significant bits of the address and the remainder
 *    is compared with base_prefix. Power-of-two size/alignment in
 *    exchange for a check that is just an AND plus an equality compare.
 *
 *  - Explicit regions are (base, bound) handles accessed via the
 *    hmov0..3 instructions. Large regions address up to 256 TiB at
 *    64 KiB granularity; small regions address up to 4 GiB at byte
 *    granularity but must not span a 4 GiB boundary. These constraints
 *    let the hardware check bounds with a single 32-bit comparator
 *    (§4.2).
 */

#ifndef HFI_CORE_REGION_H
#define HFI_CORE_REGION_H

#include <cstdint>
#include <variant>

#include "vm/address_space.h"

namespace hfi::core
{

using vm::VAddr;

/** 64 KiB: the alignment/granularity of large explicit regions. */
constexpr std::uint64_t kLargeRegionGrain = 1ULL << 16;

/** Large explicit regions can address up to 2^48 bytes. */
constexpr std::uint64_t kLargeRegionMaxBound = 1ULL << 48;

/** Small explicit regions can address up to 4 GiB. */
constexpr std::uint64_t kSmallRegionMaxBound = 1ULL << 32;

/** Number of implicit data regions per sandbox. */
constexpr unsigned kNumImplicitDataRegions = 4;

/** Number of implicit code regions per sandbox. */
constexpr unsigned kNumImplicitCodeRegions = 2;

/** Number of explicit data regions per sandbox (hmov0..hmov3). */
constexpr unsigned kNumExplicitRegions = 4;

/** Total region registers (appendix: 0-1 code, 2-5 implicit, 6-9 explicit). */
constexpr unsigned kNumRegions =
    kNumImplicitCodeRegions + kNumImplicitDataRegions + kNumExplicitRegions;

/** First region number of each class. */
constexpr unsigned kFirstCodeRegion = 0;
constexpr unsigned kFirstImplicitDataRegion = kNumImplicitCodeRegions;
constexpr unsigned kFirstExplicitRegion =
    kNumImplicitCodeRegions + kNumImplicitDataRegions;

/**
 * An implicit code region (prefix checked against the program counter).
 */
struct ImplicitCodeRegion
{
    VAddr basePrefix = 0;
    std::uint64_t lsbMask = 0;
    bool permExec = false;

    /** True if @p addr falls inside this region. */
    bool
    contains(VAddr addr) const
    {
        return (addr & ~lsbMask) == basePrefix;
    }

    /**
     * True if the parameters obey the power-of-two constraint: lsbMask
     * must be of the form 2^k - 1 and basePrefix must have no bits inside
     * the mask.
     */
    bool
    wellFormed() const
    {
        return ((lsbMask + 1) & lsbMask) == 0 && (basePrefix & lsbMask) == 0;
    }
};

/**
 * An implicit data region (prefix checked against every load/store that
 * does not go through an explicit region).
 */
struct ImplicitDataRegion
{
    VAddr basePrefix = 0;
    std::uint64_t lsbMask = 0;
    bool permRead = false;
    bool permWrite = false;

    bool
    contains(VAddr addr) const
    {
        return (addr & ~lsbMask) == basePrefix;
    }

    bool
    wellFormed() const
    {
        return ((lsbMask + 1) & lsbMask) == 0 && (basePrefix & lsbMask) == 0;
    }
};

/**
 * An explicit data region: a (base, bound) handle addressed relatively
 * through hmov.
 */
struct ExplicitDataRegion
{
    VAddr baseAddress = 0;
    std::uint64_t bound = 0; ///< size of the region in bytes
    bool permRead = false;
    bool permWrite = false;
    bool isLargeRegion = false;

    /**
     * Validity per §3.2:
     *  - large: base and bound are multiples of 64 KiB, bound ≤ 2^48;
     *  - small: bound ≤ 4 GiB and [base, base+bound) does not span an
     *    address that is a multiple of 4 GiB (ending exactly on one is
     *    allowed — the region then does not *span* it).
     */
    bool
    wellFormed() const
    {
        if (isLargeRegion) {
            return baseAddress % kLargeRegionGrain == 0 &&
                   bound % kLargeRegionGrain == 0 &&
                   bound <= kLargeRegionMaxBound;
        }
        if (bound > kSmallRegionMaxBound)
            return false;
        if (bound == 0)
            return true;
        const VAddr last = baseAddress + bound - 1;
        if (last < baseAddress)
            return false; // wraps the address space
        return (baseAddress >> 32) == (last >> 32) ||
               (baseAddress + bound) % kSmallRegionMaxBound == 0;
    }
};

/** A cleared (inaccessible) region register. */
struct EmptyRegion
{
};

/** Any region register value. */
using Region = std::variant<EmptyRegion, ImplicitCodeRegion,
                            ImplicitDataRegion, ExplicitDataRegion>;

/**
 * Discriminant of a flattened region-register slot (see FlatRegionSlot).
 * Mirrors the Region variant's alternatives one-for-one.
 */
enum class RegionKind : std::uint8_t
{
    Empty = 0,
    Code,
    ImplicitData,
    ExplicitData,
};

/**
 * The flattened (hardware-register-shaped) rendering of one region
 * register, precomputed when the register is written so the per-access
 * checks read a discriminant byte plus packed fields instead of probing
 * a std::variant (§4.1's point that the check must be a handful of
 * gates, not a dispatch).
 *
 * For implicit regions the prefix compare `(addr & ~lsbMask) ==
 * basePrefix` is precomputed as `(addr & prefixMask) == base`, so the
 * hot path never re-derives the complement.
 */
struct FlatRegionSlot
{
    RegionKind kind = RegionKind::Empty;
    bool permRead = false;
    bool permWrite = false;
    bool permExec = false;
    bool isLarge = false;
    /** Implicit regions: ~lsbMask. Unused for explicit regions. */
    std::uint64_t prefixMask = 0;
    /** Implicit: basePrefix. Explicit: baseAddress. */
    std::uint64_t base = 0;
    /** Explicit regions: bound in bytes. */
    std::uint64_t bound = 0;
};

/** Flatten a region-register value (done once, at register write). */
inline FlatRegionSlot
flattenRegion(const Region &region)
{
    FlatRegionSlot slot;
    if (const auto *c = std::get_if<ImplicitCodeRegion>(&region)) {
        slot.kind = RegionKind::Code;
        slot.permExec = c->permExec;
        slot.prefixMask = ~c->lsbMask;
        slot.base = c->basePrefix;
    } else if (const auto *d = std::get_if<ImplicitDataRegion>(&region)) {
        slot.kind = RegionKind::ImplicitData;
        slot.permRead = d->permRead;
        slot.permWrite = d->permWrite;
        slot.prefixMask = ~d->lsbMask;
        slot.base = d->basePrefix;
    } else if (const auto *e = std::get_if<ExplicitDataRegion>(&region)) {
        slot.kind = RegionKind::ExplicitData;
        slot.permRead = e->permRead;
        slot.permWrite = e->permWrite;
        slot.isLarge = e->isLargeRegion;
        slot.base = e->baseAddress;
        slot.bound = e->bound;
    }
    return slot;
}

/** Classification of a region number. */
enum class RegionClass
{
    Code,
    ImplicitData,
    ExplicitData,
};

/** Classify region number @p n (0-1 code, 2-5 implicit, 6-9 explicit). */
constexpr RegionClass
regionClassOf(unsigned n)
{
    if (n < kFirstImplicitDataRegion)
        return RegionClass::Code;
    if (n < kFirstExplicitRegion)
        return RegionClass::ImplicitData;
    return RegionClass::ExplicitData;
}

} // namespace hfi::core

#endif // HFI_CORE_REGION_H
