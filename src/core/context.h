/**
 * @file
 * The per-core HFI register state and instruction semantics (§3, §4.4).
 *
 * HfiContext models one CPU core's HFI extension: the ten region
 * registers, the exit-handler register, the configuration register, the
 * exit-reason MSR, and — when the switch-on-exit extension is in use — a
 * shadow bank holding the trusted runtime's registers (§4.5).
 *
 * Every architectural rule from the paper is enforced here:
 *  - region registers are locked between hfi_enter and exit for *native*
 *    sandboxes, writable from inside *hybrid* sandboxes (§3.3.1);
 *  - syscalls in native sandboxes are converted into a jump to the exit
 *    handler (§4.4); in hybrid sandboxes they pass through;
 *  - hfi_exit under switch-on-exit atomically restores the runtime's
 *    register bank instead of disabling HFI (§3.4, §4.5);
 *  - xrstor with save-hfi-regs traps inside a native sandbox (§3.3.3).
 *
 * All instruction costs are charged to the VirtualClock through
 * HfiCostParams so experiments see the paper's transition-cost structure.
 */

#ifndef HFI_CORE_CONTEXT_H
#define HFI_CORE_CONTEXT_H

#include <array>
#include <cstdint>
#include <optional>

#include "core/cost_model.h"
#include "core/region.h"
#include "obs/trace.h"
#include "vm/virtual_clock.h"

namespace hfi::core
{

/**
 * Why the core last left HFI mode (or why an HFI operation trapped).
 * Recorded in the exit-reason MSR (§3.3.2) and readable by the trusted
 * runtime's exit handler or SIGSEGV handler.
 */
enum class ExitReason : std::uint8_t
{
    None = 0,
    HfiExit,            ///< sandbox executed hfi_exit
    Syscall,            ///< native sandbox attempted a system call
    DataBoundsViolation,///< load/store missed all implicit data regions
    CodeBoundsViolation,///< instruction fetch missed all code regions
    PermissionViolation,///< first-match region lacked the permission
    HmovBoundsViolation,///< hmov effective address out of region bounds
    HmovNegativeOperand,///< hmov used a negative index/displacement
    HmovOverflow,       ///< hmov effective-address computation overflowed
    HmovEmptyRegion,    ///< hmov through a cleared/ill-typed region
    HardwareFault,      ///< non-HFI trap (e.g. page fault) in sandbox
    IllegalRegionUpdate,///< region write attempted in a native sandbox
    IllegalXrstor,      ///< xrstor(save-hfi-regs) inside a native sandbox
};

/** Number of ExitReason values (for per-reason accounting arrays). */
constexpr unsigned kNumExitReasons =
    static_cast<unsigned>(ExitReason::IllegalXrstor) + 1;

/**
 * Parameters of hfi_enter — the paper's sandbox_t (appendix A.1).
 */
struct SandboxConfig
{
    bool isHybrid = false;     ///< hybrid (trusted-compiler) sandbox
    bool isSerialized = false; ///< serialize enter/exit (§3.4)
    bool switchOnExit = false; ///< use the switch-on-exit extension
    /** Exit-handler address; 0 means no handler installed. */
    VAddr exitHandler = 0;
};

/** Outcome of an HFI instruction that can trap. */
enum class HfiResult
{
    Ok,
    Trap, ///< the operation trapped; the MSR holds the reason
};

/**
 * A snapshot of the HFI register file, as saved/restored by the OS with
 * xsave/xrstor (§3.3.3) or swapped by switch-on-exit (§4.5).
 *
 * Region registers are written through setRegion(), which also keeps a
 * flattened (discriminant + packed fields) shadow of every slot. The
 * per-access checks (AccessChecker::checkData/checkFetch/checkHmov) read
 * only the flattened bank, so the hot path is a compare-and-branch over
 * PODs rather than std::variant probing; the variant view stays
 * authoritative for everything cold (validation, tests, logs).
 */
struct HfiRegisterFile
{
    SandboxConfig config{};
    bool enabled = false;

    /** Region register @p n (variant view). */
    const Region &region(unsigned n) const { return regions_[n]; }

    /** All region registers (variant view). */
    const std::array<Region, kNumRegions> &regions() const
    {
        return regions_;
    }

    /** Write region register @p n, reflattening its slot. */
    void
    setRegion(unsigned n, const Region &region)
    {
        regions_[n] = region;
        flat_[n] = flattenRegion(region);
    }

    /** Flattened slot @p n — what the per-access checks read. */
    const FlatRegionSlot &flat(unsigned n) const { return flat_[n]; }

  private:
    std::array<Region, kNumRegions> regions_{};
    std::array<FlatRegionSlot, kNumRegions> flat_{};
};

/**
 * One core's HFI extension state and instruction implementations.
 *
 * The trusted runtime drives this object exactly like software drives the
 * real instructions: configure regions, hfi_enter, let sandboxed code's
 * accesses be checked (see AccessChecker), and handle exits.
 */
class HfiContext
{
  public:
    explicit HfiContext(vm::VirtualClock &clock, HfiCostParams costs = {});

    /**
     * hfi_set_region: write @p region into register @p n.
     *
     * Traps (IllegalRegionUpdate) when executed inside a native sandbox,
     * when the region value is ill-formed, or when the region type does
     * not match the register class (0-1 code, 2-5 implicit data, 6-9
     * explicit). Serializes when executed inside a hybrid sandbox (§4.3).
     */
    HfiResult setRegion(unsigned n, const Region &region);

    /** hfi_get_region: read register @p n. Traps in a native sandbox. */
    std::optional<Region> getRegion(unsigned n);

    /** hfi_clear_region. Traps inside a native sandbox. */
    HfiResult clearRegion(unsigned n);

    /** hfi_clear_all_regions. Traps inside a native sandbox. */
    HfiResult clearAllRegions();

    /**
     * hfi_enter: enable HFI mode with @p config.
     *
     * With switch-on-exit set, the current register file (the trusted
     * runtime's own hybrid-sandbox state) is preserved in the shadow bank
     * and restored by the matching hfi_exit (§4.5). Charges
     * serialization when config.isSerialized.
     */
    HfiResult enter(const SandboxConfig &config);

    /**
     * hfi_exit: leave the current sandbox.
     *
     * For a switch-on-exit sandbox this atomically restores the shadow
     * bank and *stays in HFI mode* (inside the runtime's sandbox); for
     * all others it disables HFI, records ExitReason::HfiExit, and
     * returns the exit-handler address to jump to (0 = fall through).
     *
     * @return the handler address control is transferred to, or 0.
     */
    VAddr exit();

    /**
     * hfi_reenter: re-enter the sandbox that was just exited, restoring
     * the configuration from before the last exit.
     */
    HfiResult reenter();

    /**
     * A syscall instruction was decoded while this core runs sandboxed
     * code (§4.4).
     *
     * @retval std::nullopt the syscall may proceed (HFI off, or hybrid).
     * @retval handler address the syscall was converted into a jump to
     *         the exit handler; HFI is disabled and the MSR records
     *         ExitReason::Syscall.
     */
    std::optional<VAddr> onSyscall();

    /**
     * A hardware trap or HFI bounds violation occurred while sandboxed
     * (§3.3.2): disable HFI and record the reason. The OS then delivers
     * a signal to the trusted runtime.
     */
    void onFault(ExitReason reason);

    /** Read the exit-reason MSR. */
    ExitReason readExitReasonMsr();

    /** Exit-reason MSR value without charging a read (for tests/stats). */
    ExitReason exitReason() const { return msrExitReason; }

    /**
     * xsave with save-hfi-regs: snapshot the register file (§3.3.3).
     * Used by the modeled OS on process context switch.
     */
    HfiRegisterFile xsave();

    /**
     * xrstor with save-hfi-regs. Traps (and exits the sandbox) when
     * executed inside a native sandbox, since it could break isolation.
     */
    HfiResult xrstor(const HfiRegisterFile &file);

    /**
     * Ring-0 xrstor with save-hfi-regs, as executed by the OS on a
     * context switch (§3.3.3). The kernel itself runs with HFI
     * disabled, so — unlike the user-mode instruction above — this
     * restore cannot trap even when the *saved* image being replaced
     * belongs to a process preempted inside a native sandbox; it
     * unconditionally installs @p file and charges the same xrstor
     * cost. The switch-on-exit shadow bank is per-core state that the
     * kernel leaves in place (the switched-in process either does not
     * use it or re-arms it with its own hfi_enter).
     */
    void kernelXrstor(const HfiRegisterFile &file);

    /** True while HFI mode is enabled. */
    bool enabled() const { return bank.enabled; }

    /** Active sandbox configuration (meaningful while enabled). */
    const SandboxConfig &config() const { return bank.config; }

    /** Current value of region register @p n (no cost; for the checker). */
    const Region &region(unsigned n) const { return bank.region(n); }

    /** All region registers (no cost; for the checker). */
    const std::array<Region, kNumRegions> &regions() const
    {
        return bank.regions();
    }

    /** The full active register bank (no cost; for the checker). */
    const HfiRegisterFile &registerFile() const { return bank; }

    /** True if the last exit used the switch-on-exit path (for tests). */
    bool lastExitSwitched() const { return lastExitSwitched_; }

    const HfiCostParams &costs() const { return costs_; }
    vm::VirtualClock &clock() { return clock_; }

    /** Cumulative instruction counts, for reporting. */
    struct Stats
    {
        std::uint64_t enters = 0;
        std::uint64_t exits = 0;
        std::uint64_t serializations = 0;
        std::uint64_t regionUpdates = 0;
        std::uint64_t syscallRedirects = 0;
        std::uint64_t faults = 0;
        std::uint64_t bankSwitches = 0;
    };

    const Stats &stats() const { return stats_; }

    /**
     * Attach this core's trace ring (nullptr detaches). Instruction
     * implementations record HfiEnter/HfiExit/HfiFault/SyscallRedirect/
     * KernelXrstor and region-update events stamped on the core's
     * VirtualClock; compiled out entirely under HFI_OBS=OFF.
     */
    void setTrace(obs::TraceBuffer *trace) { trace_ = trace; }
    obs::TraceBuffer *trace() const { return trace_; }

  private:
    /** True when region registers are locked (native sandbox active). */
    bool regionsLocked() const { return bank.enabled && !bank.config.isHybrid; }

    void charge(std::uint64_t cycles) { clock_.tick(cycles); }
    void serialize();

    vm::VirtualClock &clock_;
    HfiCostParams costs_;

    /** The active register bank. */
    HfiRegisterFile bank;
    /** Shadow bank for the switch-on-exit extension (§4.5). */
    HfiRegisterFile shadow;
    bool shadowValid = false;

    /** Saved configuration for hfi_reenter. */
    SandboxConfig lastConfig{};
    bool lastConfigValid = false;

    ExitReason msrExitReason = ExitReason::None;
    bool lastExitSwitched_ = false;

    obs::TraceBuffer *trace_ = nullptr;

    Stats stats_;
};

} // namespace hfi::core

#endif // HFI_CORE_CONTEXT_H
