/**
 * @file
 * Cycle-cost parameters for HFI instructions (§3.4, §4.4, appendix A.2).
 *
 * HFI's design goal is that the steady-state data path is free (checks run
 * in parallel with the dtb lookup), so almost all modeled cost sits in the
 * transition instructions. The constants come from the paper:
 *
 *  - Serialized hfi_enter/hfi_exit cost ~30-60 cycles (§3.4, "based on the
 *    cost of similar serializing instructions"); we use 45 as the
 *    midpoint and expose it for sensitivity studies.
 *  - Unserialized enters/exits are "on the same order as a function call"
 *    (§1), i.e. low tens of cycles.
 *  - hfi_set_region "moves metadata from memory to HFI registers" (§6.4.2,
 *    appendix A.2): two 64-bit loads plus a register write.
 *  - Redirected syscalls cost one extra decode-stage cycle (§4.4).
 */

#ifndef HFI_CORE_COST_MODEL_H
#define HFI_CORE_COST_MODEL_H

#include <cstdint>

namespace hfi::core
{

/** Cycle costs of HFI operations charged to the virtual clock. */
struct HfiCostParams
{
    /** Full pipeline serialization (cpuid-class), §3.4: 30-60 cycles. */
    std::uint64_t serializeCycles = 45;

    /** Unserialized hfi_enter: function-call order of magnitude. */
    std::uint64_t enterCycles = 12;

    /** Unserialized hfi_exit. */
    std::uint64_t exitCycles = 10;

    /** hfi_reenter (restores the MSR-recorded sandbox). */
    std::uint64_t reenterCycles = 12;

    /**
     * hfi_set_region: two 64-bit metadata loads plus the internal
     * register write (§6.4.2: "HFI takes a few cycles to move metadata
     * from memory to HFI registers on each transition").
     */
    std::uint64_t setRegionCycles = 6;

    /** hfi_get_region: internal register reads plus two stores. */
    std::uint64_t getRegionCycles = 6;

    /** hfi_clear_region. */
    std::uint64_t clearRegionCycles = 2;

    /** hfi_clear_all_regions. */
    std::uint64_t clearAllRegionsCycles = 8;

    /**
     * Extra serialization charged when region updates execute inside a
     * hybrid sandbox (§4.3: "they do serialize when executed in a hybrid
     * sandbox, to ensure the correctness of in-flight instructions").
     */
    std::uint64_t hybridRegionUpdateSerializeCycles = 45;

    /**
     * Additional flush cost for updating a *code* region (§4.3:
     * "hfi_set_region(code,...) flushes any pending memory operations").
     */
    std::uint64_t codeRegionFlushCycles = 20;

    /**
     * Single-cycle microcode check added to syscall decode while HFI is
     * active (§4.4).
     */
    std::uint64_t syscallCheckCycles = 1;

    /** Microcode jump to the exit handler on a redirected syscall. */
    std::uint64_t syscallRedirectCycles = 10;

    /** Saving/restoring the HFI register file via xsave/xrstor (§3.3.3). */
    std::uint64_t xsaveHfiCycles = 24;
    std::uint64_t xrstorHfiCycles = 24;

    /**
     * Register-bank swap performed by switch-on-exit enters/exits (§4.5):
     * a microcoded copy of the 22 internal registers to/from the shadow
     * bank, cheaper than a full serialization.
     */
    std::uint64_t switchBankCycles = 8;

    /** Reading the exit-reason MSR (rdmsr-class, but user readable). */
    std::uint64_t readMsrCycles = 4;
};

} // namespace hfi::core

#endif // HFI_CORE_COST_MODEL_H
