/**
 * @file
 * The HFI access checker: bit-level models of the bounds checks that the
 * hardware performs in parallel with the dtb lookup (data), the decode
 * stage (code), and the AGU (hmov) — §4.1 and §4.2 of the paper.
 *
 * Two interchangeable implementations of the explicit-region check are
 * provided:
 *
 *  - the *hardware-faithful* check, which exploits the large/small region
 *    constraints so that a single 32-bit comparator plus two sign-bit
 *    checks and an overflow check suffice (§4.2); and
 *  - a *naive* reference check using full 64-bit arithmetic.
 *
 * Tests assert the two agree on every well-formed region (the paper's
 * argument for why the cheap check is sound), and the ablation benchmark
 * contrasts their modeled hardware cost.
 */

#ifndef HFI_CORE_CHECKER_H
#define HFI_CORE_CHECKER_H

#include <cstdint>

#include "core/context.h"
#include "core/region.h"

namespace hfi::core
{

/** Outcome of a checked memory operation. */
struct CheckResult
{
    bool ok = false;
    /** Fault classification when !ok. */
    ExitReason reason = ExitReason::None;
    /** Index of the first-matching region register, or kNumRegions. */
    unsigned matchedRegion = kNumRegions;

    static CheckResult
    pass(unsigned region)
    {
        return {true, ExitReason::None, region};
    }

    static CheckResult
    fail(ExitReason reason)
    {
        return {false, reason, kNumRegions};
    }
};

/** Outcome of an hmov address computation + check. */
struct HmovResult
{
    bool ok = false;
    ExitReason reason = ExitReason::None;
    /** Absolute effective address (region base + offset) when ok. */
    VAddr address = 0;
};

/** The x86 addressing-mode operands an hmov consumes (§3.2, §4.2). */
struct HmovOperands
{
    /**
     * Index register value, sign-interpreted: hmov traps when negative.
     * (The base operand of the original mov is ignored and replaced by
     * the region base.)
     */
    std::int64_t index = 0;
    /** Scale factor applied to the index: 1, 2, 4, or 8. */
    std::uint8_t scale = 1;
    /** Displacement immediate, sign-interpreted; traps when negative. */
    std::int64_t displacement = 0;
    /** Access width in bytes (1, 2, 4, 8, 16, 32, or 64). */
    std::uint32_t width = 8;
};

/**
 * Stateless checking logic over a context's region registers.
 *
 * The checker never mutates the HfiContext; callers (the pipeline model,
 * the SFI backends) decide what to do with a failed check — normally
 * HfiContext::onFault plus a modeled SIGSEGV.
 */
class AccessChecker
{
  public:
    /**
     * Check a load (@p write == false) or store against the implicit
     * data regions, first-match semantics (§3.2). The whole access
     * [addr, addr+width) must lie inside the matched region: hardware
     * achieves this because a power-of-two region can only be escaped by
     * an access that also changes the checked prefix.
     */
    static CheckResult checkData(const HfiRegisterFile &bank, VAddr addr,
                                 std::uint32_t width, bool write);

    /** Check an instruction fetch against the implicit code regions. */
    static CheckResult checkFetch(const HfiRegisterFile &bank, VAddr addr);

    /**
     * Compute and check the effective address of hmov<n> using the
     * hardware-faithful single-32-bit-comparator scheme (§4.2).
     *
     * @param explicit_index 0..3, selecting hmov0..hmov3 (register
     *        kFirstExplicitRegion + explicit_index).
     */
    static HmovResult checkHmov(const HfiRegisterFile &bank,
                                unsigned explicit_index,
                                const HmovOperands &ops, bool write);

    /**
     * Reference implementation of the explicit-region check using full
     * 64-bit comparisons. Used by property tests to validate the
     * hardware-faithful path and by the ablation bench as the
     * "two 64-bit comparators" design point.
     */
    static HmovResult checkHmovNaive(const HfiRegisterFile &bank,
                                     unsigned explicit_index,
                                     const HmovOperands &ops, bool write);

    /** Convenience overloads over a live context's active bank. @{ */
    static CheckResult checkData(const HfiContext &ctx, VAddr addr,
                                 std::uint32_t width, bool write);
    static CheckResult checkFetch(const HfiContext &ctx, VAddr addr);
    static HmovResult checkHmov(const HfiContext &ctx,
                                unsigned explicit_index,
                                const HmovOperands &ops, bool write);
    static HmovResult checkHmovNaive(const HfiContext &ctx,
                                     unsigned explicit_index,
                                     const HmovOperands &ops, bool write);
    /** @} */
};

} // namespace hfi::core

#endif // HFI_CORE_CHECKER_H
