/**
 * @file
 * The HFI access checker: bit-level models of the bounds checks that the
 * hardware performs in parallel with the dtb lookup (data), the decode
 * stage (code), and the AGU (hmov) — §4.1 and §4.2 of the paper.
 *
 * Two interchangeable implementations of the explicit-region check are
 * provided:
 *
 *  - the *hardware-faithful* check, which exploits the large/small region
 *    constraints so that a single 32-bit comparator plus two sign-bit
 *    checks and an overflow check suffice (§4.2); and
 *  - a *naive* reference check using full 64-bit arithmetic.
 *
 * Tests assert the two agree on every well-formed region (the paper's
 * argument for why the cheap check is sound), and the ablation benchmark
 * contrasts their modeled hardware cost.
 */

#ifndef HFI_CORE_CHECKER_H
#define HFI_CORE_CHECKER_H

#include <cstdint>

#include "core/context.h"
#include "core/region.h"

namespace hfi::core
{

/**
 * Human-readable name for an ExitReason — the one spelling shared by
 * worker stats, the serve_faults bench, trace labels, and tests.
 */
const char *toString(ExitReason reason);

/** Outcome of a checked memory operation. */
struct CheckResult
{
    bool ok = false;
    /** Fault classification when !ok. */
    ExitReason reason = ExitReason::None;
    /** Index of the first-matching region register, or kNumRegions. */
    unsigned matchedRegion = kNumRegions;

    static CheckResult
    pass(unsigned region)
    {
        return {true, ExitReason::None, region};
    }

    static CheckResult
    fail(ExitReason reason)
    {
        return {false, reason, kNumRegions};
    }
};

/** Outcome of an hmov address computation + check. */
struct HmovResult
{
    bool ok = false;
    ExitReason reason = ExitReason::None;
    /** Absolute effective address (region base + offset) when ok. */
    VAddr address = 0;
};

/** The x86 addressing-mode operands an hmov consumes (§3.2, §4.2). */
struct HmovOperands
{
    /**
     * Index register value, sign-interpreted: hmov traps when negative.
     * (The base operand of the original mov is ignored and replaced by
     * the region base.)
     */
    std::int64_t index = 0;
    /** Scale factor applied to the index: 1, 2, 4, or 8. */
    std::uint8_t scale = 1;
    /** Displacement immediate, sign-interpreted; traps when negative. */
    std::int64_t displacement = 0;
    /** Access width in bytes (1, 2, 4, 8, 16, 32, or 64). */
    std::uint32_t width = 8;
};

/** Implementation helpers shared by the hmov checks. */
namespace detail
{

/**
 * Shared operand validation: the sign-bit and overflow checks of §4.2
 * that make the positive-offset guarantee hold. On success *offset_out
 * holds index*scale + displacement.
 */
inline bool
computeOffset(const HmovOperands &ops, std::uint64_t *offset_out,
              ExitReason *reason_out)
{
    if (ops.index < 0 || ops.displacement < 0) {
        *reason_out = ExitReason::HmovNegativeOperand;
        return false;
    }
    const auto index = static_cast<std::uint64_t>(ops.index);
    const auto disp = static_cast<std::uint64_t>(ops.displacement);
    const std::uint64_t scaled = index * static_cast<std::uint64_t>(ops.scale);
    if (ops.scale != 1 && scaled / ops.scale != index) {
        *reason_out = ExitReason::HmovOverflow;
        return false;
    }
    const std::uint64_t offset = scaled + disp;
    if (offset < scaled) {
        *reason_out = ExitReason::HmovOverflow;
        return false;
    }
    *offset_out = offset;
    return true;
}

/**
 * Fetch the flattened slot selected by hmov<n>, or fail. A cleared
 * register, an index outside 0..3, and a region without the needed
 * permission are all traps. Reads the precomputed discriminant, not the
 * variant.
 */
inline const FlatRegionSlot *
selectRegion(const HfiRegisterFile &bank, unsigned explicit_index,
             ExitReason *reason_out)
{
    if (explicit_index >= kNumExplicitRegions) {
        *reason_out = ExitReason::HmovEmptyRegion;
        return nullptr;
    }
    const FlatRegionSlot &slot =
        bank.flat(kFirstExplicitRegion + explicit_index);
    if (slot.kind != RegionKind::ExplicitData) {
        *reason_out = ExitReason::HmovEmptyRegion;
        return nullptr;
    }
    return &slot;
}

} // namespace detail

/**
 * Stateless checking logic over a context's region registers.
 *
 * The checker never mutates the HfiContext; callers (the pipeline model,
 * the SFI backends) decide what to do with a failed check — normally
 * HfiContext::onFault plus a modeled SIGSEGV.
 */
class AccessChecker
{
  public:
    /**
     * Check a load (@p write == false) or store against the implicit
     * data regions, first-match semantics (§3.2). The whole access
     * [addr, addr+width) must lie inside the matched region: hardware
     * achieves this because a power-of-two region can only be escaped by
     * an access that also changes the checked prefix.
     *
     * Reads only the flattened slots (discriminant + packed fields) the
     * register file maintains, and is inline: one fetch-and-compare per
     * scanned slot, the software shape of the parallel comparators the
     * hardware runs next to the dtb (§4.1). First-match order over the
     * slots is identical to the variant-probing formulation.
     */
    static CheckResult
    checkData(const HfiRegisterFile &bank, VAddr addr, std::uint32_t width,
              bool write)
    {
        if (!bank.enabled)
            return CheckResult::pass(kNumRegions);

        const VAddr last = addr + width - 1;
        for (unsigned n = kFirstImplicitDataRegion; n < kFirstExplicitRegion;
             ++n) {
            const FlatRegionSlot &s = bank.flat(n);
            if (s.kind != RegionKind::ImplicitData)
                continue;
            if ((addr & s.prefixMask) != s.base)
                continue;
            // First match decides (§3.2). The access must not straddle
            // the region's (power-of-two) end: the last byte must share
            // the checked prefix, which hardware verifies with the same
            // AND+cmp.
            if ((last & s.prefixMask) != s.base)
                return CheckResult::fail(ExitReason::DataBoundsViolation);
            if (write ? !s.permWrite : !s.permRead)
                return CheckResult::fail(ExitReason::PermissionViolation);
            return CheckResult::pass(n);
        }
        return CheckResult::fail(ExitReason::DataBoundsViolation);
    }

    /** Check an instruction fetch against the implicit code regions. */
    static CheckResult
    checkFetch(const HfiRegisterFile &bank, VAddr addr)
    {
        if (!bank.enabled)
            return CheckResult::pass(kNumRegions);

        for (unsigned n = kFirstCodeRegion; n < kFirstImplicitDataRegion;
             ++n) {
            const FlatRegionSlot &s = bank.flat(n);
            if (s.kind != RegionKind::Code)
                continue;
            if ((addr & s.prefixMask) != s.base)
                continue;
            if (!s.permExec)
                return CheckResult::fail(ExitReason::PermissionViolation);
            return CheckResult::pass(n);
        }
        return CheckResult::fail(ExitReason::CodeBoundsViolation);
    }

    /**
     * Compute and check the effective address of hmov<n> using the
     * hardware-faithful single-32-bit-comparator scheme (§4.2).
     *
     * @param explicit_index 0..3, selecting hmov0..hmov3 (register
     *        kFirstExplicitRegion + explicit_index).
     */
    static HmovResult
    checkHmov(const HfiRegisterFile &bank, unsigned explicit_index,
              const HmovOperands &ops, bool write)
    {
        HmovResult res;
        const FlatRegionSlot *r =
            detail::selectRegion(bank, explicit_index, &res.reason);
        if (!r)
            return res;
        if (write ? !r->permWrite : !r->permRead) {
            res.reason = ExitReason::PermissionViolation;
            return res;
        }

        std::uint64_t offset = 0;
        if (!detail::computeOffset(ops, &offset, &res.reason))
            return res;

        // The AGU adds the (precomputed) region base; a carry out of
        // bit 63 is the effective-address overflow the paper traps on.
        const VAddr ea = r->base + offset;
        if (ea < r->base) {
            res.reason = ExitReason::HmovOverflow;
            return res;
        }
        const VAddr last = ea + ops.width - 1;
        if (last < ea) {
            res.reason = ExitReason::HmovOverflow;
            return res;
        }

        if (r->isLarge) {
            // Large regions: base and bound are 64 KiB aligned,
            // addresses are 48 bits, so "last < base + bound" reduces
            // to one 32-bit compare of bits [47:16] — the limit's low
            // 16 bits are zero (§4.2).
            const std::uint64_t limit = r->base + r->bound;
            if ((last >> 16) >= (limit >> 16)) {
                res.reason = ExitReason::HmovBoundsViolation;
                return res;
            }
        } else {
            // Small regions never span a 4 GiB boundary, so only the
            // bottom 32 bits of the effective address need checking;
            // the comparator keeps the carry bit so a region ending
            // exactly on a boundary (limit's low 32 bits = 0) still
            // admits its top bytes.
            const std::uint64_t base_low = r->base & 0xffffffffULL;
            const std::uint64_t limit33 = base_low + r->bound;
            const std::uint64_t last33 = base_low + offset + ops.width - 1;
            if (last33 >= limit33) {
                res.reason = ExitReason::HmovBoundsViolation;
                return res;
            }
        }

        res.ok = true;
        res.reason = ExitReason::None;
        res.address = ea;
        return res;
    }

    /**
     * Reference implementation of the explicit-region check using full
     * 64-bit comparisons. Used by property tests to validate the
     * hardware-faithful path and by the ablation bench as the
     * "two 64-bit comparators" design point.
     */
    static HmovResult checkHmovNaive(const HfiRegisterFile &bank,
                                     unsigned explicit_index,
                                     const HmovOperands &ops, bool write);

    /** Convenience overloads over a live context's active bank. @{ */
    static CheckResult checkData(const HfiContext &ctx, VAddr addr,
                                 std::uint32_t width, bool write);
    static CheckResult checkFetch(const HfiContext &ctx, VAddr addr);
    static HmovResult checkHmov(const HfiContext &ctx,
                                unsigned explicit_index,
                                const HmovOperands &ops, bool write);
    static HmovResult checkHmovNaive(const HfiContext &ctx,
                                     unsigned explicit_index,
                                     const HmovOperands &ops, bool write);
    /** @} */
};

} // namespace hfi::core

#endif // HFI_CORE_CHECKER_H
