#include "obs/json_writer.h"

#include <cinttypes>
#include <cstdio>

namespace hfi::obs
{

void
JsonWriter::newlineIndent()
{
    if (indent_ <= 0)
        return;
    out_ += '\n';
    out_.append(static_cast<std::size_t>(indent_) * hasElement_.size(), ' ');
}

void
JsonWriter::comma()
{
    // A value directly after key() never takes a comma or a newline.
    if (pendingKey_) {
        pendingKey_ = false;
        return;
    }
    if (!hasElement_.empty()) {
        if (hasElement_.back())
            out_ += ',';
        hasElement_.back() = true;
        newlineIndent();
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    comma();
    out_ += '{';
    hasElement_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    const bool had = hasElement_.back();
    hasElement_.pop_back();
    if (had)
        newlineIndent();
    out_ += '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    comma();
    out_ += '[';
    hasElement_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    const bool had = hasElement_.back();
    hasElement_.pop_back();
    if (had)
        newlineIndent();
    out_ += ']';
    return *this;
}

void
JsonWriter::appendEscaped(const char *s)
{
    out_ += '"';
    for (; *s; ++s) {
        const char c = *s;
        switch (c) {
          case '"': out_ += "\\\""; break;
          case '\\': out_ += "\\\\"; break;
          case '\n': out_ += "\\n"; break;
          case '\t': out_ += "\\t"; break;
          case '\r': out_ += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out_ += buf;
            } else {
                out_ += c;
            }
        }
    }
    out_ += '"';
}

JsonWriter &
JsonWriter::key(const char *k)
{
    comma();
    appendEscaped(k);
    out_ += indent_ > 0 ? ": " : ":";
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const char *s)
{
    comma();
    appendEscaped(s);
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    comma();
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRIu64, v);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    comma();
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRId64, v);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    comma();
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::value(double v, const char *fmt)
{
    comma();
    char buf[64];
    std::snprintf(buf, sizeof buf, fmt, v);
    out_ += buf;
    return *this;
}

} // namespace hfi::obs
