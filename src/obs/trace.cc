#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/json_writer.h"

namespace hfi::obs
{

const char *
toString(EventType type)
{
    switch (type) {
      case EventType::SandboxEnter: return "sandbox-enter";
      case EventType::SandboxExit: return "sandbox-exit";
      case EventType::WatchdogTimeout: return "watchdog-timeout";
      case EventType::HfiEnter: return "hfi-enter";
      case EventType::HfiExit: return "hfi-exit";
      case EventType::HfiFault: return "hfi-fault";
      case EventType::SyscallRedirect: return "syscall-redirect";
      case EventType::KernelXrstor: return "kernel-xrstor";
      case EventType::RegionSet: return "region-set";
      case EventType::RegionClear: return "region-clear";
      case EventType::RegionRebind: return "region-rebind";
      case EventType::ContextSwitch: return "context-switch";
      case EventType::SignalDeliver: return "signal-deliver";
      case EventType::QueuePush: return "queue-push";
      case EventType::QueuePop: return "queue-pop";
      case EventType::QueueSteal: return "queue-steal";
      case EventType::QueueShed: return "queue-shed";
      case EventType::FaultInject: return "fault-inject";
      case EventType::Retry: return "retry";
      case EventType::Quarantine: return "quarantine";
      case EventType::Respawn: return "respawn";
      case EventType::PoolWait: return "pool-wait";
    }
    return "unknown";
}

Trace::Trace(unsigned cores, TraceConfig config) : config_(std::move(config))
{
    buffers_.resize(cores);
    for (unsigned c = 0; c < cores; ++c)
        buffers_[c].init(c, config_.capacityPerCore, config_.categories);
}

std::vector<MergedEvent>
Trace::merged() const
{
    std::vector<MergedEvent> all;
    std::size_t total = 0;
    for (const auto &b : buffers_)
        total += b.size();
    all.reserve(total);
    // Concatenate in core order, each ring oldest-first, then stable-
    // sort by (timestamp, core). Per-core emission order survives ties,
    // so the merged sequence is a pure function of the per-core
    // streams — the property the sequential-vs-threaded byte-identity
    // test pins.
    for (const auto &b : buffers_)
        for (std::size_t i = 0; i < b.size(); ++i)
            all.push_back({b.at(i), b.core()});
    std::stable_sort(all.begin(), all.end(),
                     [](const MergedEvent &x, const MergedEvent &y) {
                         if (x.event.tsNs != y.event.tsNs)
                             return x.event.tsNs < y.event.tsNs;
                         return x.core < y.core;
                     });
    return all;
}

std::string
Trace::chromeTraceJson() const
{
    // Chrome trace-event format: {"traceEvents": [...]}, timestamps in
    // microseconds. One track (tid) per core under one process.
    // SandboxEnter/SandboxExit map to B/E duration spans so Perfetto
    // renders each request's service interval; everything else is a
    // thread-scoped instant.
    JsonWriter w;
    w.beginObject();
    w.schemaVersion();
    w.field("displayTimeUnit", "ns");
    w.key("traceEvents").beginArray();
    for (const MergedEvent &m : merged()) {
        const Event &e = m.event;
        w.beginObject();
        const bool begin = e.type == EventType::SandboxEnter;
        const bool end = e.type == EventType::SandboxExit;
        w.field("name", begin || end ? "request" : toString(e.type));
        switch (categoryOf(e.type)) {
          case kCatSandbox: w.field("cat", "sandbox"); break;
          case kCatHfi:
          case kCatHfiVerbose: w.field("cat", "hfi"); break;
          case kCatRegion: w.field("cat", "region"); break;
          case kCatSched: w.field("cat", "sched"); break;
          case kCatQueue: w.field("cat", "queue"); break;
          default: w.field("cat", "fault"); break;
        }
        w.field("ph", begin ? "B" : end ? "E" : "i");
        w.field("ts", e.tsNs / 1e3, "%.3f");
        w.field("pid", 0);
        w.field("tid", static_cast<std::uint64_t>(m.core));
        if (!begin && !end)
            w.field("s", "t");
        w.key("args").beginObject();
        w.field("a", e.a);
        w.field("b", e.b);
        if (const char *lbl = label(e))
            w.field("label", lbl);
        if (end)
            w.field("event", toString(e.type));
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    std::string out = w.str();
    out += '\n';
    return out;
}

bool
Trace::flightDump(const char *reason)
{
    triggers_.fetch_add(1, std::memory_order_relaxed);
    bool expected = false;
    if (!fired_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel))
        return false;

    std::string &r = report_;
    r += "=== HFI flight recorder: ";
    r += reason;
    r += " ===\n";
    char line[192];
    for (const auto &b : buffers_) {
        std::snprintf(line, sizeof line,
                      "core %u: %zu event(s), %" PRIu64 " dropped\n",
                      b.core(), b.size(), b.dropped());
        r += line;
        const std::size_t n = std::min(b.size(), config_.flightLastN);
        for (std::size_t i = b.size() - n; i < b.size(); ++i) {
            const Event &e = b.at(i);
            const char *lbl = label(e);
            std::snprintf(line, sizeof line,
                          "  [%14.3f ns] %-18s a=%" PRIu64 " b=%" PRIu64
                          "%s%s\n",
                          e.tsNs, toString(e.type), e.a, e.b,
                          lbl ? " " : "", lbl ? lbl : "");
            r += line;
        }
    }

    std::fputs(r.c_str(), stderr);
    if (!config_.flightPath.empty()) {
        if (FILE *f = std::fopen(config_.flightPath.c_str(), "w")) {
            std::fputs(r.c_str(), f);
            std::fclose(f);
        }
    }
    return true;
}

} // namespace hfi::obs
