/**
 * @file
 * The typed metrics registry: counters, gauges, and log2-bucketed
 * histograms with one merge path.
 *
 * Before this existed every layer merged its own stats by hand — the
 * engine summed ten WorkerStats fields inline, RobustnessStats had a
 * bespoke merge(), LatencyStats another — and adding a metric meant
 * touching every merge site. Here workers *export* their plain structs
 * into a registry at end-of-run (the hot path keeps raw increments) and
 * the engine performs a single typed merge: counters sum, gauges
 * combine by their declared mode (max/min/sum/last), histogram buckets
 * add. All three operations are commutative and associative, so the
 * merged registry is independent of worker merge order — which is what
 * lets the sequential and threaded engine paths share one reduction and
 * keep byte-identical results.
 *
 * Iteration order is name-sorted (std::map), so the JSON export is
 * deterministic without any caller discipline.
 */

#ifndef HFI_OBS_METRICS_H
#define HFI_OBS_METRICS_H

#include <cstdint>
#include <map>
#include <string>

namespace hfi::obs
{

class JsonWriter;

/** How two samples of the same gauge combine under merge(). */
enum class GaugeMode : std::uint8_t
{
    Max = 0,
    Min,
    Sum,
    Last,
};

/**
 * A log2-bucketed histogram of non-negative integer samples.
 *
 * Bucket i holds values whose bit-width is i: bucket 0 is {0}, bucket 1
 * is {1}, bucket 2 is {2,3}, bucket 3 is {4..7}, ... up to bucket 64.
 * Exact count/sum/min/max ride along so coarse buckets never lose the
 * headline numbers.
 */
struct Histogram
{
    static constexpr unsigned kBuckets = 65;

    std::uint64_t buckets[kBuckets] = {};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;

    static constexpr unsigned
    bucketOf(std::uint64_t v)
    {
        unsigned b = 0;
        while (v) {
            ++b;
            v >>= 1;
        }
        return b;
    }

    /** Inclusive upper bound of bucket @p i (2^i - 1). */
    static constexpr std::uint64_t
    bucketBound(unsigned i)
    {
        return i >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << i) - 1;
    }

    void
    observe(std::uint64_t v)
    {
        ++buckets[bucketOf(v)];
        if (count == 0 || v < min)
            min = v;
        if (count == 0 || v > max)
            max = v;
        ++count;
        sum += v;
    }

    void
    merge(const Histogram &o)
    {
        if (o.count == 0)
            return;
        if (count == 0 || o.min < min)
            min = o.min;
        if (count == 0 || o.max > max)
            max = o.max;
        for (unsigned i = 0; i < kBuckets; ++i)
            buckets[i] += o.buckets[i];
        count += o.count;
        sum += o.sum;
    }

    double mean() const { return count ? static_cast<double>(sum) / count : 0; }
};

class MetricsRegistry
{
  public:
    /** Add @p v to counter @p name (creating it at zero). */
    void counterAdd(const std::string &name, std::uint64_t v = 1);

    /** Record a gauge sample; @p mode must be consistent per name. */
    void gaugeSet(const std::string &name, std::uint64_t v,
                  GaugeMode mode = GaugeMode::Max);

    /** Histogram @p name, created empty on first use. */
    Histogram &histogram(const std::string &name);

    /** Counter value (0 when absent). */
    std::uint64_t counter(const std::string &name) const;
    /** Gauge value (0 when absent). */
    std::uint64_t gauge(const std::string &name) const;
    /** Histogram lookup (nullptr when absent). */
    const Histogram *findHistogram(const std::string &name) const;

    /**
     * Fold @p other into this registry: counters sum, gauges combine by
     * their mode, histogram buckets add. Commutative and associative.
     */
    void merge(const MetricsRegistry &other);

    bool empty() const
    {
        return counters_.empty() && gauges_.empty() && histograms_.empty();
    }

    /**
     * Append this registry as a JSON object value (the caller supplies
     * the surrounding key/positioning): {"counters":{...},
     * "gauges":{...}, "histograms":{...}} in name-sorted order.
     */
    void writeJson(JsonWriter &w) const;

    /** Standalone metrics document with the shared schema_version. */
    std::string json() const;

  private:
    struct Gauge
    {
        std::uint64_t value = 0;
        GaugeMode mode = GaugeMode::Max;
        bool set = false;
    };

    static void combine(Gauge &g, std::uint64_t v, GaugeMode mode);

    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace hfi::obs

#endif // HFI_OBS_METRICS_H
