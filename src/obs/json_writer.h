/**
 * @file
 * A minimal deterministic JSON writer shared by every BENCH_*.json
 * emitter and the trace/metrics exporters.
 *
 * Before this existed each bench hand-rolled fprintf JSON with its own
 * top-level layout; serve_faults and sim_throughput disagreed on where
 * metadata lived and neither was versioned. JsonWriter gives them one
 * spelling: schemaVersion() stamps the shared "schema_version" field
 * (checked by the CI regression gate), doubles are printed through an
 * explicit caller-chosen format so output is byte-stable across runs
 * and hosts, and comma/indent bookkeeping can't be got wrong per bench.
 */

#ifndef HFI_OBS_JSON_WRITER_H
#define HFI_OBS_JSON_WRITER_H

#include <cstdint>
#include <string>
#include <vector>

namespace hfi::obs
{

/** Version of the shared BENCH_*.json / trace / metrics layouts. */
constexpr int kJsonSchemaVersion = 2;

class JsonWriter
{
  public:
    /** @p indent 2 matches the historical BENCH files; 0 = compact. */
    explicit JsonWriter(int indent = 2) : indent_(indent) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Key inside an object; follow with exactly one value/begin*. */
    JsonWriter &key(const char *k);

    JsonWriter &value(const char *s);
    JsonWriter &value(const std::string &s) { return value(s.c_str()); }
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v) { return value(static_cast<std::int64_t>(v)); }
    JsonWriter &value(unsigned v)
    {
        return value(static_cast<std::uint64_t>(v));
    }
    JsonWriter &value(bool v);
    /** @p fmt is a printf double format, e.g. "%.3f" — pick one per
        field and keep it: the format is part of the byte-stability
        contract. */
    JsonWriter &value(double v, const char *fmt = "%.3f");

    /** key + value in one call. @{ */
    template <typename T>
    JsonWriter &
    field(const char *k, T v)
    {
        key(k);
        return value(v);
    }
    JsonWriter &
    field(const char *k, double v, const char *fmt)
    {
        key(k);
        return value(v, fmt);
    }
    /** @} */

    /** The shared "schema_version" field every emitter stamps. */
    JsonWriter &schemaVersion() { return field("schema_version",
                                               kJsonSchemaVersion); }

    /** The finished document (call after the last end*()). */
    const std::string &str() const { return out_; }

  private:
    void comma();
    void newlineIndent();
    void appendEscaped(const char *s);

    std::string out_;
    int indent_;
    /** true = container already holds an element (needs a comma). */
    std::vector<bool> hasElement_;
    bool pendingKey_ = false;
};

} // namespace hfi::obs

#endif // HFI_OBS_JSON_WRITER_H
