/**
 * @file
 * The compile-time gate for observability instrumentation.
 *
 * Every trace-record call site in the instrumented subsystems goes
 * through HFI_OBS_RECORD / HFI_OBS_STMT. When the build sets
 * HFI_OBS_ENABLED=0 (`cmake -DHFI_OBS=OFF`), both expand to nothing:
 * the instrumented binaries carry zero observability code, and the
 * obs types referenced only from those call sites are never touched.
 * The default (ON) build keeps the calls, which are themselves
 * runtime-gated: a null sink pointer or a masked-out category costs
 * one predictable branch.
 */

#ifndef HFI_OBS_OBS_GATE_H
#define HFI_OBS_OBS_GATE_H

#ifndef HFI_OBS_ENABLED
#define HFI_OBS_ENABLED 1
#endif

#if HFI_OBS_ENABLED

/** Record an event through a (possibly null) TraceBuffer pointer. */
#define HFI_OBS_RECORD(buf, ...)                                             \
    do {                                                                     \
        if (buf)                                                             \
            (buf)->record(__VA_ARGS__);                                      \
    } while (0)

/** Execute the statement only when instrumentation is compiled in. */
#define HFI_OBS_STMT(...)                                                    \
    do {                                                                     \
        __VA_ARGS__;                                                         \
    } while (0)

#else

#define HFI_OBS_RECORD(buf, ...) ((void)0)
#define HFI_OBS_STMT(...) ((void)0)

#endif // HFI_OBS_ENABLED

#endif // HFI_OBS_OBS_GATE_H
