/**
 * @file
 * The event taxonomy of the deterministic tracer.
 *
 * One Event is one state transition at the hardware/OS/engine boundary:
 * a sandbox enter/exit with its MSR reason, a region-register update, a
 * context switch, a queue operation, a fault-injector decision, or a
 * robustness-machinery transition (retry, quarantine, respawn,
 * watchdog). Events are stamped on the VirtualClock — never wall time —
 * so a trace is a pure function of (configuration, seed) and two runs
 * produce byte-identical trace JSON.
 *
 * Events carry two generic 64-bit arguments whose meaning is per-type
 * (documented at each enumerator). Human-readable annotations (e.g.
 * the ExitReason name behind a SandboxExit's b argument) are *not*
 * stored per event: the instrumented layer registers a per-type label
 * resolver on the Trace (see Trace::setLabeler) and exporters call it
 * at serialization time. That keeps obs dependency-free below
 * everything it instruments, and keeps an Event at 32 bytes — half a
 * cache line, which the trace_overhead gate depends on.
 */

#ifndef HFI_OBS_EVENTS_H
#define HFI_OBS_EVENTS_H

#include <cstdint>

namespace hfi::obs
{

/** Runtime gating categories (bitmask in TraceConfig::categories). */
enum Category : std::uint32_t
{
    kCatSandbox = 1u << 0, ///< sandbox enter/exit, watchdog
    kCatHfi = 1u << 1,     ///< faults, syscall redirects, kernel xrstor
    kCatRegion = 1u << 2,  ///< region set/clear/rebind
    kCatSched = 1u << 3,   ///< context switches, signals
    kCatQueue = 1u << 4,   ///< shard-queue push/pop/steal/shed
    kCatFault = 1u << 5,   ///< injector decisions, retry/quarantine state
    /** Instruction-level hfi_enter/hfi_exit transitions. Off by default:
        in this engine every dispatch brackets them 1:1 between the
        SandboxEnter/KernelXrstor events, so at default verbosity they
        are redundant chatter in the hottest stretch of the dispatch
        path (they alone are ~1% of run time in the trace_overhead
        gate). Full-fidelity consumers opt in with kCatAll. */
    kCatHfiVerbose = 1u << 6,
    kCatAll = 0xffffffffu,
    /** What TraceConfig records unless told otherwise. */
    kCatDefault = kCatAll & ~kCatHfiVerbose,
};

enum class EventType : std::uint8_t
{
    // kCatSandbox — the serving engine's per-request envelope.
    SandboxEnter = 0, ///< a = request id, b = attempt
    SandboxExit,      ///< a = request id, b = ExitReason (labeled)
    WatchdogTimeout,  ///< a = request id, b = attempt

    // kCatHfi (HfiEnter/HfiExit: kCatHfiVerbose) — HfiContext
    // transitions.
    HfiEnter,        ///< a = isHybrid, b = switchOnExit
    HfiExit,         ///< a = handler address, b = switched banks
    HfiFault,        ///< a = ExitReason written to the MSR (labeled)
    SyscallRedirect, ///< a = exit-handler address
    KernelXrstor,    ///< a = incoming file enabled flag

    // kCatRegion — region-register file updates.
    RegionSet,    ///< a = register index
    RegionClear,  ///< a = register index (kNumRegions = clear-all)
    RegionRebind, ///< a = request id (warm-pool re-install before enter)

    // kCatSched — the modeled OS.
    ContextSwitch, ///< a = outgoing pid, b = incoming pid
    SignalDeliver, ///< a = target pid

    // kCatQueue — sharded run queues.
    QueuePush,  ///< a = request id, b = shard
    QueuePop,   ///< a = request id, b = shard
    QueueSteal, ///< a = request id, b = victim shard
    QueueShed,  ///< a = request id, b = shard

    // kCatFault — injector decisions and robustness transitions.
    FaultInject, ///< a = request id, b = FaultKind (labeled)
    Retry,       ///< a = request id, b = next attempt
    Quarantine,  ///< a = request id
    Respawn,     ///< a = pool slots respawned so far
    PoolWait,    ///< a = request id
};

constexpr unsigned kNumEventTypes =
    static_cast<unsigned>(EventType::PoolWait) + 1;

/** Category an event type is gated under. */
constexpr std::uint32_t
categoryOf(EventType type)
{
    switch (type) {
      case EventType::SandboxEnter:
      case EventType::SandboxExit:
      case EventType::WatchdogTimeout:
        return kCatSandbox;
      case EventType::HfiEnter:
      case EventType::HfiExit:
        return kCatHfiVerbose;
      case EventType::HfiFault:
      case EventType::SyscallRedirect:
      case EventType::KernelXrstor:
        return kCatHfi;
      case EventType::RegionSet:
      case EventType::RegionClear:
      case EventType::RegionRebind:
        return kCatRegion;
      case EventType::ContextSwitch:
      case EventType::SignalDeliver:
        return kCatSched;
      case EventType::QueuePush:
      case EventType::QueuePop:
      case EventType::QueueSteal:
      case EventType::QueueShed:
        return kCatQueue;
      case EventType::FaultInject:
      case EventType::Retry:
      case EventType::Quarantine:
      case EventType::Respawn:
      case EventType::PoolWait:
        return kCatFault;
    }
    return kCatAll;
}

const char *toString(EventType type);

/** One recorded transition. Exactly 32 bytes and 32-aligned, so an
    event never straddles a cache line and two fill one — the record
    hot path is a handful of stores into at most one line. */
struct alignas(32) Event
{
    double tsNs = 0; ///< virtual-clock timestamp, nanoseconds
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    EventType type = EventType::SandboxEnter;
};

static_assert(sizeof(Event) == 32, "Event is half a cache line");

} // namespace hfi::obs

#endif // HFI_OBS_EVENTS_H
