/**
 * @file
 * The deterministic event tracer: one fixed-capacity ring buffer per
 * simulated core, merged by virtual timestamp into a Chrome/Perfetto
 * trace, plus a latched flight recorder for post-mortem dumps.
 *
 * Design constraints, in order:
 *
 *  1. *Determinism.* Events are stamped on virtual time and stored in
 *     emission order per core. The merged view is a stable sort by
 *     (timestamp, core), so two runs of the same seed — sequential or
 *     one-host-thread-per-core — serialize to byte-identical JSON.
 *  2. *Thread safety by construction.* Each core's ring is written only
 *     by the host thread driving that core (the engine guarantees
 *     this), so recording takes no locks. The only cross-thread state
 *     is the flight recorder's fire-once latch, which is atomic.
 *  3. *Bounded cost.* A ring never allocates after construction;
 *     overflow drops the *oldest* event and counts the drop. Recording
 *     is a branch, a few stores, and a wrapping increment.
 */

#ifndef HFI_OBS_TRACE_H
#define HFI_OBS_TRACE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/events.h"
#include "obs/obs_gate.h"

namespace hfi::obs
{

struct TraceConfig
{
    /** Ring capacity per core, in events. The default is sized for the
        flight recorder (4x flightLastN) and, at ~10 KiB per core,
        stays L1-resident so always-on recording does not wash the
        instrumented code's working set out of the cache — the
        trace_overhead gate is calibrated against it. Full-trace
        consumers (exporters, the determinism tests) raise it
        explicitly. Rounded up to a power of two. */
    std::size_t capacityPerCore = 256;
    /** Bitmask of Category values recorded; others are dropped free.
        The default records everything except kCatHfiVerbose. */
    std::uint32_t categories = kCatDefault;
    /** How many trailing events per core a flight dump includes. */
    std::size_t flightLastN = 64;
    /** Fire the flight recorder on the first watchdog timeout. */
    bool flightOnWatchdog = true;
    /** Flight-recorder dump file ("" = stderr only). */
    std::string flightPath;
};

/**
 * One core's event ring. Written by exactly one thread; read only
 * after the run (or by the flight recorder on that same thread).
 */
class TraceBuffer
{
  public:
    TraceBuffer() = default;

    /** @p capacity is rounded up to a power of two (zero disables the
        ring entirely by masking every category out). */
    void
    init(unsigned core, std::size_t capacity, std::uint32_t categories)
    {
        core_ = core;
        std::size_t cap = 1;
        while (cap < capacity)
            cap <<= 1;
        categories_ = capacity == 0 ? 0u : categories;
        cap_ = capacity == 0 ? 0 : cap;
        ring_.assign(cap_, Event{});
        mask_ = cap_ == 0 ? 0 : cap_ - 1;
        writes_ = 0;
    }

    /** Append an event; drops the oldest when the ring is full.
        Hot path (the trace_overhead gate keys on every piece of this):
        a single monotone write index masked by the power-of-two
        capacity, so recording is one predictable branch, a 32-byte
        aligned cacheable store, and an increment — occupancy, head and
        drop count are all derived from the index at read time, never
        maintained here. (Non-temporal streaming stores were measured
        3x worse on virtualized hosts, where partial write-combining
        evictions go to memory at uncached cost.) */
    void
    record(EventType type, double ts_ns, std::uint64_t a = 0,
           std::uint64_t b = 0)
    {
        if ((categories_ & categoryOf(type)) == 0)
            return;
        ring_[static_cast<std::size_t>(writes_) & mask_] =
            Event{ts_ns, a, b, type};
        ++writes_;
    }

    unsigned core() const { return core_; }
    std::size_t size() const
    {
        return writes_ < cap_ ? static_cast<std::size_t>(writes_) : cap_;
    }
    std::size_t capacity() const { return cap_; }
    /** Events lost to overflow (oldest-first eviction). */
    std::uint64_t dropped() const
    {
        return writes_ > cap_ ? writes_ - cap_ : 0;
    }

    /** Event @p i, oldest first. */
    const Event &at(std::size_t i) const
    {
        // When the ring has wrapped, the slot about to be overwritten
        // (writes_ & mask_) holds the oldest retained event.
        const std::size_t head =
            writes_ > cap_ ? static_cast<std::size_t>(writes_) & mask_ : 0;
        return ring_[(head + i) & mask_];
    }

  private:
    std::vector<Event> ring_;
    std::size_t cap_ = 0;
    std::size_t mask_ = 0;
    std::uint64_t writes_ = 0;
    std::uint32_t categories_ = kCatDefault;
    unsigned core_ = 0;
};

/** An event tagged with its core, in merged order. */
struct MergedEvent
{
    Event event{};
    unsigned core = 0;
};

/**
 * The whole trace: per-core rings plus the flight recorder.
 *
 * Owned by the caller (bench/test) and attached to an engine run via
 * EngineConfig::trace; the engine hands each worker its core's ring.
 */
class Trace
{
  public:
    explicit Trace(unsigned cores, TraceConfig config = {});

    TraceBuffer &buffer(unsigned core) { return buffers_[core]; }
    const TraceBuffer &buffer(unsigned core) const { return buffers_[core]; }
    unsigned cores() const { return static_cast<unsigned>(buffers_.size()); }
    const TraceConfig &config() const { return config_; }

    /**
     * Export-time label resolution. Events store only their generic
     * arguments; an instrumented layer that wants its enum spelled out
     * in exports (e.g. the ExitReason behind a SandboxExit) registers
     * a resolver for that event type — called by the exporters and the
     * flight recorder, never on the record hot path. The returned
     * pointer must have static storage. @{
     */
    using Labeler = const char *(*)(const Event &);

    void
    setLabeler(EventType type, Labeler fn)
    {
        labelers_[static_cast<unsigned>(type)] = fn;
    }

    const char *
    label(const Event &event) const
    {
        const Labeler fn = labelers_[static_cast<unsigned>(event.type)];
        return fn ? fn(event) : nullptr;
    }
    /** @} */

    /**
     * All events merged by (virtual timestamp, core index); within a
     * tie on both, per-core emission order is preserved (stable sort).
     * This is the canonical order every exporter serializes.
     */
    std::vector<MergedEvent> merged() const;

    /**
     * Chrome trace-event JSON (loadable in Perfetto or
     * chrome://tracing): one track (tid) per core, virtual-ns timebase
     * expressed in the format's microsecond unit. SandboxEnter/Exit
     * become duration (B/E) spans; everything else an instant.
     * Byte-identical for byte-identical event streams.
     */
    std::string chromeTraceJson() const;

    /**
     * Fire the flight recorder: dump the last flightLastN events of
     * every core (plus drop counts) to stderr and, when configured, to
     * TraceConfig::flightPath. Latched — only the first trigger dumps;
     * later calls (from any thread) are counted but silent.
     *
     * @return true when this call performed the dump.
     */
    bool flightDump(const char *reason);

    /** Times flightDump was called (first one fired the dump). */
    std::uint64_t flightTriggers() const
    {
        return triggers_.load(std::memory_order_relaxed);
    }

    /** True once the dump has fired. */
    bool flightFired() const
    {
        return fired_.load(std::memory_order_relaxed);
    }

    /** The text of the dump that fired ("" until then; for tests). */
    const std::string &flightReport() const { return report_; }

  private:
    TraceConfig config_;
    std::vector<TraceBuffer> buffers_;
    Labeler labelers_[kNumEventTypes] = {};
    std::atomic<std::uint64_t> triggers_{0};
    std::atomic<bool> fired_{false};
    std::string report_;
};

} // namespace hfi::obs

#endif // HFI_OBS_TRACE_H
