#include "obs/metrics.h"

#include "obs/json_writer.h"

namespace hfi::obs
{

void
MetricsRegistry::counterAdd(const std::string &name, std::uint64_t v)
{
    counters_[name] += v;
}

void
MetricsRegistry::combine(Gauge &g, std::uint64_t v, GaugeMode mode)
{
    if (!g.set) {
        g.value = v;
        g.mode = mode;
        g.set = true;
        return;
    }
    switch (mode) {
      case GaugeMode::Max:
        if (v > g.value)
            g.value = v;
        break;
      case GaugeMode::Min:
        if (v < g.value)
            g.value = v;
        break;
      case GaugeMode::Sum: g.value += v; break;
      case GaugeMode::Last: g.value = v; break;
    }
}

void
MetricsRegistry::gaugeSet(const std::string &name, std::uint64_t v,
                          GaugeMode mode)
{
    combine(gauges_[name], v, mode);
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    return histograms_[name];
}

std::uint64_t
MetricsRegistry::counter(const std::string &name) const
{
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

std::uint64_t
MetricsRegistry::gauge(const std::string &name) const
{
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0 : it->second.value;
}

const Histogram *
MetricsRegistry::findHistogram(const std::string &name) const
{
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

void
MetricsRegistry::merge(const MetricsRegistry &other)
{
    for (const auto &[name, v] : other.counters_)
        counters_[name] += v;
    for (const auto &[name, g] : other.gauges_)
        if (g.set)
            combine(gauges_[name], g.value, g.mode);
    for (const auto &[name, h] : other.histograms_)
        histograms_[name].merge(h);
}

void
MetricsRegistry::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.key("counters").beginObject();
    for (const auto &[name, v] : counters_)
        w.field(name.c_str(), v);
    w.endObject();
    w.key("gauges").beginObject();
    for (const auto &[name, g] : gauges_)
        w.field(name.c_str(), g.value);
    w.endObject();
    w.key("histograms").beginObject();
    for (const auto &[name, h] : histograms_) {
        w.key(name.c_str()).beginObject();
        w.field("count", h.count);
        w.field("sum", h.sum);
        w.field("min", h.min);
        w.field("max", h.max);
        w.field("mean", h.mean(), "%.3f");
        // Sparse bucket dump: [bit-width, count] pairs, ascending.
        w.key("log2_buckets").beginArray();
        for (unsigned i = 0; i < Histogram::kBuckets; ++i) {
            if (!h.buckets[i])
                continue;
            w.beginArray();
            w.value(i);
            w.value(h.buckets[i]);
            w.endArray();
        }
        w.endArray();
        w.endObject();
    }
    w.endObject();
    w.endObject();
}

std::string
MetricsRegistry::json() const
{
    JsonWriter w;
    w.beginObject();
    w.schemaVersion();
    w.key("metrics");
    writeJson(w);
    w.endObject();
    std::string out = w.str();
    out += '\n';
    return out;
}

} // namespace hfi::obs
