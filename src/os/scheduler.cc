#include "os/scheduler.h"

namespace hfi::os
{

Scheduler::Scheduler(core::HfiContext &ctx, SchedulerCosts costs)
    : ctx(ctx), costs_(costs)
{
}

int
Scheduler::createProcess(const std::string &name)
{
    Process process;
    process.pid = static_cast<int>(processes.size());
    process.name = name;
    // A fresh process starts with a cleared HFI register file — the
    // kernel zeroes the xsave area, so no region state leaks between
    // processes.
    processes.push_back(process);
    if (current < 0)
        current = process.pid;
    return process.pid;
}

bool
Scheduler::switchTo(int pid)
{
    if (pid < 0 || pid >= static_cast<int>(processes.size()))
        return false;
    auto &clock = ctx.clock();
    clock.tick(clock.nsToCycles(costs_.contextSwitchNs));
    HFI_OBS_RECORD(trace_, obs::EventType::ContextSwitch, clock.nowNsFast(),
                   static_cast<std::uint64_t>(current),
                   static_cast<std::uint64_t>(pid));

    if (costs_.saveHfiRegs) {
        // xsave with save-hfi-regs: capture the outgoing process's HFI
        // registers (§3.3.3)...
        processes[current].hfiState = ctx.xsave();
        // ...and restore the incoming one's through the *kernel's*
        // xrstor. The ring-0 restore never traps — the user-mode
        // xrstor would when the outgoing process was preempted inside
        // a native sandbox, and taking that trap here used to leak the
        // outgoing process's region state into the incoming one. The
        // save/restore cycle costs from core/cost_model.h are charged
        // on every switch.
        ctx.kernelXrstor(processes[pid].hfiState);
    }
    current = pid;
    ++processes[pid].switchIns;
    ++totalSwitches_;
    return true;
}

bool
Scheduler::deliverFault(int pid)
{
    if (pid < 0 || pid >= static_cast<int>(processes.size()))
        return false;
    auto &clock = ctx.clock();
    clock.tick(clock.nsToCycles(costs_.signalDeliveryNs));
    ++signalsDelivered_;
    HFI_OBS_RECORD(trace_, obs::EventType::SignalDeliver, clock.nowNsFast(),
                   static_cast<std::uint64_t>(pid));
    return switchTo(pid);
}

int
Scheduler::yield()
{
    if (processes.empty())
        return -1;
    const int next = (current + 1) % static_cast<int>(processes.size());
    switchTo(next);
    return next;
}

} // namespace hfi::os
