/**
 * @file
 * The OS side of HFI (§3.3.3): "Multiple processes can use HFI
 * concurrently. To enable this, the OS must save the contents of HFI
 * registers (along with the general-purpose registers) when switching
 * between processes... HFI adds a flag (save-hfi-regs) to the x86 xsave
 * and xrstor instructions."
 *
 * This module is that "simple and minimal change": a round-robin
 * process scheduler whose context switch extends the usual xsave/xrstor
 * pair with the HFI register file. Each process gets its own view of
 * the region registers; a process that is preempted mid-sandbox resumes
 * still sandboxed.
 */

#ifndef HFI_OS_SCHEDULER_H
#define HFI_OS_SCHEDULER_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/context.h"
#include "vm/virtual_clock.h"

namespace hfi::os
{

/** Costs of the modeled kernel context switch. */
struct SchedulerCosts
{
    /** Ring transition + scheduler bookkeeping + GP xsave/xrstor, ns. */
    double contextSwitchNs = 1200.0;
    /**
     * Incremental cost of the save-hfi-regs flag: 22 extra 64-bit
     * registers through xsave/xrstor (§4's register budget). Charged
     * through HfiContext's xsave/xrstor cycle costs.
     */
    bool saveHfiRegs = true;
    /**
     * Signal-frame setup + delivery on top of the ordinary switch when
     * the kernel routes a fault to the trusted runtime (§3.3.2's
     * SIGSEGV path), ns.
     */
    double signalDeliveryNs = 850.0;
};

/** One process's saved context. */
struct Process
{
    int pid = -1;
    std::string name;
    /** HFI register file captured at the last switch-out. */
    core::HfiRegisterFile hfiState{};
    std::uint64_t switchIns = 0;
};

/**
 * A miniature round-robin scheduler over one core's HfiContext.
 *
 * Only the HFI-relevant part of a context switch is modeled; general-
 * purpose register save/restore is a flat cost.
 */
class Scheduler
{
  public:
    Scheduler(core::HfiContext &ctx, SchedulerCosts costs = {});

    /** Create a process; the first one becomes current. */
    int createProcess(const std::string &name);

    /**
     * Switch to @p pid: xsave the current process's HFI registers,
     * xrstor the target's.
     * @return false for an unknown pid.
     */
    bool switchTo(int pid);

    /** Round-robin: switch to the next process in pid order. */
    int yield();

    /**
     * Deliver a fault signal to @p pid: an HFI trap or watchdog kill in
     * the current process makes the kernel build a signal frame and
     * switch to the trusted runtime (§3.3.2). Charges signalDeliveryNs
     * on top of the ordinary context switch.
     * @return false for an unknown pid.
     */
    bool deliverFault(int pid);

    /** Fault signals delivered since construction. */
    std::uint64_t signalsDelivered() const { return signalsDelivered_; }

    int currentPid() const { return current; }
    const Process &process(int pid) const { return processes[pid]; }
    std::size_t processCount() const { return processes.size(); }

    /** Context switches performed since construction (for reporting). */
    std::uint64_t totalSwitches() const { return totalSwitches_; }

    core::HfiContext &context() { return ctx; }

    /**
     * Attach this core's trace ring: switchTo records ContextSwitch
     * (outgoing pid, incoming pid), deliverFault records SignalDeliver.
     * The underlying kernelXrstor is traced by the HfiContext itself.
     */
    void setTrace(obs::TraceBuffer *trace) { trace_ = trace; }

  private:
    core::HfiContext &ctx;
    SchedulerCosts costs_;
    std::vector<Process> processes;
    int current = -1;
    std::uint64_t totalSwitches_ = 0;
    std::uint64_t signalsDelivered_ = 0;
    obs::TraceBuffer *trace_ = nullptr;
};

} // namespace hfi::os

#endif // HFI_OS_SCHEDULER_H
