/**
 * @file
 * System-call interposition paths: HFI's microcode redirect vs ERIM's
 * Seccomp-bpf (§6.4.1), plus the miniature kernel the open/read/close
 * microbenchmark calls into.
 *
 * Both interposers mediate the same syscall stream and end by allowing
 * the call; they differ only in what the mediation costs:
 *
 *  - HFI: a 1-cycle microcode check at decode plus a jump to the exit
 *    handler (§4.4) and an hfi_reenter afterwards;
 *  - Seccomp: the kernel's fixed seccomp entry bookkeeping plus the cBPF
 *    filter program, actually executed instruction by instruction.
 */

#ifndef HFI_SYSCALL_INTERPOSER_H
#define HFI_SYSCALL_INTERPOSER_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/context.h"
#include "syscall/bpf.h"
#include "vm/virtual_clock.h"

namespace hfi::syscall
{

/** x86-64 syscall numbers used by the experiments. */
constexpr std::uint32_t kSysRead = 0;
constexpr std::uint32_t kSysWrite = 1;
constexpr std::uint32_t kSysOpen = 2;
constexpr std::uint32_t kSysClose = 3;
constexpr std::uint32_t kSysMmap = 9;
constexpr std::uint32_t kSysMprotect = 10;
constexpr std::uint32_t kSysMadvise = 28;
constexpr std::uint32_t kSysExitGroup = 231;

/** What the interposition layer decided. */
enum class Verdict
{
    Allow,
    Deny,
};

/** Cost parameters for the two interposition mechanisms. */
struct InterposeCosts
{
    /** Seccomp entry/exit bookkeeping in the kernel syscall path, ns. */
    double seccompFixedNs = 50.0;
    /** Per-executed-BPF-instruction cost, ns (kernel interpreter). */
    double bpfInsnNs = 2.2;
    /** Cycles the trusted runtime's exit handler spends dispatching. */
    std::uint64_t hfiHandlerCycles = 14;
};

/**
 * Interposes using HFI's native-sandbox syscall redirect. The sandboxed
 * code's syscall decodes into a jump to the exit handler; the handler
 * consults its policy and re-enters.
 */
class HfiInterposer
{
  public:
    HfiInterposer(core::HfiContext &ctx,
                  std::vector<std::uint32_t> allowed_nrs,
                  InterposeCosts costs = {});

    /** Mediate one syscall issued inside the (native) sandbox. */
    Verdict onSyscall(const SeccompData &data);

    std::uint64_t mediated() const { return mediated_; }

  private:
    core::HfiContext &ctx;
    std::vector<std::uint32_t> allowed;
    InterposeCosts costs_;
    std::uint64_t mediated_ = 0;
};

/** Interposes by running a seccomp cBPF filter on every syscall. */
class SeccompInterposer
{
  public:
    SeccompInterposer(vm::VirtualClock &clock,
                      std::vector<std::uint32_t> allowed_nrs,
                      InterposeCosts costs = {});

    Verdict onSyscall(const SeccompData &data);

    std::uint64_t mediated() const { return mediated_; }
    const std::vector<BpfInsn> &filter() const { return filter_; }

  private:
    vm::VirtualClock &clock;
    std::vector<BpfInsn> filter_;
    InterposeCosts costs_;
    std::uint64_t mediated_ = 0;
};

/**
 * A miniature kernel file layer for the §6.4.1 microbenchmark: an
 * in-memory set of files, open/read/close with realistic per-call
 * costs (ring transition, fd table work, page-cache copy per byte).
 */
/** Per-call costs of the modeled kernel file layer. */
struct MiniKernelCosts
{
    double syscallFixedNs = 1750.0; ///< ring transition + entry
    double openLookupNs = 650.0;    ///< path walk + fd install
    double readPerByteNs = 0.031;   ///< page-cache copy (~32 GB/s)
    double closeNs = 210.0;
};

class MiniKernel
{
  public:
    explicit MiniKernel(vm::VirtualClock &clock, MiniKernelCosts costs = {});

    /** Create a file with @p size deterministic bytes. */
    void addFile(const std::string &path, std::uint64_t size,
                 std::uint32_t seed);

    /** @return fd >= 0, or -1 when the path does not exist. */
    int open(const std::string &path);

    /**
     * Read up to @p len bytes at the fd's offset into @p out (may be
     * nullptr to model a read into sandbox memory whose metering the
     * caller handles).
     * @return bytes read.
     */
    std::int64_t read(int fd, std::uint8_t *out, std::uint64_t len);

    bool close(int fd);

    const std::vector<std::uint8_t> *fileData(const std::string &path) const;

  private:
    void charge(double ns) { clock.tick(clock.nsToCycles(ns)); }

    vm::VirtualClock &clock;
    MiniKernelCosts costs_;
    std::map<std::string, std::vector<std::uint8_t>> files;
    struct OpenFile
    {
        const std::vector<std::uint8_t> *data;
        std::uint64_t offset;
    };
    std::map<int, OpenFile> fds;
    int nextFd = 3;
};

} // namespace hfi::syscall

#endif // HFI_SYSCALL_INTERPOSER_H
