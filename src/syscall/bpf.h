/**
 * @file
 * A classic-BPF interpreter executing seccomp filter programs for real.
 *
 * ERIM — the paper's MPK-based comparison point — interposes on system
 * calls with Seccomp-bpf (§6.4.1): the kernel runs a cBPF program
 * against each syscall's (nr, arch, ip, args[6]) record and acts on the
 * verdict. To reproduce the measured 2.1% overhead honestly, we execute
 * the same instruction set the kernel does (LD/JMP/ALU/RET over the
 * seccomp_data buffer) rather than charging a flat constant: the cost
 * scales with the filter's length and branch structure exactly like the
 * real thing.
 */

#ifndef HFI_SYSCALL_BPF_H
#define HFI_SYSCALL_BPF_H

#include <cstdint>
#include <vector>

namespace hfi::syscall
{

/** The seccomp_data record filters inspect. */
struct SeccompData
{
    std::uint32_t nr = 0;           ///< syscall number
    std::uint32_t arch = 0xc000003e;///< AUDIT_ARCH_X86_64
    std::uint64_t instructionPointer = 0;
    std::uint64_t args[6] = {};
};

/** cBPF opcode classes/modes (the subset seccomp uses). */
namespace bpf
{
constexpr std::uint16_t LD = 0x00;
constexpr std::uint16_t ALU = 0x04;
constexpr std::uint16_t JMP = 0x05;
constexpr std::uint16_t RET = 0x06;
constexpr std::uint16_t MISC = 0x07;

// LD modes/sizes.
constexpr std::uint16_t W = 0x00;    ///< 32-bit word
constexpr std::uint16_t ABS = 0x20;  ///< absolute offset into seccomp_data
constexpr std::uint16_t IMM = 0x00;
constexpr std::uint16_t MEM = 0x60;

// JMP kinds.
constexpr std::uint16_t JA = 0x00;
constexpr std::uint16_t JEQ = 0x10;
constexpr std::uint16_t JGT = 0x20;
constexpr std::uint16_t JGE = 0x30;
constexpr std::uint16_t JSET = 0x40;

// ALU kinds.
constexpr std::uint16_t ADD = 0x00;
constexpr std::uint16_t SUB = 0x10;
constexpr std::uint16_t AND = 0x50;
constexpr std::uint16_t OR = 0x40;
constexpr std::uint16_t RSH = 0x70;

// Operand source.
constexpr std::uint16_t K = 0x00;  ///< immediate
constexpr std::uint16_t X = 0x08;  ///< index register

constexpr std::uint16_t TAX = 0x00;
constexpr std::uint16_t TXA = 0x80;
} // namespace bpf

/** One cBPF instruction (struct sock_filter layout). */
struct BpfInsn
{
    std::uint16_t code = 0;
    std::uint8_t jt = 0;
    std::uint8_t jf = 0;
    std::uint32_t k = 0;
};

/** Seccomp verdicts (the subset the experiments need). */
constexpr std::uint32_t kSeccompRetKill = 0x00000000;
constexpr std::uint32_t kSeccompRetTrap = 0x00030000;
constexpr std::uint32_t kSeccompRetErrno = 0x00050000;
constexpr std::uint32_t kSeccompRetTrace = 0x7ff00000;
constexpr std::uint32_t kSeccompRetAllow = 0x7fff0000;

/** Result of running a filter. */
struct BpfResult
{
    std::uint32_t verdict = kSeccompRetKill;
    std::uint64_t instructionsExecuted = 0;
};

/**
 * Execute @p program against @p data with classic-BPF semantics:
 * accumulator + index register + 16-slot scratch memory; LD W ABS reads
 * little-endian 32-bit words out of the seccomp_data record.
 *
 * @return the verdict plus the executed-instruction count the cost
 *         model charges. A malformed program (fall off the end, bad
 *         offset) yields KILL like the kernel's verifier would reject.
 */
BpfResult runFilter(const std::vector<BpfInsn> &program,
                    const SeccompData &data);

/**
 * Build an ERIM-style allowlist filter: check arch, then compare the
 * syscall number against @p allowed_nrs one JEQ at a time (the shape
 * libseccomp generates), returning ALLOW on match and TRAP otherwise.
 */
std::vector<BpfInsn> makeAllowlistFilter(
    const std::vector<std::uint32_t> &allowed_nrs);

} // namespace hfi::syscall

#endif // HFI_SYSCALL_BPF_H
