#include "syscall/interposer.h"

#include <algorithm>
#include <cstring>

namespace hfi::syscall
{

HfiInterposer::HfiInterposer(core::HfiContext &ctx,
                             std::vector<std::uint32_t> allowed_nrs,
                             InterposeCosts costs)
    : ctx(ctx), allowed(std::move(allowed_nrs)), costs_(costs)
{
}

Verdict
HfiInterposer::onSyscall(const SeccompData &data)
{
    ++mediated_;
    // The syscall instruction decodes into a jump to the exit handler
    // (HfiContext charges the 1-cycle check + redirect, §4.4)...
    ctx.onSyscall();
    // ...the handler dispatches on the MSR-recorded cause and checks
    // its policy...
    ctx.readExitReasonMsr();
    ctx.clock().tick(costs_.hfiHandlerCycles);
    const bool ok =
        std::find(allowed.begin(), allowed.end(), data.nr) != allowed.end();
    // ...and resumes the sandbox.
    ctx.reenter();
    return ok ? Verdict::Allow : Verdict::Deny;
}

SeccompInterposer::SeccompInterposer(vm::VirtualClock &clock,
                                     std::vector<std::uint32_t> allowed_nrs,
                                     InterposeCosts costs)
    : clock(clock), filter_(makeAllowlistFilter(allowed_nrs)), costs_(costs)
{
}

Verdict
SeccompInterposer::onSyscall(const SeccompData &data)
{
    ++mediated_;
    const BpfResult res = runFilter(filter_, data);
    clock.tick(clock.nsToCycles(
        costs_.seccompFixedNs +
        costs_.bpfInsnNs * static_cast<double>(res.instructionsExecuted)));
    return res.verdict == kSeccompRetAllow ? Verdict::Allow : Verdict::Deny;
}

MiniKernel::MiniKernel(vm::VirtualClock &clock, MiniKernelCosts costs)
    : clock(clock), costs_(costs)
{
}

void
MiniKernel::addFile(const std::string &path, std::uint64_t size,
                    std::uint32_t seed)
{
    std::vector<std::uint8_t> data(size);
    std::uint64_t state = seed | 1;
    for (auto &b : data) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        b = static_cast<std::uint8_t>(state >> 56);
    }
    files[path] = std::move(data);
}

int
MiniKernel::open(const std::string &path)
{
    charge(costs_.syscallFixedNs + costs_.openLookupNs);
    const auto it = files.find(path);
    if (it == files.end())
        return -1;
    const int fd = nextFd++;
    fds[fd] = OpenFile{&it->second, 0};
    return fd;
}

std::int64_t
MiniKernel::read(int fd, std::uint8_t *out, std::uint64_t len)
{
    charge(costs_.syscallFixedNs);
    const auto it = fds.find(fd);
    if (it == fds.end())
        return -1;
    OpenFile &file = it->second;
    const std::uint64_t avail = file.data->size() - file.offset;
    const std::uint64_t n = std::min(len, avail);
    charge(costs_.readPerByteNs * static_cast<double>(n));
    if (out && n)
        std::memcpy(out, file.data->data() + file.offset, n);
    file.offset += n;
    return static_cast<std::int64_t>(n);
}

bool
MiniKernel::close(int fd)
{
    charge(costs_.syscallFixedNs + costs_.closeNs);
    return fds.erase(fd) != 0;
}

const std::vector<std::uint8_t> *
MiniKernel::fileData(const std::string &path) const
{
    const auto it = files.find(path);
    return it == files.end() ? nullptr : &it->second;
}

} // namespace hfi::syscall
