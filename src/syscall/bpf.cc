#include "syscall/bpf.h"

#include <cstddef>
#include <cstring>

namespace hfi::syscall
{

namespace
{

/** Read a 32-bit little-endian word at @p off inside seccomp_data. */
bool
loadWord(const SeccompData &data, std::uint32_t off, std::uint32_t *out)
{
    std::uint8_t raw[sizeof(SeccompData)];
    static_assert(sizeof(SeccompData) == 64);
    std::memcpy(raw, &data, sizeof(raw));
    if (off + 4 > sizeof(raw) || off % 4 != 0)
        return false;
    std::memcpy(out, raw + off, 4);
    return true;
}

} // namespace

BpfResult
runFilter(const std::vector<BpfInsn> &program, const SeccompData &data)
{
    BpfResult res;
    std::uint32_t acc = 0;
    std::uint32_t idx = 0;
    std::uint32_t mem[16] = {};

    std::size_t pc = 0;
    // The kernel bounds total filter length; we additionally bound the
    // executed count to defend the host against accidental loops (cBPF
    // jumps are forward-only so this cannot trigger on valid programs).
    const std::uint64_t max_steps = program.size() + 1;
    while (pc < program.size() && res.instructionsExecuted < max_steps) {
        const BpfInsn &insn = program[pc];
        ++res.instructionsExecuted;
        const std::uint16_t cls = insn.code & 0x07;

        switch (cls) {
          case bpf::LD: {
            const std::uint16_t mode = insn.code & 0xe0;
            if (mode == bpf::ABS) {
                if (!loadWord(data, insn.k, &acc))
                    return {kSeccompRetKill, res.instructionsExecuted};
            } else if (mode == bpf::MEM) {
                if (insn.k >= 16)
                    return {kSeccompRetKill, res.instructionsExecuted};
                acc = mem[insn.k];
            } else { // IMM
                acc = insn.k;
            }
            ++pc;
            break;
          }
          case bpf::ALU: {
            const std::uint32_t operand =
                (insn.code & bpf::X) ? idx : insn.k;
            switch (insn.code & 0xf0) {
              case bpf::ADD: acc += operand; break;
              case bpf::SUB: acc -= operand; break;
              case bpf::AND: acc &= operand; break;
              case bpf::OR: acc |= operand; break;
              case bpf::RSH: acc >>= (operand & 31); break;
              default:
                return {kSeccompRetKill, res.instructionsExecuted};
            }
            ++pc;
            break;
          }
          case bpf::JMP: {
            const std::uint32_t operand =
                (insn.code & bpf::X) ? idx : insn.k;
            bool taken = false;
            switch (insn.code & 0xf0) {
              case bpf::JA:
                pc += 1 + insn.k;
                continue;
              case bpf::JEQ: taken = acc == operand; break;
              case bpf::JGT: taken = acc > operand; break;
              case bpf::JGE: taken = acc >= operand; break;
              case bpf::JSET: taken = (acc & operand) != 0; break;
              default:
                return {kSeccompRetKill, res.instructionsExecuted};
            }
            pc += 1 + (taken ? insn.jt : insn.jf);
            break;
          }
          case bpf::RET:
            res.verdict = (insn.code & bpf::X) ? idx : insn.k;
            return res;
          case bpf::MISC:
            if ((insn.code & 0xf8) == bpf::TAX)
                idx = acc;
            else
                acc = idx;
            ++pc;
            break;
          default:
            return {kSeccompRetKill, res.instructionsExecuted};
        }
    }
    // Fell off the end: the kernel verifier rejects such programs.
    return {kSeccompRetKill, res.instructionsExecuted};
}

std::vector<BpfInsn>
makeAllowlistFilter(const std::vector<std::uint32_t> &allowed_nrs)
{
    std::vector<BpfInsn> prog;
    auto insn = [](std::uint16_t code, std::uint8_t jt, std::uint8_t jf,
                   std::uint32_t k) { return BpfInsn{code, jt, jf, k}; };

    // if (arch != AUDIT_ARCH_X86_64) return KILL;
    prog.push_back(insn(bpf::LD | bpf::W | bpf::ABS, 0, 0,
                        static_cast<std::uint32_t>(
                            offsetof(SeccompData, arch))));
    prog.push_back(insn(bpf::JMP | bpf::JEQ | bpf::K, 1, 0, 0xc000003e));
    prog.push_back(insn(bpf::RET | bpf::K, 0, 0, kSeccompRetKill));
    // Load the syscall number once, then one JEQ per allowed number.
    prog.push_back(insn(bpf::LD | bpf::W | bpf::ABS, 0, 0,
                        static_cast<std::uint32_t>(
                            offsetof(SeccompData, nr))));
    for (std::size_t i = 0; i < allowed_nrs.size(); ++i) {
        const auto remaining =
            static_cast<std::uint8_t>(allowed_nrs.size() - 1 - i);
        // On match jump to the final ALLOW; otherwise fall through.
        prog.push_back(insn(bpf::JMP | bpf::JEQ | bpf::K,
                            static_cast<std::uint8_t>(remaining + 1), 0,
                            allowed_nrs[i]));
    }
    prog.push_back(insn(bpf::RET | bpf::K, 0, 0, kSeccompRetTrap));
    prog.push_back(insn(bpf::RET | bpf::K, 0, 0, kSeccompRetAllow));
    return prog;
}

} // namespace hfi::syscall
