#include "faas/platform.h"

#include <type_traits>

#include "serve/engine.h"

namespace hfi::faas
{

const char *
protectionName(Protection p)
{
    switch (p) {
      case Protection::Unsafe: return "Lucet(Unsafe)";
      case Protection::HfiNative: return "Lucet+HFI";
      case Protection::HfiSwitchOnExit: return "Lucet+HFI(soe)";
      case Protection::Swivel: return "Lucet+Swivel";
    }
    return "?";
}

// faas::Protection predates serve::Scheme and is kept as the public
// FaaS-facing name; the declaration orders must stay in lockstep for
// the cast below.
static_assert(static_cast<int>(Protection::Unsafe) ==
                  static_cast<int>(serve::Scheme::Unsafe) &&
              static_cast<int>(Protection::HfiNative) ==
                  static_cast<int>(serve::Scheme::HfiNative) &&
              static_cast<int>(Protection::HfiSwitchOnExit) ==
                  static_cast<int>(serve::Scheme::HfiSwitchOnExit) &&
              static_cast<int>(Protection::Swivel) ==
                  static_cast<int>(serve::Scheme::Swivel));

RunResult
runClosedLoop(const PlatformConfig &config, sfi::Sandbox &sandbox,
              core::HfiContext &ctx, const Handler &handler)
{
    serve::EngineConfig ec;
    ec.workers = 1;
    ec.mode = serve::LoadMode::ClosedLoop;
    ec.clients = config.clients;
    ec.requests = config.requests;
    ec.queueCapacity = 0;
    ec.seed = config.seed;
    // Table 1's golden numbers are pinned against the seed-blind
    // closed-loop request sequence; keep it unless the caller opts out.
    ec.closedLoopLegacySeeds = config.legacySeeds;
    ec.worker.scheme = static_cast<serve::Scheme>(config.protection);
    ec.worker.swivelEffect = config.swivelEffect;
    ec.worker.dispatchViaScheduler = false;
    ec.worker.quantumNs = 0;
    ec.worker.faults = config.faults;
    ec.worker.requestTimeoutNs = config.requestTimeoutNs;
    ec.worker.maxRetries = config.maxRetries;

    const auto sr =
        serve::ServeEngine::runResident(ec, ctx, sandbox, handler);

    RunResult res;
    res.avgLatencyNs = sr.meanLatencyNs;
    res.p50LatencyNs = sr.latency.p50;
    res.p95LatencyNs = sr.latency.p95;
    res.tailLatencyNs = sr.latency.p99;
    res.p999LatencyNs = sr.latency.p999;
    res.throughputRps = sr.throughputRps;
    res.binaryBytes = config.protection == Protection::Swivel
                          ? config.swivelEffect.binaryBytes
                          : config.stockBinaryBytes;
    res.faultExits = sr.robustness.exits;
    res.retries = sr.robustness.retries;
    res.timeouts = sr.robustness.timeouts;
    res.quarantines = sr.robustness.quarantines;
    res.failedRequests = sr.robustness.failed;
    return res;
}

} // namespace hfi::faas
