#include "faas/platform.h"

#include <deque>
#include <vector>

namespace hfi::faas
{

const char *
protectionName(Protection p)
{
    switch (p) {
      case Protection::Unsafe: return "Lucet(Unsafe)";
      case Protection::HfiNative: return "Lucet+HFI";
      case Protection::HfiSwitchOnExit: return "Lucet+HFI(soe)";
      case Protection::Swivel: return "Lucet+Swivel";
    }
    return "?";
}

namespace
{

/**
 * Run one request's handler under the scheme and return its service
 * time in virtual nanoseconds.
 */
double
serveOne(const PlatformConfig &config, sfi::Sandbox &sandbox,
         core::HfiContext &ctx, const Handler &handler, std::uint32_t seed)
{
    auto &clock = ctx.clock();
    const double t0 = clock.nowNs();

    switch (config.protection) {
      case Protection::Unsafe:
      case Protection::Swivel:
        // Plain springboard transition around the handler.
        sandbox.enter();
        handler(sandbox, seed);
        sandbox.exit();
        break;
      case Protection::HfiNative: {
        // "Two state transitions per connection" (§6.5): a serialized
        // hfi_enter into a native sandbox around the normal springboard
        // pair, and the matching exit.
        core::SandboxConfig sc;
        sc.isHybrid = false;
        sc.isSerialized = true;
        sc.exitHandler = 0x7000'0000;
        ctx.enter(sc);
        sandbox.enter();
        handler(sandbox, seed);
        sandbox.exit();
        ctx.exit();
        break;
      }
      case Protection::HfiSwitchOnExit: {
        // The runtime itself sits in a serialized hybrid sandbox and
        // launches the tenant with switch-on-exit (§4.5) — entered once
        // per connection here.
        core::SandboxConfig sc;
        sc.isHybrid = false;
        sc.switchOnExit = true;
        ctx.enter(sc);
        sandbox.enter();
        handler(sandbox, seed);
        sandbox.exit();
        ctx.exit();
        break;
      }
    }

    double service = clock.nowNs() - t0;
    if (config.protection == Protection::Swivel &&
        config.swivelEffect.computeFactor > 1.0) {
        // Swivel's hardening multiplies the executed cycles; charge the
        // extra time to the clock so the whole simulation stays causal.
        const double extra =
            service * (config.swivelEffect.computeFactor - 1.0);
        clock.tick(clock.nsToCycles(extra));
        service += extra;
    }
    return service;
}

} // namespace

RunResult
runClosedLoop(const PlatformConfig &config, sfi::Sandbox &sandbox,
              core::HfiContext &ctx, const Handler &handler)
{
    auto &clock = ctx.clock();
    LatencyRecorder latencies;

    // Closed loop, single FIFO server: client i's next request arrives
    // the moment its previous response lands. We track per-client
    // "ready" times and serve the earliest-ready client next.
    std::vector<double> ready(config.clients, clock.nowNs());
    const double start = clock.nowNs();
    double server_free = start;

    for (unsigned r = 0; r < config.requests; ++r) {
        // Earliest-ready client goes next (FIFO by arrival).
        unsigned who = 0;
        for (unsigned cl = 1; cl < config.clients; ++cl) {
            if (ready[cl] < ready[who])
                who = cl;
        }
        const double arrival = ready[who];
        const double begin = std::max(arrival, server_free);

        const double service = serveOne(config, sandbox, ctx, handler,
                                        static_cast<std::uint32_t>(r * 2654435761u));
        const double done = begin + service;
        server_free = done;
        ready[who] = done;
        latencies.add(done - arrival);
    }

    RunResult res;
    res.avgLatencyNs = latencies.mean();
    res.tailLatencyNs = latencies.percentile(99);
    res.throughputRps = latencies.throughput(server_free - start);
    res.binaryBytes = config.protection == Protection::Swivel
                          ? config.swivelEffect.binaryBytes
                          : config.stockBinaryBytes;
    return res;
}

} // namespace hfi::faas
