/**
 * @file
 * A FaaS platform model: a closed-loop webserver serving sandboxed
 * request handlers — the Table 1 / §6.5 harness.
 *
 * Mirrors the paper's Rocket-webserver setup: a fixed population of
 * concurrent clients each sends a request, waits for its response, and
 * immediately sends the next. The (single-core) server runs handlers to
 * completion in FIFO order, so request latency is queueing delay plus
 * service time; with 100 clients against millisecond services the
 * latency sits near clients x mean-service, which is exactly the regime
 * Table 1's numbers live in.
 *
 * Service time is *measured*, not assumed: the handler runs for real
 * against the shared virtual clock, under one of the protection schemes
 * being compared (unsafe, HFI native sandbox with serialized
 * transitions, HFI with switch-on-exit, or Swivel-hardened code).
 */

#ifndef HFI_FAAS_PLATFORM_H
#define HFI_FAAS_PLATFORM_H

#include <cstdint>
#include <functional>
#include <string>

#include "core/context.h"
#include "faas/latency.h"
#include "serve/faults.h"
#include "sfi/sandbox.h"
#include "swivel/swivel.h"
#include "vm/virtual_clock.h"

namespace hfi::faas
{

/** How handler execution is protected against escapes/Spectre. */
enum class Protection
{
    Unsafe,          ///< Lucet baseline: isolation, no Spectre hardening
    HfiNative,       ///< HFI native sandbox, serialized enter/exit (§3.4)
    HfiSwitchOnExit, ///< HFI with the switch-on-exit extension (§4.5)
    Swivel,          ///< Swivel-SFI compiler hardening [53]
};

const char *protectionName(Protection p);

/** One scheme's end-to-end results, Table 1's row cells. */
struct RunResult
{
    double avgLatencyNs = 0;
    double p50LatencyNs = 0;
    double p95LatencyNs = 0;
    double tailLatencyNs = 0; ///< p99 (Table 1's headline tail)
    double p999LatencyNs = 0;
    double throughputRps = 0;
    std::uint64_t binaryBytes = 0;

    /** Robustness accounting when fault injection is on (else zero). */
    std::uint64_t faultExits = 0;     ///< attempts ending in an HFI exit
    std::uint64_t retries = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t quarantines = 0;
    std::uint64_t failedRequests = 0; ///< retry budget exhausted
};

/** Platform configuration. */
struct PlatformConfig
{
    unsigned clients = 100;    ///< closed-loop client population
    unsigned requests = 400;   ///< total requests to serve
    Protection protection = Protection::Unsafe;
    /** Swivel effect (used when protection == Swivel). */
    swivel::SwivelEffect swivelEffect{};
    /** Stock binary size reported for non-Swivel schemes. */
    std::uint64_t stockBinaryBytes = 0;

    /**
     * Fault injection and robustness (see serve/faults.h). Defaults —
     * rate 0, no watchdog, no retries — keep the Table 1 cost sequence
     * bit-identical to the stock platform.
     */
    serve::FaultConfig faults{};
    /** Per-request deadline on the virtual clock; 0 disables. */
    double requestTimeoutNs = 0;
    /** Retry budget after a faulted or timed-out attempt. */
    unsigned maxRetries = 0;
    /** Engine seed (fault schedule; request seeds when legacySeeds off). */
    std::uint64_t seed = 1;
    /** Keep the historical seed-blind closed-loop request sequence. */
    bool legacySeeds = true;
};

/**
 * A request handler: given the sandbox and a per-request seed, do the
 * work (the Table 1 workloads bind their staging + kernel here).
 */
using Handler = std::function<void(sfi::Sandbox &, std::uint32_t seed)>;

/**
 * Run @p handler under the configured protection scheme and client
 * population and report Table 1's four cells.
 *
 * Since the serving engine landed this is a thin single-worker
 * closed-loop configuration of serve::ServeEngine (resident instance,
 * no scheduler dispatch), preserving the original cost sequence
 * bit-for-bit.
 *
 * @param sandbox a prepared sandbox whose backend matches the scheme.
 * @param ctx the core's HFI context (used by the HFI schemes).
 */
RunResult runClosedLoop(const PlatformConfig &config, sfi::Sandbox &sandbox,
                        core::HfiContext &ctx, const Handler &handler);

} // namespace hfi::faas

#endif // HFI_FAAS_PLATFORM_H
