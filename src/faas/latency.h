/**
 * @file
 * Latency bookkeeping for the FaaS experiments: mean, percentiles, and
 * sustained throughput over virtual time.
 */

#ifndef HFI_FAAS_LATENCY_H
#define HFI_FAAS_LATENCY_H

#include <algorithm>
#include <cstdint>
#include <vector>

namespace hfi::faas
{

/** Accumulates per-request latencies (nanoseconds of virtual time). */
class LatencyRecorder
{
  public:
    void add(double ns) { samples.push_back(ns); }

    std::size_t count() const { return samples.size(); }

    double
    mean() const
    {
        if (samples.empty())
            return 0;
        double sum = 0;
        for (double s : samples)
            sum += s;
        return sum / static_cast<double>(samples.size());
    }

    /** @p p in [0, 100]; nearest-rank percentile. */
    double
    percentile(double p) const
    {
        if (samples.empty())
            return 0;
        std::vector<double> sorted = samples;
        std::sort(sorted.begin(), sorted.end());
        const auto rank = static_cast<std::size_t>(
            p / 100.0 * static_cast<double>(sorted.size() - 1) + 0.5);
        return sorted[std::min(rank, sorted.size() - 1)];
    }

    /** Requests per second given the run spanned @p duration_ns. */
    double
    throughput(double duration_ns) const
    {
        if (duration_ns <= 0)
            return 0;
        return static_cast<double>(samples.size()) * 1e9 / duration_ns;
    }

  private:
    std::vector<double> samples;
};

} // namespace hfi::faas

#endif // HFI_FAAS_LATENCY_H
