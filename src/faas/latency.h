/**
 * @file
 * Latency bookkeeping for the FaaS experiments: mean, percentiles, and
 * sustained throughput over virtual time.
 */

#ifndef HFI_FAAS_LATENCY_H
#define HFI_FAAS_LATENCY_H

#include <algorithm>
#include <cstdint>
#include <vector>

namespace hfi::faas
{

/** The percentile set every serving experiment reports. */
struct Percentiles
{
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
    double p999 = 0;
};

/** Accumulates per-request latencies (nanoseconds of virtual time). */
class LatencyRecorder
{
  public:
    void add(double ns) { samples.push_back(ns); }

    /** Append every sample of @p other (per-worker accumulator merge). */
    void
    merge(const LatencyRecorder &other)
    {
        samples.insert(samples.end(), other.samples.begin(),
                       other.samples.end());
    }

    std::size_t count() const { return samples.size(); }

    /** The raw samples, in recording order (for determinism tests). */
    const std::vector<double> &values() const { return samples; }

    double
    mean() const
    {
        if (samples.empty())
            return 0;
        double sum = 0;
        for (double s : samples)
            sum += s;
        return sum / static_cast<double>(samples.size());
    }

    /** @p p in [0, 100]; nearest-rank percentile. */
    double
    percentile(double p) const
    {
        if (samples.empty())
            return 0;
        std::vector<double> sorted = samples;
        std::sort(sorted.begin(), sorted.end());
        const auto rank = static_cast<std::size_t>(
            p / 100.0 * static_cast<double>(sorted.size() - 1) + 0.5);
        return sorted[std::min(rank, sorted.size() - 1)];
    }

    /** p50/p95/p99/p999 with one sort (same nearest-rank formula). */
    Percentiles
    percentiles() const
    {
        Percentiles out;
        if (samples.empty())
            return out;
        std::vector<double> sorted = samples;
        std::sort(sorted.begin(), sorted.end());
        const auto at = [&sorted](double p) {
            const auto rank = static_cast<std::size_t>(
                p / 100.0 * static_cast<double>(sorted.size() - 1) + 0.5);
            return sorted[std::min(rank, sorted.size() - 1)];
        };
        out.p50 = at(50);
        out.p95 = at(95);
        out.p99 = at(99);
        out.p999 = at(99.9);
        return out;
    }

    /** Requests per second given the run spanned @p duration_ns. */
    double
    throughput(double duration_ns) const
    {
        if (duration_ns <= 0)
            return 0;
        return static_cast<double>(samples.size()) * 1e9 / duration_ns;
    }

  private:
    std::vector<double> samples;
};

} // namespace hfi::faas

#endif // HFI_FAAS_LATENCY_H
