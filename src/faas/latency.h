/**
 * @file
 * Latency bookkeeping for the FaaS experiments: mean, percentiles, and
 * sustained throughput over virtual time.
 */

#ifndef HFI_FAAS_LATENCY_H
#define HFI_FAAS_LATENCY_H

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace hfi::faas
{

/** The percentile set every serving experiment reports. */
struct Percentiles
{
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
    double p999 = 0;
};

/** Accumulates per-request latencies (nanoseconds of virtual time). */
class LatencyRecorder
{
  public:
    void add(double ns) { samples.push_back(ns); }

    /** Append every sample of @p other (per-worker accumulator merge). */
    void
    merge(const LatencyRecorder &other)
    {
        samples.insert(samples.end(), other.samples.begin(),
                       other.samples.end());
    }

    std::size_t count() const { return samples.size(); }

    /** The raw samples, in recording order (for determinism tests). */
    const std::vector<double> &values() const { return samples; }

    double
    mean() const
    {
        if (samples.empty())
            return 0;
        double sum = 0;
        for (double s : samples)
            sum += s;
        return sum / static_cast<double>(samples.size());
    }

    /**
     * 0-based index of the nearest-rank percentile @p p over @p n
     * sorted samples: the smallest sample whose cumulative share of the
     * distribution is >= p% (1-based rank ceil(p/100 * n)). p = 0 maps
     * to the minimum, p = 100 to the maximum. The previous
     * round-half-up formula over n-1 disagreed at the edges — p50 of
     * two samples returned the max, p0 the wrong sample for even n.
     */
    static std::size_t
    nearestRankIndex(double p, std::size_t n)
    {
        // The epsilon keeps an exact-in-theory product (95 * 20 / 100)
        // that rounds a hair above its integer from ceiling one rank
        // too far.
        const double exact = p * static_cast<double>(n) / 100.0;
        auto rank = static_cast<std::size_t>(std::ceil(exact - 1e-9));
        if (rank == 0)
            rank = 1;
        return std::min(rank, n) - 1;
    }

    /** @p p in [0, 100]; nearest-rank percentile. */
    double
    percentile(double p) const
    {
        if (samples.empty())
            return 0;
        std::vector<double> sorted = samples;
        std::sort(sorted.begin(), sorted.end());
        return sorted[nearestRankIndex(p, sorted.size())];
    }

    /** p50/p95/p99/p999 with one sort (same nearest-rank formula). */
    Percentiles
    percentiles() const
    {
        Percentiles out;
        if (samples.empty())
            return out;
        std::vector<double> sorted = samples;
        std::sort(sorted.begin(), sorted.end());
        out.p50 = sorted[nearestRankIndex(50, sorted.size())];
        out.p95 = sorted[nearestRankIndex(95, sorted.size())];
        out.p99 = sorted[nearestRankIndex(99, sorted.size())];
        out.p999 = sorted[nearestRankIndex(99.9, sorted.size())];
        return out;
    }

    /** Requests per second given the run spanned @p duration_ns. */
    double
    throughput(double duration_ns) const
    {
        if (duration_ns <= 0)
            return 0;
        return static_cast<double>(samples.size()) * 1e9 / duration_ns;
    }

  private:
    std::vector<double> samples;
};

} // namespace hfi::faas

#endif // HFI_FAAS_LATENCY_H
