#include "spectre/gadget.h"

#include "sim/functional.h"

namespace hfi::spectre
{

namespace
{

using sim::ProgramBuilder;

// Register conventions shared by the gadgets.
constexpr unsigned kZero = 0;       ///< holds 0
constexpr unsigned kIdx = 1;        ///< victim argument: array index
constexpr unsigned kLen = 2;        ///< scratch: loaded length / flag
constexpr unsigned kVal = 3;        ///< scratch: loaded array byte
constexpr unsigned kOff = 4;        ///< scratch: probe offset
constexpr unsigned kTmp = 5;        ///< scratch
constexpr unsigned kCursor = 6;     ///< flush-loop cursor
constexpr unsigned kAddr = 7;       ///< flush-loop address / leak pointer
constexpr unsigned kArray = 8;      ///< array base
constexpr unsigned kLenPtr = 9;     ///< &length (or &flag)
constexpr unsigned kProbe = 10;     ///< probe base
constexpr unsigned kDesc0 = 11;     ///< region descriptor staging
constexpr unsigned kDesc1 = 12;     ///< region descriptor staging
constexpr unsigned kTrain = 13;     ///< training counter

/**
 * Emit the HFI configuration prologue: a code region over the program,
 * a no-permission implicit region over the secret page (first match —
 * exactly the §5.3 setup: "the memory range containing the global
 * variable is in an HFI region without read or write permissions"),
 * a broad read-write implicit region over the rest of the data, and an
 * unserialized hybrid hfi_enter.
 */
void
emitHfiPrologue(ProgramBuilder &b, const VictimLayout &layout,
                std::uint64_t code_base)
{
    // Region 0 (code): 64 KiB around the program, execute.
    b.movi(kDesc0, static_cast<std::int64_t>(code_base & ~0xffffULL));
    b.movi(kDesc1, 0xffff);
    b.hfiSetRegion(0, kDesc0, kDesc1, /*exec*/ 4);

    // Region 2 (implicit data, first match): the secret's page, no
    // permissions at all.
    b.movi(kDesc0, static_cast<std::int64_t>(layout.secretAddr & ~0xfffULL));
    b.movi(kDesc1, 0xfff);
    b.hfiSetRegion(2, kDesc0, kDesc1, /*no perms*/ 0);

    // Region 3 (implicit data): a broad 4 MiB read-write region holding
    // array, length, and probe (the secret page matches region 2 first).
    b.movi(kDesc0, 0);
    b.movi(kDesc1, 0x3fffff);
    b.hfiSetRegion(3, kDesc0, kDesc1, /*rw*/ 3);

    // No exit handler; hybrid, unserialized — the protection under test
    // is the region checks themselves, not serialization.
    b.movi(sim::kExitHandlerReg, 0);
    b.hfiEnter(/*hybrid*/ true, /*serialized*/ false);
}

/** Flush every probe slot, then the length/flag cell. */
void
emitFlushes(ProgramBuilder &b, const VictimLayout &layout,
            const std::string &loop_label)
{
    b.movi(kCursor, 0);
    b.label(loop_label);
    b.add(kAddr, kProbe, kCursor);
    b.flush(kAddr, 0);
    b.addi(kCursor, kCursor, static_cast<std::int64_t>(layout.probeStride));
    b.movi(kTmp, static_cast<std::int64_t>(256 * layout.probeStride));
    b.blt(kCursor, kTmp, loop_label);
    b.flush(kLenPtr, 0);
}

sim::Program
buildPht(const VictimLayout &layout, bool with_hfi, unsigned rounds)
{
    ProgramBuilder b(0x400000);

    if (with_hfi)
        emitHfiPrologue(b, layout, 0x400000);

    b.movi(kZero, 0);
    b.movi(kArray, static_cast<std::int64_t>(layout.arrayBase));
    b.movi(kLenPtr, static_cast<std::int64_t>(layout.lenAddr));
    b.movi(kProbe, static_cast<std::int64_t>(layout.probeBase));

    // Train the PHT: in-bounds calls make the bounds check fall
    // through (not-taken) with high confidence.
    b.movi(kTrain, static_cast<std::int64_t>(rounds));
    b.label("train");
    b.movi(kIdx, 3);
    b.call("victim");
    b.subi(kTrain, kTrain, 1);
    b.bne(kTrain, kZero, "train");

    // Flush the probe and the length, then the out-of-bounds call.
    emitFlushes(b, layout, "flush");
    b.movi(kIdx, static_cast<std::int64_t>(layout.secretIndex()));
    b.call("victim");
    b.halt();

    // victim(idx): if (idx < *len) probe[array[idx] * stride];
    b.label("victim");
    b.load(kLen, kLenPtr, 0, 8);
    b.bge(kIdx, kLen, "vdone"); // the Spectre-bypassed bounds check
    b.loadIndexed(kVal, kArray, kIdx, 1, 0, 1);
    b.shli(kOff, kVal, 9); // x probeStride (512)
    b.loadIndexed(kTmp, kProbe, kOff, 1, 0, 1);
    b.label("vdone");
    b.ret();

    return b.build();
}

sim::Program
buildBtb(const VictimLayout &layout, bool with_hfi, unsigned rounds)
{
    // Concrete-control-flow model of the BTB attack (footnote 7): a
    // trained branch speculatively steers execution into the leak
    // gadget with an attacker-controlled pointer.
    ProgramBuilder b(0x400000);

    if (with_hfi)
        emitHfiPrologue(b, layout, 0x400000);

    b.movi(kZero, 0);
    b.movi(kLenPtr, static_cast<std::int64_t>(layout.lenAddr)); // the flag
    b.movi(kProbe, static_cast<std::int64_t>(layout.probeBase));
    b.movi(kAddr, static_cast<std::int64_t>(layout.arrayBase)); // harmless

    // Training: flag = 0 -> dispatch falls through into the gadget
    // with the harmless pointer.
    b.movi(kTrain, static_cast<std::int64_t>(rounds));
    b.label("train");
    b.movi(kTmp, 0);
    b.store(kTmp, kLenPtr, 0, 8);
    b.call("victim");
    b.subi(kTrain, kTrain, 1);
    b.bne(kTrain, kZero, "train");

    // Arm: flag = 1 (gadget must NOT run), pointer = secret, flush.
    b.movi(kTmp, 1);
    b.store(kTmp, kLenPtr, 0, 8);
    emitFlushes(b, layout, "flush");
    b.movi(kAddr, static_cast<std::int64_t>(layout.secretAddr));
    b.call("victim");
    b.halt();

    // victim(): if (*flag != 0) return; leak(*ptr);
    b.label("victim");
    b.load(kLen, kLenPtr, 0, 8);
    b.bne(kLen, kZero, "other"); // trained not-taken
    b.load(kVal, kAddr, 0, 1);   // the leak gadget
    b.shli(kOff, kVal, 9);
    b.loadIndexed(kTmp, kProbe, kOff, 1, 0, 1);
    b.label("other");
    b.ret();

    return b.build();
}

} // namespace

const char *
exitPostureName(ExitPosture posture)
{
    switch (posture) {
      case ExitPosture::Unserialized: return "unserialized";
      case ExitPosture::Serialized: return "is-serialized";
      case ExitPosture::SwitchOnExit: return "switch-on-exit";
    }
    return "?";
}

sim::Program
buildAttack(Variant variant, const VictimLayout &layout, bool with_hfi,
            unsigned training_rounds)
{
    return variant == Variant::Pht
               ? buildPht(layout, with_hfi, training_rounds)
               : buildBtb(layout, with_hfi, training_rounds);
}

sim::Program
buildExitBypassAttack(const VictimLayout &layout, ExitPosture posture,
                      unsigned training_rounds)
{
    // §3.4's second attack class: instead of bypassing a bounds check
    // inside the sandbox, the attacker speculatively *leaves* it. The
    // victim's exit branch is trained taken; on the attack run the flag
    // says "keep running", but the core speculatively executes
    // hfi_exit and the runtime continuation with a register the
    // sandbox still controls.
    ProgramBuilder b(0x400000);
    const unsigned kOne = kIdx; // r1 holds the constant 1 here

    // Regions: code; data over [0, 2 MiB) for array+flag; data over
    // [0x200000, 0x240000) for the probe. The secret at 0x300000 is in
    // neither — for the runtime's bank as well, which is what makes
    // switch-on-exit sufficient.
    b.movi(kDesc0, 0x400000);
    b.movi(kDesc1, 0xffff);
    b.hfiSetRegion(0, kDesc0, kDesc1, /*exec*/ 4);
    b.movi(kDesc0, 0);
    b.movi(kDesc1, 0x1fffff);
    b.hfiSetRegion(2, kDesc0, kDesc1, /*rw*/ 3);
    b.movi(kDesc0, 0x200000);
    b.movi(kDesc1, 0x3ffff);
    b.hfiSetRegion(3, kDesc0, kDesc1, /*rw*/ 3);
    b.movi(sim::kExitHandlerReg, 0);

    // The trusted runtime parks itself in a serialized hybrid sandbox —
    // the switch-on-exit foundation (§3.4).
    b.hfiEnter(/*hybrid*/ true, /*serialized*/ true);

    b.movi(kZero, 0);
    b.movi(kOne, 1);
    b.movi(kLenPtr, static_cast<std::int64_t>(layout.lenAddr)); // flag
    b.movi(kProbe, static_cast<std::int64_t>(layout.probeBase));
    b.movi(kAddr, static_cast<std::int64_t>(layout.arrayBase)); // benign

    const bool serialized = posture == ExitPosture::Serialized;
    const bool switch_on_exit = posture == ExitPosture::SwitchOnExit;

    // Training: flag=1, so the victim legitimately exits each round and
    // the "runtime continuation" runs with the benign pointer.
    b.movi(kTrain, static_cast<std::int64_t>(training_rounds));
    b.label("train");
    b.hfiEnter(/*hybrid*/ true, serialized, switch_on_exit);
    b.movi(kTmp, 1);
    b.store(kTmp, kLenPtr, 0, 8);
    b.call("victim");
    b.subi(kTrain, kTrain, 1);
    b.bne(kTrain, kZero, "train");

    // Arm: flag=0 (the victim must NOT exit), pointer = secret, flush.
    b.movi(kTmp, 0);
    b.store(kTmp, kLenPtr, 0, 8);
    emitFlushes(b, layout, "flush");
    b.movi(kAddr, static_cast<std::int64_t>(layout.secretAddr));
    b.hfiEnter(/*hybrid*/ true, serialized, switch_on_exit);
    b.call("victim");
    b.hfiExit(); // the sandbox really finishes now
    b.halt();

    // victim(): if (*flag == 1) goto exit_stub; else keep running.
    b.label("victim");
    b.load(kLen, kLenPtr, 0, 8);
    b.beq(kLen, kOne, "exit_stub"); // trained taken
    b.nop();
    b.ret();

    // The exit stub and the runtime code after it: exactly the §3.4
    // hazard — "speculatively disable HFI, and then speculatively
    // execute a code path that would never happen under non-speculative
    // execution".
    b.label("exit_stub");
    b.hfiExit();
    b.load(kVal, kAddr, 0, 1); // runtime dereferences a sandbox-chosen ptr
    b.shli(kOff, kVal, 9);
    b.loadIndexed(kTmp, kProbe, kOff, 1, 0, 1);
    b.ret();

    return b.build();
}

} // namespace hfi::spectre
