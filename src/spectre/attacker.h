/**
 * @file
 * The Spectre attacker harness: stages victim memory, runs the attack
 * program on the pipeline, and performs the flush+reload measurement
 * that Fig 7 plots.
 *
 * The "measurement" is the same one SafeSide's PoC makes with rdtscp:
 * the access latency of each probe slot. In the simulator the latency
 * comes from a non-destructive dcache probe, so measuring is exact and
 * repetition-free — the shape of Fig 7 (one low-latency dip at the
 * secret byte without HFI, none with HFI) is preserved.
 */

#ifndef HFI_SPECTRE_ATTACKER_H
#define HFI_SPECTRE_ATTACKER_H

#include <array>
#include <cstdint>

#include "sim/pipeline.h"
#include "spectre/gadget.h"

namespace hfi::spectre
{

/** Outcome of one attack run. */
struct AttackResult
{
    /** Probe-slot access latency per byte guess — the Fig 7 series. */
    std::array<unsigned, 256> probeLatency{};
    /** Guess with the lowest latency. */
    int hottestGuess = -1;
    /** The actual secret byte staged by the harness. */
    std::uint8_t secret = 0;
    /**
     * True when the secret's probe slot is cache-hot, i.e. its access
     * latency is below the hit/miss threshold — the attack succeeded.
     */
    bool secretLeaked = false;
    /** Threshold separating hit from miss latencies (Fig 7's line). */
    unsigned threshold = 0;

    sim::PipelineResult pipeline{};
    sim::PipelineStats stats{};
};

/** Run one attack end to end. */
AttackResult runAttack(Variant variant, bool with_hfi, std::uint8_t secret,
                       unsigned training_rounds = 8);

/** Run the §3.4 exit-bypass attack under the given exit posture. */
AttackResult runExitBypassAttack(ExitPosture posture, std::uint8_t secret,
                                 unsigned training_rounds = 8);

} // namespace hfi::spectre

#endif // HFI_SPECTRE_ATTACKER_H
