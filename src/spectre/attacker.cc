#include "spectre/attacker.h"

namespace hfi::spectre
{

namespace
{

/** Shared staging + measurement around one assembled attack program. */
AttackResult
runProgram(const sim::Program &program, const VictimLayout &layout,
           std::uint8_t secret)
{
    sim::Pipeline pipe(program);

    auto &mem = pipe.memory();
    for (std::uint64_t i = 0; i < layout.arrayLen; ++i)
        mem.writeByte(layout.arrayBase + i,
                      static_cast<std::uint8_t>(i + 1));
    mem.write(layout.lenAddr, layout.arrayLen, 8);
    mem.writeByte(layout.secretAddr, secret);

    AttackResult result;
    result.secret = secret;
    result.pipeline = pipe.run(50'000'000);
    result.stats = pipe.stats();

    const auto &cfg = pipe.dcache().config();
    result.threshold = (cfg.hitLatency + cfg.missLatency) / 2;
    unsigned best = UINT32_MAX;
    for (unsigned guess = 0; guess < 256; ++guess) {
        const std::uint64_t slot =
            layout.probeBase + guess * layout.probeStride;
        const unsigned latency = pipe.dcache().probe(slot).latency;
        result.probeLatency[guess] = latency;
        if (latency < best) {
            best = latency;
            result.hottestGuess = static_cast<int>(guess);
        }
    }
    result.secretLeaked = result.probeLatency[secret] < result.threshold;
    return result;
}

} // namespace

AttackResult
runExitBypassAttack(ExitPosture posture, std::uint8_t secret,
                    unsigned training_rounds)
{
    VictimLayout layout;
    return runProgram(
        buildExitBypassAttack(layout, posture, training_rounds), layout,
        secret);
}

AttackResult
runAttack(Variant variant, bool with_hfi, std::uint8_t secret,
          unsigned training_rounds)
{
    VictimLayout layout;
    const sim::Program program =
        buildAttack(variant, layout, with_hfi, training_rounds);

    sim::Pipeline pipe(program);

    // Stage the victim's memory: the public array (values chosen so the
    // training fingerprint differs from any plausible secret), the
    // length cell, and the secret byte outside every granted region.
    auto &mem = pipe.memory();
    for (std::uint64_t i = 0; i < layout.arrayLen; ++i)
        mem.writeByte(layout.arrayBase + i,
                      static_cast<std::uint8_t>(i + 1));
    mem.write(layout.lenAddr, layout.arrayLen, 8);
    mem.writeByte(layout.secretAddr, secret);

    AttackResult result;
    result.secret = secret;
    result.pipeline = pipe.run(50'000'000);
    result.stats = pipe.stats();

    // Flush+reload measurement over the probe array.
    const auto &cfg = pipe.dcache().config();
    result.threshold = (cfg.hitLatency + cfg.missLatency) / 2;
    unsigned best = UINT32_MAX;
    for (unsigned guess = 0; guess < 256; ++guess) {
        const std::uint64_t slot =
            layout.probeBase + guess * layout.probeStride;
        const unsigned latency = pipe.dcache().probe(slot).latency;
        result.probeLatency[guess] = latency;
        if (latency < best) {
            best = latency;
            result.hottestGuess = static_cast<int>(guess);
        }
    }
    result.secretLeaked = result.probeLatency[secret] < result.threshold;
    return result;
}

} // namespace hfi::spectre
