/**
 * @file
 * Spectre proof-of-concept gadgets for the pipeline simulator (§5.3).
 *
 * The PHT gadget reproduces the Google SafeSide in-place Spectre-PHT
 * PoC: a victim function with a bounds check guarding an array read
 * whose value indexes a probe array. The attacker trains the bounds
 * check in-bounds, flushes the length so the check resolves slowly,
 * then calls the victim with an out-of-bounds index that reaches a
 * secret byte; the speculatively executed probe access leaves a
 * cache-line fingerprint of the secret.
 *
 * The BTB gadget follows the paper's footnote 7: a concrete control
 * flow models the mistrained indirect branch — a trained conditional
 * speculatively steers execution into a leak gadget that dereferences a
 * secret pointer into the probe array.
 *
 * Each gadget builds in two variants: unprotected (plain loads) and
 * HFI-protected (the victim's data accesses go through explicit
 * regions via hmov, its code/data are covered by regions that exclude
 * the secret, and the sandbox is entered with hfi_enter).
 */

#ifndef HFI_SPECTRE_GADGET_H
#define HFI_SPECTRE_GADGET_H

#include <cstdint>

#include "sim/program.h"

namespace hfi::spectre
{

/** Memory layout shared by the gadgets and the attacker harness. */
struct VictimLayout
{
    /** The public array the victim may legally index. */
    std::uint64_t arrayBase = 0x100000;
    std::uint64_t arrayLen = 16;
    /** Cell holding the array length (flushed to widen the window). */
    std::uint64_t lenAddr = 0x110000;
    /** The probe (flush+reload) array: 256 slots. */
    std::uint64_t probeBase = 0x200000;
    std::uint64_t probeStride = 512;
    /**
     * The secret byte, *outside* every region the victim is granted.
     * Reached by indexing arrayBase out of bounds.
     */
    std::uint64_t secretAddr = 0x300000;

    std::uint64_t secretIndex() const { return secretAddr - arrayBase; }
};

/** Which Spectre variant a gadget exercises. */
enum class Variant
{
    Pht, ///< Spectre-PHT (bounds-check bypass), SafeSide-style
    Btb, ///< Spectre-BTB modeled with concrete control flow (fn 7)
};

/**
 * How the sandbox's hfi_exit is protected — the §3.4 design space the
 * exit-bypass attack probes.
 */
enum class ExitPosture
{
    Unserialized, ///< fast but speculatively bypassable
    Serialized,   ///< is-serialized flag: drains before the exit
    SwitchOnExit, ///< §4.5: the exit is a register-bank swap
};

const char *exitPostureName(ExitPosture posture);

/**
 * Build the §3.4 exit-bypass attack: the victim's trained branch leads
 * to an hfi_exit followed by runtime code that dereferences a register
 * the sandbox controls. Architecturally the attack run never exits;
 * speculatively the core runs the exit and the runtime continuation
 * with an attacker pointer. Unserialized exits leak; serialized and
 * switch-on-exit ones must not.
 */
sim::Program buildExitBypassAttack(const VictimLayout &layout,
                                   ExitPosture posture,
                                   unsigned training_rounds = 8);

/**
 * Build the full attack program: training loop, probe flush, length
 * flush, one out-of-bounds victim call, halt.
 *
 * @param with_hfi protect the victim with HFI regions + hfi_enter.
 * @param trainingRounds how many in-bounds calls train the predictor.
 */
sim::Program buildAttack(Variant variant, const VictimLayout &layout,
                         bool with_hfi, unsigned training_rounds = 8);

} // namespace hfi::spectre

#endif // HFI_SPECTRE_GADGET_H
