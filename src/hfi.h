/**
 * @file
 * Umbrella header: the public surface of the HFI library.
 *
 * Pull in what you need instead when build times matter; this header
 * exists so examples and downstream quick starts can write
 * `#include "hfi.h"` and get the whole system:
 *
 *  - hfi::core    — the HFI ISA model (regions, context, checker)
 *  - hfi::vm      — virtual clock + memory-management substrate
 *  - hfi::sfi     — sandboxes, isolation backends, runtime, multi-memory
 *  - hfi::sim     — the cycle-level core and program builder
 *  - hfi::os      — process scheduling with HFI xsave/xrstor
 *  - hfi::serve   — the multi-core sandbox serving engine
 *  - hfi::mpk     — the Intel MPK baseline
 *  - hfi::syscall — BPF/seccomp and HFI syscall interposition
 *  - hfi::swivel  — the Swivel-SFI cost model
 *  - hfi::spectre — attack gadgets and the measurement harness
 *  - hfi::faas / hfi::nginx / hfi::workloads — evaluation scaffolding
 */

#ifndef HFI_HFI_H
#define HFI_HFI_H

#include "core/checker.h"
#include "core/context.h"
#include "core/cost_model.h"
#include "core/region.h"

#include "vm/address_space.h"
#include "vm/mmu.h"
#include "vm/page_table.h"
#include "vm/virtual_clock.h"

#include "sfi/backend.h"
#include "sfi/bounds_check_backend.h"
#include "sfi/guard_page_backend.h"
#include "sfi/hfi_backend.h"
#include "sfi/linear_memory.h"
#include "sfi/mask_backend.h"
#include "sfi/multi_memory.h"
#include "sfi/runtime.h"
#include "sfi/sandbox.h"

#include "sim/cpu_config.h"
#include "sim/functional.h"
#include "sim/kernels.h"
#include "sim/pipeline.h"
#include "sim/program.h"

#include "os/scheduler.h"

#include "serve/engine.h"
#include "serve/load_gen.h"
#include "serve/request.h"
#include "serve/shard_queue.h"
#include "serve/worker.h"

#include "mpk/mpk.h"
#include "swivel/swivel.h"
#include "syscall/bpf.h"
#include "syscall/interposer.h"

#include "spectre/attacker.h"
#include "spectre/gadget.h"

#include "faas/latency.h"
#include "faas/platform.h"
#include "nginx/server.h"

#include "workloads/crypto.h"
#include "workloads/faas_workloads.h"
#include "workloads/font.h"
#include "workloads/image.h"
#include "workloads/sightglass.h"
#include "workloads/spec_like.h"
#include "workloads/support.h"

#endif // HFI_HFI_H
