/**
 * @file
 * Program container and assembler-style builder for the pipeline
 * simulator.
 *
 * Programs are sequences of variable-length instructions laid out at a
 * base code address; the builder provides labels with fixups so kernels
 * read like assembly listings. The Fig 2 kernels and the Spectre
 * gadgets (§5.3) are written against this interface.
 */

#ifndef HFI_SIM_PROGRAM_H
#define HFI_SIM_PROGRAM_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/isa.h"

namespace hfi::sim
{

/**
 * Statically predecoded per-instruction facts for the timing pipeline,
 * built once per program and indexed by the dense instruction index.
 *
 * The register masks encode exactly the source sets the pipeline's
 * dispatch stage used to re-derive per dynamic instance with per-opcode
 * switches: `readyMask` is the scheduling set (registers whose
 * ready-cycle gates issue), `taintMask` the poison-propagation set
 * (§4.1). They differ only for hfi_enter (waits on the exit-handler
 * register) and hfi_set_region (waits on its descriptor pair).
 */
struct MicroOp
{
    enum : std::uint8_t
    {
        kIsLoad = 1u << 0,      ///< Load / HmovLoad
        kIsStore = 1u << 1,     ///< Store / HmovStore
        kLcp = 1u << 2,         ///< hmov's length-changing prefix
        kUnlaminated = 1u << 3, ///< index + 32-bit displacement ld/st
        kWritesRd = 1u << 4,    ///< writes rd when not faulted
        kIsControl = 1u << 5,   ///< branches, jmp, call, ret
        kBankOp = 1u << 6,      ///< execution may mutate the HFI bank
    };

    /** Issue-unit class. */
    enum : std::uint8_t
    {
        kUnitAlu = 0,
        kUnitMul = 1,
        kUnitDiv = 2,
        kUnitMem = 3,
    };

    /** Control-flow class (drives next-fetch prediction). */
    enum : std::uint8_t
    {
        kCtrlNone = 0,
        kCtrlCond = 1,
        kCtrlJmp = 2,
        kCtrlCall = 3,
        kCtrlRet = 4,
    };

    std::uint16_t readyMask = 0; ///< source regs gating issue
    std::uint16_t taintMask = 0; ///< source regs propagating poison
    std::uint8_t unit = kUnitAlu;
    std::uint8_t ctrl = kCtrlNone;
    std::uint8_t flags = 0;
};

/** An assembled program: instructions with resolved byte addresses. */
class Program
{
  public:
    Program() = default;
    Program(std::uint64_t base, std::vector<Inst> insts);

    /** Code base address. */
    std::uint64_t base() const { return base_; }

    /** One past the last code byte. */
    std::uint64_t end() const { return end_; }

    /** Total code bytes. */
    std::uint64_t codeBytes() const { return end_ - base_; }

    std::size_t instructionCount() const { return insts.size(); }

    /**
     * Instruction starting exactly at @p addr, or nullptr (fetching
     * mid-instruction or outside the program is an invalid-opcode
     * fault).
     */
    const Inst *
    at(std::uint64_t addr) const
    {
        const std::size_t index = indexAt(addr);
        return index == kNoInst ? nullptr : &insts[index];
    }

    /**
     * Instruction fetch with a caller-held sequential hint.
     *
     * @p hint is the index the caller expects to fetch next (typically
     * last index + 1, maintained by the caller across calls). When the
     * hinted instruction starts exactly at @p addr — the common case of
     * straight-line execution — the fetch is a single load-and-compare;
     * otherwise (taken branch, call, return) it falls back to the dense
     * offset table. On success *hint is updated to index + 1 so the
     * next sequential fetch hits again.
     */
    const Inst *
    fetch(std::uint64_t addr, std::size_t *hint) const
    {
        std::size_t index = *hint;
        if (index >= insts.size() || addrs[index] != addr) {
            index = indexAt(addr);
            if (index == kNoInst)
                return nullptr;
        }
        *hint = index + 1;
        return &insts[index];
    }

    /**
     * Index-returning variant of fetch(), for callers that also want
     * the instruction's µop/address side-table entries. Returns kNoInst
     * when no instruction starts at @p addr.
     */
    std::size_t
    fetchIndex(std::uint64_t addr, std::size_t *hint) const
    {
        std::size_t index = *hint;
        if (index >= insts.size() || addrs[index] != addr) {
            index = indexAt(addr);
            if (index == kNoInst)
                return kNoInst;
        }
        *hint = index + 1;
        return index;
    }

    /** Sentinel for "no instruction starts at this address". */
    static constexpr std::size_t kNoInst = static_cast<std::size_t>(-1);

    /** Index of the instruction starting at @p addr, or kNoInst. */
    std::size_t
    indexAt(std::uint64_t addr) const
    {
        if (addr < base_ || addr >= end_)
            return kNoInst;
        const std::int32_t index =
            byOffset[static_cast<std::size_t>(addr - base_)];
        return index < 0 ? kNoInst : static_cast<std::size_t>(index);
    }

    /** Byte address of instruction @p index. */
    std::uint64_t addressOf(std::size_t index) const { return addrs[index]; }

    /**
     * Predecoded index of instruction @p index's control-flow target
     * (kNoInst when the target is not an instruction start — including
     * non-control instructions, whose target field is 0). Lets the
     * interpreter take a branch without an address lookup.
     */
    std::size_t
    targetIndexOf(std::size_t index) const
    {
        const std::int32_t t = targetIdx[index];
        return t < 0 ? kNoInst : static_cast<std::size_t>(t);
    }

    const std::vector<Inst> &instructions() const { return insts; }

    /** Predecoded µop table, parallel to instructions(). */
    const MicroOp *microOps() const { return uops.data(); }

  private:
    std::uint64_t base_ = 0;
    std::uint64_t end_ = 0;
    std::vector<Inst> insts;
    std::vector<std::uint64_t> addrs;
    /**
     * Dense code-offset -> instruction-index table (-1 where no
     * instruction starts). Code is contiguous from base_, so the table
     * is exactly codeBytes() entries and a fetch is one bounds check
     * plus one indexed load — no ordered-map walk on the hot path.
     */
    std::vector<std::int32_t> byOffset;
    /** Per-instruction predecoded target index (-1 = not a target). */
    std::vector<std::int32_t> targetIdx;
    /** Per-instruction predecoded µops (see MicroOp). */
    std::vector<MicroOp> uops;
};

/**
 * Assembler with labels and the usual convenience mnemonics.
 *
 * Control-flow targets are given as label strings and resolved when
 * build() lays the code out; referencing an undefined label throws.
 */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::uint64_t base = 0x400000)
        : codeBase(base)
    {
    }

    /** Define @p name at the current position. */
    ProgramBuilder &label(const std::string &name);

    /** Append a raw instruction (length auto-assigned if 0). */
    std::size_t emit(Inst inst);

    // ALU helpers.
    ProgramBuilder &movi(unsigned rd, std::int64_t value);
    ProgramBuilder &mov(unsigned rd, unsigned ra);
    ProgramBuilder &add(unsigned rd, unsigned ra, unsigned rb);
    ProgramBuilder &addi(unsigned rd, unsigned ra, std::int64_t imm);
    ProgramBuilder &sub(unsigned rd, unsigned ra, unsigned rb);
    ProgramBuilder &subi(unsigned rd, unsigned ra, std::int64_t imm);
    ProgramBuilder &mul(unsigned rd, unsigned ra, unsigned rb);
    ProgramBuilder &andi(unsigned rd, unsigned ra, std::int64_t imm);
    ProgramBuilder &and_(unsigned rd, unsigned ra, unsigned rb);
    ProgramBuilder &xor_(unsigned rd, unsigned ra, unsigned rb);
    ProgramBuilder &or_(unsigned rd, unsigned ra, unsigned rb);
    ProgramBuilder &shli(unsigned rd, unsigned ra, std::int64_t imm);
    ProgramBuilder &shri(unsigned rd, unsigned ra, std::int64_t imm);

    // Memory helpers (width in bytes).
    ProgramBuilder &load(unsigned rd, unsigned ra, std::int64_t imm,
                         unsigned width = 8);
    ProgramBuilder &store(unsigned rs, unsigned ra, std::int64_t imm,
                          unsigned width = 8);
    /** Indexed load: rd <- mem[ra + rb*scale + imm]. */
    ProgramBuilder &loadIndexed(unsigned rd, unsigned ra, unsigned rb,
                                unsigned scale, std::int64_t imm,
                                unsigned width = 8);
    /** hmov<region> load: rd <- region[rb*scale + imm]. */
    ProgramBuilder &hmovLoad(unsigned region, unsigned rd, unsigned rb,
                             unsigned scale = 1, std::int64_t imm = 0,
                             unsigned width = 8);
    ProgramBuilder &hmovStore(unsigned region, unsigned rs, unsigned rb,
                              unsigned scale = 1, std::int64_t imm = 0,
                              unsigned width = 8);

    // Control flow.
    ProgramBuilder &beq(unsigned ra, unsigned rb, const std::string &to);
    ProgramBuilder &bne(unsigned ra, unsigned rb, const std::string &to);
    ProgramBuilder &blt(unsigned ra, unsigned rb, const std::string &to);
    ProgramBuilder &bge(unsigned ra, unsigned rb, const std::string &to);
    ProgramBuilder &jmp(const std::string &to);
    ProgramBuilder &call(const std::string &to);
    ProgramBuilder &ret();

    // System / HFI.
    ProgramBuilder &syscall(std::int64_t nr);
    ProgramBuilder &cpuid();
    ProgramBuilder &hfiEnter(bool hybrid, bool serialized,
                             bool switch_on_exit = false);
    ProgramBuilder &hfiExit();
    /**
     * hfi_set_region: the descriptor is read from registers ra (base /
     * base_prefix), rb (bound / lsb_mask), imm (permission bits:
     * 1=read, 2=write, 4=exec, 8=large).
     */
    ProgramBuilder &hfiSetRegion(unsigned region, unsigned ra, unsigned rb,
                                 std::int64_t perms);
    /** clflush [ra + imm]. */
    ProgramBuilder &flush(unsigned ra, std::int64_t imm = 0);
    ProgramBuilder &halt();
    ProgramBuilder &nop();

    /** Lay out the code and resolve label fixups. */
    Program build();

  private:
    ProgramBuilder &alu(Opcode op, unsigned rd, unsigned ra, unsigned rb);
    ProgramBuilder &alui(Opcode op, unsigned rd, unsigned ra,
                         std::int64_t imm);
    ProgramBuilder &branch(Opcode op, unsigned ra, unsigned rb,
                           const std::string &to);

    std::uint64_t codeBase;
    std::vector<Inst> insts;
    std::map<std::string, std::size_t> labels;       ///< name -> inst index
    std::vector<std::pair<std::size_t, std::string>> fixups;
};

} // namespace hfi::sim

#endif // HFI_SIM_PROGRAM_H
