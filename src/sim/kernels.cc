#include "sim/kernels.h"

#include "sim/functional.h"

namespace hfi::sim::kernels
{

namespace
{

// Register conventions.
constexpr unsigned kZero = 0;  ///< always 0
constexpr unsigned kIter = 1;  ///< outer loop counter
constexpr unsigned kAcc = 2;   ///< kernel result accumulator
constexpr unsigned kOff = 3;   ///< heap offset cursor
// r4..r9: kernel scratch; r10: inner counter; r11..r13 prologue scratch.

/** Offset (within the heap) where kernels store their result. */
constexpr std::int64_t kResultOffset = 0xfff8;

/** Address of the emulated region-metadata descriptor (outside heap). */
constexpr std::uint64_t kDescAddr = 0xff0000;

/**
 * Mode-dispatching assembler: the kernel bodies are written once
 * against this wrapper, which renders heap accesses as hmov (hardware)
 * or absolute-base mov (emulation), and transitions as hfi instructions
 * or cpuid fences (appendix A.2).
 */
class KernelAsm
{
  public:
    explicit KernelAsm(Mode mode) : b(0x400000), mode(mode) {}

    /** Region setup + sandbox entry. */
    void
    prologue()
    {
        b.movi(kZero, 0);
        if (mode == Mode::HfiHardware) {
            // hfi_set_region(explicit 0) + serialized hybrid hfi_enter.
            b.movi(11, static_cast<std::int64_t>(kHeapBase));
            b.movi(12, static_cast<std::int64_t>(kHeapBytes));
            b.hfiSetRegion(core::kFirstExplicitRegion, 11, 12,
                           /*r|w|large*/ 1 | 2 | 8);
            // Code region so fetch is legal inside the sandbox.
            b.movi(11, 0x400000);
            b.movi(12, 0xffff);
            b.hfiSetRegion(0, 11, 12, /*exec*/ 4);
            b.movi(kExitHandlerReg, 0);
            b.hfiEnter(/*hybrid*/ true, /*serialized*/ true);
        } else {
            // Emulation: move the region metadata from memory into
            // general-purpose registers, then fence with cpuid.
            b.movi(11, static_cast<std::int64_t>(kDescAddr));
            b.load(12, 11, 0, 8);
            b.load(13, 11, 8, 8);
            b.cpuid();
        }
    }

    /** Store the accumulator, leave the sandbox, halt. */
    void
    epilogue()
    {
        memStore(kAcc, kZero, kResultOffset, 8);
        if (mode == Mode::HfiHardware) {
            b.hfiExit();
        } else {
            // Emulated hfi_exit: check for a registered handler, fence.
            b.load(12, 11, 0, 8);
            b.beq(12, 12, "emu_exit_fallthrough");
            b.label("emu_exit_fallthrough");
            b.cpuid();
        }
        b.halt();
    }

    /** rd <- heap[off_reg + disp]. */
    void
    memLoad(unsigned rd, unsigned off_reg, std::int64_t disp,
            unsigned width = 8)
    {
        if (mode == Mode::HfiHardware)
            b.hmovLoad(0, rd, off_reg, 1, disp, width);
        else
            b.loadIndexed(rd, kZero, off_reg, 1,
                          static_cast<std::int64_t>(kHeapBase) + disp,
                          width);
    }

    /** heap[off_reg + disp] <- rs. */
    void
    memStore(unsigned rs, unsigned off_reg, std::int64_t disp,
             unsigned width = 8)
    {
        if (mode == Mode::HfiHardware) {
            b.hmovStore(0, rs, off_reg, 1, disp, width);
        } else {
            Inst inst;
            inst.op = Opcode::Store;
            inst.rd = static_cast<std::uint8_t>(rs);
            inst.ra = static_cast<std::uint8_t>(kZero);
            inst.rb = static_cast<std::uint8_t>(off_reg);
            inst.useIndex = true;
            inst.scale = 1;
            inst.imm = static_cast<std::int64_t>(kHeapBase) + disp;
            inst.width = static_cast<std::uint8_t>(width);
            inst.length = defaultLength(inst);
            b.emit(inst);
        }
    }

    /** rd <- rotate-left(ra, n) via shl/shr/or (3 ALU ops). */
    void
    rotl(unsigned rd, unsigned ra, unsigned n, unsigned t1, unsigned t2)
    {
        b.shli(t1, ra, n);
        b.shri(t2, ra, 64 - n);
        b.or_(rd, t1, t2);
    }

    /** Standard counted loop: label/decrement/branch around @p body. */
    template <typename Body>
    void
    countedLoop(const std::string &label, std::int64_t n, Body &&body)
    {
        b.movi(kIter, n);
        b.label(label);
        body();
        b.subi(kIter, kIter, 1);
        b.bne(kIter, kZero, label);
    }

    ProgramBuilder b;
    Mode mode;
};

/** Default stage: nothing beyond the zeroed heap + descriptor cell. */
void
stageNothing(SimMemory &mem, std::uint64_t, std::uint32_t)
{
    mem.write(kDescAddr, kHeapBase, 8);
    mem.write(kDescAddr + 8, kHeapBytes, 8);
}

/** Stage a pointer-chase table at heap[0..slots*8). */
void
stageTable(SimMemory &mem, std::uint64_t, std::uint32_t seed)
{
    stageNothing(mem, 0, seed);
    constexpr std::uint64_t slots = 1024;
    std::uint64_t state = seed | 1;
    for (std::uint64_t i = 0; i < slots; ++i) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        mem.write(kHeapBase + i * 8, (state >> 16) % slots, 8);
    }
}

/** Stage pseudo-random bytes at heap[0..n). */
void
stageBytes(SimMemory &mem, std::uint64_t, std::uint32_t seed)
{
    stageNothing(mem, 0, seed);
    std::uint64_t state = seed | 1;
    for (std::uint64_t i = 0; i < 4096; ++i) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        mem.writeByte(kHeapBase + i, static_cast<std::uint8_t>(state >> 56));
    }
}

// ---------------------------------------------------------------------
// Kernel bodies. Each is a miniature instruction-mix analogue of its
// Sightglass namesake: the load/store/ALU/branch densities match the
// original's character, which is what determines how the hmov-vs-
// emulation encodings interact with fetch bandwidth and the icache.
// ---------------------------------------------------------------------

Program
buildFib2(Mode mode, std::uint64_t scale)
{
    KernelAsm k(mode);
    k.prologue();
    k.b.movi(4, 0);
    k.memStore(kZero, kZero, 0);
    k.b.movi(5, 1);
    k.memStore(5, kZero, 8);
    k.countedLoop("loop", static_cast<std::int64_t>(4000 * scale), [&] {
        k.memLoad(4, kZero, 0);
        k.memLoad(5, kZero, 8);
        k.memStore(5, kZero, 0);
        k.b.add(6, 4, 5);
        k.memStore(6, kZero, 8);
    });
    k.b.mov(kAcc, 6);
    k.epilogue();
    return k.b.build();
}

Program
buildSieve(Mode mode, std::uint64_t scale)
{
    KernelAsm k(mode);
    k.prologue();
    k.b.movi(kAcc, 0);
    // Repeatedly "mark multiples": for p in outer, clear every p-th byte.
    k.countedLoop("outer", static_cast<std::int64_t>(40 * scale), [&] {
        k.b.addi(4, kIter, 2); // stride
        k.b.movi(kOff, 0);
        k.b.movi(10, 800); // inner iterations
        k.b.label("inner");
        k.memStore(kZero, kOff, 0, 1);
        k.b.add(kOff, kOff, 4);
        k.b.addi(kAcc, kAcc, 1);
        k.b.subi(10, 10, 1);
        k.b.bne(10, kZero, "inner");
    });
    k.epilogue();
    return k.b.build();
}

Program
buildMemmove(Mode mode, std::uint64_t scale)
{
    KernelAsm k(mode);
    k.prologue();
    k.b.movi(kAcc, 0);
    k.countedLoop("pass", static_cast<std::int64_t>(55 * scale), [&] {
        k.b.movi(kOff, 0);
        k.b.movi(10, 448); // stay within the staged 4 KiB of data
        k.b.label("copy");
        k.memLoad(4, kOff, 8);
        k.memStore(4, kOff, 0);
        k.b.addi(kOff, kOff, 8);
        k.b.subi(10, 10, 1);
        k.b.bne(10, kZero, "copy");
        k.b.add(kAcc, kAcc, 4);
    });
    k.epilogue();
    return k.b.build();
}

Program
buildNestedloop(Mode mode, std::uint64_t scale)
{
    KernelAsm k(mode);
    k.prologue();
    k.b.movi(kAcc, 1);
    k.countedLoop("outer", static_cast<std::int64_t>(300 * scale), [&] {
        k.b.movi(10, 160);
        k.b.label("inner");
        k.b.add(kAcc, kAcc, 10);
        k.b.xor_(kAcc, kAcc, kIter);
        k.b.shli(4, kAcc, 1);
        k.b.add(kAcc, kAcc, 4);
        k.b.subi(10, 10, 1);
        k.b.bne(10, kZero, "inner");
    });
    k.epilogue();
    return k.b.build();
}

Program
buildRandom(Mode mode, std::uint64_t scale)
{
    KernelAsm k(mode);
    k.prologue();
    k.b.movi(kAcc, 0);
    k.b.movi(4, 0); // current slot
    k.countedLoop("walk", static_cast<std::int64_t>(20000 * scale), [&] {
        k.b.shli(5, 4, 3);
        k.memLoad(4, 5, 0); // next = table[cur] (dependent chain)
        k.b.add(kAcc, kAcc, 4);
        k.b.andi(4, 4, 1023);
    });
    k.epilogue();
    return k.b.build();
}

Program
buildCtype(Mode mode, std::uint64_t scale)
{
    KernelAsm k(mode);
    k.prologue();
    k.b.movi(kAcc, 0);
    k.b.movi(kOff, 0);
    k.countedLoop("scan", static_cast<std::int64_t>(30000 * scale), [&] {
        k.memLoad(4, kOff, 0, 1); // the character
        k.b.andi(5, 4, 0xff);
        k.memLoad(6, 5, 2048, 1); // table lookup
        k.b.add(kAcc, kAcc, 6);
        k.b.addi(kOff, kOff, 1);
        k.b.andi(kOff, kOff, 2047);
    });
    k.epilogue();
    return k.b.build();
}

Program
buildBase64(Mode mode, std::uint64_t scale)
{
    KernelAsm k(mode);
    k.prologue();
    k.b.movi(kAcc, 0);
    k.b.movi(kOff, 0);
    k.countedLoop("enc", static_cast<std::int64_t>(8000 * scale), [&] {
        k.memLoad(4, kOff, 0, 1);
        k.memLoad(5, kOff, 1, 1);
        k.memLoad(6, kOff, 2, 1);
        k.b.shli(4, 4, 16);
        k.b.shli(5, 5, 8);
        k.b.or_(7, 4, 5);
        k.b.or_(7, 7, 6);
        k.b.shri(8, 7, 18);
        k.b.andi(8, 8, 63);
        k.memStore(8, kOff, 1024, 1);
        k.b.shri(8, 7, 12);
        k.b.andi(8, 8, 63);
        k.memStore(8, kOff, 1025, 1);
        k.b.shri(8, 7, 6);
        k.b.andi(8, 8, 63);
        k.memStore(8, kOff, 1026, 1);
        k.b.andi(8, 7, 63);
        k.memStore(8, kOff, 1027, 1);
        k.b.add(kAcc, kAcc, 7);
        k.b.addi(kOff, kOff, 3);
        k.b.andi(kOff, kOff, 1023);
    });
    k.epilogue();
    return k.b.build();
}

/** Shared shape of the permutation kernels (keccak/gimli/blake3). */
Program
buildPermutation(Mode mode, std::uint64_t scale, unsigned words,
                 unsigned rot, std::int64_t iters)
{
    KernelAsm k(mode);
    k.prologue();
    k.b.movi(kAcc, 0);
    k.countedLoop("perm", iters * static_cast<std::int64_t>(scale), [&] {
        for (unsigned w = 0; w + 1 < words; w += 2) {
            const std::int64_t at = static_cast<std::int64_t>(w) * 8;
            k.memLoad(4, kZero, at);
            k.memLoad(5, kZero, at + 8);
            k.b.add(4, 4, 5);
            k.rotl(6, 4, rot + (w % 3), 7, 8);
            k.b.xor_(5, 5, 6);
            k.memStore(4, kZero, at);
            k.memStore(5, kZero, at + 8);
            k.b.add(kAcc, kAcc, 5);
        }
    });
    k.epilogue();
    return k.b.build();
}

Program
buildKeccak(Mode mode, std::uint64_t scale)
{
    return buildPermutation(mode, scale, 24, 7, 250);
}

Program
buildGimli(Mode mode, std::uint64_t scale)
{
    return buildPermutation(mode, scale, 12, 9, 550);
}

Program
buildBlake3(Mode mode, std::uint64_t scale)
{
    return buildPermutation(mode, scale, 16, 12, 400);
}

/** Shared shape of the stream ciphers (xchacha20/xblabla20). */
Program
buildCipher(Mode mode, std::uint64_t scale, unsigned r1, unsigned r2)
{
    KernelAsm k(mode);
    k.prologue();
    k.b.movi(kAcc, 0);
    k.b.movi(kOff, 0);
    k.countedLoop("block", static_cast<std::int64_t>(2500 * scale), [&] {
        k.memLoad(4, kOff, 0);
        k.memLoad(5, kOff, 8);
        k.b.add(4, 4, 5);
        k.b.xor_(5, 5, 4);
        k.rotl(5, 5, r1, 7, 8);
        k.b.add(4, 4, 5);
        k.b.xor_(5, 5, 4);
        k.rotl(5, 5, r2, 7, 8);
        k.memLoad(6, kOff, 512);
        k.b.xor_(6, 6, 5);
        k.memStore(6, kOff, 512);
        k.b.add(kAcc, kAcc, 6);
        k.b.addi(kOff, kOff, 16);
        k.b.andi(kOff, kOff, 511);
    });
    k.epilogue();
    return k.b.build();
}

Program
buildXchacha20(Mode mode, std::uint64_t scale)
{
    return buildCipher(mode, scale, 16, 12);
}

Program
buildXblabla20(Mode mode, std::uint64_t scale)
{
    return buildCipher(mode, scale, 32, 24);
}

Program
buildSwitch(Mode mode, std::uint64_t scale)
{
    KernelAsm k(mode);
    k.prologue();
    k.b.movi(kAcc, 1);
    k.b.movi(kOff, 0);
    k.countedLoop("dispatch", static_cast<std::int64_t>(12000 * scale),
                  [&] {
        k.memLoad(4, kOff, 0, 1); // opcode
        k.b.andi(4, 4, 3);
        k.b.movi(5, 1);
        k.b.beq(4, 5, "case1");
        k.b.movi(5, 2);
        k.b.beq(4, 5, "case2");
        k.b.movi(5, 3);
        k.b.beq(4, 5, "case3");
        k.b.addi(kAcc, kAcc, 7); // case 0
        k.b.jmp("done");
        k.b.label("case1");
        k.b.shli(kAcc, kAcc, 1);
        k.b.jmp("done");
        k.b.label("case2");
        k.b.xor_(kAcc, kAcc, 4);
        k.b.jmp("done");
        k.b.label("case3");
        k.b.subi(kAcc, kAcc, 3);
        k.b.label("done");
        k.b.addi(kOff, kOff, 1);
        k.b.andi(kOff, kOff, 2047);
    });
    k.epilogue();
    return k.b.build();
}

Program
buildMinicsv(Mode mode, std::uint64_t scale)
{
    KernelAsm k(mode);
    k.prologue();
    k.b.movi(kAcc, 0);
    k.b.movi(kOff, 0);
    k.b.movi(6, 0); // current field value
    k.countedLoop("scan", static_cast<std::int64_t>(25000 * scale), [&] {
        k.memLoad(4, kOff, 0, 1);
        k.b.movi(5, ',');
        k.b.beq(4, 5, "field_end");
        k.b.shli(6, 6, 1);
        k.b.add(6, 6, 4);
        k.b.jmp("next");
        k.b.label("field_end");
        k.b.add(kAcc, kAcc, 6);
        k.b.movi(6, 0);
        k.b.label("next");
        k.b.addi(kOff, kOff, 1);
        k.b.andi(kOff, kOff, 2047);
    });
    k.epilogue();
    return k.b.build();
}

Program
buildRatelimit(Mode mode, std::uint64_t scale)
{
    KernelAsm k(mode);
    k.prologue();
    k.b.movi(kAcc, 0);
    k.b.movi(4, 12345); // key rng
    k.countedLoop("req", static_cast<std::int64_t>(15000 * scale), [&] {
        // key = rng % 256; slot = key * 16
        k.b.movi(5, 1103515245);
        k.b.mul(4, 4, 5);
        k.b.addi(4, 4, 12345);
        k.b.shri(5, 4, 16);
        k.b.andi(5, 5, 255);
        k.b.shli(5, 5, 4);
        k.memLoad(6, 5, 0);  // tokens
        k.memLoad(7, 5, 8);  // last tick
        k.b.addi(6, 6, 1);
        k.b.andi(6, 6, 15);
        k.b.beq(6, kZero, "deny");
        k.b.addi(kAcc, kAcc, 1);
        k.b.label("deny");
        k.memStore(6, 5, 0);
        k.memStore(kIter, 5, 8);
        k.b.add(kAcc, kAcc, 7);
    });
    k.epilogue();
    return k.b.build();
}

Program
buildAckermann(Mode mode, std::uint64_t scale)
{
    // Deep call/ret recursion with an explicit memory stack: exercises
    // the RSB and call/return bandwidth.
    KernelAsm k(mode);
    k.prologue();
    k.b.movi(kAcc, 0);
    k.countedLoop("outer", static_cast<std::int64_t>(400 * scale), [&] {
        k.b.movi(4, 24); // recursion depth
        k.b.movi(kOff, 0);
        k.b.call("recurse");
        k.b.add(kAcc, kAcc, 5);
    });
    k.b.jmp("after");

    // recurse(depth r4): spills to the memory stack, recurses, unwinds.
    k.b.label("recurse");
    k.b.beq(4, kZero, "base");
    k.memStore(4, kOff, 4096);
    k.memStore(kLinkReg, kOff, 8192);
    k.b.addi(kOff, kOff, 8);
    k.b.subi(4, 4, 1);
    k.b.call("recurse");
    k.b.subi(kOff, kOff, 8);
    k.memLoad(4, kOff, 4096);
    k.memLoad(kLinkReg, kOff, 8192);
    k.b.add(5, 5, 4);
    k.b.ret();
    k.b.label("base");
    k.b.movi(5, 1);
    k.b.ret();

    k.b.label("after");
    k.epilogue();
    return k.b.build();
}

} // namespace

const std::vector<Kernel> &
suite()
{
    static const std::vector<Kernel> kSuite = {
        {"blake3-scalar", buildBlake3, stageBytes},
        {"ackermann", buildAckermann, stageNothing},
        {"base64", buildBase64, stageBytes},
        {"ctype", buildCtype, stageBytes},
        {"fib2", buildFib2, stageNothing},
        {"gimli", buildGimli, stageBytes},
        {"keccak", buildKeccak, stageBytes},
        {"memmove", buildMemmove, stageBytes},
        {"minicsv", buildMinicsv, stageBytes},
        {"nestedloop", buildNestedloop, stageNothing},
        {"random", buildRandom, stageTable},
        {"ratelimit", buildRatelimit, stageNothing},
        {"sieve", buildSieve, stageNothing},
        {"switch", buildSwitch, stageBytes},
        {"xblabla20", buildXblabla20, stageBytes},
        {"xchacha20", buildXchacha20, stageBytes},
    };
    return kSuite;
}

} // namespace hfi::sim::kernels
