/**
 * @file
 * The micro-ISA of the pipeline simulator (§5.2, appendix A.2).
 *
 * The paper's gem5 model extends x86 with the HFI instructions; we model
 * an x86-flavoured register machine whose instructions carry explicit
 * *encoded lengths* (so fetch bandwidth and icache pressure behave like
 * variable-length x86 — hmov carries a prefix byte, exactly the encoding
 * cost §6.1 blames for 445.gobmk) and whose memory operations support
 * the scale/index/displacement addressing hmov inherits (§4.2).
 *
 * The same ISA expresses both the "hardware HFI" and the "compiler
 * emulation" versions of a kernel, which is what the Fig 2 cross-
 * validation compares.
 */

#ifndef HFI_SIM_ISA_H
#define HFI_SIM_ISA_H

#include <cstdint>
#include <string>

namespace hfi::sim
{

/** Number of architectural integer registers. */
constexpr unsigned kNumRegs = 16;

/** Link register used by Call/Ret. */
constexpr unsigned kLinkReg = 14;

/** Register holding the exit-handler address consumed by hfi_enter. */
constexpr unsigned kExitHandlerReg = 15;

/** Opcodes of the micro-ISA. */
enum class Opcode : std::uint8_t
{
    // ALU (rd <- ra OP rb, or rd <- ra OP imm when useImm).
    Add,
    Sub,
    Mul,
    Div,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Mov,  ///< rd <- ra
    Movi, ///< rd <- imm

    // Memory: address = ra + rb*scale + imm (rb optional index).
    Load,      ///< rd <- mem[addr]
    Store,     ///< mem[addr] <- rd
    HmovLoad,  ///< rd <- region[rb*scale + imm] (ra ignored — §3.2)
    HmovStore, ///< region[rb*scale + imm] <- rd

    // Control flow. Conditional: compare ra against rb.
    Beq,
    Bne,
    Blt, ///< signed less-than
    Bge,
    Jmp,
    Call,
    Ret,

    // System / HFI.
    Syscall,
    Cpuid, ///< full pipeline serialization (the emulation's fence)
    HfiEnter,
    HfiExit,
    HfiSetRegion,   ///< region number in `region`, descriptor regs ra..
    HfiClearRegion,

    /** clflush [ra+imm]: evict the line (the attacker's probe tool). */
    Flush,

    Halt,
    Nop,
};

const char *opcodeName(Opcode op);

/** True for Load/Store/HmovLoad/HmovStore. */
bool isMemory(Opcode op);

/** True for conditional branches, Jmp, Call, Ret. */
bool isControl(Opcode op);

/** True for the conditional branches only. */
bool isConditionalBranch(Opcode op);

/** One decoded instruction. */
struct Inst
{
    Opcode op = Opcode::Nop;
    std::uint8_t rd = 0; ///< destination (or store source)
    std::uint8_t ra = 0; ///< first source / memory base
    std::uint8_t rb = 0; ///< second source / memory index
    bool useImm = false; ///< ALU second operand is imm instead of rb
    bool useIndex = false; ///< memory ops: add rb*scale to the address
    std::uint8_t scale = 1;
    std::int64_t imm = 0;
    std::uint8_t width = 8;  ///< memory access width in bytes
    std::uint8_t region = 0; ///< hmov: explicit region 0-3; hfi_set: 0-9
    std::uint64_t target = 0;///< control flow target (byte address)

    /**
     * Encoded length in bytes. Assigned by the ProgramBuilder following
     * x86-like rules: 4 bytes typical, +1 for an hmov prefix, 7 for a
     * mov with a 32-bit absolute displacement, 2 for cpuid.
     */
    std::uint8_t length = 4;

    std::string toString() const;
};

/** Default encoded lengths (x86-flavoured). */
std::uint8_t defaultLength(const Inst &inst);

} // namespace hfi::sim

#endif // HFI_SIM_ISA_H
