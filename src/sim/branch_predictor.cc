#include "sim/branch_predictor.h"

namespace hfi::sim
{

BranchPredictor::BranchPredictor(PredictorConfig config)
    : config_(config), pht(config.phtEntries, 1), btb(config.btbEntries),
      rsb(config.rsbDepth, 0)
{
}

bool
BranchPredictor::predictDirection(std::uint64_t pc) const
{
    return pht[(pc >> 2) % pht.size()] >= 2;
}

void
BranchPredictor::updateDirection(std::uint64_t pc, bool taken)
{
    std::uint8_t &counter = pht[(pc >> 2) % pht.size()];
    if (taken && counter < 3)
        ++counter;
    else if (!taken && counter > 0)
        --counter;
}

std::uint64_t
BranchPredictor::predictTarget(std::uint64_t pc) const
{
    const BtbEntry &entry = btb[(pc >> 2) % btb.size()];
    return entry.valid && entry.pc == pc ? entry.target : 0;
}

void
BranchPredictor::updateTarget(std::uint64_t pc, std::uint64_t target)
{
    BtbEntry &entry = btb[(pc >> 2) % btb.size()];
    entry.valid = true;
    entry.pc = pc;
    entry.target = target;
}

void
BranchPredictor::pushReturn(std::uint64_t addr)
{
    rsb[rsbTop % rsb.size()] = addr;
    ++rsbTop;
}

std::uint64_t
BranchPredictor::popReturn()
{
    if (rsbTop == 0)
        return 0;
    --rsbTop;
    return rsb[rsbTop % rsb.size()];
}

} // namespace hfi::sim
