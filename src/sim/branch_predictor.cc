#include "sim/branch_predictor.h"

#include <bit>

namespace hfi::sim
{

BranchPredictor::BranchPredictor(PredictorConfig config)
    : config_(config), pht(config.phtEntries, 1), btb(config.btbEntries),
      rsb(config.rsbDepth, 0)
{
    if (std::has_single_bit(pht.size()))
        phtMask_ = pht.size() - 1;
    if (std::has_single_bit(btb.size()))
        btbMask_ = btb.size() - 1;
}

bool
BranchPredictor::predictDirection(std::uint64_t pc) const
{
    return pht[phtIndex(pc)] >= 2;
}

void
BranchPredictor::updateDirection(std::uint64_t pc, bool taken)
{
    std::uint8_t &counter = pht[phtIndex(pc)];
    if (taken && counter < 3)
        ++counter;
    else if (!taken && counter > 0)
        --counter;
}

std::uint64_t
BranchPredictor::predictTarget(std::uint64_t pc) const
{
    const BtbEntry &entry = btb[btbIndex(pc)];
    return entry.valid && entry.pc == pc ? entry.target : 0;
}

void
BranchPredictor::updateTarget(std::uint64_t pc, std::uint64_t target)
{
    BtbEntry &entry = btb[btbIndex(pc)];
    entry.valid = true;
    entry.pc = pc;
    entry.target = target;
}

void
BranchPredictor::pushReturn(std::uint64_t addr)
{
    rsb[rsbTop % rsb.size()] = addr;
    ++rsbTop;
}

std::uint64_t
BranchPredictor::popReturn()
{
    if (rsbTop == 0)
        return 0;
    --rsbTop;
    return rsb[rsbTop % rsb.size()];
}

} // namespace hfi::sim
