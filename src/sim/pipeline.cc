#include "sim/pipeline.h"

#include <algorithm>
#include <bit>

namespace hfi::sim
{

std::uint64_t
Pipeline::SpecMemView::load(std::uint64_t addr, unsigned width)
{
    // Committed memory, then forward bytes from older in-flight stores.
    // The walk is youngest-first with a filled-byte mask (first writer
    // wins), equivalent to the old oldest-to-youngest overwrite loop
    // but able to stop as soon as every byte is covered.
    std::uint64_t value = pipe.mem.read(addr, width);
    std::size_t k = pipe.storeCount_;
    while (k > 0 && pipe.storeAt(k - 1).seq >= seq)
        --k; // stores younger than the load cannot forward to it
    if (k == 0)
        return value;
    const unsigned all = width >= 8 ? 0xffu : ((1u << width) - 1u);
    unsigned filled = 0;
    while (k-- > 0) {
        const StoreEntry &s = pipe.storeAt(k);
        for (unsigned i = 0; i < width; ++i) {
            const std::uint64_t byte_addr = addr + i;
            if ((filled & (1u << i)) == 0 && byte_addr >= s.addr &&
                byte_addr < s.addr + s.width) {
                const auto byte = static_cast<std::uint64_t>(
                    (s.value >> (8 * (byte_addr - s.addr))) & 0xff);
                value = (value & ~(0xffULL << (8 * i))) | (byte << (8 * i));
                filled |= 1u << i;
            }
        }
        if (filled == all)
            break;
    }
    return value;
}

void
Pipeline::SpecMemView::store(std::uint64_t addr, std::uint64_t value,
                             unsigned width)
{
    // Capacity was enforced at dispatch (the sqSize gate).
    pipe.storeAt(pipe.storeCount_++) = {seq, addr, value,
                                        static_cast<std::uint8_t>(width)};
}

Pipeline::Pipeline(Program program, CpuConfig config)
    : program(std::move(program)), config_(config), icache_(config.icache),
      dcache_(config.dcache), dtb_(config.dtb), predictor_(config.predictor),
      aluFree(config.intAluCount, 0), mulFree(config.intMultCount, 0),
      memFree(config.memPortCount, 0)
{
    decode_.resize(std::bit_ceil(
        std::max<std::size_t>(config_.decodeQueueDepth, 1)));
    decodeMask_ = decode_.size() - 1;

    const std::size_t rob_cap =
        std::bit_ceil(std::max<std::size_t>(config_.robSize, 1));
    rob_.resize(rob_cap);
    snapshots_.resize(rob_cap);
    resolveAt_.assign(rob_cap, UINT64_MAX);
    robMask_ = rob_cap - 1;

    stores_.resize(std::bit_ceil(std::max<std::size_t>(config_.sqSize, 1)));
    storeMask_ = stores_.size() - 1;

    issueRing_.resize(std::size_t{1} << 10);
    issueMask_ = issueRing_.size() - 1;

    resolveBuckets_.resize(std::size_t{1} << 10);
    resolveBucketMask_ = resolveBuckets_.size() - 1;

    archState.pc = this->program.base();
}

bool
Pipeline::willSerialize(const Inst &inst) const
{
    switch (inst.op) {
      case Opcode::Cpuid:
        return true;
      case Opcode::HfiEnter:
        return (inst.imm & 2) != 0;
      case Opcode::HfiExit:
        // A switch-on-exit exit is a register-bank swap, not a
        // serialization point (§4.5).
        return specState.hfi.enabled &&
               !specState.hfi.config.switchOnExit &&
               specState.hfi.config.isSerialized;
      case Opcode::HfiSetRegion:
      case Opcode::HfiClearRegion:
        // §4.3: region updates serialize inside a hybrid sandbox.
        return specState.hfi.enabled;
      case Opcode::Syscall:
        return specState.hfi.enabled && !specState.hfi.config.isHybrid &&
               specState.hfi.config.isSerialized;
      default:
        return false;
    }
}

unsigned
Pipeline::issueCountAt(std::uint64_t t) const
{
    const IssueSlot &s = issueRing_[t & issueMask_];
    return s.cycle == t ? s.count : 0;
}

void
Pipeline::issueBump(std::uint64_t t)
{
    if (t - cycle >= issueRing_.size())
        growIssueRing(t);
    IssueSlot &s = issueRing_[t & issueMask_];
    if (s.cycle == t) {
        ++s.count;
    } else {
        s.cycle = t;
        s.count = 1;
    }
}

void
Pipeline::growIssueRing(std::uint64_t t)
{
    std::size_t size = issueRing_.size();
    while (t - cycle >= size)
        size *= 2;
    std::vector<IssueSlot> grown(size);
    for (const IssueSlot &s : issueRing_) {
        if (s.count != 0 && s.cycle != ~0ull && s.cycle > cycle)
            grown[s.cycle & (size - 1)] = s; // still-live slot
    }
    issueRing_ = std::move(grown);
    issueMask_ = size - 1;
}

std::uint64_t
Pipeline::allocateIssue(std::uint64_t earliest, const MicroOp &uop,
                        unsigned *unit_latency)
{
    std::vector<std::uint64_t> *units = &aluFree;
    unsigned latency = config_.aluLatency;
    std::uint64_t occupancy = 1; // fully pipelined by default
    switch (uop.unit) {
      case MicroOp::kUnitMul:
        units = &mulFree;
        latency = config_.mulLatency;
        break;
      case MicroOp::kUnitDiv:
        units = &mulFree;
        latency = config_.divLatency;
        occupancy = config_.divLatency; // unpipelined divider
        break;
      case MicroOp::kUnitMem:
        units = &memFree;
        latency = 1; // AGU cycle; cache latency added by the caller
        break;
      default:
        break;
    }

    std::uint64_t t = earliest;
    while (true) {
        // Issue-width limit this cycle?
        if (issueCountAt(t) >= config_.issueWidth) {
            ++t;
            continue;
        }
        // A free unit of the right kind?
        std::uint64_t *best = nullptr;
        for (std::uint64_t &free_at : *units) {
            if (free_at <= t && (!best || free_at < *best))
                best = &free_at;
        }
        if (!best) {
            std::uint64_t soonest = UINT64_MAX;
            for (std::uint64_t free_at : *units)
                soonest = std::min(soonest, free_at);
            t = std::max(t + 1, soonest);
            continue;
        }
        *best = t + occupancy;
        issueBump(t);
        *unit_latency = latency;
        return t;
    }
}

void
Pipeline::appendResolve(std::uint64_t at, std::uint32_t slot,
                        std::uint64_t seq)
{
    if (at - cycle >= resolveBuckets_.size())
        growResolveRing(at);
    ResolveBucket &b = resolveBuckets_[at & resolveBucketMask_];
    if (b.epoch != at) {
        b.epoch = at;
        b.refs.clear();
    }
    b.refs.push_back({seq, slot});
}

void
Pipeline::growResolveRing(std::uint64_t at)
{
    std::size_t size = resolveBuckets_.size();
    while (at - cycle >= size)
        size *= 2;
    std::vector<ResolveBucket> grown(size);
    for (ResolveBucket &b : resolveBuckets_) {
        if (b.epoch != ~0ull && b.epoch > cycle && !b.refs.empty())
            grown[b.epoch & (size - 1)] = std::move(b);
    }
    resolveBuckets_ = std::move(grown);
    resolveBucketMask_ = size - 1;
}

bool
Pipeline::hasDueResolve() const
{
    const ResolveBucket &b = resolveBuckets_[cycle & resolveBucketMask_];
    if (b.epoch != cycle)
        return false;
    for (const ResolveRef &r : b.refs) {
        if (robSlotLive(r.slot) && rob_[r.slot].seq == r.seq &&
            resolveAt_[r.slot] == cycle)
            return true;
    }
    return false;
}

bool
Pipeline::fetchCheckElidable()
{
    if (fetchCheckDirty_) {
        fetchCheckUniform_ = fetchCoversProgram(specState.hfi, program);
        fetchCheckDirty_ = false;
    }
    return fetchCheckUniform_;
}

void
Pipeline::fetchStage()
{
    if (fetchHalted || cycle < fetchStallUntil)
        return;

    const MicroOp *uops = program.microOps();
    unsigned budget = config_.fetchBytes;
    while (budget > 0 && decodeCount_ < config_.decodeQueueDepth) {
        const std::size_t index = program.fetchIndex(fetchPc, &fetchHint_);
        if (index == Program::kNoInst) {
            fetchHalted = true;
            return;
        }
        const Inst *inst = &program.instructions()[index];
        if (inst->length > budget)
            return;

        const CacheAccess ic = icache_.access(fetchPc);
        if (!ic.hit) {
            fetchStallUntil = cycle + ic.latency;
            return;
        }
        budget -= inst->length;
        const MicroOp &uop = uops[index];
        // hmov's prefix is a length-changing prefix to the predecoder:
        // it costs extra predecode throughput (the Skylake LCP stall),
        // modeled as additional consumed fetch bytes.
        if (uop.flags & MicroOp::kLcp)
            budget -= std::min<unsigned>(budget, 3);

        // Predict the next fetch address.
        std::uint64_t next = fetchPc + inst->length;
        switch (uop.ctrl) {
          case MicroOp::kCtrlCond:
            if (predictor_.predictDirection(fetchPc))
                next = inst->target;
            break;
          case MicroOp::kCtrlJmp:
            next = inst->target;
            break;
          case MicroOp::kCtrlCall:
            predictor_.pushReturn(fetchPc + inst->length);
            next = inst->target;
            break;
          case MicroOp::kCtrlRet:
            next = predictor_.popReturn(); // 0 = unpredictable
            break;
          default:
            break;
        }

        decodeAt(decodeCount_++) = {inst, static_cast<std::uint32_t>(index),
                                    fetchPc, next};
        ++stats_.fetched;
        fetchPc = next;
        if (next == 0) {
            // Unpredictable target: fetch stalls until resolution
            // redirects us.
            fetchHalted = true;
            return;
        }
    }
}

void
Pipeline::dispatchStage()
{
    const MicroOp *uops = program.microOps();
    unsigned budget = config_.decodeWidth;
    while (budget > 0 && decodeCount_ != 0 && !serializePending &&
           robCount_ < config_.robSize) {
        const FetchedInst f = decodeAt(0);
        const Inst &inst = *f.inst;
        const MicroOp &uop = uops[f.index];

        // Decode-stage code-region check (§4.1): out-of-region
        // instructions become faulting NOPs and never execute,
        // speculatively or otherwise. While the current bank provably
        // passes the check for every program address, the per-
        // instruction check is elided (same predicate the functional
        // core's interpreter uses).
        if (!fetchCheckElidable()) {
            const core::CheckResult fetch_check =
                core::AccessChecker::checkFetch(specState.hfi, f.pc);
            if (!fetch_check.ok) {
                const std::size_t slot = robSlot(robCount_);
                RobEntry &e = rob_[slot];
                e = RobEntry{};
                e.inst = f.inst;
                e.pc = f.pc;
                e.seq = seqCounter++;
                e.predictedNext = f.predictedNext;
                e.info.faulted = true;
                e.info.faultReason = fetch_check.reason;
                e.info.nextPc = f.pc;
                e.completeCycle = cycle + 1;
                resolveAt_[slot] = e.completeCycle;
                appendResolve(e.completeCycle,
                              static_cast<std::uint32_t>(slot), e.seq);
                ++robCount_;
                popDecodeFront();
                --budget;
                ++stats_.dispatched;
                continue;
            }
        }

        if (willSerialize(inst) && robCount_ != 0)
            break; // drain before a serializing instruction

        const bool is_load = (uop.flags & MicroOp::kIsLoad) != 0;
        const bool is_store = (uop.flags & MicroOp::kIsStore) != 0;
        if (is_load && loadsInFlight >= config_.lqSize)
            break;
        if (is_store && storeCount_ >= config_.sqSize)
            break;

        // Poison gating (§4.1): if any input register descends from a
        // faulted access, this instruction will never actually issue,
        // so its side effects (cache fills in particular) must not
        // happen and its destination stays poisoned.
        const bool inputs_poisoned = (poisonMask_ & uop.taintMask) != 0;

        const std::uint64_t seq = seqCounter++;
        SpecMemView view(*this, seq);
        const ExecInfo info =
            FunctionalCore::executeOn(inst, f.pc, specState, view);

        const std::size_t slot = robSlot(robCount_);
        RobEntry &e = rob_[slot];
        e = RobEntry{};
        e.inst = f.inst;
        e.pc = f.pc;
        e.seq = seq;
        e.predictedNext = f.predictedNext;
        e.info = info;
        e.isLoad = is_load;
        e.isStore = is_store;
        e.condBranch = uop.ctrl == MicroOp::kCtrlCond;
        if (is_load)
            ++loadsInFlight;

        // Source-operand readiness from the µop's scheduling mask.
        std::uint64_t src_ready = cycle + 1;
        for (unsigned m = uop.readyMask; m != 0; m &= m - 1) {
            const unsigned reg = static_cast<unsigned>(std::countr_zero(m));
            src_ready = std::max(src_ready, regReadyAt[reg]);
        }

        unsigned unit_latency = 1;
        const std::uint64_t issue_at =
            allocateIssue(src_ready, uop, &unit_latency);
        std::uint64_t latency = unit_latency;

        if (info.isMem && !info.faulted && !inputs_poisoned) {
            // dtb lookup and HFI check run in parallel (§4.2); the
            // dcache access proceeds — speculatively — because the
            // check passed.
            const TlbAccess t = dtb_.access(info.memAddr);
            if (is_load) {
                const CacheAccess c = dcache_.access(info.memAddr);
                latency = t.latency + c.latency;
            } else {
                latency = std::max(1u, t.latency);
            }
            if (specState.hfi.enabled)
                ++stats_.hfiDataChecks;
        } else if (info.isMem && inputs_poisoned && !info.faulted) {
            // The address descends from faulted data: the access never
            // issues, so neither the dcache nor the dtb observes it.
            latency = 1;
        } else if (info.isMem && info.faulted) {
            // §4.1: the failed check blocks the *data-cache* fill, but
            // the dtb may still observe the address; no data moves.
            if (info.memAddr)
                dtb_.access(info.memAddr);
            latency = 1;
        }

        // Un-lamination: a load/store that combines an index register
        // with a 32-bit displacement (the emulation's fixed-base form,
        // appendix A.2) splits into an address-generation µop plus the
        // memory µop — an extra issue slot and a periodic replay cycle.
        // hmov does not pay this: the region base comes from the region
        // register at register-read (§4.2).
        if (uop.flags & MicroOp::kUnlaminated) {
            issueBump(issue_at); // the companion AGU µop's slot
            latency += (seq & 3) == 0 ? 1 : 0; // periodic replay cycle
        }

        if (info.isFlush)
            dcache_.flush(info.memAddr);

        if (info.serializes) {
            latency += config_.serializeFlushCycles;
            serializePending = true;
            serializeSeq = seq;
            ++stats_.serializations;
        }

        e.completeCycle = issue_at + std::max<std::uint64_t>(latency, 1);

        // Destination readiness.
        if (!info.faulted && (uop.flags & MicroOp::kWritesRd)) {
            regReadyAt[inst.rd] = e.completeCycle;
            // Poison propagates through dataflow; a clean producer
            // clears it.
            if (inputs_poisoned)
                poisonMask_ |= static_cast<std::uint16_t>(1u << inst.rd);
            else
                poisonMask_ &= static_cast<std::uint16_t>(~(1u << inst.rd));
        }
        if (is_load && info.faulted)
            poisonMask_ |= static_cast<std::uint16_t>(1u << inst.rd);
        if (uop.ctrl == MicroOp::kCtrlCall)
            regReadyAt[kLinkReg] = e.completeCycle;
        if (inst.op == Opcode::Cpuid) {
            regReadyAt[12] = e.completeCycle;
            regReadyAt[13] = e.completeCycle;
        }

        e.mispredicted = !info.faulted && info.nextPc != f.predictedNext;
        if (e.mispredicted) {
            // Only mispredicts are ever restored from, so only they pay
            // the (ArchState-sized) snapshot copy.
            Snapshot &s = snapshots_[slot];
            s.state = specState;
            s.regReady = regReadyAt;
            s.poison = poisonMask_;
        }

        resolveAt_[slot] = e.completeCycle;
        appendResolve(e.completeCycle, static_cast<std::uint32_t>(slot),
                      seq);
        ++robCount_;
        popDecodeFront();

        // Execution may have changed the HFI bank: re-prove the
        // fetch-check elision before the next decode-stage check.
        if (uop.flags & MicroOp::kBankOp)
            fetchCheckDirty_ = true;

        // hmov's prefix byte behaves like a length-changing prefix in
        // the predecoder: it occupies an extra decode slot (the Skylake
        // LCP effect) — the µ-architectural cost behind §6.1's gobmk
        // observation, and one the compiler emulation cannot mimic.
        if (uop.flags & MicroOp::kLcp)
            budget -= budget > 1 ? 1 : 0;
        --budget;
        ++stats_.dispatched;
    }
}

void
Pipeline::squashAfter(std::size_t rob_index)
{
    const std::uint64_t boundary_seq = robAt(rob_index).seq;
    for (std::size_t i = rob_index + 1; i < robCount_; ++i) {
        const RobEntry &e = robAt(i);
        ++stats_.squashed;
        if (e.info.faulted)
            ++stats_.hfiFaultsSuppressed;
        if (e.isLoad)
            --loadsInFlight;
    }
    robCount_ = rob_index + 1;
    while (storeCount_ != 0 && storeAt(storeCount_ - 1).seq > boundary_seq)
        --storeCount_;
    if (serializePending && serializeSeq > boundary_seq)
        serializePending = false;
}

void
Pipeline::resolveStage()
{
    // Drain this cycle's calendar bucket. Its live refs are exactly the
    // unresolved entries completing now (earlier buckets were drained
    // at their own cycles, or their stragglers squashed by the
    // mispredict that cut those drains short), in program order — the
    // order the full ROB scan used to visit them in.
    ResolveBucket &b = resolveBuckets_[cycle & resolveBucketMask_];
    if (b.epoch != cycle)
        return;
    for (std::size_t n = 0; n < b.refs.size(); ++n) {
        const ResolveRef r = b.refs[n];
        const std::size_t index = (r.slot - robHead_) & robMask_;
        if (index >= robCount_ || rob_[r.slot].seq != r.seq ||
            resolveAt_[r.slot] != cycle)
            continue; // filed, then squashed (slot possibly reused)
        RobEntry &e = rob_[r.slot];
        e.resolved = true;
        resolveAt_[r.slot] = UINT64_MAX;

        if (e.condBranch && !e.info.faulted)
            predictor_.updateDirection(e.pc, e.info.branchTaken);

        if (e.mispredicted) {
            ++stats_.mispredicts;
            predictor_.countMispredict();
            // Recover state and redirect fetch down the correct path.
            const Snapshot &s = snapshots_[r.slot];
            specState = s.state;
            regReadyAt = s.regReady;
            poisonMask_ = s.poison;
            fetchCheckDirty_ = true;
            squashAfter(index);
            decodeHead_ = 0;
            decodeCount_ = 0;
            fetchPc = e.info.nextPc;
            fetchStallUntil = cycle + config_.redirectPenalty;
            fetchHalted = false;
            return;
        }
    }
}

void
Pipeline::commitStage(PipelineResult &result, bool *done)
{
    unsigned budget = config_.commitWidth;
    while (budget > 0 && robCount_ != 0) {
        RobEntry &e = robAt(0);
        if (e.completeCycle >= cycle || !e.resolved)
            break;

        if (e.info.faulted) {
            result.faulted = true;
            result.faultReason = e.info.faultReason;
            result.faultPc = e.pc;
            *done = true;
            return;
        }

        if (e.isStore && storeCount_ != 0 && storeAt(0).seq == e.seq) {
            const StoreEntry &s = storeAt(0);
            mem.write(s.addr, s.value, s.width);
            dcache_.access(s.addr); // write-allocate at commit
            storeHead_ = (storeHead_ + 1) & storeMask_;
            --storeCount_;
        }
        if (e.isLoad)
            --loadsInFlight;

        if (serializePending && serializeSeq == e.seq)
            serializePending = false;

        const bool halted = e.info.halted;
        robHead_ = (robHead_ + 1) & robMask_;
        --robCount_;
        ++stats_.committed;
        --budget;

        if (halted) {
            result.halted = true;
            *done = true;
            return;
        }
    }
}

bool
Pipeline::quietCycle()
{
    // Commit would retire the front entry?
    if (robCount_ != 0) {
        const RobEntry &front = robAt(0);
        if (front.resolved && front.completeCycle < cycle)
            return false;
    }
    // The resolve stage would resolve something?
    if (hasDueResolve())
        return false;
    // Dispatch would move the decode-queue head?
    if (decodeCount_ != 0 && !serializePending &&
        robCount_ < config_.robSize) {
        if (!fetchCheckElidable())
            return false; // per-address check mode: treat as active
        const FetchedInst &f = decodeAt(0);
        const MicroOp &uop = program.microOps()[f.index];
        const bool blocked =
            (willSerialize(*f.inst) && robCount_ != 0) ||
            ((uop.flags & MicroOp::kIsLoad) != 0 &&
             loadsInFlight >= config_.lqSize) ||
            ((uop.flags & MicroOp::kIsStore) != 0 &&
             storeCount_ >= config_.sqSize);
        if (!blocked)
            return false;
    }
    // Fetch would deliver bytes?
    if (!fetchHalted && cycle >= fetchStallUntil &&
        decodeCount_ < config_.decodeQueueDepth)
        return false;
    return true;
}

std::uint64_t
Pipeline::nextEventCycle(unsigned *source_out) const
{
    // In a quiet cycle, dispatch is blocked on ROB-side resources
    // (serialize drain, full ROB/LQ/SQ) and fetch on the stall timer or
    // a full decode queue — every unblocking transition is driven by a
    // commit or a resolution, so the ROB events plus the stall expiry
    // cover all wake-ups. Attribution (which source won the min, ties
    // to the earliest-checked) falls out of the same comparison chain
    // and feeds the per-kernel cycle-breakdown profile.
    std::uint64_t next = UINT64_MAX;
    unsigned source = 3;
    if (robCount_ != 0) {
        const RobEntry &front = robAt(0);
        if (front.resolved) {
            next = front.completeCycle + 1; // commit-eligible
            source = 0;
        }
        for (std::size_t i = 0; i < robCount_; ++i) {
            const std::uint64_t at = resolveAt_[robSlot(i)];
            if (at < next) { // next resolution
                next = at;
                source = 1;
            }
        }
    }
    if (!fetchHalted && fetchStallUntil > cycle &&
        decodeCount_ < config_.decodeQueueDepth && fetchStallUntil < next) {
        next = fetchStallUntil;
        source = 2;
    }
    if (source_out)
        *source_out = source;
    return next;
}

template <bool EventDriven>
PipelineResult
Pipeline::runLoop(std::uint64_t max_cycles)
{
    PipelineResult result;
    specState = archState;
    fetchPc = archState.pc;
    fetchHalted = false;
    fetchStallUntil = 0;
    fetchCheckDirty_ = true;
    HFI_OBS_STMT(profile_ = PipelineProfile{});

    bool done = false;
    while (!done && cycle < max_cycles) {
        if constexpr (EventDriven) {
            if (quietCycle()) {
                unsigned source = 3;
                const std::uint64_t next = nextEventCycle(&source);
                if (next == UINT64_MAX) {
                    // Frozen machine (fetch halted, nothing in flight):
                    // the reference loop ticks exactly once more, then
                    // takes the ran-off-the-end break below.
                    ++cycle;
                    break;
                }
                // Every skipped cycle is a proven no-op for all four
                // stages; land exactly on the next active one (clamped
                // so a distant event still honours max_cycles).
                const std::uint64_t landing = std::min(next, max_cycles);
                HFI_OBS_STMT(profile_.skippedCycles += landing - cycle;
                             profile_.skipsToCommit += source == 0;
                             profile_.skipsToResolve += source == 1;
                             profile_.skipsToFetch += source == 2);
                cycle = landing;
                continue;
            }
        }
        if constexpr (EventDriven)
            HFI_OBS_STMT(++profile_.activeCycles);
        commitStage(result, &done);
        if (done)
            break;
        resolveStage();
        dispatchStage();
        fetchStage();
        ++cycle;

        if (fetchHalted && decodeCount_ == 0 && robCount_ == 0)
            break; // ran off the end of the program
    }

    result.cycles = cycle;
    result.instructions = stats_.committed;
    archState = specState;
    return result;
}

PipelineResult
Pipeline::run(std::uint64_t max_cycles)
{
    return runLoop<true>(max_cycles);
}

PipelineResult
Pipeline::runReference(std::uint64_t max_cycles)
{
    return runLoop<false>(max_cycles);
}

} // namespace hfi::sim
