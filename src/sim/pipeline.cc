#include "sim/pipeline.h"

#include <algorithm>
#include <cstdio>

namespace hfi::sim
{

std::uint64_t
Pipeline::SpecMemView::load(std::uint64_t addr, unsigned width)
{
    // Committed memory, then forward bytes from older in-flight stores
    // (oldest to youngest so the youngest write wins).
    std::uint64_t value = pipe.mem.read(addr, width);
    for (const StoreEntry &s : pipe.storeQueue) {
        if (s.seq >= seq)
            break;
        for (unsigned i = 0; i < width; ++i) {
            const std::uint64_t byte_addr = addr + i;
            if (byte_addr >= s.addr && byte_addr < s.addr + s.width) {
                const auto byte = static_cast<std::uint64_t>(
                    (s.value >> (8 * (byte_addr - s.addr))) & 0xff);
                value = (value & ~(0xffULL << (8 * i))) | (byte << (8 * i));
            }
        }
    }
    return value;
}

void
Pipeline::SpecMemView::store(std::uint64_t addr, std::uint64_t value,
                             unsigned width)
{
    pipe.storeQueue.push_back(
        {seq, addr, value, static_cast<std::uint8_t>(width)});
}

Pipeline::Pipeline(Program program, CpuConfig config)
    : program(std::move(program)), config_(config), icache_(config.icache),
      dcache_(config.dcache), dtb_(config.dtb), predictor_(config.predictor),
      aluFree(config.intAluCount, 0), mulFree(config.intMultCount, 0),
      memFree(config.memPortCount, 0)
{
    archState.pc = this->program.base();
}

bool
Pipeline::willSerialize(const Inst &inst) const
{
    switch (inst.op) {
      case Opcode::Cpuid:
        return true;
      case Opcode::HfiEnter:
        return (inst.imm & 2) != 0;
      case Opcode::HfiExit:
        // A switch-on-exit exit is a register-bank swap, not a
        // serialization point (§4.5).
        return specState.hfi.enabled &&
               !specState.hfi.config.switchOnExit &&
               specState.hfi.config.isSerialized;
      case Opcode::HfiSetRegion:
      case Opcode::HfiClearRegion:
        // §4.3: region updates serialize inside a hybrid sandbox.
        return specState.hfi.enabled;
      case Opcode::Syscall:
        return specState.hfi.enabled && !specState.hfi.config.isHybrid &&
               specState.hfi.config.isSerialized;
      default:
        return false;
    }
}

std::uint64_t
Pipeline::allocateIssue(std::uint64_t earliest, const Inst &inst,
                        unsigned *unit_latency)
{
    std::vector<std::uint64_t> *units = &aluFree;
    unsigned latency = config_.aluLatency;
    std::uint64_t occupancy = 1; // fully pipelined by default
    switch (inst.op) {
      case Opcode::Mul:
        units = &mulFree;
        latency = config_.mulLatency;
        break;
      case Opcode::Div:
        units = &mulFree;
        latency = config_.divLatency;
        occupancy = config_.divLatency; // unpipelined divider
        break;
      case Opcode::Load:
      case Opcode::Store:
      case Opcode::HmovLoad:
      case Opcode::HmovStore:
        units = &memFree;
        latency = 1; // AGU cycle; cache latency added by the caller
        break;
      default:
        break;
    }

    std::uint64_t t = earliest;
    while (true) {
        // Issue-width limit this cycle?
        auto slot = issueSlots.find(t);
        if (slot != issueSlots.end() && slot->second >= config_.issueWidth) {
            ++t;
            continue;
        }
        // A free unit of the right kind?
        std::uint64_t *best = nullptr;
        for (std::uint64_t &free_at : *units) {
            if (free_at <= t && (!best || free_at < *best))
                best = &free_at;
        }
        if (!best) {
            std::uint64_t soonest = UINT64_MAX;
            for (std::uint64_t free_at : *units)
                soonest = std::min(soonest, free_at);
            t = std::max(t + 1, soonest);
            continue;
        }
        *best = t + occupancy;
        ++issueSlots[t];
        *unit_latency = latency;
        return t;
    }
}

void
Pipeline::fetchStage()
{
    if (fetchHalted || cycle < fetchStallUntil)
        return;

    unsigned budget = config_.fetchBytes;
    while (budget > 0 && decodeQueue.size() < config_.decodeQueueDepth) {
        const Inst *inst = program.fetch(fetchPc, &fetchHint_);
        if (!inst) {
            fetchHalted = true;
            return;
        }
        if (inst->length > budget)
            return;

        const CacheAccess ic = icache_.access(fetchPc);
        if (!ic.hit) {
            fetchStallUntil = cycle + ic.latency;
            return;
        }
        budget -= inst->length;
        // hmov's prefix is a length-changing prefix to the predecoder:
        // it costs extra predecode throughput (the Skylake LCP stall),
        // modeled as additional consumed fetch bytes.
        if (inst->op == Opcode::HmovLoad || inst->op == Opcode::HmovStore)
            budget -= std::min<unsigned>(budget, 3);

        // Predict the next fetch address.
        std::uint64_t next = fetchPc + inst->length;
        if (isConditionalBranch(inst->op)) {
            if (predictor_.predictDirection(fetchPc))
                next = inst->target;
        } else if (inst->op == Opcode::Jmp) {
            next = inst->target;
        } else if (inst->op == Opcode::Call) {
            predictor_.pushReturn(fetchPc + inst->length);
            next = inst->target;
        } else if (inst->op == Opcode::Ret) {
            next = predictor_.popReturn(); // 0 = unpredictable
        }

        decodeQueue.push_back({inst, fetchPc, next});
        ++stats_.fetched;
        fetchPc = next;
        if (next == 0) {
            // Unpredictable target: fetch stalls until resolution
            // redirects us.
            fetchHalted = true;
            return;
        }
    }
}

void
Pipeline::dispatchStage()
{
    unsigned budget = config_.decodeWidth;
    while (budget > 0 && !decodeQueue.empty() && !serializePending &&
           rob.size() < config_.robSize) {
        const FetchedInst f = decodeQueue.front();
        const Inst &inst = *f.inst;

        // Decode-stage code-region check (§4.1): out-of-region
        // instructions become faulting NOPs and never execute,
        // speculatively or otherwise.
        const core::CheckResult fetch_check =
            core::AccessChecker::checkFetch(specState.hfi, f.pc);
        if (!fetch_check.ok) {
            RobEntry e;
            e.inst = f.inst;
            e.pc = f.pc;
            e.seq = seqCounter++;
            e.predictedNext = f.predictedNext;
            e.info.faulted = true;
            e.info.faultReason = fetch_check.reason;
            e.info.nextPc = f.pc;
            e.completeCycle = cycle + 1;
            rob.push_back(e);
            decodeQueue.pop_front();
            --budget;
            ++stats_.dispatched;
            continue;
        }

        if (willSerialize(inst) && !rob.empty())
            break; // drain before a serializing instruction

        const bool is_load =
            inst.op == Opcode::Load || inst.op == Opcode::HmovLoad;
        const bool is_store =
            inst.op == Opcode::Store || inst.op == Opcode::HmovStore;
        if (is_load && loadsInFlight >= config_.lqSize)
            break;
        if (is_store && storeQueue.size() >= config_.sqSize)
            break;

        // Poison gating (§4.1): if any input register descends from a
        // faulted access, this instruction will never actually issue,
        // so its side effects (cache fills in particular) must not
        // happen and its destination stays poisoned.
        bool inputs_poisoned = false;
        {
            auto tainted = [&](unsigned reg) {
                inputs_poisoned = inputs_poisoned || poisoned[reg];
            };
            switch (inst.op) {
              case Opcode::Movi:
                break;
              case Opcode::Ret:
                tainted(kLinkReg);
                break;
              case Opcode::HmovLoad:
              case Opcode::HmovStore:
                if (inst.useIndex)
                    tainted(inst.rb);
                if (inst.op == Opcode::HmovStore)
                    tainted(inst.rd);
                break;
              case Opcode::Load:
              case Opcode::Store:
                tainted(inst.ra);
                if (inst.useIndex)
                    tainted(inst.rb);
                if (inst.op == Opcode::Store)
                    tainted(inst.rd);
                break;
              default:
                tainted(inst.ra);
                if (!inst.useImm)
                    tainted(inst.rb);
                break;
            }
        }

        const std::uint64_t seq = seqCounter++;
        SpecMemView view(*this, seq);
        const ExecInfo info =
            FunctionalCore::execute(inst, f.pc, specState, view);
#ifdef HFI_SIM_DEBUG_DCACHE
        if (inst.op == Opcode::HfiExit || inst.op == Opcode::HfiEnter ||
            (isMemory(inst.op) && info.memAddr >= 0x300000 &&
             info.memAddr < 0x301000)) {
            std::fprintf(stderr,
                         "dispatch %s pc=%#lx seq=%lu cycle=%lu hfi=%d "
                         "addr=%#lx faulted=%d\n",
                         opcodeName(inst.op), f.pc, seq, cycle,
                         (int)specState.hfi.enabled, info.memAddr,
                         (int)info.faulted);
        }
#endif

        RobEntry e;
        e.inst = f.inst;
        e.pc = f.pc;
        e.seq = seq;
        e.predictedNext = f.predictedNext;
        e.info = info;
        e.isLoad = is_load;
        e.isStore = is_store;
        if (is_load)
            ++loadsInFlight;

        // Source-operand readiness.
        std::uint64_t src_ready = cycle + 1;
        auto need = [&](unsigned reg) {
            src_ready = std::max(src_ready, regReadyAt[reg]);
        };
        switch (inst.op) {
          case Opcode::Movi:
            break;
          case Opcode::Ret:
            need(kLinkReg);
            break;
          case Opcode::HfiEnter:
            need(kExitHandlerReg);
            break;
          case Opcode::HmovLoad:
          case Opcode::HmovStore:
            if (inst.useIndex)
                need(inst.rb);
            if (inst.op == Opcode::HmovStore)
                need(inst.rd);
            break;
          case Opcode::Load:
          case Opcode::Store:
            need(inst.ra);
            if (inst.useIndex)
                need(inst.rb);
            if (inst.op == Opcode::Store)
                need(inst.rd);
            break;
          case Opcode::HfiSetRegion:
            need(inst.ra);
            need(inst.rb);
            break;
          default:
            need(inst.ra);
            if (!inst.useImm)
                need(inst.rb);
            break;
        }

        unsigned unit_latency = 1;
        const std::uint64_t issue_at =
            allocateIssue(src_ready, inst, &unit_latency);
        std::uint64_t latency = unit_latency;

        if (info.isMem && !info.faulted && !inputs_poisoned) {
            // dtb lookup and HFI check run in parallel (§4.2); the
            // dcache access proceeds — speculatively — because the
            // check passed.
            const TlbAccess t = dtb_.access(info.memAddr);
            if (is_load) {
                const CacheAccess c = dcache_.access(info.memAddr);
#ifdef HFI_SIM_DEBUG_DCACHE
                if (info.memAddr >= 0x200000 && info.memAddr < 0x220000) {
                    std::fprintf(stderr,
                                 "dcache load pc=%#lx seq=%lu addr=%#lx hfi=%d\n",
                                 e.pc, e.seq, info.memAddr,
                                 (int)specState.hfi.enabled);
                }
#endif
                latency = t.latency + c.latency;
            } else {
                latency = std::max(1u, t.latency);
            }
            if (specState.hfi.enabled)
                ++stats_.hfiDataChecks;
        } else if (info.isMem && inputs_poisoned && !info.faulted) {
            // The address descends from faulted data: the access never
            // issues, so neither the dcache nor the dtb observes it.
            latency = 1;
        } else if (info.isMem && info.faulted) {
            // §4.1: the failed check blocks the *data-cache* fill, but
            // the dtb may still observe the address; no data moves.
            if (info.memAddr)
                dtb_.access(info.memAddr);
            latency = 1;
        }

        // Un-lamination: a load/store that combines an index register
        // with a 32-bit displacement (the emulation's fixed-base form,
        // appendix A.2) splits into an address-generation µop plus the
        // memory µop — an extra issue slot and a periodic replay cycle.
        // hmov does not pay this: the region base comes from the region
        // register at register-read (§4.2).
        if ((inst.op == Opcode::Load || inst.op == Opcode::Store) &&
            inst.useIndex && (inst.imm > 0x7fff || inst.imm < -0x8000)) {
            ++issueSlots[issue_at]; // the companion AGU µop's slot
            latency += (seq & 3) == 0 ? 1 : 0; // periodic replay cycle
        }

        if (info.isFlush)
            dcache_.flush(info.memAddr);

        if (info.serializes) {
            latency += config_.serializeFlushCycles;
            serializePending = true;
            serializeSeq = seq;
            ++stats_.serializations;
        }

        e.completeCycle = issue_at + std::max<std::uint64_t>(latency, 1);

        // Destination readiness.
        const bool writes_rd =
            !info.faulted &&
            (inst.op == Opcode::Load || inst.op == Opcode::HmovLoad ||
             (!is_store && !isControl(inst.op) && inst.op != Opcode::Nop &&
              inst.op != Opcode::Halt && inst.op != Opcode::Syscall &&
              inst.op != Opcode::HfiEnter && inst.op != Opcode::HfiExit &&
              inst.op != Opcode::HfiSetRegion &&
              inst.op != Opcode::HfiClearRegion));
        if (writes_rd) {
            regReadyAt[inst.rd] = e.completeCycle;
            // Poison propagates through dataflow; a clean producer
            // clears it.
            poisoned[inst.rd] = inputs_poisoned;
        }
        if ((inst.op == Opcode::Load || inst.op == Opcode::HmovLoad) &&
            info.faulted) {
            poisoned[inst.rd] = true;
        }
        if (inst.op == Opcode::Call)
            regReadyAt[kLinkReg] = e.completeCycle;
        if (inst.op == Opcode::Cpuid) {
            regReadyAt[12] = e.completeCycle;
            regReadyAt[13] = e.completeCycle;
        }

        e.mispredicted = !info.faulted && info.nextPc != f.predictedNext;
        if (isControl(inst.op) || info.isSyscall || e.mispredicted ||
            f.predictedNext == 0) {
            e.hasSnapshot = true;
            e.snapshot = specState;
            e.regReadySnapshot = regReadyAt;
            e.poisonSnapshot = poisoned;
        }

        rob.push_back(e);
        decodeQueue.pop_front();
        // hmov's prefix byte behaves like a length-changing prefix in
        // the predecoder: it occupies an extra decode slot (the Skylake
        // LCP effect) — the µ-architectural cost behind §6.1's gobmk
        // observation, and one the compiler emulation cannot mimic.
        if (inst.op == Opcode::HmovLoad || inst.op == Opcode::HmovStore)
            budget -= budget > 1 ? 1 : 0;
        --budget;
        ++stats_.dispatched;
    }
}

void
Pipeline::squashAfter(std::size_t rob_index)
{
    const std::uint64_t boundary_seq = rob[rob_index].seq;
    for (std::size_t i = rob_index + 1; i < rob.size(); ++i) {
        ++stats_.squashed;
        if (rob[i].info.faulted)
            ++stats_.hfiFaultsSuppressed;
        if (rob[i].isLoad)
            --loadsInFlight;
    }
    rob.erase(rob.begin() + static_cast<std::ptrdiff_t>(rob_index) + 1,
              rob.end());
    while (!storeQueue.empty() && storeQueue.back().seq > boundary_seq)
        storeQueue.pop_back();
    if (serializePending && serializeSeq > boundary_seq)
        serializePending = false;
}

void
Pipeline::resolveStage()
{
    for (std::size_t i = 0; i < rob.size(); ++i) {
        RobEntry &e = rob[i];
        if (e.resolved || e.completeCycle > cycle)
            continue;
        e.resolved = true;

        if (e.inst && isConditionalBranch(e.inst->op) && !e.info.faulted)
            predictor_.updateDirection(e.pc, e.info.branchTaken);

        if (e.mispredicted) {
            ++stats_.mispredicts;
            predictor_.countMispredict();
            // Recover state and redirect fetch down the correct path.
            specState = e.snapshot;
            regReadyAt = e.regReadySnapshot;
            poisoned = e.poisonSnapshot;
            squashAfter(i);
            decodeQueue.clear();
            fetchPc = e.info.nextPc;
            fetchStallUntil = cycle + config_.redirectPenalty;
            fetchHalted = false;
            return;
        }
    }
}

void
Pipeline::commitStage(PipelineResult &result, bool *done)
{
    unsigned budget = config_.commitWidth;
    while (budget > 0 && !rob.empty()) {
        RobEntry &e = rob.front();
        if (e.completeCycle >= cycle || !e.resolved)
            break;

        if (e.info.faulted) {
            result.faulted = true;
            result.faultReason = e.info.faultReason;
            result.faultPc = e.pc;
            *done = true;
            return;
        }

        if (e.isStore && !storeQueue.empty() &&
            storeQueue.front().seq == e.seq) {
            const StoreEntry &s = storeQueue.front();
            mem.write(s.addr, s.value, s.width);
            dcache_.access(s.addr); // write-allocate at commit
            storeQueue.erase(storeQueue.begin());
        }
        if (e.isLoad)
            --loadsInFlight;

        if (serializePending && serializeSeq == e.seq)
            serializePending = false;

        const bool halted = e.info.halted;
        rob.pop_front();
        ++stats_.committed;
        --budget;

        if (halted) {
            result.halted = true;
            *done = true;
            return;
        }
    }
}

PipelineResult
Pipeline::run(std::uint64_t max_cycles)
{
    PipelineResult result;
    specState = archState;
    fetchPc = archState.pc;
    fetchHalted = false;
    fetchStallUntil = 0;

    bool done = false;
    while (!done && cycle < max_cycles) {
        commitStage(result, &done);
        if (done)
            break;
        resolveStage();
        dispatchStage();
        fetchStage();
        ++cycle;

        // Keep the issue-slot map from growing without bound.
        if ((cycle & 0xfff) == 0) {
            for (auto it = issueSlots.begin(); it != issueSlots.end();) {
                if (it->first + 8192 < cycle)
                    it = issueSlots.erase(it);
                else
                    ++it;
            }
        }

        if (fetchHalted && decodeQueue.empty() && rob.empty())
            break; // ran off the end of the program
    }

    result.cycles = cycle;
    result.instructions = stats_.committed;
    archState = specState;
    return result;
}

} // namespace hfi::sim
