/**
 * @file
 * A small fully-associative dTLB (the "dtb" of Figure 1).
 *
 * HFI's data-region checks run in parallel with the dtb lookup (§4.2),
 * and §4.1 notes that, unlike the data cache, dtb metadata *may* be
 * touched by an out-of-bounds address — the invariant is only that no
 * out-of-bounds *data* propagates. The pipeline model honours both: it
 * consults the TLB and the HFI checker in the same cycle, and it skips
 * the data-cache fill — but not the dtb fill — when the check fails.
 */

#ifndef HFI_SIM_TLB_H
#define HFI_SIM_TLB_H

#include <cstdint>
#include <vector>

namespace hfi::sim
{

/** TLB geometry + penalties. */
struct TlbConfig
{
    unsigned entries = 64;
    unsigned pageBits = 12;     ///< 4 KiB pages
    unsigned missLatency = 20;  ///< page-walk cycles
};

/** Result of a TLB lookup. */
struct TlbAccess
{
    bool hit = false;
    unsigned latency = 0; ///< extra cycles beyond the parallel lookup
};

class Tlb
{
  public:
    explicit Tlb(TlbConfig config = {});

    /** Translate: hit refreshes LRU, miss walks and fills. */
    TlbAccess access(std::uint64_t addr);

    bool contains(std::uint64_t addr) const;

    void flushAll();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    struct Entry
    {
        bool valid = false;
        std::uint64_t vpn = 0;
        std::uint64_t lruStamp = 0;
    };

    TlbConfig config_;
    std::vector<Entry> entries;
    std::uint64_t stamp = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;

    /**
     * MRU filter: the vpn of the previous access(). A repeat access is
     * a guaranteed hit whose entry already holds the youngest stamp, so
     * skipping the associative scan and the re-stamp is exact (same
     * argument as Cache::access's fast path).
     */
    std::uint64_t lastVpn_ = 0;
    bool lastVpnValid_ = false;
};

} // namespace hfi::sim

#endif // HFI_SIM_TLB_H
