#include "sim/tlb.h"

namespace hfi::sim
{

Tlb::Tlb(TlbConfig config) : config_(config), entries(config.entries)
{
}

TlbAccess
Tlb::access(std::uint64_t addr)
{
    const std::uint64_t vpn = addr >> config_.pageBits;
    if (lastVpnValid_ && vpn == lastVpn_) {
        ++hits_;
        return {true, 0};
    }
    Entry *lru = &entries[0];
    for (Entry &e : entries) {
        if (e.valid && e.vpn == vpn) {
            e.lruStamp = ++stamp;
            ++hits_;
            lastVpn_ = vpn;
            lastVpnValid_ = true;
            return {true, 0};
        }
        if (!e.valid || e.lruStamp < lru->lruStamp)
            lru = &e;
    }
    lru->valid = true;
    lru->vpn = vpn;
    lru->lruStamp = ++stamp;
    ++misses_;
    lastVpn_ = vpn;
    lastVpnValid_ = true;
    return {false, config_.missLatency};
}

bool
Tlb::contains(std::uint64_t addr) const
{
    const std::uint64_t vpn = addr >> config_.pageBits;
    for (const Entry &e : entries) {
        if (e.valid && e.vpn == vpn)
            return true;
    }
    return false;
}

void
Tlb::flushAll()
{
    for (Entry &e : entries)
        e.valid = false;
    lastVpnValid_ = false;
}

} // namespace hfi::sim
