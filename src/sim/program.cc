#include "sim/program.h"

#include <stdexcept>

namespace hfi::sim
{

namespace
{

/**
 * Predecode the static per-instruction facts the pipeline's dispatch
 * and fetch stages need. The masks replicate, register for register,
 * the per-opcode switches dispatch used to run per dynamic instance —
 * an OR over mask bits is exactly the old max/OR over the same
 * registers.
 */
MicroOp
decodeMicroOp(const Inst &inst)
{
    MicroOp u;
    const auto bit = [](unsigned reg) {
        return static_cast<std::uint16_t>(1u << reg);
    };

    // Poison-propagation sources (§4.1).
    switch (inst.op) {
      case Opcode::Movi:
        break;
      case Opcode::Ret:
        u.taintMask = bit(kLinkReg);
        break;
      case Opcode::HmovLoad:
      case Opcode::HmovStore:
        if (inst.useIndex)
            u.taintMask |= bit(inst.rb);
        if (inst.op == Opcode::HmovStore)
            u.taintMask |= bit(inst.rd);
        break;
      case Opcode::Load:
      case Opcode::Store:
        u.taintMask |= bit(inst.ra);
        if (inst.useIndex)
            u.taintMask |= bit(inst.rb);
        if (inst.op == Opcode::Store)
            u.taintMask |= bit(inst.rd);
        break;
      default:
        u.taintMask |= bit(inst.ra);
        if (!inst.useImm)
            u.taintMask |= bit(inst.rb);
        break;
    }

    // Scheduling sources: identical, except hfi_enter waits on the
    // exit-handler register and hfi_set_region on its descriptor pair.
    switch (inst.op) {
      case Opcode::HfiEnter:
        u.readyMask = bit(kExitHandlerReg);
        break;
      case Opcode::HfiSetRegion:
        u.readyMask = static_cast<std::uint16_t>(bit(inst.ra) | bit(inst.rb));
        break;
      default:
        u.readyMask = u.taintMask;
        break;
    }

    const bool is_load =
        inst.op == Opcode::Load || inst.op == Opcode::HmovLoad;
    const bool is_store =
        inst.op == Opcode::Store || inst.op == Opcode::HmovStore;
    if (is_load)
        u.flags |= MicroOp::kIsLoad;
    if (is_store)
        u.flags |= MicroOp::kIsStore;
    if (inst.op == Opcode::HmovLoad || inst.op == Opcode::HmovStore)
        u.flags |= MicroOp::kLcp;
    if ((inst.op == Opcode::Load || inst.op == Opcode::Store) &&
        inst.useIndex && (inst.imm > 0x7fff || inst.imm < -0x8000))
        u.flags |= MicroOp::kUnlaminated;
    if (is_load ||
        (!is_store && !isControl(inst.op) && inst.op != Opcode::Nop &&
         inst.op != Opcode::Halt && inst.op != Opcode::Syscall &&
         inst.op != Opcode::HfiEnter && inst.op != Opcode::HfiExit &&
         inst.op != Opcode::HfiSetRegion &&
         inst.op != Opcode::HfiClearRegion))
        u.flags |= MicroOp::kWritesRd;
    if (isControl(inst.op))
        u.flags |= MicroOp::kIsControl;

    switch (inst.op) {
      case Opcode::HfiEnter:
      case Opcode::HfiExit:
      case Opcode::HfiSetRegion:
      case Opcode::HfiClearRegion:
      case Opcode::Syscall:
        u.flags |= MicroOp::kBankOp;
        break;
      default:
        break;
    }

    switch (inst.op) {
      case Opcode::Mul:
        u.unit = MicroOp::kUnitMul;
        break;
      case Opcode::Div:
        u.unit = MicroOp::kUnitDiv;
        break;
      case Opcode::Load:
      case Opcode::Store:
      case Opcode::HmovLoad:
      case Opcode::HmovStore:
        u.unit = MicroOp::kUnitMem;
        break;
      default:
        break;
    }

    switch (inst.op) {
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
        u.ctrl = MicroOp::kCtrlCond;
        break;
      case Opcode::Jmp:
        u.ctrl = MicroOp::kCtrlJmp;
        break;
      case Opcode::Call:
        u.ctrl = MicroOp::kCtrlCall;
        break;
      case Opcode::Ret:
        u.ctrl = MicroOp::kCtrlRet;
        break;
      default:
        break;
    }
    return u;
}

} // namespace

Program::Program(std::uint64_t base, std::vector<Inst> instructions)
    : base_(base), insts(std::move(instructions))
{
    std::uint64_t at = base_;
    addrs.reserve(insts.size());
    for (std::size_t i = 0; i < insts.size(); ++i) {
        addrs.push_back(at);
        at += insts[i].length;
    }
    end_ = at;

    byOffset.assign(static_cast<std::size_t>(end_ - base_), -1);
    for (std::size_t i = 0; i < insts.size(); ++i)
        byOffset[static_cast<std::size_t>(addrs[i] - base_)] =
            static_cast<std::int32_t>(i);

    targetIdx.resize(insts.size());
    for (std::size_t i = 0; i < insts.size(); ++i) {
        const std::size_t t = indexAt(insts[i].target);
        targetIdx[i] = t == kNoInst ? -1 : static_cast<std::int32_t>(t);
    }

    uops.reserve(insts.size());
    for (const Inst &inst : insts)
        uops.push_back(decodeMicroOp(inst));
}

ProgramBuilder &
ProgramBuilder::label(const std::string &name)
{
    if (labels.count(name))
        throw std::logic_error("duplicate label: " + name);
    labels[name] = insts.size();
    return *this;
}

std::size_t
ProgramBuilder::emit(Inst inst)
{
    if (inst.length == 0)
        inst.length = defaultLength(inst);
    insts.push_back(inst);
    return insts.size() - 1;
}

ProgramBuilder &
ProgramBuilder::alu(Opcode op, unsigned rd, unsigned ra, unsigned rb)
{
    Inst inst;
    inst.op = op;
    inst.rd = static_cast<std::uint8_t>(rd);
    inst.ra = static_cast<std::uint8_t>(ra);
    inst.rb = static_cast<std::uint8_t>(rb);
    inst.length = defaultLength(inst);
    emit(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::alui(Opcode op, unsigned rd, unsigned ra, std::int64_t imm)
{
    Inst inst;
    inst.op = op;
    inst.rd = static_cast<std::uint8_t>(rd);
    inst.ra = static_cast<std::uint8_t>(ra);
    inst.useImm = true;
    inst.imm = imm;
    inst.length = defaultLength(inst);
    emit(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::movi(unsigned rd, std::int64_t value)
{
    Inst inst;
    inst.op = Opcode::Movi;
    inst.rd = static_cast<std::uint8_t>(rd);
    inst.useImm = true;
    inst.imm = value;
    inst.length = defaultLength(inst);
    emit(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::mov(unsigned rd, unsigned ra)
{
    return alu(Opcode::Mov, rd, ra, 0);
}

ProgramBuilder &
ProgramBuilder::add(unsigned rd, unsigned ra, unsigned rb)
{
    return alu(Opcode::Add, rd, ra, rb);
}

ProgramBuilder &
ProgramBuilder::addi(unsigned rd, unsigned ra, std::int64_t imm)
{
    return alui(Opcode::Add, rd, ra, imm);
}

ProgramBuilder &
ProgramBuilder::sub(unsigned rd, unsigned ra, unsigned rb)
{
    return alu(Opcode::Sub, rd, ra, rb);
}

ProgramBuilder &
ProgramBuilder::subi(unsigned rd, unsigned ra, std::int64_t imm)
{
    return alui(Opcode::Sub, rd, ra, imm);
}

ProgramBuilder &
ProgramBuilder::mul(unsigned rd, unsigned ra, unsigned rb)
{
    return alu(Opcode::Mul, rd, ra, rb);
}

ProgramBuilder &
ProgramBuilder::andi(unsigned rd, unsigned ra, std::int64_t imm)
{
    return alui(Opcode::And, rd, ra, imm);
}

ProgramBuilder &
ProgramBuilder::and_(unsigned rd, unsigned ra, unsigned rb)
{
    return alu(Opcode::And, rd, ra, rb);
}

ProgramBuilder &
ProgramBuilder::xor_(unsigned rd, unsigned ra, unsigned rb)
{
    return alu(Opcode::Xor, rd, ra, rb);
}

ProgramBuilder &
ProgramBuilder::or_(unsigned rd, unsigned ra, unsigned rb)
{
    return alu(Opcode::Or, rd, ra, rb);
}

ProgramBuilder &
ProgramBuilder::shli(unsigned rd, unsigned ra, std::int64_t imm)
{
    return alui(Opcode::Shl, rd, ra, imm);
}

ProgramBuilder &
ProgramBuilder::shri(unsigned rd, unsigned ra, std::int64_t imm)
{
    return alui(Opcode::Shr, rd, ra, imm);
}

ProgramBuilder &
ProgramBuilder::load(unsigned rd, unsigned ra, std::int64_t imm,
                     unsigned width)
{
    Inst inst;
    inst.op = Opcode::Load;
    inst.rd = static_cast<std::uint8_t>(rd);
    inst.ra = static_cast<std::uint8_t>(ra);
    inst.imm = imm;
    inst.width = static_cast<std::uint8_t>(width);
    inst.length = defaultLength(inst);
    emit(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::store(unsigned rs, unsigned ra, std::int64_t imm,
                      unsigned width)
{
    Inst inst;
    inst.op = Opcode::Store;
    inst.rd = static_cast<std::uint8_t>(rs);
    inst.ra = static_cast<std::uint8_t>(ra);
    inst.imm = imm;
    inst.width = static_cast<std::uint8_t>(width);
    inst.length = defaultLength(inst);
    emit(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::loadIndexed(unsigned rd, unsigned ra, unsigned rb,
                            unsigned scale, std::int64_t imm, unsigned width)
{
    Inst inst;
    inst.op = Opcode::Load;
    inst.rd = static_cast<std::uint8_t>(rd);
    inst.ra = static_cast<std::uint8_t>(ra);
    inst.rb = static_cast<std::uint8_t>(rb);
    inst.useIndex = true;
    inst.scale = static_cast<std::uint8_t>(scale);
    inst.imm = imm;
    inst.width = static_cast<std::uint8_t>(width);
    inst.length = defaultLength(inst);
    emit(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::hmovLoad(unsigned region, unsigned rd, unsigned rb,
                         unsigned scale, std::int64_t imm, unsigned width)
{
    Inst inst;
    inst.op = Opcode::HmovLoad;
    inst.rd = static_cast<std::uint8_t>(rd);
    inst.rb = static_cast<std::uint8_t>(rb);
    inst.useIndex = true;
    inst.scale = static_cast<std::uint8_t>(scale);
    inst.imm = imm;
    inst.width = static_cast<std::uint8_t>(width);
    inst.region = static_cast<std::uint8_t>(region);
    inst.length = defaultLength(inst);
    emit(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::hmovStore(unsigned region, unsigned rs, unsigned rb,
                          unsigned scale, std::int64_t imm, unsigned width)
{
    Inst inst;
    inst.op = Opcode::HmovStore;
    inst.rd = static_cast<std::uint8_t>(rs);
    inst.rb = static_cast<std::uint8_t>(rb);
    inst.useIndex = true;
    inst.scale = static_cast<std::uint8_t>(scale);
    inst.imm = imm;
    inst.width = static_cast<std::uint8_t>(width);
    inst.region = static_cast<std::uint8_t>(region);
    inst.length = defaultLength(inst);
    emit(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::branch(Opcode op, unsigned ra, unsigned rb,
                       const std::string &to)
{
    Inst inst;
    inst.op = op;
    inst.ra = static_cast<std::uint8_t>(ra);
    inst.rb = static_cast<std::uint8_t>(rb);
    inst.length = defaultLength(inst);
    fixups.emplace_back(emit(inst), to);
    return *this;
}

ProgramBuilder &
ProgramBuilder::beq(unsigned ra, unsigned rb, const std::string &to)
{
    return branch(Opcode::Beq, ra, rb, to);
}

ProgramBuilder &
ProgramBuilder::bne(unsigned ra, unsigned rb, const std::string &to)
{
    return branch(Opcode::Bne, ra, rb, to);
}

ProgramBuilder &
ProgramBuilder::blt(unsigned ra, unsigned rb, const std::string &to)
{
    return branch(Opcode::Blt, ra, rb, to);
}

ProgramBuilder &
ProgramBuilder::bge(unsigned ra, unsigned rb, const std::string &to)
{
    return branch(Opcode::Bge, ra, rb, to);
}

ProgramBuilder &
ProgramBuilder::jmp(const std::string &to)
{
    return branch(Opcode::Jmp, 0, 0, to);
}

ProgramBuilder &
ProgramBuilder::call(const std::string &to)
{
    return branch(Opcode::Call, 0, 0, to);
}

ProgramBuilder &
ProgramBuilder::ret()
{
    Inst inst;
    inst.op = Opcode::Ret;
    inst.length = defaultLength(inst);
    emit(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::syscall(std::int64_t nr)
{
    Inst inst;
    inst.op = Opcode::Syscall;
    inst.useImm = true;
    inst.imm = nr;
    inst.length = defaultLength(inst);
    emit(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::cpuid()
{
    Inst inst;
    inst.op = Opcode::Cpuid;
    inst.length = defaultLength(inst);
    emit(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::hfiEnter(bool hybrid, bool serialized, bool switch_on_exit)
{
    Inst inst;
    inst.op = Opcode::HfiEnter;
    inst.imm = (hybrid ? 1 : 0) | (serialized ? 2 : 0) |
               (switch_on_exit ? 4 : 0);
    inst.length = defaultLength(inst);
    emit(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::hfiExit()
{
    Inst inst;
    inst.op = Opcode::HfiExit;
    inst.length = defaultLength(inst);
    emit(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::hfiSetRegion(unsigned region, unsigned ra, unsigned rb,
                             std::int64_t perms)
{
    Inst inst;
    inst.op = Opcode::HfiSetRegion;
    inst.ra = static_cast<std::uint8_t>(ra);
    inst.rb = static_cast<std::uint8_t>(rb);
    inst.imm = perms;
    inst.region = static_cast<std::uint8_t>(region);
    inst.length = defaultLength(inst);
    emit(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::flush(unsigned ra, std::int64_t imm)
{
    Inst inst;
    inst.op = Opcode::Flush;
    inst.ra = static_cast<std::uint8_t>(ra);
    inst.imm = imm;
    inst.length = defaultLength(inst);
    emit(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::halt()
{
    Inst inst;
    inst.op = Opcode::Halt;
    inst.length = defaultLength(inst);
    emit(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::nop()
{
    Inst inst;
    inst.op = Opcode::Nop;
    inst.length = defaultLength(inst);
    emit(inst);
    return *this;
}

Program
ProgramBuilder::build()
{
    // First pass: compute addresses.
    std::vector<std::uint64_t> addrs(insts.size() + 1);
    std::uint64_t at = codeBase;
    for (std::size_t i = 0; i < insts.size(); ++i) {
        addrs[i] = at;
        at += insts[i].length;
    }
    addrs[insts.size()] = at;

    // Resolve label fixups to byte addresses.
    for (const auto &[index, name] : fixups) {
        const auto it = labels.find(name);
        if (it == labels.end())
            throw std::logic_error(
                "undefined label: " + name + " (referenced by instruction " +
                std::to_string(index) + ", " + opcodeName(insts[index].op) +
                ")");
        insts[index].target = addrs[it->second];
    }
    return Program(codeBase, insts);
}

} // namespace hfi::sim
