#include "sim/cache.h"

#include <bit>

namespace hfi::sim
{

Cache::Cache(CacheConfig config)
    : config_(config),
      sets(static_cast<unsigned>(config.sizeBytes /
                                 (config.ways * config.lineBytes))),
      lines(static_cast<std::size_t>(sets) * config.ways)
{
    if (std::has_single_bit(config_.lineBytes) && std::has_single_bit(sets)) {
        pow2_ = true;
        lineShift_ = static_cast<unsigned>(std::countr_zero(config_.lineBytes));
        setShift_ = static_cast<unsigned>(std::countr_zero(sets));
    }
}

CacheAccess
Cache::access(std::uint64_t addr)
{
    const std::uint64_t line = lineFor(addr);
    if (lastLineValid_ && line == lastLine_) {
        ++hits_;
        return {true, config_.hitLatency};
    }

    const unsigned set = setOf(line);
    const std::uint64_t tag = tagOf(line);
    Line *entry = &lines[static_cast<std::size_t>(set) * config_.ways];

    Line *lru = entry;
    for (unsigned w = 0; w < config_.ways; ++w) {
        Line &way = entry[w];
        if (way.valid && way.tag == tag) {
            way.lruStamp = ++stamp;
            ++hits_;
            lastLine_ = line;
            lastLineValid_ = true;
            return {true, config_.hitLatency};
        }
        if (!way.valid || way.lruStamp < lru->lruStamp)
            lru = &way;
    }

    // Miss: fill into the LRU way.
    lru->valid = true;
    lru->tag = tag;
    lru->lruStamp = ++stamp;
    ++misses_;
    lastLine_ = line;
    lastLineValid_ = true;
    return {false, config_.missLatency};
}

CacheAccess
Cache::probe(std::uint64_t addr) const
{
    return contains(addr) ? CacheAccess{true, config_.hitLatency}
                          : CacheAccess{false, config_.missLatency};
}

bool
Cache::contains(std::uint64_t addr) const
{
    const std::uint64_t line = lineFor(addr);
    const unsigned set = setOf(line);
    const std::uint64_t tag = tagOf(line);
    const Line *entry = &lines[static_cast<std::size_t>(set) * config_.ways];
    for (unsigned w = 0; w < config_.ways; ++w) {
        if (entry[w].valid && entry[w].tag == tag)
            return true;
    }
    return false;
}

void
Cache::flush(std::uint64_t addr)
{
    const std::uint64_t line = lineFor(addr);
    const unsigned set = setOf(line);
    const std::uint64_t tag = tagOf(line);
    Line *entry = &lines[static_cast<std::size_t>(set) * config_.ways];
    for (unsigned w = 0; w < config_.ways; ++w) {
        if (entry[w].valid && entry[w].tag == tag)
            entry[w].valid = false;
    }
    lastLineValid_ = false;
}

void
Cache::flushAll()
{
    for (Line &line : lines)
        line.valid = false;
    lastLineValid_ = false;
}

} // namespace hfi::sim
