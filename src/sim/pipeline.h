/**
 * @file
 * The cycle-level out-of-order core — our stand-in for the paper's gem5
 * Skylake model (§5.2, Table 2), with the HFI µ-architecture of §4.
 *
 * Model summary:
 *
 *  - Fetch follows branch prediction (2-bit PHT direction, RSB returns)
 *    at 16 bytes/cycle through the icache; variable instruction lengths
 *    make hmov's prefix byte cost real fetch bandwidth.
 *  - Instructions execute *functionally at dispatch* against a
 *    speculative ArchState (wrong-path instructions therefore compute
 *    with real values — required for the Spectre experiments), while
 *    issue/complete timing is modeled with a scoreboard over the ROB,
 *    issue-width and functional-unit constraints, and load latencies
 *    from the dtb + dcache.
 *  - Speculative loads access (and fill) the dcache — *unless* their
 *    HFI region check failed, in which case the access is turned into
 *    a faulting NOP that touches no cache state (§4.1); the dtb may
 *    still be touched, matching the paper's weaker i-cache/dtb
 *    invariant.
 *  - Speculative stores sit in the store queue and drain to memory at
 *    commit; younger loads forward from them byte-wise.
 *  - A mispredicted branch squashes younger entries at resolution,
 *    restores the register/HFI state snapshot taken at the branch, and
 *    redirects fetch after a refill penalty.
 *  - Serializing instructions (cpuid, serialized hfi_enter/hfi_exit,
 *    region updates inside a hybrid sandbox) drain the ROB before
 *    dispatch and add a flush cost — §3.4's 30-60-cycle price.
 *
 * Two run loops share the stage functions: runReference() ticks every
 * cycle literally, run() skips provably idle cycles by advancing the
 * clock to the next event (earliest completion, commit eligibility, or
 * fetch-stall expiry). The two are cycle-for-cycle identical — the
 * parity tests cross-validate them over the whole kernel suite.
 */

#ifndef HFI_SIM_PIPELINE_H
#define HFI_SIM_PIPELINE_H

#include <array>
#include <cstdint>
#include <vector>

#include "obs/obs_gate.h"
#include "sim/branch_predictor.h"
#include "sim/cache.h"
#include "sim/cpu_config.h"
#include "sim/functional.h"
#include "sim/memory.h"
#include "sim/program.h"
#include "sim/tlb.h"

namespace hfi::sim
{

/** Outcome of a pipeline run. */
struct PipelineResult
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0; ///< committed
    bool halted = false;            ///< reached Halt / exit_group
    bool faulted = false;
    core::ExitReason faultReason = core::ExitReason::None;
    std::uint64_t faultPc = 0;
};

/**
 * Cycle-breakdown profile of the event-driven loop: how many cycles ran
 * the stage functions versus were proven quiet and skipped, and which
 * wake-up source each skip landed on. The event-driven core computes
 * the attribution anyway (the min over commit-eligibility, the next
 * resolution, and the fetch-stall expiry); this records instead of
 * discarding it. Counters only — modeled cycles are untouched, and the
 * whole thing compiles away under HFI_OBS=OFF.
 */
struct PipelineProfile
{
    std::uint64_t activeCycles = 0;  ///< cycles the stage loop executed
    std::uint64_t skippedCycles = 0; ///< quiet cycles jumped over
    std::uint64_t skipsToCommit = 0; ///< skips woken by a commit-eligible ROB front
    std::uint64_t skipsToResolve = 0; ///< skips woken by the next resolution
    std::uint64_t skipsToFetch = 0;   ///< skips woken by fetch-stall expiry
};

/** Microarchitectural event counters. */
struct PipelineStats
{
    std::uint64_t fetched = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t committed = 0;
    std::uint64_t squashed = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t serializations = 0;
    std::uint64_t hfiDataChecks = 0;
    std::uint64_t hfiFaultsSuppressed = 0; ///< wrong-path faults squashed
};

class Pipeline
{
  public:
    /** The program is copied: the pipeline owns its code image. */
    explicit Pipeline(Program program, CpuConfig config = {});

    /** Architectural input state (set registers before run()). */
    ArchState &state() { return archState; }

    SimMemory &memory() { return mem; }

    /**
     * Run until Halt, a committed fault, or @p max_cycles.
     *
     * Event-driven: cycles in which no stage can act are skipped by
     * advancing the clock straight to the next event. Cycle-for-cycle
     * identical to runReference().
     */
    PipelineResult run(std::uint64_t max_cycles = 1'000'000'000);

    /**
     * The literal one-tick-per-cycle loop over the same stage
     * functions — the timing reference run() is validated against.
     */
    PipelineResult runReference(std::uint64_t max_cycles = 1'000'000'000);

    Cache &dcache() { return dcache_; }
    Cache &icache() { return icache_; }
    Tlb &dtb() { return dtb_; }
    BranchPredictor &predictor() { return predictor_; }
    const PipelineStats &stats() const { return stats_; }
    const CpuConfig &config() const { return config_; }

    /** Cycle breakdown of the last run() (all zero under HFI_OBS=OFF
        or after runReference(), which has no skips to attribute). */
    const PipelineProfile &profile() const { return profile_; }

  private:
    struct StoreEntry
    {
        std::uint64_t seq = 0;
        std::uint64_t addr = 0;
        std::uint64_t value = 0;
        std::uint8_t width = 0;
    };

    /**
     * One in-flight instruction. Recovery snapshots live out-of-line in
     * `snapshots_`, indexed by ROB slot: inlining the two HFI register
     * banks here made every entry ~1.7 KB, and the per-cycle resolve
     * scan a walk over hundreds of KB.
     */
    struct RobEntry
    {
        const Inst *inst = nullptr;
        std::uint64_t pc = 0;
        std::uint64_t seq = 0;
        std::uint64_t predictedNext = 0;
        std::uint64_t completeCycle = 0;
        ExecInfo info{};
        bool mispredicted = false;
        bool resolved = false;
        bool isLoad = false;
        bool isStore = false;
        bool condBranch = false;
    };

    /**
     * Redirect-recovery state, one slot per ROB slot. Only written for
     * mispredicted entries — the resolve stage restores exclusively at
     * a mispredict, so other entries' snapshots would never be read.
     */
    struct Snapshot
    {
        ArchState state{};
        std::array<std::uint64_t, kNumRegs> regReady{};
        std::uint16_t poison = 0;
    };

    /**
     * Memory view that buffers stores in the store queue. Non-virtual:
     * dispatch instantiates FunctionalCore::executeOn<SpecMemView>
     * directly, so the whole instruction dispatch inlines.
     */
    class SpecMemView
    {
      public:
        SpecMemView(Pipeline &pipe, std::uint64_t seq)
            : pipe(pipe), seq(seq)
        {
        }

        std::uint64_t load(std::uint64_t addr, unsigned width);
        void store(std::uint64_t addr, std::uint64_t value, unsigned width);

      private:
        Pipeline &pipe;
        std::uint64_t seq;
    };

    struct FetchedInst
    {
        const Inst *inst = nullptr;
        std::uint32_t index = 0; ///< instruction index (µop table key)
        std::uint64_t pc = 0;
        std::uint64_t predictedNext = 0;
    };

    /** One slot of the cycle-indexed issue-counter ring. */
    struct IssueSlot
    {
        std::uint64_t cycle = ~0ull;
        unsigned count = 0;
    };

    /** Reference to an in-flight entry awaiting resolution. */
    struct ResolveRef
    {
        std::uint64_t seq = 0;  ///< disambiguates a reused ROB slot
        std::uint32_t slot = 0; ///< physical ROB slot
    };

    /**
     * One slot of the completion-cycle calendar. A bucket is live iff
     * its epoch equals the probed cycle; append resets a stale bucket,
     * so vectors are recycled across ring wraps without deallocating.
     */
    struct ResolveBucket
    {
        std::uint64_t epoch = ~0ull;
        std::vector<ResolveRef> refs;
    };

    void commitStage(PipelineResult &result, bool *done);
    void resolveStage();
    void dispatchStage();
    void fetchStage();

    template <bool EventDriven>
    PipelineResult runLoop(std::uint64_t max_cycles);

    /** True when no stage can change any modeled state this cycle. */
    bool quietCycle();

    /** Next cycle at which some stage becomes able to act, UINT64_MAX
     *  when the machine is permanently idle. Valid only when quiet.
     *  @p source_out (may be null) receives which wake-up source won
     *  the min: 0 commit-eligible front, 1 next resolution, 2 fetch-
     *  stall expiry, 3 none (frozen machine). */
    std::uint64_t nextEventCycle(unsigned *source_out = nullptr) const;

    /** Would dispatching @p inst under @p state serialize? */
    bool willSerialize(const Inst &inst) const;

    /** Earliest issue cycle respecting slots + a unit of @p uop's kind. */
    std::uint64_t allocateIssue(std::uint64_t earliest, const MicroOp &uop,
                                unsigned *unit_latency);
    unsigned issueCountAt(std::uint64_t t) const;
    void issueBump(std::uint64_t t);
    void growIssueRing(std::uint64_t t);

    void squashAfter(std::size_t rob_index);

    /** File @p slot (holding @p seq) for resolution at cycle @p at. */
    void appendResolve(std::uint64_t at, std::uint32_t slot,
                       std::uint64_t seq);
    void growResolveRing(std::uint64_t at);

    /** True iff this cycle's calendar bucket holds a live entry. */
    bool hasDueResolve() const;

    /** Is physical ROB slot @p slot currently occupied? */
    bool robSlotLive(std::size_t slot) const
    {
        return ((slot - robHead_) & robMask_) < robCount_;
    }

    /** Cached fetchCoversProgram verdict (recomputed when dirty). */
    bool fetchCheckElidable();

    // Ring-buffer accessors: logical position i -> physical slot.
    // Capacities are powers of two >= the configured depths; occupancy
    // is tracked by explicit counts, so full == capacity is fine.
    std::size_t robSlot(std::size_t i) const
    {
        return (robHead_ + i) & robMask_;
    }
    RobEntry &robAt(std::size_t i) { return rob_[robSlot(i)]; }
    const RobEntry &robAt(std::size_t i) const { return rob_[robSlot(i)]; }
    StoreEntry &storeAt(std::size_t i)
    {
        return stores_[(storeHead_ + i) & storeMask_];
    }
    const StoreEntry &storeAt(std::size_t i) const
    {
        return stores_[(storeHead_ + i) & storeMask_];
    }
    FetchedInst &decodeAt(std::size_t i)
    {
        return decode_[(decodeHead_ + i) & decodeMask_];
    }
    const FetchedInst &decodeAt(std::size_t i) const
    {
        return decode_[(decodeHead_ + i) & decodeMask_];
    }
    void popDecodeFront()
    {
        decodeHead_ = (decodeHead_ + 1) & decodeMask_;
        --decodeCount_;
    }

    Program program;
    CpuConfig config_;

    SimMemory mem;
    ArchState archState;  ///< committed architectural state (regs lazily
                          ///< tracked via specState; used at recovery end)
    ArchState specState;  ///< dispatch-time speculative state

    Cache icache_;
    Cache dcache_;
    Tlb dtb_;
    BranchPredictor predictor_;

    // Fixed ring buffers (replacing std::deque/std::vector churn).
    std::vector<FetchedInst> decode_;
    std::size_t decodeHead_ = 0;
    std::size_t decodeCount_ = 0;
    std::size_t decodeMask_ = 0;

    std::vector<RobEntry> rob_;
    std::vector<Snapshot> snapshots_; ///< parallel to rob_ slots
    /**
     * Per-ROB-slot completion cycle while unresolved, UINT64_MAX once
     * resolved. Validates calendar refs and feeds nextEventCycle().
     */
    std::vector<std::uint64_t> resolveAt_;
    std::size_t robHead_ = 0;
    std::size_t robCount_ = 0;
    std::size_t robMask_ = 0;

    std::vector<StoreEntry> stores_; ///< uncommitted stores, seq order
    std::size_t storeHead_ = 0;
    std::size_t storeCount_ = 0;
    std::size_t storeMask_ = 0;

    unsigned loadsInFlight = 0;

    std::array<std::uint64_t, kNumRegs> regReadyAt{};
    /**
     * Poison bits (one per register): set when a register's producer
     * was an HFI-faulting access (the faulting NOP of §4.1). Dependent
     * memory operations are denied their cache access — no
     * secret-derived address ever reaches the dcache, which is the
     * no-propagation invariant the Spectre tests assert.
     */
    std::uint16_t poisonMask_ = 0;

    std::vector<std::uint64_t> aluFree, mulFree, memFree;
    /**
     * Cycle-indexed ring of issue counters (replaces the old
     * unordered_map + periodic GC sweep). A slot is live iff its stored
     * cycle matches the probed one; stale slots read as zero. Live
     * cycles all lie in (cycle, cycle + ring size) — issueBump grows
     * the ring if a bump would land outside that window — so two live
     * cycles can never alias.
     */
    std::vector<IssueSlot> issueRing_;
    std::uint64_t issueMask_ = 0;

    /**
     * Calendar queue over completion cycles: dispatch files each entry
     * in the bucket of its completion cycle, and the resolve stage
     * drains exactly the current cycle's bucket instead of scanning the
     * whole ROB. Entries squashed after filing are skipped lazily (the
     * seq + occupancy check in resolveStage). Bucket order is dispatch
     * order, i.e. program order — the same order the full ROB scan
     * visited due entries in.
     */
    std::vector<ResolveBucket> resolveBuckets_;
    std::uint64_t resolveBucketMask_ = 0;

    /** Cached fetchCoversProgram verdict + its dirty bit (set after any
     *  dispatch that can touch the bank, recovery, and run start). */
    bool fetchCheckUniform_ = false;
    bool fetchCheckDirty_ = true;

    std::uint64_t cycle = 0;
    std::uint64_t seqCounter = 0;
    std::uint64_t fetchPc = 0;
    /** Sequential hint for Program::fetchIndex; self-corrects on
     *  redirects. */
    std::size_t fetchHint_ = 0;
    std::uint64_t fetchStallUntil = 0;
    bool fetchHalted = false;
    bool serializePending = false;
    std::uint64_t serializeSeq = 0;

    PipelineStats stats_;
    PipelineProfile profile_;
};

} // namespace hfi::sim

#endif // HFI_SIM_PIPELINE_H
