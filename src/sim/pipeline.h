/**
 * @file
 * The cycle-level out-of-order core — our stand-in for the paper's gem5
 * Skylake model (§5.2, Table 2), with the HFI µ-architecture of §4.
 *
 * Model summary:
 *
 *  - Fetch follows branch prediction (2-bit PHT direction, RSB returns)
 *    at 16 bytes/cycle through the icache; variable instruction lengths
 *    make hmov's prefix byte cost real fetch bandwidth.
 *  - Instructions execute *functionally at dispatch* against a
 *    speculative ArchState (wrong-path instructions therefore compute
 *    with real values — required for the Spectre experiments), while
 *    issue/complete timing is modeled with a scoreboard over the ROB,
 *    issue-width and functional-unit constraints, and load latencies
 *    from the dtb + dcache.
 *  - Speculative loads access (and fill) the dcache — *unless* their
 *    HFI region check failed, in which case the access is turned into
 *    a faulting NOP that touches no cache state (§4.1); the dtb may
 *    still be touched, matching the paper's weaker i-cache/dtb
 *    invariant.
 *  - Speculative stores sit in the store queue and drain to memory at
 *    commit; younger loads forward from them byte-wise.
 *  - A mispredicted branch squashes younger entries at resolution,
 *    restores the register/HFI state snapshot taken at the branch, and
 *    redirects fetch after a refill penalty.
 *  - Serializing instructions (cpuid, serialized hfi_enter/hfi_exit,
 *    region updates inside a hybrid sandbox) drain the ROB before
 *    dispatch and add a flush cost — §3.4's 30-60-cycle price.
 */

#ifndef HFI_SIM_PIPELINE_H
#define HFI_SIM_PIPELINE_H

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/branch_predictor.h"
#include "sim/cache.h"
#include "sim/cpu_config.h"
#include "sim/functional.h"
#include "sim/memory.h"
#include "sim/program.h"
#include "sim/tlb.h"

namespace hfi::sim
{

/** Outcome of a pipeline run. */
struct PipelineResult
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0; ///< committed
    bool halted = false;            ///< reached Halt / exit_group
    bool faulted = false;
    core::ExitReason faultReason = core::ExitReason::None;
    std::uint64_t faultPc = 0;
};

/** Microarchitectural event counters. */
struct PipelineStats
{
    std::uint64_t fetched = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t committed = 0;
    std::uint64_t squashed = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t serializations = 0;
    std::uint64_t hfiDataChecks = 0;
    std::uint64_t hfiFaultsSuppressed = 0; ///< wrong-path faults squashed
};

class Pipeline
{
  public:
    /** The program is copied: the pipeline owns its code image. */
    explicit Pipeline(Program program, CpuConfig config = {});

    /** Architectural input state (set registers before run()). */
    ArchState &state() { return archState; }

    SimMemory &memory() { return mem; }

    /** Run until Halt, a committed fault, or @p max_cycles. */
    PipelineResult run(std::uint64_t max_cycles = 1'000'000'000);

    Cache &dcache() { return dcache_; }
    Cache &icache() { return icache_; }
    Tlb &dtb() { return dtb_; }
    BranchPredictor &predictor() { return predictor_; }
    const PipelineStats &stats() const { return stats_; }
    const CpuConfig &config() const { return config_; }

  private:
    struct StoreEntry
    {
        std::uint64_t seq;
        std::uint64_t addr;
        std::uint64_t value;
        std::uint8_t width;
    };

    struct RobEntry
    {
        const Inst *inst = nullptr;
        std::uint64_t pc = 0;
        std::uint64_t seq = 0;
        std::uint64_t predictedNext = 0;
        ExecInfo info{};
        bool mispredicted = false;
        bool resolved = false;
        bool isLoad = false;
        bool isStore = false;
        std::uint64_t completeCycle = 0;
        /** Recovery snapshots, kept only on redirect-capable entries. */
        bool hasSnapshot = false;
        ArchState snapshot{};
        std::array<std::uint64_t, kNumRegs> regReadySnapshot{};
        std::array<bool, kNumRegs> poisonSnapshot{};
    };

    /** MemView that buffers stores in the store queue. */
    class SpecMemView : public MemView
    {
      public:
        SpecMemView(Pipeline &pipe, std::uint64_t seq)
            : pipe(pipe), seq(seq)
        {
        }

        std::uint64_t load(std::uint64_t addr, unsigned width) override;
        void store(std::uint64_t addr, std::uint64_t value,
                   unsigned width) override;

      private:
        Pipeline &pipe;
        std::uint64_t seq;
    };

    struct FetchedInst
    {
        const Inst *inst;
        std::uint64_t pc;
        std::uint64_t predictedNext;
    };

    void commitStage(PipelineResult &result, bool *done);
    void resolveStage();
    void dispatchStage();
    void fetchStage();

    /** Would dispatching @p inst under @p state serialize? */
    bool willSerialize(const Inst &inst) const;

    /** Earliest issue cycle respecting slots + a unit of @p kind. */
    std::uint64_t allocateIssue(std::uint64_t earliest, const Inst &inst,
                                unsigned *unit_latency);

    void squashAfter(std::size_t rob_index);

    Program program;
    CpuConfig config_;

    SimMemory mem;
    ArchState archState;  ///< committed architectural state (regs lazily
                          ///< tracked via specState; used at recovery end)
    ArchState specState;  ///< dispatch-time speculative state

    Cache icache_;
    Cache dcache_;
    Tlb dtb_;
    BranchPredictor predictor_;

    std::deque<FetchedInst> decodeQueue;
    std::deque<RobEntry> rob;
    std::vector<StoreEntry> storeQueue; ///< uncommitted stores, seq order
    unsigned loadsInFlight = 0;

    std::array<std::uint64_t, kNumRegs> regReadyAt{};
    /**
     * Poison bits: set when a register's producer was an HFI-faulting
     * access (the faulting NOP of §4.1). Dependent memory operations
     * are denied their cache access — no secret-derived address ever
     * reaches the dcache, which is the no-propagation invariant the
     * Spectre tests assert.
     */
    std::array<bool, kNumRegs> poisoned{};
    std::vector<std::uint64_t> aluFree, mulFree, memFree;
    std::unordered_map<std::uint64_t, unsigned> issueSlots;

    std::uint64_t cycle = 0;
    std::uint64_t seqCounter = 0;
    std::uint64_t fetchPc = 0;
    /** Sequential hint for Program::fetch; self-corrects on redirects. */
    std::size_t fetchHint_ = 0;
    std::uint64_t fetchStallUntil = 0;
    bool fetchHalted = false;
    bool serializePending = false;
    std::uint64_t serializeSeq = 0;

    PipelineStats stats_;
};

} // namespace hfi::sim

#endif // HFI_SIM_PIPELINE_H
