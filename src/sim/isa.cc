#include "sim/isa.h"

#include <sstream>

namespace hfi::sim
{

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::Mov: return "mov";
      case Opcode::Movi: return "movi";
      case Opcode::Load: return "load";
      case Opcode::Store: return "store";
      case Opcode::HmovLoad: return "hmov.load";
      case Opcode::HmovStore: return "hmov.store";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Blt: return "blt";
      case Opcode::Bge: return "bge";
      case Opcode::Jmp: return "jmp";
      case Opcode::Call: return "call";
      case Opcode::Ret: return "ret";
      case Opcode::Syscall: return "syscall";
      case Opcode::Cpuid: return "cpuid";
      case Opcode::HfiEnter: return "hfi_enter";
      case Opcode::HfiExit: return "hfi_exit";
      case Opcode::HfiSetRegion: return "hfi_set_region";
      case Opcode::HfiClearRegion: return "hfi_clear_region";
      case Opcode::Flush: return "clflush";
      case Opcode::Halt: return "halt";
      case Opcode::Nop: return "nop";
    }
    return "?";
}

bool
isMemory(Opcode op)
{
    return op == Opcode::Load || op == Opcode::Store ||
           op == Opcode::HmovLoad || op == Opcode::HmovStore;
}

bool
isControl(Opcode op)
{
    switch (op) {
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Jmp:
      case Opcode::Call:
      case Opcode::Ret:
        return true;
      default:
        return false;
    }
}

bool
isConditionalBranch(Opcode op)
{
    return op == Opcode::Beq || op == Opcode::Bne || op == Opcode::Blt ||
           op == Opcode::Bge;
}

std::uint8_t
defaultLength(const Inst &inst)
{
    switch (inst.op) {
      case Opcode::HmovLoad:
      case Opcode::HmovStore:
        // The hmov prefix byte on top of a normal mov encoding — the
        // icache-pressure cost §6.1 observes on 445.gobmk.
        return 5;
      case Opcode::Load:
      case Opcode::Store:
        // A mov with a 32-bit absolute displacement (the emulation's
        // fixed-base addressing) costs a full 7-byte encoding.
        return inst.imm > 0x7fff || inst.imm < -0x8000 ? 7 : 4;
      case Opcode::Movi:
        return inst.imm > 0x7fffffffLL || inst.imm < -0x80000000LL ? 10 : 5;
      case Opcode::Cpuid:
        return 2;
      case Opcode::Syscall:
        return 2;
      case Opcode::Ret:
        return 1;
      case Opcode::Nop:
        return 1;
      case Opcode::Flush:
        return 3;
      case Opcode::HfiEnter:
      case Opcode::HfiExit:
      case Opcode::HfiSetRegion:
      case Opcode::HfiClearRegion:
        return 3;
      default:
        return 4;
    }
}

std::string
Inst::toString() const
{
    std::ostringstream os;
    os << opcodeName(op) << " rd=r" << unsigned(rd) << " ra=r"
       << unsigned(ra) << " rb=r" << unsigned(rb);
    if (useImm || imm)
        os << " imm=" << imm;
    if (isControl(op))
        os << " target=0x" << std::hex << target;
    return os.str();
}

} // namespace hfi::sim
