/**
 * @file
 * Sparse byte-addressable memory for the pipeline simulator. Pages are
 * allocated on first touch and read as zero before any write, so
 * programs can assume a zeroed address space like a fresh mmap.
 */

#ifndef HFI_SIM_MEMORY_H
#define HFI_SIM_MEMORY_H

#include <array>
#include <cstdint>
#include <cstring>
#include <unordered_map>

namespace hfi::sim
{

class SimMemory
{
  public:
    static constexpr std::uint64_t kPageBytes = 4096;

    /** Read @p width (1/2/4/8) bytes, little-endian, zero-extended. */
    std::uint64_t
    read(std::uint64_t addr, unsigned width) const
    {
        std::uint64_t value = 0;
        for (unsigned i = 0; i < width; ++i)
            value |= static_cast<std::uint64_t>(readByte(addr + i)) << (8 * i);
        return value;
    }

    /** Write the low @p width bytes of @p value, little-endian. */
    void
    write(std::uint64_t addr, std::uint64_t value, unsigned width)
    {
        for (unsigned i = 0; i < width; ++i)
            writeByte(addr + i, static_cast<std::uint8_t>(value >> (8 * i)));
    }

    std::uint8_t
    readByte(std::uint64_t addr) const
    {
        const auto it = pages.find(addr / kPageBytes);
        if (it == pages.end())
            return 0;
        return it->second[addr % kPageBytes];
    }

    void
    writeByte(std::uint64_t addr, std::uint8_t value)
    {
        pages[addr / kPageBytes][addr % kPageBytes] = value;
    }

    /** Bulk helpers for staging test data. */
    void
    writeBytes(std::uint64_t addr, const void *src, std::uint64_t len)
    {
        const auto *bytes = static_cast<const std::uint8_t *>(src);
        for (std::uint64_t i = 0; i < len; ++i)
            writeByte(addr + i, bytes[i]);
    }

    std::size_t touchedPages() const { return pages.size(); }

  private:
    std::unordered_map<std::uint64_t, std::array<std::uint8_t, kPageBytes>>
        pages;
};

} // namespace hfi::sim

#endif // HFI_SIM_MEMORY_H
