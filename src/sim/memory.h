/**
 * @file
 * Sparse byte-addressable memory for the pipeline simulator. Pages are
 * allocated on first touch and read as zero before any write, so
 * programs can assume a zeroed address space like a fresh mmap.
 *
 * Accesses are word-granular: a whole-width read or write that stays
 * inside one 4 KiB page is a single memcpy into/out of the page array
 * (little-endian, matching the modeled ISA), and a one-entry last-page
 * cache skips the hash lookup when consecutive accesses hit the same
 * page — the overwhelmingly common case for the Fig 2 kernels. Only
 * page-straddling accesses fall back to the byte loop.
 */

#ifndef HFI_SIM_MEMORY_H
#define HFI_SIM_MEMORY_H

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <unordered_map>

namespace hfi::sim
{

// The memcpy fast path reinterprets page bytes as little-endian words,
// which is only correct when the host is little-endian too.
static_assert(std::endian::native == std::endian::little,
              "SimMemory's word fast path assumes a little-endian host");

class SimMemory
{
  public:
    static constexpr std::uint64_t kPageBytes = 4096;

    /** Read @p width (1/2/4/8) bytes, little-endian, zero-extended. */
    std::uint64_t
    read(std::uint64_t addr, unsigned width) const
    {
        const std::uint64_t off = addr % kPageBytes;
        if (off + width <= kPageBytes) {
            const Page *page = findPage(addr / kPageBytes);
            if (!page)
                return 0;
            std::uint64_t value = 0;
            std::memcpy(&value, page->data() + off, width);
            return value;
        }
        return readSplit(addr, width);
    }

    /** Write the low @p width bytes of @p value, little-endian. */
    void
    write(std::uint64_t addr, std::uint64_t value, unsigned width)
    {
        const std::uint64_t off = addr % kPageBytes;
        if (off + width <= kPageBytes) {
            std::memcpy(touchPage(addr / kPageBytes)->data() + off, &value,
                        width);
            return;
        }
        writeSplit(addr, value, width);
    }

    std::uint8_t
    readByte(std::uint64_t addr) const
    {
        const Page *page = findPage(addr / kPageBytes);
        return page ? (*page)[addr % kPageBytes] : 0;
    }

    void
    writeByte(std::uint64_t addr, std::uint8_t value)
    {
        (*touchPage(addr / kPageBytes))[addr % kPageBytes] = value;
    }

    /** Bulk helper for staging test data: page-sized memcpy chunks. */
    void
    writeBytes(std::uint64_t addr, const void *src, std::uint64_t len)
    {
        const auto *bytes = static_cast<const std::uint8_t *>(src);
        while (len > 0) {
            const std::uint64_t off = addr % kPageBytes;
            const std::uint64_t chunk = std::min(kPageBytes - off, len);
            std::memcpy(touchPage(addr / kPageBytes)->data() + off, bytes,
                        chunk);
            addr += chunk;
            bytes += chunk;
            len -= chunk;
        }
    }

    std::size_t touchedPages() const { return pages.size(); }

  private:
    using Page = std::array<std::uint8_t, kPageBytes>;

    /**
     * Existing page @p pn, or nullptr. Caches the last hit only — never
     * the absence of a page — so a later allocation cannot be shadowed
     * by a stale negative entry. Cached pointers stay valid because
     * unordered_map never moves its nodes.
     */
    const Page *
    findPage(std::uint64_t pn) const
    {
        if (lastPage && lastPageNumber == pn)
            return lastPage;
        const auto it = pages.find(pn);
        if (it == pages.end())
            return nullptr;
        lastPageNumber = pn;
        lastPage = &it->second;
        return lastPage;
    }

    /** Page @p pn, allocated (zero-filled) on first touch. */
    Page *
    touchPage(std::uint64_t pn)
    {
        if (lastPage && lastPageNumber == pn)
            return const_cast<Page *>(lastPage);
        Page &page = pages[pn]; // value-initialized: reads-before-writes are 0
        lastPageNumber = pn;
        lastPage = &page;
        return &page;
    }

    std::uint64_t
    readSplit(std::uint64_t addr, unsigned width) const
    {
        std::uint64_t value = 0;
        for (unsigned i = 0; i < width; ++i)
            value |= static_cast<std::uint64_t>(readByte(addr + i)) << (8 * i);
        return value;
    }

    void
    writeSplit(std::uint64_t addr, std::uint64_t value, unsigned width)
    {
        for (unsigned i = 0; i < width; ++i)
            writeByte(addr + i, static_cast<std::uint8_t>(value >> (8 * i)));
    }

    std::unordered_map<std::uint64_t, Page> pages;
    mutable std::uint64_t lastPageNumber = 0;
    mutable const Page *lastPage = nullptr;
};

} // namespace hfi::sim

#endif // HFI_SIM_MEMORY_H
