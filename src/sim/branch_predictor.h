/**
 * @file
 * Branch prediction: a 2-bit-counter PHT for conditional direction, a
 * BTB for taken/indirect targets, and an RSB for returns.
 *
 * The PHT is what the Spectre-PHT attack trains (§5.3): the attacker
 * runs the victim's bounds check in-bounds repeatedly, driving the
 * counter to strongly-taken, then supplies an out-of-bounds index so
 * the core speculates down the in-bounds path.
 */

#ifndef HFI_SIM_BRANCH_PREDICTOR_H
#define HFI_SIM_BRANCH_PREDICTOR_H

#include <cstdint>
#include <vector>

namespace hfi::sim
{

/** Predictor geometry. */
struct PredictorConfig
{
    unsigned phtEntries = 4096;
    unsigned btbEntries = 512;
    unsigned rsbDepth = 16;
};

class BranchPredictor
{
  public:
    explicit BranchPredictor(PredictorConfig config = {});

    /** Predict a conditional branch's direction at @p pc. */
    bool predictDirection(std::uint64_t pc) const;

    /** Update the PHT with the resolved direction. */
    void updateDirection(std::uint64_t pc, bool taken);

    /**
     * Predicted target for a taken/indirect branch at @p pc.
     * @return 0 when the BTB has no entry (fetch then stalls until
     *         resolution rather than following garbage).
     */
    std::uint64_t predictTarget(std::uint64_t pc) const;

    void updateTarget(std::uint64_t pc, std::uint64_t target);

    /** Push a return address (call). */
    void pushReturn(std::uint64_t addr);

    /** Pop the predicted return address (0 when empty). */
    std::uint64_t popReturn();

    std::uint64_t mispredicts() const { return mispredicts_; }
    void countMispredict() { ++mispredicts_; }

  private:
    std::size_t
    phtIndex(std::uint64_t pc) const
    {
        return phtMask_ ? ((pc >> 2) & phtMask_)
                        : ((pc >> 2) % pht.size());
    }

    std::size_t
    btbIndex(std::uint64_t pc) const
    {
        return btbMask_ ? ((pc >> 2) & btbMask_)
                        : ((pc >> 2) % btb.size());
    }

    PredictorConfig config_;
    std::vector<std::uint8_t> pht; ///< 2-bit saturating counters
    struct BtbEntry
    {
        bool valid = false;
        std::uint64_t pc = 0;
        std::uint64_t target = 0;
    };
    std::vector<BtbEntry> btb;
    std::vector<std::uint64_t> rsb;
    std::size_t rsbTop = 0;
    std::uint64_t mispredicts_ = 0;
    /** Index masks when the table sizes are powers of two (0 = use the
     *  modulo fallback). Same indices either way. */
    std::size_t phtMask_ = 0;
    std::size_t btbMask_ = 0;
};

} // namespace hfi::sim

#endif // HFI_SIM_BRANCH_PREDICTOR_H
