/**
 * @file
 * Architectural state and single-instruction semantics for the pipeline
 * simulator.
 *
 * The pipeline executes instructions *functionally at dispatch* against
 * a speculative copy of this state (values are always dataflow-correct;
 * timing is modeled separately), which is what lets wrong-path
 * instructions compute with real values — the property the Spectre
 * experiments require. Memory is abstracted behind MemView so the
 * pipeline can interpose its store queue; the FunctionalCore can also
 * run standalone (in-order, no timing) as the reference executor that
 * tests compare the pipeline against.
 */

#ifndef HFI_SIM_FUNCTIONAL_H
#define HFI_SIM_FUNCTIONAL_H

#include <array>
#include <cstdint>

#include "core/checker.h"
#include "core/context.h"
#include "sim/isa.h"
#include "sim/memory.h"
#include "sim/program.h"

namespace hfi::sim
{

/** Architectural (or speculative) machine state. Cheap to copy. */
struct ArchState
{
    std::array<std::uint64_t, kNumRegs> regs{};
    std::uint64_t pc = 0;
    /** The HFI register bank (regions, config, enabled). */
    core::HfiRegisterFile hfi{};
    /**
     * The shadow bank of the switch-on-exit extension (§4.5): holds the
     * trusted runtime's registers while a child sandbox runs.
     */
    core::HfiRegisterFile hfiShadow{};
    bool shadowValid = false;
    /** Exit-reason MSR (§3.3.2). */
    core::ExitReason msr = core::ExitReason::None;
};

/** Memory interface the executor reads/writes through. */
class MemView
{
  public:
    virtual ~MemView() = default;
    virtual std::uint64_t load(std::uint64_t addr, unsigned width) = 0;
    virtual void store(std::uint64_t addr, std::uint64_t value,
                       unsigned width) = 0;
};

/** Direct view over a SimMemory (the standalone / commit path). */
class DirectMemView : public MemView
{
  public:
    explicit DirectMemView(SimMemory &mem) : mem(mem) {}

    std::uint64_t
    load(std::uint64_t addr, unsigned width) override
    {
        return mem.read(addr, width);
    }

    void
    store(std::uint64_t addr, std::uint64_t value, unsigned width) override
    {
        mem.write(addr, value, width);
    }

  private:
    SimMemory &mem;
};

/** Everything the timing model needs to know about one execution. */
struct ExecInfo
{
    std::uint64_t nextPc = 0;

    bool isMem = false;
    bool isWrite = false;
    std::uint64_t memAddr = 0; ///< effective address (absolute)
    std::uint8_t memWidth = 0;

    bool isBranch = false;
    bool branchTaken = false;

    /** HFI (or machine) fault raised by this instruction. */
    bool faulted = false;
    core::ExitReason faultReason = core::ExitReason::None;

    /** Instruction requires pipeline serialization (cpuid, serialized
     *  hfi_enter/exit, region updates inside a hybrid sandbox). */
    bool serializes = false;

    bool halted = false;
    bool isSyscall = false;
    bool isFlush = false;
};

/** Implementation helpers for FunctionalCore::executeOn. */
namespace detail
{

/** Build the region value hfi_set_region writes, from the descriptor
 *  registers (base in ra, bound/mask in rb) and permission bits. */
inline core::Region
regionFromDescriptor(unsigned region_number, std::uint64_t base,
                     std::uint64_t bound, std::int64_t perms)
{
    const bool read = perms & 1;
    const bool write = perms & 2;
    const bool exec = perms & 4;
    const bool large = perms & 8;
    switch (core::regionClassOf(region_number)) {
      case core::RegionClass::Code: {
        core::ImplicitCodeRegion r;
        r.basePrefix = base;
        r.lsbMask = bound;
        r.permExec = exec;
        return r;
      }
      case core::RegionClass::ImplicitData: {
        core::ImplicitDataRegion r;
        r.basePrefix = base;
        r.lsbMask = bound;
        r.permRead = read;
        r.permWrite = write;
        return r;
      }
      case core::RegionClass::ExplicitData: {
        core::ExplicitDataRegion r;
        r.baseAddress = base;
        r.bound = bound;
        r.permRead = read;
        r.permWrite = write;
        r.isLargeRegion = large;
        return r;
      }
    }
    return core::EmptyRegion{};
}

/** Region-slot/type/shape validity, mirroring HfiContext::setRegion. */
inline bool
regionStorable(unsigned n, const core::Region &region)
{
    if (std::holds_alternative<core::EmptyRegion>(region))
        return true;
    switch (core::regionClassOf(n)) {
      case core::RegionClass::Code:
        return std::holds_alternative<core::ImplicitCodeRegion>(region) &&
               std::get<core::ImplicitCodeRegion>(region).wellFormed();
      case core::RegionClass::ImplicitData:
        return std::holds_alternative<core::ImplicitDataRegion>(region) &&
               std::get<core::ImplicitDataRegion>(region).wellFormed();
      case core::RegionClass::ExplicitData:
        return std::holds_alternative<core::ExplicitDataRegion>(region) &&
               std::get<core::ExplicitDataRegion>(region).wellFormed();
    }
    return false;
}

} // namespace detail

/**
 * Executes one instruction: updates @p state (registers, pc, HFI bank,
 * MSR) through @p mem, enforcing HFI semantics with the bit-level
 * AccessChecker. Faulting instructions write no data (the faulting-NOP
 * micro-op of §4.1) and leave state.pc at the trap target.
 */
class FunctionalCore
{
  public:
    static ExecInfo execute(const Inst &inst, std::uint64_t pc,
                            ArchState &state, MemView &mem);

    /**
     * The executor itself, generic over the memory interface so the
     * standalone run loop can use a non-virtual adapter (the whole
     * instruction dispatch then inlines, including SimMemory's word
     * fast path), while the pipeline keeps the virtual MemView for its
     * store-queue interposition. `execute` above is exactly
     * `executeOn<MemView>`.
     */
    template <typename Mem>
    static ExecInfo
    executeOn(const Inst &inst, std::uint64_t pc, ArchState &state, Mem &mem)
    {
        ExecInfo info;
        info.nextPc = pc + inst.length;
    
        auto &regs = state.regs;
        const std::uint64_t ra = regs[inst.ra];
        const std::uint64_t rb_or_imm =
            inst.useImm ? static_cast<std::uint64_t>(inst.imm) : regs[inst.rb];
    
        auto fault = [&](core::ExitReason reason) {
            info.faulted = true;
            info.faultReason = reason;
            // §3.3.2: HFI disables the sandbox, records the cause in the
            // MSR, and raises a trap — but those are *retirement* effects.
            // A speculatively faulting instruction must leave the HFI bank
            // untouched so younger wrong-path instructions stay checked
            // (otherwise the fault itself would re-open the side channel).
            // The caller applies the architectural effects at commit.
            info.nextPc = pc; // architectural pc of the faulting instruction
        };
    
        switch (inst.op) {
          case Opcode::Add: regs[inst.rd] = ra + rb_or_imm; break;
          case Opcode::Sub: regs[inst.rd] = ra - rb_or_imm; break;
          case Opcode::Mul: regs[inst.rd] = ra * rb_or_imm; break;
          case Opcode::Div:
            regs[inst.rd] = rb_or_imm ? ra / rb_or_imm : 0;
            break;
          case Opcode::And: regs[inst.rd] = ra & rb_or_imm; break;
          case Opcode::Or: regs[inst.rd] = ra | rb_or_imm; break;
          case Opcode::Xor: regs[inst.rd] = ra ^ rb_or_imm; break;
          case Opcode::Shl: regs[inst.rd] = ra << (rb_or_imm & 63); break;
          case Opcode::Shr: regs[inst.rd] = ra >> (rb_or_imm & 63); break;
          case Opcode::Mov: regs[inst.rd] = ra; break;
          case Opcode::Movi:
            regs[inst.rd] = static_cast<std::uint64_t>(inst.imm);
            break;
    
          case Opcode::Load:
          case Opcode::Store: {
            std::uint64_t addr =
                ra + static_cast<std::uint64_t>(inst.imm);
            if (inst.useIndex)
                addr += regs[inst.rb] * inst.scale;
            info.isMem = true;
            info.isWrite = inst.op == Opcode::Store;
            info.memAddr = addr;
            info.memWidth = inst.width;
            // Implicit data-region check, in parallel with the dtb (§4.1).
            const core::CheckResult check = core::AccessChecker::checkData(
                state.hfi, addr, inst.width, info.isWrite);
            if (!check.ok) {
                fault(check.reason);
                break;
            }
            if (info.isWrite)
                mem.store(addr, regs[inst.rd], inst.width);
            else
                regs[inst.rd] = mem.load(addr, inst.width);
            break;
          }
    
          case Opcode::HmovLoad:
          case Opcode::HmovStore: {
            info.isMem = true;
            info.isWrite = inst.op == Opcode::HmovStore;
            info.memWidth = inst.width;
            core::HmovOperands ops;
            ops.index = inst.useIndex
                            ? static_cast<std::int64_t>(regs[inst.rb])
                            : 0;
            ops.scale = inst.scale;
            ops.displacement = inst.imm;
            ops.width = inst.width;
            if (!state.hfi.enabled) {
                // hmov outside HFI mode is an invalid opcode.
                fault(core::ExitReason::HardwareFault);
                break;
            }
            const core::HmovResult res = core::AccessChecker::checkHmov(
                state.hfi, inst.region, ops, info.isWrite);
            if (!res.ok) {
                fault(res.reason);
                break;
            }
            info.memAddr = res.address;
            if (info.isWrite)
                mem.store(res.address, regs[inst.rd], inst.width);
            else
                regs[inst.rd] = mem.load(res.address, inst.width);
            break;
          }
    
          case Opcode::Beq:
          case Opcode::Bne:
          case Opcode::Blt:
          case Opcode::Bge: {
            info.isBranch = true;
            const auto a = static_cast<std::int64_t>(ra);
            const auto b = static_cast<std::int64_t>(regs[inst.rb]);
            switch (inst.op) {
              case Opcode::Beq: info.branchTaken = a == b; break;
              case Opcode::Bne: info.branchTaken = a != b; break;
              case Opcode::Blt: info.branchTaken = a < b; break;
              default: info.branchTaken = a >= b; break;
            }
            if (info.branchTaken)
                info.nextPc = inst.target;
            break;
          }
          case Opcode::Jmp:
            info.isBranch = true;
            info.branchTaken = true;
            info.nextPc = inst.target;
            break;
          case Opcode::Call:
            info.isBranch = true;
            info.branchTaken = true;
            regs[kLinkReg] = pc + inst.length;
            info.nextPc = inst.target;
            break;
          case Opcode::Ret:
            info.isBranch = true;
            info.branchTaken = true;
            info.nextPc = regs[kLinkReg];
            break;
    
          case Opcode::Syscall:
            info.isSyscall = true;
            if (state.hfi.enabled && !state.hfi.config.isHybrid) {
                // §4.4: redirect to the exit handler; HFI mode is disabled
                // atomically and the MSR records the cause.
                state.hfi.enabled = false;
                state.msr = core::ExitReason::Syscall;
                info.nextPc = state.hfi.config.exitHandler;
                if (state.hfi.config.isSerialized)
                    info.serializes = true;
                if (info.nextPc == 0)
                    fault(core::ExitReason::Syscall);
            } else if (inst.imm == 231) { // exit_group
                info.halted = true;
            }
            break;
    
          case Opcode::Cpuid:
            info.serializes = true;
            // Clobbers its output registers (r12/r13 by our convention —
            // compilers never keep live values in cpuid outputs).
            regs[12] = 0x16;
            regs[13] = 0x756e6547;
            break;
    
          case Opcode::HfiEnter: {
            const bool switch_on_exit = inst.imm & 4;
            if (switch_on_exit) {
                // §4.5: preserve the trusted runtime's bank in the shadow
                // registers before loading the child's configuration.
                state.hfiShadow = state.hfi;
                state.shadowValid = true;
            }
            state.hfi.config.isHybrid = inst.imm & 1;
            state.hfi.config.isSerialized = inst.imm & 2;
            state.hfi.config.switchOnExit = switch_on_exit;
            state.hfi.config.exitHandler = regs[kExitHandlerReg];
            state.hfi.enabled = true;
            if (state.hfi.config.isSerialized)
                info.serializes = true;
            break;
          }
          case Opcode::HfiExit:
            if (state.hfi.enabled && state.hfi.config.switchOnExit &&
                state.shadowValid) {
                // §4.5: atomically switch back to the runtime's bank; HFI
                // stays enabled, so even a *speculative* hfi_exit leaves
                // execution checked — no serialization needed.
                state.hfi = state.hfiShadow;
                state.shadowValid = false;
                state.msr = core::ExitReason::HfiExit;
                break;
            }
            if (state.hfi.config.isSerialized)
                info.serializes = true;
            state.hfi.enabled = false;
            state.msr = core::ExitReason::HfiExit;
            break;
    
          case Opcode::HfiSetRegion: {
            if (state.hfi.enabled && !state.hfi.config.isHybrid) {
                fault(core::ExitReason::IllegalRegionUpdate);
                break;
            }
            const core::Region region = detail::regionFromDescriptor(
                inst.region, ra, regs[inst.rb], inst.imm);
            if (inst.region >= core::kNumRegions ||
                !detail::regionStorable(inst.region, region)) {
                fault(core::ExitReason::IllegalRegionUpdate);
                break;
            }
            state.hfi.setRegion(inst.region, region);
            // §4.3: serializes inside a hybrid sandbox.
            if (state.hfi.enabled)
                info.serializes = true;
            break;
          }
          case Opcode::HfiClearRegion:
            if (state.hfi.enabled && !state.hfi.config.isHybrid) {
                fault(core::ExitReason::IllegalRegionUpdate);
                break;
            }
            if (inst.region >= core::kNumRegions) {
                fault(core::ExitReason::IllegalRegionUpdate);
                break;
            }
            state.hfi.setRegion(inst.region, core::EmptyRegion{});
            if (state.hfi.enabled)
                info.serializes = true;
            break;
    
          case Opcode::Flush:
            // clflush: evicts the line; no data moves, no HFI data check
            // (the address reveals nothing the attacker does not control).
            info.isFlush = true;
            info.memAddr = ra + static_cast<std::uint64_t>(inst.imm);
            break;
    
          case Opcode::Halt:
            info.halted = true;
            break;
          case Opcode::Nop:
            break;
        }
    
        if (!info.faulted)
            state.pc = info.nextPc;
        return info;
    }

    /**
     * Run @p program on @p state / @p memory in order until Halt, a
     * fault, or @p max_steps. @return number of instructions executed.
     *
     * Uses a threaded-dispatch interpreter with predecoded branch
     * targets, and elides the per-instruction fetch check whenever the
     * current HFI bank provably passes it for every address in the
     * program (re-proved after any instruction that can touch the
     * bank). Architecturally indistinguishable from runReference —
     * tests cross-validate the two over the whole kernel suite.
     */
    static std::uint64_t run(const Program &program, ArchState &state,
                             SimMemory &memory,
                             std::uint64_t max_steps = 100'000'000);

    /**
     * The straightforward fetch→check→executeOn loop: one instruction
     * at a time, every check performed literally. The semantic
     * reference that run() is validated against.
     */
    static std::uint64_t runReference(const Program &program,
                                      ArchState &state, SimMemory &memory,
                                      std::uint64_t max_steps = 100'000'000);
};

/**
 * True when AccessChecker::checkFetch is guaranteed to pass for every
 * address in [prog.base(), prog.end()) under @p bank, with exactly the
 * verdict the per-address check would give. Both the interpreter and
 * the pipeline use this predicate to elide the per-instruction fetch
 * check on the straight-line path; it must be re-proved after any
 * instruction that can touch the bank.
 */
bool fetchCoversProgram(const core::HfiRegisterFile &bank,
                        const Program &prog);

} // namespace hfi::sim

#endif // HFI_SIM_FUNCTIONAL_H
