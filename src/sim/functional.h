/**
 * @file
 * Architectural state and single-instruction semantics for the pipeline
 * simulator.
 *
 * The pipeline executes instructions *functionally at dispatch* against
 * a speculative copy of this state (values are always dataflow-correct;
 * timing is modeled separately), which is what lets wrong-path
 * instructions compute with real values — the property the Spectre
 * experiments require. Memory is abstracted behind MemView so the
 * pipeline can interpose its store queue; the FunctionalCore can also
 * run standalone (in-order, no timing) as the reference executor that
 * tests compare the pipeline against.
 */

#ifndef HFI_SIM_FUNCTIONAL_H
#define HFI_SIM_FUNCTIONAL_H

#include <array>
#include <cstdint>

#include "core/checker.h"
#include "core/context.h"
#include "sim/isa.h"
#include "sim/memory.h"
#include "sim/program.h"

namespace hfi::sim
{

/** Link register used by Call/Ret. */
constexpr unsigned kLinkReg = 14;

/** Register holding the exit-handler address consumed by hfi_enter. */
constexpr unsigned kExitHandlerReg = 15;

/** Architectural (or speculative) machine state. Cheap to copy. */
struct ArchState
{
    std::array<std::uint64_t, kNumRegs> regs{};
    std::uint64_t pc = 0;
    /** The HFI register bank (regions, config, enabled). */
    core::HfiRegisterFile hfi{};
    /**
     * The shadow bank of the switch-on-exit extension (§4.5): holds the
     * trusted runtime's registers while a child sandbox runs.
     */
    core::HfiRegisterFile hfiShadow{};
    bool shadowValid = false;
    /** Exit-reason MSR (§3.3.2). */
    core::ExitReason msr = core::ExitReason::None;
};

/** Memory interface the executor reads/writes through. */
class MemView
{
  public:
    virtual ~MemView() = default;
    virtual std::uint64_t load(std::uint64_t addr, unsigned width) = 0;
    virtual void store(std::uint64_t addr, std::uint64_t value,
                       unsigned width) = 0;
};

/** Direct view over a SimMemory (the standalone / commit path). */
class DirectMemView : public MemView
{
  public:
    explicit DirectMemView(SimMemory &mem) : mem(mem) {}

    std::uint64_t
    load(std::uint64_t addr, unsigned width) override
    {
        return mem.read(addr, width);
    }

    void
    store(std::uint64_t addr, std::uint64_t value, unsigned width) override
    {
        mem.write(addr, value, width);
    }

  private:
    SimMemory &mem;
};

/** Everything the timing model needs to know about one execution. */
struct ExecInfo
{
    std::uint64_t nextPc = 0;

    bool isMem = false;
    bool isWrite = false;
    std::uint64_t memAddr = 0; ///< effective address (absolute)
    std::uint8_t memWidth = 0;

    bool isBranch = false;
    bool branchTaken = false;

    /** HFI (or machine) fault raised by this instruction. */
    bool faulted = false;
    core::ExitReason faultReason = core::ExitReason::None;

    /** Instruction requires pipeline serialization (cpuid, serialized
     *  hfi_enter/exit, region updates inside a hybrid sandbox). */
    bool serializes = false;

    bool halted = false;
    bool isSyscall = false;
    bool isFlush = false;
};

/**
 * Executes one instruction: updates @p state (registers, pc, HFI bank,
 * MSR) through @p mem, enforcing HFI semantics with the bit-level
 * AccessChecker. Faulting instructions write no data (the faulting-NOP
 * micro-op of §4.1) and leave state.pc at the trap target.
 */
class FunctionalCore
{
  public:
    static ExecInfo execute(const Inst &inst, std::uint64_t pc,
                            ArchState &state, MemView &mem);

    /**
     * Run @p program on @p state / @p memory in order until Halt, a
     * fault, or @p max_steps. The reference executor for tests.
     * @return number of instructions executed.
     */
    static std::uint64_t run(const Program &program, ArchState &state,
                             SimMemory &memory,
                             std::uint64_t max_steps = 100'000'000);
};

} // namespace hfi::sim

#endif // HFI_SIM_FUNCTIONAL_H
