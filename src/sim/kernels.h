/**
 * @file
 * The Sightglass kernels as pipeline-simulator programs, in the two
 * build modes Fig 2 compares (§5.2, appendix A.2):
 *
 *  - HfiHardware: the heap is an explicit region programmed with
 *    hfi_set_region and accessed with hmov (5-byte encodings); sandbox
 *    transitions are serialized hfi_enter/hfi_exit.
 *  - HfiEmulation: the compiler-based emulation — heap accesses are
 *    plain movs with a fixed absolute base displacement (7-byte
 *    encodings, no base register consumed), region setup is emulated by
 *    moving the metadata from memory into general-purpose registers,
 *    and enters/exits are emulated with cpuid (the known-serializing
 *    instruction the paper uses).
 *
 * Both modes express the same computation, so the Fig 2 bench can run
 * each kernel twice on the same core model and report the emulation /
 * hardware cycle ratio — the paper measures 98%-108% with a geomean
 * difference of 1.62%.
 */

#ifndef HFI_SIM_KERNELS_H
#define HFI_SIM_KERNELS_H

#include <string>
#include <vector>

#include "sim/memory.h"
#include "sim/program.h"

namespace hfi::sim::kernels
{

/** Which HFI rendering a kernel program uses. */
enum class Mode
{
    HfiHardware,
    HfiEmulation,
};

/** A buildable kernel: program plus its input staging. */
struct Kernel
{
    std::string name;
    /** Build the program in the given mode with a size knob. */
    Program (*build)(Mode mode, std::uint64_t scale);
    /** Stage input data into the heap before running. */
    void (*stage)(SimMemory &mem, std::uint64_t scale, std::uint32_t seed);
};

/** Heap base shared by all kernels (the emulation's fixed base). */
constexpr std::uint64_t kHeapBase = 0x10000000;

/** Heap size: 1 MiB (a multiple of 64 KiB, large-region legal). */
constexpr std::uint64_t kHeapBytes = 1ULL << 20;

/** The Fig 2 kernel set, in the figure's order. */
const std::vector<Kernel> &suite();

} // namespace hfi::sim::kernels

#endif // HFI_SIM_KERNELS_H
