#include "sim/functional.h"

namespace hfi::sim
{

namespace
{

/** Build the region value hfi_set_region writes, from the descriptor
 *  registers (base in ra, bound/mask in rb) and permission bits. */
core::Region
regionFromDescriptor(unsigned region_number, std::uint64_t base,
                     std::uint64_t bound, std::int64_t perms)
{
    const bool read = perms & 1;
    const bool write = perms & 2;
    const bool exec = perms & 4;
    const bool large = perms & 8;
    switch (core::regionClassOf(region_number)) {
      case core::RegionClass::Code: {
        core::ImplicitCodeRegion r;
        r.basePrefix = base;
        r.lsbMask = bound;
        r.permExec = exec;
        return r;
      }
      case core::RegionClass::ImplicitData: {
        core::ImplicitDataRegion r;
        r.basePrefix = base;
        r.lsbMask = bound;
        r.permRead = read;
        r.permWrite = write;
        return r;
      }
      case core::RegionClass::ExplicitData: {
        core::ExplicitDataRegion r;
        r.baseAddress = base;
        r.bound = bound;
        r.permRead = read;
        r.permWrite = write;
        r.isLargeRegion = large;
        return r;
      }
    }
    return core::EmptyRegion{};
}

/** Region-slot/type/shape validity, mirroring HfiContext::setRegion. */
bool
regionStorable(unsigned n, const core::Region &region)
{
    if (std::holds_alternative<core::EmptyRegion>(region))
        return true;
    switch (core::regionClassOf(n)) {
      case core::RegionClass::Code:
        return std::holds_alternative<core::ImplicitCodeRegion>(region) &&
               std::get<core::ImplicitCodeRegion>(region).wellFormed();
      case core::RegionClass::ImplicitData:
        return std::holds_alternative<core::ImplicitDataRegion>(region) &&
               std::get<core::ImplicitDataRegion>(region).wellFormed();
      case core::RegionClass::ExplicitData:
        return std::holds_alternative<core::ExplicitDataRegion>(region) &&
               std::get<core::ExplicitDataRegion>(region).wellFormed();
    }
    return false;
}

} // namespace

ExecInfo
FunctionalCore::execute(const Inst &inst, std::uint64_t pc, ArchState &state,
                        MemView &mem)
{
    ExecInfo info;
    info.nextPc = pc + inst.length;

    auto &regs = state.regs;
    const std::uint64_t ra = regs[inst.ra];
    const std::uint64_t rb_or_imm =
        inst.useImm ? static_cast<std::uint64_t>(inst.imm) : regs[inst.rb];

    auto fault = [&](core::ExitReason reason) {
        info.faulted = true;
        info.faultReason = reason;
        // §3.3.2: HFI disables the sandbox, records the cause in the
        // MSR, and raises a trap — but those are *retirement* effects.
        // A speculatively faulting instruction must leave the HFI bank
        // untouched so younger wrong-path instructions stay checked
        // (otherwise the fault itself would re-open the side channel).
        // The caller applies the architectural effects at commit.
        info.nextPc = pc; // architectural pc of the faulting instruction
    };

    switch (inst.op) {
      case Opcode::Add: regs[inst.rd] = ra + rb_or_imm; break;
      case Opcode::Sub: regs[inst.rd] = ra - rb_or_imm; break;
      case Opcode::Mul: regs[inst.rd] = ra * rb_or_imm; break;
      case Opcode::Div:
        regs[inst.rd] = rb_or_imm ? ra / rb_or_imm : 0;
        break;
      case Opcode::And: regs[inst.rd] = ra & rb_or_imm; break;
      case Opcode::Or: regs[inst.rd] = ra | rb_or_imm; break;
      case Opcode::Xor: regs[inst.rd] = ra ^ rb_or_imm; break;
      case Opcode::Shl: regs[inst.rd] = ra << (rb_or_imm & 63); break;
      case Opcode::Shr: regs[inst.rd] = ra >> (rb_or_imm & 63); break;
      case Opcode::Mov: regs[inst.rd] = ra; break;
      case Opcode::Movi:
        regs[inst.rd] = static_cast<std::uint64_t>(inst.imm);
        break;

      case Opcode::Load:
      case Opcode::Store: {
        std::uint64_t addr =
            ra + static_cast<std::uint64_t>(inst.imm);
        if (inst.useIndex)
            addr += regs[inst.rb] * inst.scale;
        info.isMem = true;
        info.isWrite = inst.op == Opcode::Store;
        info.memAddr = addr;
        info.memWidth = inst.width;
        // Implicit data-region check, in parallel with the dtb (§4.1).
        const core::CheckResult check = core::AccessChecker::checkData(
            state.hfi, addr, inst.width, info.isWrite);
        if (!check.ok) {
            fault(check.reason);
            break;
        }
        if (info.isWrite)
            mem.store(addr, regs[inst.rd], inst.width);
        else
            regs[inst.rd] = mem.load(addr, inst.width);
        break;
      }

      case Opcode::HmovLoad:
      case Opcode::HmovStore: {
        info.isMem = true;
        info.isWrite = inst.op == Opcode::HmovStore;
        info.memWidth = inst.width;
        core::HmovOperands ops;
        ops.index = inst.useIndex
                        ? static_cast<std::int64_t>(regs[inst.rb])
                        : 0;
        ops.scale = inst.scale;
        ops.displacement = inst.imm;
        ops.width = inst.width;
        if (!state.hfi.enabled) {
            // hmov outside HFI mode is an invalid opcode.
            fault(core::ExitReason::HardwareFault);
            break;
        }
        const core::HmovResult res = core::AccessChecker::checkHmov(
            state.hfi, inst.region, ops, info.isWrite);
        if (!res.ok) {
            fault(res.reason);
            break;
        }
        info.memAddr = res.address;
        if (info.isWrite)
            mem.store(res.address, regs[inst.rd], inst.width);
        else
            regs[inst.rd] = mem.load(res.address, inst.width);
        break;
      }

      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge: {
        info.isBranch = true;
        const auto a = static_cast<std::int64_t>(ra);
        const auto b = static_cast<std::int64_t>(regs[inst.rb]);
        switch (inst.op) {
          case Opcode::Beq: info.branchTaken = a == b; break;
          case Opcode::Bne: info.branchTaken = a != b; break;
          case Opcode::Blt: info.branchTaken = a < b; break;
          default: info.branchTaken = a >= b; break;
        }
        if (info.branchTaken)
            info.nextPc = inst.target;
        break;
      }
      case Opcode::Jmp:
        info.isBranch = true;
        info.branchTaken = true;
        info.nextPc = inst.target;
        break;
      case Opcode::Call:
        info.isBranch = true;
        info.branchTaken = true;
        regs[kLinkReg] = pc + inst.length;
        info.nextPc = inst.target;
        break;
      case Opcode::Ret:
        info.isBranch = true;
        info.branchTaken = true;
        info.nextPc = regs[kLinkReg];
        break;

      case Opcode::Syscall:
        info.isSyscall = true;
        if (state.hfi.enabled && !state.hfi.config.isHybrid) {
            // §4.4: redirect to the exit handler; HFI mode is disabled
            // atomically and the MSR records the cause.
            state.hfi.enabled = false;
            state.msr = core::ExitReason::Syscall;
            info.nextPc = state.hfi.config.exitHandler;
            if (state.hfi.config.isSerialized)
                info.serializes = true;
            if (info.nextPc == 0)
                fault(core::ExitReason::Syscall);
        } else if (inst.imm == 231) { // exit_group
            info.halted = true;
        }
        break;

      case Opcode::Cpuid:
        info.serializes = true;
        // Clobbers its output registers (r12/r13 by our convention —
        // compilers never keep live values in cpuid outputs).
        regs[12] = 0x16;
        regs[13] = 0x756e6547;
        break;

      case Opcode::HfiEnter: {
        const bool switch_on_exit = inst.imm & 4;
        if (switch_on_exit) {
            // §4.5: preserve the trusted runtime's bank in the shadow
            // registers before loading the child's configuration.
            state.hfiShadow = state.hfi;
            state.shadowValid = true;
        }
        state.hfi.config.isHybrid = inst.imm & 1;
        state.hfi.config.isSerialized = inst.imm & 2;
        state.hfi.config.switchOnExit = switch_on_exit;
        state.hfi.config.exitHandler = regs[kExitHandlerReg];
        state.hfi.enabled = true;
        if (state.hfi.config.isSerialized)
            info.serializes = true;
        break;
      }
      case Opcode::HfiExit:
        if (state.hfi.enabled && state.hfi.config.switchOnExit &&
            state.shadowValid) {
            // §4.5: atomically switch back to the runtime's bank; HFI
            // stays enabled, so even a *speculative* hfi_exit leaves
            // execution checked — no serialization needed.
            state.hfi = state.hfiShadow;
            state.shadowValid = false;
            state.msr = core::ExitReason::HfiExit;
            break;
        }
        if (state.hfi.config.isSerialized)
            info.serializes = true;
        state.hfi.enabled = false;
        state.msr = core::ExitReason::HfiExit;
        break;

      case Opcode::HfiSetRegion: {
        if (state.hfi.enabled && !state.hfi.config.isHybrid) {
            fault(core::ExitReason::IllegalRegionUpdate);
            break;
        }
        const core::Region region = regionFromDescriptor(
            inst.region, ra, regs[inst.rb], inst.imm);
        if (inst.region >= core::kNumRegions ||
            !regionStorable(inst.region, region)) {
            fault(core::ExitReason::IllegalRegionUpdate);
            break;
        }
        state.hfi.regions[inst.region] = region;
        // §4.3: serializes inside a hybrid sandbox.
        if (state.hfi.enabled)
            info.serializes = true;
        break;
      }
      case Opcode::HfiClearRegion:
        if (state.hfi.enabled && !state.hfi.config.isHybrid) {
            fault(core::ExitReason::IllegalRegionUpdate);
            break;
        }
        if (inst.region >= core::kNumRegions) {
            fault(core::ExitReason::IllegalRegionUpdate);
            break;
        }
        state.hfi.regions[inst.region] = core::EmptyRegion{};
        if (state.hfi.enabled)
            info.serializes = true;
        break;

      case Opcode::Flush:
        // clflush: evicts the line; no data moves, no HFI data check
        // (the address reveals nothing the attacker does not control).
        info.isFlush = true;
        info.memAddr = ra + static_cast<std::uint64_t>(inst.imm);
        break;

      case Opcode::Halt:
        info.halted = true;
        break;
      case Opcode::Nop:
        break;
    }

    if (!info.faulted)
        state.pc = info.nextPc;
    return info;
}

std::uint64_t
FunctionalCore::run(const Program &program, ArchState &state,
                    SimMemory &memory, std::uint64_t max_steps)
{
    DirectMemView view(memory);
    std::uint64_t steps = 0;
    while (steps < max_steps) {
        // Code-region check on the fetch address (§4.1).
        const core::CheckResult fetch_check =
            core::AccessChecker::checkFetch(state.hfi, state.pc);
        if (!fetch_check.ok) {
            state.hfi.enabled = false;
            state.msr = fetch_check.reason;
            break;
        }
        const Inst *inst = program.at(state.pc);
        if (!inst)
            break; // ran off the program: invalid opcode
        const ExecInfo info =
            FunctionalCore::execute(*inst, state.pc, state, view);
        ++steps;
        if (info.faulted) {
            // Architectural trap: disable the sandbox, record the MSR.
            state.hfi.enabled = false;
            state.msr = info.faultReason;
            break;
        }
        if (info.halted)
            break;
    }
    return steps;
}

} // namespace hfi::sim
