#include "sim/functional.h"

namespace hfi::sim
{

namespace
{

/**
 * Non-virtual memory adapter: lets executeOn inline SimMemory's word
 * fast path straight into the dispatch loop (the virtual MemView
 * indirection is only needed by the pipeline's store queue).
 */
struct DirectMem
{
    SimMemory &m;

    std::uint64_t
    load(std::uint64_t addr, unsigned width)
    {
        return m.read(addr, width);
    }

    void
    store(std::uint64_t addr, std::uint64_t value, unsigned width)
    {
        m.write(addr, value, width);
    }
};

} // namespace

/**
 * With HFI off the check passes trivially. With HFI on, each code slot
 * matches an aligned power-of-two block; walking the slots in
 * first-match order, a slot whose block contains the whole program
 * decides every fetch at once (pass iff permExec — and on !permExec we
 * return false so the generic loop delivers the fault), a slot whose
 * block is disjoint from the program decides none, and a slot that
 * partially overlaps means different addresses see different verdicts,
 * so no elision. The predicate is O(code slots), so callers can afford
 * to re-prove it after every bank-touching instruction.
 */
bool
fetchCoversProgram(const core::HfiRegisterFile &bank, const Program &prog)
{
    if (!bank.enabled)
        return true;
    const std::uint64_t lo = prog.base();
    const std::uint64_t hi = prog.end() - 1;
    for (unsigned n = core::kFirstCodeRegion;
         n < core::kFirstImplicitDataRegion; ++n) {
        const core::FlatRegionSlot &s = bank.flat(n);
        if (s.kind != core::RegionKind::Code)
            continue;
        const bool lo_in = (lo & s.prefixMask) == s.base;
        const bool hi_in = (hi & s.prefixMask) == s.base;
        if (lo_in && hi_in)
            return s.permExec;
        const std::uint64_t block_last = s.base | ~s.prefixMask;
        if (hi < s.base || lo > block_last)
            continue; // block disjoint from the program: never matches
        return false; // partial overlap: mixed verdicts
    }
    return false; // nothing matches: every fetch faults (generic loop)
}

ExecInfo
FunctionalCore::execute(const Inst &inst, std::uint64_t pc, ArchState &state,
                        MemView &mem)
{
    return executeOn(inst, pc, state, mem);
}

std::uint64_t
FunctionalCore::runReference(const Program &program, ArchState &state,
                             SimMemory &memory, std::uint64_t max_steps)
{
    DirectMem view{memory};
    std::uint64_t steps = 0;
    // Sequential-fetch hint: straight-line execution resolves each pc
    // with one compare instead of an address-table lookup.
    std::size_t fetchHint = 0;
    while (steps < max_steps) {
        // Code-region check on the fetch address (§4.1).
        const core::CheckResult fetch_check =
            core::AccessChecker::checkFetch(state.hfi, state.pc);
        if (!fetch_check.ok) {
            state.hfi.enabled = false;
            state.msr = fetch_check.reason;
            break;
        }
        const Inst *inst = program.fetch(state.pc, &fetchHint);
        if (!inst)
            break; // ran off the program: invalid opcode
        const ExecInfo info =
            FunctionalCore::executeOn(*inst, state.pc, state, view);
        ++steps;
        if (info.faulted) {
            // Architectural trap: disable the sandbox, record the MSR.
            state.hfi.enabled = false;
            state.msr = info.faultReason;
            break;
        }
        if (info.halted)
            break;
    }
    return steps;
}

#if defined(__GNUC__) || defined(__clang__)

std::uint64_t
FunctionalCore::run(const Program &program, ArchState &state,
                    SimMemory &memory, std::uint64_t max_steps)
{
    // Threaded-dispatch interpreter (labels-as-values). The hot opcodes
    // — ALU, load/store, hmov, control flow — have dedicated handlers
    // that track the *instruction index* instead of re-resolving the pc
    // each step, take branches through the Program's predecoded target
    // indices, and skip the per-instruction fetch check while
    // fetchCoversProgram holds. Everything else (HFI instructions,
    // syscalls, cpuid, ...) bails out to a literal reference step that
    // runs executeOn and re-proves the fetch predicate, so all
    // bank-touching semantics live in exactly one place (executeOn).
    //
    // state.pc is materialized from the index on every exit from the
    // fast loop, so the architectural state at each return — and at
    // every executeOn call — is identical to runReference's.
    const void *labels[64];
    for (auto &l : labels)
        l = &&op_slow;
#define HFI_SIM_LABEL(op) labels[static_cast<int>(Opcode::op)] = &&op_##op
    HFI_SIM_LABEL(Add);
    HFI_SIM_LABEL(Sub);
    HFI_SIM_LABEL(Mul);
    HFI_SIM_LABEL(And);
    HFI_SIM_LABEL(Or);
    HFI_SIM_LABEL(Xor);
    HFI_SIM_LABEL(Shl);
    HFI_SIM_LABEL(Shr);
    HFI_SIM_LABEL(Mov);
    HFI_SIM_LABEL(Movi);
    HFI_SIM_LABEL(Load);
    HFI_SIM_LABEL(Store);
    HFI_SIM_LABEL(HmovLoad);
    HFI_SIM_LABEL(HmovStore);
    HFI_SIM_LABEL(Beq);
    HFI_SIM_LABEL(Bne);
    HFI_SIM_LABEL(Blt);
    HFI_SIM_LABEL(Bge);
    HFI_SIM_LABEL(Jmp);
    HFI_SIM_LABEL(Call);
    HFI_SIM_LABEL(Ret);
    HFI_SIM_LABEL(Halt);
    HFI_SIM_LABEL(Nop);
#undef HFI_SIM_LABEL

    DirectMem view{memory};
    const Inst *const insts = program.instructions().data();
    const std::size_t count = program.instructionCount();
    auto &regs = state.regs;
    std::uint64_t steps = 0;
    std::size_t fetchHint = 0; // for the reference steps only
    std::size_t index = 0;
    const Inst *inst = nullptr;

// Dispatch invariants: index < count, checkFetch passes for
// addressOf(index) (by fetchCoversProgram), state.pc is stale and gets
// rewritten from the index on every fast-loop exit.
#define HFI_SIM_DISPATCH                                                     \
    do {                                                                     \
        if (steps >= max_steps) {                                            \
            state.pc = program.addressOf(index);                             \
            return steps;                                                    \
        }                                                                    \
        inst = insts + index;                                                \
        ++steps;                                                             \
        goto *labels[static_cast<int>(inst->op)];                            \
    } while (0)

#define HFI_SIM_NEXT                                                         \
    do {                                                                     \
        if (++index == count) {                                              \
            state.pc = program.end();                                        \
            goto bail;                                                       \
        }                                                                    \
        HFI_SIM_DISPATCH;                                                    \
    } while (0)

#define HFI_SIM_FAULT(the_reason)                                            \
    do {                                                                     \
        state.hfi.enabled = false;                                           \
        state.msr = (the_reason);                                            \
        state.pc = program.addressOf(index);                                 \
        return steps;                                                        \
    } while (0)

    for (;;) {
        // Try to (re-)enter the fast loop at the current pc.
        if (count != 0 && fetchCoversProgram(state.hfi, program)) {
            index = program.indexAt(state.pc);
            if (index != Program::kNoInst)
                HFI_SIM_DISPATCH;
        }

        // Reference step: the literal per-instruction semantics,
        // including the fetch check. Handles everything the fast loop
        // bails on (slow opcodes, pcs outside the program, banks that
        // don't cover it).
    reference_step:
        {
            if (steps >= max_steps)
                return steps;
            const core::CheckResult fetch_check =
                core::AccessChecker::checkFetch(state.hfi, state.pc);
            if (!fetch_check.ok) {
                state.hfi.enabled = false;
                state.msr = fetch_check.reason;
                return steps;
            }
            const Inst *ref = program.fetch(state.pc, &fetchHint);
            if (!ref)
                return steps; // ran off the program: invalid opcode
            const ExecInfo info = executeOn(*ref, state.pc, state, view);
            ++steps;
            if (info.faulted) {
                state.hfi.enabled = false;
                state.msr = info.faultReason;
                return steps;
            }
            if (info.halted)
                return steps;
            continue;
        }

    op_Add:
        regs[inst->rd] =
            regs[inst->ra] +
            (inst->useImm ? static_cast<std::uint64_t>(inst->imm)
                          : regs[inst->rb]);
        HFI_SIM_NEXT;
    op_Sub:
        regs[inst->rd] =
            regs[inst->ra] -
            (inst->useImm ? static_cast<std::uint64_t>(inst->imm)
                          : regs[inst->rb]);
        HFI_SIM_NEXT;
    op_Mul:
        regs[inst->rd] =
            regs[inst->ra] *
            (inst->useImm ? static_cast<std::uint64_t>(inst->imm)
                          : regs[inst->rb]);
        HFI_SIM_NEXT;
    op_And:
        regs[inst->rd] =
            regs[inst->ra] &
            (inst->useImm ? static_cast<std::uint64_t>(inst->imm)
                          : regs[inst->rb]);
        HFI_SIM_NEXT;
    op_Or:
        regs[inst->rd] =
            regs[inst->ra] |
            (inst->useImm ? static_cast<std::uint64_t>(inst->imm)
                          : regs[inst->rb]);
        HFI_SIM_NEXT;
    op_Xor:
        regs[inst->rd] =
            regs[inst->ra] ^
            (inst->useImm ? static_cast<std::uint64_t>(inst->imm)
                          : regs[inst->rb]);
        HFI_SIM_NEXT;
    op_Shl:
        regs[inst->rd] =
            regs[inst->ra]
            << ((inst->useImm ? static_cast<std::uint64_t>(inst->imm)
                              : regs[inst->rb]) &
                63);
        HFI_SIM_NEXT;
    op_Shr:
        regs[inst->rd] =
            regs[inst->ra] >>
            ((inst->useImm ? static_cast<std::uint64_t>(inst->imm)
                           : regs[inst->rb]) &
             63);
        HFI_SIM_NEXT;
    op_Mov:
        regs[inst->rd] = regs[inst->ra];
        HFI_SIM_NEXT;
    op_Movi:
        regs[inst->rd] = static_cast<std::uint64_t>(inst->imm);
        HFI_SIM_NEXT;
    op_Nop:
        HFI_SIM_NEXT;

    op_Load: {
        std::uint64_t addr =
            regs[inst->ra] + static_cast<std::uint64_t>(inst->imm);
        if (inst->useIndex)
            addr += regs[inst->rb] * inst->scale;
        const core::CheckResult check = core::AccessChecker::checkData(
            state.hfi, addr, inst->width, false);
        if (!check.ok)
            HFI_SIM_FAULT(check.reason);
        regs[inst->rd] = view.load(addr, inst->width);
        HFI_SIM_NEXT;
    }
    op_Store: {
        std::uint64_t addr =
            regs[inst->ra] + static_cast<std::uint64_t>(inst->imm);
        if (inst->useIndex)
            addr += regs[inst->rb] * inst->scale;
        const core::CheckResult check = core::AccessChecker::checkData(
            state.hfi, addr, inst->width, true);
        if (!check.ok)
            HFI_SIM_FAULT(check.reason);
        view.store(addr, regs[inst->rd], inst->width);
        HFI_SIM_NEXT;
    }
    op_HmovLoad: {
        if (!state.hfi.enabled)
            goto op_slow; // invalid opcode outside HFI mode
        core::HmovOperands ops;
        ops.index = inst->useIndex
                        ? static_cast<std::int64_t>(regs[inst->rb])
                        : 0;
        ops.scale = inst->scale;
        ops.displacement = inst->imm;
        ops.width = inst->width;
        const core::HmovResult res = core::AccessChecker::checkHmov(
            state.hfi, inst->region, ops, false);
        if (!res.ok)
            HFI_SIM_FAULT(res.reason);
        regs[inst->rd] = view.load(res.address, inst->width);
        HFI_SIM_NEXT;
    }
    op_HmovStore: {
        if (!state.hfi.enabled)
            goto op_slow;
        core::HmovOperands ops;
        ops.index = inst->useIndex
                        ? static_cast<std::int64_t>(regs[inst->rb])
                        : 0;
        ops.scale = inst->scale;
        ops.displacement = inst->imm;
        ops.width = inst->width;
        const core::HmovResult res = core::AccessChecker::checkHmov(
            state.hfi, inst->region, ops, true);
        if (!res.ok)
            HFI_SIM_FAULT(res.reason);
        view.store(res.address, regs[inst->rd], inst->width);
        HFI_SIM_NEXT;
    }

    op_Beq:
        if (static_cast<std::int64_t>(regs[inst->ra]) ==
            static_cast<std::int64_t>(regs[inst->rb]))
            goto take_branch;
        HFI_SIM_NEXT;
    op_Bne:
        if (static_cast<std::int64_t>(regs[inst->ra]) !=
            static_cast<std::int64_t>(regs[inst->rb]))
            goto take_branch;
        HFI_SIM_NEXT;
    op_Blt:
        if (static_cast<std::int64_t>(regs[inst->ra]) <
            static_cast<std::int64_t>(regs[inst->rb]))
            goto take_branch;
        HFI_SIM_NEXT;
    op_Bge:
        if (static_cast<std::int64_t>(regs[inst->ra]) >=
            static_cast<std::int64_t>(regs[inst->rb]))
            goto take_branch;
        HFI_SIM_NEXT;
    op_Jmp:
    take_branch: {
        const std::size_t t = program.targetIndexOf(index);
        if (t == Program::kNoInst) {
            // Target is not an instruction start: leave the fast loop
            // with the architectural pc and let the reference step
            // deliver the fetch fault / invalid opcode.
            state.pc = inst->target;
            goto bail;
        }
        index = t;
        HFI_SIM_DISPATCH;
    }
    op_Call: {
        regs[kLinkReg] = program.addressOf(index) + inst->length;
        const std::size_t t = program.targetIndexOf(index);
        if (t == Program::kNoInst) {
            state.pc = inst->target;
            goto bail;
        }
        index = t;
        HFI_SIM_DISPATCH;
    }
    op_Ret: {
        const std::uint64_t ret_pc = regs[kLinkReg];
        const std::size_t t = program.indexAt(ret_pc);
        if (t == Program::kNoInst) {
            state.pc = ret_pc;
            goto bail;
        }
        index = t;
        HFI_SIM_DISPATCH;
    }

    op_Halt:
        state.pc = program.addressOf(index) + inst->length;
        return steps;

    op_slow:
        // Not a fast opcode (HFI instructions, syscall, cpuid, div,
        // flush, ...) — or an hmov outside HFI mode. Re-run this
        // instruction through the reference step (it was counted at
        // dispatch, so uncount it first), which also re-proves the
        // fetch predicate afterwards: these are exactly the
        // instructions that can change the bank. Jumping straight to
        // the reference step — not the loop top — is what terminates:
        // re-entering the fast path would dispatch the same slow
        // opcode forever.
        --steps;
        state.pc = program.addressOf(index);
        goto reference_step;

    bail:
        continue;
    }

#undef HFI_SIM_DISPATCH
#undef HFI_SIM_NEXT
#undef HFI_SIM_FAULT
}

#else // !(__GNUC__ || __clang__)

std::uint64_t
FunctionalCore::run(const Program &program, ArchState &state,
                    SimMemory &memory, std::uint64_t max_steps)
{
    return runReference(program, state, memory, max_steps);
}

#endif

} // namespace hfi::sim
