/**
 * @file
 * The baseline core configuration — Table 2 of the paper.
 *
 * | Frequency   | 3.3 GHz        | i-cache      | 32 KiB, 8-way  |
 * | Fetch width | 16 B           | d-cache      | 32 KiB, 8-way  |
 * | Issue width | 8 uops         | Decode width | 5 uops         |
 * | INT regfile | 186 regs       | IQ           | 97 entries     |
 * | LQ/SQ       | 64/36 entries  | Int ALU      | 4, Mult 1      |
 * | ROB         | 224 entries    |              |                |
 */

#ifndef HFI_SIM_CPU_CONFIG_H
#define HFI_SIM_CPU_CONFIG_H

#include "sim/branch_predictor.h"
#include "sim/cache.h"
#include "sim/tlb.h"

namespace hfi::sim
{

/** Structural and latency parameters of the modeled core. */
struct CpuConfig
{
    std::uint64_t freqMhz = 3300;

    unsigned fetchBytes = 16;
    unsigned decodeWidth = 5;
    unsigned issueWidth = 8;
    unsigned commitWidth = 8;
    unsigned robSize = 224;
    unsigned lqSize = 64;
    unsigned sqSize = 36;
    unsigned decodeQueueDepth = 24;

    unsigned intAluCount = 4;
    unsigned intMultCount = 1;
    unsigned memPortCount = 2;

    unsigned aluLatency = 1;
    unsigned mulLatency = 3;
    unsigned divLatency = 20;

    /** Front-end refill after a taken redirect (mispredict penalty). */
    unsigned redirectPenalty = 10;
    /** Extra drain cost of serializing instructions (cpuid-class). */
    unsigned serializeFlushCycles = 28;

    CacheConfig icache{32 * 1024, 8, 64, 1, 12};
    CacheConfig dcache{32 * 1024, 8, 64, 4, 80};
    TlbConfig dtb{};
    PredictorConfig predictor{};
};

} // namespace hfi::sim

#endif // HFI_SIM_CPU_CONFIG_H
