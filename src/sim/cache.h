/**
 * @file
 * A set-associative cache with true-LRU replacement, used for the L1
 * instruction and data caches (Table 2: 32 KiB, 8-way, 64 B lines).
 *
 * Two properties matter beyond hit/miss timing:
 *
 *  - Fills and LRU updates are side effects an attacker can observe
 *    with a timing probe, so the Spectre experiments (Fig 7) inspect
 *    and time this exact structure; and
 *  - the HFI pipeline *withholds* the fill/update when a bounds check
 *    fails — §4.1's "no metadata updates if there has been a fault" —
 *    which is the mechanism that defeats the cache side channel.
 */

#ifndef HFI_SIM_CACHE_H
#define HFI_SIM_CACHE_H

#include <cstdint>
#include <vector>

namespace hfi::sim
{

/** Cache geometry + latencies. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned ways = 8;
    unsigned lineBytes = 64;
    unsigned hitLatency = 4;   ///< cycles
    unsigned missLatency = 80; ///< cycles to memory (flat, no L2 model)
};

/** Result of a cache access. */
struct CacheAccess
{
    bool hit = false;
    unsigned latency = 0;
};

class Cache
{
  public:
    explicit Cache(CacheConfig config = {});

    /**
     * Access the line containing @p addr: on a miss the line is filled
     * (evicting LRU); either way the LRU stamp is refreshed. This is
     * the normal, side-effecting path.
     */
    CacheAccess access(std::uint64_t addr);

    /**
     * Timing-only probe: report what an access *would* cost without
     * touching any cache state. Used for the faulting-access path
     * (§4.1: a failed bounds check must not update cache metadata) and
     * by tests that inspect state non-destructively.
     */
    CacheAccess probe(std::uint64_t addr) const;

    /** True if the line containing @p addr is present. */
    bool contains(std::uint64_t addr) const;

    /** Evict the line containing @p addr (the attacker's clflush). */
    void flush(std::uint64_t addr);

    /** Evict everything. */
    void flushAll();

    const CacheConfig &config() const { return config_; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    struct Line
    {
        bool valid = false;
        std::uint64_t tag = 0;
        std::uint64_t lruStamp = 0;
    };

    std::uint64_t lineFor(std::uint64_t addr) const
    {
        return pow2_ ? addr >> lineShift_ : addr / config_.lineBytes;
    }

    unsigned setOf(std::uint64_t line) const
    {
        return pow2_ ? static_cast<unsigned>(line & (sets - 1))
                     : static_cast<unsigned>(line % sets);
    }

    std::uint64_t tagOf(std::uint64_t line) const
    {
        return pow2_ ? line >> setShift_ : line / sets;
    }

    CacheConfig config_;
    unsigned sets;
    std::vector<Line> lines; ///< sets x ways
    std::uint64_t stamp = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;

    /** Shift/mask index math when geometry is power-of-two (it is for
     *  every configured cache; the division path is the fallback). */
    bool pow2_ = false;
    unsigned lineShift_ = 0;
    unsigned setShift_ = 0;

    /**
     * MRU filter: the line of the previous access(), if still valid.
     * A repeat access must hit (nothing evicted it since) and already
     * holds the youngest stamp in its set, so skipping the LRU re-stamp
     * cannot change any replacement decision — the fast path is exact.
     */
    std::uint64_t lastLine_ = 0;
    bool lastLineValid_ = false;
};

} // namespace hfi::sim

#endif // HFI_SIM_CACHE_H
