/**
 * @file
 * An NGINX-style static webserver with a sandboxed "OpenSSL" session
 * layer — the §6.4.2 / Fig 5 experiment.
 *
 * The server answers requests for files of a given size; each response
 * is encrypted in TLS-sized records with real ChaCha20 keyed by a
 * per-connection session key. The crypto module and the session keys
 * are what gets protected, ERIM-style, under one of three schemes:
 *
 *  - None: keys live in plain process memory (the Heartbleed exposure);
 *  - Hfi: each crypto call enters an HFI *native* sandbox (no
 *    recompilation) with serialized enter/exit and the key region
 *    metadata re-loaded from memory on every transition — the paper's
 *    explanation for HFI's slightly-higher-than-MPK cost (Fig 5);
 *  - Mpk: each crypto call switches the MPK domain with wrpkru on the
 *    way in and out (ERIM's transition sequence).
 *
 * The encryption itself is identical across schemes, so throughput
 * differences isolate exactly the protection-domain crossing costs.
 */

#ifndef HFI_NGINX_SERVER_H
#define HFI_NGINX_SERVER_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/context.h"
#include "mpk/mpk.h"
#include "syscall/interposer.h"
#include "vm/virtual_clock.h"

namespace hfi::nginx
{

/** How session keys / crypto state are protected. */
enum class SessionProtection
{
    None,
    Hfi,
    Mpk,
};

const char *sessionProtectionName(SessionProtection p);

/** Server cost/shape parameters. */
struct ServerConfig
{
    SessionProtection protection = SessionProtection::None;
    /** TLS record size: one crypto call (at least) per record. */
    std::uint64_t recordBytes = 16 * 1024;
    /**
     * Protection-domain crossings per request that are independent of
     * the payload (handshake-adjacent key derivations, MAC keys, IV
     * setup — ERIM counts dozens for NGINX+OpenSSL).
     */
    unsigned fixedCryptoCalls = 28;
    /** Additional crossings per TLS record (encrypt + MAC). */
    unsigned callsPerRecord = 6;
    /** Event-loop + parsing + header cost per request, ns. */
    double requestFixedNs = 9500.0;
    /** ChaCha20 throughput in cycles per byte. */
    double cryptoCyclesPerByte = 1.2;
};

/** One scheme's Fig 5 measurement at one file size. */
struct ServeStats
{
    std::uint64_t requests = 0;
    double totalNs = 0;
    std::uint64_t bytesServed = 0;

    double
    throughputRps() const
    {
        return totalNs > 0 ? static_cast<double>(requests) * 1e9 / totalNs
                           : 0;
    }
};

/**
 * The server: owns the session-key buffer, programs the protection
 * scheme, and serves requests against virtual time.
 */
class NginxServer
{
  public:
    NginxServer(vm::Mmu &mmu, core::HfiContext &ctx,
                mpk::MpkDomainManager &mpk, syscall::MiniKernel &kernel,
                ServerConfig config = {});

    /** Publish a file of @p size bytes at @p path. */
    void addFile(const std::string &path, std::uint64_t size,
                 std::uint32_t seed);

    /**
     * Serve @p count requests for @p path and return the stats; the
     * response payload is genuinely encrypted (the checksum of the
     * ciphertext is folded into the stats for verification).
     */
    ServeStats serve(const std::string &path, std::uint64_t count);

    /** FNV checksum over all ciphertext bytes produced so far. */
    std::uint64_t ciphertextChecksum() const { return cipherSum; }

    /** Virtual address of the (protected) session-key buffer. */
    vm::VAddr sessionKeyAddress() const { return keyAddr; }

    core::HfiContext &context() { return ctx; }

  private:
    /** Cross into the crypto domain, do @p bytes of cipher, cross out. */
    void cryptoCall(std::uint64_t bytes);

    vm::Mmu &mmu;
    core::HfiContext &ctx;
    mpk::MpkDomainManager &mpk_;
    syscall::MiniKernel &kernel;
    ServerConfig config_;

    vm::VAddr keyAddr = 0;
    unsigned mpkKey = 0;
    std::uint64_t cipherSum = 0xcbf29ce484222325ULL;
    std::uint32_t cipherCounter = 1;
};

} // namespace hfi::nginx

#endif // HFI_NGINX_SERVER_H
