#include "nginx/server.h"

#include <algorithm>

#include "workloads/crypto.h"

namespace hfi::nginx
{

const char *
sessionProtectionName(SessionProtection p)
{
    switch (p) {
      case SessionProtection::None: return "unsafe";
      case SessionProtection::Hfi: return "hfi";
      case SessionProtection::Mpk: return "mpk";
    }
    return "?";
}

NginxServer::NginxServer(vm::Mmu &mmu, core::HfiContext &ctx,
                         mpk::MpkDomainManager &mpk,
                         syscall::MiniKernel &kernel, ServerConfig config)
    : mmu(mmu), ctx(ctx), mpk_(mpk), kernel(kernel), config_(config)
{
    // Allocate the session-key page and protect it per the scheme.
    auto addr = mmu.mmap(vm::kPageSize, vm::PageProt::ReadWrite);
    keyAddr = addr.value_or(0);

    if (config_.protection == SessionProtection::Mpk) {
        if (auto key = mpk_.pkeyAlloc()) {
            mpkKey = *key;
            mpk_.pkeyMprotect(keyAddr, vm::kPageSize, mpkKey);
        }
        // Default PKRU: crypto domain closed.
        mpk_.switchToDomain(0);
    }
}

void
NginxServer::addFile(const std::string &path, std::uint64_t size,
                     std::uint32_t seed)
{
    kernel.addFile(path, size, seed);
}

void
NginxServer::cryptoCall(std::uint64_t bytes)
{
    auto &clock = mmu.clock();

    switch (config_.protection) {
      case SessionProtection::None:
        break;
      case SessionProtection::Hfi: {
        // Program the key region (metadata moves from memory to HFI
        // registers on each transition — §6.4.2) and enter a native
        // sandbox with serialized transitions.
        core::ImplicitDataRegion keys;
        keys.basePrefix = keyAddr;
        keys.lsbMask = vm::kPageSize - 1;
        keys.permRead = true;
        keys.permWrite = true;
        ctx.setRegion(core::kFirstImplicitDataRegion, keys);

        core::SandboxConfig sc;
        sc.isHybrid = false;
        sc.isSerialized = true;
        sc.exitHandler = 0x7100'0000;
        ctx.enter(sc);
        break;
      }
      case SessionProtection::Mpk:
        mpk_.switchToDomain(mpkKey);
        break;
    }

    // The cipher work itself (identical across schemes).
    clock.tick(static_cast<vm::Cycles>(
        config_.cryptoCyclesPerByte * static_cast<double>(bytes)));

    switch (config_.protection) {
      case SessionProtection::None:
        break;
      case SessionProtection::Hfi:
        ctx.exit();
        break;
      case SessionProtection::Mpk:
        mpk_.switchToDomain(0);
        break;
    }
}

ServeStats
NginxServer::serve(const std::string &path, std::uint64_t count)
{
    auto &clock = mmu.clock();
    ServeStats stats;
    const double start = clock.nowNs();

    // Session key derived once per serve batch (per "connection").
    std::array<std::uint8_t, 32> key{};
    for (int i = 0; i < 32; ++i)
        key[i] = static_cast<std::uint8_t>(i * 37 + 11);
    std::array<std::uint8_t, 12> nonce{};

    for (std::uint64_t r = 0; r < count; ++r) {
        // Event loop + request parse + response headers.
        clock.tick(clock.nsToCycles(config_.requestFixedNs));

        // Fixed key-handling crossings (handshake-adjacent work).
        for (unsigned c = 0; c < config_.fixedCryptoCalls; ++c)
            cryptoCall(64);

        // Read and encrypt the payload record by record.
        const int fd = kernel.open(path);
        if (fd < 0)
            continue;
        std::vector<std::uint8_t> record(config_.recordBytes);
        std::int64_t got;
        while ((got = kernel.read(fd, record.data(), record.size())) > 0) {
            for (unsigned c = 1; c < config_.callsPerRecord; ++c)
                cryptoCall(64); // MAC / IV bookkeeping crossings
            cryptoCall(static_cast<std::uint64_t>(got));

            // Real encryption of the record (host-side compute whose
            // cycle cost was charged in cryptoCall).
            const auto stream =
                workloads::crypto::chacha20Block(key, nonce, cipherCounter++);
            for (std::int64_t i = 0; i < got; ++i) {
                const std::uint8_t b =
                    record[static_cast<std::size_t>(i)] ^ stream[i % 64];
                cipherSum ^= b;
                cipherSum *= 0x100000001b3ULL;
            }
            stats.bytesServed += static_cast<std::uint64_t>(got);
        }
        kernel.close(fd);
        ++stats.requests;
    }

    stats.totalNs = clock.nowNs() - start;
    return stats;
}

} // namespace hfi::nginx
