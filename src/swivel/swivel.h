/**
 * @file
 * A cost model of Swivel-SFI — the fastest software Spectre hardening
 * for Wasm, and Table 1's comparison point (§6.5).
 *
 * Swivel [53] recompiles Wasm so speculation cannot leave the sandbox:
 * code is rewritten into *linear blocks* (single-entry, fence-guarded),
 * conditional branches are hardened, indirect calls go through a
 * speculation-safe dispatch, and the protected stack is separated. The
 * run-time price is paid per control-flow operation, so a workload's
 * overhead is determined by its branch/call density — which is why
 * Table 1 spans everything from ~0% (straight-line image classification
 * kernels) to ~70% (branchy string templating). The binary price is
 * paid per code byte (fences + block padding), which is why the image-
 * classification binary (34 MiB of model weights, little code) barely
 * grows while the others gain ~0.6 MiB.
 *
 * We model exactly those two mechanisms: a compute multiplier derived
 * from a static CodeProfile, and code-section bloat.
 */

#ifndef HFI_SWIVEL_SWIVEL_H
#define HFI_SWIVEL_SWIVEL_H

#include <cstdint>
#include <string>

namespace hfi::swivel
{

/** Static shape of a workload's compiled code. */
struct CodeProfile
{
    std::string name;
    /** Conditional branches per 1000 executed ops. */
    double branchesPerKiloOp = 0;
    /** Indirect calls/returns per 1000 executed ops. */
    double callsPerKiloOp = 0;
    /** Code-section bytes of the stock binary. */
    std::uint64_t codeBytes = 0;
    /** Non-code bytes (data, model weights, embedded assets). */
    std::uint64_t dataBytes = 0;
};

/** Tunable Swivel transform costs. */
struct SwivelCosts
{
    /**
     * Extra cycles per hardened conditional branch (register-poisoned
     * CBP conversion in Swivel-SFI).
     */
    double perBranchCycles = 2.1;
    /** Extra cycles per hardened indirect call/return (BTB-safe
     *  dispatch + separate-stack shuffle). */
    double perCallCycles = 14.0;
    /** Code-section growth factor from fences and block padding. */
    double codeBloat = 0.43;
};

/** The effect of Swivel-hardening one workload. */
struct SwivelEffect
{
    /** Multiplier on the workload's executed cycles. */
    double computeFactor = 1.0;
    /** Hardened binary size in bytes. */
    std::uint64_t binaryBytes = 0;
};

/** Apply the Swivel-SFI transform model to @p profile. */
SwivelEffect apply(const CodeProfile &profile, const SwivelCosts &costs = {});

/** The Table 1 workload profiles (calibrated; see EXPERIMENTS.md). */
CodeProfile xmlToJsonProfile();
CodeProfile imageClassifyProfile();
CodeProfile checkShaProfile();
CodeProfile templatedHtmlProfile();

} // namespace hfi::swivel

#endif // HFI_SWIVEL_SWIVEL_H
