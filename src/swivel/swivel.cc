#include "swivel/swivel.h"

#include <cmath>

namespace hfi::swivel
{

SwivelEffect
apply(const CodeProfile &profile, const SwivelCosts &costs)
{
    SwivelEffect effect;
    effect.computeFactor =
        1.0 +
        profile.branchesPerKiloOp * costs.perBranchCycles / 1000.0 +
        profile.callsPerKiloOp * costs.perCallCycles / 1000.0;
    effect.binaryBytes =
        static_cast<std::uint64_t>(
            std::llround(static_cast<double>(profile.codeBytes) *
                         (1.0 + costs.codeBloat))) +
        profile.dataBytes;
    return effect;
}

namespace
{
constexpr std::uint64_t kMiB = 1024 * 1024;
}

CodeProfile
xmlToJsonProfile()
{
    // Branchy byte-at-a-time parsing; 3.5 MiB binary, ~1.4 MiB code.
    return {"XML to JSON", 150.0, 2.0, static_cast<std::uint64_t>(1.4 * kMiB),
            static_cast<std::uint64_t>(2.1 * kMiB)};
}

CodeProfile
imageClassifyProfile()
{
    // Straight-line fixed-point kernels; the 34.3 MiB binary is almost
    // entirely model weights, so Swivel's code bloat barely registers.
    return {"Image classification", 2.0, 0.5,
            static_cast<std::uint64_t>(0.47 * kMiB),
            static_cast<std::uint64_t>(33.84 * kMiB)};
}

CodeProfile
checkShaProfile()
{
    // Hash rounds are unrolled and straight-line; the framing and
    // comparison code adds a modest branch count.
    return {"Check SHA-256", 43.0, 1.0,
            static_cast<std::uint64_t>(1.63 * kMiB),
            static_cast<std::uint64_t>(2.27 * kMiB)};
}

CodeProfile
templatedHtmlProfile()
{
    // String scanning, token dispatch, and callback-style substitution:
    // the branchiest of the four, hence Table 1's worst case.
    return {"Templated HTML", 250.0, 15.0,
            static_cast<std::uint64_t>(1.4 * kMiB),
            static_cast<std::uint64_t>(2.2 * kMiB)};
}

} // namespace hfi::swivel
