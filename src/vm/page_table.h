/**
 * @file
 * VMA-style page permission tracking with a sparse resident-page set.
 *
 * Mapped memory is tracked as ranges (like the kernel's VMA tree), so an
 * 8 GiB guard-page reservation costs one entry rather than two million.
 * Residency (physical backing) is tracked per touched page, since our
 * workloads only touch a small fraction of the reserved space — exactly
 * the situation §2 of the paper describes. madvise(MADV_DONTNEED), the
 * operation HFI-Wasmtime batches in §5.1/§6.3.1, discards residency.
 */

#ifndef HFI_VM_PAGE_TABLE_H
#define HFI_VM_PAGE_TABLE_H

#include <cstdint>
#include <map>
#include <set>

#include "vm/address_space.h"

namespace hfi::vm
{

/** Page protection bits, matching PROT_READ/WRITE/EXEC. */
enum class PageProt : std::uint8_t
{
    None = 0,
    Read = 1,
    Write = 2,
    ReadWrite = 3,
    Exec = 4,
    ReadExec = 5,
};

/** True if @p prot includes read permission. */
constexpr bool
protReadable(PageProt prot)
{
    return (static_cast<std::uint8_t>(prot) & 1) != 0;
}

/** True if @p prot includes write permission. */
constexpr bool
protWritable(PageProt prot)
{
    return (static_cast<std::uint8_t>(prot) & 2) != 0;
}

/** True if @p prot includes execute permission. */
constexpr bool
protExecutable(PageProt prot)
{
    return (static_cast<std::uint8_t>(prot) & 4) != 0;
}

/**
 * Range-based page permissions plus per-page residency.
 *
 * All addresses and sizes are page aligned by the caller (the Mmu);
 * methods assert nothing and simply operate on page-rounded ranges.
 */
class PageTable
{
  public:
    /** Map [addr, addr+size) with protection @p prot, overwriting. */
    void map(VAddr addr, std::uint64_t size, PageProt prot);

    /** Unmap [addr, addr+size); also drops residency in the range. */
    void unmap(VAddr addr, std::uint64_t size);

    /** Change protection over [addr, addr+size) where mapped. */
    void protect(VAddr addr, std::uint64_t size, PageProt prot);

    /**
     * Discard residency (madvise(MADV_DONTNEED)) over [addr, addr+size).
     * @return number of pages that were resident and got discarded.
     */
    std::uint64_t discard(VAddr addr, std::uint64_t size);

    /**
     * Protection covering @p addr.
     * @return the protection, or PageProt::None when unmapped.
     */
    PageProt protectionAt(VAddr addr) const;

    /** True if any mapping (even PROT_NONE) covers @p addr. */
    bool isMapped(VAddr addr) const;

    /** True if the page containing @p addr is resident. */
    bool isResident(VAddr addr) const;

    /** Mark the page containing @p addr resident (a first touch). */
    void touch(VAddr addr);

    /** Number of distinct mapped ranges (VMAs). */
    std::size_t vmaCount() const { return vmas.size(); }

    /** Number of resident pages. */
    std::uint64_t residentPages() const { return resident.size(); }

  private:
    struct Vma
    {
        VAddr end; ///< one past the last byte
        PageProt prot;
    };

    /**
     * Remove all mapping state in [start, end), splitting VMAs that
     * straddle the boundary. Used by map/unmap/protect.
     */
    void carve(VAddr start, VAddr end);

    /** start -> {end, prot}; ranges are disjoint. */
    std::map<VAddr, Vma> vmas;
    /** Page numbers of resident pages. */
    std::set<VAddr> resident;
};

} // namespace hfi::vm

#endif // HFI_VM_PAGE_TABLE_H
