#include "vm/page_table.h"

namespace hfi::vm
{

void
PageTable::carve(VAddr start, VAddr end)
{
    // Find the first VMA that could overlap [start, end).
    auto it = vmas.upper_bound(start);
    if (it != vmas.begin())
        --it;

    while (it != vmas.end() && it->first < end) {
        const VAddr vma_start = it->first;
        const VAddr vma_end = it->second.end;
        const PageProt prot = it->second.prot;

        if (vma_end <= start) {
            ++it;
            continue;
        }

        it = vmas.erase(it);
        if (vma_start < start)
            vmas.emplace(vma_start, Vma{start, prot});
        if (vma_end > end)
            it = vmas.emplace(end, Vma{vma_end, prot}).first;
    }
}

void
PageTable::map(VAddr addr, std::uint64_t size, PageProt prot)
{
    const VAddr start = alignDown(addr, kPageSize);
    const VAddr end = alignUp(addr + size, kPageSize);
    carve(start, end);
    vmas.emplace(start, Vma{end, prot});
    // Fresh mappings start non-resident (lazy zero pages).
    resident.erase(resident.lower_bound(start / kPageSize),
                   resident.lower_bound(end / kPageSize));
}

void
PageTable::unmap(VAddr addr, std::uint64_t size)
{
    const VAddr start = alignDown(addr, kPageSize);
    const VAddr end = alignUp(addr + size, kPageSize);
    carve(start, end);
    resident.erase(resident.lower_bound(start / kPageSize),
                   resident.lower_bound(end / kPageSize));
}

void
PageTable::protect(VAddr addr, std::uint64_t size, PageProt prot)
{
    const VAddr start = alignDown(addr, kPageSize);
    const VAddr end = alignUp(addr + size, kPageSize);
    carve(start, end);
    vmas.emplace(start, Vma{end, prot});
}

std::uint64_t
PageTable::discard(VAddr addr, std::uint64_t size)
{
    const VAddr start = alignDown(addr, kPageSize) / kPageSize;
    const VAddr end = alignUp(addr + size, kPageSize) / kPageSize;
    auto first = resident.lower_bound(start);
    auto last = resident.lower_bound(end);
    const auto count =
        static_cast<std::uint64_t>(std::distance(first, last));
    resident.erase(first, last);
    return count;
}

PageProt
PageTable::protectionAt(VAddr addr) const
{
    auto it = vmas.upper_bound(addr);
    if (it == vmas.begin())
        return PageProt::None;
    --it;
    if (addr >= it->second.end)
        return PageProt::None;
    return it->second.prot;
}

bool
PageTable::isMapped(VAddr addr) const
{
    auto it = vmas.upper_bound(addr);
    if (it == vmas.begin())
        return false;
    --it;
    return addr < it->second.end;
}

bool
PageTable::isResident(VAddr addr) const
{
    return resident.count(addr / kPageSize) != 0;
}

void
PageTable::touch(VAddr addr)
{
    resident.insert(addr / kPageSize);
}

} // namespace hfi::vm
