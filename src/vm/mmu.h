/**
 * @file
 * Process memory-management model: mmap/mprotect/madvise/munmap with a
 * calibrated virtual-time cost model.
 *
 * The paper's guard-page baseline leans on exactly these syscalls:
 *  - sandbox creation reserves 8 GiB with mmap(PROT_NONE),
 *  - heap growth calls mprotect() per 64 KiB increment (§6.1),
 *  - sandbox teardown calls madvise(MADV_DONTNEED) (§5.1, §6.3.1),
 * and their costs (ring transition, VMA walking, per-page work, TLB
 * shootdown) are what HFI elides. The cost constants below are calibrated
 * so that the microbenchmarks land on the paper's absolute numbers
 * (25.7 µs stock teardown, ~166 µs per mprotect-grow, etc.); they are
 * documented per-constant and swappable for sensitivity studies.
 */

#ifndef HFI_VM_MMU_H
#define HFI_VM_MMU_H

#include <cstdint>
#include <optional>

#include "vm/address_space.h"
#include "vm/page_table.h"
#include "vm/virtual_clock.h"

namespace hfi::vm
{

/**
 * Cost parameters for modeled memory-management syscalls, in nanoseconds.
 *
 * Calibration sources (see DESIGN.md):
 *  - syscallFixedNs: user->kernel->user transition incl. KPTI-era
 *    overhead, ~1.8 µs.
 *  - mprotectShootdownNs: permission changes broadcast TLB-invalidate
 *    IPIs; calibrated so a 16-page mprotect grow costs ~166 µs total,
 *    matching the paper's 10.92 s for 65535 grows.
 *  - madvise*: calibrated to the paper's 25.7 µs per-sandbox stock
 *    teardown / 23.1 µs batched / 31.1 µs batched-with-guard-pages split
 *    (fixed ~2.6 µs, ~1.44 µs per resident page discarded, ~1.95 ns per
 *    non-present 2 MiB PMD range skipped — the kernel's zap walk skips
 *    empty page-table subtrees at PMD granularity, which is exactly why
 *    batching across 8 GiB guard regions costs ~8 µs per sandbox while
 *    batching across HFI's guard-free adjacent heaps costs nothing).
 */
struct MmuCostParams
{
    double syscallFixedNs = 1800.0;

    double mmapReserveNs = 1400.0;      ///< VMA insert for a reservation
    double mmapPerPageNs = 0.0;         ///< lazy mapping: no per-page cost
    double munmapFixedNs = 1200.0;      ///< VMA removal
    double munmapShootdownNs = 16000.0; ///< TLB shootdown on unmap

    double mprotectFixedNs = 1000.0;
    double mprotectShootdownNs = 135100.0;
    double mprotectPerPageNs = 1440.0;

    double madviseFixedNs = 800.0;
    double madvisePerResidentPageNs = 1440.0;
    double madvisePerWalkedPmdNs = 1.95;

    double pageFaultNs = 1100.0; ///< minor fault on first touch
};

/** Aggregate syscall statistics, for tests and reporting. */
struct MmuStats
{
    std::uint64_t mmapCalls = 0;
    std::uint64_t munmapCalls = 0;
    std::uint64_t mprotectCalls = 0;
    std::uint64_t madviseCalls = 0;
    std::uint64_t pageFaults = 0;
    std::uint64_t pagesDiscarded = 0;
};

/** Result of an access check against the page table. */
enum class AccessResult
{
    Ok,
    NotMapped,   ///< SIGSEGV: no VMA / PROT_NONE guard page
    BadPermission///< SIGSEGV: mapped but permission missing
};

/**
 * The process-level memory management unit.
 *
 * Combines the reservation map (AddressSpace) with page-level state
 * (PageTable) and charges every modeled syscall to the VirtualClock.
 */
class Mmu
{
  public:
    Mmu(VirtualClock &clock, unsigned va_bits = 47,
        MmuCostParams params = {});

    /**
     * Reserve @p size bytes of address space with no access
     * (mmap(PROT_NONE)) — how Wasm runtimes reserve heap + guard region.
     * @return base address or std::nullopt when the VA space is full.
     */
    std::optional<VAddr> mmapReserve(std::uint64_t size,
                                     std::uint64_t align = kPageSize);

    /** Reserve and map [addr, addr+size) at a fixed address. */
    bool mmapFixed(VAddr addr, std::uint64_t size, PageProt prot);

    /** Map @p size bytes anywhere with protection @p prot. */
    std::optional<VAddr> mmap(std::uint64_t size, PageProt prot,
                              std::uint64_t align = kPageSize);

    /** Unmap the reservation starting at @p addr. */
    bool munmap(VAddr addr);

    /** Change protections on a page range (charges shootdown cost). */
    void mprotect(VAddr addr, std::uint64_t size, PageProt prot);

    /**
     * madvise(MADV_DONTNEED): discard residency over [addr, addr+size).
     * Walks every page in the range (resident or not) like the kernel
     * does, which is why batching across guard regions is costly without
     * HFI (§6.3.1).
     */
    void madviseDontneed(VAddr addr, std::uint64_t size);

    /**
     * Check a data access of @p size bytes at @p addr. First touches
     * charge a minor page fault and mark the page resident.
     */
    AccessResult access(VAddr addr, std::uint64_t size, bool write);

    /** Check an instruction fetch at @p addr. */
    AccessResult fetch(VAddr addr);

    const MmuStats &stats() const { return stats_; }
    const MmuCostParams &params() const { return params_; }
    AddressSpace &addressSpace() { return space; }
    PageTable &pageTable() { return table; }
    VirtualClock &clock() { return clock_; }

  private:
    void charge(double ns) { clock_.tick(clock_.nsToCycles(ns)); }

    VirtualClock &clock_;
    AddressSpace space;
    PageTable table;
    MmuCostParams params_;
    MmuStats stats_;
};

} // namespace hfi::vm

#endif // HFI_VM_MMU_H
