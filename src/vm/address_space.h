/**
 * @file
 * Virtual address-space reservation bookkeeping.
 *
 * Models the finite user-level virtual address space that §2 of the paper
 * identifies as the scaling bottleneck for guard-page-based Wasm: each
 * sandbox reserves 8 GiB (4 GiB heap + 4 GiB guard) even when it uses a
 * few megabytes. The AddressSpace tracks reservations like the kernel's
 * VMA tree so we can reproduce the §6.3.2 scalability experiment.
 */

#ifndef HFI_VM_ADDRESS_SPACE_H
#define HFI_VM_ADDRESS_SPACE_H

#include <cstdint>
#include <map>
#include <optional>

namespace hfi::vm
{

/** A virtual address. */
using VAddr = std::uint64_t;

/** Size of a (small) page: 4 KiB. */
constexpr std::uint64_t kPageSize = 4096;

/** Round @p v down to a multiple of @p align (power of two). */
constexpr std::uint64_t
alignDown(std::uint64_t v, std::uint64_t align)
{
    return v & ~(align - 1);
}

/** Round @p v up to a multiple of @p align (power of two). */
constexpr std::uint64_t
alignUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/**
 * Tracks virtual-memory reservations within a process address space.
 *
 * Reservations are kept in an ordered map keyed by start address, exactly
 * one entry per disjoint reserved range. Allocation uses a first-fit
 * search from the bottom of the usable range.
 */
class AddressSpace
{
  public:
    /**
     * Create an address space with @p va_bits of user virtual address
     * space (the paper discusses both the common 47-bit / 128 TiB user
     * split and 48-bit / 256 TiB full use).
     *
     * The lowest 1 MiB is left unusable to model the standard mmap_min_addr
     * reservation.
     */
    explicit AddressSpace(unsigned va_bits = 47);

    /**
     * Reserve @p size bytes anywhere, aligned to @p align.
     * @return the start address, or std::nullopt if the space is full.
     */
    std::optional<VAddr> reserve(std::uint64_t size,
                                 std::uint64_t align = kPageSize);

    /**
     * Reserve the exact range [addr, addr+size).
     * @return true on success, false if it overlaps an existing
     *         reservation or exceeds the usable range.
     */
    bool reserveFixed(VAddr addr, std::uint64_t size);

    /** Release a previously reserved range starting at @p addr. */
    bool release(VAddr addr);

    /**
     * Size of the reservation whose base is exactly @p base, or
     * std::nullopt if no reservation starts there.
     */
    std::optional<std::uint64_t> rangeAt(VAddr base) const;

    /** True if @p addr falls inside any reservation. */
    bool isReserved(VAddr addr) const;

    /** Total bytes currently reserved. */
    std::uint64_t reservedBytes() const { return reserved_; }

    /** Total usable bytes in this address space. */
    std::uint64_t usableBytes() const { return limit - base; }

    /** Number of live reservations. */
    std::size_t reservationCount() const { return ranges.size(); }

    /** Number of user VA bits. */
    unsigned vaBits() const { return bits; }

  private:
    unsigned bits;
    VAddr base;  ///< lowest usable address
    VAddr limit; ///< one past the highest usable address

    /** start -> size of each reservation. */
    std::map<VAddr, std::uint64_t> ranges;
    std::uint64_t reserved_ = 0;
    /** One past the highest reservation ever made. */
    VAddr highWater = 0;
    /** True when a release may have opened holes below highWater. */
    bool hasHoles = false;
};

} // namespace hfi::vm

#endif // HFI_VM_ADDRESS_SPACE_H
