#include "vm/mmu.h"

namespace hfi::vm
{

Mmu::Mmu(VirtualClock &clock, unsigned va_bits, MmuCostParams params)
    : clock_(clock), space(va_bits), params_(params)
{
}

std::optional<VAddr>
Mmu::mmapReserve(std::uint64_t size, std::uint64_t align)
{
    ++stats_.mmapCalls;
    charge(params_.syscallFixedNs + params_.mmapReserveNs);
    auto base = space.reserve(size, align);
    if (base)
        table.map(*base, alignUp(size, kPageSize), PageProt::None);
    return base;
}

bool
Mmu::mmapFixed(VAddr addr, std::uint64_t size, PageProt prot)
{
    ++stats_.mmapCalls;
    charge(params_.syscallFixedNs + params_.mmapReserveNs);
    size = alignUp(size, kPageSize);
    if (!space.reserveFixed(addr, size))
        return false;
    table.map(addr, size, prot);
    return true;
}

std::optional<VAddr>
Mmu::mmap(std::uint64_t size, PageProt prot, std::uint64_t align)
{
    ++stats_.mmapCalls;
    charge(params_.syscallFixedNs + params_.mmapReserveNs);
    size = alignUp(size, kPageSize);
    auto base = space.reserve(size, align);
    if (base)
        table.map(*base, size, prot);
    return base;
}

bool
Mmu::munmap(VAddr addr)
{
    ++stats_.munmapCalls;
    charge(params_.syscallFixedNs + params_.munmapFixedNs +
           params_.munmapShootdownNs);
    auto size = space.rangeAt(addr);
    if (!size || !space.release(addr))
        return false;
    table.unmap(addr, *size);
    return true;
}

void
Mmu::mprotect(VAddr addr, std::uint64_t size, PageProt prot)
{
    ++stats_.mprotectCalls;
    const std::uint64_t pages =
        (alignUp(addr + size, kPageSize) - alignDown(addr, kPageSize)) /
        kPageSize;
    charge(params_.syscallFixedNs + params_.mprotectFixedNs +
           params_.mprotectShootdownNs +
           params_.mprotectPerPageNs * static_cast<double>(pages));
    table.protect(alignDown(addr, kPageSize), pages * kPageSize, prot);
}

void
Mmu::madviseDontneed(VAddr addr, std::uint64_t size)
{
    ++stats_.madviseCalls;
    const VAddr start = alignDown(addr, kPageSize);
    const VAddr end = alignUp(addr + size, kPageSize);
    // The kernel's zap walk visits resident pages individually but skips
    // empty page-table subtrees at PMD (2 MiB) granularity.
    constexpr std::uint64_t pmd_size = 2 * 1024 * 1024;
    const std::uint64_t pmds =
        (alignUp(end, pmd_size) - alignDown(start, pmd_size)) / pmd_size;
    const std::uint64_t discarded = table.discard(start, end - start);
    stats_.pagesDiscarded += discarded;
    charge(params_.syscallFixedNs + params_.madviseFixedNs +
           params_.madvisePerResidentPageNs *
               static_cast<double>(discarded) +
           params_.madvisePerWalkedPmdNs * static_cast<double>(pmds));
}

AccessResult
Mmu::access(VAddr addr, std::uint64_t size, bool write)
{
    // A single access may straddle a page boundary; check both ends.
    for (VAddr probe : {addr, addr + size - 1}) {
        const PageProt prot = table.protectionAt(probe);
        if (prot == PageProt::None)
            return AccessResult::NotMapped;
        if (write ? !protWritable(prot) : !protReadable(prot))
            return AccessResult::BadPermission;
        if (!table.isResident(probe)) {
            ++stats_.pageFaults;
            charge(params_.pageFaultNs);
            table.touch(probe);
        }
        if (addr / kPageSize == (addr + size - 1) / kPageSize)
            break;
    }
    return AccessResult::Ok;
}

AccessResult
Mmu::fetch(VAddr addr)
{
    const PageProt prot = table.protectionAt(addr);
    if (prot == PageProt::None)
        return AccessResult::NotMapped;
    if (!protExecutable(prot))
        return AccessResult::BadPermission;
    if (!table.isResident(addr)) {
        ++stats_.pageFaults;
        charge(params_.pageFaultNs);
        table.touch(addr);
    }
    return AccessResult::Ok;
}

} // namespace hfi::vm
