/**
 * @file
 * Deterministic virtual time source used by all experiments.
 *
 * Every subsystem charges its costs (in cycles) to a VirtualClock instead
 * of reading wall-clock time. This makes every benchmark in the repository
 * bit-for-bit reproducible across machines while preserving the relative
 * cost structure the paper measures.
 */

#ifndef HFI_VM_VIRTUAL_CLOCK_H
#define HFI_VM_VIRTUAL_CLOCK_H

#include <cstdint>

namespace hfi::vm
{

/** Cycles of the modeled core. */
using Cycles = std::uint64_t;

/**
 * A monotonically advancing virtual cycle counter.
 *
 * The clock models a fixed-frequency core (default 3.3 GHz, matching the
 * paper's Table 2 baseline). Conversions to nanoseconds use that
 * frequency.
 */
class VirtualClock
{
  public:
    /** Construct a clock at cycle zero with the given frequency in MHz. */
    explicit VirtualClock(std::uint64_t freq_mhz = 3300)
        : freqMhz(freq_mhz),
          nsPerCycle_(1000.0 / static_cast<double>(freq_mhz))
    {
    }

    /** Advance the clock by @p cycles. */
    void tick(Cycles cycles) { now_ += cycles; }

    /** Current virtual cycle count. */
    Cycles now() const { return now_; }

    /** Current virtual time in nanoseconds. */
    double nowNs() const { return cyclesToNs(now_); }

    /**
     * nowNs() through a cached reciprocal: one multiply instead of a
     * divide. May differ from nowNs() in the last ulp (two roundings
     * instead of one), but is the same pure function of the cycle
     * count on every run and host — trace timestamps use this so that
     * recording an event never pays a floating-point divide. Not for
     * values that feed modeled results; those stay on nowNs().
     */
    double
    nowNsFast() const
    {
        return static_cast<double>(now_) * nsPerCycle_;
    }

    /** Current virtual time in microseconds. */
    double nowUs() const { return nowNs() / 1e3; }

    /** Current virtual time in milliseconds. */
    double nowMs() const { return nowNs() / 1e6; }

    /** Current virtual time in seconds. */
    double nowSec() const { return nowNs() / 1e9; }

    /** Convert a cycle count to nanoseconds at this clock's frequency. */
    double
    cyclesToNs(Cycles cycles) const
    {
        return static_cast<double>(cycles) * 1000.0 /
               static_cast<double>(freqMhz);
    }

    /** Convert nanoseconds to cycles at this clock's frequency. */
    Cycles
    nsToCycles(double ns) const
    {
        return static_cast<Cycles>(ns * static_cast<double>(freqMhz) /
                                   1000.0);
    }

    /** Core frequency in MHz. */
    std::uint64_t frequencyMhz() const { return freqMhz; }

    /** Reset the clock to cycle zero. */
    void reset() { now_ = 0; }

  private:
    std::uint64_t freqMhz;
    double nsPerCycle_;
    Cycles now_ = 0;
};

} // namespace hfi::vm

#endif // HFI_VM_VIRTUAL_CLOCK_H
