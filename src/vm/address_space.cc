#include "vm/address_space.h"

#include <algorithm>

namespace hfi::vm
{

AddressSpace::AddressSpace(unsigned va_bits)
    : bits(va_bits),
      base(1ULL << 20),
      limit(1ULL << va_bits)
{
}

std::optional<VAddr>
AddressSpace::reserve(std::uint64_t size, std::uint64_t align)
{
    if (size == 0)
        return std::nullopt;
    size = alignUp(size, kPageSize);

    VAddr candidate = alignUp(base, align);
    if (!hasHoles) {
        // Fast path: nothing was ever released below the high-water
        // mark, so first fit is the bump allocator.
        candidate = alignUp(std::max(base, highWater), align);
    } else {
        for (const auto &[start, len] : ranges) {
            if (candidate + size <= start)
                break;
            if (start + len > candidate)
                candidate = alignUp(start + len, align);
        }
        if (candidate >= highWater)
            hasHoles = false; // the scan found no usable hole
    }
    if (candidate + size > limit || candidate + size < candidate)
        return std::nullopt;

    ranges.emplace(candidate, size);
    reserved_ += size;
    highWater = std::max(highWater, candidate + size);
    return candidate;
}

bool
AddressSpace::reserveFixed(VAddr addr, std::uint64_t size)
{
    if (size == 0 || addr != alignDown(addr, kPageSize))
        return false;
    size = alignUp(size, kPageSize);
    if (addr < base || addr + size > limit || addr + size < addr)
        return false;

    // Find the first range ending after addr and check for overlap.
    auto it = ranges.upper_bound(addr);
    if (it != ranges.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second > addr)
            return false;
    }
    if (it != ranges.end() && it->first < addr + size)
        return false;

    ranges.emplace(addr, size);
    reserved_ += size;
    highWater = std::max(highWater, addr + size);
    // A fixed mapping below other reservations does not open holes, but
    // the gap in front of it might now be unreachable by the bump path;
    // force a scan next time to stay first-fit correct.
    hasHoles = true;
    return true;
}

bool
AddressSpace::release(VAddr addr)
{
    auto it = ranges.find(addr);
    if (it == ranges.end())
        return false;
    reserved_ -= it->second;
    ranges.erase(it);
    hasHoles = true;
    return true;
}

std::optional<std::uint64_t>
AddressSpace::rangeAt(VAddr base) const
{
    auto it = ranges.find(base);
    if (it == ranges.end())
        return std::nullopt;
    return it->second;
}

bool
AddressSpace::isReserved(VAddr addr) const
{
    auto it = ranges.upper_bound(addr);
    if (it == ranges.begin())
        return false;
    auto prev = std::prev(it);
    return addr >= prev->first && addr < prev->first + prev->second;
}

} // namespace hfi::vm
