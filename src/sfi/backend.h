/**
 * @file
 * The pluggable isolation backend interface.
 *
 * The paper contrasts four ways of enforcing a Wasm linear memory's
 * bounds (§2, §5.2, Fig 3):
 *
 *  - guard pages: the memory is placed in an 8 GiB reservation whose
 *    inaccessible tail traps out-of-bounds accesses via the MMU;
 *  - bounds checks: a compare+branch precedes every access;
 *  - address masking: classic Wahbe-style SFI, which silently wraps
 *    out-of-bounds accesses instead of trapping;
 *  - HFI: an explicit region accessed through hmov, checked in hardware
 *    in parallel with address translation.
 *
 * A backend provides two things: *enforcement* (checkAccess decides
 * whether an access traps and where it lands) and *costs* (a small POD of
 * per-access/per-op overheads that the Sandbox charges on the hot path,
 * plus lifecycle methods that charge MMU/HFI work to the virtual clock).
 */

#ifndef HFI_SFI_BACKEND_H
#define HFI_SFI_BACKEND_H

#include <cstdint>
#include <string>

#include "vm/virtual_clock.h"

namespace hfi::sfi
{

class LinearMemory;

/** Which isolation scheme a sandbox uses. */
enum class BackendKind
{
    GuardPages,
    BoundsCheck,
    Mask,
    Hfi,
};

/** Printable backend name (matches the labels used in the figures). */
const char *backendKindName(BackendKind kind);

/** What a checked access should do. */
enum class AccessOutcome
{
    Ok,       ///< access proceeds at the given offset
    Wrapped,  ///< masking forced the offset in-bounds (no trap!) — §2
    Trap,     ///< precise trap (SIGSEGV / HFI fault)
};

/** Result of an isolation check. */
struct AccessCheck
{
    AccessOutcome outcome = AccessOutcome::Trap;
    /** Offset actually accessed (equals the request unless Wrapped). */
    std::uint64_t offset = 0;
};

/**
 * Steady-state costs the Sandbox charges inline on every access/op.
 *
 * Expressed in milli-cycles so sub-cycle amortized costs (a fraction of
 * a compare absorbed by the out-of-order window, register-pressure
 * spill costs smeared over all instructions) stay deterministic without
 * floating point on the hot path.
 */
struct SteadyStateCosts
{
    /** Extra milli-cycles per load beyond the bare memory operation. */
    std::uint64_t loadExtraMilli = 0;
    /** Extra milli-cycles per store. */
    std::uint64_t storeExtraMilli = 0;
    /**
     * Register-pressure tax in milli-cycles per charged ALU op: the
     * cost of pinning the heap base (guard pages: one register, §6.1
     * measures 2.25%) or base+bound (bounds checks: two registers,
     * 2.40%) in general-purpose registers.
     */
    std::uint64_t opPressureMilli = 0;
    /**
     * Instruction-cache tax in milli-cycles per load/store, scaled by
     * the workload's icache sensitivity (0..100): hmov's longer
     * encodings hurt big-code workloads like 445.gobmk (§6.1).
     */
    std::uint64_t icacheMilliPerAccess = 0;
};

/**
 * Abstract isolation backend. One instance per sandbox.
 */
class IsolationBackend
{
  public:
    virtual ~IsolationBackend() = default;

    virtual BackendKind kind() const = 0;

    /**
     * Create the sandbox's address-space footprint for a memory of
     * @p initial_pages growable to @p max_pages.
     * @return false when address space is exhausted (the §6.3.2
     *         scalability limit).
     */
    virtual bool create(std::uint64_t initial_pages,
                        std::uint64_t max_pages) = 0;

    /** Tear down the footprint (the §6.3.1 teardown path). */
    virtual void destroy() = 0;

    /**
     * The memory grew from @p old_pages to @p new_pages: charge whatever
     * the scheme needs (mprotect for guard pages, hfi_set_region for
     * HFI, a bound-variable update for bounds checks).
     */
    virtual void grow(std::uint64_t old_pages, std::uint64_t new_pages) = 0;

    /** Check (and possibly redirect) an access of @p width at @p offset. */
    virtual AccessCheck checkAccess(std::uint64_t offset, std::uint32_t width,
                                    bool write,
                                    const LinearMemory &mem) = 0;

    /**
     * Re-install any per-core state this sandbox's enforcement depends
     * on (HFI: hfi_set_region of the heap region, §6.4.2). Needed when
     * an instance is dispatched on a core whose register state was
     * swapped since the instance last ran — the warm-pool dispatch path
     * — and must happen before any region-locking hfi_enter. Schemes
     * whose enforcement lives in the address space (guard pages, masks,
     * bounds variables) need nothing: the default is free.
     */
    virtual void rebindRegions() {}

    /** Transition into sandboxed execution; charges transition cost. */
    virtual void enterSandbox() = 0;

    /** Transition back to the host. */
    virtual void exitSandbox() = 0;

    /** Steady-state per-access/per-op cost table. */
    virtual SteadyStateCosts steadyStateCosts() const = 0;

    /** Virtual-address-space bytes this sandbox's footprint reserves. */
    virtual std::uint64_t reservedVaBytes() const = 0;

    /** Base virtual address of the linear memory (0 before create()). */
    virtual std::uint64_t baseAddress() const = 0;
};

} // namespace hfi::sfi

#endif // HFI_SFI_BACKEND_H
