/**
 * @file
 * The trusted sandbox runtime: creates, pools, and reclaims sandboxes.
 *
 * Models the Wasmtime integration of §5.1: sandboxes are created
 * back-to-back in the address space (first-fit, so consecutive instances
 * are VA-adjacent), and instance memories are reclaimed with
 * madvise(MADV_DONTNEED). Three reclaim policies reproduce §6.3.1:
 *
 *  - Stock: one madvise per sandbox (25.7 µs each in the paper);
 *  - Batched: one madvise spanning a whole group of adjacent sandboxes.
 *    With HFI's guard-free layout the heaps are contiguous and batching
 *    wins (23.1 µs); with guard pages the kernel must walk the 8 GiB
 *    holes between heaps and batching *loses* (31.1 µs).
 */

#ifndef HFI_SFI_RUNTIME_H
#define HFI_SFI_RUNTIME_H

#include <cstdint>
#include <memory>
#include <vector>

#include "core/context.h"
#include "sfi/backend.h"
#include "sfi/bounds_check_backend.h"
#include "sfi/guard_page_backend.h"
#include "sfi/hfi_backend.h"
#include "sfi/mask_backend.h"
#include "sfi/sandbox.h"
#include "vm/mmu.h"

namespace hfi::sfi
{

/** How the runtime reclaims instance memories (§6.3.1). */
enum class ReclaimPolicy
{
    Stock,   ///< one madvise(MADV_DONTNEED) per sandbox
    Batched, ///< one madvise spanning each group of adjacent sandboxes
};

/** Runtime-wide configuration. */
struct RuntimeConfig
{
    BackendKind backend = BackendKind::GuardPages;
    /** HFI sandbox options (used when backend == Hfi). */
    HfiBackendConfig hfi{};
    /** Cost tables for the software backends. */
    GuardPageCosts guardCosts{};
    BoundsCheckCosts boundsCosts{};
    MaskCosts maskCosts{};
    /** Guard-region size for the guard-page backend. */
    std::uint64_t guardBytes = 4ULL << 30;
};

/**
 * Creates sandboxes over a shared Mmu/HfiContext and implements the
 * lifecycle policies the FaaS experiments measure.
 */
class Runtime
{
  public:
    Runtime(vm::Mmu &mmu, core::HfiContext &ctx, RuntimeConfig config = {});

    /** Construct a backend of the configured kind. */
    std::unique_ptr<IsolationBackend> makeBackend();

    /**
     * Create a sandbox; returns nullptr when the address space cannot
     * hold another footprint (the §6.3.2 limit).
     */
    std::unique_ptr<Sandbox> createSandbox(SandboxOptions opts = {});

    /**
     * Reclaim the memories of @p sandboxes.
     *
     * With ReclaimPolicy::Batched, sandboxes are grouped into runs of
     * @p batch_size and each run is reclaimed with a single madvise
     * spanning from the first footprint to the last — including
     * whatever guard regions lie in between, which is exactly the cost
     * HFI's guard elision removes.
     */
    void reclaim(const std::vector<Sandbox *> &sandboxes,
                 ReclaimPolicy policy, std::size_t batch_size = 32);

    /**
     * Largest number of sandboxes with @p heap_bytes heaps that fit in
     * the remaining address space under this runtime's backend
     * footprint rules (analytic version of the §6.3.2 experiment).
     */
    std::uint64_t addressSpaceCapacity(std::uint64_t heap_bytes) const;

    vm::Mmu &mmu() { return mmu_; }
    core::HfiContext &context() { return ctx; }
    const RuntimeConfig &config() const { return config_; }

  private:
    vm::Mmu &mmu_;
    core::HfiContext &ctx;
    RuntimeConfig config_;
};

} // namespace hfi::sfi

#endif // HFI_SFI_RUNTIME_H
