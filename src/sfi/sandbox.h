/**
 * @file
 * A sandbox instance: one linear memory + one isolation backend + the
 * metered execution surface that workloads run against.
 *
 * Workloads perform *real* computation — loads and stores move genuine
 * bytes through LinearMemory so functional results are testable — while
 * every access is (a) checked by the configured isolation backend and
 * (b) charged to the virtual clock with the backend's steady-state cost
 * structure. This is the same separation the paper's compiler-based
 * emulation makes (§5.2): real work, modeled isolation costs.
 */

#ifndef HFI_SFI_SANDBOX_H
#define HFI_SFI_SANDBOX_H

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sfi/backend.h"
#include "sfi/linear_memory.h"
#include "vm/mmu.h"

namespace hfi::sfi
{

/**
 * Thrown when a sandboxed access traps (guard-page SIGSEGV, bounds-check
 * trap stub, or HFI fault). Mask backends never throw — that is their
 * documented defect.
 */
class SandboxTrap : public std::runtime_error
{
  public:
    SandboxTrap(std::uint64_t offset, std::uint32_t width, bool write);

    std::uint64_t offset() const { return offset_; }
    std::uint32_t width() const { return width_; }
    bool isWrite() const { return write_; }

  private:
    std::uint64_t offset_;
    std::uint32_t width_;
    bool write_;
};

/** Per-sandbox construction parameters. */
struct SandboxOptions
{
    std::uint64_t initialPages = 1;
    std::uint64_t maxPages = 65536; ///< 4 GiB, the Wasm limit
    /**
     * How sensitive this workload's code footprint is to instruction-
     * cache pressure (0..100). Big-code workloads (445.gobmk) suffer
     * from hmov's longer encodings (§6.1); small kernels do not.
     */
    unsigned icacheSensitivity = 0;
    /**
     * Runtime bookkeeping charged per memory_grow call in nanoseconds
     * (instance table updates, libcall trampoline). Calibrated so the
     * §6.1 grow microbenchmark lands on the paper's 370 ms HFI total.
     */
    double growRuntimeNs = 5640.0;
};

/** Execution counters for one sandbox. */
struct SandboxStats
{
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t ops = 0;
    std::uint64_t growCalls = 0;
    std::uint64_t traps = 0;
    std::uint64_t wrappedAccesses = 0;
    std::uint64_t invocations = 0;
};

/**
 * One sandbox instance.
 *
 * Thin, fast hot path: load/store perform the backend check, charge the
 * cached milli-cycle cost, page in newly touched 4 KiB pages through the
 * Mmu (first touch only), and move real bytes.
 */
class Sandbox
{
  public:
    /**
     * Create a sandbox over @p backend. The backend's create() runs
     * immediately; failure (address space exhausted) leaves valid()
     * false — the §6.3.2 scaling limit.
     */
    Sandbox(std::unique_ptr<IsolationBackend> backend, vm::Mmu &mmu,
            SandboxOptions opts = {});
    ~Sandbox();

    Sandbox(const Sandbox &) = delete;
    Sandbox &operator=(const Sandbox &) = delete;

    /** True when the backend's address-space footprint was created. */
    bool valid() const { return valid_; }

    /** Re-install per-core enforcement state on warm dispatch. */
    void rebindRegions() { backend_->rebindRegions(); }

    /** Enter sandboxed execution (springboard / hfi_enter). */
    void enter();

    /** Leave sandboxed execution (trampoline / hfi_exit). */
    void exit();

    /**
     * Run @p fn between enter() and exit(), converting a SandboxTrap
     * into a false return. The normal way workloads are invoked.
     */
    template <typename F>
    bool
    invoke(F &&fn)
    {
        ++stats_.invocations;
        enter();
        bool ok = true;
        try {
            fn(*this);
        } catch (const SandboxTrap &) {
            ++stats_.traps;
            ok = false;
        }
        exit();
        return ok;
    }

    /** memory_grow: add @p delta_pages. @return prior size or -1. */
    std::int64_t memoryGrow(std::uint64_t delta_pages);

    /** Typed load at @p offset; throws SandboxTrap on a violation. */
    template <typename T>
    T
    load(std::uint64_t offset)
    {
        const std::uint64_t at = checkedOffset(offset, sizeof(T), false);
        ++stats_.loads;
        chargeMilli(1000 + loadMilli);
        return memory_.load<T>(at);
    }

    /** Typed store at @p offset; throws SandboxTrap on a violation. */
    template <typename T>
    void
    store(std::uint64_t offset, T value)
    {
        const std::uint64_t at = checkedOffset(offset, sizeof(T), true);
        ++stats_.stores;
        chargeMilli(1000 + storeMilli);
        memory_.store<T>(at, value);
    }

    /**
     * Charge @p n ALU/control operations of compute. One op is one
     * cycle at the model's IPC=1 baseline, plus the backend's register-
     * pressure tax.
     */
    void
    chargeOps(std::uint64_t n)
    {
        stats_.ops += n;
        chargeMilli(n * (1000 + opMilli));
    }

    LinearMemory &memory() { return memory_; }
    const LinearMemory &memory() const { return memory_; }
    IsolationBackend &backend() { return *backend_; }
    const SandboxStats &stats() const { return stats_; }
    vm::Mmu &mmu() { return mmu_; }

    /** Flush accumulated sub-cycle charge to the clock (done on exit). */
    void flushCharge();

  private:
    /** Backend check + first-touch paging; returns the final offset. */
    std::uint64_t checkedOffset(std::uint64_t offset, std::uint32_t width,
                                bool write);

    void
    chargeMilli(std::uint64_t milli)
    {
        pendingMilli += milli;
        if (pendingMilli >= kFlushThresholdMilli)
            flushCharge();
    }

    /**
     * Flush granularity: accumulated sub-cycle charge is pushed to the
     * clock once it reaches ~1000 cycles, so no observer (queueing
     * models in particular) ever sees a large deferred burst.
     */
    static constexpr std::uint64_t kFlushThresholdMilli = 1'000'000;

    std::unique_ptr<IsolationBackend> backend_;
    vm::Mmu &mmu_;
    LinearMemory memory_;
    SandboxOptions opts;
    bool valid_ = false;

    /** Cached per-access costs (backend table + icache sensitivity). */
    std::uint64_t loadMilli = 0;
    std::uint64_t storeMilli = 0;
    std::uint64_t opMilli = 0;

    std::uint64_t pendingMilli = 0;
    /** First-touch tracking per 4 KiB page of the linear memory. */
    std::vector<bool> touched;

    SandboxStats stats_;
};

} // namespace hfi::sfi

#endif // HFI_SFI_SANDBOX_H
