#include "sfi/multi_memory.h"

#include <algorithm>

namespace hfi::sfi
{

MultiMemorySandbox::MultiMemorySandbox(vm::Mmu &mmu, core::HfiContext &ctx,
                                       unsigned memory_count,
                                       std::uint64_t initial_pages,
                                       std::uint64_t max_pages)
    : mmu(mmu), ctx(ctx), maxPages(max_pages)
{
    slots.fill(-1);
    memories.reserve(memory_count);
    for (unsigned i = 0; i < memory_count; ++i) {
        Memory memory;
        memory.storage =
            std::make_unique<LinearMemory>(initial_pages, max_pages);
        // Guard-free footprint: exactly the declared maximum, nothing
        // more — this is the §2 contrast with the per-memory 8 GiB of
        // guard-page multi-memory.
        auto base = mmu.mmap(max_pages * kWasmPageSize,
                             vm::PageProt::ReadWrite, kWasmPageSize);
        if (!base)
            return;
        memory.base = *base;
        reservedVa += max_pages * kWasmPageSize;
        memories.push_back(std::move(memory));
    }
    valid_ = true;
}

MultiMemorySandbox::~MultiMemorySandbox()
{
    for (Memory &memory : memories) {
        if (memory.base)
            mmu.munmap(memory.base);
    }
}

void
MultiMemorySandbox::enter()
{
    core::SandboxConfig cfg;
    cfg.isHybrid = true; // the runtime inside multiplexes the registers
    cfg.isSerialized = true;
    ctx.enter(cfg);
}

void
MultiMemorySandbox::exit()
{
    ctx.exit();
}

void
MultiMemorySandbox::programSlot(unsigned slot, unsigned memory)
{
    core::ExplicitDataRegion region;
    region.baseAddress = memories[memory].base;
    region.bound = memories[memory].storage->size();
    region.permRead = true;
    region.permWrite = true;
    region.isLargeRegion = true;
    // §4.3: inside the hybrid sandbox this update serializes —
    // HfiContext charges the cost.
    ctx.setRegion(core::kFirstExplicitRegion + slot, region);
}

unsigned
MultiMemorySandbox::ensureBound(unsigned memory)
{
    Memory &m = memories[memory];
    if (m.slot >= 0) {
        slotLru[static_cast<unsigned>(m.slot)] = ++lruClock;
        return static_cast<unsigned>(m.slot);
    }

    // Evict the LRU slot.
    unsigned victim = 0;
    for (unsigned s = 1; s < core::kNumExplicitRegions; ++s) {
        if (slots[s] < 0) {
            victim = s;
            break;
        }
        if (slotLru[s] < slotLru[victim])
            victim = s;
    }
    if (slots[victim] >= 0)
        memories[static_cast<unsigned>(slots[victim])].slot = -1;

    slots[victim] = static_cast<int>(memory);
    slotLru[victim] = ++lruClock;
    m.slot = static_cast<int>(victim);
    programSlot(victim, memory);
    ++stats_.rebinds;
    return victim;
}

void
MultiMemorySandbox::check(unsigned slot, std::uint64_t offset,
                          std::uint32_t width, bool write)
{
    ++stats_.accesses;
    core::HmovOperands ops;
    ops.index = static_cast<std::int64_t>(offset);
    ops.width = width;
    const auto res = core::AccessChecker::checkHmov(ctx, slot, ops, write);
    if (!res.ok) {
        ++stats_.traps;
        throw SandboxTrap(offset, width, write);
    }
}

std::int64_t
MultiMemorySandbox::memoryGrow(unsigned memory, std::uint64_t delta_pages)
{
    const std::int64_t prev = memories[memory].storage->grow(delta_pages);
    if (prev < 0)
        return -1;
    // If the memory is live in a slot, refresh the bound register —
    // still just a register update (§6.1).
    if (memories[memory].slot >= 0)
        programSlot(static_cast<unsigned>(memories[memory].slot), memory);
    return prev;
}

} // namespace hfi::sfi
