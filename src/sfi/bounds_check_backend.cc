#include "sfi/bounds_check_backend.h"

#include "sfi/linear_memory.h"

namespace hfi::sfi
{

BoundsCheckBackend::BoundsCheckBackend(vm::Mmu &mmu, BoundsCheckCosts costs)
    : mmu(mmu), costs_(costs)
{
}

BoundsCheckBackend::~BoundsCheckBackend()
{
    if (live)
        destroy();
}

bool
BoundsCheckBackend::create(std::uint64_t initial_pages,
                           std::uint64_t max_pages)
{
    maxBytes = max_pages * kWasmPageSize;
    auto addr = mmu.mmapReserve(maxBytes, kWasmPageSize);
    if (!addr)
        return false;
    base = *addr;
    live = true;
    if (initial_pages > 0)
        grow(0, initial_pages);
    return true;
}

void
BoundsCheckBackend::destroy()
{
    if (!live)
        return;
    mmu.munmap(base);
    live = false;
    base = 0;
}

void
BoundsCheckBackend::grow(std::uint64_t old_pages, std::uint64_t new_pages)
{
    // The software bound variable is updated for free, but the new pages
    // still need read-write backing before they can be touched.
    const std::uint64_t old_bytes = old_pages * kWasmPageSize;
    const std::uint64_t new_bytes = new_pages * kWasmPageSize;
    if (new_bytes > old_bytes) {
        mmu.mprotect(base + old_bytes, new_bytes - old_bytes,
                     vm::PageProt::ReadWrite);
    }
}

AccessCheck
BoundsCheckBackend::checkAccess(std::uint64_t offset, std::uint32_t width,
                                bool write, const LinearMemory &mem)
{
    (void)write;
    // The emitted compare+branch: trap stub when out of bounds. The
    // cycle cost of the check itself is charged via steadyStateCosts on
    // the Sandbox hot path.
    if (offset + width <= mem.size())
        return {AccessOutcome::Ok, offset};
    return {AccessOutcome::Trap, offset};
}

void
BoundsCheckBackend::enterSandbox()
{
    mmu.clock().tick(costs_.transitionCycles);
}

void
BoundsCheckBackend::exitSandbox()
{
    mmu.clock().tick(costs_.transitionCycles);
}

SteadyStateCosts
BoundsCheckBackend::steadyStateCosts() const
{
    SteadyStateCosts costs;
    costs.loadExtraMilli = costs_.checkMilli + costs_.addressingMilli;
    costs.storeExtraMilli = costs_.checkMilli + costs_.addressingMilli;
    costs.opPressureMilli = costs_.opPressureMilli;
    return costs;
}

} // namespace hfi::sfi
