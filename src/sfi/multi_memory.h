/**
 * @file
 * Wasm multi-memory support (§2, §3.3.1).
 *
 * "Popular Wasm runtimes support multiple memories per-instance (e.g.,
 * for sharing data between instances)" — and under guard pages each one
 * costs another 8 GiB of address space. With HFI each memory is an
 * explicit region; an instance with more memories than the four
 * explicit region registers "can multiplex HFI's (finite) registers
 * among a larger number of multi-memories" from inside its hybrid
 * sandbox (§3.3.1), paying a serialized hfi_set_region per rebind
 * (§4.3).
 *
 * MultiMemorySandbox implements exactly that: N linear memories, an
 * LRU binding of memories to the explicit region slots, transparent
 * rebinding on access, and real enforcement through the hmov checker.
 */

#ifndef HFI_SFI_MULTI_MEMORY_H
#define HFI_SFI_MULTI_MEMORY_H

#include <cstdint>
#include <memory>
#include <vector>

#include "core/checker.h"
#include "core/context.h"
#include "sfi/linear_memory.h"
#include "sfi/sandbox.h"
#include "vm/mmu.h"

namespace hfi::sfi
{

/** Per-instance counters. */
struct MultiMemoryStats
{
    std::uint64_t accesses = 0;
    std::uint64_t rebinds = 0;
    std::uint64_t traps = 0;
};

/**
 * An instance with @p memory_count linear memories multiplexed over the
 * explicit region registers.
 */
class MultiMemorySandbox
{
  public:
    /**
     * @param memory_count how many memories the instance declares.
     * @param initial_pages / @p max_pages per memory.
     * @return invalid (valid() == false) when the address space cannot
     *         hold the footprints.
     */
    MultiMemorySandbox(vm::Mmu &mmu, core::HfiContext &ctx,
                       unsigned memory_count,
                       std::uint64_t initial_pages = 1,
                       std::uint64_t max_pages = 16);
    ~MultiMemorySandbox();

    MultiMemorySandbox(const MultiMemorySandbox &) = delete;
    MultiMemorySandbox &operator=(const MultiMemorySandbox &) = delete;

    bool valid() const { return valid_; }

    /** Enter the instance's hybrid sandbox (regions stay writable). */
    void enter();

    /** Leave it. */
    void exit();

    /** Typed access to memory @p memory at @p offset. @{ */
    template <typename T>
    T
    load(unsigned memory, std::uint64_t offset)
    {
        const unsigned slot = ensureBound(memory);
        check(slot, offset, sizeof(T), false);
        return memories[memory].storage->load<T>(offset);
    }

    template <typename T>
    void
    store(unsigned memory, std::uint64_t offset, T value)
    {
        const unsigned slot = ensureBound(memory);
        check(slot, offset, sizeof(T), true);
        memories[memory].storage->store<T>(offset, value);
    }
    /** @} */

    /** memory_grow on memory @p memory. */
    std::int64_t memoryGrow(unsigned memory, std::uint64_t delta_pages);

    unsigned memoryCount() const
    {
        return static_cast<unsigned>(memories.size());
    }

    /** Slot a memory is currently bound to, or -1. */
    int boundSlot(unsigned memory) const { return memories[memory].slot; }

    /** Total address-space footprint (no guard regions!). */
    std::uint64_t reservedVaBytes() const { return reservedVa; }

    const MultiMemoryStats &stats() const { return stats_; }

  private:
    struct Memory
    {
        std::unique_ptr<LinearMemory> storage;
        vm::VAddr base = 0;
        int slot = -1;
    };

    /** Bind @p memory to an explicit slot (LRU evict), lazily. */
    unsigned ensureBound(unsigned memory);

    /** Program slot @p slot with @p memory's current descriptor. */
    void programSlot(unsigned slot, unsigned memory);

    /** Enforce via the hmov checker; throws SandboxTrap on violation. */
    void check(unsigned slot, std::uint64_t offset, std::uint32_t width,
               bool write);

    vm::Mmu &mmu;
    core::HfiContext &ctx;
    std::vector<Memory> memories;
    /** slot -> memory index (or -1). */
    std::array<int, core::kNumExplicitRegions> slots{};
    /** LRU stamps per slot. */
    std::array<std::uint64_t, core::kNumExplicitRegions> slotLru{};
    std::uint64_t lruClock = 0;
    std::uint64_t maxPages;
    std::uint64_t reservedVa = 0;
    bool valid_ = false;
    MultiMemoryStats stats_;
};

} // namespace hfi::sfi

#endif // HFI_SFI_MULTI_MEMORY_H
