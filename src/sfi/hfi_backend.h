/**
 * @file
 * The HFI backend: the linear memory is an explicit *large* region
 * accessed through hmov (§3.2, §5.1).
 *
 * Mirrors the paper's Wasm2c integration: no guard reservation (the 4 GiB
 * virtual-memory footprint shrinks to just the heap, enabling §6.3.2's
 * 256,000-sandbox scaling), mprotect-based growth replaced by a region-
 * register update (§6.1's 30x faster heap growth), and hfi_enter /
 * hfi_exit — optionally serialized for Spectre protection (§3.4) — around
 * sandbox transitions.
 *
 * Bounds enforcement goes through the real AccessChecker::checkHmov
 * bit-level check, so out-of-bounds accesses trap with the same precise
 * semantics the hardware provides.
 */

#ifndef HFI_SFI_HFI_BACKEND_H
#define HFI_SFI_HFI_BACKEND_H

#include "core/checker.h"
#include "core/context.h"
#include "sfi/backend.h"
#include "vm/mmu.h"

namespace hfi::sfi
{

/** Configuration of the HFI-backed sandbox. */
struct HfiBackendConfig
{
    /** Serialize hfi_enter/hfi_exit for Spectre protection (§3.4). */
    bool serialized = true;
    /** Use the switch-on-exit extension instead of serializing (§4.5). */
    bool switchOnExit = false;
    /** Which explicit region / hmov index carries the heap (0..3). */
    unsigned explicitSlot = 0;
    /**
     * Per-access icache tax in milli-cycles at sensitivity 100: hmov's
     * longer instruction encodings pressure the icache on big-code
     * workloads (§6.1, 445.gobmk).
     */
    std::uint64_t icacheMilliPerAccess = 4;
    /** Residual hmov addressing milli-cycles per access (the hmov µop
     *  replaces the base add; a small residue remains when the access
     *  stream saturates the AGU — used by the Firefox benches). */
    std::uint64_t addressingMilli = 0;
};

class HfiBackend : public IsolationBackend
{
  public:
    HfiBackend(vm::Mmu &mmu, core::HfiContext &ctx,
               HfiBackendConfig config = {});
    ~HfiBackend() override;

    BackendKind kind() const override { return BackendKind::Hfi; }

    bool create(std::uint64_t initial_pages,
                std::uint64_t max_pages) override;
    void destroy() override;
    void grow(std::uint64_t old_pages, std::uint64_t new_pages) override;
    AccessCheck checkAccess(std::uint64_t offset, std::uint32_t width,
                            bool write, const LinearMemory &mem) override;
    void rebindRegions() override;
    void enterSandbox() override;
    void exitSandbox() override;
    SteadyStateCosts steadyStateCosts() const override;

    std::uint64_t reservedVaBytes() const override { return maxBytes; }

    std::uint64_t baseAddress() const override { return base; }

    /** Exit reason of the last trapping access (for tests). */
    core::ExitReason lastTrapReason() const { return lastTrap; }

    const HfiBackendConfig &config() const { return config_; }

  private:
    /** Write the heap region descriptor into the explicit-region slot. */
    void programRegion(std::uint64_t accessible_bytes);

    vm::Mmu &mmu;
    core::HfiContext &ctx;
    HfiBackendConfig config_;
    std::uint64_t maxBytes = 0;
    std::uint64_t accessibleBytes = 0;
    vm::VAddr base = 0;
    bool live = false;
    core::ExitReason lastTrap = core::ExitReason::None;
};

} // namespace hfi::sfi

#endif // HFI_SFI_HFI_BACKEND_H
