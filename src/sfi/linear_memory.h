/**
 * @file
 * A Wasm-style linear memory with real byte storage.
 *
 * Workloads executed inside a Sandbox read and write genuine bytes here
 * (so tests can check functional results), while the *enforcement* of the
 * heap bound and the *cost* of growth are delegated to the configured
 * IsolationBackend. Growth happens in 64 KiB Wasm pages (§3.2: "granular
 * heap growth (64K increments)").
 */

#ifndef HFI_SFI_LINEAR_MEMORY_H
#define HFI_SFI_LINEAR_MEMORY_H

#include <cstdint>
#include <cstring>
#include <vector>

namespace hfi::sfi
{

/** A Wasm page: 64 KiB. */
constexpr std::uint64_t kWasmPageSize = 1ULL << 16;

/**
 * Backing store for one sandbox's linear memory.
 *
 * Storage is allocated lazily in Wasm-page chunks as the memory grows,
 * mirroring how a real runtime's reserved-but-unmapped pages only gain
 * backing on mprotect/touch.
 */
class LinearMemory
{
  public:
    /**
     * @param initial_pages accessible pages at creation.
     * @param max_pages maximum the memory may grow to (Wasm's declared
     *        maximum; 65536 pages = the 4 GiB architectural limit).
     */
    explicit LinearMemory(std::uint64_t initial_pages = 1,
                          std::uint64_t max_pages = 65536);

    /**
     * Grow by @p delta_pages (memory_grow semantics).
     * @return the previous size in pages, or -1 on failure, exactly like
     *         the Wasm instruction.
     */
    std::int64_t grow(std::uint64_t delta_pages);

    /** Accessible size in bytes. */
    std::uint64_t size() const { return sizePages * kWasmPageSize; }

    /** Accessible size in Wasm pages. */
    std::uint64_t pages() const { return sizePages; }

    /** Declared maximum in Wasm pages. */
    std::uint64_t maxPages() const { return maxPages_; }

    /** True if [offset, offset+width) is within the accessible size. */
    bool
    inBounds(std::uint64_t offset, std::uint64_t width) const
    {
        const std::uint64_t sz = size();
        return offset <= sz && width <= sz - offset;
    }

    /**
     * Raw typed access. Callers (Sandbox) must have performed the
     * backend's isolation check first; these methods only assert the
     * invariant cheaply via inBounds in debug builds.
     */
    template <typename T>
    T
    load(std::uint64_t offset) const
    {
        T v;
        std::memcpy(&v, bytes.data() + offset, sizeof(T));
        return v;
    }

    template <typename T>
    void
    store(std::uint64_t offset, T value)
    {
        std::memcpy(bytes.data() + offset, &value, sizeof(T));
    }

    /** Bulk copy in (for staging workload inputs). */
    void writeBytes(std::uint64_t offset, const void *src, std::uint64_t len);

    /** Bulk copy out (for checking workload outputs). */
    void readBytes(std::uint64_t offset, void *dst, std::uint64_t len) const;

    /** Direct pointer into the backing store (runtime-internal use). */
    std::uint8_t *data() { return bytes.data(); }
    const std::uint8_t *data() const { return bytes.data(); }

  private:
    std::uint64_t sizePages;
    std::uint64_t maxPages_;
    std::vector<std::uint8_t> bytes;
};

} // namespace hfi::sfi

#endif // HFI_SFI_LINEAR_MEMORY_H
