/**
 * @file
 * The guard-page backend: how production Wasm runtimes isolate today (§2).
 *
 * An 8 GiB region is reserved with mmap(PROT_NONE): 4 GiB for the linear
 * memory plus a 4 GiB guard so that any `base + u32_addr + u32_offset`
 * lands either in accessible memory or in an unmapped page that traps.
 * Growth calls mprotect() over the newly accessible pages — the expensive
 * operation HFI's region-register update replaces (§6.1's 30x gap).
 *
 * Steady-state tax: the heap base is pinned in a general-purpose
 * register, which §6.1 measures as a 2.25% slowdown on Spidermonkey.
 */

#ifndef HFI_SFI_GUARD_PAGE_BACKEND_H
#define HFI_SFI_GUARD_PAGE_BACKEND_H

#include "sfi/backend.h"
#include "vm/mmu.h"

namespace hfi::sfi
{

/** Tunable costs of the guard-page scheme. */
struct GuardPageCosts
{
    /** Zero-cost-transition style springboard (cycles). */
    std::uint64_t transitionCycles = 12;
    /** Register-pressure tax per op, milli-cycles (2.25% — §6.1). */
    std::uint64_t opPressureMilli = 23;
    /**
     * Extra address-computation milli-cycles per access (u32 zext +
     * base add emitted by the Wasm compiler). Zero by default: in
     * steady-state SPEC-style code the out-of-order core hides the add
     * (Fig 3 shows guard pages ~= HFI). The Firefox benches set it
     * nonzero to model wasm2c-in-RLBox code where the dense access
     * stream saturates the AGU ports (§6.2).
     */
    std::uint64_t addressingMilli = 0;
};

class GuardPageBackend : public IsolationBackend
{
  public:
    /**
     * @param mmu the process MMU that pays mmap/mprotect costs.
     * @param guard_bytes guard-region size; 4 GiB in production Wasm.
     */
    GuardPageBackend(vm::Mmu &mmu, GuardPageCosts costs = {},
                     std::uint64_t guard_bytes = 4ULL << 30);

    ~GuardPageBackend() override;

    BackendKind kind() const override { return BackendKind::GuardPages; }

    bool create(std::uint64_t initial_pages,
                std::uint64_t max_pages) override;
    void destroy() override;
    void grow(std::uint64_t old_pages, std::uint64_t new_pages) override;
    AccessCheck checkAccess(std::uint64_t offset, std::uint32_t width,
                            bool write, const LinearMemory &mem) override;
    void enterSandbox() override;
    void exitSandbox() override;
    SteadyStateCosts steadyStateCosts() const override;

    std::uint64_t reservedVaBytes() const override { return reservation; }

    /** Base of the 8 GiB reservation (0 before create()). */
    std::uint64_t baseAddress() const override { return base; }

  private:
    vm::Mmu &mmu;
    GuardPageCosts costs_;
    std::uint64_t guardBytes;
    std::uint64_t maxBytes = 0;   ///< linear-memory portion (4 GiB)
    std::uint64_t reservation = 0;///< heap + guard
    vm::VAddr base = 0;
    bool live = false;
};

} // namespace hfi::sfi

#endif // HFI_SFI_GUARD_PAGE_BACKEND_H
