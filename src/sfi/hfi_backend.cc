#include "sfi/hfi_backend.h"

#include "sfi/linear_memory.h"

namespace hfi::sfi
{

HfiBackend::HfiBackend(vm::Mmu &mmu, core::HfiContext &ctx,
                       HfiBackendConfig config)
    : mmu(mmu), ctx(ctx), config_(config)
{
}

HfiBackend::~HfiBackend()
{
    if (live)
        destroy();
}

void
HfiBackend::programRegion(std::uint64_t accessible_bytes)
{
    core::ExplicitDataRegion region;
    region.baseAddress = base;
    region.bound = accessible_bytes; // multiples of 64 KiB: large-region ok
    region.permRead = true;
    region.permWrite = true;
    region.isLargeRegion = true;
    ctx.setRegion(core::kFirstExplicitRegion + config_.explicitSlot, region);
    accessibleBytes = accessible_bytes;
}

bool
HfiBackend::create(std::uint64_t initial_pages, std::uint64_t max_pages)
{
    maxBytes = max_pages * kWasmPageSize;
    // No guard region: HFI reserves exactly the heap, read-write, with
    // lazy backing. Enforcement comes from the region bound, not page
    // permissions, so growth never calls mprotect.
    auto addr = mmu.mmap(maxBytes, vm::PageProt::ReadWrite, kWasmPageSize);
    if (!addr)
        return false;
    base = *addr;
    live = true;
    programRegion(initial_pages * kWasmPageSize);
    return true;
}

void
HfiBackend::destroy()
{
    if (!live)
        return;
    ctx.clearRegion(core::kFirstExplicitRegion + config_.explicitSlot);
    mmu.munmap(base);
    live = false;
    base = 0;
}

void
HfiBackend::grow(std::uint64_t old_pages, std::uint64_t new_pages)
{
    (void)old_pages;
    // §6.1: "HFI can just update a region's bound registers" — a single
    // hfi_set_region replaces the guard-page scheme's mprotect.
    programRegion(new_pages * kWasmPageSize);
}

AccessCheck
HfiBackend::checkAccess(std::uint64_t offset, std::uint32_t width,
                        bool write, const LinearMemory &mem)
{
    (void)mem;
    core::HmovOperands ops;
    ops.index = static_cast<std::int64_t>(offset);
    ops.scale = 1;
    ops.displacement = 0;
    ops.width = width;
    const core::HmovResult res =
        core::AccessChecker::checkHmov(ctx, config_.explicitSlot, ops, write);
    if (res.ok)
        return {AccessOutcome::Ok, offset};
    lastTrap = res.reason;
    return {AccessOutcome::Trap, offset};
}

void
HfiBackend::rebindRegions()
{
    // Warm dispatch on a core whose register file was context-switched
    // since this instance last ran: reload the heap region descriptor
    // before the (region-locking) hfi_enter. One hfi_set_region, the
    // §6.1 "just update the bound registers" cost.
    if (live)
        programRegion(accessibleBytes);
}

void
HfiBackend::enterSandbox()
{
    // Each transition re-loads the region metadata from memory into the
    // HFI registers (§6.4.2) and enters a hybrid sandbox, optionally
    // serialized or via switch-on-exit (§3.4).
    programRegion(accessibleBytes);
    core::SandboxConfig sandbox;
    sandbox.isHybrid = true;
    sandbox.isSerialized = config_.serialized && !config_.switchOnExit;
    sandbox.switchOnExit = config_.switchOnExit;
    ctx.enter(sandbox);
}

void
HfiBackend::exitSandbox()
{
    ctx.exit();
}

SteadyStateCosts
HfiBackend::steadyStateCosts() const
{
    SteadyStateCosts costs;
    // Region checks run in parallel with the dtb lookup: zero extra
    // cycles per access, no pinned registers. Only the icache tax from
    // hmov's longer encodings remains, scaled by workload sensitivity.
    costs.icacheMilliPerAccess = config_.icacheMilliPerAccess;
    costs.loadExtraMilli = config_.addressingMilli;
    costs.storeExtraMilli = config_.addressingMilli;
    return costs;
}

} // namespace hfi::sfi
