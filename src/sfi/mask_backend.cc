#include "sfi/mask_backend.h"

#include <bit>

#include "sfi/linear_memory.h"

namespace hfi::sfi
{

MaskBackend::MaskBackend(vm::Mmu &mmu, MaskCosts costs)
    : mmu(mmu), costs_(costs)
{
}

MaskBackend::~MaskBackend()
{
    if (live)
        destroy();
}

bool
MaskBackend::create(std::uint64_t initial_pages, std::uint64_t max_pages)
{
    maxBytes = std::bit_ceil(max_pages * kWasmPageSize);
    mask_ = maxBytes - 1;
    auto addr = mmu.mmapReserve(maxBytes, maxBytes);
    if (!addr)
        return false;
    base = *addr;
    live = true;
    if (initial_pages > 0)
        grow(0, initial_pages);
    return true;
}

void
MaskBackend::destroy()
{
    if (!live)
        return;
    mmu.munmap(base);
    live = false;
    base = 0;
}

void
MaskBackend::grow(std::uint64_t old_pages, std::uint64_t new_pages)
{
    const std::uint64_t old_bytes = old_pages * kWasmPageSize;
    const std::uint64_t new_bytes = new_pages * kWasmPageSize;
    if (new_bytes > old_bytes) {
        mmu.mprotect(base + old_bytes, new_bytes - old_bytes,
                     vm::PageProt::ReadWrite);
    }
}

AccessCheck
MaskBackend::checkAccess(std::uint64_t offset, std::uint32_t width,
                         bool write, const LinearMemory &mem)
{
    (void)write;
    if (offset + width <= mem.size())
        return {AccessOutcome::Ok, offset};
    // No trap: the AND forces the address into the accessible region.
    // We mask to the largest power of two not exceeding the accessible
    // size so the wrapped access (including its width) always lands on
    // mapped memory — the silent-corruption behaviour §2 describes.
    const std::uint64_t eff_mask = std::bit_floor(mem.size()) - 1;
    return {AccessOutcome::Wrapped, offset & mask_ & eff_mask};
}

void
MaskBackend::enterSandbox()
{
    mmu.clock().tick(costs_.transitionCycles);
}

void
MaskBackend::exitSandbox()
{
    mmu.clock().tick(costs_.transitionCycles);
}

SteadyStateCosts
MaskBackend::steadyStateCosts() const
{
    SteadyStateCosts costs;
    costs.loadExtraMilli = costs_.maskMilli;
    costs.storeExtraMilli = costs_.maskMilli;
    costs.opPressureMilli = costs_.opPressureMilli;
    return costs;
}

} // namespace hfi::sfi
