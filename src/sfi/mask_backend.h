/**
 * @file
 * The address-masking backend: classic Wahbe-style SFI (§2, [78]).
 *
 * Out-of-bounds addresses are not detected — they are ANDed back into the
 * sandbox's power-of-two region, converting bounds errors into silent
 * (seemingly random) memory corruption. The paper rules masking out for
 * Wasm because Wasm requires precise trap semantics; we implement it both
 * as the historical baseline and so tests can demonstrate exactly that
 * imprecise-trap defect (an out-of-bounds store lands on unrelated
 * in-bounds data instead of faulting).
 */

#ifndef HFI_SFI_MASK_BACKEND_H
#define HFI_SFI_MASK_BACKEND_H

#include "sfi/backend.h"
#include "vm/mmu.h"

namespace hfi::sfi
{

/** Tunable costs of the masking scheme. */
struct MaskCosts
{
    std::uint64_t transitionCycles = 12;
    /** The AND instruction inserted before every access (milli-cycles). */
    std::uint64_t maskMilli = 600;
    /** One register pinned for the mask/base (§6.1: 2.25%). */
    std::uint64_t opPressureMilli = 23;
};

class MaskBackend : public IsolationBackend
{
  public:
    explicit MaskBackend(vm::Mmu &mmu, MaskCosts costs = {});
    ~MaskBackend() override;

    BackendKind kind() const override { return BackendKind::Mask; }

    bool create(std::uint64_t initial_pages,
                std::uint64_t max_pages) override;
    void destroy() override;
    void grow(std::uint64_t old_pages, std::uint64_t new_pages) override;
    AccessCheck checkAccess(std::uint64_t offset, std::uint32_t width,
                            bool write, const LinearMemory &mem) override;
    void enterSandbox() override;
    void exitSandbox() override;
    SteadyStateCosts steadyStateCosts() const override;

    std::uint64_t reservedVaBytes() const override { return maxBytes; }

    std::uint64_t baseAddress() const override { return base; }

    /** The power-of-two mask applied to every offset. */
    std::uint64_t mask() const { return mask_; }

  private:
    vm::Mmu &mmu;
    MaskCosts costs_;
    std::uint64_t maxBytes = 0;
    std::uint64_t mask_ = 0;
    vm::VAddr base = 0;
    bool live = false;
};

} // namespace hfi::sfi

#endif // HFI_SFI_MASK_BACKEND_H
