#include "sfi/guard_page_backend.h"

#include "sfi/linear_memory.h"

namespace hfi::sfi
{

const char *
backendKindName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::GuardPages: return "guard-pages";
      case BackendKind::BoundsCheck: return "bounds-check";
      case BackendKind::Mask: return "mask";
      case BackendKind::Hfi: return "hfi";
    }
    return "unknown";
}

GuardPageBackend::GuardPageBackend(vm::Mmu &mmu, GuardPageCosts costs,
                                   std::uint64_t guard_bytes)
    : mmu(mmu), costs_(costs), guardBytes(guard_bytes)
{
}

GuardPageBackend::~GuardPageBackend()
{
    if (live)
        destroy();
}

bool
GuardPageBackend::create(std::uint64_t initial_pages,
                         std::uint64_t max_pages)
{
    maxBytes = max_pages * kWasmPageSize;
    reservation = maxBytes + guardBytes;
    auto addr = mmu.mmapReserve(reservation, kWasmPageSize);
    if (!addr)
        return false;
    base = *addr;
    live = true;
    if (initial_pages > 0)
        grow(0, initial_pages);
    return true;
}

void
GuardPageBackend::destroy()
{
    if (!live)
        return;
    mmu.munmap(base);
    live = false;
    base = 0;
    reservation = 0;
}

void
GuardPageBackend::grow(std::uint64_t old_pages, std::uint64_t new_pages)
{
    // memory_grow flips the newly accessible pages from PROT_NONE to
    // read-write; this is the mprotect() whose fixed + shootdown +
    // per-page cost dominates §6.1's 10.92 s heap-growth measurement.
    const std::uint64_t old_bytes = old_pages * kWasmPageSize;
    const std::uint64_t new_bytes = new_pages * kWasmPageSize;
    if (new_bytes > old_bytes) {
        mmu.mprotect(base + old_bytes, new_bytes - old_bytes,
                     vm::PageProt::ReadWrite);
    }
}

AccessCheck
GuardPageBackend::checkAccess(std::uint64_t offset, std::uint32_t width,
                              bool write, const LinearMemory &mem)
{
    (void)write;
    // The Wasm compiler restricts accesses to u32 address + u32 offset,
    // so the effective offset is at most 2^33 - 2 and always lands inside
    // the reservation: either in accessible pages (proceed) or in
    // PROT_NONE pages (SIGSEGV). No instructions are executed to check.
    if (offset + width <= mem.size())
        return {AccessOutcome::Ok, offset};
    return {AccessOutcome::Trap, offset};
}

void
GuardPageBackend::enterSandbox()
{
    mmu.clock().tick(costs_.transitionCycles);
}

void
GuardPageBackend::exitSandbox()
{
    mmu.clock().tick(costs_.transitionCycles);
}

SteadyStateCosts
GuardPageBackend::steadyStateCosts() const
{
    SteadyStateCosts costs;
    costs.opPressureMilli = costs_.opPressureMilli;
    costs.loadExtraMilli = costs_.addressingMilli;
    costs.storeExtraMilli = costs_.addressingMilli;
    return costs;
}

} // namespace hfi::sfi
