#include "sfi/sandbox.h"

#include <sstream>

namespace hfi::sfi
{

SandboxTrap::SandboxTrap(std::uint64_t offset, std::uint32_t width,
                         bool write)
    : std::runtime_error([&] {
          std::ostringstream os;
          os << "sandbox trap: " << (write ? "store" : "load") << " of "
             << width << " bytes at offset 0x" << std::hex << offset;
          return os.str();
      }()),
      offset_(offset), width_(width), write_(write)
{
}

Sandbox::Sandbox(std::unique_ptr<IsolationBackend> backend, vm::Mmu &mmu,
                 SandboxOptions opts)
    : backend_(std::move(backend)), mmu_(mmu),
      memory_(opts.initialPages, opts.maxPages), opts(opts)
{
    valid_ = backend_->create(opts.initialPages, opts.maxPages);
    if (!valid_)
        return;

    const SteadyStateCosts costs = backend_->steadyStateCosts();
    const std::uint64_t icache =
        costs.icacheMilliPerAccess * opts.icacheSensitivity;
    // Register-pressure spill cost is smeared over *every* instruction,
    // memory operations included (§6.1's whole-program 2.25%/2.40%).
    loadMilli = costs.loadExtraMilli + icache + costs.opPressureMilli;
    storeMilli = costs.storeExtraMilli + icache + costs.opPressureMilli;
    opMilli = costs.opPressureMilli;

    touched.resize(opts.maxPages * (kWasmPageSize / vm::kPageSize), false);
}

Sandbox::~Sandbox()
{
    if (valid_)
        backend_->destroy();
}

void
Sandbox::enter()
{
    backend_->enterSandbox();
}

void
Sandbox::exit()
{
    flushCharge();
    backend_->exitSandbox();
}

std::int64_t
Sandbox::memoryGrow(std::uint64_t delta_pages)
{
    ++stats_.growCalls;
    auto &clock = mmu_.clock();
    clock.tick(clock.nsToCycles(opts.growRuntimeNs));

    const std::uint64_t old_pages = memory_.pages();
    const std::int64_t prev = memory_.grow(delta_pages);
    if (prev < 0)
        return -1;
    backend_->grow(old_pages, memory_.pages());
    return prev;
}

void
Sandbox::flushCharge()
{
    mmu_.clock().tick(pendingMilli / 1000);
    pendingMilli %= 1000;
}

std::uint64_t
Sandbox::checkedOffset(std::uint64_t offset, std::uint32_t width, bool write)
{
    const AccessCheck check =
        backend_->checkAccess(offset, width, write, memory_);
    if (check.outcome == AccessOutcome::Trap)
        throw SandboxTrap(offset, width, write);
    if (check.outcome == AccessOutcome::Wrapped)
        ++stats_.wrappedAccesses;

    // First touch of a 4 KiB page takes a minor fault through the Mmu
    // (allocation + page-table fill); later accesses are free.
    const std::uint64_t page = check.offset / vm::kPageSize;
    if (page < touched.size() && !touched[page]) {
        touched[page] = true;
        // Access the backing virtual address so the Mmu charges the
        // fault and marks residency for the teardown experiments.
        mmu_.access(backend_->baseAddress() + check.offset, width, write);
    }
    return check.offset;
}

} // namespace hfi::sfi
