/**
 * @file
 * The conditional-bounds-check backend: the portable SFI fallback (§2).
 *
 * Every load/store is preceded by an explicit compare of the effective
 * offset against the current memory size plus a conditional branch to a
 * trap stub. This needs no guard reservation (only the 4 GiB memory
 * itself) and gives precise traps, but Fig 3 measures it at 18.7%-48.3%
 * slowdown: the compare/branch pair costs cycles on every access and two
 * registers (heap base + bound) stay pinned (§6.1 measures the two-
 * register reservation at 2.40%).
 */

#ifndef HFI_SFI_BOUNDS_CHECK_BACKEND_H
#define HFI_SFI_BOUNDS_CHECK_BACKEND_H

#include "sfi/backend.h"
#include "vm/mmu.h"

namespace hfi::sfi
{

/** Tunable costs of the bounds-check scheme. */
struct BoundsCheckCosts
{
    /** Springboard transition cost (cycles). */
    std::uint64_t transitionCycles = 12;
    /**
     * Amortized compare+branch cost per access in milli-cycles. The raw
     * pair is 2 µops but the out-of-order window hides part of it; 1200
     * milli-cycles reproduces Fig 3's 18.7-48.3% spread across kernels
     * of differing access density.
     */
    std::uint64_t checkMilli = 1200;
    /** Register-pressure tax per op, milli-cycles (2.40% — §6.1). */
    std::uint64_t opPressureMilli = 24;
    /** Extra address-computation milli-cycles per access (see
     *  GuardPageCosts::addressingMilli). */
    std::uint64_t addressingMilli = 0;
};

class BoundsCheckBackend : public IsolationBackend
{
  public:
    explicit BoundsCheckBackend(vm::Mmu &mmu, BoundsCheckCosts costs = {});
    ~BoundsCheckBackend() override;

    BackendKind kind() const override { return BackendKind::BoundsCheck; }

    bool create(std::uint64_t initial_pages,
                std::uint64_t max_pages) override;
    void destroy() override;
    void grow(std::uint64_t old_pages, std::uint64_t new_pages) override;
    AccessCheck checkAccess(std::uint64_t offset, std::uint32_t width,
                            bool write, const LinearMemory &mem) override;
    void enterSandbox() override;
    void exitSandbox() override;
    SteadyStateCosts steadyStateCosts() const override;

    std::uint64_t reservedVaBytes() const override { return maxBytes; }

    std::uint64_t baseAddress() const override { return base; }

  private:
    vm::Mmu &mmu;
    BoundsCheckCosts costs_;
    std::uint64_t maxBytes = 0;
    vm::VAddr base = 0;
    bool live = false;
};

} // namespace hfi::sfi

#endif // HFI_SFI_BOUNDS_CHECK_BACKEND_H
