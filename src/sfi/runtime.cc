#include "sfi/runtime.h"

#include <algorithm>

namespace hfi::sfi
{

Runtime::Runtime(vm::Mmu &mmu, core::HfiContext &ctx, RuntimeConfig config)
    : mmu_(mmu), ctx(ctx), config_(config)
{
}

std::unique_ptr<IsolationBackend>
Runtime::makeBackend()
{
    switch (config_.backend) {
      case BackendKind::GuardPages:
        return std::make_unique<GuardPageBackend>(mmu_, config_.guardCosts,
                                                  config_.guardBytes);
      case BackendKind::BoundsCheck:
        return std::make_unique<BoundsCheckBackend>(mmu_,
                                                    config_.boundsCosts);
      case BackendKind::Mask:
        return std::make_unique<MaskBackend>(mmu_, config_.maskCosts);
      case BackendKind::Hfi:
        return std::make_unique<HfiBackend>(mmu_, ctx, config_.hfi);
    }
    return nullptr;
}

std::unique_ptr<Sandbox>
Runtime::createSandbox(SandboxOptions opts)
{
    auto sandbox = std::make_unique<Sandbox>(makeBackend(), mmu_, opts);
    if (!sandbox->valid())
        return nullptr;
    return sandbox;
}

void
Runtime::reclaim(const std::vector<Sandbox *> &sandboxes,
                 ReclaimPolicy policy, std::size_t batch_size)
{
    if (policy == ReclaimPolicy::Stock) {
        // One madvise per instance, over its accessible memory.
        for (Sandbox *s : sandboxes) {
            mmu_.madviseDontneed(s->backend().baseAddress(),
                                 s->memory().size());
        }
        return;
    }

    // Batched: one madvise per run of @p batch_size sandboxes, spanning
    // from the lowest footprint to the highest — guard regions included.
    for (std::size_t i = 0; i < sandboxes.size(); i += batch_size) {
        const std::size_t end = std::min(i + batch_size, sandboxes.size());
        std::uint64_t lo = UINT64_MAX;
        std::uint64_t hi = 0;
        for (std::size_t j = i; j < end; ++j) {
            const auto &backend = sandboxes[j]->backend();
            lo = std::min(lo, backend.baseAddress());
            hi = std::max(hi,
                          backend.baseAddress() + backend.reservedVaBytes());
        }
        if (lo < hi)
            mmu_.madviseDontneed(lo, hi - lo);
    }
}

std::uint64_t
Runtime::addressSpaceCapacity(std::uint64_t heap_bytes) const
{
    std::uint64_t footprint = heap_bytes;
    if (config_.backend == BackendKind::GuardPages)
        footprint += config_.guardBytes;
    const std::uint64_t usable = mmu_.addressSpace().usableBytes() -
                                 mmu_.addressSpace().reservedBytes();
    return usable / footprint;
}

} // namespace hfi::sfi
