#include "sfi/linear_memory.h"

namespace hfi::sfi
{

LinearMemory::LinearMemory(std::uint64_t initial_pages,
                           std::uint64_t max_pages)
    : sizePages(initial_pages), maxPages_(max_pages)
{
    bytes.resize(sizePages * kWasmPageSize, 0);
}

std::int64_t
LinearMemory::grow(std::uint64_t delta_pages)
{
    if (sizePages + delta_pages > maxPages_)
        return -1;
    const std::int64_t prev = static_cast<std::int64_t>(sizePages);
    sizePages += delta_pages;
    bytes.resize(sizePages * kWasmPageSize, 0);
    return prev;
}

void
LinearMemory::writeBytes(std::uint64_t offset, const void *src,
                         std::uint64_t len)
{
    std::memcpy(bytes.data() + offset, src, len);
}

void
LinearMemory::readBytes(std::uint64_t offset, void *dst,
                        std::uint64_t len) const
{
    std::memcpy(dst, bytes.data() + offset, len);
}

} // namespace hfi::sfi
