/**
 * @file
 * Simulator throughput: simulated-instructions-per-second of the
 * functional core and the cycle-level pipeline on the Fig 2 kernels,
 * in both protection renderings (hardware HFI and compiler emulation).
 *
 * This is the repo's perf-trajectory baseline: every interpreter
 * hot-path change (fetch indexing, paged memory, region-check
 * flattening) must move these numbers, and regressions show up as a
 * drop in the JSON this bench emits (BENCH_sim_throughput.json).
 *
 * Simulated work per rep is deterministic (seeded kernels on virtual
 * state); only host wall time varies, so instructions/sec is an honest
 * measure of interpreter speed.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/json_writer.h"
#include "sim/functional.h"
#include "sim/kernels.h"
#include "sim/pipeline.h"

namespace
{

using namespace hfi::sim;
using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kScale = 2;
constexpr std::uint32_t kStageSeed = 42;

/** One measured configuration. */
struct Row
{
    std::string kernel;
    std::string mode;
    std::string core;
    std::uint64_t instructionsPerRep = 0;
    std::uint64_t reps = 0;
    double hostNs = 0;
    double ips = 0; ///< simulated instructions per host second
    /** Event-loop cycle attribution (pipeline rows only; deterministic
        per rep, all-zero when built with HFI_OBS=OFF). */
    PipelineProfile profile{};
};

double
elapsedNs(Clock::time_point start)
{
    return std::chrono::duration<double, std::nano>(Clock::now() - start)
        .count();
}

/** Host-seconds to accumulate per configuration (--quick shrinks it). */
double measureWindowNs = 0.15e9;

/** Repeat @p rep until the measurement window has accumulated. */
template <typename Rep>
Row
measure(const hfi::sim::kernels::Kernel &kernel, kernels::Mode mode,
        const char *core, Rep rep)
{
    Row row;
    row.kernel = kernel.name;
    row.mode = mode == kernels::Mode::HfiHardware ? "hw" : "emu";
    row.core = core;

    // Warm one rep (page faults, code layout) before timing.
    row.instructionsPerRep = rep();

    const auto start = Clock::now();
    double ns = 0;
    std::uint64_t reps = 0;
    do {
        rep();
        ++reps;
        ns = elapsedNs(start);
    } while (ns < measureWindowNs);
    row.reps = reps;
    row.hostNs = ns;
    row.ips = static_cast<double>(row.instructionsPerRep) *
              static_cast<double>(reps) * 1e9 / ns;
    return row;
}

Row
measureFunctional(const hfi::sim::kernels::Kernel &kernel, kernels::Mode mode)
{
    const Program prog = kernel.build(mode, kScale);
    return measure(kernel, mode, "functional", [&]() {
        ArchState state;
        state.pc = prog.base();
        SimMemory mem;
        kernel.stage(mem, kScale, kStageSeed);
        return FunctionalCore::run(prog, state, mem);
    });
}

Row
measurePipeline(const hfi::sim::kernels::Kernel &kernel, kernels::Mode mode)
{
    const Program prog = kernel.build(mode, kScale);
    PipelineProfile prof{};
    Row row = measure(kernel, mode, "pipeline", [&]() {
        Pipeline pipe(prog);
        kernel.stage(pipe.memory(), kScale, kStageSeed);
        const PipelineResult res = pipe.run(500'000'000);
        // Identical every rep (seeded virtual state), so keeping the
        // last one loses nothing.
        prof = pipe.profile();
        return res.instructions;
    });
    row.profile = prof;
    return row;
}

double
geomeanIps(const std::vector<Row> &rows, const char *core)
{
    double log_sum = 0;
    int n = 0;
    for (const Row &r : rows) {
        if (r.core != core || r.ips <= 0)
            continue;
        log_sum += std::log(r.ips);
        ++n;
    }
    return n ? std::exp(log_sum / n) : 0;
}

void
emitJson(const std::vector<Row> &rows, double func_geo, double pipe_geo)
{
    hfi::obs::JsonWriter jw;
    jw.beginObject();
    jw.field("bench", "sim_throughput");
    jw.schemaVersion();
    jw.field("scale", kScale);
    jw.key("rows").beginArray();
    for (const Row &r : rows) {
        jw.beginObject();
        jw.field("core", r.core);
        jw.field("kernel", r.kernel);
        jw.field("mode", r.mode);
        jw.field("instructions_per_rep", r.instructionsPerRep);
        jw.field("reps", r.reps);
        jw.field("host_ns", r.hostNs, "%.0f");
        jw.field("sim_insts_per_sec", r.ips, "%.0f");
        if (r.core == "pipeline") {
            // Where the event-driven loop spent (and skipped) its
            // cycles — attribution the loop used to discard.
            jw.field("active_cycles", r.profile.activeCycles);
            jw.field("skipped_cycles", r.profile.skippedCycles);
            jw.field("skips_to_commit", r.profile.skipsToCommit);
            jw.field("skips_to_resolve", r.profile.skipsToResolve);
            jw.field("skips_to_fetch", r.profile.skipsToFetch);
        }
        jw.endObject();
    }
    jw.endArray();
    // The CI regression gate keys on these two names; keep them.
    jw.field("functional_geomean_ips", func_geo, "%.0f");
    jw.field("pipeline_geomean_ips", pipe_geo, "%.0f");
    jw.endObject();

    FILE *f = std::fopen("BENCH_sim_throughput.json", "w");
    if (!f) {
        std::perror("BENCH_sim_throughput.json");
        return;
    }
    std::fputs(jw.str().c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    // --quick: shorter measurement window (CI smoke). Every kernel
    // still gets a pipeline row — the CI regression gate compares the
    // pipeline geomean, so it must cover the full suite.
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--quick") == 0)
            measureWindowNs = 0.05e9;

    std::printf("Simulator throughput (simulated instructions per host "
                "second), Fig 2 kernels, scale %llu\n\n",
                static_cast<unsigned long long>(kScale));
    std::printf("%-12s %-16s %-4s %12s %6s %12s\n", "core", "kernel",
                "mode", "insts/rep", "reps", "sim-insts/s");

    std::vector<Row> rows;
    auto report = [&rows](Row row) {
        std::printf("%-12s %-16s %-4s %12llu %6llu %12.3e\n",
                    row.core.c_str(), row.kernel.c_str(), row.mode.c_str(),
                    static_cast<unsigned long long>(row.instructionsPerRep),
                    static_cast<unsigned long long>(row.reps), row.ips);
        rows.push_back(std::move(row));
    };

    for (const auto &kernel : hfi::sim::kernels::suite()) {
        for (const auto mode : {hfi::sim::kernels::Mode::HfiHardware,
                                hfi::sim::kernels::Mode::HfiEmulation}) {
            report(measureFunctional(kernel, mode));
            report(measurePipeline(kernel, mode));
        }
    }

    const double func_geo = geomeanIps(rows, "functional");
    const double pipe_geo = geomeanIps(rows, "pipeline");
    std::printf("\nfunctional geomean: %.3e sim-insts/s\n", func_geo);
    std::printf("pipeline   geomean: %.3e sim-insts/s\n", pipe_geo);
    emitJson(rows, func_geo, pipe_geo);
    std::printf("wrote BENCH_sim_throughput.json\n");
    return 0;
}
