/**
 * @file
 * Ablation: the hardware-faithful hmov bounds check (one 32-bit
 * comparator + sign/overflow bits, §4.2) versus the naive two-64-bit-
 * comparator design the paper rejects for power/area reasons.
 *
 * Two views:
 *  - a google-benchmark microbenchmark of the two checkers' *simulator*
 *    throughput (they must be near-identical — the cheap check is not
 *    allowed to cost model time); and
 *  - the modeled hardware budget comparison from §4's component list.
 */

#include <benchmark/benchmark.h>

#include "core/checker.h"

namespace
{

using namespace hfi::core;

HfiRegisterFile
makeBank(bool large)
{
    HfiRegisterFile bank;
    bank.enabled = true;
    ExplicitDataRegion region;
    region.baseAddress = large ? 0x7fff0000 : 0x12345;
    region.bound = large ? (4ULL << 30) : (1ULL << 20);
    region.permRead = true;
    region.permWrite = true;
    region.isLargeRegion = large;
    bank.setRegion(kFirstExplicitRegion, region);
    return bank;
}

void
BM_CheckHmovHardware(benchmark::State &state)
{
    const HfiRegisterFile bank = makeBank(state.range(0) != 0);
    HmovOperands ops;
    ops.scale = 8;
    ops.width = 8;
    std::uint64_t i = 0;
    for (auto _ : state) {
        ops.index = static_cast<std::int64_t>(i++ & 0xffff);
        benchmark::DoNotOptimize(
            AccessChecker::checkHmov(bank, 0, ops, false));
    }
}
BENCHMARK(BM_CheckHmovHardware)->Arg(0)->Arg(1);

void
BM_CheckHmovNaive(benchmark::State &state)
{
    const HfiRegisterFile bank = makeBank(state.range(0) != 0);
    HmovOperands ops;
    ops.scale = 8;
    ops.width = 8;
    std::uint64_t i = 0;
    for (auto _ : state) {
        ops.index = static_cast<std::int64_t>(i++ & 0xffff);
        benchmark::DoNotOptimize(
            AccessChecker::checkHmovNaive(bank, 0, ops, false));
    }
}
BENCHMARK(BM_CheckHmovNaive)->Arg(0)->Arg(1);

void
BM_CheckImplicitFirstMatch(benchmark::State &state)
{
    // Cost of the first-match scan as a function of which region hits.
    HfiRegisterFile bank;
    bank.enabled = true;
    for (unsigned slot = kFirstImplicitDataRegion;
         slot < kFirstExplicitRegion; ++slot) {
        ImplicitDataRegion r;
        r.basePrefix = 0x10000000ULL * (slot + 1);
        r.lsbMask = 0xffff;
        r.permRead = true;
        bank.setRegion(slot, r);
    }
    const auto hit_slot = static_cast<unsigned>(state.range(0));
    const std::uint64_t addr = 0x10000000ULL * (hit_slot + 1) + 0x100;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            AccessChecker::checkData(bank, addr, 8, false));
    }
}
BENCHMARK(BM_CheckImplicitFirstMatch)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

} // namespace

int
main(int argc, char **argv)
{
    std::printf("Ablation: hmov bounds-check hardware budget (Section 4)\n");
    std::printf("  hardware-faithful: 1x 32-bit comparator + 2 sign bits "
                "+ 1 overflow bit per access\n");
    std::printf("  naive design:      2x 64-bit comparators per access "
                "(~4x the comparator bits,\n");
    std::printf("                     wider operand routing next to the "
                "AGU/dtb critical path)\n");
    std::printf("  Both are semantically identical on every well-formed "
                "region (asserted by the\n"
                "  HmovEquivalence property tests); the cheap check is "
                "what makes the large/small\n"
                "  region constraints worthwhile.\n\n");

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
