/**
 * @file
 * Table 1: impact of HFI Spectre protection on tail latency, versus
 * Swivel — "the fastest software-based Spectre mitigation" — on four
 * Wasm FaaS workloads behind a Rocket-style webserver.
 *
 * Paper's headline: "Swivel increased tail latency by 9%-42%. HFI's
 * increased tail latency by 0%-2%", with essentially no binary bloat
 * for HFI and ~0.6 MiB for Swivel (except the data-dominated image-
 * classification binary).
 */

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "faas/platform.h"
#include "sfi/runtime.h"
#include "swivel/swivel.h"
#include "workloads/crypto.h"
#include "workloads/faas_workloads.h"
#include "workloads/image.h"

namespace
{

using namespace hfi;

struct Table1Workload
{
    std::string name;
    swivel::CodeProfile profile;
    faas::Handler handler;
    /** Relative magnitude knob so the four rows spread like Table 1. */
    unsigned requests;
};

std::vector<Table1Workload>
table1Workloads()
{
    std::vector<Table1Workload> list;

    list.push_back(
        {"XML to JSON", swivel::xmlToJsonProfile(),
         [](sfi::Sandbox &s, std::uint32_t seed) {
             const std::string xml =
                 workloads::faas::makeXmlDocument(220, seed);
             s.memory().writeBytes(64, xml.data(), xml.size());
             workloads::faas::xmlToJson(s, 64, xml.size());
         },
         300});

    list.push_back(
        {"Image classification", swivel::imageClassifyProfile(),
         [](sfi::Sandbox &s, std::uint32_t seed) {
             const auto img = workloads::image::makeTestImage(96, 96, seed);
             s.memory().writeBytes(64, img.data(), img.size());
             workloads::faas::classifyImage(s, 64, 96, seed);
         },
         200});

    list.push_back(
        {"Check SHA-256", swivel::checkShaProfile(),
         [](sfi::Sandbox &s, std::uint32_t seed) {
             std::vector<std::uint8_t> payload(96 * 1024);
             for (std::size_t i = 0; i < payload.size(); ++i)
                 payload[i] = static_cast<std::uint8_t>(i ^ seed);
             s.memory().writeBytes(64, payload.data(), payload.size());
             const auto digest = workloads::crypto::sha256(
                 payload.data(), payload.size());
             s.memory().writeBytes(1 << 20, digest.data(), 32);
             workloads::faas::checkSha256(s, 64, payload.size(), 1 << 20);
         },
         300});

    list.push_back(
        {"Templated HTML", swivel::templatedHtmlProfile(),
         [](sfi::Sandbox &s, std::uint32_t seed) {
             const std::string tpl = workloads::faas::makeHtmlTemplate(0);
             s.memory().writeBytes(64, tpl.data(), tpl.size());
             workloads::faas::renderTemplate(s, 64, tpl.size(), 24, seed);
         },
         400});

    return list;
}

faas::RunResult
run(const Table1Workload &workload, faas::Protection protection)
{
    vm::VirtualClock clock;
    vm::Mmu mmu(clock);
    core::HfiContext ctx(clock);
    sfi::RuntimeConfig runtime_config;
    runtime_config.backend = sfi::BackendKind::GuardPages;
    sfi::Runtime runtime(mmu, ctx, runtime_config);
    auto sandbox = runtime.createSandbox({64, 4096});
    if (!sandbox)
        return {};

    faas::PlatformConfig config;
    config.clients = 100;
    config.requests = workload.requests;
    config.protection = protection;
    config.stockBinaryBytes =
        workload.profile.codeBytes + workload.profile.dataBytes;
    if (protection == faas::Protection::Swivel)
        config.swivelEffect = swivel::apply(workload.profile);
    return faas::runClosedLoop(config, *sandbox, ctx, workload.handler);
}

void
printRow(const char *scheme, const faas::RunResult &res)
{
    std::printf("  %-16s avg %8.2f ms   p50 %8.2f   p95 %8.2f   "
                "p99 %8.2f   p99.9 %8.2f ms   thru %8.1f r/s   "
                "bin %5.1f MiB\n",
                scheme, res.avgLatencyNs / 1e6, res.p50LatencyNs / 1e6,
                res.p95LatencyNs / 1e6, res.tailLatencyNs / 1e6,
                res.p999LatencyNs / 1e6, res.throughputRps,
                static_cast<double>(res.binaryBytes) / (1 << 20));
}

} // namespace

int
main()
{
    std::printf("Table 1: impact of Spectre protection on FaaS tail "
                "latency (100 closed-loop clients)\n");
    for (const auto &workload : table1Workloads()) {
        const auto unsafe_run = run(workload, faas::Protection::Unsafe);
        const auto hfi_run = run(workload, faas::Protection::HfiNative);
        const auto soe_run =
            run(workload, faas::Protection::HfiSwitchOnExit);
        const auto swivel_run = run(workload, faas::Protection::Swivel);

        std::printf("\n%s\n", workload.name.c_str());
        printRow("Lucet(Unsafe)", unsafe_run);
        printRow("Lucet+HFI", hfi_run);
        printRow("Lucet+HFI(soe)", soe_run);
        printRow("Lucet+Swivel", swivel_run);
        std::printf("  tail increase: HFI %+0.2f%%, switch-on-exit "
                    "%+0.2f%%, Swivel %+0.1f%%\n",
                    100.0 * (hfi_run.tailLatencyNs /
                                 unsafe_run.tailLatencyNs -
                             1.0),
                    100.0 * (soe_run.tailLatencyNs /
                                 unsafe_run.tailLatencyNs -
                             1.0),
                    100.0 * (swivel_run.tailLatencyNs /
                                 unsafe_run.tailLatencyNs -
                             1.0));
    }
    std::printf("\n(paper: HFI tail increase 0%%-2%%; Swivel 9%%-42%% "
                "with up to ~73%% on templated HTML average latency)\n");
    return 0;
}
