/**
 * @file
 * §6.4.2 / Figure 5: overhead of the native sandbox — NGINX serving
 * encrypted content with OpenSSL session keys protected by HFI or MPK.
 *
 * "We observe that HFI's native sandbox has a low overhead that ranges
 *  from 2.9% to 6.1%. HFI's overhead is slightly larger than MPK-based
 *  protections, which range from 1.9% to 5.3%. This is because HFI
 *  takes a few cycles to move metadata from memory to HFI registers on
 *  each transition."
 */

#include <cstdio>

#include "nginx/server.h"

namespace
{

using namespace hfi;

double
throughput(nginx::SessionProtection protection, std::uint64_t file_bytes)
{
    vm::VirtualClock clock;
    vm::Mmu mmu(clock);
    core::HfiContext ctx(clock);
    mpk::MpkDomainManager mpk_mgr(mmu);
    syscall::MiniKernel kernel(clock);

    nginx::ServerConfig config;
    config.protection = protection;
    nginx::NginxServer server(mmu, ctx, mpk_mgr, kernel, config);
    server.addFile("/payload", file_bytes, 7);
    return server.serve("/payload", 400).throughputRps();
}

} // namespace

int
main()
{
    std::printf("Figure 5: NGINX throughput with protected session keys "
                "(requests/second, single core)\n");
    std::printf("%-10s %12s %12s %12s %10s %10s\n", "file size", "unsafe",
                "MPK", "HFI", "MPK ovh", "HFI ovh");
    std::printf("%.*s\n", 72,
                "--------------------------------------------------------"
                "----------------");

    double hfi_min = 1e9, hfi_max = 0, mpk_min = 1e9, mpk_max = 0;
    for (std::uint64_t kib : {0ULL, 1ULL, 2ULL, 4ULL, 8ULL, 16ULL, 32ULL,
                              64ULL, 128ULL}) {
        const std::uint64_t bytes = kib * 1024;
        const double none =
            throughput(nginx::SessionProtection::None, bytes);
        const double mpk_rps =
            throughput(nginx::SessionProtection::Mpk, bytes);
        const double hfi_rps =
            throughput(nginx::SessionProtection::Hfi, bytes);
        const double mpk_ovh = (none / mpk_rps - 1.0) * 100.0;
        const double hfi_ovh = (none / hfi_rps - 1.0) * 100.0;
        hfi_min = std::min(hfi_min, hfi_ovh);
        hfi_max = std::max(hfi_max, hfi_ovh);
        mpk_min = std::min(mpk_min, mpk_ovh);
        mpk_max = std::max(mpk_max, mpk_ovh);
        std::printf("%7luk %12.0f %12.0f %12.0f %9.1f%% %9.1f%%\n",
                    static_cast<unsigned long>(kib), none, mpk_rps,
                    hfi_rps, mpk_ovh, hfi_ovh);
    }
    std::printf("%.*s\n", 72,
                "--------------------------------------------------------"
                "----------------");
    std::printf("HFI overhead: %.1f%% - %.1f%%  (paper: 2.9%% - 6.1%%)\n",
                hfi_min, hfi_max);
    std::printf("MPK overhead: %.1f%% - %.1f%%  (paper: 1.9%% - 5.3%%)\n",
                mpk_min, mpk_max);
    return 0;
}
