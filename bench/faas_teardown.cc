/**
 * @file
 * §6.3.1: cost of sandbox setup and teardown on a FaaS platform.
 *
 * "a custom FaaS benchmark that creates 2000 sandboxes, executes a
 *  trivial short-lived workload on each (writes some constant data to
 *  the sandbox's memory) and then tears down the sandboxes... stock
 *  Wasmtime has a per-sandbox teardown cost of 25.7 µs, HFI-Wasmtime
 *  took 23.1 µs (a 10.1% improvement), and non-HFI batched teardown
 *  took 31.1 µs."
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "sfi/runtime.h"

namespace
{

using namespace hfi;

/** Build 2000 instances, run the trivial workload, time the reclaim. */
double
teardownPerSandboxUs(sfi::BackendKind kind, sfi::ReclaimPolicy policy,
                     std::size_t batch)
{
    vm::VirtualClock clock;
    vm::Mmu mmu(clock, 48); // 2000 x 8 GiB needs the wide VA
    core::HfiContext ctx(clock);
    sfi::RuntimeConfig config;
    config.backend = kind;
    sfi::Runtime runtime(mmu, ctx, config);

    constexpr int kSandboxes = 2000;
    std::vector<std::unique_ptr<sfi::Sandbox>> owned;
    std::vector<sfi::Sandbox *> raw;
    owned.reserve(kSandboxes);
    for (int i = 0; i < kSandboxes; ++i) {
        // FaaS instances: Wasmtime reserves the full 4 GiB heap + 4 GiB
        // guard per 32-bit memory regardless of use; HFI instances
        // reserve only what the tenant's 1 MiB max heap needs, so their
        // heaps are adjacent.
        auto sandbox =
            kind == sfi::BackendKind::GuardPages
                ? runtime.createSandbox({1, 65536})
                : runtime.createSandbox({1, 16});
        if (!sandbox) {
            std::fprintf(stderr, "address space exhausted at %d\n", i);
            return -1;
        }
        // The trivial request: write constant data over 64 KiB.
        sandbox->invoke([](sfi::Sandbox &s) {
            for (std::uint64_t off = 0; off < 64 * 1024; off += 4096)
                s.store<std::uint64_t>(off, 0x746c7561666564ULL);
        });
        raw.push_back(sandbox.get());
        owned.push_back(std::move(sandbox));
    }

    const double t0 = clock.nowNs();
    runtime.reclaim(raw, policy, batch);
    return (clock.nowNs() - t0) / 1e3 / kSandboxes;
}

} // namespace

int
main()
{
    const double stock = teardownPerSandboxUs(
        sfi::BackendKind::GuardPages, sfi::ReclaimPolicy::Stock, 1);
    const double hfi_batched = teardownPerSandboxUs(
        sfi::BackendKind::Hfi, sfi::ReclaimPolicy::Batched, 32);
    const double guard_batched = teardownPerSandboxUs(
        sfi::BackendKind::GuardPages, sfi::ReclaimPolicy::Batched, 32);
    if (stock < 0 || hfi_batched < 0 || guard_batched < 0)
        return 1;

    std::printf("Section 6.3.1: per-sandbox teardown cost "
                "(2000 sandboxes, trivial workload)\n");
    std::printf("  stock (one madvise per sandbox):        %5.1f us  "
                "(paper: 25.7 us)\n",
                stock);
    std::printf("  HFI-wasmtime (batched, guards elided):  %5.1f us  "
                "(paper: 23.1 us, -10.1%%)\n",
                hfi_batched);
    std::printf("  non-HFI batched (guards walked):        %5.1f us  "
                "(paper: 31.1 us)\n",
                guard_batched);
    std::printf("  HFI improvement over stock:             %5.1f%%\n",
                100.0 * (1.0 - hfi_batched / stock));

    std::printf("\nBatch-width sweep (HFI, guards elided):\n");
    for (std::size_t batch : {1ul, 2ul, 4ul, 8ul, 16ul, 32ul, 64ul}) {
        const double us = teardownPerSandboxUs(
            sfi::BackendKind::Hfi, sfi::ReclaimPolicy::Batched, batch);
        std::printf("  batch=%-3zu %5.1f us/sandbox\n", batch, us);
    }
    return 0;
}
