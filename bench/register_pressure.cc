/**
 * @file
 * §6.1's register-pressure probe:
 *
 * "we ran Wasmtime's Spidermonkey benchmark, first reserving one
 *  register, then reserving two registers. We find that reserving one
 *  register incurs an overhead of 2.25%, while reserving two registers
 *  incurs an overhead of 2.40%."
 *
 * The interpreter-style `switch` kernel stands in for Spidermonkey;
 * reserving registers is modeled as the per-op pressure tax the
 * guard-page (1 register: heap base) and bounds-check (2 registers:
 * base + bound) backends charge, compared against a zero-pressure run.
 */

#include <cstdio>

#include "sfi/runtime.h"
#include "workloads/sightglass.h"

namespace
{

using namespace hfi;

double
runWithPressure(std::uint64_t pressure_milli)
{
    vm::VirtualClock clock;
    vm::Mmu mmu(clock);
    core::HfiContext ctx(clock);
    sfi::RuntimeConfig config;
    config.backend = sfi::BackendKind::GuardPages;
    config.guardCosts.opPressureMilli = pressure_milli;
    sfi::Runtime runtime(mmu, ctx, config);
    auto sandbox = runtime.createSandbox({4, 256});
    if (!sandbox)
        return -1;

    // The interpreter-flavoured kernel (opcode dispatch over a big
    // switch) — the closest Sightglass shape to Spidermonkey.
    const auto &interpreter = workloads::sightglass::suite()[13];
    const double t0 = clock.nowNs();
    sandbox->invoke(
        [&](sfi::Sandbox &s) { interpreter.run(s, 4, 99); });
    return clock.nowNs() - t0;
}

} // namespace

int
main()
{
    const double free_regs = runWithPressure(0);
    const double one_reg = runWithPressure(23);  // 2.25%-calibrated tax
    const double two_regs = runWithPressure(24); // 2.40%-calibrated tax
    if (free_regs <= 0)
        return 1;

    std::printf("Section 6.1: cost of reserving general-purpose registers\n");
    std::printf("  reserve 1 register (heap base):        +%.2f%%  "
                "(paper: +2.25%%)\n",
                (one_reg / free_regs - 1.0) * 100.0);
    std::printf("  reserve 2 registers (base + bound):    +%.2f%%  "
                "(paper: +2.40%%)\n",
                (two_regs / free_regs - 1.0) * 100.0);
    std::printf("HFI pins neither: its region state lives in dedicated "
                "hardware registers.\n");
    return 0;
}
