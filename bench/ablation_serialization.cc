/**
 * @file
 * Ablation: the three Spectre-mitigation postures for sandbox
 * transitions (§3.4, §4.5):
 *
 *  - unserialized enter/exit: fastest, but speculation can run past the
 *    transition (no Spectre protection across the boundary);
 *  - is-serialized enter/exit: ~30-60 cycles per transition pair;
 *  - switch-on-exit: the trusted runtime serializes once, children
 *    switch register banks without serializing.
 *
 * The sweep varies how much work each sandbox invocation does, showing
 * where the serialization tax is visible and where it amortizes — the
 * paper's argument for making the mitigation configurable.
 */

#include <cstdio>

#include "core/context.h"

namespace
{

using namespace hfi;
using namespace hfi::core;

enum class Posture
{
    Unserialized,
    Serialized,
    SwitchOnExit,
};

double
runPosture(Posture posture, unsigned invocations, unsigned work_cycles)
{
    vm::VirtualClock clock;
    HfiContext ctx(clock);

    if (posture == Posture::SwitchOnExit) {
        // The runtime parks itself in a serialized hybrid sandbox once.
        SandboxConfig runtime_cfg;
        runtime_cfg.isHybrid = true;
        runtime_cfg.isSerialized = true;
        ctx.enter(runtime_cfg);
    }

    const double t0 = clock.nowNs();
    for (unsigned i = 0; i < invocations; ++i) {
        SandboxConfig cfg;
        cfg.isHybrid = true;
        cfg.isSerialized = posture == Posture::Serialized;
        cfg.switchOnExit = posture == Posture::SwitchOnExit;
        ctx.enter(cfg);
        clock.tick(work_cycles);
        ctx.exit();
    }
    return clock.nowNs() - t0;
}

} // namespace

int
main()
{
    constexpr unsigned kInvocations = 10000;
    std::printf("Ablation: Spectre-mitigation posture vs per-invocation "
                "work (%u invocations, ns total)\n",
                kInvocations);
    std::printf("%-14s %14s %14s %14s %12s\n", "work/invoke",
                "unserialized", "is-serialized", "switch-on-exit",
                "ser. tax");
    std::printf("%.*s\n", 72,
                "--------------------------------------------------------"
                "----------------");
    for (unsigned work : {0u, 100u, 1000u, 10000u, 100000u}) {
        const double plain =
            runPosture(Posture::Unserialized, kInvocations, work);
        const double serialized =
            runPosture(Posture::Serialized, kInvocations, work);
        const double soe =
            runPosture(Posture::SwitchOnExit, kInvocations, work);
        std::printf("%9u cyc %12.0f us %12.0f us %12.0f us %+10.1f%%\n",
                    work, plain / 1e3, serialized / 1e3, soe / 1e3,
                    (serialized / plain - 1.0) * 100.0);
    }
    std::printf("\nswitch-on-exit tracks the unserialized cost while "
                "keeping Spectre protection\nwithin the trust set (§4.5); "
                "full serialization only matters for short\ninvocations — "
                "exactly the paper's argument for making it a flag.\n");
    return 0;
}
