/**
 * @file
 * Ablation: region-register pressure.
 *
 * HFI provides four explicit regions (footnote 5: "the region count was
 * based on experience sandboxing code in production settings") and the
 * paper's multi-memory discussion (§3.3.1) expects runtimes to
 * "multiplex HFI's (finite) registers among a larger number of
 * multi-memories". This sweep quantifies that choice: a workload that
 * round-robins accesses across K distinct memories pays one
 * hfi_set_region per memory switch once K exceeds the register count.
 */

#include <cstdio>
#include <vector>

#include "core/checker.h"
#include "core/context.h"

namespace
{

using namespace hfi;
using namespace hfi::core;

/**
 * Round-robin over @p memories memories with @p switches memory
 * switches, multiplexed over @p slots explicit regions (LRU).
 * @return virtual nanoseconds.
 */
double
runMultiplexed(unsigned memories, unsigned slots, unsigned switches)
{
    vm::VirtualClock clock;
    HfiContext ctx(clock);

    // One 64 KiB memory per tenant, laid out contiguously.
    auto regionFor = [](unsigned memory) {
        ExplicitDataRegion r;
        r.baseAddress = 0x10000000ULL + memory * (1ULL << 16);
        r.bound = 1ULL << 16;
        r.permRead = true;
        r.permWrite = true;
        r.isLargeRegion = true;
        return r;
    };

    // slot -> memory currently loaded; simple round-robin replacement.
    std::vector<int> loaded(slots, -1);
    unsigned victim = 0;

    SandboxConfig cfg;
    cfg.isHybrid = true; // the runtime multiplexes from inside (§3.3.1)
    ctx.enter(cfg);

    const double t0 = clock.nowNs();
    std::uint64_t accesses = 0;
    for (unsigned i = 0; i < switches; ++i) {
        const unsigned memory = i % memories;
        // Find the memory's slot, or evict one.
        int slot = -1;
        for (unsigned s = 0; s < slots; ++s) {
            if (loaded[s] == static_cast<int>(memory)) {
                slot = static_cast<int>(s);
                break;
            }
        }
        if (slot < 0) {
            slot = static_cast<int>(victim);
            victim = (victim + 1) % slots;
            loaded[static_cast<std::size_t>(slot)] =
                static_cast<int>(memory);
            // Counterfactual slot counts beyond the architectural four
            // reuse the real registers modulo 4: the *cost* of the
            // metadata reload is what this ablation measures, and it is
            // identical per slot.
            ctx.setRegion(kFirstExplicitRegion +
                              static_cast<unsigned>(slot) %
                                  kNumExplicitRegions,
                          regionFor(memory));
        }
        // A burst of checked accesses through the slot.
        HmovOperands ops;
        ops.width = 8;
        for (unsigned a = 0; a < 16; ++a) {
            ops.index = a * 8;
            AccessChecker::checkHmov(
                ctx, static_cast<unsigned>(slot) % kNumExplicitRegions,
                ops, false);
            clock.tick(1);
            ++accesses;
        }
    }
    ctx.exit();
    (void)accesses;
    return clock.nowNs() - t0;
}

} // namespace

int
main()
{
    constexpr unsigned kSwitches = 20000;
    std::printf("Ablation: multiplexing K memories over the explicit "
                "region registers\n");
    std::printf("%-10s %14s %14s %14s\n", "memories", "4 slots (HFI)",
                "2 slots", "8 slots");
    std::printf("%.*s\n", 56,
                "--------------------------------------------------------");
    for (unsigned memories : {1u, 2u, 4u, 6u, 8u, 12u, 16u, 32u}) {
        const double hfi4 = runMultiplexed(memories, 4, kSwitches);
        const double two = runMultiplexed(memories, 2, kSwitches);
        const double eight = runMultiplexed(memories, 8, kSwitches);
        std::printf("%-10u %11.1f us %11.1f us %11.1f us\n", memories,
                    hfi4 / 1e3, two / 1e3, eight / 1e3);
    }
    std::printf("\nWith K <= 4 memories the 4-register design never "
                "reloads metadata;\nbeyond that the hybrid sandbox pays a "
                "serialized hfi_set_region per switch (§4.3).\nDoubling "
                "registers to 8 delays the cliff but doubles the on-chip "
                "state the paper\nworks to keep constant (§4's 22-register "
                "budget).\n");
    return 0;
}
