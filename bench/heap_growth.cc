/**
 * @file
 * §6.1's heap-growth microbenchmark:
 *
 * "we ran a simple benchmark in Wasmtime that grows the Wasm heap from
 *  a single page to 4 GiB in 64 KiB increments. In total, the
 *  mprotect() method takes 10.92 seconds, while HFI takes 370 ms, a
 *  difference of ~30x."
 *
 * We drive the backends' grow paths directly (the LinearMemory byte
 * store is skipped so the harness itself does not allocate 4 GiB of
 * host RAM; the modeled costs are identical).
 */

#include <cstdio>

#include "sfi/guard_page_backend.h"
#include "sfi/hfi_backend.h"
#include "sfi/linear_memory.h"

int
main()
{
    using namespace hfi;

    constexpr std::uint64_t total_pages = 65536; // 4 GiB of Wasm pages
    // Per-grow runtime bookkeeping (memory_grow libcall + instance
    // table update), identical across schemes — see SandboxOptions.
    constexpr double grow_runtime_ns = 5640.0;

    double guard_sec = 0, hfi_sec = 0;

    {
        vm::VirtualClock clock;
        vm::Mmu mmu(clock);
        sfi::GuardPageBackend backend(mmu);
        if (!backend.create(1, total_pages))
            return 1;
        const double t0 = clock.nowNs();
        for (std::uint64_t p = 1; p < total_pages; ++p) {
            clock.tick(clock.nsToCycles(grow_runtime_ns));
            backend.grow(p, p + 1);
        }
        guard_sec = (clock.nowNs() - t0) / 1e9;
    }

    {
        vm::VirtualClock clock;
        vm::Mmu mmu(clock);
        core::HfiContext ctx(clock);
        sfi::HfiBackend backend(mmu, ctx);
        if (!backend.create(1, total_pages))
            return 1;
        const double t0 = clock.nowNs();
        for (std::uint64_t p = 1; p < total_pages; ++p) {
            clock.tick(clock.nsToCycles(grow_runtime_ns));
            backend.grow(p, p + 1);
        }
        hfi_sec = (clock.nowNs() - t0) / 1e9;
    }

    std::printf("Section 6.1: heap growth, 1 page -> 4 GiB in 64 KiB "
                "increments (%lu grows)\n",
                static_cast<unsigned long>(total_pages - 1));
    std::printf("  guard pages (mprotect): %6.2f s   (paper: 10.92 s)\n",
                guard_sec);
    std::printf("  HFI (hfi_set_region):   %6.0f ms  (paper: 370 ms)\n",
                hfi_sec * 1e3);
    std::printf("  speedup:                %6.1fx    (paper: ~30x)\n",
                guard_sec / hfi_sec);
    return 0;
}
