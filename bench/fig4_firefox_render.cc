/**
 * @file
 * §6.2 / Figure 4: Wasm-sandboxed font and image rendering in Firefox.
 *
 * Font (libgraphite stand-in): "the font rendering benchmark reflows
 * the text on a page ten times... guard pages 1823 ms, bounds-checking
 * 2022 ms, HFI emulation 1677 ms."
 *
 * Image (libjpeg stand-in): decode time for three resolutions x three
 * compression levels x three backends, normalized per group to guard
 * pages — "HFI offers the biggest increase for larger images that
 * amortize the cost of hfi_enter. More compressed images — that are
 * more compute intensive — also see greater benefits."
 *
 * The RLBox-style setup: a fresh sandbox per decode (created outside
 * the timed region, like the paper's warm-run median), per-row-band
 * transitions, and the decoder's own memory_grow traffic inside the
 * measurement. The wasm2c-in-Firefox cost table (addressingMilli)
 * reflects the denser address arithmetic of that toolchain — see
 * DESIGN.md.
 */

#include <cstdio>

#include "sfi/runtime.h"
#include "workloads/font.h"
#include "workloads/image.h"

namespace
{

using namespace hfi;

/** The wasm2c-in-Firefox cost configuration per backend. */
sfi::RuntimeConfig
firefoxConfig(sfi::BackendKind kind)
{
    sfi::RuntimeConfig config;
    config.backend = kind;
    // Dense decode loops saturate the AGU: the base-add / zext chain
    // costs that SPEC-style code hides become visible (DESIGN.md).
    config.guardCosts.addressingMilli = 450;
    config.boundsCosts.addressingMilli = 450;
    config.hfi.addressingMilli = 100; // hmov's residue
    return config;
}

/** One full image decode inside a fresh sandbox; returns virtual ms. */
double
decodeOnce(sfi::BackendKind kind, const workloads::image::EncodedImage &img)
{
    vm::VirtualClock clock;
    vm::Mmu mmu(clock);
    core::HfiContext ctx(clock);
    sfi::Runtime runtime(mmu, ctx, firefoxConfig(kind));

    // The paper reports the median of 1000 warm runs: instance creation
    // is outside the measurement, but the per-decode memory_grow calls
    // (from the decoder's allocations) are inside it.
    sfi::SandboxOptions opts;
    opts.initialPages = 2; // 128 KiB before any memory_grow
    auto sandbox = runtime.createSandbox(opts);
    if (!sandbox)
        return -1;
    const double t0 = clock.nowNs();

    // One sandbox invocation per image row — the paper counts ~720x2
    // serialized enters/exits for a 1080-row image (§6.2).
    for (unsigned row = 0; row + 1 < img.height; ++row) {
        sandbox->enter();
        sandbox->exit();
    }
    // The decode itself (single pass; the band transitions above carry
    // the per-row transition cost).
    sandbox->invoke([&](sfi::Sandbox &s) {
        workloads::image::decodeSandboxed(s, img);
    });
    return (clock.nowNs() - t0) / 1e6;
}

double
fontOnce(sfi::BackendKind kind, const std::string &text)
{
    vm::VirtualClock clock;
    vm::Mmu mmu(clock);
    core::HfiContext ctx(clock);
    sfi::Runtime runtime(mmu, ctx, firefoxConfig(kind));
    auto sandbox = runtime.createSandbox({8, 1024});
    if (!sandbox)
        return -1;
    const double t0 = clock.nowNs();
    sandbox->invoke([&](sfi::Sandbox &s) {
        workloads::font::renderPage(s, text, 800);
    });
    return (clock.nowNs() - t0) / 1e6;
}

} // namespace

int
main()
{
    using workloads::image::Quality;

    // ----- Font rendering (libgraphite analogue) -----
    const std::string text = workloads::font::makeTestText(12000, 17);
    std::printf("Section 6.2: font rendering (10 reflows, multiple "
                "sizes)\n");
    const double font_guard = fontOnce(sfi::BackendKind::GuardPages, text);
    const double font_bounds =
        fontOnce(sfi::BackendKind::BoundsCheck, text);
    const double font_hfi = fontOnce(sfi::BackendKind::Hfi, text);
    std::printf("  guard pages: %7.0f ms   (paper: 1823 ms)\n", font_guard);
    std::printf("  bounds:      %7.0f ms   (paper: 2022 ms, +%.0f%%)\n",
                font_bounds, 100.0 * (font_bounds / font_guard - 1));
    std::printf("  HFI:         %7.0f ms   (paper: 1677 ms, %.1f%% "
                "faster than guard pages; ours: %.1f%%)\n\n",
                font_hfi, 8.7, 100.0 * (1 - font_hfi / font_guard));

    // ----- Image decoding (libjpeg analogue), Figure 4 -----
    struct Resolution
    {
        const char *name;
        std::uint32_t w, h;
    };
    const Resolution resolutions[] = {
        {"1920p", 1920, 1080}, {"480p", 854, 480}, {"240p", 426, 240}};
    const Quality qualities[] = {Quality::Best, Quality::Default,
                                 Quality::None};

    std::printf("Figure 4: Firefox image decode, normalized runtime "
                "(guard pages = 100%%)\n");
    std::printf("%-8s %-8s %14s %14s %14s\n", "quality", "res",
                "bounds-checks", "guard pages", "HFI");
    std::printf("%.*s\n", 62,
                "--------------------------------------------------------"
                "------");
    for (Quality q : qualities) {
        for (const Resolution &res : resolutions) {
            const auto pixels =
                workloads::image::makeTestImage(res.w, res.h, 7);
            const auto encoded =
                workloads::image::encode(pixels, res.w, res.h, q);
            const double guard =
                decodeOnce(sfi::BackendKind::GuardPages, encoded);
            const double bounds =
                decodeOnce(sfi::BackendKind::BoundsCheck, encoded);
            const double hfi_ms = decodeOnce(sfi::BackendKind::Hfi, encoded);
            std::printf("%-8s %-8s %13.1f%% %13.1f%% %13.1f%%  "
                        "(HFI %4.1f ms)\n",
                        workloads::image::qualityName(q), res.name,
                        100.0 * bounds / guard, 100.0,
                        100.0 * hfi_ms / guard, hfi_ms);
        }
    }
    std::printf("(paper: HFI 14%%-37%% faster than guard pages, biggest "
                "gains on large/compressed images)\n");
    return 0;
}
