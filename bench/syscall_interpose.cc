/**
 * @file
 * §6.4.1: performance of trapping syscalls.
 *
 * "a custom syscall benchmark that opens a file, reads it, and closes
 *  it 100,000 times, and uses Seccomp-bpf and HFI in turn to interpose
 *  on the syscalls. We found that using the Seccomp-bpf version imposes
 *  an overhead of 2.1% over the HFI version."
 *
 * Both interposers mediate the same open/read/close stream against the
 * miniature kernel; the seccomp path really executes its cBPF filter.
 */

#include <cstdio>
#include <vector>

#include "syscall/interposer.h"

namespace
{

using namespace hfi;
using namespace hfi::syscall;

constexpr std::uint64_t kIterations = 100'000;
constexpr std::uint64_t kFileBytes = 16 * 1024;

/** The ERIM-ish allowlist: a realistic couple dozen syscalls. */
std::vector<std::uint32_t>
allowlist()
{
    std::vector<std::uint32_t> nrs = {kSysRead,  kSysWrite, kSysOpen,
                                      kSysClose, kSysMmap,  kSysMprotect,
                                      kSysMadvise};
    for (std::uint32_t nr = 100; nr < 125; ++nr)
        nrs.push_back(nr); // filler entries like a real profile
    nrs.push_back(kSysExitGroup);
    return nrs;
}

enum class Path
{
    Hfi,
    Seccomp,
};

double
runLoop(Path path)
{
    vm::VirtualClock clock;
    core::HfiContext ctx(clock);
    MiniKernel kernel(clock);
    kernel.addFile("/data/payload.bin", kFileBytes, 11);

    core::SandboxConfig cfg;
    cfg.isHybrid = false;
    cfg.exitHandler = 0x7000'0000;
    ctx.enter(cfg);

    HfiInterposer hfi_path(ctx, allowlist());
    SeccompInterposer seccomp_path(clock, allowlist());

    auto mediate = [&](std::uint32_t nr) {
        SeccompData data;
        data.nr = nr;
        if (path == Path::Hfi)
            hfi_path.onSyscall(data);
        else
            seccomp_path.onSyscall(data);
    };

    std::vector<std::uint8_t> buffer(kFileBytes);
    const double t0 = clock.nowNs();
    for (std::uint64_t i = 0; i < kIterations; ++i) {
        mediate(kSysOpen);
        const int fd = kernel.open("/data/payload.bin");
        mediate(kSysRead);
        kernel.read(fd, buffer.data(), buffer.size());
        mediate(kSysClose);
        kernel.close(fd);
    }
    return (clock.nowNs() - t0) / 1e9;
}

} // namespace

int
main()
{
    const double hfi_sec = runLoop(Path::Hfi);
    const double seccomp_sec = runLoop(Path::Seccomp);

    std::printf("Section 6.4.1: open/read/close x %lu with syscall "
                "interposition\n",
                static_cast<unsigned long>(kIterations));
    std::printf("  HFI (microcode redirect to exit handler): %6.3f s\n",
                hfi_sec);
    std::printf("  Seccomp-bpf (cBPF filter per syscall):    %6.3f s\n",
                seccomp_sec);
    std::printf("  seccomp overhead over HFI:                %6.2f%%  "
                "(paper: 2.1%%)\n",
                (seccomp_sec / hfi_sec - 1.0) * 100.0);
    return 0;
}
