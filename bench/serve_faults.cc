/**
 * @file
 * Fault-injection degradation sweep: fault rate x protection scheme on
 * the multi-core serving engine, with the robustness machinery (per-
 * request deadlines, bounded retry with exponential backoff, instance
 * quarantine + background respawn) engaged.
 *
 * The question, per §6.3's FaaS setting: when a fraction of requests
 * raise real HFI exits (data/code OOB, syscall redirects, hmov overflow
 * traps — all through the src/core checker paths), stall past the
 * watchdog, or poison their instance, does the engine keep serving with
 * a bounded tail? The acceptance bar: at 5% injection no scheme's p99
 * goodput latency exceeds 3x its fault-free value, the warm pool never
 * drains (every quarantine respawns, no request is ever rejected for
 * want of an instance), and the whole campaign replays bit-identically
 * from (seed, fault_rate) — in the sequential event loop and, with
 * --threads, in realThreads mode.
 *
 * Emits BENCH_serve_faults.json; two runs produce byte-identical files.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/checker.h"
#include "obs/json_writer.h"
#include "serve/engine.h"

namespace
{

using namespace hfi;
using namespace hfi::serve;

/** ~76 us of handler work: stores plus metered compute. */
Handler
handlerWithOps(std::uint64_t ops)
{
    return [ops](sfi::Sandbox &s, std::uint32_t seed) {
        for (int i = 0; i < 64; ++i)
            s.store<std::uint32_t>(64 + (i % 64) * 4, seed + i);
        s.chargeOps(ops);
    };
}

EngineConfig
faultConfig(Scheme scheme, double rate)
{
    EngineConfig ec;
    ec.workers = 4;
    ec.mode = LoadMode::OpenLoop;
    ec.requests = 1600;
    // Mean interarrival 40 us against ~80 us service on 4 cores: ~0.5
    // utilization fault-free (Swivel's inflated service pushes it
    // higher), so there is headroom for retry traffic without queueing
    // collapse.
    ec.meanInterarrivalNs = 40'000.0;
    ec.seed = 2026;
    ec.queueCapacity = 128;
    // No stealing: the identical configuration is threadable, so the
    // --threads gate compares exactly the cells the sweep prints.
    ec.workStealing = false;
    ec.worker.scheme = scheme;
    ec.worker.quantumNs = 50'000.0;
    ec.worker.teardownBatch = 32;
    if (scheme == Scheme::Swivel)
        ec.worker.swivelEffect = swivel::apply(swivel::xmlToJsonProfile());

    // Robustness: warm per-core pools with background respawn, a 300 us
    // deadline (comfortably above every scheme's worst natural service,
    // including Swivel's inflated one), two retries with 25 us backoff.
    ec.worker.poolSize = 4;
    ec.worker.respawnDelayNs = 200'000.0;
    ec.worker.requestTimeoutNs = 300'000.0;
    ec.worker.maxRetries = 2;
    ec.worker.retryBackoffNs = 25'000.0;
    ec.worker.faults.rate = rate;
    ec.worker.faults.stallNs = 2'000'000.0;
    return ec;
}

constexpr double kRates[] = {0.0, 0.01, 0.02, 0.05, 0.10};
constexpr Scheme kSchemes[] = {Scheme::Unsafe, Scheme::HfiNative,
                               Scheme::HfiSwitchOnExit, Scheme::Swivel};

struct Cell
{
    Scheme scheme;
    double rate;
    ServeResult res;
};

/** Engine totals must equal the by-core sums (the single-source-of-
    truth invariant the accounting rework establishes). */
bool
perCoreConsistent(const ServeResult &r)
{
    RobustnessStats sum;
    for (const auto &core : r.perCore)
        sum.merge(core);
    if (sum.shed != r.shed || sum.served != r.served)
        return false;
    if (sum.exits != r.robustness.exits ||
        sum.retries != r.robustness.retries ||
        sum.timeouts != r.robustness.timeouts ||
        sum.quarantines != r.robustness.quarantines ||
        sum.respawns != r.robustness.respawns ||
        sum.failed != r.robustness.failed)
        return false;
    for (unsigned i = 0; i < core::kNumExitReasons; ++i)
        if (sum.exitsByReason[i] != r.robustness.exitsByReason[i])
            return false;
    return true;
}

int
runSweep()
{
    std::printf("Fault-injection degradation sweep: 4 cores, ~80 us "
                "handlers,\n1600 open-loop requests, 300 us deadline, "
                "2 retries, warm pools of 4\n");

    std::vector<Cell> cells;
    int violations = 0;

    for (Scheme scheme : kSchemes) {
        std::printf("\n%s\n", schemeName(scheme));
        std::printf("  %6s %7s %7s %7s %6s %6s %6s %6s %6s %6s %10s %10s\n",
                    "rate%", "served", "failed", "shed", "exits", "retry",
                    "tmout", "quarA", "respwn", "rejct", "p50 us",
                    "p99 us");
        double faultFreeP99 = 0;
        for (double rate : kRates) {
            const auto res =
                ServeEngine(faultConfig(scheme, rate), handlerWithOps(250'000))
                    .run();
            if (rate == 0.0)
                faultFreeP99 = res.latency.p99;

            std::printf("  %6.1f %7zu %7llu %7zu %6llu %6llu %6llu %6llu "
                        "%6llu %6zu %10.1f %10.1f\n",
                        rate * 100.0, res.served,
                        static_cast<unsigned long long>(res.robustness.failed),
                        res.shed,
                        static_cast<unsigned long long>(res.robustness.exits),
                        static_cast<unsigned long long>(
                            res.robustness.retries),
                        static_cast<unsigned long long>(
                            res.robustness.timeouts),
                        static_cast<unsigned long long>(
                            res.robustness.quarantines),
                        static_cast<unsigned long long>(
                            res.robustness.respawns),
                        res.rejected, res.latency.p50 / 1e3,
                        res.latency.p99 / 1e3);

            // Invariants the robustness layer must hold at every cell.
            if (res.rejected != 0) {
                std::printf("  VIOLATION: pool drained (%zu rejections)\n",
                            res.rejected);
                ++violations;
            }
            if (res.served + res.robustness.failed + res.shed !=
                faultConfig(scheme, rate).requests) {
                std::printf("  VIOLATION: request conservation broken\n");
                ++violations;
            }
            if (!perCoreConsistent(res)) {
                std::printf("  VIOLATION: per-core breakdown does not sum "
                            "to engine totals\n");
                ++violations;
            }
            if (rate == 0.05 && res.latency.p99 > 3.0 * faultFreeP99) {
                std::printf("  VIOLATION: p99 at 5%% faults is %.1fx the "
                            "fault-free p99 (bound: 3x)\n",
                            res.latency.p99 / faultFreeP99);
                ++violations;
            }
            cells.push_back({scheme, rate, res});
        }
    }

    // Exit-reason mix at the heaviest injection, for one scheme — shows
    // the real checker paths are what is being exercised.
    std::printf("\nExit reasons at 10%% injection (%s):\n",
                schemeName(Scheme::HfiNative));
    for (const auto &cell : cells) {
        if (cell.scheme != Scheme::HfiNative || cell.rate != 0.10)
            continue;
        for (unsigned r = 0; r < core::kNumExitReasons; ++r) {
            const auto n = cell.res.robustness.exitsByReason[r];
            if (n != 0)
                std::printf("  %-22s %6llu\n",
                            core::toString(
                                static_cast<core::ExitReason>(r)),
                            static_cast<unsigned long long>(n));
        }
    }

    // Deterministic JSON (virtual-clock doubles print exactly), through
    // the shared versioned writer every BENCH_*.json emitter uses.
    obs::JsonWriter jw;
    jw.beginObject();
    jw.field("bench", "serve_faults");
    jw.schemaVersion();
    jw.field("seed", 2026);
    jw.key("cells").beginArray();
    for (const auto &c : cells) {
        const auto &r = c.res.robustness;
        jw.beginObject();
        jw.field("scheme", schemeName(c.scheme));
        jw.field("rate", c.rate, "%.2f");
        jw.field("served", static_cast<std::uint64_t>(c.res.served));
        jw.field("failed", r.failed);
        jw.field("shed", static_cast<std::uint64_t>(c.res.shed));
        jw.field("exits", r.exits);
        jw.field("retries", r.retries);
        jw.field("timeouts", r.timeouts);
        jw.field("quarantines", r.quarantines);
        jw.field("respawns", r.respawns);
        jw.field("rejected", static_cast<std::uint64_t>(c.res.rejected));
        jw.field("p50_ns", c.res.latency.p50, "%.3f");
        jw.field("p99_ns", c.res.latency.p99, "%.3f");
        jw.field("throughput_rps", c.res.throughputRps, "%.3f");
        jw.endObject();
    }
    jw.endArray();
    jw.endObject();
    FILE *json = std::fopen("BENCH_serve_faults.json", "w");
    if (json) {
        std::fputs(jw.str().c_str(), json);
        std::fputc('\n', json);
        std::fclose(json);
        std::printf("\nwrote BENCH_serve_faults.json\n");
    }

    if (violations) {
        std::printf("%d robustness violation(s)\n", violations);
        return 1;
    }
    std::printf("OK: p99 bounded under injection, pools never drained\n");
    return 0;
}

bool
identical(const ServeResult &a, const ServeResult &b)
{
    if (a.served != b.served || a.shed != b.shed ||
        a.rejected != b.rejected || a.maxQueueDepth != b.maxQueueDepth ||
        a.contextSwitches != b.contextSwitches ||
        a.preemptions != b.preemptions ||
        a.instancesCreated != b.instancesCreated ||
        a.reclaimBatches != b.reclaimBatches ||
        a.hfiStateMismatches != b.hfiStateMismatches ||
        a.durationNs != b.durationNs)
        return false;
    const auto &ra = a.robustness, &rb = b.robustness;
    if (ra.faultsInjected != rb.faultsInjected || ra.exits != rb.exits ||
        ra.retries != rb.retries || ra.timeouts != rb.timeouts ||
        ra.quarantines != rb.quarantines || ra.respawns != rb.respawns ||
        ra.failed != rb.failed || ra.poolWaits != rb.poolWaits)
        return false;
    for (unsigned i = 0; i < core::kNumExitReasons; ++i)
        if (ra.exitsByReason[i] != rb.exitsByReason[i])
            return false;
    // The latency multiset must match sample-for-sample once each side
    // is put in a canonical order (threaded merge order differs from
    // sequential service order across cores).
    std::vector<double> la = a.latencies.values();
    std::vector<double> lb = b.latencies.values();
    std::sort(la.begin(), la.end());
    std::sort(lb.begin(), lb.end());
    return la == lb;
}

int
runThreadsGate()
{
    std::printf("Threaded-vs-sequential fault campaign gate (5%% "
                "injection)\n");
    bool ok = true;
    for (Scheme scheme : kSchemes) {
        EngineConfig seq = faultConfig(scheme, 0.05);
        EngineConfig thr = seq;
        thr.realThreads = true;
        const auto a = ServeEngine(seq, handlerWithOps(250'000)).run();
        const auto b = ServeEngine(thr, handlerWithOps(250'000)).run();
        const bool same = identical(a, b) && b.usedThreads == seq.workers;
        std::printf("  %-16s exits %5llu  threads %u  identical %s\n",
                    schemeName(scheme),
                    static_cast<unsigned long long>(b.robustness.exits),
                    b.usedThreads, same ? "yes" : "NO");
        ok = ok && same;
    }
    if (!ok) {
        std::printf("DIVERGENCE: threaded fault campaign differs from "
                    "sequential\n");
        return 1;
    }
    std::printf("OK: fault campaigns are bit-identical across drivers\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--threads") == 0)
        return runThreadsGate();
    return runSweep();
}
