/**
 * @file
 * §6.3.2: scalability of sandbox creation.
 *
 * "We test this by measuring the number of 1 GiB Wasm sandboxes that
 *  can be created by Wasmtime when it is allowed to elide guard pages
 *  (by using HFI). When eliding guard pages, we find that Wasmtime can
 *  create up to 256,000 1 GiB sandboxes in a single process."
 *
 * We create backends (address-space footprints) until reservation
 * fails, for guard-page and HFI layouts, on the 48-bit address space
 * the paper's number implies. Backends are created directly — a full
 * Sandbox would also allocate host memory per instance, which is
 * irrelevant to the VA-exhaustion question.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "sfi/guard_page_backend.h"
#include "sfi/hfi_backend.h"
#include "sfi/multi_memory.h"

namespace
{

using namespace hfi;

std::uint64_t
countInstances(bool use_hfi, unsigned va_bits)
{
    vm::VirtualClock clock;
    vm::Mmu mmu(clock, va_bits);
    core::HfiContext ctx(clock);

    constexpr std::uint64_t kGiBPages = 16384; // 1 GiB of Wasm pages
    std::vector<std::unique_ptr<sfi::IsolationBackend>> live;
    std::uint64_t count = 0;
    while (true) {
        std::unique_ptr<sfi::IsolationBackend> backend;
        if (use_hfi)
            backend = std::make_unique<sfi::HfiBackend>(mmu, ctx);
        else
            backend = std::make_unique<sfi::GuardPageBackend>(mmu);
        if (!backend->create(1, kGiBPages))
            break;
        live.push_back(std::move(backend));
        ++count;
    }
    return count;
}

} // namespace

int
main()
{
    std::printf("Section 6.3.2: concurrent 1 GiB sandboxes before the "
                "virtual address space is full\n");
    for (unsigned bits : {47u, 48u}) {
        const std::uint64_t guard = countInstances(false, bits);
        const std::uint64_t hfi_count = countInstances(true, bits);
        std::printf("  %u-bit VA: guard pages %7lu sandboxes, "
                    "HFI (guards elided) %7lu sandboxes (%.0fx)\n",
                    bits, static_cast<unsigned long>(guard),
                    static_cast<unsigned long>(hfi_count),
                    static_cast<double>(hfi_count) /
                        static_cast<double>(guard));
    }
    std::printf("(paper: 256,000 1 GiB sandboxes with guard pages "
                "elided, vs the ~16K 8 GiB footprints of Section 2)\n");

    // §2's multi-memory footprint: "these can increase an instance's
    // resource footprint by another 8 GiB per-memory".
    {
        vm::VirtualClock clock;
        vm::Mmu mmu(clock, 48);
        core::HfiContext ctx(clock);
        sfi::MultiMemorySandbox instance(mmu, ctx, /*memories*/ 4,
                                         /*initial*/ 1,
                                         /*max pages*/ 16384); // 1 GiB
        std::printf("\nMulti-memory footprint (4 memories, 1 GiB max "
                    "each):\n");
        std::printf("  guard pages: %5.0f GiB (8 GiB per memory, §2)\n",
                    4 * 8.0);
        std::printf("  HFI:         %5.0f GiB (exactly the declared "
                    "maxima)\n",
                    static_cast<double>(instance.reservedVaBytes()) /
                        (1ULL << 30));
    }
    return 0;
}
