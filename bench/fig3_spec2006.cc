/**
 * @file
 * Figure 3: SPEC INT 2006 (Wasm-compatible subset) normalized against
 * guard pages.
 *
 * "Bounds-checking incurs overheads between 18.74% and 48.34%, with
 *  median and geometric mean 34.67%. On the other hand, HFI takes
 *  between 92.51% and 107.45% the execution time of guard pages, with
 *  median 95.88% (a speedup of 4.3%) and geometric mean 96.85% (a
 *  speedup of 3.25%)."
 *
 * Each SPEC-analogue kernel runs under the three isolation backends on
 * the virtual clock; runtimes are normalized to the guard-page run.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "sfi/runtime.h"
#include "workloads/spec_like.h"

namespace
{

using namespace hfi;

double
runOne(const workloads::Workload &workload, sfi::BackendKind kind,
       std::uint64_t scale)
{
    vm::VirtualClock clock;
    vm::Mmu mmu(clock);
    core::HfiContext ctx(clock);
    sfi::RuntimeConfig config;
    config.backend = kind;
    sfi::Runtime runtime(mmu, ctx, config);
    sfi::SandboxOptions opts;
    // SPEC-style runs size their heap once up front and then run long
    // (§6.1: "long-running applications that do not test HFI's fast
    // transitions, but do show its low cost in steady state") — so the
    // initial heap covers the working set and growth costs never
    // dominate.
    opts.initialPages = 64;
    opts.icacheSensitivity = workload.icacheSensitivity;
    auto sandbox = runtime.createSandbox(opts);
    if (!sandbox)
        return -1;

    const double t0 = clock.nowNs();
    sandbox->invoke([&](sfi::Sandbox &s) { workload.run(s, scale, 1234); });
    return clock.nowNs() - t0;
}

double
geomean(const std::vector<double> &v)
{
    double log_sum = 0;
    for (double x : v)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(v.size()));
}

double
median(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

} // namespace

int
main()
{
    std::printf("Figure 3: SPEC INT 2006 results normalized against guard "
                "pages\n");
    std::printf("%-16s %14s %14s %14s\n", "benchmark", "guard pages",
                "bounds-checks", "HFI");
    std::printf("%.*s\n", 62,
                "--------------------------------------------------------"
                "------");

    std::vector<double> bounds_norm, hfi_norm;
    for (const auto &workload : hfi::workloads::spec::suite()) {
        const double guard =
            runOne(workload, hfi::sfi::BackendKind::GuardPages, 2);
        const double bounds =
            runOne(workload, hfi::sfi::BackendKind::BoundsCheck, 2);
        const double hfi_time =
            runOne(workload, hfi::sfi::BackendKind::Hfi, 2);
        if (guard <= 0 || bounds <= 0 || hfi_time <= 0)
            return 1;
        bounds_norm.push_back(bounds / guard);
        hfi_norm.push_back(hfi_time / guard);
        std::printf("%-16s %13.1f%% %13.1f%% %13.1f%%\n",
                    workload.name.c_str(), 100.0, 100.0 * bounds / guard,
                    100.0 * hfi_time / guard);
    }

    std::printf("%.*s\n", 62,
                "--------------------------------------------------------"
                "------");
    std::printf("bounds-checking: %.1f%% - %.1f%%, median %.1f%%, "
                "geomean %.1f%% (paper: 118.7%%-148.3%%, geomean 134.7%%)\n",
                100 * *std::min_element(bounds_norm.begin(),
                                        bounds_norm.end()),
                100 * *std::max_element(bounds_norm.begin(),
                                        bounds_norm.end()),
                100 * median(bounds_norm), 100 * geomean(bounds_norm));
    std::printf("HFI:             %.1f%% - %.1f%%, median %.1f%%, "
                "geomean %.1f%% (paper: 92.5%%-107.5%%, geomean 96.9%%)\n",
                100 * *std::min_element(hfi_norm.begin(), hfi_norm.end()),
                100 * *std::max_element(hfi_norm.begin(), hfi_norm.end()),
                100 * median(hfi_norm), 100 * geomean(hfi_norm));
    return 0;
}
