/**
 * @file
 * Figure 2: accuracy of emulated HFI.
 *
 * "We ran our hardware simulated HFI and software emulated HFI
 *  side-by-side on the Sightglass benchmarks in gem5. We see that the
 *  emulation offers reasonable accuracy — with overheads ranging from
 *  98%-108% of simulated overhead. The geometric mean difference in
 *  runtime is 1.62%."
 *
 * Each Sightglass kernel runs twice on the same cycle-level core: once
 * with real hmov µops + serialized hfi_enter/hfi_exit, once with the
 * appendix-A.2 compiler emulation (fixed-absolute-base movs, cpuid
 * fences, metadata moved through general-purpose registers). The table
 * reports cycles for both and the emulation/hardware ratio.
 */

#include <cmath>
#include <cstdio>

#include "sim/kernels.h"
#include "sim/pipeline.h"

int
main()
{
    using namespace hfi::sim;

    std::printf("Figure 2: accuracy of emulated HFI "
                "(normalized runtime, emulation vs hardware simulation)\n");
    std::printf("%-16s %12s %12s %10s\n", "benchmark", "hw cycles",
                "emu cycles", "emu/hw");
    std::printf("%.*s\n", 54,
                "------------------------------------------------------");

    double log_sum = 0;
    double lo = 1e9, hi = 0;
    int count = 0;
    for (const auto &kernel : kernels::suite()) {
        std::uint64_t cycles[2] = {0, 0};
        for (int m = 0; m < 2; ++m) {
            const auto mode = m == 0 ? kernels::Mode::HfiHardware
                                     : kernels::Mode::HfiEmulation;
            const Program prog = kernel.build(mode, 2);
            Pipeline pipe(prog);
            kernel.stage(pipe.memory(), 2, 42);
            const auto res = pipe.run(500'000'000);
            if (!res.halted) {
                std::fprintf(stderr, "%s did not halt!\n",
                             kernel.name.c_str());
                return 1;
            }
            cycles[m] = res.cycles;
        }
        const double ratio =
            static_cast<double>(cycles[1]) / static_cast<double>(cycles[0]);
        log_sum += std::log(ratio);
        lo = std::min(lo, ratio);
        hi = std::max(hi, ratio);
        ++count;
        std::printf("%-16s %12lu %12lu %9.1f%%\n", kernel.name.c_str(),
                    static_cast<unsigned long>(cycles[0]),
                    static_cast<unsigned long>(cycles[1]), ratio * 100.0);
    }

    const double geomean = std::exp(log_sum / count);
    std::printf("%.*s\n", 54,
                "------------------------------------------------------");
    std::printf("range: %.1f%% - %.1f%%   geomean difference: %.2f%%\n",
                lo * 100.0, hi * 100.0, std::fabs(geomean - 1.0) * 100.0);
    std::printf("(paper: 98%%-108%%, geomean difference 1.62%%)\n");
    return 0;
}
