/**
 * @file
 * Multi-core serving-engine scaling sweep: 1 -> 16 simulated cores,
 * each with its own HfiContext, serving an open-loop Poisson request
 * stream under the Table 1 protection schemes.
 *
 * Two questions the closed-loop Table 1 harness cannot answer:
 *
 *  1. Does per-request HFI state management (enter/exit, plus the
 *     §3.3.3 xsave/xrstor on every dispatch and timer preemption) eat
 *     into multi-core scaling? It must not — HFI state is per-core, so
 *     throughput should scale near-linearly with cores, unlike designs
 *     that serialize on shared protection state.
 *
 *  2. Where is the crossover at which Swivel's compute inflation
 *     dominates HFI's fixed transition costs? Short handlers amortize
 *     transitions badly (HFI's worst case); long handlers multiply
 *     compute (Swivel's worst case).
 *
 * Everything runs on seeded virtual clocks: output is bit-for-bit
 * reproducible across invocations.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "obs/trace.h"
#include "serve/engine.h"

namespace
{

using namespace hfi;
using namespace hfi::serve;

/** ~76 us of handler work: stores plus metered compute. */
Handler
handlerWithOps(std::uint64_t ops)
{
    return [ops](sfi::Sandbox &s, std::uint32_t seed) {
        for (int i = 0; i < 64; ++i)
            s.store<std::uint32_t>(64 + (i % 64) * 4, seed + i);
        s.chargeOps(ops);
    };
}

EngineConfig
baseConfig(unsigned workers, Scheme scheme)
{
    EngineConfig ec;
    ec.workers = workers;
    ec.mode = LoadMode::OpenLoop;
    ec.requests = 1600;
    // Mean interarrival 5 us against ~80 us service: heavy overload at
    // one core, comfortably under capacity at sixteen. The sweep shows
    // the queueing collapse unwinding as cores are added.
    ec.meanInterarrivalNs = 5'000.0;
    ec.seed = 2023;
    ec.worker.scheme = scheme;
    ec.worker.quantumNs = 50'000.0; // 50 us timer
    ec.worker.teardownBatch = 32;
    if (scheme == Scheme::Swivel)
        ec.worker.swivelEffect = swivel::apply(swivel::xmlToJsonProfile());
    return ec;
}

void
sweepScheme(Scheme scheme, std::uint64_t ops)
{
    std::printf("\n%s\n", schemeName(scheme));
    std::printf("  %5s %7s %6s %9s %9s %9s %9s %9s %8s\n", "cores",
                "served", "shed", "thru r/s", "p50 us", "p95 us", "p99 us",
                "p99.9 us", "speedup");
    double base_thru = 0;
    for (unsigned workers : {1u, 2u, 4u, 8u, 16u}) {
        const auto res =
            ServeEngine(baseConfig(workers, scheme), handlerWithOps(ops))
                .run();
        if (workers == 1)
            base_thru = res.throughputRps;
        std::printf(
            "  %5u %7zu %6zu %9.0f %9.1f %9.1f %9.1f %9.1f %7.2fx\n",
            workers, res.served, res.shed, res.throughputRps,
            res.latency.p50 / 1e3, res.latency.p95 / 1e3,
            res.latency.p99 / 1e3, res.latency.p999 / 1e3,
            res.throughputRps / base_thru);
    }
}

void
crossoverAtEightCores()
{
    std::printf("\nSerialization-cost crossover (8 cores, handler length "
                "sweep)\n");
    std::printf("  %9s %14s %14s %14s %11s\n", "ops/req", "HFI p99 us",
                "soe p99 us", "Swivel p99 us", "HFI wins?");
    for (std::uint64_t ops : {2'000ULL, 20'000ULL, 200'000ULL}) {
        double p99[3];
        int i = 0;
        for (Scheme s : {Scheme::HfiNative, Scheme::HfiSwitchOnExit,
                         Scheme::Swivel}) {
            auto cfg = baseConfig(8, s);
            // Keep offered load proportional to service so every row
            // sits at the same utilization.
            cfg.meanInterarrivalNs =
                500.0 + static_cast<double>(ops) / 16.0;
            const auto res =
                ServeEngine(cfg, handlerWithOps(ops)).run();
            p99[i++] = res.latency.p99;
        }
        std::printf("  %9llu %14.1f %14.1f %14.1f %11s\n",
                    static_cast<unsigned long long>(ops), p99[0] / 1e3,
                    p99[1] / 1e3, p99[2] / 1e3,
                    p99[0] < p99[2] ? "yes" : "no");
    }
}

void
admissionControlDemo()
{
    std::printf("\nAdmission control (4 cores, overload at 2x capacity, "
                "shed vs queue)\n");
    std::printf("  %9s %7s %6s %9s %9s %9s\n", "cap/shard", "served",
                "shed", "thru r/s", "p99 us", "maxdepth");
    for (std::size_t cap : {std::size_t{0}, std::size_t{64},
                            std::size_t{8}}) {
        auto cfg = baseConfig(4, Scheme::HfiNative);
        cfg.meanInterarrivalNs = 10'000.0; // ~2x a 4-core capacity
        cfg.queueCapacity = cap;
        const auto res =
            ServeEngine(cfg, handlerWithOps(250'000)).run();
        std::printf("  %9zu %7zu %6zu %9.0f %9.1f %9zu\n", cap,
                    res.served, res.shed, res.throughputRps,
                    res.latency.p99 / 1e3, res.maxQueueDepth);
    }
    std::printf("  (cap 0 = unbounded: nothing sheds, the tail absorbs "
                "the whole backlog)\n");
}

/**
 * --threads mode: run each core count threaded (one host std::thread
 * per simulated core) and sequentially, both with stealing off so the
 * shards decompose, and require the results to be bit-identical —
 * every merged statistic and every per-request latency sample. Exits
 * nonzero on the first mismatch (CI gates on this).
 */
int
threadedEquivalenceGate()
{
    std::printf("Threaded-vs-sequential equivalence gate (open loop, "
                "round robin, no stealing)\n");
    std::printf("  %5s %7s %9s %9s %7s %10s\n", "cores", "served",
                "thru r/s", "p99 us", "threads", "identical");
    int failures = 0;
    for (unsigned workers : {2u, 4u, 8u}) {
        auto cfg = baseConfig(workers, Scheme::HfiNative);
        cfg.workStealing = false;
        cfg.queueCapacity = 64; // exercise shedding under decomposition
        cfg.realThreads = true;
        const auto threaded =
            ServeEngine(cfg, handlerWithOps(250'000)).run();
        cfg.realThreads = false;
        const auto sequential =
            ServeEngine(cfg, handlerWithOps(250'000)).run();

        bool same = threaded.usedThreads == workers &&
                    sequential.usedThreads == 1 &&
                    threaded.served == sequential.served &&
                    threaded.shed == sequential.shed &&
                    threaded.rejected == sequential.rejected &&
                    threaded.maxQueueDepth == sequential.maxQueueDepth &&
                    threaded.contextSwitches == sequential.contextSwitches &&
                    threaded.preemptions == sequential.preemptions &&
                    threaded.durationNs == sequential.durationNs &&
                    threaded.throughputRps == sequential.throughputRps &&
                    threaded.meanLatencyNs == sequential.meanLatencyNs &&
                    threaded.latency.p50 == sequential.latency.p50 &&
                    threaded.latency.p99 == sequential.latency.p99 &&
                    threaded.latency.p999 == sequential.latency.p999 &&
                    threaded.latencies.values() ==
                        sequential.latencies.values();
        if (!same)
            ++failures;
        std::printf("  %5u %7zu %9.0f %9.1f %7u %10s\n", workers,
                    threaded.served, threaded.throughputRps,
                    threaded.latency.p99 / 1e3, threaded.usedThreads,
                    same ? "yes" : "NO");
    }
    if (failures)
        std::printf("FAIL: %d core count(s) diverged between threaded "
                    "and sequential runs\n", failures);
    else
        std::printf("OK: threaded runs are bit-identical to the "
                    "sequential event loop\n");
    return failures ? 1 : 0;
}

/**
 * --trace [path]: run the seeded 4-core configuration with the event
 * tracer attached and emit a Chrome/Perfetto trace-event JSON (one
 * track per core, virtual-ns timebase). Load the file at
 * https://ui.perfetto.dev or chrome://tracing. The run is the same
 * threadable configuration the determinism tests pin, so the trace is
 * bit-identical across invocations.
 */
int
emitTrace(const char *path)
{
    auto cfg = baseConfig(4, Scheme::HfiNative);
    cfg.workStealing = false;
    cfg.queueCapacity = 64;
    obs::TraceConfig tc;
    tc.capacityPerCore = 16384;   // hold the full 1600-request run
    tc.categories = obs::kCatAll; // include the verbose hfi transitions
    obs::Trace trace(cfg.workers, tc);
    cfg.trace = &trace;
    const auto res = ServeEngine(cfg, handlerWithOps(250'000)).run();

    const std::string json = trace.chromeTraceJson();
    FILE *f = std::fopen(path, "w");
    if (!f) {
        std::perror(path);
        return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);

    std::size_t events = 0;
    std::uint64_t dropped = 0;
    for (unsigned c = 0; c < trace.cores(); ++c) {
        events += trace.buffer(c).size();
        dropped += trace.buffer(c).dropped();
    }
    std::printf("served %zu requests on %u cores; wrote %s "
                "(%zu events, %llu dropped)\n",
                res.served, cfg.workers, path, events,
                static_cast<unsigned long long>(dropped));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--threads") == 0)
        return threadedEquivalenceGate();
    if (argc > 1 && std::strcmp(argv[1], "--trace") == 0)
        return emitTrace(argc > 2 ? argv[2] : "serve_scaling.trace.json");

    std::printf("Serving-engine scaling: open-loop Poisson load, "
                "per-core HFI contexts,\n1600 requests, ~80 us "
                "handlers, 50 us preemption quantum\n");
    for (Scheme scheme : {Scheme::Unsafe, Scheme::HfiNative,
                          Scheme::HfiSwitchOnExit, Scheme::Swivel})
        sweepScheme(scheme, 250'000);
    crossoverAtEightCores();
    admissionControlDemo();
    return 0;
}
