/**
 * @file
 * Tracing-overhead gate: the same seeded 4-core serving run with the
 * event tracer attached and detached, timed on the host clock.
 *
 * Two claims the observability layer makes, both checked here:
 *
 *  1. *Zero observable effect.* Tracing must not perturb the simulation:
 *     every merged statistic and every per-request latency sample must
 *     be bit-identical with the tracer on and off (recording only reads
 *     virtual time, never advances it). Any divergence fails the bench.
 *  2. *Bounded cost.* With HFI_OBS compiled in and a trace attached,
 *     the median host wall time may exceed the untraced median by at
 *     most 5%. Recording is a branch, a few stores and a wrapping
 *     increment per event; the gate keeps it that way.
 *
 * Measurement design, because the bound is smaller than the run-to-run
 * noise of a busy host: runs are grouped into A/B/B/A blocks (traced,
 * untraced, untraced, traced). Within a block, any drift that is
 * linear in time — frequency ramps, thermal throttling, a neighbor
 * spinning up — contributes equally to both variants and cancels in
 * the block's ratio. The gate then takes the median over block ratios,
 * which trims blocks that caught a descheduling spike.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "obs/trace.h"
#include "serve/engine.h"

namespace
{

using namespace hfi;
using namespace hfi::serve;
using Clock = std::chrono::steady_clock;

/** ~76 us of handler work: stores plus metered compute. */
Handler
handlerWithOps(std::uint64_t ops)
{
    return [ops](sfi::Sandbox &s, std::uint32_t seed) {
        for (int i = 0; i < 64; ++i)
            s.store<std::uint32_t>(64 + (i % 64) * 4, seed + i);
        s.chargeOps(ops);
    };
}

/** The serve_faults fault-free cell (4 cores, warm pools, threadable),
    at 4x the request count: ~6 ms of host work per run, so scheduler
    noise is small against the cost being measured. */
EngineConfig
config()
{
    EngineConfig ec;
    ec.workers = 4;
    ec.mode = LoadMode::OpenLoop;
    ec.requests = 6400;
    ec.meanInterarrivalNs = 40'000.0;
    ec.seed = 2026;
    ec.queueCapacity = 128;
    ec.workStealing = false;
    ec.worker.scheme = Scheme::HfiNative;
    ec.worker.quantumNs = 50'000.0;
    ec.worker.teardownBatch = 32;
    ec.worker.poolSize = 4;
    return ec;
}

struct Timed
{
    ServeResult res;
    double hostNs = 0;
};

Timed
runOnce(obs::Trace *trace)
{
    auto cfg = config();
    cfg.trace = trace;
    ServeEngine engine(cfg, handlerWithOps(250'000));
    const auto start = Clock::now();
    Timed t;
    t.res = engine.run();
    t.hostNs =
        std::chrono::duration<double, std::nano>(Clock::now() - start)
            .count();
    return t;
}

double
median(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

bool
identical(const ServeResult &a, const ServeResult &b)
{
    return a.served == b.served && a.shed == b.shed &&
           a.rejected == b.rejected &&
           a.maxQueueDepth == b.maxQueueDepth &&
           a.contextSwitches == b.contextSwitches &&
           a.preemptions == b.preemptions &&
           a.instancesCreated == b.instancesCreated &&
           a.durationNs == b.durationNs &&
           a.throughputRps == b.throughputRps &&
           a.meanLatencyNs == b.meanLatencyNs &&
           a.latency.p50 == b.latency.p50 &&
           a.latency.p99 == b.latency.p99 &&
           a.latencies.values() == b.latencies.values();
}

} // namespace

int
main()
{
    constexpr int kBlocks = 13; // A/B/B/A blocks; 2 runs per variant each
    constexpr double kMaxOverhead = 0.05;

    std::printf("Trace-overhead gate: seeded 4-core serve run, tracer "
                "attached vs detached,\n%d traced/untraced/untraced/traced "
                "blocks, median block ratio (bound: %.0f%%)\n",
                kBlocks, kMaxOverhead * 100.0);
#if !HFI_OBS_ENABLED
    std::printf("(built with HFI_OBS=OFF: record sites are compiled "
                "out; the bound is trivial)\n");
#endif

    // Warm both paths (page faults, allocator) before timing.
    const ServeResult baselineRes = runOnce(nullptr).res;
    {
        obs::Trace warm(config().workers);
        runOnce(&warm);
    }

    std::vector<double> ratios, untracedNs, tracedNs;
    std::size_t events = 0;
    bool resultsMatch = true;
    for (int i = 0; i < kBlocks; ++i) {
        obs::Trace trace(config().workers);
        const Timed t1 = runOnce(&trace);
        const Timed u1 = runOnce(nullptr);
        const Timed u2 = runOnce(nullptr);
        const Timed t2 = runOnce(&trace);
        ratios.push_back((t1.hostNs + t2.hostNs) /
                         (u1.hostNs + u2.hostNs));
        tracedNs.insert(tracedNs.end(), {t1.hostNs, t2.hostNs});
        untracedNs.insert(untracedNs.end(), {u1.hostNs, u2.hostNs});
        resultsMatch = resultsMatch && identical(t1.res, baselineRes) &&
                       identical(t2.res, baselineRes) &&
                       identical(u1.res, baselineRes) &&
                       identical(u2.res, baselineRes);
        events = 0;
        for (unsigned c = 0; c < trace.cores(); ++c)
            events += trace.buffer(c).size();
    }

    const double overhead = median(ratios) - 1.0;
    std::printf("  untraced median %10.0f ns\n", median(untracedNs));
    std::printf("  traced   median %10.0f ns  (%zu events/run "
                "retained)\n",
                median(tracedNs), events);
    std::printf("  overhead %+.2f%% (median of %d block ratios)\n",
                overhead * 100.0, kBlocks);

    if (!resultsMatch) {
        std::printf("FAIL: tracing perturbed the simulation (results "
                    "differ traced vs untraced)\n");
        return 1;
    }
    if (overhead > kMaxOverhead) {
        std::printf("FAIL: tracing overhead %.2f%% exceeds the %.0f%% "
                    "bound\n",
                    overhead * 100.0, kMaxOverhead * 100.0);
        return 1;
    }
    std::printf("OK: results bit-identical, overhead within bound\n");
    return 0;
}
