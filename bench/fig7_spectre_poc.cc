/**
 * @file
 * Figure 7 / §5.3: access latencies in the SafeSide Spectre-PHT PoC.
 *
 * "Without HFI, we see a clear signal (low access latency),
 *  corresponding to accessing the first byte of the secret (the letter
 *  'I') in the SafeSide PoC. In contrast, with HFI, we don't see access
 *  latencies that is below the measured threshold of the Spectre
 *  attack."
 *
 * Prints the flush+reload latency for every byte guess, for the
 * unprotected and the HFI-protected victim, plus the Spectre-BTB
 * variant (concrete control flow per the paper's footnote 7).
 */

#include <cstdio>

#include "spectre/attacker.h"

namespace
{

using namespace hfi::spectre;

void
report(const char *label, Variant variant, bool with_hfi,
       std::uint8_t secret)
{
    const auto result = runAttack(variant, with_hfi, secret);
    std::printf("\n%s (secret byte '%c' = %u, hit/miss threshold %u "
                "cycles)\n",
                label, secret >= 32 && secret < 127 ? secret : '?', secret,
                result.threshold);

    // The Fig 7 series: latency per guess. Print the interesting
    // neighbourhood plus any hot guesses.
    std::printf("  guesses below threshold:");
    unsigned hot = 0;
    for (unsigned g = 0; g < 256; ++g) {
        if (result.probeLatency[g] < result.threshold) {
            std::printf(" %u(%uc)", g, result.probeLatency[g]);
            ++hot;
        }
    }
    if (!hot)
        std::printf(" none");
    std::printf("\n  latency[secret]=%u cycles -> %s\n",
                result.probeLatency[secret],
                result.secretLeaked ? "SECRET RECOVERED"
                                    : "no signal (attack defeated)");
    std::printf("  pipeline: %lu cycles, %lu squashed wrong-path "
                "instructions, %lu suppressed HFI faults\n",
                static_cast<unsigned long>(result.pipeline.cycles),
                static_cast<unsigned long>(result.stats.squashed),
                static_cast<unsigned long>(
                    result.stats.hfiFaultsSuppressed));
}

} // namespace

int
main()
{
    std::printf("Figure 7: Spectre PoC access latencies "
                "(flush+reload over the 256-entry probe array)\n");

    report("Spectre-PHT, no HFI", Variant::Pht, false, 'I');
    report("Spectre-PHT, HFI regions protect the secret", Variant::Pht,
           true, 'I');
    report("Spectre-BTB (concrete control flow), no HFI", Variant::Btb,
           false, 'S');
    report("Spectre-BTB, HFI", Variant::Btb, true, 'S');

    // §3.4's exit-bypass attack across the three exit postures.
    std::printf("\nSpeculative hfi_exit bypass (§3.4):\n");
    for (auto posture :
         {ExitPosture::Unserialized, ExitPosture::Serialized,
          ExitPosture::SwitchOnExit}) {
        const auto result = runExitBypassAttack(posture, 'X');
        std::printf("  %-14s -> %s (cycles %lu)\n",
                    exitPostureName(posture),
                    result.secretLeaked ? "SECRET RECOVERED"
                                        : "blocked",
                    static_cast<unsigned long>(result.pipeline.cycles));
    }

    // CSV dump of the full PHT series for plotting (the actual Fig 7).
    std::printf("\nguess,latency_no_hfi,latency_hfi\n");
    const auto open_run = runAttack(Variant::Pht, false, 'I');
    const auto protected_run = runAttack(Variant::Pht, true, 'I');
    for (unsigned g = 0; g < 256; ++g) {
        std::printf("%u,%u,%u\n", g, open_run.probeLatency[g],
                    protected_run.probeLatency[g]);
    }
    return 0;
}
