#!/usr/bin/env python3
"""Compare a freshly measured BENCH_sim_throughput.json to the baseline.

Usage: check_bench_regression.py BASELINE.json FRESH.json

Fails (exit 1) when a geomean throughput in FRESH drops more than
MAX_REGRESSION below BASELINE. The threshold is deliberately wide — 25%
— because both files are measured on whatever host happens to run them:
shared CI runners show double-digit run-to-run variance, and the gate
exists to catch algorithmic regressions (which show up as 2x-10x drops),
not to police single-digit noise. Improvements never fail; they just
mean the committed baseline is stale and worth refreshing.
"""

import json
import sys

MAX_REGRESSION = 0.25  # host-noise band; see module docstring

KEYS = ["functional_geomean_ips", "pipeline_geomean_ips"]

# Layout version every emitter stamps via obs::JsonWriter. A fresh file
# without it (or with a different one) means the bench and this gate
# have drifted apart — fail loudly rather than comparing blind.
EXPECTED_SCHEMA_VERSION = 2


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        baseline = json.load(f)
    with open(sys.argv[2]) as f:
        fresh = json.load(f)

    failed = False
    schema = fresh.get("schema_version")
    if schema != EXPECTED_SCHEMA_VERSION:
        print(
            f"schema_version: expected {EXPECTED_SCHEMA_VERSION}, "
            f"fresh file has {schema!r} FAIL"
        )
        failed = True
    else:
        print(f"schema_version: {schema} OK")
    for key in KEYS:
        base = baseline.get(key)
        now = fresh.get(key)
        if not base or not now:
            # A baseline from before the metric existed can't gate it.
            print(f"{key}: missing ({base!r} -> {now!r}), skipping")
            continue
        ratio = now / base
        status = "OK"
        if ratio < 1.0 - MAX_REGRESSION:
            status = "REGRESSION"
            failed = True
        print(f"{key}: {base:.3e} -> {now:.3e} ({ratio:.2f}x) {status}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
