#!/usr/bin/env sh
# Run every benchmark binary in a build tree's bench/ directory and
# print the total wall time. Used by the `bench_all` CMake target:
#
#   cmake --build build --target bench_all
#
# Usage: bench_all.sh BENCH_DIR [args passed to every bench...]
set -eu

bench_dir="${1:?usage: bench_all.sh BENCH_DIR}"
shift || true

start=$(date +%s)
count=0
for bench in "$bench_dir"/*; do
    [ -f "$bench" ] && [ -x "$bench" ] || continue
    echo "==> $(basename "$bench")"
    "$bench" "$@"
    count=$((count + 1))
done
end=$(date +%s)

echo ""
echo "bench_all: ran $count benchmarks in $((end - start)) s total"
