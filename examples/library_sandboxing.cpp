/**
 * @file
 * Library sandboxing, Firefox-style (§6.2): run an untrusted image
 * decoder inside a sandbox so a malicious file cannot corrupt the host.
 *
 * Shows the three isolation backends side by side on the same decode,
 * then feeds the sandbox a truncated/corrupted bitstream and
 * demonstrates the difference between precise traps (guard pages,
 * bounds checks, HFI) and silent wrapping (classic masking SFI).
 *
 * Build & run:  ./build/examples/library_sandboxing
 */

#include <cstdio>

#include "sfi/runtime.h"
#include "workloads/image.h"

using namespace hfi;

namespace
{

std::unique_ptr<sfi::Sandbox>
makeSandbox(vm::Mmu &mmu, core::HfiContext &ctx, sfi::BackendKind kind)
{
    sfi::RuntimeConfig config;
    config.backend = kind;
    sfi::Runtime runtime(mmu, ctx, config);
    return runtime.createSandbox({8, 1024});
}

} // namespace

int
main()
{
    // The "image from the network".
    const auto pixels = workloads::image::makeTestImage(320, 200, 7);
    const auto img = workloads::image::encode(
        pixels, 320, 200, workloads::image::Quality::Default);
    std::printf("Encoded test image: %ux%u, %zu bitstream bytes\n",
                img.width, img.height, img.bits.size());

    std::printf("\nDecoding under each isolation backend:\n");
    for (auto kind :
         {sfi::BackendKind::GuardPages, sfi::BackendKind::BoundsCheck,
          sfi::BackendKind::Hfi}) {
        vm::VirtualClock clock;
        vm::Mmu mmu(clock);
        core::HfiContext ctx(clock);
        auto sandbox = makeSandbox(mmu, ctx, kind);
        std::uint64_t checksum = 0;
        const double t0 = clock.nowNs();
        const bool ok = sandbox->invoke([&](sfi::Sandbox &s) {
            checksum = workloads::image::decodeSandboxed(s, img);
        });
        std::printf("  %-13s ok=%d checksum=%016lx virtual time "
                    "%7.2f ms (loads=%lu stores=%lu)\n",
                    sfi::backendKindName(kind), ok,
                    static_cast<unsigned long>(checksum),
                    (clock.nowNs() - t0) / 1e6,
                    static_cast<unsigned long>(sandbox->stats().loads),
                    static_cast<unsigned long>(sandbox->stats().stores));
    }

    std::printf("\nNow a malicious decoder run (it scribbles past its "
                "heap):\n");
    for (auto kind : {sfi::BackendKind::Hfi, sfi::BackendKind::Mask}) {
        vm::VirtualClock clock;
        vm::Mmu mmu(clock);
        core::HfiContext ctx(clock);
        auto sandbox = makeSandbox(mmu, ctx, kind);
        // Plant a sentinel the wrap would corrupt.
        sandbox->store<std::uint64_t>(64, 0xfeedfacecafebeefULL);
        const bool ok = sandbox->invoke([&](sfi::Sandbox &s) {
            // "Compromised" decoder: writes far out of bounds.
            for (std::uint64_t off = 0; off < 4; ++off) {
                s.store<std::uint64_t>((600ULL << 20) + off * 8 + 64,
                                       0x4141414141414141ULL);
            }
        });
        const std::uint64_t sentinel = sandbox->load<std::uint64_t>(64);
        std::printf("  %-13s attack contained=%s, sentinel %s "
                    "(wrapped accesses: %lu)\n",
                    sfi::backendKindName(kind),
                    ok ? "NO (ran to completion)" : "yes (trapped)",
                    sentinel == 0xfeedfacecafebeefULL ? "intact"
                                                      : "CORRUPTED",
                    static_cast<unsigned long>(
                        sandbox->stats().wrappedAccesses));
    }
    std::printf("\nPrecise traps are why the paper rules out masking for "
                "Wasm (§2) — and why HFI's\nhmov keeps trap semantics "
                "while costing nothing per access.\n");
    return 0;
}
