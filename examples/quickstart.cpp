/**
 * @file
 * Quickstart: the HFI core API in one sitting.
 *
 * Walks through the paper's §3 interface end to end:
 *  1. configure region registers (implicit + explicit),
 *  2. enter a sandbox (hybrid and native flavours),
 *  3. perform checked memory accesses through the AccessChecker,
 *  4. observe traps and read the exit-reason MSR,
 *  5. interpose on a system call from a native sandbox.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "core/checker.h"
#include "core/context.h"

using namespace hfi;

int
main()
{
    // Every core has a virtual clock (cycle counter) and an HFI context
    // (the new architectural registers of §4).
    vm::VirtualClock clock;
    core::HfiContext ctx(clock);

    std::printf("== 1. Program the region registers ==\n");

    // An explicit "large" region: the sandbox's heap. hmov0 accesses it
    // relative to its base, so the sandbox never sees raw pointers.
    core::ExplicitDataRegion heap;
    heap.baseAddress = 0x10000000;
    heap.bound = 1 << 20; // 1 MiB, a multiple of 64 KiB
    heap.permRead = true;
    heap.permWrite = true;
    heap.isLargeRegion = true;
    ctx.setRegion(core::kFirstExplicitRegion, heap);

    // An implicit data region: a shared read-only configuration page.
    core::ImplicitDataRegion shared;
    shared.basePrefix = 0x20000000;
    shared.lsbMask = 0xfff; // one 4 KiB page
    shared.permRead = true;
    ctx.setRegion(core::kFirstImplicitDataRegion, shared);

    // A code region so instruction fetch is legal inside the sandbox.
    core::ImplicitCodeRegion code;
    code.basePrefix = 0x400000;
    code.lsbMask = 0xffff;
    code.permExec = true;
    ctx.setRegion(0, code);
    std::printf("   heap, shared page, and code regions configured\n");

    std::printf("\n== 2. Enter a hybrid sandbox (Wasm-style) ==\n");
    core::SandboxConfig cfg;
    cfg.isHybrid = true;      // trusted compiler: syscalls allowed
    cfg.isSerialized = true;  // Spectre-protect the transition (§3.4)
    ctx.enter(cfg);
    std::printf("   hfi_enter done, sandboxed=%d, cost so far: %lu "
                "cycles\n",
                ctx.enabled(), static_cast<unsigned long>(clock.now()));

    std::printf("\n== 3. Checked accesses ==\n");
    // hmov0[0x100], 8 bytes: inside the heap region.
    core::HmovOperands ops;
    ops.index = 0x100;
    ops.width = 8;
    auto ok = core::AccessChecker::checkHmov(ctx, 0, ops, true);
    std::printf("   hmov0 store at offset 0x100: %s (absolute address "
                "0x%lx)\n",
                ok.ok ? "allowed" : "trapped",
                static_cast<unsigned long>(ok.address));

    // An implicit access to the shared page: reads pass, writes trap.
    auto rd = core::AccessChecker::checkData(ctx, 0x20000010, 4, false);
    auto wr = core::AccessChecker::checkData(ctx, 0x20000010, 4, true);
    std::printf("   shared page read: %s, write: %s (%s)\n",
                rd.ok ? "allowed" : "trapped",
                wr.ok ? "allowed" : "trapped",
                core::toString(wr.reason));

    std::printf("\n== 4. Traps ==\n");
    ops.index = 2 << 20; // past the heap bound
    auto oob = core::AccessChecker::checkHmov(ctx, 0, ops, false);
    std::printf("   hmov0 load past the bound: trapped=%d (%s)\n", !oob.ok,
                core::toString(oob.reason));
    ctx.onFault(oob.reason); // hardware delivers SIGSEGV to the runtime
    std::printf("   MSR after fault: %s; sandboxed=%d\n",
                core::toString(ctx.readExitReasonMsr()),
                ctx.enabled());

    std::printf("\n== 5. Native sandbox + syscall interposition ==\n");
    cfg.isHybrid = false;             // untrusted machine code
    cfg.exitHandler = 0x7fff0000;     // our runtime's exit handler
    ctx.enter(cfg);
    // The sandboxed binary executes `syscall` — HFI converts it into a
    // jump to the exit handler (§4.4).
    auto handler = ctx.onSyscall();
    std::printf("   syscall redirected to handler 0x%lx, reason: %s\n",
                static_cast<unsigned long>(handler.value_or(0)),
                core::toString(ctx.readExitReasonMsr()));
    ctx.reenter();
    std::printf("   hfi_reenter: back in the sandbox (sandboxed=%d)\n",
                ctx.enabled());
    ctx.exit();

    std::printf("\nTotal virtual time: %lu cycles (%.1f ns at 3.3 GHz)\n",
                static_cast<unsigned long>(clock.now()), clock.nowNs());
    return 0;
}
