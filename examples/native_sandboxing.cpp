/**
 * @file
 * Native-binary sandboxing (§6.4): protect OpenSSL session keys inside
 * NGINX with HFI's native sandbox — no recompilation — and interpose on
 * the sandboxed code's system calls.
 *
 * Contrasts the three Fig 5 configurations and the two §6.4.1
 * interposition mechanisms on live traffic.
 *
 * Build & run:  ./build/examples/native_sandboxing
 */

#include <cstdio>

#include "nginx/server.h"
#include "syscall/interposer.h"

using namespace hfi;

int
main()
{
    std::printf("== Serving 200 requests for a 32 KiB file under each "
                "session-key protection ==\n");
    double unsafe_rps = 0;
    for (auto protection :
         {nginx::SessionProtection::None, nginx::SessionProtection::Mpk,
          nginx::SessionProtection::Hfi}) {
        vm::VirtualClock clock;
        vm::Mmu mmu(clock);
        core::HfiContext ctx(clock);
        mpk::MpkDomainManager mpk_mgr(mmu);
        syscall::MiniKernel kernel(clock);
        nginx::ServerConfig config;
        config.protection = protection;
        nginx::NginxServer server(mmu, ctx, mpk_mgr, kernel, config);
        server.addFile("/asset.bin", 32 * 1024, 3);

        const auto stats = server.serve("/asset.bin", 200);
        const double rps = stats.throughputRps();
        if (protection == nginx::SessionProtection::None)
            unsafe_rps = rps;
        std::printf("  %-7s %8.0f req/s  (%5.2f%% overhead)  ciphertext "
                    "checksum %016lx\n",
                    nginx::sessionProtectionName(protection), rps,
                    unsafe_rps > 0 ? (unsafe_rps / rps - 1.0) * 100.0 : 0.0,
                    static_cast<unsigned long>(server.ciphertextChecksum()));
    }
    std::printf("  A Heartbleed-style over-read of the key page now "
                "faults instead of leaking.\n");

    std::printf("\n== Syscall interposition from the native sandbox "
                "(open/read/close x 20000) ==\n");
    for (int use_seccomp = 0; use_seccomp < 2; ++use_seccomp) {
        vm::VirtualClock clock;
        core::HfiContext ctx(clock);
        syscall::MiniKernel kernel(clock);
        kernel.addFile("/etc/app.conf", 16 * 1024, 5);

        core::SandboxConfig cfg;
        cfg.isHybrid = false;
        cfg.exitHandler = 0x7000'0000;
        ctx.enter(cfg);
        syscall::HfiInterposer hfi_path(
            ctx, {syscall::kSysOpen, syscall::kSysRead, syscall::kSysClose});
        syscall::SeccompInterposer seccomp_path(
            clock,
            {syscall::kSysOpen, syscall::kSysRead, syscall::kSysClose});

        std::vector<std::uint8_t> buf(16 * 1024);
        const double t0 = clock.nowNs();
        for (int i = 0; i < 20000; ++i) {
            syscall::SeccompData data;
            for (std::uint32_t nr : {syscall::kSysOpen, syscall::kSysRead,
                                     syscall::kSysClose}) {
                data.nr = nr;
                if (use_seccomp)
                    seccomp_path.onSyscall(data);
                else
                    hfi_path.onSyscall(data);
            }
            const int fd = kernel.open("/etc/app.conf");
            kernel.read(fd, buf.data(), buf.size());
            kernel.close(fd);
        }
        std::printf("  %-12s %.3f virtual ms\n",
                    use_seccomp ? "seccomp-bpf:" : "HFI redirect:",
                    (clock.nowNs() - t0) / 1e6);
    }

    std::printf("\nBlocked syscall demo: the sandbox tries mmap, the "
                "policy denies it:\n");
    {
        vm::VirtualClock clock;
        core::HfiContext ctx(clock);
        core::SandboxConfig cfg;
        cfg.isHybrid = false;
        cfg.exitHandler = 0x7000'0000;
        ctx.enter(cfg);
        syscall::HfiInterposer interposer(
            ctx, {syscall::kSysRead, syscall::kSysWrite});
        syscall::SeccompData data;
        data.nr = syscall::kSysMmap;
        const auto verdict = interposer.onSyscall(data);
        std::printf("  mmap from the sandbox: %s\n",
                    verdict == syscall::Verdict::Deny ? "DENIED" : "allowed");
    }
    return 0;
}
