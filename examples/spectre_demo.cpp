/**
 * @file
 * The Spectre story of §3.4/§5.3 as a demo: run the SafeSide-style
 * Spectre-PHT attack on the cycle-level core and watch the cache
 * side channel recover a secret string byte by byte — then turn on
 * HFI's regions and watch the channel go dark.
 *
 * Build & run:  ./build/examples/spectre_demo
 */

#include <cstdio>
#include <string>

#include "spectre/attacker.h"

using namespace hfi::spectre;

namespace
{

std::string
stealString(const std::string &secret, bool with_hfi)
{
    std::string recovered;
    for (char c : secret) {
        const auto result = runAttack(
            Variant::Pht, with_hfi, static_cast<std::uint8_t>(c));
        if (result.secretLeaked &&
            result.hottestGuess == static_cast<std::uint8_t>(c)) {
            recovered += static_cast<char>(result.hottestGuess);
        } else {
            recovered += '.';
        }
    }
    return recovered;
}

} // namespace

int
main()
{
    const std::string secret = "It's a TRAP!";

    std::printf("Victim holds the secret: \"%s\"\n\n", secret.c_str());

    std::printf("1) Unprotected victim (no HFI):\n");
    const std::string stolen = stealString(secret, false);
    std::printf("   attacker recovered:  \"%s\"\n\n", stolen.c_str());

    std::printf("2) Victim protected by HFI regions (the secret's page "
                "is a no-permission region):\n");
    const std::string blocked = stealString(secret, true);
    std::printf("   attacker recovered:  \"%s\"\n\n", blocked.c_str());

    // Show the Fig 7 signal for one byte.
    const auto open_run = runAttack(Variant::Pht, false, 'I');
    const auto protected_run = runAttack(Variant::Pht, true, 'I');
    std::printf("Flush+reload latencies around the secret byte 'I' (%u):\n",
                'I');
    std::printf("   guess:        ");
    for (int g = 'I' - 3; g <= 'I' + 3; ++g)
        std::printf("%5d", g);
    std::printf("\n   no HFI:       ");
    for (int g = 'I' - 3; g <= 'I' + 3; ++g)
        std::printf("%5u", open_run.probeLatency[g]);
    std::printf("\n   with HFI:     ");
    for (int g = 'I' - 3; g <= 'I' + 3; ++g)
        std::printf("%5u", protected_run.probeLatency[g]);
    std::printf("\n   (hit/miss threshold: %u cycles)\n",
                open_run.threshold);

    std::printf("\nWhy it works: the speculatively faulting load becomes "
                "a faulting NOP before the\ndata cache can fill (§4.1), "
                "so no secret-dependent line ever lands in the cache.\n");
    return stolen == secret && blocked != secret ? 0 : 1;
}
