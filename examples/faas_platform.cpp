/**
 * @file
 * A multi-tenant FaaS platform (§3.3's motivating example, §6.3): one
 * process hosts many tenant sandboxes; each request instantiates a
 * tenant, runs its handler with Spectre-protected HFI transitions, and
 * instances are reclaimed with HFI's batched teardown.
 *
 * Build & run:  ./build/examples/faas_platform
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "faas/latency.h"
#include "sfi/runtime.h"
#include "workloads/faas_workloads.h"

using namespace hfi;

int
main()
{
    vm::VirtualClock clock;
    vm::Mmu mmu(clock, 48);
    core::HfiContext ctx(clock);

    sfi::RuntimeConfig config;
    config.backend = sfi::BackendKind::Hfi; // guard pages elided
    config.hfi.serialized = true;           // Spectre-safe transitions
    sfi::Runtime runtime(mmu, ctx, config);

    std::printf("Tenant capacity in this process (1 MiB instances): "
                "%lu; with guard pages it would be %lu\n",
                static_cast<unsigned long>(
                    runtime.addressSpaceCapacity(1 << 20)),
                static_cast<unsigned long>((mmu.addressSpace().usableBytes()) /
                                           ((4ULL << 30) + (1 << 20))));

    // Serve a burst of requests: each one spins up a tenant instance,
    // transcodes an XML order document to JSON, and finishes.
    constexpr int kRequests = 256;
    faas::LatencyRecorder latencies;
    std::vector<std::unique_ptr<sfi::Sandbox>> spent;
    std::vector<sfi::Sandbox *> raw;

    const double start = clock.nowNs();
    for (int r = 0; r < kRequests; ++r) {
        const double t0 = clock.nowNs();
        auto instance = runtime.createSandbox({1, 16});
        if (!instance) {
            std::printf("address space exhausted!\n");
            return 1;
        }
        const std::string xml = workloads::faas::makeXmlDocument(
            40, static_cast<std::uint32_t>(r));
        instance->memory().writeBytes(64, xml.data(), xml.size());
        instance->invoke([&](sfi::Sandbox &s) {
            workloads::faas::xmlToJson(s, 64, xml.size());
        });
        latencies.add(clock.nowNs() - t0);

        // Spent instances are reclaimed in batches: HFI's guard-free
        // layout makes one madvise cover a whole run of heaps (§6.3.1).
        raw.push_back(instance.get());
        spent.push_back(std::move(instance));
        if (raw.size() == 64) {
            runtime.reclaim(raw, sfi::ReclaimPolicy::Batched, 64);
            raw.clear();
            spent.clear();
        }
    }
    const double total = clock.nowNs() - start;

    std::printf("\nServed %d requests in %.2f virtual ms "
                "(%.0f requests/second)\n",
                kRequests, total / 1e6, kRequests * 1e9 / total);
    std::printf("  per-request latency: mean %.1f us, p50 %.1f us, "
                "p99 %.1f us\n",
                latencies.mean() / 1e3, latencies.percentile(50) / 1e3,
                latencies.percentile(99) / 1e3);
    std::printf("  madvise syscalls for teardown: %lu (batched; stock "
                "would be %d)\n",
                static_cast<unsigned long>(mmu.stats().madviseCalls),
                kRequests);
    std::printf("  HFI transitions: %lu enters, %lu serializations\n",
                static_cast<unsigned long>(ctx.stats().enters),
                static_cast<unsigned long>(ctx.stats().serializations));
    return 0;
}
