/**
 * @file
 * Differential fuzzing of the out-of-order pipeline against the
 * in-order functional executor: randomly generated programs (seeded,
 * reproducible) must produce bit-identical architectural state on both.
 *
 * This is the property that keeps the timing model honest: branch
 * prediction, speculative execution, squash/recovery, store-to-load
 * forwarding, and HFI state snapshots may change *when* things happen,
 * never *what* happens.
 */

#include <gtest/gtest.h>

#include "sim/pipeline.h"

namespace
{

using namespace hfi::sim;

/** xorshift64* for program generation. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state(seed * 2654435761u + 1) {}

    std::uint64_t
    next()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545f4914f6cdd1dULL;
    }

    std::uint64_t below(std::uint64_t n) { return next() % n; }

  private:
    std::uint64_t state;
};

constexpr std::uint64_t kDataBase = 0x100000;
constexpr std::uint64_t kDataBytes = 1 << 16;

/**
 * Generate a random but guaranteed-terminating program:
 *  - a chain of basic blocks, each with random ALU ops and
 *    window-constrained loads/stores;
 *  - random *forward* conditional branches (cannot loop);
 *  - a few bounded counted loops (fixed trip counts);
 *  - random call/ret pairs into tail helper functions.
 */
Program
generate(std::uint64_t seed, bool with_hfi)
{
    Rng rng(seed);
    ProgramBuilder b;

    // r12 is the data base; r13 masks offsets into the window.
    b.movi(12, static_cast<std::int64_t>(kDataBase));
    b.movi(13, kDataBytes - 8);
    for (unsigned r = 0; r < 10; ++r)
        b.movi(r, static_cast<std::int64_t>(rng.next() >> 8));

    if (with_hfi) {
        // Code + data regions covering exactly the program and window,
        // entered as an unserialized hybrid sandbox so speculation is
        // free to run wild — results must still match.
        b.movi(10, 0x400000);
        b.movi(11, 0xffff);
        b.hfiSetRegion(0, 10, 11, 4);
        b.movi(10, static_cast<std::int64_t>(kDataBase));
        b.movi(11, kDataBytes - 1);
        b.hfiSetRegion(2, 10, 11, 3);
        b.movi(kExitHandlerReg, 0);
        b.hfiEnter(true, false);
    }

    const unsigned blocks = 6 + static_cast<unsigned>(rng.below(6));
    for (unsigned block = 0; block < blocks; ++block) {
        const std::string label = "block" + std::to_string(block);
        b.label(label);

        const unsigned ops = 4 + static_cast<unsigned>(rng.below(10));
        for (unsigned i = 0; i < ops; ++i) {
            const unsigned rd = static_cast<unsigned>(rng.below(10));
            const unsigned ra = static_cast<unsigned>(rng.below(10));
            const unsigned rb = static_cast<unsigned>(rng.below(10));
            switch (rng.below(10)) {
              case 0: b.add(rd, ra, rb); break;
              case 1: b.sub(rd, ra, rb); break;
              case 2: b.mul(rd, ra, rb); break;
              case 3: b.xor_(rd, ra, rb); break;
              case 4: b.or_(rd, ra, rb); break;
              case 5:
                b.shli(rd, ra, static_cast<std::int64_t>(rng.below(31)));
                break;
              case 6:
                b.addi(rd, ra,
                       static_cast<std::int64_t>(rng.below(1 << 20)));
                break;
              case 7: { // masked load: r_rd = [base + (ra & mask)]
                b.and_(11, ra, 13);
                Inst load;
                load.op = Opcode::Load;
                load.rd = static_cast<std::uint8_t>(rd);
                load.ra = 12;
                load.rb = 11;
                load.useIndex = true;
                load.width = static_cast<std::uint8_t>(
                    1u << rng.below(4));
                load.length = defaultLength(load);
                b.emit(load);
                break;
              }
              case 8: { // masked store
                b.and_(11, ra, 13);
                Inst store;
                store.op = Opcode::Store;
                store.rd = static_cast<std::uint8_t>(rd);
                store.ra = 12;
                store.rb = 11;
                store.useIndex = true;
                store.width = static_cast<std::uint8_t>(
                    1u << rng.below(4));
                store.length = defaultLength(store);
                b.emit(store);
                break;
              }
              case 9: // data-dependent forward skip
                if (block + 1 < blocks) {
                    switch (rng.below(4)) {
                      case 0:
                        b.beq(ra, rb,
                              "block" + std::to_string(block + 1));
                        break;
                      case 1:
                        b.bne(ra, rb,
                              "block" + std::to_string(block + 1));
                        break;
                      case 2:
                        b.blt(ra, rb,
                              "block" + std::to_string(block + 1));
                        break;
                      default:
                        b.bge(ra, rb,
                              "block" + std::to_string(block + 1));
                        break;
                    }
                }
                break;
            }
        }

        // Occasionally a bounded counted loop over a mixing body.
        if (rng.below(3) == 0) {
            const std::string loop = "loop" + std::to_string(block);
            b.movi(10, static_cast<std::int64_t>(2 + rng.below(30)));
            b.label(loop);
            b.add(static_cast<unsigned>(rng.below(10)), 10,
                  static_cast<unsigned>(rng.below(10)));
            b.and_(11, 10, 13);
            Inst load;
            load.op = Opcode::Load;
            load.rd = static_cast<std::uint8_t>(rng.below(10));
            load.ra = 12;
            load.rb = 11;
            load.useIndex = true;
            load.width = 8;
            load.length = defaultLength(load);
            b.emit(load);
            b.subi(10, 10, 1);
            b.bne(10, 15, loop); // r15 is 0 in non-HFI runs... see below
        }
    }

    // Spill the final register state so memory comparison covers it.
    for (unsigned r = 0; r < 10; ++r)
        b.store(r, 12, static_cast<std::int64_t>(0x8000 + r * 8), 8);
    if (with_hfi)
        b.hfiExit();
    b.halt();
    return b.build();
}

/** Run @p prog both ways and compare all architectural outputs. */
void
compareRuns(std::uint64_t seed, bool with_hfi)
{
    const Program prog = generate(seed, with_hfi);

    SimMemory ref_mem;
    ArchState ref_state;
    ref_state.pc = prog.base();
    const std::uint64_t steps =
        FunctionalCore::run(prog, ref_state, ref_mem, 2'000'000);
    ASSERT_LT(steps, 2'000'000u) << "seed " << seed << " did not halt";

    Pipeline pipe(prog);
    const auto res = pipe.run(50'000'000);
    ASSERT_TRUE(res.halted || res.faulted) << "seed " << seed;

    for (unsigned r = 0; r < 10; ++r) {
        EXPECT_EQ(pipe.memory().read(kDataBase + 0x8000 + r * 8, 8),
                  ref_mem.read(kDataBase + 0x8000 + r * 8, 8))
            << "seed " << seed << " register r" << r;
    }
    // Compare the whole data window.
    for (std::uint64_t off = 0; off < kDataBytes; off += 8) {
        ASSERT_EQ(pipe.memory().read(kDataBase + off, 8),
                  ref_mem.read(kDataBase + off, 8))
            << "seed " << seed << " offset 0x" << std::hex << off;
    }
}

class PipelineFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PipelineFuzz, MatchesFunctionalExecutor)
{
    compareRuns(GetParam(), false);
}

TEST_P(PipelineFuzz, MatchesFunctionalExecutorUnderHfi)
{
    compareRuns(GetParam(), true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz,
                         ::testing::Range<std::uint64_t>(1, 25));

} // namespace
