/**
 * @file
 * Tests for the Runtime: backend factory, VA-adjacent instance layout,
 * the three §6.3.1 reclaim policies, and the §6.3.2 capacity math.
 */

#include <gtest/gtest.h>

#include "sfi/runtime.h"

namespace
{

using namespace hfi;
using namespace hfi::sfi;

class RuntimeTest : public ::testing::Test
{
  protected:
    Runtime
    makeRuntime(BackendKind kind)
    {
        RuntimeConfig config;
        config.backend = kind;
        return Runtime(mmu, ctx, config);
    }

    vm::VirtualClock clock;
    vm::Mmu mmu{clock};
    core::HfiContext ctx{clock};
};

TEST_F(RuntimeTest, FactoryProducesRequestedKind)
{
    for (BackendKind kind :
         {BackendKind::GuardPages, BackendKind::BoundsCheck,
          BackendKind::Mask, BackendKind::Hfi}) {
        auto runtime = makeRuntime(kind);
        auto backend = runtime.makeBackend();
        ASSERT_TRUE(backend);
        EXPECT_EQ(backend->kind(), kind);
    }
}

TEST_F(RuntimeTest, HfiInstancesArePackedAdjacently)
{
    // Guard elision means consecutive instances sit back to back —
    // the precondition for batched teardown (§5.1).
    auto runtime = makeRuntime(BackendKind::Hfi);
    auto a = runtime.createSandbox({1, 16});
    auto b = runtime.createSandbox({1, 16});
    ASSERT_TRUE(a && b);
    EXPECT_EQ(b->backend().baseAddress(),
              a->backend().baseAddress() + 16 * kWasmPageSize);
}

TEST_F(RuntimeTest, GuardInstancesAre8GiBApart)
{
    auto runtime = makeRuntime(BackendKind::GuardPages);
    auto a = runtime.createSandbox({1, 65536});
    auto b = runtime.createSandbox({1, 65536});
    ASSERT_TRUE(a && b);
    EXPECT_GE(b->backend().baseAddress() - a->backend().baseAddress(),
              8ULL << 30);
}

TEST_F(RuntimeTest, StockReclaimIsOneMadvisePerSandbox)
{
    auto runtime = makeRuntime(BackendKind::Hfi);
    std::vector<std::unique_ptr<Sandbox>> owned;
    std::vector<Sandbox *> raw;
    for (int i = 0; i < 8; ++i) {
        owned.push_back(runtime.createSandbox({1, 16}));
        ASSERT_TRUE(owned.back());
        owned.back()->store<std::uint64_t>(0, 1); // make a page resident
        raw.push_back(owned.back().get());
    }
    const auto calls0 = mmu.stats().madviseCalls;
    runtime.reclaim(raw, ReclaimPolicy::Stock);
    EXPECT_EQ(mmu.stats().madviseCalls, calls0 + 8);
    EXPECT_GE(mmu.stats().pagesDiscarded, 8u);
}

TEST_F(RuntimeTest, BatchedReclaimCoalescesCalls)
{
    auto runtime = makeRuntime(BackendKind::Hfi);
    std::vector<std::unique_ptr<Sandbox>> owned;
    std::vector<Sandbox *> raw;
    for (int i = 0; i < 8; ++i) {
        owned.push_back(runtime.createSandbox({1, 16}));
        ASSERT_TRUE(owned.back());
        raw.push_back(owned.back().get());
    }
    const auto calls0 = mmu.stats().madviseCalls;
    runtime.reclaim(raw, ReclaimPolicy::Batched, 4);
    EXPECT_EQ(mmu.stats().madviseCalls, calls0 + 2); // 8 sandboxes / 4
}

TEST_F(RuntimeTest, BatchedReclaimCheaperOnlyWithGuardElision)
{
    // The §6.3.1 result in miniature: batching wins under HFI layouts
    // and loses under guard-page layouts (the kernel walks the guard
    // holes).
    auto measure = [&](BackendKind kind, ReclaimPolicy policy) {
        vm::VirtualClock local_clock;
        vm::Mmu local_mmu(local_clock);
        core::HfiContext local_ctx(local_clock);
        RuntimeConfig config;
        config.backend = kind;
        Runtime runtime(local_mmu, local_ctx, config);

        std::vector<std::unique_ptr<Sandbox>> owned;
        std::vector<Sandbox *> raw;
        for (int i = 0; i < 32; ++i) {
            // FaaS-style instances: 1 MiB max heaps, so HFI's layout
            // really is "immediately adjacent heaps" (§5.1); guard-page
            // instances still carry their 4 GiB guards.
            owned.push_back(runtime.createSandbox({1, 16}));
            if (!owned.back())
                return -1.0;
            // Touch 16 pages like the FaaS microworkload.
            for (int p = 0; p < 16; ++p)
                owned.back()->store<std::uint64_t>(
                    static_cast<std::uint64_t>(p) * vm::kPageSize, 1);
            raw.push_back(owned.back().get());
        }
        const double t0 = local_clock.nowNs();
        runtime.reclaim(raw, policy, 32);
        return (local_clock.nowNs() - t0) / 32.0; // per sandbox
    };

    const double hfi_stock = measure(BackendKind::Hfi, ReclaimPolicy::Stock);
    const double hfi_batched =
        measure(BackendKind::Hfi, ReclaimPolicy::Batched);
    const double guard_batched =
        measure(BackendKind::GuardPages, ReclaimPolicy::Batched);
    ASSERT_GT(hfi_stock, 0);
    ASSERT_GT(hfi_batched, 0);
    ASSERT_GT(guard_batched, 0);

    EXPECT_LT(hfi_batched, hfi_stock);      // batching helps with HFI
    EXPECT_GT(guard_batched, hfi_stock);    // and hurts with guards
}

TEST_F(RuntimeTest, CapacityMathMatchesSection632)
{
    auto guard = makeRuntime(BackendKind::GuardPages);
    auto hfi_runtime = makeRuntime(BackendKind::Hfi);
    // 47-bit space: ~16K full-size guard-page sandboxes (8 GiB each,
    // §2) vs ~128K 1 GiB HFI sandboxes (the paper reports 256,000 on a
    // 48-bit address space — same shape, double the VA).
    EXPECT_LE(guard.addressSpaceCapacity(4ULL << 30), 16384u);
    EXPECT_GE(guard.addressSpaceCapacity(4ULL << 30), 16000u);
    EXPECT_GE(hfi_runtime.addressSpaceCapacity(1ULL << 30), 130000u);
}

TEST_F(RuntimeTest, CreateSandboxNullWhenFull)
{
    vm::VirtualClock small_clock;
    vm::Mmu small_mmu(small_clock, 34); // 16 GiB
    core::HfiContext small_ctx(small_clock);
    RuntimeConfig config;
    config.backend = BackendKind::GuardPages;
    Runtime runtime(small_mmu, small_ctx, config);
    auto first = runtime.createSandbox({1, 65536});
    EXPECT_TRUE(first);
    auto second = runtime.createSandbox({1, 65536});
    EXPECT_FALSE(second); // 8 GiB footprint no longer fits
}

} // namespace
