/**
 * @file
 * Cross-validation of the event-driven pipeline loop against the
 * reference loop.
 *
 * Pipeline::run skips provably idle cycles by advancing the clock to
 * the next event; Pipeline::runReference ticks every cycle through the
 * same stage functions. The two must be cycle-for-cycle identical —
 * not just in the final cycle count, but in every microarchitectural
 * event counter (fetch/dispatch/commit/squash/mispredict totals, cache
 * and TLB hit/miss counts) and in the architectural outcome (registers,
 * memory). These tests drive both loops over the whole Fig 2 kernel
 * suite in both protection renderings, over truncated runs cut at many
 * max_cycles budgets (pinning the skip logic's interaction with the
 * cycle limit), and over fault paths.
 */

#include <gtest/gtest.h>

#include "sim/kernels.h"
#include "sim/pipeline.h"

namespace
{

using namespace hfi;
using namespace hfi::sim;

/** Run both loops on identical inputs and compare everything. */
void
expectPipelineParity(const Program &prog,
                     void (*stage)(SimMemory &, std::uint64_t,
                                   std::uint32_t),
                     std::uint64_t max_cycles = 500'000'000)
{
    Pipeline fast(prog);
    Pipeline ref(prog);
    if (stage) {
        stage(fast.memory(), 1, 42);
        stage(ref.memory(), 1, 42);
    }

    const PipelineResult fr = fast.run(max_cycles);
    const PipelineResult rr = ref.runReference(max_cycles);

    ASSERT_EQ(fr.cycles, rr.cycles);
    ASSERT_EQ(fr.instructions, rr.instructions);
    ASSERT_EQ(fr.halted, rr.halted);
    ASSERT_EQ(fr.faulted, rr.faulted);
    ASSERT_EQ(static_cast<int>(fr.faultReason),
              static_cast<int>(rr.faultReason));
    ASSERT_EQ(fr.faultPc, rr.faultPc);

    const PipelineStats &fs = fast.stats();
    const PipelineStats &rs = ref.stats();
    ASSERT_EQ(fs.fetched, rs.fetched);
    ASSERT_EQ(fs.dispatched, rs.dispatched);
    ASSERT_EQ(fs.committed, rs.committed);
    ASSERT_EQ(fs.squashed, rs.squashed);
    ASSERT_EQ(fs.mispredicts, rs.mispredicts);
    ASSERT_EQ(fs.serializations, rs.serializations);
    ASSERT_EQ(fs.hfiDataChecks, rs.hfiDataChecks);
    ASSERT_EQ(fs.hfiFaultsSuppressed, rs.hfiFaultsSuppressed);

    // A skipped cycle must not have hidden a cache or TLB access.
    ASSERT_EQ(fast.icache().hits(), ref.icache().hits());
    ASSERT_EQ(fast.icache().misses(), ref.icache().misses());
    ASSERT_EQ(fast.dcache().hits(), ref.dcache().hits());
    ASSERT_EQ(fast.dcache().misses(), ref.dcache().misses());
    ASSERT_EQ(fast.dtb().hits(), ref.dtb().hits());
    ASSERT_EQ(fast.dtb().misses(), ref.dtb().misses());
    ASSERT_EQ(fast.predictor().mispredicts(),
              ref.predictor().mispredicts());

    for (unsigned r = 0; r < kNumRegs; ++r)
        ASSERT_EQ(fast.state().regs[r], ref.state().regs[r])
            << "reg " << r;
    for (std::uint64_t a = kernels::kHeapBase;
         a < kernels::kHeapBase + kernels::kHeapBytes; a += 8)
        ASSERT_EQ(fast.memory().read(a, 8), ref.memory().read(a, 8))
            << "heap address 0x" << std::hex << a;
}

TEST(PipelineParity, WholeKernelSuiteBothModes)
{
    for (const auto &kernel : kernels::suite()) {
        for (const auto mode : {kernels::Mode::HfiHardware,
                                kernels::Mode::HfiEmulation}) {
            SCOPED_TRACE(kernel.name +
                         (mode == kernels::Mode::HfiHardware ? "/hw"
                                                             : "/emu"));
            expectPipelineParity(kernel.build(mode, 1), kernel.stage);
        }
    }
}

TEST(PipelineParity, CycleBudgetCutsAgree)
{
    // Truncation must land both loops on the same cycle: the
    // event-driven skip clamps its jumps to max_cycles rather than
    // sailing past the limit the reference loop stops at.
    const auto &kernel = kernels::suite().front();
    const Program prog = kernel.build(kernels::Mode::HfiHardware, 1);
    for (std::uint64_t budget = 0; budget < 3000; budget += 97) {
        SCOPED_TRACE(budget);
        expectPipelineParity(prog, kernel.stage, budget);
    }
}

TEST(PipelineParity, FaultingProgramAgrees)
{
    // An out-of-region access faults at commit; the loops must agree
    // on the fault cycle, reason, and pc.
    ProgramBuilder b;
    b.movi(1, 0x1234);
    Inst enter;
    enter.op = Opcode::HfiEnter;
    enter.imm = 2; // serialized
    b.emit(enter);
    b.movi(2, 0x7fff0000); // no region covers this
    b.load(3, 2, 0, 8);
    b.halt();
    expectPipelineParity(b.build(), nullptr);
}

TEST(PipelineParity, RepeatedRunsAccumulate)
{
    // run() may be called again after a cycle-budget cut; the resumed
    // run must stay identical to a resumed reference run.
    const auto &kernel = kernels::suite().front();
    const Program prog = kernel.build(kernels::Mode::HfiHardware, 1);
    Pipeline fast(prog);
    Pipeline ref(prog);
    kernel.stage(fast.memory(), 1, 42);
    kernel.stage(ref.memory(), 1, 42);

    PipelineResult fr, rr;
    for (int leg = 0; leg < 3; ++leg) {
        fr = fast.run(4000 * (leg + 1));
        rr = ref.runReference(4000 * (leg + 1));
        ASSERT_EQ(fr.cycles, rr.cycles) << "leg " << leg;
        ASSERT_EQ(fr.instructions, rr.instructions) << "leg " << leg;
    }
    ASSERT_EQ(fr.halted, rr.halted);
}

} // namespace
