/**
 * @file
 * Tests for the AccessChecker: first-match implicit checks (§3.2), the
 * hmov operand rules (§4.2), and — the load-bearing property test — the
 * equivalence of the hardware-faithful single-32-bit-comparator bounds
 * check with the naive full-width reference on every well-formed
 * region, which is the paper's soundness argument for the cheap
 * hardware.
 */

#include <gtest/gtest.h>

#include "core/checker.h"

namespace
{

using namespace hfi::core;
using hfi::vm::VirtualClock;

class CheckerTest : public ::testing::Test
{
  protected:
    void
    setData(unsigned slot, std::uint64_t base, std::uint64_t mask,
            bool rd, bool wr)
    {
        ImplicitDataRegion r;
        r.basePrefix = base;
        r.lsbMask = mask;
        r.permRead = rd;
        r.permWrite = wr;
        bank.setRegion(slot, r);
    }

    void
    setCode(unsigned slot, std::uint64_t base, std::uint64_t mask,
            bool exec = true)
    {
        ImplicitCodeRegion r;
        r.basePrefix = base;
        r.lsbMask = mask;
        r.permExec = exec;
        bank.setRegion(slot, r);
    }

    void
    setExplicit(unsigned index, std::uint64_t base, std::uint64_t bound,
                bool large, bool rd = true, bool wr = true)
    {
        ExplicitDataRegion r;
        r.baseAddress = base;
        r.bound = bound;
        r.permRead = rd;
        r.permWrite = wr;
        r.isLargeRegion = large;
        bank.setRegion(kFirstExplicitRegion + index, r);
    }

    HfiRegisterFile bank{};
};

TEST_F(CheckerTest, DisabledMeansEverythingPasses)
{
    bank.enabled = false;
    EXPECT_TRUE(AccessChecker::checkData(bank, 0xdead, 8, true).ok);
    EXPECT_TRUE(AccessChecker::checkFetch(bank, 0xdead).ok);
}

TEST_F(CheckerTest, NoRegionsMeansNoAccess)
{
    // §3.2: "By default, a sandbox has no access to memory".
    bank.enabled = true;
    const auto res = AccessChecker::checkData(bank, 0x1000, 8, false);
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.reason, ExitReason::DataBoundsViolation);
    EXPECT_EQ(AccessChecker::checkFetch(bank, 0x1000).reason,
              ExitReason::CodeBoundsViolation);
}

TEST_F(CheckerTest, FirstMatchDecidesPermissions)
{
    // Region 2 (read-only) nested inside region 3 (read-write): the
    // first match decides, so writes inside region 2's range trap even
    // though region 3 would allow them — the §5.3 protection pattern.
    bank.enabled = true;
    setData(2, 0x10000, 0xfff, true, false);
    setData(3, 0x10000, 0xffff, true, true);

    EXPECT_TRUE(AccessChecker::checkData(bank, 0x10010, 8, false).ok);
    const auto wr = AccessChecker::checkData(bank, 0x10010, 8, true);
    EXPECT_FALSE(wr.ok);
    EXPECT_EQ(wr.reason, ExitReason::PermissionViolation);
    // Outside region 2 but inside region 3: writes allowed.
    EXPECT_TRUE(AccessChecker::checkData(bank, 0x11000, 8, true).ok);
}

TEST_F(CheckerTest, MatchedRegionIndexReported)
{
    bank.enabled = true;
    setData(4, 0x20000, 0xfff, true, true);
    const auto res = AccessChecker::checkData(bank, 0x20100, 4, false);
    EXPECT_TRUE(res.ok);
    EXPECT_EQ(res.matchedRegion, 4u);
}

TEST_F(CheckerTest, StraddlingAccessTraps)
{
    bank.enabled = true;
    setData(2, 0x10000, 0xfff, true, true);
    // 8-byte access whose last byte leaves the 4 KiB region.
    EXPECT_TRUE(AccessChecker::checkData(bank, 0x10ff8, 8, false).ok);
    EXPECT_FALSE(AccessChecker::checkData(bank, 0x10ffc, 8, false).ok);
}

TEST_F(CheckerTest, CodeRegionsOnlyGateFetch)
{
    bank.enabled = true;
    setCode(0, 0x400000, 0xffff);
    EXPECT_TRUE(AccessChecker::checkFetch(bank, 0x400123).ok);
    EXPECT_FALSE(AccessChecker::checkFetch(bank, 0x500000).ok);
    // Data accesses do not consult code regions.
    EXPECT_FALSE(AccessChecker::checkData(bank, 0x400123, 8, false).ok);
}

TEST_F(CheckerTest, NonExecutableCodeRegionTraps)
{
    bank.enabled = true;
    setCode(0, 0x400000, 0xffff, /*exec*/ false);
    const auto res = AccessChecker::checkFetch(bank, 0x400000);
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.reason, ExitReason::PermissionViolation);
}

TEST_F(CheckerTest, HmovBasicInBounds)
{
    bank.enabled = true;
    setExplicit(0, 0x100000, 1 << 16, /*large*/ true);
    HmovOperands ops;
    ops.index = 0x100;
    ops.width = 8;
    const auto res = AccessChecker::checkHmov(bank, 0, ops, false);
    EXPECT_TRUE(res.ok);
    EXPECT_EQ(res.address, 0x100100u);
}

TEST_F(CheckerTest, HmovOutOfBoundsTraps)
{
    bank.enabled = true;
    setExplicit(0, 0x100000, 1 << 16, true);
    HmovOperands ops;
    ops.index = 1 << 16;
    ops.width = 1;
    const auto res = AccessChecker::checkHmov(bank, 0, ops, false);
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.reason, ExitReason::HmovBoundsViolation);
    // Last byte straddling the bound also traps.
    ops.index = (1 << 16) - 4;
    ops.width = 8;
    EXPECT_FALSE(AccessChecker::checkHmov(bank, 0, ops, false).ok);
}

TEST_F(CheckerTest, HmovNegativeOperandsTrap)
{
    // §3.2: "hmov traps if a negative value is used for the remaining
    // operands".
    bank.enabled = true;
    setExplicit(0, 0x100000, 1 << 16, true);
    HmovOperands ops;
    ops.index = -1;
    EXPECT_EQ(AccessChecker::checkHmov(bank, 0, ops, false).reason,
              ExitReason::HmovNegativeOperand);
    ops.index = 0;
    ops.displacement = -8;
    EXPECT_EQ(AccessChecker::checkHmov(bank, 0, ops, false).reason,
              ExitReason::HmovNegativeOperand);
}

TEST_F(CheckerTest, HmovOverflowTraps)
{
    bank.enabled = true;
    setExplicit(0, 0x100000, 1 << 16, true);
    HmovOperands ops;
    ops.index = INT64_MAX;
    ops.scale = 8;
    EXPECT_EQ(AccessChecker::checkHmov(bank, 0, ops, false).reason,
              ExitReason::HmovOverflow);
}

TEST_F(CheckerTest, HmovScaleAndDisplacement)
{
    bank.enabled = true;
    setExplicit(0, 0x100000, 1 << 16, true);
    HmovOperands ops;
    ops.index = 0x10;
    ops.scale = 8;
    ops.displacement = 0x20;
    ops.width = 8;
    const auto res = AccessChecker::checkHmov(bank, 0, ops, false);
    EXPECT_TRUE(res.ok);
    EXPECT_EQ(res.address, 0x100000u + 0x10 * 8 + 0x20);
}

TEST_F(CheckerTest, HmovPermissionChecks)
{
    bank.enabled = true;
    setExplicit(0, 0x100000, 1 << 16, true, /*rd*/ true, /*wr*/ false);
    HmovOperands ops;
    ops.index = 0;
    ops.width = 8;
    EXPECT_TRUE(AccessChecker::checkHmov(bank, 0, ops, false).ok);
    EXPECT_EQ(AccessChecker::checkHmov(bank, 0, ops, true).reason,
              ExitReason::PermissionViolation);
}

TEST_F(CheckerTest, HmovEmptyOrBadRegionTraps)
{
    bank.enabled = true;
    HmovOperands ops;
    EXPECT_EQ(AccessChecker::checkHmov(bank, 0, ops, false).reason,
              ExitReason::HmovEmptyRegion);
    EXPECT_EQ(AccessChecker::checkHmov(bank, 7, ops, false).reason,
              ExitReason::HmovEmptyRegion);
}

TEST_F(CheckerTest, SmallRegionEndingOn4GiBBoundary)
{
    // A small region whose limit is exactly a 4 GiB multiple: the
    // 32-bit comparator must still admit the top bytes (carry case).
    bank.enabled = true;
    const std::uint64_t base = (1ULL << 32) - 4096;
    setExplicit(0, base, 4096, /*large*/ false);
    HmovOperands ops;
    ops.index = 4095;
    ops.width = 1;
    EXPECT_TRUE(AccessChecker::checkHmov(bank, 0, ops, false).ok);
    ops.index = 4096;
    EXPECT_FALSE(AccessChecker::checkHmov(bank, 0, ops, false).ok);
}

/**
 * The central property: the hardware-faithful check (one 32-bit compare
 * plus sign/overflow bits, §4.2) agrees with the naive full-64-bit
 * reference on every well-formed region and operand combination.
 */
struct HmovCase
{
    std::uint64_t base;
    std::uint64_t bound;
    bool large;
};

class HmovEquivalence : public ::testing::TestWithParam<HmovCase>
{
};

TEST_P(HmovEquivalence, HardwareMatchesNaive)
{
    const HmovCase param = GetParam();
    HfiRegisterFile bank;
    bank.enabled = true;
    ExplicitDataRegion r;
    r.baseAddress = param.base;
    r.bound = param.bound;
    r.permRead = true;
    r.permWrite = true;
    r.isLargeRegion = param.large;
    ASSERT_TRUE(r.wellFormed());
    bank.setRegion(kFirstExplicitRegion, r);

    // Sweep offsets around the region edges and a few interior points,
    // crossed with widths and scales.
    const std::int64_t bound = static_cast<std::int64_t>(param.bound);
    const std::int64_t probes[] = {0,
                                   1,
                                   7,
                                   bound / 2,
                                   bound - 65,
                                   bound - 64,
                                   bound - 8,
                                   bound - 1,
                                   bound,
                                   bound + 1,
                                   bound + 63,
                                   bound * 2};
    const unsigned widths[] = {1, 2, 4, 8, 16, 64};
    const unsigned scales[] = {1, 2, 8};

    for (std::int64_t probe : probes) {
        if (probe < 0)
            continue;
        for (unsigned width : widths) {
            for (unsigned scale : scales) {
                if (probe % scale != 0)
                    continue;
                HmovOperands ops;
                ops.index = probe / scale;
                ops.scale = static_cast<std::uint8_t>(scale);
                ops.displacement = 0;
                ops.width = width;
                const auto hw =
                    AccessChecker::checkHmov(bank, 0, ops, false);
                const auto naive =
                    AccessChecker::checkHmovNaive(bank, 0, ops, false);
                EXPECT_EQ(hw.ok, naive.ok)
                    << "base=0x" << std::hex << param.base << " bound=0x"
                    << param.bound << " probe=0x" << probe << " width="
                    << std::dec << width << " scale=" << scale;
                if (hw.ok && naive.ok) {
                    EXPECT_EQ(hw.address, naive.address);
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Regions, HmovEquivalence,
    ::testing::Values(
        // Large regions: 64 KiB grain, up to huge bounds.
        HmovCase{0x100000, 1 << 16, true},
        HmovCase{0x7fff0000, 4ULL << 30, true},
        HmovCase{1ULL << 40, 1ULL << 32, true},
        HmovCase{0, 1ULL << 48, true},
        HmovCase{0xffff0000, 1 << 16, true},
        // Small regions: byte grain, non-spanning.
        HmovCase{0x12345, 1234, false},
        HmovCase{0x100000, (1ULL << 32) - 0x100000, false},
        HmovCase{(1ULL << 32) - 8192, 8192, false},
        HmovCase{(5ULL << 32) + 123, 1 << 20, false},
        HmovCase{0x7fff8000, 0x800, false}));

/** Displacement-based sweep of the same property. */
TEST_F(CheckerTest, HmovDisplacementEquivalenceSweep)
{
    bank.enabled = true;
    setExplicit(2, 0xabcd0000, 1 << 16, true);
    for (std::int64_t disp = 0; disp < (1 << 17); disp += 4093) {
        for (unsigned width : {1u, 4u, 8u}) {
            HmovOperands ops;
            ops.index = 5;
            ops.scale = 4;
            ops.displacement = disp;
            ops.width = width;
            const auto hw = AccessChecker::checkHmov(bank, 2, ops, true);
            const auto naive =
                AccessChecker::checkHmovNaive(bank, 2, ops, true);
            ASSERT_EQ(hw.ok, naive.ok) << "disp=" << disp;
        }
    }
}

TEST_F(CheckerTest, ContextConvenienceOverloads)
{
    VirtualClock clock;
    HfiContext ctx(clock);
    ImplicitDataRegion r;
    r.basePrefix = 0x1000;
    r.lsbMask = 0xfff;
    r.permRead = true;
    ctx.setRegion(2, Region{r});
    ctx.enter(SandboxConfig{});
    EXPECT_TRUE(AccessChecker::checkData(ctx, 0x1800, 4, false).ok);
    EXPECT_FALSE(AccessChecker::checkData(ctx, 0x2000, 4, false).ok);
}

} // namespace
