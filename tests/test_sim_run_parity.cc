/**
 * @file
 * Cross-validation of the threaded-dispatch interpreter against the
 * reference loop.
 *
 * FunctionalCore::run is an optimized interpreter (computed goto, index
 * tracking, fetch-check elision) and FunctionalCore::runReference is
 * the literal per-instruction loop; everything the optimized loop does
 * must be observationally identical — step counts, registers, pc, MSR,
 * sandbox state, and memory. These tests drive both over the whole
 * Fig 2 kernel suite (both protection renderings, so HFI enter/exit,
 * set_region, hmov, and the emulation's cpuid all execute) and over
 * targeted edge programs: branches to non-instruction addresses,
 * running off the program's end, step-budget exhaustion, and faults.
 *
 * The dense-fetch Program plumbing the fast loop depends on (offset
 * table, sequential hint, predecoded targets) is covered here too.
 */

#include <gtest/gtest.h>

#include "sim/functional.h"
#include "sim/kernels.h"

namespace
{

using namespace hfi;
using namespace hfi::sim;

/** Run both interpreters on identical state and compare everything. */
void
expectParity(const Program &prog,
             const std::function<void(SimMemory &)> &stage,
             std::uint64_t max_steps = 100'000'000)
{
    ArchState fast_state, ref_state;
    fast_state.pc = ref_state.pc = prog.base();
    SimMemory fast_mem, ref_mem;
    if (stage) {
        stage(fast_mem);
        stage(ref_mem);
    }

    const std::uint64_t fast_steps =
        FunctionalCore::run(prog, fast_state, fast_mem, max_steps);
    const std::uint64_t ref_steps =
        FunctionalCore::runReference(prog, ref_state, ref_mem, max_steps);

    ASSERT_EQ(fast_steps, ref_steps);
    ASSERT_EQ(fast_state.pc, ref_state.pc);
    ASSERT_EQ(static_cast<int>(fast_state.msr),
              static_cast<int>(ref_state.msr));
    ASSERT_EQ(fast_state.hfi.enabled, ref_state.hfi.enabled);
    for (unsigned r = 0; r < kNumRegs; ++r)
        ASSERT_EQ(fast_state.regs[r], ref_state.regs[r]) << "reg " << r;
    // Compare the heap both kernels write through (word stride covers
    // every byte; both memories were staged identically).
    for (std::uint64_t a = kernels::kHeapBase;
         a < kernels::kHeapBase + kernels::kHeapBytes; a += 8)
        ASSERT_EQ(fast_mem.read(a, 8), ref_mem.read(a, 8))
            << "heap address 0x" << std::hex << a;
}

TEST(RunParity, WholeKernelSuiteBothModes)
{
    for (const auto &kernel : kernels::suite()) {
        for (const auto mode : {kernels::Mode::HfiHardware,
                                kernels::Mode::HfiEmulation}) {
            SCOPED_TRACE(kernel.name +
                         (mode == kernels::Mode::HfiHardware ? "/hw"
                                                             : "/emu"));
            const Program prog = kernel.build(mode, 1);
            expectParity(prog, [&kernel](SimMemory &mem) {
                kernel.stage(mem, 1, 42);
            });
        }
    }
}

TEST(RunParity, StepBudgetExhaustionAgreesAtEveryCut)
{
    // Truncating the same kernel at every budget from 0 upward must
    // leave both interpreters in the same mid-flight state — this is
    // what pins the fast loop's step accounting (including the
    // uncounted bail-and-retry of slow opcodes) to the reference's.
    const auto &kernel = kernels::suite().front();
    const Program prog = kernel.build(kernels::Mode::HfiHardware, 1);
    for (std::uint64_t budget = 0; budget < 400; budget += 7) {
        SCOPED_TRACE(budget);
        expectParity(prog, [&kernel](SimMemory &mem) {
            kernel.stage(mem, 1, 42);
        }, budget);
    }
}

TEST(RunParity, BranchToNonInstructionAddressFaultsIdentically)
{
    // A jump into the middle of an instruction is an invalid-opcode
    // stop; the fast loop must leave pc at the bogus target exactly
    // like the reference loop does.
    ProgramBuilder b;
    b.movi(1, 7);
    Inst jmp;
    jmp.op = Opcode::Jmp;
    jmp.target = 0x400001; // mid-instruction
    b.emit(jmp);
    b.halt();
    expectParity(b.build(), {});
}

TEST(RunParity, CallAndRetThroughNonInstructionAddresses)
{
    // ret to a link register value outside the program.
    ProgramBuilder b;
    b.movi(kLinkReg, 0x123456);
    b.ret();
    expectParity(b.build(), {});

    // call to a valid label, ret back, then run off the end.
    ProgramBuilder c;
    c.call("fn");
    c.movi(2, 9);
    c.jmp("done");
    c.label("fn").movi(1, 5).ret();
    c.label("done").nop();
    expectParity(c.build(), {});
}

TEST(RunParity, ConditionalBranchesAndLoops)
{
    ProgramBuilder b;
    b.movi(1, 0).movi(2, 100);
    b.label("loop");
    b.addi(1, 1, 3);
    b.blt(1, 2, "loop");
    b.movi(3, 0x1000);
    b.store(1, 3, 0, 8);
    b.load(4, 3, 0, 4);
    b.halt();
    expectParity(b.build(), {});
}

TEST(RunParity, DenseFetchIndexAgreesWithAddressMap)
{
    ProgramBuilder b;
    b.movi(1, 1).addi(2, 1, 2).halt();
    const Program prog = b.build();

    // Every instruction start resolves; every other offset is kNoInst.
    std::size_t starts = 0;
    for (std::uint64_t a = prog.base(); a < prog.end(); ++a) {
        const std::size_t idx = prog.indexAt(a);
        if (idx != Program::kNoInst) {
            EXPECT_EQ(prog.addressOf(idx), a);
            ++starts;
        }
    }
    EXPECT_EQ(starts, prog.instructionCount());
    EXPECT_EQ(prog.indexAt(prog.base() - 1), Program::kNoInst);
    EXPECT_EQ(prog.indexAt(prog.end()), Program::kNoInst);

    // The hinted fetch returns the same instruction as at() whether the
    // hint is right, wrong, or out of range.
    for (std::size_t wrong_hint : {std::size_t{0}, std::size_t{2},
                                   std::size_t{999}}) {
        std::size_t hint = wrong_hint;
        const Inst *viaHint = prog.fetch(prog.base(), &hint);
        ASSERT_NE(viaHint, nullptr);
        EXPECT_EQ(viaHint, prog.at(prog.base()));
        EXPECT_EQ(hint, 1u); // primed for the next sequential fetch
    }
    std::size_t hint = 7;
    EXPECT_EQ(prog.fetch(prog.base() + 1, &hint), nullptr);
}

TEST(RunParity, PredecodedBranchTargets)
{
    ProgramBuilder b;
    b.label("top").movi(1, 1);
    b.jmp("top");
    b.halt();
    const Program prog = b.build();
    // Instruction 1 is the jmp; its predecoded target is instruction 0.
    EXPECT_EQ(prog.targetIndexOf(1), 0u);
    // Non-control instructions predecode to kNoInst (target field 0).
    EXPECT_EQ(prog.targetIndexOf(0), Program::kNoInst);
}

TEST(RunParity, LabelFixupErrorNamesInstructionAndMnemonic)
{
    ProgramBuilder b;
    b.movi(1, 4);
    b.jmp("nowhere");
    try {
        b.build();
        FAIL() << "build() should have thrown";
    } catch (const std::exception &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("nowhere"), std::string::npos) << msg;
        EXPECT_NE(msg.find("instruction 1"), std::string::npos) << msg;
        EXPECT_NE(msg.find("jmp"), std::string::npos) << msg;
    }
}

} // namespace
