/**
 * @file
 * Tests for Wasm multi-memory over multiplexed explicit regions
 * (§3.3.1): binding, LRU rebinds, per-memory bounds enforcement, growth
 * by register update, and the guard-free footprint (§2's contrast).
 */

#include <gtest/gtest.h>

#include "sfi/multi_memory.h"

namespace
{

using namespace hfi;
using namespace hfi::sfi;

class MultiMemoryTest : public ::testing::Test
{
  protected:
    vm::VirtualClock clock;
    vm::Mmu mmu{clock};
    core::HfiContext ctx{clock};
};

TEST_F(MultiMemoryTest, IndependentMemories)
{
    MultiMemorySandbox instance(mmu, ctx, 3);
    ASSERT_TRUE(instance.valid());
    instance.enter();
    instance.store<std::uint64_t>(0, 64, 0xaaaa);
    instance.store<std::uint64_t>(1, 64, 0xbbbb);
    instance.store<std::uint64_t>(2, 64, 0xcccc);
    EXPECT_EQ(instance.load<std::uint64_t>(0, 64), 0xaaaau);
    EXPECT_EQ(instance.load<std::uint64_t>(1, 64), 0xbbbbu);
    EXPECT_EQ(instance.load<std::uint64_t>(2, 64), 0xccccu);
    instance.exit();
}

TEST_F(MultiMemoryTest, UpToFourMemoriesNeverRebind)
{
    MultiMemorySandbox instance(mmu, ctx, 4);
    ASSERT_TRUE(instance.valid());
    instance.enter();
    for (int round = 0; round < 10; ++round) {
        for (unsigned m = 0; m < 4; ++m)
            instance.store<std::uint32_t>(m, 0, round);
    }
    // One initial bind per memory, nothing after.
    EXPECT_EQ(instance.stats().rebinds, 4u);
    instance.exit();
}

TEST_F(MultiMemoryTest, FifthMemoryForcesLruRebinds)
{
    MultiMemorySandbox instance(mmu, ctx, 5);
    ASSERT_TRUE(instance.valid());
    instance.enter();
    for (unsigned m = 0; m < 5; ++m)
        instance.store<std::uint32_t>(m, 0, m);
    EXPECT_EQ(instance.stats().rebinds, 5u);
    // Memory 0 was evicted by memory 4's bind; touching it rebinds.
    EXPECT_EQ(instance.boundSlot(0), -1);
    EXPECT_EQ(instance.load<std::uint32_t>(0, 0), 0u);
    EXPECT_EQ(instance.stats().rebinds, 6u);
    instance.exit();
}

TEST_F(MultiMemoryTest, RebindSerializesInHybridSandbox)
{
    MultiMemorySandbox instance(mmu, ctx, 5);
    ASSERT_TRUE(instance.valid());
    instance.enter();
    const auto serializations = ctx.stats().serializations;
    for (unsigned m = 0; m < 5; ++m)
        instance.store<std::uint32_t>(m, 0, 1);
    // §4.3: every in-sandbox hfi_set_region serialized.
    EXPECT_GE(ctx.stats().serializations, serializations + 5);
    instance.exit();
}

TEST_F(MultiMemoryTest, PerMemoryBoundsEnforced)
{
    MultiMemorySandbox instance(mmu, ctx, 2, /*initial*/ 1, /*max*/ 8);
    ASSERT_TRUE(instance.valid());
    instance.enter();
    EXPECT_NO_THROW(instance.store<std::uint8_t>(0, kWasmPageSize - 1, 1));
    EXPECT_THROW(instance.load<std::uint8_t>(0, kWasmPageSize),
                 SandboxTrap);
    EXPECT_EQ(instance.stats().traps, 1u);
    instance.exit();
}

TEST_F(MultiMemoryTest, GrowIsARegisterUpdate)
{
    MultiMemorySandbox instance(mmu, ctx, 1, 1, 8);
    ASSERT_TRUE(instance.valid());
    instance.enter();
    EXPECT_THROW(instance.load<std::uint8_t>(0, kWasmPageSize),
                 SandboxTrap);
    const auto mprotects = mmu.stats().mprotectCalls;
    EXPECT_EQ(instance.memoryGrow(0, 1), 1);
    EXPECT_EQ(mmu.stats().mprotectCalls, mprotects); // no syscall
    EXPECT_EQ(instance.load<std::uint8_t>(0, kWasmPageSize), 0);
    instance.exit();
}

TEST_F(MultiMemoryTest, GrowBeyondMaxFails)
{
    MultiMemorySandbox instance(mmu, ctx, 1, 1, 4);
    ASSERT_TRUE(instance.valid());
    EXPECT_EQ(instance.memoryGrow(0, 10), -1);
}

TEST_F(MultiMemoryTest, FootprintIsGuardFree)
{
    // §2: each guard-page memory costs 8 GiB; eight HFI memories of
    // 1 MiB max cost exactly 8 MiB.
    MultiMemorySandbox instance(mmu, ctx, 8, 1, 16);
    ASSERT_TRUE(instance.valid());
    EXPECT_EQ(instance.reservedVaBytes(), 8ULL << 20);
}

TEST_F(MultiMemoryTest, ManyMemoriesStillCorrect)
{
    // 32 memories over 4 slots: heavy multiplexing must stay correct.
    MultiMemorySandbox instance(mmu, ctx, 32);
    ASSERT_TRUE(instance.valid());
    instance.enter();
    for (unsigned m = 0; m < 32; ++m)
        instance.store<std::uint64_t>(m, 8 * m, 0x1000 + m);
    for (unsigned m = 0; m < 32; ++m)
        EXPECT_EQ(instance.load<std::uint64_t>(m, 8 * m), 0x1000u + m);
    EXPECT_GT(instance.stats().rebinds, 32u); // round-robin thrashing
    instance.exit();
}

} // namespace
