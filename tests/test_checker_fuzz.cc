/**
 * @file
 * Differential fuzz of the hardware-faithful hmov check against the
 * naive full-width reference (§4.2).
 *
 * The paper's soundness argument for the single-32-bit-comparator
 * design is that, on *well-formed* regions (large: 64 KiB grain, 48-bit
 * bounds; small: byte grain, never spanning a 4 GiB boundary), the
 * cheap check decides exactly like two 64-bit comparators would. The
 * deterministic fuzzer below hammers that claim with randomized
 * regions and operands, biased hard toward the places the two
 * implementations could plausibly split: accesses straddling the
 * region's end, offsets straddling the 32-bit comparator width, and
 * operands that overflow the effective-address computation.
 */

#include <gtest/gtest.h>

#include "core/checker.h"

namespace
{

using namespace hfi::core;

/** splitmix64: deterministic, seedable, no <random> heft. */
std::uint64_t
nextRand(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** A well-formed large region: 64 KiB-aligned base and bound. */
ExplicitDataRegion
randomLargeRegion(std::uint64_t &rng)
{
    ExplicitDataRegion r;
    r.isLargeRegion = true;
    r.baseAddress = (nextRand(rng) % (kLargeRegionMaxBound / kLargeRegionGrain)) *
                    kLargeRegionGrain;
    // Bias toward smallish regions so the end is actually reachable
    // with plausible offsets; sometimes go huge.
    const std::uint64_t grains =
        (nextRand(rng) % 8 == 0)
            ? nextRand(rng) % (kLargeRegionMaxBound / kLargeRegionGrain)
            : nextRand(rng) % 1024;
    r.bound = grains * kLargeRegionGrain;
    r.permRead = nextRand(rng) % 4 != 0;
    r.permWrite = nextRand(rng) % 4 != 0;
    return r;
}

/** A well-formed small region: inside one 4 GiB window (or end-aligned). */
ExplicitDataRegion
randomSmallRegion(std::uint64_t &rng)
{
    ExplicitDataRegion r;
    r.isLargeRegion = false;
    const std::uint64_t bound =
        (nextRand(rng) % 8 == 0) ? nextRand(rng) % kSmallRegionMaxBound
                                 : nextRand(rng) % 65536;
    r.bound = bound;
    const std::uint64_t high = nextRand(rng) << 32;
    if (bound != 0 && nextRand(rng) % 4 == 0) {
        // End exactly on a 4 GiB boundary — allowed, and the case where
        // the comparator must keep its carry bit to admit the top bytes.
        r.baseAddress = high + (kSmallRegionMaxBound - bound);
    } else {
        const std::uint64_t room = kSmallRegionMaxBound - bound;
        r.baseAddress = high + (room ? nextRand(rng) % room : 0);
    }
    r.permRead = nextRand(rng) % 4 != 0;
    r.permWrite = nextRand(rng) % 4 != 0;
    return r;
}

constexpr std::uint32_t kWidths[] = {1, 2, 4, 8, 16, 32, 64};
constexpr std::uint8_t kScales[] = {1, 2, 4, 8};

/**
 * Operands biased toward the discriminating neighborhoods of @p region:
 * the region end (straddle), offset 0, the 32-bit comparator width, and
 * overflowing / negative inputs.
 */
HmovOperands
randomOperands(std::uint64_t &rng, const ExplicitDataRegion &region)
{
    HmovOperands ops;
    ops.scale = kScales[nextRand(rng) % 4];
    ops.width = kWidths[nextRand(rng) % 7];
    switch (nextRand(rng) % 8) {
    case 0: // uniform small offset
        ops.index = static_cast<std::int64_t>(nextRand(rng) % 4096);
        ops.displacement = static_cast<std::int64_t>(nextRand(rng) % 4096);
        break;
    case 1: { // boundary straddle: land the access on the region's end
        const std::uint64_t target =
            region.bound > ops.width
                ? region.bound - ops.width + (nextRand(rng) % 5) - 2
                : nextRand(rng) % 8;
        ops.index =
            static_cast<std::int64_t>(target / ops.scale);
        ops.displacement =
            static_cast<std::int64_t>(target % ops.scale);
        break;
    }
    case 2: // negative operands must trap identically
        ops.index = -static_cast<std::int64_t>(1 + nextRand(rng) % 1024);
        ops.displacement = static_cast<std::int64_t>(nextRand(rng) % 4096);
        break;
    case 3:
        ops.index = static_cast<std::int64_t>(nextRand(rng) % 4096);
        ops.displacement =
            -static_cast<std::int64_t>(1 + nextRand(rng) % 1024);
        break;
    case 4: // scale / add overflow of the offset computation
        ops.index = static_cast<std::int64_t>(nextRand(rng) >> 1);
        ops.displacement = static_cast<std::int64_t>(nextRand(rng) >> 1);
        break;
    case 5: // offsets around the 32-bit comparator width
        ops.index = static_cast<std::int64_t>(
            (kSmallRegionMaxBound >> (nextRand(rng) % 2)) / ops.scale +
            (nextRand(rng) % 9) - 4);
        ops.displacement = static_cast<std::int64_t>(nextRand(rng) % 4);
        break;
    case 6: // inside the region, anywhere
        ops.index = static_cast<std::int64_t>(
            region.bound ? nextRand(rng) % region.bound : 0);
        ops.displacement = 0;
        ops.scale = 1;
        break;
    default: // wild 48-bit offsets (large-region scale)
        ops.index =
            static_cast<std::int64_t>(nextRand(rng) & 0xffffffffffffULL);
        ops.displacement = static_cast<std::int64_t>(nextRand(rng) % 65536);
        break;
    }
    return ops;
}

TEST(CheckerFuzz, HardwareCheckMatchesNaiveOnWellFormedRegions)
{
    std::uint64_t rng = 0x48f1'5eed'2026'0805ULL;
    HfiRegisterFile bank{};
    bank.enabled = true;

    for (int iter = 0; iter < 200'000; ++iter) {
        const bool large = nextRand(rng) % 2 == 0;
        const ExplicitDataRegion region =
            large ? randomLargeRegion(rng) : randomSmallRegion(rng);
        ASSERT_TRUE(region.wellFormed());
        const unsigned slot = static_cast<unsigned>(nextRand(rng) % 4);
        bank.setRegion(kFirstExplicitRegion + slot, region);

        // Mostly hit the configured slot; sometimes a cleared one or an
        // out-of-range index, which must trap identically too.
        unsigned probe = slot;
        if (nextRand(rng) % 16 == 0)
            probe = static_cast<unsigned>(nextRand(rng) % 6);
        const HmovOperands ops = randomOperands(rng, region);
        const bool write = nextRand(rng) % 2 == 0;

        const HmovResult hw =
            AccessChecker::checkHmov(bank, probe, ops, write);
        const HmovResult naive =
            AccessChecker::checkHmovNaive(bank, probe, ops, write);

        ASSERT_EQ(hw.ok, naive.ok)
            << "iter " << iter << (large ? " large" : " small")
            << " base=0x" << std::hex << region.baseAddress << " bound=0x"
            << region.bound << " index=0x" << ops.index << " scale="
            << std::dec << int(ops.scale) << " disp=0x" << std::hex
            << ops.displacement << " width=" << std::dec << ops.width;
        ASSERT_EQ(static_cast<int>(hw.reason),
                  static_cast<int>(naive.reason))
            << "iter " << iter;
        if (hw.ok) {
            ASSERT_EQ(hw.address, naive.address) << "iter " << iter;
        }

        bank.setRegion(kFirstExplicitRegion + slot, EmptyRegion{});
    }
}

TEST(CheckerFuzz, ExhaustiveAroundSmallRegionEnd)
{
    // Every (offset, width) in a window around the end of a small
    // region that terminates exactly on a 4 GiB boundary — the carry
    // case the 32-bit comparator is easiest to get wrong.
    HfiRegisterFile bank{};
    bank.enabled = true;
    ExplicitDataRegion region;
    region.isLargeRegion = false;
    region.bound = 256;
    region.baseAddress =
        (7ULL << 32) + (kSmallRegionMaxBound - region.bound);
    region.permRead = region.permWrite = true;
    ASSERT_TRUE(region.wellFormed());
    bank.setRegion(kFirstExplicitRegion, region);

    for (std::uint64_t offset = 0; offset < 2 * region.bound; ++offset) {
        for (std::uint32_t width : kWidths) {
            HmovOperands ops;
            ops.index = static_cast<std::int64_t>(offset);
            ops.scale = 1;
            ops.displacement = 0;
            ops.width = width;
            const auto hw = AccessChecker::checkHmov(bank, 0, ops, false);
            const auto naive =
                AccessChecker::checkHmovNaive(bank, 0, ops, false);
            ASSERT_EQ(hw.ok, naive.ok)
                << "offset " << offset << " width " << width;
            ASSERT_EQ(static_cast<int>(hw.reason),
                      static_cast<int>(naive.reason))
                << "offset " << offset << " width " << width;
            if (hw.ok) {
                ASSERT_EQ(hw.address, naive.address);
            }
        }
    }
}

} // namespace
