/**
 * @file
 * End-to-end integration tests that wire several subsystems together,
 * mirroring the paper's deployment stories:
 *
 *  - a browser renderer hosting multiple sandboxed libraries (§6.2),
 *  - a FaaS process multiplexing tenants with protected transitions and
 *    batched reclamation (§6.3),
 *  - OS-scheduled processes each running their own sandboxes (§3.3.3),
 *  - a native server with syscall interposition and key isolation
 *    (§6.4).
 */

#include <gtest/gtest.h>

#include "faas/latency.h"
#include "nginx/server.h"
#include "os/scheduler.h"
#include "sfi/multi_memory.h"
#include "sfi/runtime.h"
#include "syscall/interposer.h"
#include "workloads/faas_workloads.h"
#include "workloads/font.h"
#include "workloads/image.h"

namespace
{

using namespace hfi;

TEST(Integration, RendererHostsFontAndImageSandboxes)
{
    // One "renderer" process, two library sandboxes, interleaved calls.
    vm::VirtualClock clock;
    vm::Mmu mmu(clock);
    core::HfiContext ctx(clock);
    sfi::RuntimeConfig config;
    config.backend = sfi::BackendKind::Hfi;
    sfi::Runtime runtime(mmu, ctx, config);

    auto font_sandbox = runtime.createSandbox({8, 512});
    auto image_sandbox = runtime.createSandbox({8, 512});
    ASSERT_TRUE(font_sandbox && image_sandbox);

    const std::string text = workloads::font::makeTestText(500, 3);
    const auto pixels = workloads::image::makeTestImage(96, 64, 9);
    const auto encoded = workloads::image::encode(
        pixels, 96, 64, workloads::image::Quality::Default);

    std::uint64_t font_sum = 0, image_sum = 0;
    for (int frame = 0; frame < 3; ++frame) {
        std::uint64_t f = 0, i = 0;
        ASSERT_TRUE(font_sandbox->invoke([&](sfi::Sandbox &s) {
            f = workloads::font::reflowSandboxed(s, text, 14, 640)
                    .checksum;
        }));
        ASSERT_TRUE(image_sandbox->invoke([&](sfi::Sandbox &s) {
            i = workloads::image::decodeSandboxed(s, encoded);
        }));
        if (frame == 0) {
            font_sum = f;
            image_sum = i;
        } else {
            // Re-rendering is deterministic and sandbox state survives.
            EXPECT_EQ(f, font_sum);
            EXPECT_EQ(i, image_sum);
        }
    }

    // The two libraries never share regions: after the image sandbox
    // runs, the font sandbox's next enter reprograms its own heap.
    EXPECT_FALSE(ctx.enabled());
    EXPECT_GT(ctx.stats().enters, 5u);
}

TEST(Integration, FaasTenantsAreIsolatedAndReclaimed)
{
    vm::VirtualClock clock;
    vm::Mmu mmu(clock, 48);
    core::HfiContext ctx(clock);
    sfi::RuntimeConfig config;
    config.backend = sfi::BackendKind::Hfi;
    sfi::Runtime runtime(mmu, ctx, config);

    // Tenant A writes a "secret" into its heap; tenant B (same slot
    // reused) must not observe it through its own sandbox.
    auto tenant_a = runtime.createSandbox({1, 16});
    ASSERT_TRUE(tenant_a);
    tenant_a->invoke([](sfi::Sandbox &s) {
        s.store<std::uint64_t>(0, 0x5ec2e7);
    });

    auto tenant_b = runtime.createSandbox({1, 16});
    ASSERT_TRUE(tenant_b);
    std::uint64_t seen = 1;
    tenant_b->invoke([&](sfi::Sandbox &s) {
        seen = s.load<std::uint64_t>(0); // B's own zeroed heap
    });
    EXPECT_EQ(seen, 0u);
    // B cannot reach A's heap at all: its region covers only its base.
    const auto &region = std::get<core::ExplicitDataRegion>(
        ctx.region(core::kFirstExplicitRegion));
    EXPECT_EQ(region.baseAddress, tenant_b->backend().baseAddress());

    // Serve a small burst and reclaim in a batch.
    std::vector<std::unique_ptr<sfi::Sandbox>> spent;
    std::vector<sfi::Sandbox *> raw;
    for (int i = 0; i < 16; ++i) {
        auto tenant = runtime.createSandbox({1, 16});
        ASSERT_TRUE(tenant);
        tenant->invoke([&](sfi::Sandbox &s) {
            const std::string xml = workloads::faas::makeXmlDocument(
                5, static_cast<std::uint32_t>(i));
            s.memory().writeBytes(64, xml.data(), xml.size());
            workloads::faas::xmlToJson(s, 64, xml.size());
        });
        raw.push_back(tenant.get());
        spent.push_back(std::move(tenant));
    }
    const auto calls = mmu.stats().madviseCalls;
    runtime.reclaim(raw, sfi::ReclaimPolicy::Batched, 16);
    EXPECT_EQ(mmu.stats().madviseCalls, calls + 1);
}

TEST(Integration, ScheduledProcessesKeepDistinctSandboxWorlds)
{
    vm::VirtualClock clock;
    vm::Mmu mmu(clock);
    core::HfiContext ctx(clock);
    os::Scheduler scheduler(ctx);

    const int browser = scheduler.createProcess("browser");
    const int faas = scheduler.createProcess("faas");
    (void)browser;

    // The browser process sets up a sandbox with its font heap...
    sfi::RuntimeConfig config;
    config.backend = sfi::BackendKind::Hfi;
    sfi::Runtime runtime(mmu, ctx, config);
    auto font_sandbox = runtime.createSandbox({4, 64});
    ASSERT_TRUE(font_sandbox);
    font_sandbox->enter(); // browser is mid-sandbox when preempted

    // ...and gets preempted by the FaaS process.
    scheduler.switchTo(faas);
    EXPECT_FALSE(ctx.enabled()); // the FaaS process is not sandboxed
    EXPECT_TRUE(
        std::holds_alternative<core::EmptyRegion>(
            ctx.region(core::kFirstExplicitRegion)));

    // The FaaS process runs its own multi-memory instance.
    sfi::MultiMemorySandbox instance(mmu, ctx, 2);
    ASSERT_TRUE(instance.valid());
    instance.enter();
    instance.store<std::uint32_t>(0, 0, 42);
    EXPECT_EQ(instance.load<std::uint32_t>(0, 0), 42u);
    instance.exit();

    // Back to the browser: still sandboxed, its region intact.
    scheduler.switchTo(0);
    EXPECT_TRUE(ctx.enabled());
    const auto &region = std::get<core::ExplicitDataRegion>(
        ctx.region(core::kFirstExplicitRegion));
    EXPECT_EQ(region.baseAddress, font_sandbox->backend().baseAddress());
    font_sandbox->exit();
}

TEST(Integration, NativeServerMediatesEverything)
{
    vm::VirtualClock clock;
    vm::Mmu mmu(clock);
    core::HfiContext ctx(clock);
    mpk::MpkDomainManager mpk_mgr(mmu);
    syscall::MiniKernel kernel(clock);

    nginx::ServerConfig config;
    config.protection = nginx::SessionProtection::Hfi;
    nginx::NginxServer server(mmu, ctx, mpk_mgr, kernel, config);
    server.addFile("/site/index.html", 8192, 5);

    const auto stats = server.serve("/site/index.html", 25);
    EXPECT_EQ(stats.requests, 25u);
    EXPECT_EQ(stats.bytesServed, 25u * 8192);

    // While serving, the crypto module entered a native sandbox per
    // call; a syscall from inside it would have been redirected.
    core::SandboxConfig native;
    native.isHybrid = false;
    native.exitHandler = 0x7000'0000;
    ctx.enter(native);
    syscall::HfiInterposer interposer(ctx, {syscall::kSysRead});
    syscall::SeccompData attempt;
    attempt.nr = syscall::kSysOpen; // not allowed for the crypto module
    EXPECT_EQ(interposer.onSyscall(attempt), syscall::Verdict::Deny);
    ctx.exit();

    // Virtual time moved (everything above was metered).
    EXPECT_GT(clock.now(), 0u);
}

TEST(Integration, WholeStackDeterminism)
{
    // Two identical universes must agree on every observable — the
    // property that makes the bench outputs reproducible.
    auto universe = [] {
        vm::VirtualClock clock;
        vm::Mmu mmu(clock);
        core::HfiContext ctx(clock);
        sfi::RuntimeConfig config;
        config.backend = sfi::BackendKind::Hfi;
        sfi::Runtime runtime(mmu, ctx, config);
        auto sandbox = runtime.createSandbox({4, 64});
        std::uint64_t sum = 0;
        sandbox->invoke([&](sfi::Sandbox &s) {
            const auto img = workloads::image::makeTestImage(64, 64, 1);
            const auto enc = workloads::image::encode(
                img, 64, 64, workloads::image::Quality::Best);
            sum = workloads::image::decodeSandboxed(s, enc);
        });
        return std::pair<std::uint64_t, std::uint64_t>(sum, clock.now());
    };
    const auto a = universe();
    const auto b = universe();
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
}

} // namespace
