/**
 * @file
 * Tests for the Mmu: the modeled mmap/mprotect/madvise syscalls, their
 * virtual-time costs, and the calibration identities behind the §6.1
 * heap-growth and §6.3.1 teardown experiments.
 */

#include <gtest/gtest.h>

#include "vm/mmu.h"

namespace
{

using namespace hfi::vm;

class MmuTest : public ::testing::Test
{
  protected:
    VirtualClock clock{3300};
    Mmu mmu{clock};
};

TEST_F(MmuTest, ReserveIsProtNone)
{
    auto base = mmu.mmapReserve(8ULL << 30);
    ASSERT_TRUE(base);
    EXPECT_EQ(mmu.access(*base, 8, false), AccessResult::NotMapped);
    EXPECT_EQ(mmu.stats().mmapCalls, 1u);
}

TEST_F(MmuTest, MprotectOpensAccess)
{
    auto base = mmu.mmapReserve(1 << 20);
    ASSERT_TRUE(base);
    mmu.mprotect(*base, 1 << 16, PageProt::ReadWrite);
    EXPECT_EQ(mmu.access(*base, 8, true), AccessResult::Ok);
    EXPECT_EQ(mmu.access(*base + (1 << 16), 8, false),
              AccessResult::NotMapped);
}

TEST_F(MmuTest, WriteToReadOnlyIsBadPermission)
{
    auto base = mmu.mmap(1 << 16, PageProt::Read);
    ASSERT_TRUE(base);
    EXPECT_EQ(mmu.access(*base, 8, false), AccessResult::Ok);
    EXPECT_EQ(mmu.access(*base, 8, true), AccessResult::BadPermission);
}

TEST_F(MmuTest, FetchNeedsExec)
{
    auto base = mmu.mmap(1 << 16, PageProt::ReadExec);
    ASSERT_TRUE(base);
    EXPECT_EQ(mmu.fetch(*base), AccessResult::Ok);
    auto data = mmu.mmap(1 << 16, PageProt::ReadWrite);
    ASSERT_TRUE(data);
    EXPECT_EQ(mmu.fetch(*data), AccessResult::BadPermission);
}

TEST_F(MmuTest, FirstTouchFaultsOnce)
{
    auto base = mmu.mmap(1 << 16, PageProt::ReadWrite);
    ASSERT_TRUE(base);
    EXPECT_EQ(mmu.stats().pageFaults, 0u);
    mmu.access(*base, 8, true);
    EXPECT_EQ(mmu.stats().pageFaults, 1u);
    mmu.access(*base + 16, 8, false);
    EXPECT_EQ(mmu.stats().pageFaults, 1u); // same page: no second fault
    mmu.access(*base + kPageSize, 8, false);
    EXPECT_EQ(mmu.stats().pageFaults, 2u);
}

TEST_F(MmuTest, StraddlingAccessTouchesBothPages)
{
    auto base = mmu.mmap(1 << 16, PageProt::ReadWrite);
    ASSERT_TRUE(base);
    mmu.access(*base + kPageSize - 4, 8, true);
    EXPECT_EQ(mmu.stats().pageFaults, 2u);
}

TEST_F(MmuTest, MunmapReleasesAndCharges)
{
    auto base = mmu.mmap(1 << 20, PageProt::ReadWrite);
    ASSERT_TRUE(base);
    const Cycles before = clock.now();
    EXPECT_TRUE(mmu.munmap(*base));
    EXPECT_GT(clock.now(), before); // shootdown cost charged
    EXPECT_EQ(mmu.access(*base, 8, false), AccessResult::NotMapped);
    EXPECT_FALSE(mmu.munmap(*base));
}

TEST_F(MmuTest, SyscallCostsAdvanceVirtualTime)
{
    const double t0 = clock.nowNs();
    mmu.mmapReserve(1 << 20);
    const double t1 = clock.nowNs();
    EXPECT_NEAR(t1 - t0,
                mmu.params().syscallFixedNs + mmu.params().mmapReserveNs,
                1.0);
}

TEST_F(MmuTest, MprotectCostScalesWithPages)
{
    auto base = mmu.mmapReserve(1 << 24);
    ASSERT_TRUE(base);
    const double t0 = clock.nowNs();
    mmu.mprotect(*base, 16 * kPageSize, PageProt::ReadWrite);
    const double one_grow = clock.nowNs() - t0;
    const double t1 = clock.nowNs();
    mmu.mprotect(*base, 256 * kPageSize, PageProt::ReadWrite);
    const double big_grow = clock.nowNs() - t1;
    EXPECT_GT(big_grow, one_grow);
    EXPECT_NEAR(big_grow - one_grow,
                240 * mmu.params().mprotectPerPageNs, 1.0);
}

TEST_F(MmuTest, HeapGrowthCalibration)
{
    // §6.1: growing a Wasm heap from one page to 4 GiB in 64 KiB
    // increments with mprotect() takes ~10.92 s. The per-grow cost here
    // must therefore be ~166 µs.
    auto base = mmu.mmapReserve(8ULL << 30);
    ASSERT_TRUE(base);
    const double t0 = clock.nowNs();
    mmu.mprotect(*base, 16 * kPageSize, PageProt::ReadWrite);
    const double per_grow_us = (clock.nowNs() - t0) / 1000.0;
    EXPECT_GT(per_grow_us, 140.0);
    EXPECT_LT(per_grow_us, 190.0);
}

TEST_F(MmuTest, MadviseDiscardsResidency)
{
    auto base = mmu.mmap(1 << 20, PageProt::ReadWrite);
    ASSERT_TRUE(base);
    for (unsigned i = 0; i < 16; ++i)
        mmu.access(*base + i * kPageSize, 8, true);
    mmu.madviseDontneed(*base, 1 << 20);
    EXPECT_EQ(mmu.stats().pagesDiscarded, 16u);
    // Accessing again re-faults.
    const auto faults = mmu.stats().pageFaults;
    mmu.access(*base, 8, false);
    EXPECT_EQ(mmu.stats().pageFaults, faults + 1);
}

TEST_F(MmuTest, StockTeardownCalibration)
{
    // §6.3.1: stock Wasmtime teardown (madvise of a heap whose workload
    // touched 16 pages) costs 25.7 µs.
    auto base = mmu.mmap(1 << 20, PageProt::ReadWrite);
    ASSERT_TRUE(base);
    for (unsigned i = 0; i < 16; ++i)
        mmu.access(*base + i * kPageSize, 8, true);
    const double t0 = clock.nowNs();
    mmu.madviseDontneed(*base, 1 << 16);
    const double us = (clock.nowNs() - t0) / 1000.0;
    EXPECT_GT(us, 23.0);
    EXPECT_LT(us, 28.0);
}

TEST_F(MmuTest, MadviseWalkCostScalesWithGuardSpan)
{
    // Batching a madvise across an 8 GiB guard region costs kernel page-
    // walk time even with nothing resident — the §6.3.1 penalty of
    // batching without HFI.
    auto base = mmu.mmapReserve(16ULL << 30);
    ASSERT_TRUE(base);
    const double t0 = clock.nowNs();
    mmu.madviseDontneed(*base, 8ULL << 30);
    const double guard_walk_us = (clock.nowNs() - t0) / 1000.0;
    // 4096 PMDs x ~1.95 ns each, plus the fixed syscall cost.
    EXPECT_GT(guard_walk_us, 8.0);
    EXPECT_LT(guard_walk_us, 14.0);
}

TEST_F(MmuTest, ExhaustionPropagates)
{
    VirtualClock small_clock;
    Mmu small(small_clock, 26);
    while (small.mmapReserve(1 << 20)) {
    }
    EXPECT_FALSE(small.mmapReserve(1 << 20).has_value());
}

} // namespace
