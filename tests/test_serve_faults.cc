/**
 * @file
 * Tests for the fault-injection and robustness layer: deterministic
 * fault schedules, per-exit-reason accounting through the real src/core
 * checker paths, retry/timeout/quarantine semantics, pool respawn
 * liveness, per-core breakdown consistency, and the closed-loop seed
 * compatibility switch.
 */

#include <gtest/gtest.h>

#include <map>

#include "serve/engine.h"
#include "serve/faults.h"
#include "serve/load_gen.h"

namespace
{

using namespace hfi;
using namespace hfi::serve;

Handler
smallHandler()
{
    return [](sfi::Sandbox &s, std::uint32_t seed) {
        for (int i = 0; i < 16; ++i)
            s.store<std::uint32_t>(64 + (i % 16) * 4, seed + i);
        s.chargeOps(2'000);
    };
}

/** A faulty-serving configuration with every robustness knob engaged. */
EngineConfig
faultyConfig(Scheme scheme, double rate, std::uint64_t seed = 7)
{
    EngineConfig ec;
    ec.workers = 2;
    ec.mode = LoadMode::OpenLoop;
    ec.requests = 400;
    ec.meanInterarrivalNs = 20'000.0;
    ec.seed = seed;
    ec.queueCapacity = 64;
    ec.workStealing = false;
    ec.worker.scheme = scheme;
    ec.worker.quantumNs = 0;
    ec.worker.poolSize = 2;
    ec.worker.respawnDelayNs = 50'000.0;
    ec.worker.requestTimeoutNs = 100'000.0;
    ec.worker.maxRetries = 2;
    ec.worker.retryBackoffNs = 10'000.0;
    ec.worker.faults.rate = rate;
    ec.worker.faults.stallNs = 500'000.0;
    return ec;
}

void
expectSameRobustness(const RobustnessStats &a, const RobustnessStats &b)
{
    EXPECT_EQ(a.faultsInjected, b.faultsInjected);
    EXPECT_EQ(a.exits, b.exits);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.timeouts, b.timeouts);
    EXPECT_EQ(a.quarantines, b.quarantines);
    EXPECT_EQ(a.respawns, b.respawns);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.poolWaits, b.poolWaits);
    EXPECT_EQ(a.served, b.served);
    EXPECT_EQ(a.shed, b.shed);
    for (unsigned i = 0; i < core::kNumExitReasons; ++i)
        EXPECT_EQ(a.exitsByReason[i], b.exitsByReason[i]);
}

// ---------------------------------------------------------------------
// FaultInjector: the decision stream.

TEST(FaultInjector, DecisionIsPureFunctionOfSeedIdAttempt)
{
    FaultConfig fc;
    fc.rate = 0.3;
    const FaultInjector a(fc, 99);
    const FaultInjector b(fc, 99);
    for (std::uint64_t id = 0; id < 200; ++id)
        for (unsigned attempt = 0; attempt < 3; ++attempt)
            EXPECT_EQ(a.decide(id, attempt), b.decide(id, attempt));
}

TEST(FaultInjector, DifferentSeedsGiveDifferentSchedules)
{
    FaultConfig fc;
    fc.rate = 0.3;
    const FaultInjector a(fc, 1);
    const FaultInjector b(fc, 2);
    unsigned differing = 0;
    for (std::uint64_t id = 0; id < 400; ++id)
        differing += a.decide(id, 0) != b.decide(id, 0);
    EXPECT_GT(differing, 0u);
}

TEST(FaultInjector, RateControlsInjectionFraction)
{
    FaultConfig fc;
    fc.rate = 0.1;
    const FaultInjector inj(fc, 5);
    unsigned injected = 0;
    const unsigned n = 10'000;
    for (std::uint64_t id = 0; id < n; ++id)
        injected += inj.decide(id, 0) != FaultKind::None;
    // A 10% Bernoulli over 10k draws: expect 1000 +- a generous 5 sigma.
    EXPECT_GT(injected, 850u);
    EXPECT_LT(injected, 1150u);
}

TEST(FaultInjector, RateZeroNeverInjects)
{
    FaultConfig fc;
    fc.rate = 0.0;
    const FaultInjector inj(fc, 5);
    for (std::uint64_t id = 0; id < 1000; ++id)
        EXPECT_EQ(inj.decide(id, 0), FaultKind::None);
}

TEST(FaultInjector, RetriesDrawIndependentDecisions)
{
    FaultConfig fc;
    fc.rate = 0.5;
    const FaultInjector inj(fc, 11);
    // At 50% a faulted first attempt's retry must not be doomed to the
    // same fate: some id faulted at attempt 0 runs clean at attempt 1.
    bool recovered = false;
    for (std::uint64_t id = 0; id < 200 && !recovered; ++id)
        recovered = inj.decide(id, 0) != FaultKind::None &&
                    inj.decide(id, 1) == FaultKind::None;
    EXPECT_TRUE(recovered);
}

// ---------------------------------------------------------------------
// FaultInjector::raise — the real checker paths and the MSR.

class RaiseTest : public ::testing::Test
{
  protected:
    vm::VirtualClock clock;
    core::HfiContext ctx{clock};
    FaultConfig fc;

    FaultInjector
    injector()
    {
        fc.rate = 1.0;
        return FaultInjector(fc, 3);
    }
};

TEST_F(RaiseTest, DataOobRecordsDataBoundsViolation)
{
    const auto reason = injector().raise(FaultKind::DataOob, ctx);
    EXPECT_EQ(reason, core::ExitReason::DataBoundsViolation);
    EXPECT_EQ(ctx.exitReason(), core::ExitReason::DataBoundsViolation);
    EXPECT_FALSE(ctx.enabled());
}

TEST_F(RaiseTest, CodeOobRecordsCodeBoundsViolation)
{
    const auto reason = injector().raise(FaultKind::CodeOob, ctx);
    EXPECT_EQ(reason, core::ExitReason::CodeBoundsViolation);
    EXPECT_EQ(ctx.exitReason(), core::ExitReason::CodeBoundsViolation);
}

TEST_F(RaiseTest, HmovOverflowRecordsOverflow)
{
    const auto reason = injector().raise(FaultKind::HmovOverflow, ctx);
    EXPECT_EQ(reason, core::ExitReason::HmovOverflow);
    EXPECT_EQ(ctx.exitReason(), core::ExitReason::HmovOverflow);
}

TEST_F(RaiseTest, SyscallStormInNativeSandboxRedirects)
{
    core::SandboxConfig sc;
    sc.isHybrid = false;
    sc.exitHandler = 0x7000'0000;
    ctx.enter(sc);
    const auto reason = injector().raise(FaultKind::SyscallStorm, ctx);
    // §4.4: the syscall is converted into a jump to the exit handler.
    EXPECT_EQ(reason, core::ExitReason::Syscall);
    EXPECT_EQ(ctx.exitReason(), core::ExitReason::Syscall);
    EXPECT_FALSE(ctx.enabled());
}

TEST_F(RaiseTest, SyscallStormOutsideHfiStillRecordsSyscall)
{
    const auto reason = injector().raise(FaultKind::SyscallStorm, ctx);
    EXPECT_EQ(reason, core::ExitReason::Syscall);
}

TEST_F(RaiseTest, StallAndPoisonAreNotExits)
{
    EXPECT_EQ(injector().raise(FaultKind::Stall, ctx),
              core::ExitReason::None);
    EXPECT_EQ(injector().raise(FaultKind::Poison, ctx),
              core::ExitReason::None);
    EXPECT_FALSE(faultRaisesExit(FaultKind::Stall));
    EXPECT_FALSE(faultRaisesExit(FaultKind::Poison));
    EXPECT_TRUE(faultRaisesExit(FaultKind::DataOob));
    EXPECT_TRUE(faultRaisesExit(FaultKind::SyscallStorm));
}

// ---------------------------------------------------------------------
// Engine-level robustness semantics.

TEST(ServeFaults, FaultFreeRunsMatchStockEngine)
{
    // Rate 0 with the robustness knobs *off* must reproduce the stock
    // engine's result exactly — the bugfix-PR non-regression contract.
    EngineConfig stock;
    stock.workers = 2;
    stock.requests = 200;
    stock.meanInterarrivalNs = 20'000.0;
    stock.seed = 13;

    EngineConfig knobs = stock;
    knobs.worker.faults.rate = 0.0;
    knobs.worker.maxRetries = 3; // irrelevant without faults/timeouts

    const auto a = ServeEngine(stock, smallHandler()).run();
    const auto b = ServeEngine(knobs, smallHandler()).run();
    EXPECT_EQ(a.served, b.served);
    EXPECT_EQ(a.durationNs, b.durationNs);
    EXPECT_EQ(a.latencies.values(), b.latencies.values());
    EXPECT_EQ(b.robustness.exits, 0u);
    EXPECT_EQ(b.robustness.retries, 0u);
}

TEST(ServeFaults, SameSeedReproducesBitForBit)
{
    for (Scheme scheme : {Scheme::Unsafe, Scheme::HfiNative}) {
        const auto a =
            ServeEngine(faultyConfig(scheme, 0.08), smallHandler()).run();
        const auto b =
            ServeEngine(faultyConfig(scheme, 0.08), smallHandler()).run();
        EXPECT_EQ(a.served, b.served);
        EXPECT_EQ(a.durationNs, b.durationNs);
        EXPECT_EQ(a.latencies.values(), b.latencies.values());
        expectSameRobustness(a.robustness, b.robustness);
    }
}

TEST(ServeFaults, DifferentSeedsDiverge)
{
    const auto a =
        ServeEngine(faultyConfig(Scheme::HfiNative, 0.08, 7), smallHandler())
            .run();
    const auto b =
        ServeEngine(faultyConfig(Scheme::HfiNative, 0.08, 8), smallHandler())
            .run();
    EXPECT_NE(a.latencies.values(), b.latencies.values());
}

TEST(ServeFaults, ExitsAreAccountedByReason)
{
    const auto res =
        ServeEngine(faultyConfig(Scheme::HfiNative, 0.15), smallHandler())
            .run();
    EXPECT_GT(res.robustness.exits, 0u);
    std::uint64_t byReason = 0;
    for (unsigned i = 0; i < core::kNumExitReasons; ++i)
        byReason += res.robustness.exitsByReason[i];
    EXPECT_EQ(byReason, res.robustness.exits);
    // The injected mix must surface each HFI-exit family through the
    // real checkers at this rate (60 expected faults).
    EXPECT_GT(res.robustness.exitsByReason[static_cast<unsigned>(
                  core::ExitReason::DataBoundsViolation)],
              0u);
    EXPECT_GT(res.robustness.exitsByReason[static_cast<unsigned>(
                  core::ExitReason::CodeBoundsViolation)],
              0u);
    EXPECT_GT(res.robustness.exitsByReason[static_cast<unsigned>(
                  core::ExitReason::Syscall)],
              0u);
    EXPECT_GT(res.robustness.exitsByReason[static_cast<unsigned>(
                  core::ExitReason::HmovOverflow)],
              0u);
}

TEST(ServeFaults, EveryRequestIsServedFailedOrShed)
{
    for (double rate : {0.02, 0.1, 0.3}) {
        const auto cfg = faultyConfig(Scheme::HfiNative, rate);
        const auto res = ServeEngine(cfg, smallHandler()).run();
        EXPECT_EQ(res.served + res.robustness.failed + res.shed,
                  cfg.requests)
            << "rate " << rate;
        EXPECT_EQ(res.robustness.served, res.served);
    }
}

TEST(ServeFaults, RetriesRecoverMostFaultedRequests)
{
    const auto res =
        ServeEngine(faultyConfig(Scheme::HfiNative, 0.1), smallHandler())
            .run();
    EXPECT_GT(res.robustness.retries, 0u);
    // P(three faulted attempts) = rate^3 = 0.1% — with 400 requests,
    // nearly everything must come back on retry.
    EXPECT_LT(res.robustness.failed, 5u);
    EXPECT_GT(res.served, 390u);
}

TEST(ServeFaults, QuarantineAlwaysRespawnsAndPoolNeverDrains)
{
    // A hostile rate: 30% of requests fault; stalls wedge instances and
    // poisons corrupt them. The pool must quarantine and respawn without
    // ever rejecting a dispatch.
    const auto res =
        ServeEngine(faultyConfig(Scheme::HfiNative, 0.3), smallHandler())
            .run();
    EXPECT_GT(res.robustness.quarantines, 0u);
    EXPECT_GT(res.robustness.respawns, 0u);
    EXPECT_EQ(res.rejected, 0u);
    // Every quarantined slot is eventually respawned (some may still be
    // pending at shutdown, never more than the pool can hold).
    EXPECT_LE(res.robustness.respawns, res.robustness.quarantines);
}

TEST(ServeFaults, TimeoutsFireOnStalledRequests)
{
    const auto res =
        ServeEngine(faultyConfig(Scheme::Unsafe, 0.3), smallHandler()).run();
    // Stall is 1/16 of the mix at 30% over 400 requests: expect several
    // watchdog kills, each quarantining the wedged instance.
    EXPECT_GT(res.robustness.timeouts, 0u);
    EXPECT_GE(res.robustness.quarantines, res.robustness.timeouts);
}

TEST(ServeFaults, PerCoreBreakdownSumsToTotals)
{
    const auto res =
        ServeEngine(faultyConfig(Scheme::HfiNative, 0.1), smallHandler())
            .run();
    ASSERT_EQ(res.perCore.size(), 2u);
    RobustnessStats sum;
    for (const auto &core : res.perCore)
        sum.merge(core);
    expectSameRobustness(sum, res.robustness);
    EXPECT_EQ(sum.shed, res.shed);
    EXPECT_EQ(sum.served, res.served);
}

TEST(ServeFaults, ShedAccountingHasOneSourceOfTruth)
{
    // Overload a tiny bounded queue so shedding definitely happens, and
    // check the engine total equals the per-shard sum (the satellite-1
    // double-accounting fix).
    EngineConfig ec;
    ec.workers = 2;
    ec.requests = 300;
    ec.meanInterarrivalNs = 2'000.0;
    ec.queueCapacity = 4;
    ec.workStealing = false;
    ec.seed = 3;
    const auto res = ServeEngine(ec, smallHandler()).run();
    EXPECT_GT(res.shed, 0u);
    std::size_t perCore = 0;
    for (const auto &core : res.perCore)
        perCore += core.shed;
    EXPECT_EQ(perCore, res.shed);
    EXPECT_EQ(res.served + res.shed, 300u);
}

TEST(ServeFaults, FaultsRideTheSchedulerSignalPath)
{
    // With scheduler dispatch on, failed attempts return to the server
    // process via deliverFault (the §3.3.2 SIGSEGV delivery), which is
    // costlier than a plain switch; the run must still be deterministic.
    auto cfg = faultyConfig(Scheme::HfiNative, 0.2);
    cfg.worker.dispatchViaScheduler = true;
    const auto a = ServeEngine(cfg, smallHandler()).run();
    const auto b = ServeEngine(cfg, smallHandler()).run();
    EXPECT_GT(a.robustness.exits, 0u);
    EXPECT_EQ(a.durationNs, b.durationNs);
    expectSameRobustness(a.robustness, b.robustness);
}

// ---------------------------------------------------------------------
// Closed-loop seeding (satellite 2).

TEST(ClosedLoopSeeds, LegacyModeIgnoresEngineSeed)
{
    ClosedLoopSource a(4, 16, 0.0, /*seed=*/1, /*legacy_seeds=*/true);
    ClosedLoopSource b(4, 16, 0.0, /*seed=*/999, /*legacy_seeds=*/true);
    for (unsigned i = 0; i < 16; ++i) {
        auto ra = a.next();
        auto rb = b.next();
        ASSERT_TRUE(ra && rb);
        EXPECT_EQ(ra->seed, rb->seed);
        EXPECT_EQ(ra->seed, static_cast<std::uint32_t>(i) * 2654435761u);
        a.onComplete(*ra, 1.0);
        b.onComplete(*rb, 1.0);
    }
}

TEST(ClosedLoopSeeds, MixedModeVariesWithEngineSeed)
{
    ClosedLoopSource a(4, 16, 0.0, /*seed=*/1, /*legacy_seeds=*/false);
    ClosedLoopSource b(4, 16, 0.0, /*seed=*/999, /*legacy_seeds=*/false);
    unsigned differing = 0;
    for (unsigned i = 0; i < 16; ++i) {
        auto ra = a.next();
        auto rb = b.next();
        ASSERT_TRUE(ra && rb);
        differing += ra->seed != rb->seed;
        EXPECT_EQ(ra->seed, mixSeed(1, i));
        a.onComplete(*ra, 1.0);
        b.onComplete(*rb, 1.0);
    }
    EXPECT_GT(differing, 0u);
}

TEST(ClosedLoopSeeds, MixedModeMatchesOpenLoopConvention)
{
    // Open-loop request seeds are mixSeed(engine_seed, id); closed loop
    // in non-legacy mode must use the identical convention so a handler
    // sees the same work distribution under either source.
    OpenLoopPoissonSource open(8, 1'000.0, /*seed=*/77, 0.0);
    ClosedLoopSource closed(8, 8, 0.0, /*seed=*/77, /*legacy_seeds=*/false);
    for (unsigned i = 0; i < 8; ++i) {
        auto ro = open.next();
        auto rc = closed.next();
        ASSERT_TRUE(ro && rc);
        EXPECT_EQ(ro->seed, rc->seed);
    }
}

} // namespace
