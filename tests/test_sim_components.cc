/**
 * @file
 * Tests for the µ-architectural components: cache (LRU, flush, the
 * non-perturbing probe the Spectre measurement uses), TLB, and the
 * branch predictors (2-bit PHT training — the attack's lever — BTB,
 * and RSB).
 */

#include <gtest/gtest.h>

#include "sim/branch_predictor.h"
#include "sim/cache.h"
#include "sim/tlb.h"

namespace
{

using namespace hfi::sim;

TEST(Cache, MissThenHit)
{
    Cache cache;
    const auto miss = cache.access(0x1000);
    EXPECT_FALSE(miss.hit);
    EXPECT_EQ(miss.latency, cache.config().missLatency);
    const auto hit = cache.access(0x1000);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.latency, cache.config().hitLatency);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(Cache, SameLineSharesEntry)
{
    Cache cache;
    cache.access(0x1000);
    EXPECT_TRUE(cache.access(0x103f).hit); // same 64 B line
    EXPECT_FALSE(cache.access(0x1040).hit);
}

TEST(Cache, ProbeDoesNotPerturb)
{
    Cache cache;
    EXPECT_FALSE(cache.probe(0x1000).hit);
    EXPECT_FALSE(cache.contains(0x1000)); // probe did not fill
    cache.access(0x1000);
    EXPECT_TRUE(cache.probe(0x1000).hit);
    EXPECT_EQ(cache.hits(), 0u); // probes aren't counted as accesses
}

TEST(Cache, FlushEvictsLine)
{
    Cache cache;
    cache.access(0x2000);
    ASSERT_TRUE(cache.contains(0x2000));
    cache.flush(0x2010); // same line, any offset
    EXPECT_FALSE(cache.contains(0x2000));
}

TEST(Cache, LruEvictionWithinSet)
{
    // 8-way: the 9th distinct tag mapping to one set evicts the LRU.
    CacheConfig config;
    Cache cache(config);
    const unsigned sets = static_cast<unsigned>(
        config.sizeBytes / (config.ways * config.lineBytes));
    const std::uint64_t set_stride =
        static_cast<std::uint64_t>(sets) * config.lineBytes;

    for (unsigned way = 0; way < 9; ++way)
        cache.access(0x10000 + way * set_stride);
    EXPECT_FALSE(cache.contains(0x10000)); // oldest evicted
    EXPECT_TRUE(cache.contains(0x10000 + 8 * set_stride));
    EXPECT_TRUE(cache.contains(0x10000 + 1 * set_stride));
}

TEST(Cache, TouchRefreshesLru)
{
    CacheConfig config;
    Cache cache(config);
    const unsigned sets = static_cast<unsigned>(
        config.sizeBytes / (config.ways * config.lineBytes));
    const std::uint64_t set_stride =
        static_cast<std::uint64_t>(sets) * config.lineBytes;

    for (unsigned way = 0; way < 8; ++way)
        cache.access(0x10000 + way * set_stride);
    cache.access(0x10000); // refresh way 0
    cache.access(0x10000 + 8 * set_stride);
    EXPECT_TRUE(cache.contains(0x10000));
    EXPECT_FALSE(cache.contains(0x10000 + 1 * set_stride)); // now LRU
}

TEST(Cache, FlushAll)
{
    Cache cache;
    cache.access(0x1000);
    cache.access(0x2000);
    cache.flushAll();
    EXPECT_FALSE(cache.contains(0x1000));
    EXPECT_FALSE(cache.contains(0x2000));
}

TEST(Tlb, MissFillsHitRefreshes)
{
    Tlb tlb;
    EXPECT_FALSE(tlb.access(0x1234).hit);
    EXPECT_TRUE(tlb.access(0x1000).hit); // same 4 KiB page
    EXPECT_FALSE(tlb.access(0x2000).hit);
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 2u);
}

TEST(Tlb, CapacityEviction)
{
    TlbConfig config;
    config.entries = 4;
    Tlb tlb(config);
    for (std::uint64_t p = 0; p < 5; ++p)
        tlb.access(p << 12);
    EXPECT_FALSE(tlb.contains(0));           // LRU evicted
    EXPECT_TRUE(tlb.contains(4ULL << 12));
}

TEST(Tlb, FlushAll)
{
    Tlb tlb;
    tlb.access(0x5000);
    tlb.flushAll();
    EXPECT_FALSE(tlb.contains(0x5000));
}

TEST(Predictor, PhtTrainsTowardTaken)
{
    BranchPredictor bp;
    const std::uint64_t pc = 0x400100;
    // Counters start weakly-not-taken.
    EXPECT_FALSE(bp.predictDirection(pc));
    bp.updateDirection(pc, true);
    bp.updateDirection(pc, true);
    EXPECT_TRUE(bp.predictDirection(pc));
    // Hysteresis: one not-taken does not flip a strongly-taken counter.
    bp.updateDirection(pc, true);
    bp.updateDirection(pc, false);
    EXPECT_TRUE(bp.predictDirection(pc));
    bp.updateDirection(pc, false);
    bp.updateDirection(pc, false);
    EXPECT_FALSE(bp.predictDirection(pc));
}

TEST(Predictor, PhtIsTheSpectreTrainingLever)
{
    // The attack's exact sequence: repeated not-taken outcomes drive
    // the bounds-check branch to predict not-taken (fall into the
    // access) even when the attacker's input would take it.
    BranchPredictor bp;
    const std::uint64_t branch_pc = 0x400200;
    for (int i = 0; i < 8; ++i)
        bp.updateDirection(branch_pc, false);
    EXPECT_FALSE(bp.predictDirection(branch_pc));
}

TEST(Predictor, BtbStoresTargetsPerPc)
{
    BranchPredictor bp;
    EXPECT_EQ(bp.predictTarget(0x400100), 0u);
    bp.updateTarget(0x400100, 0x500000);
    EXPECT_EQ(bp.predictTarget(0x400100), 0x500000u);
    // A different PC (same set) must not alias to a wrong prediction.
    bp.updateTarget(0x400100 + 4 * 512, 0x600000);
    EXPECT_EQ(bp.predictTarget(0x400100), 0u); // evicted, not aliased
}

TEST(Predictor, RsbLifo)
{
    BranchPredictor bp;
    bp.pushReturn(0x111);
    bp.pushReturn(0x222);
    EXPECT_EQ(bp.popReturn(), 0x222u);
    EXPECT_EQ(bp.popReturn(), 0x111u);
    EXPECT_EQ(bp.popReturn(), 0u); // empty
}

TEST(Predictor, RsbWrapsAtDepth)
{
    PredictorConfig config;
    config.rsbDepth = 4;
    BranchPredictor bp(config);
    for (std::uint64_t i = 1; i <= 6; ++i)
        bp.pushReturn(i * 0x100);
    // The two oldest entries were overwritten.
    EXPECT_EQ(bp.popReturn(), 0x600u);
    EXPECT_EQ(bp.popReturn(), 0x500u);
    EXPECT_EQ(bp.popReturn(), 0x400u);
    EXPECT_EQ(bp.popReturn(), 0x300u);
}

} // namespace
