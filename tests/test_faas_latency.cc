/**
 * @file
 * Tests for LatencyRecorder's nearest-rank percentile: pinned against a
 * brute-force reference over small sample counts, plus the edge cases
 * the previous round-half-up formula got wrong.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "faas/latency.h"

namespace
{

using hfi::faas::LatencyRecorder;

/**
 * Brute-force nearest-rank reference: the smallest sorted sample whose
 * 1-based rank r satisfies 100 * r / n >= p — i.e. at least a p-fraction
 * of the distribution is at or below it. Computed with exact integer
 * arithmetic (p scaled by 10 to carry one decimal digit).
 */
double
referencePercentile(std::vector<double> sorted, unsigned p_times_10)
{
    std::sort(sorted.begin(), sorted.end());
    const std::size_t n = sorted.size();
    for (std::size_t r = 1; r <= n; ++r) {
        // rank r covers fraction r/n; compare r/n >= p/1000 exactly.
        if (r * 1000 >= static_cast<std::size_t>(p_times_10) * n)
            return sorted[r - 1];
    }
    return sorted[n - 1];
}

LatencyRecorder
record(const std::vector<double> &samples)
{
    LatencyRecorder rec;
    for (double s : samples)
        rec.add(s);
    return rec;
}

TEST(LatencyPercentile, MatchesBruteForceForSmallN)
{
    // Every n in 1..8 with distinct ascending samples, every percentile
    // the repo reports plus the edges.
    const unsigned kPs[] = {0, 100, 250, 500, 750, 950, 990, 999, 1000};
    for (std::size_t n = 1; n <= 8; ++n) {
        std::vector<double> samples;
        for (std::size_t i = 0; i < n; ++i)
            samples.push_back(10.0 * static_cast<double>(i + 1));
        const auto rec = record(samples);
        for (unsigned p10 : kPs) {
            const double p = static_cast<double>(p10) / 10.0;
            EXPECT_EQ(rec.percentile(p), referencePercentile(samples, p10))
                << "n=" << n << " p=" << p;
        }
    }
}

TEST(LatencyPercentile, MedianOfTwoIsTheLowerSample)
{
    // The old +0.5 rounding returned the max here.
    const auto rec = record({10.0, 20.0});
    EXPECT_EQ(rec.percentile(50), 10.0);
}

TEST(LatencyPercentile, ZeroIsTheMinimumHundredTheMaximum)
{
    const auto rec = record({30.0, 10.0, 20.0, 40.0});
    EXPECT_EQ(rec.percentile(0), 10.0);
    EXPECT_EQ(rec.percentile(100), 40.0);
}

TEST(LatencyPercentile, ExactRankBoundariesDoNotOvershoot)
{
    // p95 over 20 samples: 0.95 * 20 = 19 exactly in theory, a hair
    // above 19 in floating point; the rank must stay 19, not ceil to 20.
    std::vector<double> samples;
    for (int i = 1; i <= 20; ++i)
        samples.push_back(static_cast<double>(i));
    const auto rec = record(samples);
    EXPECT_EQ(rec.percentile(95), 19.0);
    EXPECT_EQ(rec.percentile(50), 10.0);
    EXPECT_EQ(rec.percentile(5), 1.0);
}

TEST(LatencyPercentile, PercentilesStructAgreesWithPercentile)
{
    std::vector<double> samples;
    for (int i = 0; i < 1000; ++i)
        samples.push_back(static_cast<double>((i * 7919) % 1000));
    const auto rec = record(samples);
    const auto ps = rec.percentiles();
    EXPECT_EQ(ps.p50, rec.percentile(50));
    EXPECT_EQ(ps.p95, rec.percentile(95));
    EXPECT_EQ(ps.p99, rec.percentile(99));
    EXPECT_EQ(ps.p999, rec.percentile(99.9));
}

TEST(LatencyPercentile, EmptyRecorderReportsZero)
{
    const LatencyRecorder rec;
    EXPECT_EQ(rec.percentile(50), 0.0);
    EXPECT_EQ(rec.percentiles().p99, 0.0);
    EXPECT_EQ(rec.mean(), 0.0);
}

TEST(LatencyPercentile, SingleSampleIsEveryPercentile)
{
    const auto rec = record({42.0});
    for (double p : {0.0, 50.0, 95.0, 99.0, 99.9, 100.0})
        EXPECT_EQ(rec.percentile(p), 42.0);
}

} // namespace
