/**
 * @file
 * Tests for the four isolation backends: enforcement semantics (precise
 * traps vs silent wrapping), address-space footprints, growth costs,
 * and steady-state cost tables — the behavioural contrasts of §2/Fig 3.
 */

#include <gtest/gtest.h>

#include <memory>

#include "sfi/bounds_check_backend.h"
#include "sfi/guard_page_backend.h"
#include "sfi/hfi_backend.h"
#include "sfi/linear_memory.h"
#include "sfi/mask_backend.h"
#include "vm/mmu.h"

namespace
{

using namespace hfi;
using namespace hfi::sfi;

class BackendTest : public ::testing::Test
{
  protected:
    std::unique_ptr<IsolationBackend>
    make(BackendKind kind)
    {
        switch (kind) {
          case BackendKind::GuardPages:
            return std::make_unique<GuardPageBackend>(mmu);
          case BackendKind::BoundsCheck:
            return std::make_unique<BoundsCheckBackend>(mmu);
          case BackendKind::Mask:
            return std::make_unique<MaskBackend>(mmu);
          case BackendKind::Hfi:
            return std::make_unique<HfiBackend>(mmu, ctx);
        }
        return nullptr;
    }

    vm::VirtualClock clock;
    vm::Mmu mmu{clock};
    core::HfiContext ctx{clock};
};

/** Enforcement semantics shared by the trapping backends. */
class TrappingBackendTest
    : public BackendTest,
      public ::testing::WithParamInterface<BackendKind>
{
};

TEST_P(TrappingBackendTest, InBoundsPassesOutOfBoundsTraps)
{
    auto backend = make(GetParam());
    ASSERT_TRUE(backend->create(2, 16));
    LinearMemory mem(2, 16);

    EXPECT_EQ(backend->checkAccess(0, 8, false, mem).outcome,
              AccessOutcome::Ok);
    EXPECT_EQ(backend->checkAccess(2 * kWasmPageSize - 8, 8, true, mem)
                  .outcome,
              AccessOutcome::Ok);
    // One byte past the accessible size: precise trap.
    EXPECT_EQ(backend->checkAccess(2 * kWasmPageSize - 7, 8, false, mem)
                  .outcome,
              AccessOutcome::Trap);
    EXPECT_EQ(backend->checkAccess(2 * kWasmPageSize, 1, false, mem)
                  .outcome,
              AccessOutcome::Trap);
    // Far out of bounds.
    EXPECT_EQ(backend->checkAccess(1ULL << 33, 8, true, mem).outcome,
              AccessOutcome::Trap);
}

TEST_P(TrappingBackendTest, GrowExtendsTheAccessibleRange)
{
    auto backend = make(GetParam());
    ASSERT_TRUE(backend->create(1, 16));
    LinearMemory mem(1, 16);
    EXPECT_EQ(backend->checkAccess(kWasmPageSize, 8, false, mem).outcome,
              AccessOutcome::Trap);
    mem.grow(1);
    backend->grow(1, 2);
    EXPECT_EQ(backend->checkAccess(kWasmPageSize, 8, false, mem).outcome,
              AccessOutcome::Ok);
}

INSTANTIATE_TEST_SUITE_P(Kinds, TrappingBackendTest,
                         ::testing::Values(BackendKind::GuardPages,
                                           BackendKind::BoundsCheck,
                                           BackendKind::Hfi),
                         [](const auto &info) {
                             return std::string(
                                 backendKindName(info.param)) == "guard-pages"
                                        ? "GuardPages"
                                    : info.param == BackendKind::BoundsCheck
                                        ? "BoundsCheck"
                                        : "Hfi";
                         });

TEST_F(BackendTest, GuardPagesReserve8GiB)
{
    // §2: 4 GiB linear memory + 4 GiB guard, reserved even for a tiny
    // heap.
    GuardPageBackend backend(mmu);
    ASSERT_TRUE(backend.create(1, 65536));
    EXPECT_EQ(backend.reservedVaBytes(), 8ULL << 30);
    EXPECT_EQ(mmu.addressSpace().reservedBytes(), 8ULL << 30);
}

TEST_F(BackendTest, BoundsAndHfiReserveOnlyTheHeap)
{
    BoundsCheckBackend bounds(mmu);
    ASSERT_TRUE(bounds.create(1, 65536));
    EXPECT_EQ(bounds.reservedVaBytes(), 4ULL << 30);

    HfiBackend hfi_backend(mmu, ctx);
    ASSERT_TRUE(hfi_backend.create(1, 16384)); // 1 GiB max
    EXPECT_EQ(hfi_backend.reservedVaBytes(), 1ULL << 30);
}

TEST_F(BackendTest, GuardPageGrowPaysMprotect)
{
    GuardPageBackend backend(mmu);
    ASSERT_TRUE(backend.create(1, 65536));
    const auto calls = mmu.stats().mprotectCalls;
    const double t0 = clock.nowNs();
    backend.grow(1, 2);
    EXPECT_EQ(mmu.stats().mprotectCalls, calls + 1);
    // §6.1: ~166 µs per 64 KiB grow.
    EXPECT_GT(clock.nowNs() - t0, 100'000.0);
}

TEST_F(BackendTest, HfiGrowIsRegisterUpdate)
{
    HfiBackend backend(mmu, ctx);
    ASSERT_TRUE(backend.create(1, 65536));
    const auto mprotects = mmu.stats().mprotectCalls;
    const double t0 = clock.nowNs();
    backend.grow(1, 2);
    EXPECT_EQ(mmu.stats().mprotectCalls, mprotects); // no syscall at all
    // §6.1: "HFI can just update a region's bound registers".
    EXPECT_LT(clock.nowNs() - t0, 100.0);
}

TEST_F(BackendTest, HfiTrapReasonIsBoundsViolation)
{
    HfiBackend backend(mmu, ctx);
    ASSERT_TRUE(backend.create(1, 16));
    LinearMemory mem(1, 16);
    ASSERT_EQ(backend.checkAccess(kWasmPageSize + 5, 4, false, mem).outcome,
              AccessOutcome::Trap);
    EXPECT_EQ(backend.lastTrapReason(),
              core::ExitReason::HmovBoundsViolation);
}

TEST_F(BackendTest, HfiEnforcementMatchesRegionRegister)
{
    HfiBackend backend(mmu, ctx);
    ASSERT_TRUE(backend.create(2, 16));
    const auto &region = std::get<core::ExplicitDataRegion>(
        ctx.region(core::kFirstExplicitRegion));
    EXPECT_EQ(region.baseAddress, backend.baseAddress());
    EXPECT_EQ(region.bound, 2 * kWasmPageSize);
    EXPECT_TRUE(region.isLargeRegion);
}

TEST_F(BackendTest, MaskWrapsInsteadOfTrapping)
{
    // §2: masking converts out-of-bounds accesses into silent
    // corruption — the precise-trap defect the paper rules it out for.
    MaskBackend backend(mmu);
    ASSERT_TRUE(backend.create(4, 16));
    LinearMemory mem(4, 16);

    auto ok = backend.checkAccess(100, 8, false, mem);
    EXPECT_EQ(ok.outcome, AccessOutcome::Ok);
    EXPECT_EQ(ok.offset, 100u);

    auto wrapped =
        backend.checkAccess(4 * kWasmPageSize + 100, 8, true, mem);
    EXPECT_EQ(wrapped.outcome, AccessOutcome::Wrapped);
    EXPECT_LT(wrapped.offset + 8, mem.size());
}

TEST_F(BackendTest, SteadyStateCostTables)
{
    GuardPageBackend guard(mmu);
    BoundsCheckBackend bounds(mmu);
    HfiBackend hfi_backend(mmu, ctx);

    // Guard pages: no per-access check, one pinned register (§6.1's
    // 2.25%). Bounds: compare+branch per access, two pinned registers
    // (2.40%). HFI: neither.
    EXPECT_EQ(guard.steadyStateCosts().loadExtraMilli, 0u);
    EXPECT_GT(guard.steadyStateCosts().opPressureMilli, 0u);
    EXPECT_GT(bounds.steadyStateCosts().loadExtraMilli, 0u);
    EXPECT_GT(bounds.steadyStateCosts().opPressureMilli,
              guard.steadyStateCosts().opPressureMilli);
    EXPECT_EQ(hfi_backend.steadyStateCosts().loadExtraMilli, 0u);
    EXPECT_EQ(hfi_backend.steadyStateCosts().opPressureMilli, 0u);
    EXPECT_GT(hfi_backend.steadyStateCosts().icacheMilliPerAccess, 0u);
}

TEST_F(BackendTest, HfiTransitionsDriveContext)
{
    HfiBackend backend(mmu, ctx);
    ASSERT_TRUE(backend.create(1, 16));
    EXPECT_FALSE(ctx.enabled());
    backend.enterSandbox();
    EXPECT_TRUE(ctx.enabled());
    EXPECT_TRUE(ctx.config().isHybrid);
    EXPECT_TRUE(ctx.config().isSerialized);
    backend.exitSandbox();
    EXPECT_FALSE(ctx.enabled());
}

TEST_F(BackendTest, HfiSwitchOnExitConfig)
{
    HfiBackendConfig config;
    config.switchOnExit = true;
    HfiBackend backend(mmu, ctx, config);
    ASSERT_TRUE(backend.create(1, 16));

    // The runtime sandbox wraps the child (§3.4).
    core::SandboxConfig runtime_cfg;
    runtime_cfg.isHybrid = true;
    runtime_cfg.isSerialized = true;
    ctx.enter(runtime_cfg);

    backend.enterSandbox();
    EXPECT_TRUE(ctx.config().switchOnExit);
    backend.exitSandbox();
    EXPECT_TRUE(ctx.enabled()); // back in the runtime sandbox
    EXPECT_TRUE(ctx.lastExitSwitched());
}

TEST_F(BackendTest, CreateFailsWhenAddressSpaceExhausted)
{
    vm::VirtualClock small_clock;
    vm::Mmu small_mmu(small_clock, 32); // 4 GiB space
    GuardPageBackend backend(small_mmu);
    EXPECT_FALSE(backend.create(1, 65536)); // needs 8 GiB
}

TEST_F(BackendTest, DestroyReleasesAddressSpace)
{
    {
        GuardPageBackend backend(mmu);
        ASSERT_TRUE(backend.create(1, 65536));
        EXPECT_GT(mmu.addressSpace().reservedBytes(), 0u);
        backend.destroy();
        EXPECT_EQ(mmu.addressSpace().reservedBytes(), 0u);
    }
    {
        // Destructor path.
        HfiBackend backend(mmu, ctx);
        ASSERT_TRUE(backend.create(1, 65536));
    }
    EXPECT_EQ(mmu.addressSpace().reservedBytes(), 0u);
}

TEST_F(BackendTest, BackendKindNames)
{
    EXPECT_STREQ(backendKindName(BackendKind::GuardPages), "guard-pages");
    EXPECT_STREQ(backendKindName(BackendKind::BoundsCheck), "bounds-check");
    EXPECT_STREQ(backendKindName(BackendKind::Mask), "mask");
    EXPECT_STREQ(backendKindName(BackendKind::Hfi), "hfi");
}

} // namespace
