/**
 * @file
 * Tests for the virtual address-space reservation bookkeeping — the
 * substrate behind the paper's §2 / §6.3.2 virtual-memory-exhaustion
 * arguments.
 */

#include <gtest/gtest.h>

#include "vm/address_space.h"

namespace
{

using hfi::vm::AddressSpace;
using hfi::vm::alignDown;
using hfi::vm::alignUp;
using hfi::vm::kPageSize;

TEST(AlignHelpers, DownAndUp)
{
    EXPECT_EQ(alignDown(0x1234, 0x1000), 0x1000u);
    EXPECT_EQ(alignUp(0x1234, 0x1000), 0x2000u);
    EXPECT_EQ(alignDown(0x1000, 0x1000), 0x1000u);
    EXPECT_EQ(alignUp(0x1000, 0x1000), 0x1000u);
    EXPECT_EQ(alignUp(0, 64), 0u);
}

TEST(AddressSpace, UsableBytesMatchVaBits)
{
    AddressSpace space(47);
    // 128 TiB minus the reserved low megabyte.
    EXPECT_EQ(space.usableBytes(), (1ULL << 47) - (1ULL << 20));
    EXPECT_EQ(space.vaBits(), 47u);
}

TEST(AddressSpace, ReserveReturnsAlignedDisjointRanges)
{
    AddressSpace space;
    auto a = space.reserve(1 << 20, 1 << 16);
    auto b = space.reserve(1 << 20, 1 << 16);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(*a % (1 << 16), 0u);
    EXPECT_EQ(*b % (1 << 16), 0u);
    EXPECT_NE(*a, *b);
    // Disjoint: no byte of b inside a.
    EXPECT_TRUE(*b >= *a + (1 << 20) || *a >= *b + (1 << 20));
}

TEST(AddressSpace, ConsecutiveReservationsAreAdjacent)
{
    // First-fit allocation: consecutive same-size reservations pack
    // back-to-back — the property HFI's batched-madvise teardown needs.
    AddressSpace space;
    auto a = space.reserve(1 << 16, 1 << 16);
    auto b = space.reserve(1 << 16, 1 << 16);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(*b, *a + (1 << 16));
}

TEST(AddressSpace, ReserveTracksTotals)
{
    AddressSpace space;
    EXPECT_EQ(space.reservedBytes(), 0u);
    space.reserve(kPageSize);
    space.reserve(3 * kPageSize);
    EXPECT_EQ(space.reservedBytes(), 4 * kPageSize);
    EXPECT_EQ(space.reservationCount(), 2u);
}

TEST(AddressSpace, ReleaseMakesSpaceReusable)
{
    AddressSpace space;
    auto a = space.reserve(1 << 20);
    ASSERT_TRUE(a);
    EXPECT_TRUE(space.release(*a));
    EXPECT_EQ(space.reservedBytes(), 0u);
    auto b = space.reserve(1 << 20);
    ASSERT_TRUE(b);
    EXPECT_EQ(*a, *b); // first fit reuses the hole
}

TEST(AddressSpace, ReleaseUnknownBaseFails)
{
    AddressSpace space;
    EXPECT_FALSE(space.release(0xdead000));
    auto a = space.reserve(kPageSize);
    ASSERT_TRUE(a);
    // Mid-range addresses are not valid release handles.
    EXPECT_FALSE(space.release(*a + 1));
}

TEST(AddressSpace, ReserveFixedRejectsOverlap)
{
    AddressSpace space;
    ASSERT_TRUE(space.reserveFixed(1ULL << 30, 1 << 20));
    EXPECT_FALSE(space.reserveFixed((1ULL << 30) + kPageSize, kPageSize));
    EXPECT_FALSE(space.reserveFixed((1ULL << 30) - kPageSize, 2 * kPageSize));
    EXPECT_TRUE(space.reserveFixed((1ULL << 30) + (1 << 20), kPageSize));
}

TEST(AddressSpace, ReserveFixedRejectsOutOfRange)
{
    AddressSpace space(47);
    EXPECT_FALSE(space.reserveFixed((1ULL << 47) - kPageSize, 2 * kPageSize));
    EXPECT_FALSE(space.reserveFixed(0, kPageSize)); // below mmap_min_addr
}

TEST(AddressSpace, IsReservedAndRangeAt)
{
    AddressSpace space;
    auto a = space.reserve(4 * kPageSize);
    ASSERT_TRUE(a);
    EXPECT_TRUE(space.isReserved(*a));
    EXPECT_TRUE(space.isReserved(*a + 4 * kPageSize - 1));
    EXPECT_FALSE(space.isReserved(*a + 4 * kPageSize));
    EXPECT_EQ(space.rangeAt(*a), 4 * kPageSize);
    EXPECT_FALSE(space.rangeAt(*a + kPageSize).has_value());
}

TEST(AddressSpace, ExhaustionReturnsNullopt)
{
    // A tiny 26-bit space: 64 MiB minus the low megabyte.
    AddressSpace space(26);
    const std::uint64_t chunk = 1 << 20;
    unsigned got = 0;
    while (space.reserve(chunk))
        ++got;
    EXPECT_EQ(got, 63u);
    EXPECT_FALSE(space.reserve(chunk).has_value());
    // Small allocations may still fit nothing once full of 1 MiB chunks.
    EXPECT_FALSE(space.reserve(chunk, chunk).has_value());
}

TEST(AddressSpace, GuardPagesVsHfiCapacityRatio)
{
    // The §6.3.2 argument in miniature: 8 GiB footprints exhaust a
    // 47-bit space after ~16K sandboxes, heap-only footprints after
    // vastly more.
    AddressSpace space(47);
    const std::uint64_t usable = space.usableBytes();
    EXPECT_EQ(usable / (8ULL << 30), 16383u);
    EXPECT_EQ(usable / (1ULL << 30), 131071u);
}

} // namespace
