/**
 * @file
 * Tests for the syscall substrate: the classic-BPF interpreter's
 * instruction semantics, the libseccomp-shaped allowlist filter, both
 * interposition paths (§6.4.1), and the miniature kernel file layer.
 */

#include <gtest/gtest.h>

#include "syscall/bpf.h"
#include "syscall/interposer.h"

namespace
{

using namespace hfi;
using namespace hfi::syscall;

// ------------------------------------------------------ BPF semantics

TEST(Bpf, RetImmediate)
{
    std::vector<BpfInsn> prog = {{bpf::RET | bpf::K, 0, 0, 0x1234}};
    const auto res = runFilter(prog, SeccompData{});
    EXPECT_EQ(res.verdict, 0x1234u);
    EXPECT_EQ(res.instructionsExecuted, 1u);
}

TEST(Bpf, LoadAbsReadsSeccompData)
{
    SeccompData data;
    data.nr = 42;
    std::vector<BpfInsn> prog = {
        {bpf::LD | bpf::W | bpf::ABS, 0, 0, 0}, // nr
        {bpf::RET | bpf::X, 0, 0, 0},           // return index reg (0)
    };
    // Return the accumulator instead: TAX then RET X.
    prog = {
        {bpf::LD | bpf::W | bpf::ABS, 0, 0, 0},
        {bpf::MISC | bpf::TAX, 0, 0, 0},
        {bpf::RET | bpf::X, 0, 0, 0},
    };
    EXPECT_EQ(runFilter(prog, data).verdict, 42u);
}

TEST(Bpf, LoadAbsArgs)
{
    SeccompData data;
    data.args[0] = 0x1122334455667788ULL;
    // args[0] low word sits at offset 16.
    std::vector<BpfInsn> prog = {
        {bpf::LD | bpf::W | bpf::ABS, 0, 0, 16},
        {bpf::MISC | bpf::TAX, 0, 0, 0},
        {bpf::RET | bpf::X, 0, 0, 0},
    };
    EXPECT_EQ(runFilter(prog, data).verdict, 0x55667788u);
}

TEST(Bpf, LoadBadOffsetKills)
{
    std::vector<BpfInsn> prog = {
        {bpf::LD | bpf::W | bpf::ABS, 0, 0, 61}, // unaligned
        {bpf::RET | bpf::K, 0, 0, kSeccompRetAllow},
    };
    EXPECT_EQ(runFilter(prog, SeccompData{}).verdict, kSeccompRetKill);
    prog[0].k = 64; // out of range
    EXPECT_EQ(runFilter(prog, SeccompData{}).verdict, kSeccompRetKill);
}

TEST(Bpf, JeqTakenAndNotTaken)
{
    SeccompData data;
    data.nr = 7;
    std::vector<BpfInsn> prog = {
        {bpf::LD | bpf::W | bpf::ABS, 0, 0, 0},
        {bpf::JMP | bpf::JEQ | bpf::K, 1, 0, 7},
        {bpf::RET | bpf::K, 0, 0, 111}, // not taken path
        {bpf::RET | bpf::K, 0, 0, 222}, // taken path
    };
    EXPECT_EQ(runFilter(prog, data).verdict, 222u);
    data.nr = 8;
    EXPECT_EQ(runFilter(prog, data).verdict, 111u);
}

TEST(Bpf, JgtJgeJset)
{
    auto make = [](std::uint16_t cmp, std::uint32_t k) {
        return std::vector<BpfInsn>{
            {bpf::LD | bpf::W | bpf::ABS, 0, 0, 0},
            {static_cast<std::uint16_t>(bpf::JMP | cmp | bpf::K), 0, 1, k},
            {bpf::RET | bpf::K, 0, 0, 1}, // taken
            {bpf::RET | bpf::K, 0, 0, 0}, // not taken
        };
    };
    SeccompData data;
    data.nr = 10;
    EXPECT_EQ(runFilter(make(bpf::JGT, 9), data).verdict, 1u);
    EXPECT_EQ(runFilter(make(bpf::JGT, 10), data).verdict, 0u);
    EXPECT_EQ(runFilter(make(bpf::JGE, 10), data).verdict, 1u);
    EXPECT_EQ(runFilter(make(bpf::JGE, 11), data).verdict, 0u);
    EXPECT_EQ(runFilter(make(bpf::JSET, 2), data).verdict, 1u);
    EXPECT_EQ(runFilter(make(bpf::JSET, 4), data).verdict, 0u);
}

TEST(Bpf, JaSkipsForward)
{
    std::vector<BpfInsn> prog = {
        {bpf::JMP | bpf::JA, 0, 0, 1},
        {bpf::RET | bpf::K, 0, 0, 1},
        {bpf::RET | bpf::K, 0, 0, 2},
    };
    EXPECT_EQ(runFilter(prog, SeccompData{}).verdict, 2u);
}

TEST(Bpf, AluOps)
{
    std::vector<BpfInsn> prog = {
        {bpf::LD | bpf::IMM, 0, 0, 0xf0},
        {bpf::ALU | bpf::ADD | bpf::K, 0, 0, 0x0f},
        {bpf::ALU | bpf::AND | bpf::K, 0, 0, 0xff},
        {bpf::ALU | bpf::RSH | bpf::K, 0, 0, 4},
        {bpf::ALU | bpf::OR | bpf::K, 0, 0, 0x100},
        {bpf::ALU | bpf::SUB | bpf::K, 0, 0, 1},
        {bpf::MISC | bpf::TAX, 0, 0, 0},
        {bpf::RET | bpf::X, 0, 0, 0},
    };
    // ((0xf0 + 0x0f) & 0xff) >> 4 = 0xf; | 0x100 = 0x10f; - 1 = 0x10e.
    EXPECT_EQ(runFilter(prog, SeccompData{}).verdict, 0x10eu);
}

TEST(Bpf, ScratchMemory)
{
    std::vector<BpfInsn> prog = {
        {bpf::LD | bpf::IMM, 0, 0, 77},
        {bpf::MISC | bpf::TAX, 0, 0, 0},
        {bpf::LD | bpf::MEM, 0, 0, 3}, // mem[3] == 0
        {bpf::ALU | bpf::ADD | bpf::X, 0, 0, 0},
        {bpf::MISC | bpf::TAX, 0, 0, 0},
        {bpf::RET | bpf::X, 0, 0, 0},
    };
    EXPECT_EQ(runFilter(prog, SeccompData{}).verdict, 77u);
}

TEST(Bpf, FallOffEndKills)
{
    std::vector<BpfInsn> prog = {{bpf::LD | bpf::IMM, 0, 0, 1}};
    EXPECT_EQ(runFilter(prog, SeccompData{}).verdict, kSeccompRetKill);
}

TEST(Bpf, EmptyProgramKills)
{
    EXPECT_EQ(runFilter({}, SeccompData{}).verdict, kSeccompRetKill);
}

// --------------------------------------------------- allowlist filter

TEST(AllowlistFilter, AllowsListedSyscalls)
{
    const auto filter = makeAllowlistFilter({kSysOpen, kSysRead, kSysClose});
    for (std::uint32_t nr : {kSysOpen, kSysRead, kSysClose}) {
        SeccompData data;
        data.nr = nr;
        EXPECT_EQ(runFilter(filter, data).verdict, kSeccompRetAllow) << nr;
    }
}

TEST(AllowlistFilter, TrapsUnlistedSyscalls)
{
    const auto filter = makeAllowlistFilter({kSysOpen, kSysRead, kSysClose});
    SeccompData data;
    data.nr = kSysMmap;
    EXPECT_EQ(runFilter(filter, data).verdict, kSeccompRetTrap);
}

TEST(AllowlistFilter, KillsWrongArchitecture)
{
    const auto filter = makeAllowlistFilter({kSysRead});
    SeccompData data;
    data.nr = kSysRead;
    data.arch = 0x40000003; // i386
    EXPECT_EQ(runFilter(filter, data).verdict, kSeccompRetKill);
}

TEST(AllowlistFilter, CostScalesWithPositionInList)
{
    std::vector<std::uint32_t> allowed;
    for (std::uint32_t i = 0; i < 40; ++i)
        allowed.push_back(i * 3);
    const auto filter = makeAllowlistFilter(allowed);
    SeccompData first;
    first.nr = 0;
    SeccompData last;
    last.nr = 39 * 3;
    EXPECT_LT(runFilter(filter, first).instructionsExecuted,
              runFilter(filter, last).instructionsExecuted);
}

// ------------------------------------------------------- interposers

class InterposerTest : public ::testing::Test
{
  protected:
    vm::VirtualClock clock;
    core::HfiContext ctx{clock};
};

TEST_F(InterposerTest, HfiInterposerMediatesAndResumes)
{
    core::SandboxConfig cfg;
    cfg.isHybrid = false;
    cfg.exitHandler = 0x7000000;
    ctx.enter(cfg);

    HfiInterposer interposer(ctx, {kSysRead, kSysOpen, kSysClose});
    SeccompData data;
    data.nr = kSysRead;
    EXPECT_EQ(interposer.onSyscall(data), Verdict::Allow);
    EXPECT_TRUE(ctx.enabled()); // re-entered after mediation
    data.nr = kSysMmap;
    EXPECT_EQ(interposer.onSyscall(data), Verdict::Deny);
    EXPECT_EQ(interposer.mediated(), 2u);
}

TEST_F(InterposerTest, SeccompInterposerMatchesPolicy)
{
    SeccompInterposer interposer(clock, {kSysRead, kSysOpen, kSysClose});
    SeccompData data;
    data.nr = kSysOpen;
    EXPECT_EQ(interposer.onSyscall(data), Verdict::Allow);
    data.nr = kSysExitGroup;
    EXPECT_EQ(interposer.onSyscall(data), Verdict::Deny);
}

TEST_F(InterposerTest, SeccompCostsMoreThanHfi)
{
    // §6.4.1: HFI's microcode redirect beats the kernel's filter
    // execution; the 2.1% end-to-end gap comes from this difference.
    core::SandboxConfig cfg;
    cfg.isHybrid = false;
    cfg.exitHandler = 0x7000000;
    ctx.enter(cfg);
    HfiInterposer hfi_path(ctx, {kSysRead});
    SeccompInterposer seccomp_path(clock, {kSysRead});
    SeccompData data;
    data.nr = kSysRead;

    const auto t0 = clock.now();
    hfi_path.onSyscall(data);
    const auto hfi_cost = clock.now() - t0;

    const auto t1 = clock.now();
    seccomp_path.onSyscall(data);
    const auto seccomp_cost = clock.now() - t1;

    EXPECT_GT(seccomp_cost, hfi_cost);
}

// -------------------------------------------------------- mini kernel

TEST(MiniKernel, OpenReadCloseSemantics)
{
    vm::VirtualClock clock;
    MiniKernel kernel(clock);
    kernel.addFile("/srv/a.bin", 1000, 42);

    EXPECT_EQ(kernel.open("/nope"), -1);
    const int fd = kernel.open("/srv/a.bin");
    ASSERT_GE(fd, 3);

    std::uint8_t buf[600];
    EXPECT_EQ(kernel.read(fd, buf, 600), 600);
    EXPECT_EQ(kernel.read(fd, buf, 600), 400); // EOF-truncated
    EXPECT_EQ(kernel.read(fd, buf, 600), 0);
    EXPECT_TRUE(kernel.close(fd));
    EXPECT_FALSE(kernel.close(fd));
    EXPECT_EQ(kernel.read(fd, buf, 1), -1);
}

TEST(MiniKernel, FileContentDeterministic)
{
    vm::VirtualClock clock;
    MiniKernel a(clock), b(clock);
    a.addFile("/x", 64, 9);
    b.addFile("/x", 64, 9);
    EXPECT_EQ(*a.fileData("/x"), *b.fileData("/x"));
    a.addFile("/y", 64, 10);
    EXPECT_NE(*a.fileData("/x"), *a.fileData("/y"));
}

TEST(MiniKernel, ReadCostScalesWithBytes)
{
    vm::VirtualClock clock;
    MiniKernel kernel(clock);
    kernel.addFile("/big", 1 << 20, 1);
    const int fd = kernel.open("/big");
    std::vector<std::uint8_t> buf(1 << 20);

    const double t0 = clock.nowNs();
    kernel.read(fd, buf.data(), 4096);
    const double small = clock.nowNs() - t0;
    const double t1 = clock.nowNs();
    kernel.read(fd, buf.data(), 1 << 19);
    const double big = clock.nowNs() - t1;
    EXPECT_GT(big, small);
}

} // namespace
