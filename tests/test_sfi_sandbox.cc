/**
 * @file
 * Tests for the Sandbox execution surface: real data movement, traps
 * as exceptions, memory_grow, cost metering, and first-touch paging.
 */

#include <gtest/gtest.h>

#include "sfi/runtime.h"
#include "sfi/sandbox.h"

namespace
{

using namespace hfi;
using namespace hfi::sfi;

class SandboxTest : public ::testing::Test
{
  protected:
    std::unique_ptr<Sandbox>
    make(BackendKind kind, SandboxOptions opts = {})
    {
        RuntimeConfig config;
        config.backend = kind;
        Runtime runtime(mmu, ctx, config);
        return runtime.createSandbox(opts);
    }

    vm::VirtualClock clock;
    vm::Mmu mmu{clock};
    core::HfiContext ctx{clock};
};

class SandboxAllBackends
    : public SandboxTest,
      public ::testing::WithParamInterface<BackendKind>
{
};

TEST_P(SandboxAllBackends, LoadStoreRoundTrip)
{
    auto sandbox = make(GetParam());
    ASSERT_TRUE(sandbox);
    sandbox->store<std::uint64_t>(64, 0xfeedface12345678ULL);
    sandbox->store<std::uint8_t>(72, 0x7f);
    EXPECT_EQ(sandbox->load<std::uint64_t>(64), 0xfeedface12345678ULL);
    EXPECT_EQ(sandbox->load<std::uint8_t>(72), 0x7f);
    EXPECT_EQ(sandbox->stats().loads, 2u);
    EXPECT_EQ(sandbox->stats().stores, 2u);
}

TEST_P(SandboxAllBackends, MemoryGrowSemantics)
{
    auto sandbox = make(GetParam(), {1, 8});
    ASSERT_TRUE(sandbox);
    EXPECT_EQ(sandbox->memoryGrow(3), 1);
    EXPECT_EQ(sandbox->memoryGrow(10), -1);
    EXPECT_EQ(sandbox->memory().pages(), 4u);
    EXPECT_EQ(sandbox->stats().growCalls, 2u);
}

INSTANTIATE_TEST_SUITE_P(Kinds, SandboxAllBackends,
                         ::testing::Values(BackendKind::GuardPages,
                                           BackendKind::BoundsCheck,
                                           BackendKind::Mask,
                                           BackendKind::Hfi));

TEST_F(SandboxTest, OutOfBoundsLoadThrows)
{
    auto sandbox = make(BackendKind::Hfi, {1, 8});
    ASSERT_TRUE(sandbox);
    EXPECT_THROW(sandbox->load<std::uint64_t>(kWasmPageSize),
                 SandboxTrap);
    try {
        sandbox->store<std::uint32_t>(kWasmPageSize + 12, 1);
        FAIL() << "expected trap";
    } catch (const SandboxTrap &trap) {
        EXPECT_EQ(trap.offset(), kWasmPageSize + 12);
        EXPECT_EQ(trap.width(), 4u);
        EXPECT_TRUE(trap.isWrite());
    }
}

TEST_F(SandboxTest, GrowThenAccessNoLongerTraps)
{
    auto sandbox = make(BackendKind::GuardPages, {1, 8});
    ASSERT_TRUE(sandbox);
    EXPECT_THROW(sandbox->load<std::uint8_t>(kWasmPageSize), SandboxTrap);
    EXPECT_EQ(sandbox->memoryGrow(1), 1);
    EXPECT_EQ(sandbox->load<std::uint8_t>(kWasmPageSize), 0);
}

TEST_F(SandboxTest, MaskSandboxNeverThrows)
{
    auto sandbox = make(BackendKind::Mask, {1, 8});
    ASSERT_TRUE(sandbox);
    // The wrapped store silently lands on in-bounds data (§2's
    // corruption hazard, demonstrated).
    sandbox->store<std::uint64_t>(8, 0x1111111111111111ULL);
    EXPECT_NO_THROW(sandbox->store<std::uint64_t>(
        kWasmPageSize + 8, 0x2222222222222222ULL));
    EXPECT_EQ(sandbox->stats().wrappedAccesses, 1u);
    // The wrap corrupted offset 8.
    EXPECT_EQ(sandbox->load<std::uint64_t>(8), 0x2222222222222222ULL);
}

TEST_F(SandboxTest, InvokeCatchesTraps)
{
    auto sandbox = make(BackendKind::Hfi, {1, 8});
    ASSERT_TRUE(sandbox);
    EXPECT_TRUE(sandbox->invoke([](Sandbox &s) {
        s.store<std::uint32_t>(0, 42);
    }));
    EXPECT_FALSE(sandbox->invoke([](Sandbox &s) {
        s.load<std::uint8_t>(1ULL << 30);
    }));
    EXPECT_EQ(sandbox->stats().traps, 1u);
    EXPECT_EQ(sandbox->stats().invocations, 2u);
    EXPECT_FALSE(ctx.enabled()); // exit ran despite the trap
}

TEST_F(SandboxTest, ComputeChargesVirtualTime)
{
    auto sandbox = make(BackendKind::BoundsCheck);
    ASSERT_TRUE(sandbox);
    const auto t0 = clock.now();
    sandbox->chargeOps(100'000);
    sandbox->flushCharge();
    // 100k ops at >= 1 cycle each, plus the 2.4% pressure tax.
    EXPECT_GE(clock.now() - t0, 100'000u);
    EXPECT_LE(clock.now() - t0, 110'000u);
}

TEST_F(SandboxTest, BoundsBackendChargesPerAccess)
{
    auto bounds = make(BackendKind::BoundsCheck);
    auto hfi_sandbox = make(BackendKind::Hfi);
    ASSERT_TRUE(bounds && hfi_sandbox);

    const auto t0 = clock.now();
    for (int i = 0; i < 10'000; ++i)
        bounds->load<std::uint64_t>(static_cast<std::uint64_t>(i) * 8 %
                                    4096);
    bounds->flushCharge();
    const auto bounds_cost = clock.now() - t0;

    const auto t1 = clock.now();
    for (int i = 0; i < 10'000; ++i)
        hfi_sandbox->load<std::uint64_t>(static_cast<std::uint64_t>(i) * 8 %
                                         4096);
    hfi_sandbox->flushCharge();
    const auto hfi_cost = clock.now() - t1;

    // Fig 3's mechanism: the compare+branch makes bounds-checked loads
    // measurably dearer than HFI's checks-in-parallel loads.
    EXPECT_GT(bounds_cost, hfi_cost + 10'000);
}

TEST_F(SandboxTest, FirstTouchChargesPageFaultsOnce)
{
    auto sandbox = make(BackendKind::GuardPages, {4, 16});
    ASSERT_TRUE(sandbox);
    const auto faults0 = mmu.stats().pageFaults;
    sandbox->store<std::uint64_t>(0, 1);
    sandbox->store<std::uint64_t>(8, 2); // same 4 KiB page
    EXPECT_EQ(mmu.stats().pageFaults, faults0 + 1);
    sandbox->store<std::uint64_t>(vm::kPageSize, 3);
    EXPECT_EQ(mmu.stats().pageFaults, faults0 + 2);
}

TEST_F(SandboxTest, IcacheSensitivityTaxesHfiAccesses)
{
    // §6.1's gobmk effect: a big-code workload pays for hmov's longer
    // encodings under HFI.
    auto plain = make(BackendKind::Hfi, {1, 8, /*icache*/ 0});
    auto bigcode = make(BackendKind::Hfi, {1, 8, /*icache*/ 80});
    ASSERT_TRUE(plain && bigcode);

    const auto t0 = clock.now();
    for (int i = 0; i < 10'000; ++i)
        plain->load<std::uint32_t>(0);
    plain->flushCharge();
    const auto plain_cost = clock.now() - t0;

    const auto t1 = clock.now();
    for (int i = 0; i < 10'000; ++i)
        bigcode->load<std::uint32_t>(0);
    bigcode->flushCharge();
    const auto bigcode_cost = clock.now() - t1;

    EXPECT_GT(bigcode_cost, plain_cost);
}

TEST_F(SandboxTest, GrowCostGapMatchesSection61)
{
    // The 30x grow gap in miniature: 16 grows under guard pages vs HFI.
    auto guard = make(BackendKind::GuardPages, {1, 65536});
    ASSERT_TRUE(guard);
    const double g0 = clock.nowNs();
    for (int i = 0; i < 16; ++i)
        guard->memoryGrow(1);
    const double guard_ns = clock.nowNs() - g0;

    auto hfi_sandbox = make(BackendKind::Hfi, {1, 65536});
    ASSERT_TRUE(hfi_sandbox);
    const double h0 = clock.nowNs();
    for (int i = 0; i < 16; ++i)
        hfi_sandbox->memoryGrow(1);
    const double hfi_ns = clock.nowNs() - h0;

    EXPECT_GT(guard_ns / hfi_ns, 20.0);
    EXPECT_LT(guard_ns / hfi_ns, 40.0);
}

} // namespace
