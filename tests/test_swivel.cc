/**
 * @file
 * Tests for the Swivel-SFI cost model: branch-density-driven compute
 * factors and code-section bloat (Table 1's comparison baseline).
 */

#include <gtest/gtest.h>

#include "swivel/swivel.h"

namespace
{

using namespace hfi::swivel;

TEST(Swivel, StraightLineCodeIsNearlyFree)
{
    CodeProfile profile{"straight", 0.0, 0.0, 1 << 20, 0};
    const auto effect = apply(profile);
    EXPECT_DOUBLE_EQ(effect.computeFactor, 1.0);
}

TEST(Swivel, FactorScalesWithBranchDensity)
{
    CodeProfile sparse{"sparse", 10.0, 0.0, 1 << 20, 0};
    CodeProfile dense{"dense", 200.0, 0.0, 1 << 20, 0};
    EXPECT_LT(apply(sparse).computeFactor, apply(dense).computeFactor);
    EXPECT_NEAR(apply(dense).computeFactor, 1.42, 0.01);
}

TEST(Swivel, CallsCostMoreThanBranches)
{
    CodeProfile branches{"b", 10.0, 0.0, 0, 0};
    CodeProfile calls{"c", 0.0, 10.0, 0, 0};
    EXPECT_GT(apply(calls).computeFactor, apply(branches).computeFactor);
}

TEST(Swivel, BloatHitsOnlyCode)
{
    CodeProfile code_heavy{"code", 0, 0, 10 << 20, 0};
    CodeProfile data_heavy{"data", 0, 0, 1 << 20, 33 << 20};
    const auto ch = apply(code_heavy);
    const auto dh = apply(data_heavy);
    // 43% growth of the code section only.
    EXPECT_NEAR(double(ch.binaryBytes) / (10 << 20), 1.43, 0.01);
    EXPECT_NEAR(double(dh.binaryBytes) / (34 << 20), 1.0126, 0.001);
}

TEST(Swivel, Table1ProfilesMatchPaperShape)
{
    // Table 1: XML +33%, image classification ~0%, SHA +9.5%, HTML +73%
    // (average latency multipliers under saturation).
    EXPECT_NEAR(apply(xmlToJsonProfile()).computeFactor, 1.33, 0.03);
    EXPECT_LT(apply(imageClassifyProfile()).computeFactor, 1.02);
    EXPECT_NEAR(apply(checkShaProfile()).computeFactor, 1.10, 0.03);
    EXPECT_NEAR(apply(templatedHtmlProfile()).computeFactor, 1.73, 0.05);
}

TEST(Swivel, Table1BinarySizesMatchPaperShape)
{
    // Table 1's Bin size rows: 3.5->4.1, 34.3->34.5, 3.9->4.6,
    // 3.6->4.2 MiB.
    const double mib = 1024 * 1024;
    EXPECT_NEAR(apply(xmlToJsonProfile()).binaryBytes / mib, 4.1, 0.15);
    EXPECT_NEAR(apply(imageClassifyProfile()).binaryBytes / mib, 34.5, 0.2);
    EXPECT_NEAR(apply(checkShaProfile()).binaryBytes / mib, 4.6, 0.15);
    EXPECT_NEAR(apply(templatedHtmlProfile()).binaryBytes / mib, 4.2, 0.15);
}

TEST(Swivel, CostKnobsPropagate)
{
    CodeProfile profile{"p", 100.0, 0.0, 1 << 20, 0};
    SwivelCosts cheap;
    cheap.perBranchCycles = 0.5;
    SwivelCosts dear;
    dear.perBranchCycles = 4.0;
    EXPECT_LT(apply(profile, cheap).computeFactor,
              apply(profile, dear).computeFactor);
}

} // namespace
