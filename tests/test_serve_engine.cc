/**
 * @file
 * Tests for the multi-core serving engine: seeded-run reproducibility,
 * worker-count-independent latency multisets, admission control and
 * shedding, work stealing, and the preemption path that round-trips HFI
 * state through the §3.3.3 save-hfi-regs context switch mid-sandbox.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "serve/engine.h"
#include "serve/load_gen.h"
#include "serve/shard_queue.h"

namespace
{

using namespace hfi;
using namespace hfi::serve;

/** A small real handler: stores plus metered compute, pure in seed. */
Handler
smallHandler()
{
    return [](sfi::Sandbox &s, std::uint32_t seed) {
        for (int i = 0; i < 16; ++i)
            s.store<std::uint32_t>(64 + (i % 16) * 4, seed + i);
        s.chargeOps(2'000);
    };
}

/** A longer handler, several quanta worth of compute. */
Handler
longHandler()
{
    return [](sfi::Sandbox &s, std::uint32_t seed) {
        for (int i = 0; i < 64; ++i)
            s.store<std::uint32_t>(64 + (i % 16) * 4, seed + i);
        s.chargeOps(100'000);
    };
}

EngineConfig
sparseConfig(unsigned workers)
{
    EngineConfig ec;
    ec.workers = workers;
    ec.mode = LoadMode::OpenLoop;
    ec.requests = 48;
    // Sparse: mean interarrival orders of magnitude above service, so
    // requests never contend for a core even in the 1-worker run.
    ec.meanInterarrivalNs = 5'000'000.0;
    ec.seed = 42;
    ec.worker.teardownBatch = 8;
    return ec;
}

std::vector<double>
sortedLatencies(const ServeResult &res)
{
    auto v = res.latencies.values();
    std::sort(v.begin(), v.end());
    return v;
}

// ----------------------------------------------------------- load gen

TEST(LoadGen, SplitmixIsDeterministic)
{
    std::uint64_t a = 7, b = 7;
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(splitmix64(a), splitmix64(b));
    std::uint64_t c = 8;
    EXPECT_NE(splitmix64(a), splitmix64(c));
}

TEST(LoadGen, PoissonArrivalsReproducibleAndOrdered)
{
    OpenLoopPoissonSource s1(1000, 10'000.0, 99);
    OpenLoopPoissonSource s2(1000, 10'000.0, 99);
    ASSERT_EQ(s1.arrivals().size(), 1000u);
    double prev = -1;
    for (std::size_t i = 0; i < 1000; ++i) {
        const auto &a = s1.arrivals()[i];
        const auto &b = s2.arrivals()[i];
        EXPECT_EQ(a.arrivalNs, b.arrivalNs);
        EXPECT_EQ(a.seed, b.seed);
        EXPECT_GE(a.arrivalNs, prev); // non-decreasing
        prev = a.arrivalNs;
    }
}

TEST(LoadGen, PoissonMeanNearConfigured)
{
    OpenLoopPoissonSource src(20'000, 10'000.0, 3);
    const double span = src.arrivals().back().arrivalNs;
    const double mean = span / (20'000 - 1);
    EXPECT_NEAR(mean, 10'000.0, 500.0); // ~sigma/sqrt(n) tolerance
}

TEST(LoadGen, DifferentSeedsDifferentArrivals)
{
    OpenLoopPoissonSource a(10, 10'000.0, 1);
    OpenLoopPoissonSource b(10, 10'000.0, 2);
    EXPECT_NE(a.arrivals()[1].arrivalNs, b.arrivals()[1].arrivalNs);
}

TEST(LoadGen, ClosedLoopKeepsPopulationBounded)
{
    ClosedLoopSource src(3, 10, 0.0);
    // Only the population can be outstanding at once.
    auto r0 = src.next(), r1 = src.next(), r2 = src.next();
    ASSERT_TRUE(r0 && r1 && r2);
    EXPECT_FALSE(src.next().has_value()); // all clients busy
    src.onComplete(*r1, 500.0);
    const auto r3 = src.next();
    ASSERT_TRUE(r3.has_value());
    EXPECT_EQ(r3->client, r1->client);
    EXPECT_EQ(r3->arrivalNs, 500.0);
}

// -------------------------------------------------------- shard queue

TEST(ShardedQueues, BoundedShardSheds)
{
    ShardedQueues q(1, 2);
    Request r;
    EXPECT_TRUE(q.offer(0, r));
    EXPECT_TRUE(q.offer(0, r));
    EXPECT_FALSE(q.offer(0, r));
    EXPECT_EQ(q.shedCount(), 1u);
    EXPECT_EQ(q.maxDepth(), 2u);
}

TEST(ShardedQueues, StealsFromDeepestShard)
{
    ShardedQueues q(3, 0);
    Request r;
    q.offer(1, r);
    q.offer(2, r);
    q.offer(2, r);
    EXPECT_EQ(q.pickFor(0, true), 2);  // deepest
    EXPECT_EQ(q.pickFor(0, false), -1); // no stealing
    EXPECT_EQ(q.pickFor(1, true), 1);  // own shard first
}

// ------------------------------------------------------------- engine

TEST(ServeEngine, SameSeedBitIdentical)
{
    auto cfg = sparseConfig(4);
    cfg.meanInterarrivalNs = 20'000.0; // dense enough to queue
    const auto a = ServeEngine(cfg, smallHandler()).run();
    const auto b = ServeEngine(cfg, smallHandler()).run();
    EXPECT_EQ(a.served, b.served);
    EXPECT_EQ(a.durationNs, b.durationNs);
    EXPECT_EQ(a.contextSwitches, b.contextSwitches);
    EXPECT_EQ(a.latencies.values(), b.latencies.values());
}

TEST(ServeEngine, LatencyMultisetIndependentOfWorkerCount)
{
    // With sparse arrivals no request ever waits for a core, so the
    // per-request latency multiset must be *identical* for any worker
    // count — the determinism contract from ISSUE.md.
    const auto one = ServeEngine(sparseConfig(1), smallHandler()).run();
    const auto two = ServeEngine(sparseConfig(2), smallHandler()).run();
    const auto eight = ServeEngine(sparseConfig(8), smallHandler()).run();
    ASSERT_EQ(one.served, 48u);
    ASSERT_EQ(two.served, 48u);
    ASSERT_EQ(eight.served, 48u);
    EXPECT_EQ(sortedLatencies(one), sortedLatencies(two));
    EXPECT_EQ(sortedLatencies(one), sortedLatencies(eight));
}

TEST(ServeEngine, PercentilesAreOrdered)
{
    auto cfg = sparseConfig(2);
    cfg.meanInterarrivalNs = 10'000.0;
    cfg.requests = 200;
    const auto res = ServeEngine(cfg, smallHandler()).run();
    EXPECT_GT(res.latency.p50, 0.0);
    EXPECT_LE(res.latency.p50, res.latency.p95);
    EXPECT_LE(res.latency.p95, res.latency.p99);
    EXPECT_LE(res.latency.p99, res.latency.p999);
    EXPECT_EQ(res.latencies.count(), res.served);
}

TEST(ServeEngine, ShedsUnderOverloadWithBoundedQueues)
{
    EngineConfig ec;
    ec.workers = 2;
    ec.mode = LoadMode::OpenLoop;
    ec.requests = 300;
    ec.meanInterarrivalNs = 500.0; // far beyond capacity
    ec.queueCapacity = 4;
    ec.seed = 7;
    const auto res = ServeEngine(ec, longHandler()).run();
    EXPECT_GT(res.shed, 0u);
    EXPECT_EQ(res.served + res.shed + res.rejected, 300u);
    // Shed requests must not contribute latency samples.
    EXPECT_EQ(res.latencies.count(), res.served);
    // The bound holds.
    EXPECT_LE(res.maxQueueDepth, 4u);
}

TEST(ServeEngine, UnboundedQueueNeverSheds)
{
    EngineConfig ec;
    ec.workers = 1;
    ec.mode = LoadMode::OpenLoop;
    ec.requests = 100;
    ec.meanInterarrivalNs = 500.0;
    ec.queueCapacity = 0;
    const auto res = ServeEngine(ec, smallHandler()).run();
    EXPECT_EQ(res.shed, 0u);
    EXPECT_EQ(res.served, 100u);
}

TEST(ServeEngine, WorkStealingDrainsASingleHotShard)
{
    EngineConfig ec;
    ec.workers = 2;
    ec.mode = LoadMode::OpenLoop;
    ec.requests = 120;
    ec.meanInterarrivalNs = 2'000.0;
    ec.sharding = Sharding::SingleShard; // everything lands on shard 0
    ec.workStealing = true;
    const auto res = ServeEngine(ec, smallHandler()).run();
    EXPECT_EQ(res.served, 120u);
    EXPECT_GT(res.stolen, 0u);

    // Stealing turns the second core from dead weight into throughput.
    auto solo = ec;
    solo.workers = 1;
    const auto one = ServeEngine(solo, smallHandler()).run();
    EXPECT_GT(res.throughputRps, one.throughputRps);
}

TEST(ServeEngine, ClosedLoopModeServesAllRequests)
{
    EngineConfig ec;
    ec.workers = 2;
    ec.mode = LoadMode::ClosedLoop;
    ec.clients = 8;
    ec.requests = 64;
    const auto res = ServeEngine(ec, smallHandler()).run();
    EXPECT_EQ(res.served, 64u);
    EXPECT_GT(res.meanLatencyNs, 0.0);
}

// --------------------------------------------- preemption / HFI state

TEST(ServeEngine, PreemptionRoundTripsHfiStateMidSandbox)
{
    EngineConfig ec;
    ec.workers = 2;
    ec.mode = LoadMode::OpenLoop;
    ec.requests = 40;
    ec.meanInterarrivalNs = 50'000.0;
    ec.worker.scheme = Scheme::HfiNative;
    ec.worker.quantumNs = 5'000.0; // several quanta per request
    const auto res = ServeEngine(ec, longHandler()).run();
    EXPECT_EQ(res.served, 40u);
    EXPECT_GT(res.preemptions, 0u);
    // §3.3.3: the native sandbox's live register file survives every
    // save/restore round trip.
    EXPECT_EQ(res.hfiStateMismatches, 0u);
    // Dispatch alone costs 2 switches per request; preemptions add 2
    // more each.
    EXPECT_GE(res.contextSwitches,
              2 * res.served + 2 * res.preemptions);
}

TEST(ServeEngine, SwitchOnExitSurvivesPreemption)
{
    EngineConfig ec;
    ec.workers = 1;
    ec.mode = LoadMode::OpenLoop;
    ec.requests = 20;
    ec.meanInterarrivalNs = 50'000.0;
    ec.worker.scheme = Scheme::HfiSwitchOnExit;
    ec.worker.quantumNs = 5'000.0;
    const auto res = ServeEngine(ec, longHandler()).run();
    EXPECT_EQ(res.served, 20u);
    EXPECT_GT(res.preemptions, 0u);
    EXPECT_EQ(res.hfiStateMismatches, 0u);
}

TEST(ServeEngine, QuantumZeroNeverPreempts)
{
    auto cfg = sparseConfig(1);
    cfg.worker.scheme = Scheme::HfiNative;
    cfg.worker.quantumNs = 0;
    const auto res = ServeEngine(cfg, longHandler()).run();
    EXPECT_EQ(res.preemptions, 0u);
    // Dispatch still goes through the scheduler: 2 per request.
    EXPECT_EQ(res.contextSwitches, 2 * res.served);
}

TEST(ServeEngine, PreemptionCostShowsUpInLatency)
{
    auto base = sparseConfig(1);
    base.requests = 24;
    base.worker.scheme = Scheme::HfiNative;
    const auto unpreempted = ServeEngine(base, longHandler()).run();
    auto preempted_cfg = base;
    preempted_cfg.worker.quantumNs = 5'000.0;
    const auto preempted = ServeEngine(preempted_cfg, longHandler()).run();
    // Context-switch + xsave/xrstor costs are charged, so the preempted
    // configuration is strictly slower.
    EXPECT_GT(preempted.meanLatencyNs, unpreempted.meanLatencyNs);
}

// --------------------------------------------------- pools / teardown

TEST(ServeEngine, FreshInstancePerRequestWithBatchedTeardown)
{
    auto cfg = sparseConfig(1);
    cfg.requests = 48;
    cfg.worker.teardownBatch = 16;
    const auto res = ServeEngine(cfg, smallHandler()).run();
    EXPECT_EQ(res.instancesCreated, 48u);
    EXPECT_EQ(res.reclaimBatches, 3u); // 48 / 16
    EXPECT_EQ(res.rejected, 0u);
}

// ---------------------------------------------------------------------
// ShardedQueues edge cases and counter properties.

TEST(ShardedQueues, StealTieGoesToLowestIndex)
{
    // Shards 1 and 2 equally deep: worker 0 must steal from shard 1
    // (strict > comparison, first-seen wins).
    ShardedQueues q(3, 0);
    Request r;
    q.offer(1, r);
    q.offer(1, r);
    q.offer(2, r);
    q.offer(2, r);
    EXPECT_EQ(q.pickFor(0, true), 1);
    // Depth 2 beats depth 1 regardless of index order.
    q.offer(2, r);
    EXPECT_EQ(q.pickFor(0, true), 2);
}

TEST(ShardedQueues, StealSkipsOwnEmptyShardAndHonorsFlag)
{
    ShardedQueues q(2, 0);
    Request r;
    q.offer(1, r);
    EXPECT_EQ(q.pickFor(0, false), -1); // stealing off: stay dry
    EXPECT_EQ(q.pickFor(0, true), 1);
    EXPECT_EQ(q.pickFor(1, false), 1); // own shard needs no stealing
}

TEST(ShardedQueues, CapacityZeroNeverSheds)
{
    ShardedQueues q(2, 0);
    Request r;
    for (int i = 0; i < 10'000; ++i)
        EXPECT_TRUE(q.offer(static_cast<unsigned>(i % 2), r));
    EXPECT_EQ(q.shedCount(), 0u);
    EXPECT_EQ(q.maxDepth(), 5'000u);
}

TEST(ShardedQueues, CountersMatchReferenceModelAcrossInterleavings)
{
    // Drive offer/take/steal interleavings from a seeded stream and
    // check shed (global and per shard) plus maxDepth against a plain
    // reference model.
    constexpr unsigned kShards = 3;
    constexpr std::size_t kCap = 4;
    ShardedQueues q(kShards, kCap);
    std::vector<std::size_t> refDepth(kShards, 0);
    std::vector<std::size_t> refShed(kShards, 0);
    std::size_t refMax = 0;

    std::uint64_t state = 0xfeedULL;
    for (int step = 0; step < 2'000; ++step) {
        const std::uint64_t roll = splitmix64(state);
        const auto shard = static_cast<unsigned>(roll % kShards);
        if ((roll >> 8) % 3 != 0) { // two thirds arrivals
            Request r;
            r.id = static_cast<std::uint64_t>(step);
            const bool admitted = q.offer(shard, r);
            if (refDepth[shard] >= kCap) {
                EXPECT_FALSE(admitted);
                ++refShed[shard];
            } else {
                EXPECT_TRUE(admitted);
                ++refDepth[shard];
                refMax = std::max(refMax, refDepth[shard]);
            }
        } else { // one third serves, stealing when dry
            const int pick = q.pickFor(shard, true);
            int refPick = -1;
            if (refDepth[shard] > 0) {
                refPick = static_cast<int>(shard);
            } else {
                std::size_t best = 0;
                for (unsigned s = 0; s < kShards; ++s)
                    if (s != shard && refDepth[s] > best) {
                        best = refDepth[s];
                        refPick = static_cast<int>(s);
                    }
            }
            ASSERT_EQ(pick, refPick);
            if (pick >= 0) {
                q.take(static_cast<unsigned>(pick));
                --refDepth[static_cast<unsigned>(pick)];
            }
        }
    }

    std::size_t refShedTotal = 0;
    for (unsigned s = 0; s < kShards; ++s) {
        EXPECT_EQ(q.shedCount(s), refShed[s]) << "shard " << s;
        EXPECT_EQ(q.size(s), refDepth[s]) << "shard " << s;
        refShedTotal += refShed[s];
    }
    EXPECT_EQ(q.shedCount(), refShedTotal);
    EXPECT_EQ(q.maxDepth(), refMax);
    EXPECT_GT(refShedTotal, 0u); // the stream actually exercised shedding
}

TEST(ShardedQueues, TakePreservesFifoOrderEvenWhenStolen)
{
    ShardedQueues q(2, 0);
    for (std::uint64_t i = 0; i < 4; ++i) {
        Request r;
        r.id = i;
        q.offer(0, r);
    }
    // Worker 1 steals: it must receive the *oldest* request (FIFO
    // stealing is kind to tail latency).
    const int pick = q.pickFor(1, true);
    ASSERT_EQ(pick, 0);
    EXPECT_EQ(q.take(0).id, 0u);
    EXPECT_EQ(q.take(0).id, 1u);
    EXPECT_EQ(q.take(0).id, 2u);
}

} // namespace
