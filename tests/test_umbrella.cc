/**
 * @file
 * Smoke test for the umbrella header: `#include "hfi.h"` must expose
 * the whole public surface and stay internally consistent.
 */

#include <gtest/gtest.h>

#include "hfi.h"

namespace
{

TEST(Umbrella, CoreSurfaceReachable)
{
    hfi::vm::VirtualClock clock;
    hfi::core::HfiContext ctx(clock);
    EXPECT_FALSE(ctx.enabled());
    EXPECT_EQ(hfi::core::kNumRegions, 10u);
}

TEST(Umbrella, RuntimeSurfaceReachable)
{
    hfi::vm::VirtualClock clock;
    hfi::vm::Mmu mmu(clock);
    hfi::core::HfiContext ctx(clock);
    hfi::sfi::Runtime runtime(mmu, ctx, {});
    auto sandbox = runtime.createSandbox({1, 4});
    ASSERT_TRUE(sandbox);
    sandbox->store<std::uint32_t>(0, 7);
    EXPECT_EQ(sandbox->load<std::uint32_t>(0), 7u);
}

TEST(Umbrella, SimSurfaceReachable)
{
    hfi::sim::ProgramBuilder builder;
    builder.movi(1, 41).addi(1, 1, 1).halt();
    hfi::sim::Pipeline pipe(builder.build());
    const auto res = pipe.run();
    EXPECT_TRUE(res.halted);
    EXPECT_EQ(pipe.state().regs[1], 42u);
}

} // namespace
