/**
 * @file
 * Tests for the §3.3.3 OS support: HFI register state is per-process
 * under xsave/xrstor context switching, sandboxed processes resume
 * sandboxed, and no region state leaks between processes.
 */

#include <gtest/gtest.h>

#include "core/checker.h"
#include "os/scheduler.h"

namespace
{

using namespace hfi;
using namespace hfi::os;

class SchedulerTest : public ::testing::Test
{
  protected:
    core::ImplicitDataRegion
    region(std::uint64_t base)
    {
        core::ImplicitDataRegion r;
        r.basePrefix = base;
        r.lsbMask = 0xfff;
        r.permRead = true;
        r.permWrite = true;
        return r;
    }

    vm::VirtualClock clock;
    core::HfiContext ctx{clock};
    Scheduler sched{ctx};
};

TEST_F(SchedulerTest, FirstProcessBecomesCurrent)
{
    EXPECT_EQ(sched.createProcess("init"), 0);
    EXPECT_EQ(sched.currentPid(), 0);
    EXPECT_EQ(sched.createProcess("worker"), 1);
    EXPECT_EQ(sched.currentPid(), 0);
}

TEST_F(SchedulerTest, RegionStateIsPerProcess)
{
    const int a = sched.createProcess("a");
    const int b = sched.createProcess("b");

    // Process a programs a region over 0x1000.
    ctx.setRegion(2, core::Region{region(0x1000)});

    // Switch to b: b must see a clean register file.
    ASSERT_TRUE(sched.switchTo(b));
    EXPECT_TRUE(std::holds_alternative<core::EmptyRegion>(ctx.region(2)));

    // b programs its own region over 0x2000.
    ctx.setRegion(2, core::Region{region(0x2000)});

    // Back to a: a's region is restored, b's is invisible.
    ASSERT_TRUE(sched.switchTo(a));
    ASSERT_TRUE(
        std::holds_alternative<core::ImplicitDataRegion>(ctx.region(2)));
    EXPECT_EQ(std::get<core::ImplicitDataRegion>(ctx.region(2)).basePrefix,
              0x1000u);
}

TEST_F(SchedulerTest, SandboxedProcessResumesSandboxed)
{
    const int a = sched.createProcess("sandboxed");
    const int b = sched.createProcess("plain");

    // a is preempted while inside a sandbox.
    ctx.setRegion(2, core::Region{region(0x1000)});
    core::SandboxConfig cfg;
    cfg.isHybrid = true;
    ctx.enter(cfg);
    ASSERT_TRUE(ctx.enabled());

    sched.switchTo(b);
    EXPECT_FALSE(ctx.enabled()); // b never entered a sandbox

    sched.switchTo(a);
    EXPECT_TRUE(ctx.enabled()); // a resumes mid-sandbox
    EXPECT_TRUE(core::AccessChecker::checkData(ctx, 0x1800, 4, false).ok);
    EXPECT_FALSE(core::AccessChecker::checkData(ctx, 0x2800, 4, false).ok);
}

TEST_F(SchedulerTest, EnforcementFollowsTheProcess)
{
    const int a = sched.createProcess("a");
    const int b = sched.createProcess("b");
    (void)a;

    ctx.setRegion(2, core::Region{region(0x1000)});
    ctx.enter(core::SandboxConfig{.isHybrid = true});

    sched.switchTo(b);
    ctx.setRegion(2, core::Region{region(0x2000)});
    ctx.enter(core::SandboxConfig{.isHybrid = true});

    // b's sandbox can reach 0x2000 but not a's 0x1000.
    EXPECT_TRUE(core::AccessChecker::checkData(ctx, 0x2010, 4, true).ok);
    EXPECT_FALSE(core::AccessChecker::checkData(ctx, 0x1010, 4, true).ok);
}

TEST_F(SchedulerTest, YieldRoundRobins)
{
    sched.createProcess("p0");
    sched.createProcess("p1");
    sched.createProcess("p2");
    EXPECT_EQ(sched.yield(), 1);
    EXPECT_EQ(sched.yield(), 2);
    EXPECT_EQ(sched.yield(), 0);
    EXPECT_EQ(sched.process(1).switchIns, 1u);
}

TEST_F(SchedulerTest, SwitchChargesKernelAndXsaveCosts)
{
    sched.createProcess("a");
    const int b = sched.createProcess("b");
    const auto t0 = clock.now();
    sched.switchTo(b);
    const auto with_hfi = clock.now() - t0;

    // Without the save-hfi-regs flag the switch is cheaper.
    core::HfiContext plain_ctx(clock);
    SchedulerCosts costs;
    costs.saveHfiRegs = false;
    Scheduler plain(plain_ctx, costs);
    plain.createProcess("a");
    const int pb = plain.createProcess("b");
    const auto t1 = clock.now();
    plain.switchTo(pb);
    EXPECT_LT(clock.now() - t1, with_hfi);
}

TEST_F(SchedulerTest, NativeSandboxStateSurvivesSwitchRoundTrip)
{
    // The serving engine's preemption path: a process is switched out
    // while inside a *native* (non-hybrid) sandbox. The user-mode
    // xrstor traps in that state (§3.3.3) — the kernel's ring-0 restore
    // must not, or the incoming process inherits the outgoing one's
    // region file.
    const int a = sched.createProcess("tenant");
    const int b = sched.createProcess("server");

    ctx.setRegion(2, core::Region{region(0x1000)});
    core::SandboxConfig cfg;
    cfg.isHybrid = false;
    cfg.isSerialized = true;
    cfg.exitHandler = 0x7000'0000;
    ctx.enter(cfg);
    ASSERT_TRUE(ctx.enabled());

    // Switch away: the other process sees a clean, usable context.
    ASSERT_TRUE(sched.switchTo(b));
    EXPECT_FALSE(ctx.enabled());
    EXPECT_EQ(ctx.setRegion(3, core::Region{region(0x9000)}),
              core::HfiResult::Ok);

    // Switch back: the tenant resumes mid-native-sandbox with its
    // region lock intact — setRegion still traps, enforcement still
    // follows the restored region file.
    ASSERT_TRUE(sched.switchTo(a));
    EXPECT_TRUE(ctx.enabled());
    EXPECT_FALSE(ctx.config().isHybrid);
    EXPECT_EQ(ctx.setRegion(2, core::Region{region(0x5000)}),
              core::HfiResult::Trap);
    EXPECT_TRUE(core::AccessChecker::checkData(ctx, 0x1800, 4, false).ok);
    EXPECT_FALSE(core::AccessChecker::checkData(ctx, 0x9800, 4, false).ok);
}

TEST_F(SchedulerTest, SwitchChargesExactXsaveXrstorCosts)
{
    // The save/restore cost from core/cost_model.h is charged on every
    // switch: the flat kernel context-switch time plus one xsave and
    // one xrstor of the HFI register file.
    sched.createProcess("a");
    const int b = sched.createProcess("b");
    const auto t0 = clock.now();
    sched.switchTo(b);
    const core::HfiCostParams costs;
    const SchedulerCosts sched_costs;
    EXPECT_EQ(clock.now() - t0,
              clock.nsToCycles(sched_costs.contextSwitchNs) +
                  costs.xsaveHfiCycles + costs.xrstorHfiCycles);
}

TEST_F(SchedulerTest, SwitchCountIsTracked)
{
    sched.createProcess("a");
    const int b = sched.createProcess("b");
    EXPECT_EQ(sched.totalSwitches(), 0u);
    sched.switchTo(b);
    sched.yield();
    EXPECT_EQ(sched.totalSwitches(), 2u);
}

TEST_F(SchedulerTest, UnknownPidRejected)
{
    sched.createProcess("only");
    EXPECT_FALSE(sched.switchTo(7));
    EXPECT_FALSE(sched.switchTo(-1));
}

TEST_F(SchedulerTest, ManyProcessesNoOnChipStateGrowth)
{
    // §3/§4: HFI keeps constant on-chip state regardless of sandbox
    // count — the per-process state lives in the kernel's xsave areas.
    // Create many processes, each with a distinct region, and verify
    // every one round-trips.
    std::vector<int> pids;
    for (int i = 0; i < 64; ++i)
        pids.push_back(sched.createProcess("p" + std::to_string(i)));
    for (int pid : pids) {
        sched.switchTo(pid);
        ctx.setRegion(2, core::Region{region(0x10000ULL * (pid + 1))});
    }
    for (int pid : pids) {
        sched.switchTo(pid);
        ASSERT_TRUE(std::holds_alternative<core::ImplicitDataRegion>(
            ctx.region(2)));
        EXPECT_EQ(
            std::get<core::ImplicitDataRegion>(ctx.region(2)).basePrefix,
            0x10000ULL * (pid + 1));
    }
}

} // namespace
