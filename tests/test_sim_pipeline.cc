/**
 * @file
 * Tests for the out-of-order pipeline: architectural equivalence with
 * the functional reference on every Fig 2 kernel (the strongest
 * correctness property we can assert), plus targeted timing behaviours
 * — serialization, mispredict recovery, store forwarding, cache and
 * HFI-fault interactions.
 */

#include <gtest/gtest.h>

#include "sim/kernels.h"
#include "sim/pipeline.h"

namespace
{

using namespace hfi;
using namespace hfi::sim;

TEST(Pipeline, SimpleLoopMatchesFunctional)
{
    ProgramBuilder b;
    b.movi(1, 0).movi(2, 0).movi(3, 100);
    b.label("loop");
    b.add(1, 1, 2);
    b.addi(2, 2, 1);
    b.blt(2, 3, "loop");
    b.movi(4, 0x5000);
    b.store(1, 4, 0, 8);
    b.halt();
    const Program prog = b.build();

    ArchState ref_state;
    ref_state.pc = prog.base();
    SimMemory ref_mem;
    FunctionalCore::run(prog, ref_state, ref_mem);

    Pipeline pipe(prog);
    const auto res = pipe.run();
    EXPECT_TRUE(res.halted);
    EXPECT_EQ(pipe.memory().read(0x5000, 8), ref_mem.read(0x5000, 8));
    EXPECT_GT(res.instructions, 300u);
    // Out-of-order: multiple instructions per cycle on this loop.
    EXPECT_GT(double(res.instructions) / double(res.cycles), 1.2);
}

/** Every kernel x mode: the pipeline's result equals the functional
 *  executor's (timing must never change architecture). */
struct KernelModeCase
{
    std::size_t kernel;
    kernels::Mode mode;
};

class PipelineKernelEquivalence
    : public ::testing::TestWithParam<KernelModeCase>
{
};

TEST_P(PipelineKernelEquivalence, MatchesFunctional)
{
    const auto &kernel = kernels::suite()[GetParam().kernel];
    const Program prog = kernel.build(GetParam().mode, 1);

    SimMemory ref_mem;
    kernel.stage(ref_mem, 1, 42);
    ArchState ref_state;
    ref_state.pc = prog.base();
    FunctionalCore::run(prog, ref_state, ref_mem, 50'000'000);
    const std::uint64_t ref_result =
        ref_mem.read(kernels::kHeapBase + 0xfff8, 8);

    Pipeline pipe(prog);
    kernel.stage(pipe.memory(), 1, 42);
    const auto res = pipe.run(200'000'000);
    ASSERT_TRUE(res.halted) << kernel.name;
    EXPECT_EQ(pipe.memory().read(kernels::kHeapBase + 0xfff8, 8),
              ref_result)
        << kernel.name;
    EXPECT_NE(ref_result, 0u) << kernel.name;
}

std::vector<KernelModeCase>
allKernelModes()
{
    std::vector<KernelModeCase> cases;
    for (std::size_t i = 0; i < kernels::suite().size(); ++i) {
        cases.push_back({i, kernels::Mode::HfiHardware});
        cases.push_back({i, kernels::Mode::HfiEmulation});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, PipelineKernelEquivalence,
    ::testing::ValuesIn(allKernelModes()),
    [](const ::testing::TestParamInfo<KernelModeCase> &info) {
        std::string name = kernels::suite()[info.param.kernel].name;
        name += info.param.mode == kernels::Mode::HfiHardware ? "_hw"
                                                              : "_emu";
        for (char &c : name) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(Pipeline, StoreToLoadForwarding)
{
    // A load immediately after a store to the same address must see the
    // stored value even though the store has not committed.
    ProgramBuilder b;
    b.movi(1, 0x5000).movi(2, 77);
    b.store(2, 1, 0, 8);
    b.load(3, 1, 0, 8);
    b.store(3, 1, 8, 8);
    b.halt();
    Pipeline pipe(b.build());
    ASSERT_TRUE(pipe.run().halted);
    EXPECT_EQ(pipe.memory().read(0x5008, 8), 77u);
}

TEST(Pipeline, PartialStoreForwarding)
{
    ProgramBuilder b;
    b.movi(1, 0x5000);
    b.movi(2, static_cast<std::int64_t>(0x1111111111111111ULL));
    b.store(2, 1, 0, 8);
    b.movi(3, 0xff);
    b.store(3, 1, 2, 1); // overwrite byte 2
    b.load(4, 1, 0, 8);  // must merge both stores
    b.movi(5, 0x6000);
    b.store(4, 5, 0, 8);
    b.halt();
    Pipeline pipe(b.build());
    ASSERT_TRUE(pipe.run().halted);
    EXPECT_EQ(pipe.memory().read(0x6000, 8), 0x1111111111ff1111ULL);
}

TEST(Pipeline, MispredictRecoveryIsArchitecturallyInvisible)
{
    // A data-dependent unpredictable branch pattern: results must still
    // match the functional reference exactly.
    ProgramBuilder b;
    b.movi(1, 12345).movi(2, 0).movi(3, 0).movi(4, 500);
    b.label("loop");
    // r1 = lcg(r1); branch on bit 3.
    b.movi(5, 1103515245);
    b.mul(1, 1, 5);
    b.addi(1, 1, 12345);
    b.shri(5, 1, 16);
    b.andi(5, 5, 8);
    b.beq(5, 0, "skip");
    b.addi(2, 2, 1);
    b.label("skip");
    b.addi(3, 3, 1);
    b.blt(3, 4, "loop");
    b.movi(6, 0x5000);
    b.store(2, 6, 0, 8);
    b.halt();
    const Program prog = b.build();

    SimMemory ref_mem;
    ArchState ref_state;
    ref_state.pc = prog.base();
    FunctionalCore::run(prog, ref_state, ref_mem);

    Pipeline pipe(prog);
    const auto res = pipe.run();
    ASSERT_TRUE(res.halted);
    EXPECT_EQ(pipe.memory().read(0x5000, 8), ref_mem.read(0x5000, 8));
    EXPECT_GT(pipe.stats().mispredicts, 50u); // it really mispredicted
    EXPECT_GT(pipe.stats().squashed, 0u);
}

TEST(Pipeline, CpuidSerializesAndCosts)
{
    ProgramBuilder straight;
    for (int i = 0; i < 32; ++i)
        straight.addi(1, 1, 1);
    straight.halt();
    Pipeline p1(straight.build());
    const auto base = p1.run().cycles;

    ProgramBuilder fenced;
    for (int i = 0; i < 16; ++i)
        fenced.addi(1, 1, 1);
    fenced.cpuid();
    for (int i = 0; i < 16; ++i)
        fenced.addi(1, 1, 1);
    fenced.halt();
    Pipeline p2(fenced.build());
    const auto with_fence = p2.run().cycles;
    EXPECT_GT(with_fence, base + 20); // drain + flush cost
    EXPECT_EQ(p2.stats().serializations, 1u);
}

TEST(Pipeline, SerializedHfiEnterCostsUnserializedDoesNot)
{
    auto measure = [](bool serialized) {
        ProgramBuilder b;
        b.movi(11, 0x400000).movi(12, 0xffff);
        b.hfiSetRegion(0, 11, 12, 4);
        b.movi(kExitHandlerReg, 0);
        b.hfiEnter(true, serialized);
        for (int i = 0; i < 16; ++i)
            b.addi(1, 1, 1);
        b.hfiExit();
        b.halt();
        Pipeline pipe(b.build());
        return pipe.run().cycles;
    };
    const auto serialized = measure(true);
    const auto unserialized = measure(false);
    // §3.4: serialization adds ~30-60 cycles.
    EXPECT_GT(serialized, unserialized + 25);
    EXPECT_LT(serialized, unserialized + 120);
}

TEST(Pipeline, HfiFaultCommitsWithReasonAndPc)
{
    ProgramBuilder b;
    b.movi(11, 0x400000).movi(12, 0xffff);
    b.hfiSetRegion(0, 11, 12, 4);
    b.movi(kExitHandlerReg, 0);
    b.hfiEnter(true, false);
    b.movi(1, 0x5000);
    b.load(2, 1, 0, 8); // no data region: faults
    b.movi(3, 1);       // must never commit
    b.halt();
    const Program prog = b.build();
    Pipeline pipe(prog);
    const auto res = pipe.run();
    EXPECT_FALSE(res.halted);
    EXPECT_TRUE(res.faulted);
    EXPECT_EQ(res.faultReason, core::ExitReason::DataBoundsViolation);
    EXPECT_EQ(res.faultPc, prog.addressOf(6));
}

TEST(Pipeline, FaultingLoadDoesNotFillDcache)
{
    // §4.1's invariant, microscopically: the line touched by an HFI-
    // rejected load must not be present afterwards.
    ProgramBuilder b;
    b.movi(11, 0x400000).movi(12, 0xffff);
    b.hfiSetRegion(0, 11, 12, 4);
    b.movi(11, 0x100000).movi(12, 0xfff); // data region: one page
    b.hfiSetRegion(2, 11, 12, 3);
    b.movi(kExitHandlerReg, 0);
    b.hfiEnter(true, false);
    b.movi(1, 0x200000); // outside the data region
    b.load(2, 1, 0, 8);
    b.halt();
    Pipeline pipe(b.build());
    const auto res = pipe.run();
    EXPECT_TRUE(res.faulted);
    EXPECT_FALSE(pipe.dcache().contains(0x200000));
}

TEST(Pipeline, AllowedLoadDoesFillDcache)
{
    ProgramBuilder b;
    b.movi(1, 0x300000);
    b.load(2, 1, 0, 8);
    b.halt();
    Pipeline pipe(b.build());
    ASSERT_TRUE(pipe.run().halted);
    EXPECT_TRUE(pipe.dcache().contains(0x300000));
}

TEST(Pipeline, CacheMissCostsShowUp)
{
    // A dependent pointer chain with 64 B stride: every hop is a fresh
    // line (miss) and must complete before the next address is known,
    // so the misses serialize. (Independent-address misses overlap —
    // memory-level parallelism — which a sibling check asserts.)
    ProgramBuilder b2;
    b2.movi(1, 0x100000).movi(2, 0);
    b2.movi(5, 64 * 64);
    b2.label("loop");
    b2.loadIndexed(2, 1, 2, 1, 0, 8); // r2 = mem[base + r2]
    b2.blt(2, 5, "loop");
    b2.halt();
    Pipeline pipe(b2.build());
    // Stage the chain: mem[base + i*64] = (i+1)*64.
    for (std::uint64_t i = 0; i < 65; ++i)
        pipe.memory().write(0x100000 + i * 64, (i + 1) * 64, 8);
    const auto res = pipe.run();
    ASSERT_TRUE(res.halted);
    EXPECT_GE(pipe.dcache().misses(), 64u);
    // 64 serialized misses x 80 cycles dominate.
    EXPECT_GT(res.cycles, 64 * 60u);

    // Contrast: the same addresses with *independent* loads overlap.
    ProgramBuilder b3;
    b3.movi(1, 0x100000).movi(2, 0).movi(5, 64 * 64);
    b3.label("loop");
    b3.loadIndexed(3, 1, 2, 1, 0, 8);
    b3.addi(2, 2, 64);
    b3.blt(2, 5, "loop");
    b3.halt();
    Pipeline mlp(b3.build());
    const auto mlp_res = mlp.run();
    ASSERT_TRUE(mlp_res.halted);
    EXPECT_LT(mlp_res.cycles, res.cycles / 4); // MLP hides the misses
}

TEST(Pipeline, RunsOffProgramEndsCleanly)
{
    ProgramBuilder b;
    b.movi(1, 1); // no halt
    Pipeline pipe(b.build());
    const auto res = pipe.run(100'000);
    EXPECT_FALSE(res.halted);
    EXPECT_FALSE(res.faulted);
    EXPECT_LT(res.cycles, 100'000u);
}

TEST(Pipeline, HmovTimingIsNotSlowerThanPlainLoad)
{
    // §4.2: the hmov check runs in parallel with translation — no added
    // load latency. Compare two identical loops, one hmov, one mov.
    auto measure = [](bool use_hmov) {
        ProgramBuilder b;
        b.movi(11, 0x400000).movi(12, 0xffff);
        b.hfiSetRegion(0, 11, 12, 4);
        b.movi(11, 0).movi(12, 0xffffff); // broad data region
        b.hfiSetRegion(2, 11, 12, 3);
        b.movi(11, 0x100000).movi(12, 1 << 20);
        b.hfiSetRegion(core::kFirstExplicitRegion, 11, 12, 1 | 2 | 8);
        b.movi(kExitHandlerReg, 0);
        b.hfiEnter(true, false);
        b.movi(1, 0x100000); // base for the mov version
        b.movi(2, 0);
        b.movi(5, 4096);
        b.label("loop");
        if (use_hmov) {
            Inst load;
            load.op = Opcode::HmovLoad;
            load.rd = 3;
            load.rb = 2;
            load.useIndex = true;
            load.region = 0;
            load.width = 8;
            load.length = 4; // equalize encoding to isolate check cost
            b.emit(load);
        } else {
            b.loadIndexed(3, 1, 2, 1, 0, 8);
        }
        b.addi(2, 2, 8);
        b.blt(2, 5, "loop");
        b.hfiExit();
        b.halt();
        Pipeline pipe(b.build());
        return pipe.run().cycles;
    };
    const auto hmov_cycles = measure(true);
    const auto mov_cycles = measure(false);
    EXPECT_LE(hmov_cycles, mov_cycles + 8);
}

} // namespace
