/**
 * @file
 * Tests for the micro-ISA definitions and the assembler: encoded
 * lengths (hmov's prefix, the emulation's long displacement forms),
 * label resolution, and address layout.
 */

#include <gtest/gtest.h>

#include "sim/program.h"

namespace
{

using namespace hfi::sim;

TEST(Isa, Classification)
{
    EXPECT_TRUE(isMemory(Opcode::Load));
    EXPECT_TRUE(isMemory(Opcode::HmovStore));
    EXPECT_FALSE(isMemory(Opcode::Add));
    EXPECT_TRUE(isControl(Opcode::Beq));
    EXPECT_TRUE(isControl(Opcode::Ret));
    EXPECT_FALSE(isControl(Opcode::Syscall));
    EXPECT_TRUE(isConditionalBranch(Opcode::Blt));
    EXPECT_FALSE(isConditionalBranch(Opcode::Jmp));
}

TEST(Isa, EncodedLengths)
{
    Inst hmov;
    hmov.op = Opcode::HmovLoad;
    EXPECT_EQ(defaultLength(hmov), 5); // prefix byte on top of a mov

    Inst small_mov;
    small_mov.op = Opcode::Load;
    small_mov.imm = 0x100;
    EXPECT_EQ(defaultLength(small_mov), 4);

    Inst abs_mov;
    abs_mov.op = Opcode::Load;
    abs_mov.imm = 0x10000000; // the emulation's fixed heap base
    EXPECT_EQ(defaultLength(abs_mov), 7);

    Inst cpuid;
    cpuid.op = Opcode::Cpuid;
    EXPECT_EQ(defaultLength(cpuid), 2);

    Inst big_movi;
    big_movi.op = Opcode::Movi;
    big_movi.imm = 1LL << 40;
    EXPECT_EQ(defaultLength(big_movi), 10); // movabs
}

TEST(Isa, OpcodeNamesAreDistinct)
{
    EXPECT_STREQ(opcodeName(Opcode::HmovLoad), "hmov.load");
    EXPECT_STREQ(opcodeName(Opcode::HfiEnter), "hfi_enter");
    EXPECT_STREQ(opcodeName(Opcode::Flush), "clflush");
}

TEST(Builder, AddressesFollowLengths)
{
    ProgramBuilder b(0x1000);
    b.movi(1, 5);   // 5 bytes
    b.add(2, 1, 1); // 4 bytes
    b.halt();       // 4 bytes
    const Program prog = b.build();
    EXPECT_EQ(prog.base(), 0x1000u);
    EXPECT_EQ(prog.addressOf(0), 0x1000u);
    EXPECT_EQ(prog.addressOf(1), 0x1005u);
    EXPECT_EQ(prog.addressOf(2), 0x1009u);
    EXPECT_EQ(prog.end(), 0x100du);
    EXPECT_EQ(prog.codeBytes(), 13u);
}

TEST(Builder, AtFindsOnlyInstructionStarts)
{
    ProgramBuilder b(0x1000);
    b.movi(1, 5);
    b.halt();
    const Program prog = b.build();
    ASSERT_NE(prog.at(0x1000), nullptr);
    EXPECT_EQ(prog.at(0x1000)->op, Opcode::Movi);
    EXPECT_EQ(prog.at(0x1001), nullptr); // mid-instruction
    EXPECT_EQ(prog.at(0x2000), nullptr); // outside
}

TEST(Builder, ForwardAndBackwardLabels)
{
    ProgramBuilder b;
    b.movi(1, 3);
    b.label("loop");
    b.subi(1, 1, 1);
    b.bne(1, 0, "loop");  // backward
    b.jmp("end");         // forward
    b.movi(2, 99);
    b.label("end");
    b.halt();
    const Program prog = b.build();
    const Inst &bne_inst = prog.instructions()[2];
    EXPECT_EQ(bne_inst.target, prog.addressOf(1));
    const Inst &jmp_inst = prog.instructions()[3];
    EXPECT_EQ(jmp_inst.target, prog.addressOf(5));
}

TEST(Builder, UndefinedLabelThrows)
{
    ProgramBuilder b;
    b.jmp("nowhere");
    EXPECT_THROW(b.build(), std::logic_error);
}

TEST(Builder, DuplicateLabelThrows)
{
    ProgramBuilder b;
    b.label("x");
    b.nop();
    EXPECT_THROW(b.label("x"), std::logic_error);
}

TEST(Builder, HmovCarriesRegionAndAddressing)
{
    ProgramBuilder b;
    b.hmovLoad(2, 5, 6, 8, 0x40, 4);
    const Program prog = b.build();
    const Inst &inst = prog.instructions()[0];
    EXPECT_EQ(inst.op, Opcode::HmovLoad);
    EXPECT_EQ(inst.region, 2);
    EXPECT_EQ(inst.rd, 5);
    EXPECT_EQ(inst.rb, 6);
    EXPECT_EQ(inst.scale, 8);
    EXPECT_EQ(inst.imm, 0x40);
    EXPECT_EQ(inst.width, 4);
    EXPECT_TRUE(inst.useIndex);
}

} // namespace
