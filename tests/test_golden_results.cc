/**
 * @file
 * Golden pins for every headline number in EXPERIMENTS.md.
 *
 * All results below come from deterministic virtual-clock or modeled-
 * cycle computations, so they are exactly reproducible; the tolerances
 * are the display precision the numbers are reported at, not noise
 * allowances. Any refactor of the simulator, backends, or platform that
 * shifts a modeled number fails here before it can silently rewrite the
 * paper-comparison tables:
 *
 *  - §6.1 heap growth: 10.92 s (guard pages) vs 370 ms (HFI), ~29.5x.
 *  - §6.3.1 FaaS teardown: 25.6 / 23.1 / 31.1 µs per sandbox.
 *  - Table 1: HFI tail-latency deltas +0.15/+0.00/+0.01/+1.16%, Swivel
 *    +34.3/+1.1/+10.4/+73.5%, with the Swivel binary bloat.
 *  - Fig 7: 4-cycle hit on the secret without HFI, flat 80-cycle misses
 *    with HFI; §3.4 exit-bypass postures.
 *  - Fig 2 kernel suite: exact modeled cycle and instruction counts for
 *    every kernel, mode, and scale the throughput bench runs.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/context.h"
#include "faas/platform.h"
#include "sfi/guard_page_backend.h"
#include "sfi/hfi_backend.h"
#include "sfi/runtime.h"
#include "sim/kernels.h"
#include "sim/pipeline.h"
#include "spectre/attacker.h"
#include "swivel/swivel.h"
#include "vm/mmu.h"
#include "workloads/crypto.h"
#include "workloads/faas_workloads.h"
#include "workloads/image.h"

namespace
{

using namespace hfi;

// ---------------------------------------------------------------------
// §6.1: heap growth, 1 page -> 4 GiB in 64 KiB increments.
// ---------------------------------------------------------------------

/** Same loop as bench/heap_growth.cc for one backend. */
template <typename Backend, typename... CtxArgs>
double
heapGrowthSeconds()
{
    constexpr std::uint64_t total_pages = 65536;
    constexpr double grow_runtime_ns = 5640.0;

    vm::VirtualClock clock;
    vm::Mmu mmu(clock);
    core::HfiContext ctx(clock);
    Backend backend = [&]() -> Backend {
        if constexpr (sizeof...(CtxArgs) == 0)
            return Backend(mmu);
        else
            return Backend(mmu, ctx);
    }();
    EXPECT_TRUE(backend.create(1, total_pages));
    const double t0 = clock.nowNs();
    for (std::uint64_t p = 1; p < total_pages; ++p) {
        clock.tick(clock.nsToCycles(grow_runtime_ns));
        backend.grow(p, p + 1);
    }
    return (clock.nowNs() - t0) / 1e9;
}

TEST(GoldenResults, HeapGrowthSection61)
{
    const double guard_sec =
        heapGrowthSeconds<sfi::GuardPageBackend>();
    const double hfi_sec =
        heapGrowthSeconds<sfi::HfiBackend, core::HfiContext>();

    EXPECT_NEAR(guard_sec, 10.92, 0.005);
    EXPECT_NEAR(hfi_sec * 1e3, 370.0, 0.5);
    EXPECT_NEAR(guard_sec / hfi_sec, 29.5, 0.05);
}

// ---------------------------------------------------------------------
// §6.3.1: per-sandbox teardown cost.
// ---------------------------------------------------------------------

/** Same loop as bench/faas_teardown.cc. */
double
teardownPerSandboxUs(sfi::BackendKind kind, sfi::ReclaimPolicy policy,
                     std::size_t batch)
{
    vm::VirtualClock clock;
    vm::Mmu mmu(clock, 48);
    core::HfiContext ctx(clock);
    sfi::RuntimeConfig config;
    config.backend = kind;
    sfi::Runtime runtime(mmu, ctx, config);

    constexpr int kSandboxes = 2000;
    std::vector<std::unique_ptr<sfi::Sandbox>> owned;
    std::vector<sfi::Sandbox *> raw;
    owned.reserve(kSandboxes);
    for (int i = 0; i < kSandboxes; ++i) {
        auto sandbox = kind == sfi::BackendKind::GuardPages
                           ? runtime.createSandbox({1, 65536})
                           : runtime.createSandbox({1, 16});
        if (!sandbox)
            return -1;
        sandbox->invoke([](sfi::Sandbox &s) {
            for (std::uint64_t off = 0; off < 64 * 1024; off += 4096)
                s.store<std::uint64_t>(off, 0x746c7561666564ULL);
        });
        raw.push_back(sandbox.get());
        owned.push_back(std::move(sandbox));
    }

    const double t0 = clock.nowNs();
    runtime.reclaim(raw, policy, batch);
    return (clock.nowNs() - t0) / 1e3 / kSandboxes;
}

TEST(GoldenResults, FaasTeardownSection631)
{
    EXPECT_NEAR(teardownPerSandboxUs(sfi::BackendKind::GuardPages,
                                     sfi::ReclaimPolicy::Stock, 1),
                25.6, 0.05);
    EXPECT_NEAR(teardownPerSandboxUs(sfi::BackendKind::Hfi,
                                     sfi::ReclaimPolicy::Batched, 32),
                23.1, 0.05);
    EXPECT_NEAR(teardownPerSandboxUs(sfi::BackendKind::GuardPages,
                                     sfi::ReclaimPolicy::Batched, 32),
                31.1, 0.05);
}

// ---------------------------------------------------------------------
// Table 1: Spectre protection vs FaaS tail latency.
// ---------------------------------------------------------------------

struct Table1Workload
{
    std::string name;
    swivel::CodeProfile profile;
    faas::Handler handler;
    unsigned requests;
    // Pinned outcomes (percent tail-latency increase over Unsafe, and
    // binary sizes in MiB at the bench's 0.1 MiB display precision).
    double hfiTailDeltaPct;
    double swivelTailDeltaPct;
    double stockBinMib;
    double swivelBinMib;
};

std::vector<Table1Workload>
table1Workloads()
{
    std::vector<Table1Workload> list;
    list.push_back(
        {"XML to JSON", swivel::xmlToJsonProfile(),
         [](sfi::Sandbox &s, std::uint32_t seed) {
             const std::string xml =
                 workloads::faas::makeXmlDocument(220, seed);
             s.memory().writeBytes(64, xml.data(), xml.size());
             workloads::faas::xmlToJson(s, 64, xml.size());
         },
         300, 0.15, 34.3, 3.5, 4.1});
    list.push_back(
        {"Image classification", swivel::imageClassifyProfile(),
         [](sfi::Sandbox &s, std::uint32_t seed) {
             const auto img = workloads::image::makeTestImage(96, 96, seed);
             s.memory().writeBytes(64, img.data(), img.size());
             workloads::faas::classifyImage(s, 64, 96, seed);
         },
         200, 0.00, 1.1, 34.3, 34.5});
    list.push_back(
        {"Check SHA-256", swivel::checkShaProfile(),
         [](sfi::Sandbox &s, std::uint32_t seed) {
             std::vector<std::uint8_t> payload(96 * 1024);
             for (std::size_t i = 0; i < payload.size(); ++i)
                 payload[i] = static_cast<std::uint8_t>(i ^ seed);
             s.memory().writeBytes(64, payload.data(), payload.size());
             const auto digest = workloads::crypto::sha256(
                 payload.data(), payload.size());
             s.memory().writeBytes(1 << 20, digest.data(), 32);
             workloads::faas::checkSha256(s, 64, payload.size(), 1 << 20);
         },
         300, 0.01, 10.4, 3.9, 4.6});
    list.push_back(
        {"Templated HTML", swivel::templatedHtmlProfile(),
         [](sfi::Sandbox &s, std::uint32_t seed) {
             const std::string tpl = workloads::faas::makeHtmlTemplate(0);
             s.memory().writeBytes(64, tpl.data(), tpl.size());
             workloads::faas::renderTemplate(s, 64, tpl.size(), 24, seed);
         },
         400, 1.16, 73.5, 3.6, 4.2});
    return list;
}

faas::RunResult
runTable1(const Table1Workload &workload, faas::Protection protection)
{
    vm::VirtualClock clock;
    vm::Mmu mmu(clock);
    core::HfiContext ctx(clock);
    sfi::RuntimeConfig runtime_config;
    runtime_config.backend = sfi::BackendKind::GuardPages;
    sfi::Runtime runtime(mmu, ctx, runtime_config);
    auto sandbox = runtime.createSandbox({64, 4096});
    EXPECT_TRUE(sandbox);

    faas::PlatformConfig config;
    config.clients = 100;
    config.requests = workload.requests;
    config.protection = protection;
    config.stockBinaryBytes =
        workload.profile.codeBytes + workload.profile.dataBytes;
    if (protection == faas::Protection::Swivel)
        config.swivelEffect = swivel::apply(workload.profile);
    return faas::runClosedLoop(config, *sandbox, ctx, workload.handler);
}

TEST(GoldenResults, Table1TailLatencyAndBinaryBloat)
{
    for (const auto &workload : table1Workloads()) {
        SCOPED_TRACE(workload.name);
        const auto unsafe_run =
            runTable1(workload, faas::Protection::Unsafe);
        const auto hfi_run =
            runTable1(workload, faas::Protection::HfiNative);
        const auto swivel_run =
            runTable1(workload, faas::Protection::Swivel);

        const double hfi_delta =
            100.0 * (hfi_run.tailLatencyNs / unsafe_run.tailLatencyNs -
                     1.0);
        const double swivel_delta =
            100.0 *
            (swivel_run.tailLatencyNs / unsafe_run.tailLatencyNs - 1.0);
        EXPECT_NEAR(hfi_delta, workload.hfiTailDeltaPct, 0.005);
        EXPECT_NEAR(swivel_delta, workload.swivelTailDeltaPct, 0.05);

        // The paper's bloat story: HFI adds nothing, Swivel ~0.6 MiB.
        EXPECT_EQ(hfi_run.binaryBytes, unsafe_run.binaryBytes);
        EXPECT_NEAR(
            static_cast<double>(unsafe_run.binaryBytes) / (1 << 20),
            workload.stockBinMib, 0.05);
        EXPECT_NEAR(
            static_cast<double>(swivel_run.binaryBytes) / (1 << 20),
            workload.swivelBinMib, 0.05);
    }
}

// ---------------------------------------------------------------------
// Fig 7 / §5.3: Spectre PoC probe latencies.
// ---------------------------------------------------------------------

TEST(GoldenResults, Fig7SpectreProbeLatencies)
{
    for (const auto variant :
         {spectre::Variant::Pht, spectre::Variant::Btb}) {
        const std::uint8_t secret =
            variant == spectre::Variant::Pht ? 'I' : 'S';
        SCOPED_TRACE(variant == spectre::Variant::Pht ? "pht" : "btb");

        const auto open_run = spectre::runAttack(variant, false, secret);
        EXPECT_TRUE(open_run.secretLeaked);
        EXPECT_EQ(open_run.probeLatency[secret], 4u); // dcache hit
        for (unsigned g = 0; g < 256; ++g) {
            if (g != secret) {
                EXPECT_GE(open_run.probeLatency[g], open_run.threshold)
                    << "guess " << g;
            }
        }

        const auto hfi_run = spectre::runAttack(variant, true, secret);
        EXPECT_FALSE(hfi_run.secretLeaked);
        for (unsigned g = 0; g < 256; ++g)
            EXPECT_EQ(hfi_run.probeLatency[g], 80u) << "guess " << g;
    }
}

TEST(GoldenResults, ExitBypassPostures)
{
    // §3.4: only the unserialized exit leaks.
    EXPECT_TRUE(spectre::runExitBypassAttack(
                    spectre::ExitPosture::Unserialized, 'X')
                    .secretLeaked);
    EXPECT_FALSE(spectre::runExitBypassAttack(
                     spectre::ExitPosture::Serialized, 'X')
                     .secretLeaked);
    EXPECT_FALSE(spectre::runExitBypassAttack(
                     spectre::ExitPosture::SwitchOnExit, 'X')
                     .secretLeaked);
}

// ---------------------------------------------------------------------
// Fig 2 kernels: exact modeled cycle/instruction counts.
// ---------------------------------------------------------------------

struct GoldenKernelRow
{
    const char *name;
    sim::kernels::Mode mode;
    std::uint64_t scale;
    std::uint64_t cycles;
    std::uint64_t instructions;
};

// Captured from the seed-era simulator; the hot-path rewrite (event-
// driven clock, µop predecode, ring buffers) must reproduce every row
// bit for bit.
const GoldenKernelRow kGoldenKernels[] = {
    {"blake3-scalar", sim::kernels::Mode::HfiHardware, 1, 22792ull, 32814ull},
    {"blake3-scalar", sim::kernels::Mode::HfiEmulation, 1, 22896ull, 32812ull},
    {"ackermann", sim::kernels::Mode::HfiHardware, 1, 59718ull, 109215ull},
    {"ackermann", sim::kernels::Mode::HfiEmulation, 1, 60017ull, 109213ull},
    {"base64", sim::kernels::Mode::HfiHardware, 1, 89429ull, 184015ull},
    {"base64", sim::kernels::Mode::HfiEmulation, 1, 93525ull, 184013ull},
    {"ctype", sim::kernels::Mode::HfiHardware, 1, 122695ull, 240015ull},
    {"ctype", sim::kernels::Mode::HfiEmulation, 1, 122799ull, 240013ull},
    {"fib2", sim::kernels::Mode::HfiHardware, 1, 24249ull, 28018ull},
    {"fib2", sim::kernels::Mode::HfiEmulation, 1, 25354ull, 28016ull},
    {"gimli", sim::kernels::Mode::HfiHardware, 1, 23492ull, 34114ull},
    {"gimli", sim::kernels::Mode::HfiEmulation, 1, 23595ull, 34112ull},
    {"keccak", sim::kernels::Mode::HfiHardware, 1, 21467ull, 30514ull},
    {"keccak", sim::kernels::Mode::HfiEmulation, 1, 21572ull, 30512ull},
    {"memmove", sim::kernels::Mode::HfiHardware, 1, 63987ull, 123489ull},
    {"memmove", sim::kernels::Mode::HfiEmulation, 1, 70171ull, 123487ull},
    {"minicsv", sim::kernels::Mode::HfiHardware, 1, 114241ull, 249883ull},
    {"minicsv", sim::kernels::Mode::HfiEmulation, 1, 114574ull, 249881ull},
    {"nestedloop", sim::kernels::Mode::HfiHardware, 1, 236054ull, 288914ull},
    {"nestedloop", sim::kernels::Mode::HfiEmulation, 1, 236155ull, 288912ull},
    {"random", sim::kernels::Mode::HfiHardware, 1, 121859ull, 120015ull},
    {"random", sim::kernels::Mode::HfiEmulation, 1, 131979ull, 120013ull},
    {"ratelimit", sim::kernels::Mode::HfiHardware, 1, 367653ull, 254200ull},
    {"ratelimit", sim::kernels::Mode::HfiEmulation, 1, 367772ull, 254198ull},
    {"sieve", sim::kernels::Mode::HfiHardware, 1, 48726ull, 160214ull},
    {"sieve", sim::kernels::Mode::HfiEmulation, 1, 48904ull, 160212ull},
    {"switch", sim::kernels::Mode::HfiHardware, 1, 1366165ull, 148356ull},
    {"switch", sim::kernels::Mode::HfiEmulation, 1, 1408302ull, 148354ull},
    {"xblabla20", sim::kernels::Mode::HfiHardware, 1, 35869ull, 50015ull},
    {"xblabla20", sim::kernels::Mode::HfiEmulation, 1, 38474ull, 50013ull},
    {"xchacha20", sim::kernels::Mode::HfiHardware, 1, 35869ull, 50015ull},
    {"xchacha20", sim::kernels::Mode::HfiEmulation, 1, 38474ull, 50013ull},
    {"blake3-scalar", sim::kernels::Mode::HfiHardware, 2, 45192ull, 65614ull},
    {"blake3-scalar", sim::kernels::Mode::HfiEmulation, 2, 45296ull, 65612ull},
    {"ackermann", sim::kernels::Mode::HfiHardware, 2, 119318ull, 218415ull},
    {"ackermann", sim::kernels::Mode::HfiEmulation, 2, 119717ull, 218413ull},
    {"base64", sim::kernels::Mode::HfiHardware, 2, 177429ull, 368015ull},
    {"base64", sim::kernels::Mode::HfiEmulation, 2, 185525ull, 368013ull},
    {"ctype", sim::kernels::Mode::HfiHardware, 2, 242695ull, 480015ull},
    {"ctype", sim::kernels::Mode::HfiEmulation, 2, 242799ull, 480013ull},
    {"fib2", sim::kernels::Mode::HfiHardware, 2, 48249ull, 56018ull},
    {"fib2", sim::kernels::Mode::HfiEmulation, 2, 50354ull, 56016ull},
    {"gimli", sim::kernels::Mode::HfiHardware, 2, 46592ull, 68214ull},
    {"gimli", sim::kernels::Mode::HfiEmulation, 2, 46695ull, 68212ull},
    {"keccak", sim::kernels::Mode::HfiHardware, 2, 42467ull, 61014ull},
    {"keccak", sim::kernels::Mode::HfiEmulation, 2, 42572ull, 61012ull},
    {"memmove", sim::kernels::Mode::HfiHardware, 2, 125642ull, 246964ull},
    {"memmove", sim::kernels::Mode::HfiEmulation, 2, 137958ull, 246962ull},
    {"minicsv", sim::kernels::Mode::HfiHardware, 2, 226159ull, 499747ull},
    {"minicsv", sim::kernels::Mode::HfiEmulation, 2, 226492ull, 499745ull},
    {"nestedloop", sim::kernels::Mode::HfiHardware, 2, 471854ull, 577814ull},
    {"nestedloop", sim::kernels::Mode::HfiEmulation, 2, 471955ull, 577812ull},
    {"random", sim::kernels::Mode::HfiHardware, 2, 241859ull, 240015ull},
    {"random", sim::kernels::Mode::HfiEmulation, 2, 261979ull, 240013ull},
    {"ratelimit", sim::kernels::Mode::HfiHardware, 2, 758863ull, 508259ull},
    {"ratelimit", sim::kernels::Mode::HfiEmulation, 2, 758982ull, 508257ull},
    {"sieve", sim::kernels::Mode::HfiHardware, 2, 97326ull, 320414ull},
    {"sieve", sim::kernels::Mode::HfiEmulation, 2, 97504ull, 320412ull},
    {"switch", sim::kernels::Mode::HfiHardware, 2, 2733174ull, 296673ull},
    {"switch", sim::kernels::Mode::HfiEmulation, 2, 2817492ull, 296671ull},
    {"xblabla20", sim::kernels::Mode::HfiHardware, 2, 70869ull, 100015ull},
    {"xblabla20", sim::kernels::Mode::HfiEmulation, 2, 75974ull, 100013ull},
    {"xchacha20", sim::kernels::Mode::HfiHardware, 2, 70869ull, 100015ull},
    {"xchacha20", sim::kernels::Mode::HfiEmulation, 2, 75974ull, 100013ull},
};

TEST(GoldenResults, Fig2KernelCycleCounts)
{
    const auto &suite = sim::kernels::suite();
    for (const auto &row : kGoldenKernels) {
        const auto it = std::find_if(
            suite.begin(), suite.end(),
            [&row](const auto &k) { return k.name == row.name; });
        ASSERT_NE(it, suite.end()) << row.name;
        SCOPED_TRACE(std::string(row.name) +
                     (row.mode == sim::kernels::Mode::HfiHardware
                          ? "/hw/"
                          : "/emu/") +
                     std::to_string(row.scale));

        sim::Pipeline pipe(it->build(row.mode, row.scale));
        it->stage(pipe.memory(), row.scale, 42);
        const auto res = pipe.run(500'000'000);
        EXPECT_EQ(res.cycles, row.cycles);
        EXPECT_EQ(res.instructions, row.instructions);
        EXPECT_TRUE(res.halted);
    }
}

} // namespace
