/**
 * @file
 * Tests for the FaaS platform (Table 1 harness) and the NGINX/OpenSSL
 * server (Fig 5 harness): latency statistics, closed-loop queueing
 * behaviour, protection-scheme cost ordering, and real ciphertext.
 */

#include <gtest/gtest.h>

#include "faas/latency.h"
#include "faas/platform.h"
#include "nginx/server.h"
#include "sfi/runtime.h"
#include "workloads/crypto.h"

namespace
{

using namespace hfi;

// ------------------------------------------------------------ latency

TEST(LatencyRecorder, MeanAndPercentiles)
{
    faas::LatencyRecorder rec;
    for (int i = 1; i <= 100; ++i)
        rec.add(i * 1000.0);
    EXPECT_DOUBLE_EQ(rec.mean(), 50500.0);
    EXPECT_NEAR(rec.percentile(50), 50000.0, 1500.0);
    EXPECT_NEAR(rec.percentile(99), 99000.0, 1500.0);
    EXPECT_DOUBLE_EQ(rec.percentile(100), 100000.0);
    EXPECT_EQ(rec.count(), 100u);
}

TEST(LatencyRecorder, Throughput)
{
    faas::LatencyRecorder rec;
    for (int i = 0; i < 500; ++i)
        rec.add(1.0);
    EXPECT_NEAR(rec.throughput(1e9), 500.0, 0.01); // 500 reqs in 1 s
}

TEST(LatencyRecorder, EmptyIsZero)
{
    faas::LatencyRecorder rec;
    EXPECT_EQ(rec.mean(), 0.0);
    EXPECT_EQ(rec.percentile(99), 0.0);
    EXPECT_EQ(rec.throughput(1e9), 0.0);
}

// ----------------------------------------------------------- platform

class PlatformTest : public ::testing::Test
{
  protected:
    std::unique_ptr<sfi::Sandbox>
    makeSandbox()
    {
        sfi::RuntimeConfig config;
        config.backend = sfi::BackendKind::GuardPages;
        sfi::Runtime runtime(mmu, ctx, config);
        return runtime.createSandbox({4, 64});
    }

    faas::RunResult
    run(faas::Protection protection, unsigned requests = 120)
    {
        auto sandbox = makeSandbox();
        faas::PlatformConfig config;
        config.clients = 10;
        config.requests = requests;
        config.protection = protection;
        config.stockBinaryBytes = 3 << 20;
        if (protection == faas::Protection::Swivel) {
            config.swivelEffect =
                swivel::apply(swivel::templatedHtmlProfile());
        }
        return faas::runClosedLoop(config, *sandbox, ctx,
                                   [](sfi::Sandbox &s, std::uint32_t seed) {
                                       // A small real handler.
                                       for (int i = 0; i < 200; ++i)
                                           s.store<std::uint32_t>(
                                               64 + (i % 64) * 4,
                                               seed + i);
                                       s.chargeOps(20'000);
                                   });
    }

    vm::VirtualClock clock;
    vm::Mmu mmu{clock};
    core::HfiContext ctx{clock};
};

TEST_F(PlatformTest, ClosedLoopLatencyNearClientsTimesService)
{
    const auto res = run(faas::Protection::Unsafe);
    // Saturated single server with C clients: latency ~= C x service.
    const double service_ns = 1e9 / res.throughputRps;
    EXPECT_NEAR(res.avgLatencyNs / service_ns, 10.0, 1.5);
    EXPECT_GE(res.tailLatencyNs, res.avgLatencyNs);
}

TEST_F(PlatformTest, HfiCostsAtMostAFewPercent)
{
    const auto unsafe_run = run(faas::Protection::Unsafe);
    const auto hfi_run = run(faas::Protection::HfiNative);
    const double tail_increase =
        hfi_run.tailLatencyNs / unsafe_run.tailLatencyNs - 1.0;
    // Table 1: 0%-2%.
    EXPECT_GE(tail_increase, -0.005);
    EXPECT_LE(tail_increase, 0.02);
}

TEST_F(PlatformTest, SwivelCostsMuchMore)
{
    const auto unsafe_run = run(faas::Protection::Unsafe);
    const auto swivel_run = run(faas::Protection::Swivel);
    const double tail_increase =
        swivel_run.tailLatencyNs / unsafe_run.tailLatencyNs - 1.0;
    // The branchy HTML profile sits at the high end of Table 1.
    EXPECT_GT(tail_increase, 0.3);
    EXPECT_GT(unsafe_run.throughputRps, swivel_run.throughputRps);
}

TEST_F(PlatformTest, SwitchOnExitCheaperThanSerialized)
{
    const auto serialized = run(faas::Protection::HfiNative);
    const auto soe = run(faas::Protection::HfiSwitchOnExit);
    EXPECT_LE(soe.avgLatencyNs, serialized.avgLatencyNs * 1.001);
}

TEST_F(PlatformTest, BinarySizesReported)
{
    const auto unsafe_run = run(faas::Protection::Unsafe);
    const auto swivel_run = run(faas::Protection::Swivel);
    EXPECT_EQ(unsafe_run.binaryBytes, 3u << 20);
    EXPECT_GT(swivel_run.binaryBytes, unsafe_run.binaryBytes);
}

TEST_F(PlatformTest, ProtectionNames)
{
    EXPECT_STREQ(faas::protectionName(faas::Protection::Unsafe),
                 "Lucet(Unsafe)");
    EXPECT_STREQ(faas::protectionName(faas::Protection::Swivel),
                 "Lucet+Swivel");
}

// -------------------------------------------------------------- nginx

class NginxTest : public ::testing::Test
{
  protected:
    nginx::ServeStats
    serve(nginx::SessionProtection protection, std::uint64_t file_size,
          std::uint64_t requests = 50)
    {
        vm::VirtualClock clock;
        vm::Mmu mmu(clock);
        core::HfiContext ctx(clock);
        mpk::MpkDomainManager mpk_mgr(mmu);
        syscall::MiniKernel kernel(clock);
        nginx::ServerConfig config;
        config.protection = protection;
        nginx::NginxServer server(mmu, ctx, mpk_mgr, kernel, config);
        server.addFile("/index.bin", file_size, 7);
        return server.serve("/index.bin", requests);
    }
};

TEST_F(NginxTest, ServesRequestsAndBytes)
{
    const auto stats = serve(nginx::SessionProtection::None, 16 * 1024);
    EXPECT_EQ(stats.requests, 50u);
    EXPECT_EQ(stats.bytesServed, 50u * 16 * 1024);
    EXPECT_GT(stats.throughputRps(), 0.0);
}

TEST_F(NginxTest, ProtectionOverheadOrdering)
{
    // Fig 5: unsafe > MPK > HFI throughput, with single-digit-percent
    // spreads.
    for (std::uint64_t size : {0ULL, 4096ULL, 65536ULL}) {
        const double none =
            serve(nginx::SessionProtection::None, size).throughputRps();
        const double mpk_rps =
            serve(nginx::SessionProtection::Mpk, size).throughputRps();
        const double hfi_rps =
            serve(nginx::SessionProtection::Hfi, size).throughputRps();
        EXPECT_GT(none, mpk_rps) << size;
        EXPECT_GT(mpk_rps, hfi_rps) << size;
        const double hfi_overhead = none / hfi_rps - 1.0;
        EXPECT_LT(hfi_overhead, 0.12) << size;
        EXPECT_GT(hfi_overhead, 0.005) << size;
    }
}

TEST_F(NginxTest, OverheadShrinksWithFileSize)
{
    // Crossings per request are roughly constant; crypto grows with
    // the payload, so relative overhead falls — Fig 5's 6.1% -> 2.9%.
    auto overhead = [&](std::uint64_t size) {
        const double none =
            serve(nginx::SessionProtection::None, size).throughputRps();
        const double hfi_rps =
            serve(nginx::SessionProtection::Hfi, size).throughputRps();
        return none / hfi_rps - 1.0;
    };
    EXPECT_GT(overhead(0), overhead(128 * 1024));
}

TEST_F(NginxTest, CiphertextIsRealAndDeterministic)
{
    vm::VirtualClock clock;
    vm::Mmu mmu(clock);
    core::HfiContext ctx(clock);
    mpk::MpkDomainManager mpk_mgr(mmu);
    syscall::MiniKernel kernel(clock);
    nginx::NginxServer a(mmu, ctx, mpk_mgr, kernel);
    a.addFile("/f", 4096, 3);
    a.serve("/f", 3);

    vm::VirtualClock clock2;
    vm::Mmu mmu2(clock2);
    core::HfiContext ctx2(clock2);
    mpk::MpkDomainManager mpk2(mmu2);
    syscall::MiniKernel kernel2(clock2);
    nginx::NginxServer b(mmu2, ctx2, mpk2, kernel2);
    b.addFile("/f", 4096, 3);
    b.serve("/f", 3);

    EXPECT_EQ(a.ciphertextChecksum(), b.ciphertextChecksum());
    EXPECT_NE(a.ciphertextChecksum(), 0xcbf29ce484222325ULL); // moved
}

TEST_F(NginxTest, HfiProtectionSealsSessionKeys)
{
    // While the crypto sandbox is active, the session-key page is the
    // only implicit data region — everything else is sealed; from
    // outside the sandbox, HFI is off. This mirrors the ERIM threat
    // model in HFI terms.
    vm::VirtualClock clock;
    vm::Mmu mmu(clock);
    core::HfiContext ctx(clock);
    mpk::MpkDomainManager mpk_mgr(mmu);
    syscall::MiniKernel kernel(clock);
    nginx::ServerConfig config;
    config.protection = nginx::SessionProtection::Hfi;
    nginx::NginxServer server(mmu, ctx, mpk_mgr, kernel, config);
    server.addFile("/f", 1024, 1);
    server.serve("/f", 1);

    // After serving, HFI is disabled (we are back in the host).
    EXPECT_FALSE(ctx.enabled());
    // The key region was programmed during the serve: verify that a
    // sandboxed access to the key page would have been admitted and an
    // access elsewhere rejected.
    core::HfiRegisterFile bank = ctx.registerFile();
    bank.enabled = true;
    EXPECT_TRUE(core::AccessChecker::checkData(
                    bank, server.sessionKeyAddress(), 8, false)
                    .ok);
    EXPECT_FALSE(
        core::AccessChecker::checkData(bank, 0x12345000, 8, false).ok);
}

TEST_F(NginxTest, MpkProtectionSealsKeysOutsideDomain)
{
    vm::VirtualClock clock;
    vm::Mmu mmu(clock);
    core::HfiContext ctx(clock);
    mpk::MpkDomainManager mpk_mgr(mmu);
    syscall::MiniKernel kernel(clock);
    nginx::ServerConfig config;
    config.protection = nginx::SessionProtection::Mpk;
    nginx::NginxServer server(mmu, ctx, mpk_mgr, kernel, config);
    server.addFile("/f", 1024, 1);
    server.serve("/f", 1);
    // Outside the crypto domain (PKRU closed), the key page is sealed.
    EXPECT_FALSE(mpk_mgr.checkAccess(server.sessionKeyAddress(), false));
}

} // namespace
