/**
 * @file
 * Property test of the word-granular SimMemory against a byte-wise
 * reference model.
 *
 * SimMemory's fast path memcpys whole words within a page and caches
 * the last page touched; the reference model below is the obviously
 * correct formulation — one map<addr, byte> per written byte, absent
 * bytes read as zero. A deterministic fuzz drives both with the same
 * mixed-width access sequence (biased toward page-boundary straddles
 * and read-before-write addresses) and requires every read to agree.
 */

#include <gtest/gtest.h>

#include <map>

#include "sim/memory.h"

namespace
{

using hfi::sim::SimMemory;

std::uint64_t
nextRand(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Byte-wise little-endian reference memory: zero before first write. */
class ReferenceMemory
{
  public:
    std::uint64_t
    read(std::uint64_t addr, unsigned width) const
    {
        std::uint64_t value = 0;
        for (unsigned i = 0; i < width; ++i) {
            const auto it = bytes.find(addr + i);
            const std::uint64_t b = it == bytes.end() ? 0 : it->second;
            value |= b << (8 * i);
        }
        return value;
    }

    void
    write(std::uint64_t addr, std::uint64_t value, unsigned width)
    {
        for (unsigned i = 0; i < width; ++i)
            bytes[addr + i] =
                static_cast<std::uint8_t>(value >> (8 * i));
    }

  private:
    std::map<std::uint64_t, std::uint8_t> bytes;
};

constexpr unsigned kWidths[] = {1, 2, 4, 8};

/** An address biased toward page edges and a small reused working set. */
std::uint64_t
randomAddr(std::uint64_t &rng)
{
    const std::uint64_t page = nextRand(rng) % 8; // few pages: lots of reuse
    switch (nextRand(rng) % 4) {
    case 0: // straddle candidates: the last 8 bytes of a page
        return page * SimMemory::kPageBytes + SimMemory::kPageBytes -
               1 - (nextRand(rng) % 8);
    case 1: // page start
        return page * SimMemory::kPageBytes + (nextRand(rng) % 8);
    default:
        return page * SimMemory::kPageBytes +
               (nextRand(rng) % SimMemory::kPageBytes);
    }
}

TEST(SimMemoryProperty, MatchesByteWiseReferenceUnderMixedWidths)
{
    std::uint64_t rng = 0x5107'beef'2026'0805ULL;
    SimMemory mem;
    ReferenceMemory ref;

    for (int iter = 0; iter < 300'000; ++iter) {
        const std::uint64_t addr = randomAddr(rng);
        const unsigned width = kWidths[nextRand(rng) % 4];
        if (nextRand(rng) % 2 == 0) {
            const std::uint64_t value = nextRand(rng);
            mem.write(addr, value, width);
            ref.write(addr, value, width);
        } else {
            ASSERT_EQ(mem.read(addr, width), ref.read(addr, width))
                << "iter " << iter << " addr 0x" << std::hex << addr
                << std::dec << " width " << width;
        }
    }
}

TEST(SimMemoryProperty, ReadBeforeWriteIsZeroEverywhere)
{
    SimMemory mem;
    // Untouched memory reads as zero at every width, including across
    // page boundaries, and doing so must not allocate pages.
    EXPECT_EQ(mem.read(0, 8), 0u);
    EXPECT_EQ(mem.read(SimMemory::kPageBytes - 3, 8), 0u);
    EXPECT_EQ(mem.read(0xdeadbeef, 4), 0u);
    EXPECT_EQ(mem.touchedPages(), 0u);

    // A write then makes *only* its own bytes non-zero: neighbors on
    // the freshly allocated page still read as zero.
    mem.write(100, 0xffffffffffffffffULL, 8);
    EXPECT_EQ(mem.read(92, 8), 0u);
    EXPECT_EQ(mem.read(108, 8), 0u);
    EXPECT_EQ(mem.read(100, 8), 0xffffffffffffffffULL);
    EXPECT_EQ(mem.touchedPages(), 1u);
}

TEST(SimMemoryProperty, PageStraddlingAccessesAreByteExact)
{
    SimMemory mem;
    const std::uint64_t edge = SimMemory::kPageBytes - 4;
    mem.write(edge, 0x1122334455667788ULL, 8); // 4 bytes on each page
    EXPECT_EQ(mem.read(edge, 8), 0x1122334455667788ULL);
    EXPECT_EQ(mem.read(edge, 4), 0x55667788u);
    EXPECT_EQ(mem.read(edge + 4, 4), 0x11223344u);
    EXPECT_EQ(mem.readByte(edge + 7), 0x11u);
    EXPECT_EQ(mem.touchedPages(), 2u);

    // Straddling read of a half-written area: the unwritten page's
    // bytes come back zero.
    SimMemory fresh;
    fresh.write(SimMemory::kPageBytes - 2, 0xaabb, 2);
    EXPECT_EQ(fresh.read(SimMemory::kPageBytes - 2, 8), 0xaabbu);
}

TEST(SimMemoryProperty, WriteBytesMatchesByteLoop)
{
    std::uint64_t rng = 0x77aa'2026'0805ULL;
    std::uint8_t blob[10000];
    for (auto &b : blob)
        b = static_cast<std::uint8_t>(nextRand(rng));

    SimMemory mem;
    const std::uint64_t base = SimMemory::kPageBytes - 1234; // straddles 3 pages
    mem.writeBytes(base, blob, sizeof blob);
    for (std::uint64_t i = 0; i < sizeof blob; ++i)
        ASSERT_EQ(mem.readByte(base + i), blob[i]) << "offset " << i;
}

} // namespace
