/**
 * @file
 * Tests for the functional executor: per-opcode semantics, HFI
 * instruction behaviour (enter/exit/set_region/syscall redirect), and
 * the fault model (no data written, retirement-only HFI effects).
 */

#include <gtest/gtest.h>

#include "sim/functional.h"

namespace
{

using namespace hfi;
using namespace hfi::sim;

/** Run a freshly built program and return the final state. */
struct RunOutcome
{
    ArchState state;
    SimMemory mem;
    std::uint64_t steps;
};

RunOutcome
runProgram(ProgramBuilder &b,
           const std::function<void(SimMemory &)> &stage = {})
{
    RunOutcome out;
    const Program prog = b.build();
    out.state.pc = prog.base();
    if (stage)
        stage(out.mem);
    out.steps = FunctionalCore::run(prog, out.state, out.mem);
    return out;
}

TEST(Functional, AluOps)
{
    ProgramBuilder b;
    b.movi(1, 20).movi(2, 12);
    b.add(3, 1, 2);
    b.sub(4, 1, 2);
    b.mul(5, 1, 2);
    b.xor_(6, 1, 2);
    b.shli(7, 2, 4);
    b.shri(8, 1, 2);
    b.andi(9, 1, 0xf);
    b.halt();
    auto out = runProgram(b);
    EXPECT_EQ(out.state.regs[3], 32u);
    EXPECT_EQ(out.state.regs[4], 8u);
    EXPECT_EQ(out.state.regs[5], 240u);
    EXPECT_EQ(out.state.regs[6], 20u ^ 12u);
    EXPECT_EQ(out.state.regs[7], 12u << 4);
    EXPECT_EQ(out.state.regs[8], 5u);
    EXPECT_EQ(out.state.regs[9], 4u);
}

TEST(Functional, DivByZeroYieldsZero)
{
    ProgramBuilder b;
    b.movi(1, 10).movi(2, 0);
    Inst div;
    div.op = Opcode::Div;
    div.rd = 3;
    div.ra = 1;
    div.rb = 2;
    b.emit(div);
    b.halt();
    auto out = runProgram(b);
    EXPECT_EQ(out.state.regs[3], 0u);
}

TEST(Functional, LoadStoreWidths)
{
    ProgramBuilder b;
    b.movi(1, 0x5000);
    b.movi(2, static_cast<std::int64_t>(0x1122334455667788ULL));
    b.store(2, 1, 0, 8);
    b.load(3, 1, 0, 4);
    b.load(4, 1, 0, 2);
    b.load(5, 1, 0, 1);
    b.load(6, 1, 4, 4);
    b.halt();
    auto out = runProgram(b);
    EXPECT_EQ(out.state.regs[3], 0x55667788u);
    EXPECT_EQ(out.state.regs[4], 0x7788u);
    EXPECT_EQ(out.state.regs[5], 0x88u);
    EXPECT_EQ(out.state.regs[6], 0x11223344u);
}

TEST(Functional, IndexedAddressing)
{
    ProgramBuilder b;
    b.movi(1, 0x6000).movi(2, 3);
    b.movi(3, 0xaa);
    // mem[0x6000 + 3*8 + 4] = 0xaa
    Inst st;
    st.op = Opcode::Store;
    st.rd = 3;
    st.ra = 1;
    st.rb = 2;
    st.useIndex = true;
    st.scale = 8;
    st.imm = 4;
    st.width = 1;
    b.emit(st);
    b.halt();
    auto out = runProgram(b);
    EXPECT_EQ(out.mem.readByte(0x6000 + 24 + 4), 0xaau);
}

TEST(Functional, BranchesAndLoops)
{
    ProgramBuilder b;
    b.movi(1, 0).movi(2, 10).movi(3, 0);
    b.label("loop");
    b.add(3, 3, 1);
    b.addi(1, 1, 1);
    b.blt(1, 2, "loop");
    b.halt();
    auto out = runProgram(b);
    EXPECT_EQ(out.state.regs[3], 45u);
}

TEST(Functional, SignedBranchComparison)
{
    ProgramBuilder b;
    b.movi(1, -5).movi(2, 3).movi(4, 0);
    b.blt(1, 2, "neg_less"); // -5 < 3 signed
    b.halt();
    b.label("neg_less");
    b.movi(4, 1);
    b.halt();
    auto out = runProgram(b);
    EXPECT_EQ(out.state.regs[4], 1u);
}

TEST(Functional, CallRetUseLinkRegister)
{
    ProgramBuilder b;
    b.movi(1, 0);
    b.call("fn");
    b.addi(1, 1, 100); // after return
    b.halt();
    b.label("fn");
    b.addi(1, 1, 1);
    b.ret();
    auto out = runProgram(b);
    EXPECT_EQ(out.state.regs[1], 101u);
}

TEST(Functional, HfiEnterEnablesChecking)
{
    ProgramBuilder b;
    // Code region first, else the next fetch faults.
    b.movi(11, 0x400000).movi(12, 0xffff);
    b.hfiSetRegion(0, 11, 12, 4);
    b.movi(kExitHandlerReg, 0);
    b.hfiEnter(true, false);
    // No data regions: this load must fault.
    b.movi(1, 0x5000);
    b.load(2, 1, 0, 8);
    b.halt();
    auto out = runProgram(b);
    EXPECT_EQ(out.state.msr, core::ExitReason::DataBoundsViolation);
    EXPECT_FALSE(out.state.hfi.enabled); // disabled at the trap
    EXPECT_EQ(out.state.regs[2], 0u);    // no data propagated
}

TEST(Functional, CodeRegionGatesFetch)
{
    ProgramBuilder b;
    b.movi(11, 0x400000).movi(12, 0x3); // 4-byte code region: too small
    b.hfiSetRegion(0, 11, 12, 4);
    b.movi(kExitHandlerReg, 0);
    b.hfiEnter(true, false);
    b.nop(); // fetching this faults: it is outside the 4-byte region
    b.halt();
    auto out = runProgram(b);
    EXPECT_EQ(out.state.msr, core::ExitReason::CodeBoundsViolation);
}

TEST(Functional, HmovChecksBounds)
{
    ProgramBuilder b;
    b.movi(11, 0x400000).movi(12, 0xffff);
    b.hfiSetRegion(0, 11, 12, 4);
    b.movi(11, 0x100000).movi(12, 1 << 16);
    b.hfiSetRegion(core::kFirstExplicitRegion, 11, 12, 1 | 2 | 8);
    b.movi(kExitHandlerReg, 0);
    b.hfiEnter(true, false);
    b.movi(1, 64);
    b.movi(2, 0x77);
    b.hmovStore(0, 2, 1, 1, 0, 1); // in bounds
    b.movi(1, 1 << 16);
    b.hmovLoad(0, 3, 1, 1, 0, 1); // out of bounds: trap
    b.halt();
    auto out = runProgram(b);
    EXPECT_EQ(out.mem.readByte(0x100000 + 64), 0x77u);
    EXPECT_EQ(out.state.msr, core::ExitReason::HmovBoundsViolation);
}

TEST(Functional, HmovOutsideHfiModeFaults)
{
    ProgramBuilder b;
    b.movi(1, 0);
    b.hmovLoad(0, 2, 1, 1, 0, 8);
    b.halt();
    auto out = runProgram(b);
    EXPECT_EQ(out.state.msr, core::ExitReason::HardwareFault);
}

TEST(Functional, SyscallRedirectsInNativeSandbox)
{
    ProgramBuilder b;
    b.movi(11, 0x400000).movi(12, 0xffff);
    b.hfiSetRegion(0, 11, 12, 4);
    // The handler label's address goes into the exit-handler register.
    b.movi(kExitHandlerReg, 0); // patched below via two-pass trick
    b.hfiEnter(false, false);   // native
    b.syscall(1);               // must redirect, not execute
    b.movi(1, 111);             // skipped
    b.halt();
    b.label("handler");
    b.movi(1, 222);
    b.halt();
    // Resolve the handler address: build once to find it, then rebuild
    // with the right immediate.
    Program probe = b.build();
    const std::uint64_t handler_addr = probe.addressOf(8);

    ProgramBuilder real;
    real.movi(11, 0x400000).movi(12, 0xffff);
    real.hfiSetRegion(0, 11, 12, 4);
    real.movi(kExitHandlerReg, static_cast<std::int64_t>(handler_addr));
    real.hfiEnter(false, false);
    real.syscall(1);
    real.movi(1, 111);
    real.halt();
    real.label("handler");
    real.movi(1, 222);
    real.halt();
    auto out = runProgram(real);
    EXPECT_EQ(out.state.regs[1], 222u);
    EXPECT_EQ(out.state.msr, core::ExitReason::Syscall);
    EXPECT_FALSE(out.state.hfi.enabled);
}

TEST(Functional, SyscallExitGroupHalts)
{
    ProgramBuilder b;
    b.movi(1, 42);
    b.syscall(231);
    b.movi(1, 99); // unreachable
    b.halt();
    auto out = runProgram(b);
    EXPECT_EQ(out.state.regs[1], 42u);
}

TEST(Functional, RegionUpdateLockedInNativeSandbox)
{
    ProgramBuilder b;
    b.movi(11, 0x400000).movi(12, 0xffff);
    b.hfiSetRegion(0, 11, 12, 4);
    b.movi(kExitHandlerReg, 0);
    b.hfiEnter(false, false); // native: registers locked
    b.movi(11, 0x100000).movi(12, 1 << 16);
    b.hfiSetRegion(core::kFirstExplicitRegion, 11, 12, 3);
    b.halt();
    auto out = runProgram(b);
    EXPECT_EQ(out.state.msr, core::ExitReason::IllegalRegionUpdate);
}

TEST(Functional, HfiExitDisables)
{
    ProgramBuilder b;
    b.movi(11, 0x400000).movi(12, 0xffff);
    b.hfiSetRegion(0, 11, 12, 4);
    b.movi(kExitHandlerReg, 0);
    b.hfiEnter(true, false);
    b.hfiExit();
    // After exit, arbitrary loads are unchecked again.
    b.movi(1, 0x9000);
    b.load(2, 1, 0, 8);
    b.halt();
    auto out = runProgram(b);
    EXPECT_EQ(out.state.msr, core::ExitReason::HfiExit);
    EXPECT_FALSE(out.state.hfi.enabled);
    EXPECT_EQ(out.steps, 9u);
}

TEST(Functional, FlushComputesAddressOnly)
{
    ProgramBuilder b;
    b.movi(1, 0x7000);
    b.flush(1, 0x40);
    b.halt();
    const Program prog = b.build();
    ArchState state;
    state.pc = prog.base();
    SimMemory mem;
    DirectMemView view(mem);
    const Inst *flush_inst = prog.at(prog.addressOf(1));
    ArchState flush_state = state;
    flush_state.regs[1] = 0x7000;
    const ExecInfo info = FunctionalCore::execute(
        *flush_inst, prog.addressOf(1), flush_state, view);
    EXPECT_TRUE(info.isFlush);
    EXPECT_EQ(info.memAddr, 0x7040u);
    EXPECT_FALSE(info.isMem);
}

TEST(Functional, RunStopsAtMaxSteps)
{
    ProgramBuilder b;
    b.label("spin");
    b.jmp("spin");
    const Program prog = b.build();
    ArchState state;
    state.pc = prog.base();
    SimMemory mem;
    EXPECT_EQ(FunctionalCore::run(prog, state, mem, 1000), 1000u);
}

TEST(Functional, RunningOffProgramStops)
{
    ProgramBuilder b;
    b.movi(1, 1); // no halt
    const Program prog = b.build();
    ArchState state;
    state.pc = prog.base();
    SimMemory mem;
    EXPECT_EQ(FunctionalCore::run(prog, state, mem), 1u);
}

} // namespace
