/**
 * @file
 * Tests for the observability layer (src/obs/): ring-buffer overflow
 * semantics, byte-identical trace export across the sequential and
 * threaded engine drivers, and the flight recorder's fire-once latch.
 */

#include <gtest/gtest.h>

#include "obs/trace.h"
#include "serve/engine.h"

namespace
{

using namespace hfi;
using namespace hfi::serve;

// ---------------------------------------------------------------------
// TraceBuffer: bounded ring with drop-oldest overflow.
// ---------------------------------------------------------------------

TEST(TraceBuffer, DropsOldestAndCountsDrops)
{
    obs::TraceBuffer buf;
    buf.init(0, 8, obs::kCatAll);
    ASSERT_EQ(buf.capacity(), 8u);

    for (int i = 0; i < 12; ++i)
        buf.record(obs::EventType::QueuePush, 1000.0 * i,
                   static_cast<std::uint64_t>(i));

    EXPECT_EQ(buf.size(), 8u);
    EXPECT_EQ(buf.dropped(), 4u);
    // The four oldest events (ids 0..3) were evicted; the survivors are
    // 4..11 in emission order.
    for (std::size_t i = 0; i < buf.size(); ++i) {
        EXPECT_EQ(buf.at(i).a, i + 4);
        EXPECT_DOUBLE_EQ(buf.at(i).tsNs, 1000.0 * static_cast<double>(i + 4));
    }
}

TEST(TraceBuffer, ExactFillDropsNothing)
{
    obs::TraceBuffer buf;
    buf.init(0, 4, obs::kCatAll);
    for (int i = 0; i < 4; ++i)
        buf.record(obs::EventType::QueuePop, i, static_cast<std::uint64_t>(i));
    EXPECT_EQ(buf.size(), 4u);
    EXPECT_EQ(buf.dropped(), 0u);
    EXPECT_EQ(buf.at(0).a, 0u);
    EXPECT_EQ(buf.at(3).a, 3u);
}

TEST(TraceBuffer, CapacityRoundsUpToPowerOfTwo)
{
    obs::TraceBuffer buf;
    buf.init(0, 5, obs::kCatAll);
    EXPECT_EQ(buf.capacity(), 8u);
}

TEST(TraceBuffer, ZeroCapacityRecordsNothing)
{
    obs::TraceBuffer buf;
    buf.init(0, 0, obs::kCatAll);
    buf.record(obs::EventType::QueuePush, 1.0);
    EXPECT_EQ(buf.size(), 0u);
    EXPECT_EQ(buf.dropped(), 0u);
}

TEST(TraceBuffer, MaskedCategoriesAreDroppedFree)
{
    obs::TraceBuffer buf;
    buf.init(0, 8, obs::kCatQueue);
    buf.record(obs::EventType::QueuePush, 1.0);    // recorded
    buf.record(obs::EventType::RegionSet, 2.0);    // masked out
    buf.record(obs::EventType::ContextSwitch, 3.0); // masked out
    EXPECT_EQ(buf.size(), 1u);
    EXPECT_EQ(buf.dropped(), 0u);
    EXPECT_EQ(buf.at(0).type, obs::EventType::QueuePush);
}

TEST(TraceBuffer, DefaultCategoriesExcludeVerboseHfiTransitions)
{
    obs::TraceBuffer buf;
    buf.init(0, 8, obs::kCatDefault);
    buf.record(obs::EventType::HfiEnter, 1.0);    // verbose: masked
    buf.record(obs::EventType::HfiExit, 2.0);     // verbose: masked
    buf.record(obs::EventType::KernelXrstor, 3.0); // required: recorded
    buf.record(obs::EventType::HfiFault, 4.0);     // required: recorded
    ASSERT_EQ(buf.size(), 2u);
    EXPECT_EQ(buf.at(0).type, obs::EventType::KernelXrstor);
    EXPECT_EQ(buf.at(1).type, obs::EventType::HfiFault);
}

// ---------------------------------------------------------------------
// Trace determinism across engine drivers. These drive the serving
// engine's record sites, which HFI_OBS=OFF compiles away — the
// ring/flight-latch unit tests above and ManualDumpLatches below are
// the coverage that survives in that configuration.
// ---------------------------------------------------------------------

#if HFI_OBS_ENABLED

Handler
testHandler()
{
    return [](sfi::Sandbox &s, std::uint32_t seed) {
        for (int i = 0; i < 16; ++i)
            s.store<std::uint32_t>(64 + (i % 16) * 4, seed + i);
        s.chargeOps(30'000);
    };
}

/** The same provably-decomposable shape test_serve_threads pins. */
EngineConfig
threadableConfig(unsigned workers)
{
    EngineConfig ec;
    ec.workers = workers;
    ec.mode = LoadMode::OpenLoop;
    ec.requests = 300;
    ec.meanInterarrivalNs = 4'000.0;
    ec.seed = 77;
    ec.workStealing = false;
    ec.sharding = Sharding::RoundRobin;
    ec.worker.scheme = Scheme::HfiNative;
    ec.worker.quantumNs = 50'000.0;
    return ec;
}

obs::TraceConfig
fullTraceConfig()
{
    obs::TraceConfig tc;
    tc.capacityPerCore = 4096;    // hold the whole run, no drops
    tc.categories = obs::kCatAll; // include the verbose hfi transitions
    return tc;
}

std::string
traceJsonFor(EngineConfig cfg, bool real_threads)
{
    obs::Trace trace(cfg.workers, fullTraceConfig());
    cfg.trace = &trace;
    cfg.realThreads = real_threads;
    const auto res = ServeEngine(cfg, testHandler()).run();
    EXPECT_EQ(res.usedThreads, real_threads ? cfg.workers : 1u);
    std::size_t events = 0;
    for (unsigned c = 0; c < trace.cores(); ++c) {
        events += trace.buffer(c).size();
        EXPECT_EQ(trace.buffer(c).dropped(), 0u) << "core " << c;
    }
    EXPECT_GT(events, cfg.requests); // at least one event per request
    return trace.chromeTraceJson();
}

TEST(TraceDeterminism, SequentialAndThreadedExportsAreByteIdentical)
{
    const auto cfg = threadableConfig(4);
    const std::string sequential = traceJsonFor(cfg, false);
    const std::string threaded = traceJsonFor(cfg, true);
    ASSERT_EQ(sequential.size(), threaded.size());
    ASSERT_EQ(sequential, threaded);
    // Spot-check the export carries labeled, categorized events.
    EXPECT_NE(sequential.find("\"schema_version\""), std::string::npos);
    EXPECT_NE(sequential.find("\"name\": \"request\""), std::string::npos);
    EXPECT_NE(sequential.find("\"cat\": \"sched\""), std::string::npos);
    EXPECT_NE(sequential.find("\"label\": \"none\""), std::string::npos);
    EXPECT_NE(sequential.find("\"name\": \"hfi-enter\""), std::string::npos);
}

TEST(TraceDeterminism, RepeatedRunsExportIdenticalJson)
{
    const auto cfg = threadableConfig(3);
    EXPECT_EQ(traceJsonFor(cfg, false), traceJsonFor(cfg, false));
}

// ---------------------------------------------------------------------
// Flight recorder: latched post-mortem dump on watchdog timeout.
// ---------------------------------------------------------------------

/** A campaign guaranteed to stall past the request timeout. */
EngineConfig
timeoutConfig()
{
    auto cfg = threadableConfig(4);
    cfg.requests = 600;
    cfg.worker.poolSize = 2;
    cfg.worker.respawnDelayNs = 50'000.0;
    cfg.worker.requestTimeoutNs = 150'000.0;
    cfg.worker.maxRetries = 2;
    cfg.worker.retryBackoffNs = 10'000.0;
    cfg.worker.faults.rate = 0.1;
    cfg.worker.faults.stallNs = 400'000.0;
    return cfg;
}

TEST(FlightRecorder, FiresExactlyOnceOnWatchdogTimeout)
{
    obs::TraceConfig tc;
    tc.flightLastN = 16;
    obs::Trace trace(4, tc);
    auto cfg = timeoutConfig();
    cfg.trace = &trace;

    const auto res = ServeEngine(cfg, testHandler()).run();
    ASSERT_GT(res.robustness.timeouts, 0u);

    // Every timeout triggers the recorder; only the first dump fires.
    EXPECT_TRUE(trace.flightFired());
    EXPECT_EQ(trace.flightTriggers(), res.robustness.timeouts);
    EXPECT_FALSE(trace.flightDump("again"));

    const std::string &report = trace.flightReport();
    EXPECT_NE(report.find("watchdog-timeout"), std::string::npos);
    EXPECT_NE(report.find("sandbox-enter"), std::string::npos);
    // The dump captured the faulting request's envelope: its
    // fault-injector decision is labeled with the injected kind.
    EXPECT_NE(report.find("fault-inject"), std::string::npos);
    EXPECT_NE(report.find("stall"), std::string::npos);
}

TEST(FlightRecorder, DisabledWatchdogHookNeverFires)
{
    obs::TraceConfig tc;
    tc.flightOnWatchdog = false;
    obs::Trace trace(4, tc);
    auto cfg = timeoutConfig();
    cfg.trace = &trace;

    const auto res = ServeEngine(cfg, testHandler()).run();
    ASSERT_GT(res.robustness.timeouts, 0u);
    EXPECT_FALSE(trace.flightFired());
    EXPECT_EQ(trace.flightTriggers(), 0u);
    EXPECT_TRUE(trace.flightReport().empty());
}

#endif // HFI_OBS_ENABLED

TEST(FlightRecorder, ManualDumpLatches)
{
    obs::Trace trace(1, {});
    trace.buffer(0).record(obs::EventType::QueuePush, 1.0, 42);
    EXPECT_TRUE(trace.flightDump("manual"));
    EXPECT_FALSE(trace.flightDump("manual"));
    EXPECT_EQ(trace.flightTriggers(), 2u);
    EXPECT_NE(trace.flightReport().find("queue-push"), std::string::npos);
    EXPECT_NE(trace.flightReport().find("a=42"), std::string::npos);
}

} // namespace
