/**
 * @file
 * Functional tests for the workload library: known-answer crypto
 * vectors, codec round trips, and the backbone property that every
 * kernel's checksum is identical across isolation backends (isolation
 * must never change computation results — only costs).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "sfi/runtime.h"
#include "workloads/crypto.h"
#include "workloads/faas_workloads.h"
#include "workloads/font.h"
#include "workloads/image.h"
#include "workloads/sightglass.h"
#include "workloads/spec_like.h"

namespace
{

using namespace hfi;
using namespace hfi::workloads;

std::unique_ptr<sfi::Sandbox>
makeSandbox(vm::Mmu &mmu, core::HfiContext &ctx, sfi::BackendKind kind,
            unsigned icache = 0)
{
    sfi::RuntimeConfig config;
    config.backend = kind;
    sfi::Runtime runtime(mmu, ctx, config);
    sfi::SandboxOptions opts;
    opts.initialPages = 4;
    opts.icacheSensitivity = icache;
    return runtime.createSandbox(opts);
}

class WorkloadFixture : public ::testing::Test
{
  protected:
    vm::VirtualClock clock;
    vm::Mmu mmu{clock};
    core::HfiContext ctx{clock};
};

// --------------------------------------------------------------- crypto

TEST(Crypto, Sha256EmptyString)
{
    const auto digest = crypto::sha256(nullptr, 0);
    const std::uint8_t expected[] = {0xe3, 0xb0, 0xc4, 0x42, 0x98, 0xfc,
                                     0x1c, 0x14, 0x9a, 0xfb, 0xf4, 0xc8,
                                     0x99, 0x6f, 0xb9, 0x24};
    EXPECT_EQ(std::memcmp(digest.data(), expected, sizeof(expected)), 0);
}

TEST(Crypto, Sha256Abc)
{
    // FIPS 180-2 test vector.
    const char *msg = "abc";
    const auto digest =
        crypto::sha256(reinterpret_cast<const std::uint8_t *>(msg), 3);
    const std::uint8_t expected[] = {0xba, 0x78, 0x16, 0xbf, 0x8f, 0x01,
                                     0xcf, 0xea, 0x41, 0x41, 0x40, 0xde,
                                     0x5d, 0xae, 0x22, 0x23, 0xb0, 0x03,
                                     0x61, 0xa3, 0x96, 0x17, 0x7a, 0x9c};
    EXPECT_EQ(std::memcmp(digest.data(), expected, sizeof(expected)), 0);
}

TEST(Crypto, Sha256LongInput)
{
    // FIPS 180-2: one million 'a' has a known digest; use the two-block
    // "abcdbcde..." vector instead to keep it fast.
    const char *msg =
        "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
    const auto digest = crypto::sha256(
        reinterpret_cast<const std::uint8_t *>(msg), std::strlen(msg));
    const std::uint8_t expected[] = {0x24, 0x8d, 0x6a, 0x61, 0xd2, 0x06,
                                     0x38, 0xb8, 0xe5, 0xc0, 0x26, 0x93,
                                     0x0c, 0x3e, 0x60, 0x39};
    EXPECT_EQ(std::memcmp(digest.data(), expected, sizeof(expected)), 0);
}

TEST(Crypto, Chacha20Rfc8439Block)
{
    // RFC 8439 §2.3.2 test vector, block counter 1.
    std::array<std::uint8_t, 32> key;
    for (int i = 0; i < 32; ++i)
        key[i] = static_cast<std::uint8_t>(i);
    std::array<std::uint8_t, 12> nonce = {0, 0, 0, 9, 0, 0,
                                          0, 0x4a, 0, 0, 0, 0};
    const auto block = crypto::chacha20Block(key, nonce, 1);
    const std::uint8_t expected[] = {0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b,
                                     0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f,
                                     0xa3, 0x20, 0x71, 0xc4};
    EXPECT_EQ(std::memcmp(block.data(), expected, sizeof(expected)), 0);
}

class CryptoSandboxed : public WorkloadFixture
{
};

TEST_F(CryptoSandboxed, Sha256MatchesHostReference)
{
    auto sandbox = makeSandbox(mmu, ctx, sfi::BackendKind::Hfi);
    ASSERT_TRUE(sandbox);
    std::vector<std::uint8_t> data(1000);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 31);
    sandbox->memory().writeBytes(64, data.data(), data.size());

    crypto::sha256Sandboxed(*sandbox, 64, data.size(), 8192);
    std::uint8_t in_sandbox[32];
    sandbox->memory().readBytes(8192, in_sandbox, 32);

    const auto host = crypto::sha256(data.data(), data.size());
    EXPECT_EQ(std::memcmp(in_sandbox, host.data(), 32), 0);
}

TEST_F(CryptoSandboxed, Chacha20RoundTrips)
{
    auto sandbox = makeSandbox(mmu, ctx, sfi::BackendKind::GuardPages);
    ASSERT_TRUE(sandbox);
    const char *msg = "attack at dawn";
    sandbox->memory().writeBytes(128, msg, 14);
    crypto::chacha20Sandboxed(*sandbox, 128, 14, 7);
    char cipher[15] = {};
    sandbox->memory().readBytes(128, cipher, 14);
    EXPECT_NE(std::memcmp(cipher, msg, 14), 0);
    crypto::chacha20Sandboxed(*sandbox, 128, 14, 7); // same keystream
    char plain[15] = {};
    sandbox->memory().readBytes(128, plain, 14);
    EXPECT_EQ(std::memcmp(plain, msg, 14), 0);
}

// ------------------------------------------------- backend invariance

struct KernelBackendCase
{
    const char *suiteName;
    std::size_t kernelIndex;
};

class KernelBackendInvariance
    : public ::testing::TestWithParam<KernelBackendCase>
{
  protected:
    static const Workload &
    lookup(const KernelBackendCase &param)
    {
        const auto &s = std::string(param.suiteName) == "sightglass"
                            ? sightglass::suite()
                            : spec::suite();
        return s[param.kernelIndex];
    }
};

TEST_P(KernelBackendInvariance, ChecksumIdenticalAcrossBackends)
{
    const Workload &workload = lookup(GetParam());
    std::uint64_t reference = 0;
    bool first = true;
    for (sfi::BackendKind kind :
         {sfi::BackendKind::GuardPages, sfi::BackendKind::BoundsCheck,
          sfi::BackendKind::Hfi}) {
        vm::VirtualClock clock;
        vm::Mmu mmu(clock);
        core::HfiContext ctx(clock);
        auto sandbox =
            makeSandbox(mmu, ctx, kind, workload.icacheSensitivity);
        ASSERT_TRUE(sandbox);
        std::uint64_t checksum = 0;
        ASSERT_TRUE(sandbox->invoke([&](sfi::Sandbox &s) {
            checksum = workload.run(s, 1, 1234);
        })) << workload.name << " trapped under "
            << backendKindName(kind);
        if (first) {
            reference = checksum;
            first = false;
        } else {
            EXPECT_EQ(checksum, reference)
                << workload.name << " diverged under "
                << backendKindName(kind);
        }
    }
    EXPECT_NE(reference, 0u) << workload.name;
}

std::vector<KernelBackendCase>
allKernels()
{
    std::vector<KernelBackendCase> cases;
    for (std::size_t i = 0; i < sightglass::suite().size(); ++i)
        cases.push_back({"sightglass", i});
    for (std::size_t i = 0; i < spec::suite().size(); ++i)
        cases.push_back({"spec", i});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelBackendInvariance, ::testing::ValuesIn(allKernels()),
    [](const ::testing::TestParamInfo<KernelBackendCase> &info) {
        const auto &s = std::string(info.param.suiteName) == "sightglass"
                            ? sightglass::suite()
                            : spec::suite();
        std::string name = std::string(info.param.suiteName) + "_" +
                           s[info.param.kernelIndex].name;
        for (char &c : name) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(KernelDeterminism, SeedChangesChecksumScaleKeepsIt)
{
    vm::VirtualClock clock;
    vm::Mmu mmu(clock);
    core::HfiContext ctx(clock);
    const auto &fib = sightglass::suite()[4]; // fib2: seed-independent
    const auto &csv = sightglass::suite()[8]; // minicsv: seed-dependent

    auto run = [&](const Workload &w, std::uint32_t seed) {
        auto sandbox = makeSandbox(mmu, ctx, sfi::BackendKind::Hfi);
        std::uint64_t sum = 0;
        sandbox->invoke([&](sfi::Sandbox &s) { sum = w.run(s, 1, seed); });
        return sum;
    };
    EXPECT_EQ(run(fib, 1), run(fib, 2));
    EXPECT_NE(run(csv, 1), run(csv, 2));
    EXPECT_EQ(run(csv, 7), run(csv, 7));
}

// --------------------------------------------------------------- image

TEST(ImageCodec, QualityNoneIsNearLossless)
{
    // Quality::None is a quantization-step-1 codec pass (the paper's
    // "no compression" level is still JPEG); the integer DCT round
    // trip is near-exact but not bit-exact.
    const auto pixels = image::makeTestImage(64, 48, 5);
    const auto encoded = image::encode(pixels, 64, 48, image::Quality::None);
    const auto decoded = image::decodeReference(encoded);
    ASSERT_EQ(decoded.size(), pixels.size());
    double err = 0;
    for (std::size_t i = 0; i < pixels.size(); ++i)
        err += std::abs(int(decoded[i]) - int(pixels[i]));
    EXPECT_LT(err / static_cast<double>(pixels.size()), 2.5);
}

TEST(ImageCodec, QuantizedDecodeIsClose)
{
    const auto pixels = image::makeTestImage(64, 64, 9);
    for (auto q : {image::Quality::Default, image::Quality::Best}) {
        const auto encoded = image::encode(pixels, 64, 64, q);
        const auto decoded = image::decodeReference(encoded);
        ASSERT_EQ(decoded.size(), pixels.size());
        double err = 0;
        for (std::size_t i = 0; i < pixels.size(); ++i)
            err += std::abs(int(decoded[i]) - int(pixels[i]));
        err /= static_cast<double>(pixels.size());
        EXPECT_LT(err, 16.0) << image::qualityName(q);
        EXPECT_GT(err, 0.0);
    }
}

TEST(ImageCodec, BetterCompressionMeansSmallerBitstream)
{
    const auto pixels = image::makeTestImage(128, 128, 3);
    const auto none = image::encode(pixels, 128, 128, image::Quality::None);
    const auto def =
        image::encode(pixels, 128, 128, image::Quality::Default);
    const auto best = image::encode(pixels, 128, 128, image::Quality::Best);
    EXPECT_LT(best.bits.size(), def.bits.size());
    EXPECT_LT(def.bits.size(), none.bits.size());
}

TEST(ImageCodec, SandboxedDecodeMatchesReferencePixels)
{
    vm::VirtualClock clock;
    vm::Mmu mmu(clock);
    core::HfiContext ctx(clock);
    const auto pixels = image::makeTestImage(48, 32, 11);
    const auto encoded =
        image::encode(pixels, 48, 32, image::Quality::Default);

    auto sandbox = makeSandbox(mmu, ctx, sfi::BackendKind::Hfi);
    std::uint64_t sandbox_sum = 0;
    ASSERT_TRUE(sandbox->invoke([&](sfi::Sandbox &s) {
        sandbox_sum = image::decodeSandboxed(s, encoded);
    }));

    // Recompute the same checksum from the reference decode.
    const auto ref = image::decodeReference(encoded);
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (std::uint8_t px : ref) {
        hash ^= px;
        hash *= 0x100000001b3ULL;
    }
    EXPECT_EQ(sandbox_sum, hash);
}

TEST(ImageCodec, DecodeChecksumBackendInvariant)
{
    const auto pixels = image::makeTestImage(64, 40, 21);
    const auto encoded =
        image::encode(pixels, 64, 40, image::Quality::Best);
    std::uint64_t sums[2];
    int at = 0;
    for (auto kind :
         {sfi::BackendKind::GuardPages, sfi::BackendKind::Hfi}) {
        vm::VirtualClock clock;
        vm::Mmu mmu(clock);
        core::HfiContext ctx(clock);
        auto sandbox = makeSandbox(mmu, ctx, kind);
        sandbox->invoke([&](sfi::Sandbox &s) {
            sums[at] = image::decodeSandboxed(s, encoded);
        });
        ++at;
    }
    EXPECT_EQ(sums[0], sums[1]);
}

// ---------------------------------------------------------------- font

TEST(Font, ReflowIsDeterministicAndShapesEverything)
{
    vm::VirtualClock clock;
    vm::Mmu mmu(clock);
    core::HfiContext ctx(clock);
    const std::string text = font::makeTestText(300, 17);

    auto run = [&] {
        auto sandbox = makeSandbox(mmu, ctx, sfi::BackendKind::Hfi);
        font::ReflowResult res;
        sandbox->invoke([&](sfi::Sandbox &s) {
            res = font::reflowSandboxed(s, text, 16, 800);
        });
        return res;
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_GT(a.lines, 3u);
    // Every non-space character becomes a positioned glyph.
    std::size_t non_space = 0;
    for (char c : text)
        non_space += c != ' ';
    EXPECT_EQ(a.glyphs, non_space);
}

TEST(Font, LargerFontMeansMoreLines)
{
    vm::VirtualClock clock;
    vm::Mmu mmu(clock);
    core::HfiContext ctx(clock);
    const std::string text = font::makeTestText(400, 3);
    auto lines = [&](std::uint32_t size) {
        auto sandbox = makeSandbox(mmu, ctx, sfi::BackendKind::GuardPages);
        font::ReflowResult res;
        sandbox->invoke([&](sfi::Sandbox &s) {
            res = font::reflowSandboxed(s, text, size, 640);
        });
        return res.lines;
    };
    EXPECT_GT(lines(24), lines(12));
}

// ------------------------------------------------------ FaaS handlers

class FaasWorkloads : public WorkloadFixture
{
};

TEST_F(FaasWorkloads, XmlToJsonProducesJson)
{
    auto sandbox = makeSandbox(mmu, ctx, sfi::BackendKind::Hfi);
    const std::string xml = faas::makeXmlDocument(10, 3);
    sandbox->memory().writeBytes(64, xml.data(), xml.size());
    std::uint64_t sum = 0;
    ASSERT_TRUE(sandbox->invoke([&](sfi::Sandbox &s) {
        sum = faas::xmlToJson(s, 64, xml.size());
    }));
    EXPECT_NE(sum, 0u);
    // Deterministic given the same document.
    auto sandbox2 = makeSandbox(mmu, ctx, sfi::BackendKind::GuardPages);
    sandbox2->memory().writeBytes(64, xml.data(), xml.size());
    std::uint64_t sum2 = 0;
    sandbox2->invoke(
        [&](sfi::Sandbox &s) { sum2 = faas::xmlToJson(s, 64, xml.size()); });
    EXPECT_EQ(sum, sum2);
}

TEST_F(FaasWorkloads, CheckSha256DetectsMatchAndMismatch)
{
    auto sandbox = makeSandbox(mmu, ctx, sfi::BackendKind::Hfi);
    std::vector<std::uint8_t> payload(256, 0x5a);
    sandbox->memory().writeBytes(64, payload.data(), payload.size());
    const auto good = crypto::sha256(payload.data(), payload.size());
    sandbox->memory().writeBytes(4096, good.data(), 32);

    std::uint64_t match_sum = 0, mismatch_sum = 0;
    sandbox->invoke([&](sfi::Sandbox &s) {
        match_sum = faas::checkSha256(s, 64, payload.size(), 4096);
    });
    // Corrupt the expected digest.
    std::uint8_t bad = good[0] ^ 1;
    sandbox->memory().writeBytes(4096, &bad, 1);
    sandbox->invoke([&](sfi::Sandbox &s) {
        mismatch_sum = faas::checkSha256(s, 64, payload.size(), 4096);
    });
    EXPECT_NE(match_sum, mismatch_sum);
}

TEST_F(FaasWorkloads, ClassifyImageIsDeterministic)
{
    auto sandbox = makeSandbox(mmu, ctx, sfi::BackendKind::Hfi);
    const auto img = image::makeTestImage(28, 28, 7);
    sandbox->memory().writeBytes(64, img.data(), img.size());
    std::uint64_t a = 0, b = 0;
    sandbox->invoke([&](sfi::Sandbox &s) {
        a = faas::classifyImage(s, 64, 28, 99);
    });
    auto sandbox2 = makeSandbox(mmu, ctx, sfi::BackendKind::BoundsCheck);
    sandbox2->memory().writeBytes(64, img.data(), img.size());
    sandbox2->invoke([&](sfi::Sandbox &s) {
        b = faas::classifyImage(s, 64, 28, 99);
    });
    EXPECT_EQ(a, b);
}

TEST_F(FaasWorkloads, TemplateRenderingExpandsLoops)
{
    auto sandbox = makeSandbox(mmu, ctx, sfi::BackendKind::Hfi);
    const std::string tpl = faas::makeHtmlTemplate(0);
    sandbox->memory().writeBytes(64, tpl.data(), tpl.size());
    std::uint64_t small = 0, large = 0;
    sandbox->invoke([&](sfi::Sandbox &s) {
        small = faas::renderTemplate(s, 64, tpl.size(), 2, 5);
    });
    auto sandbox2 = makeSandbox(mmu, ctx, sfi::BackendKind::Hfi);
    sandbox2->memory().writeBytes(64, tpl.data(), tpl.size());
    sandbox2->invoke([&](sfi::Sandbox &s) {
        large = faas::renderTemplate(s, 64, tpl.size(), 20, 5);
    });
    EXPECT_NE(small, large); // more rows, different (longer) output
}

} // namespace
