/**
 * @file
 * Tests for the Intel MPK baseline: the 15-usable-key limit (§7's
 * scaling wall), page tagging through pkey_mprotect, PKRU-gated access
 * checks, and the wrpkru cost ERIM's transitions pay.
 */

#include <gtest/gtest.h>

#include "core/context.h"
#include "mpk/mpk.h"

namespace
{

using namespace hfi;
using namespace hfi::mpk;

class MpkTest : public ::testing::Test
{
  protected:
    vm::VirtualClock clock;
    vm::Mmu mmu{clock};
    MpkDomainManager mgr{mmu};
};

TEST_F(MpkTest, ExactlyFifteenAllocatableKeys)
{
    // Key 0 is the default; 15 remain — the §7 limit that makes MPK
    // "unsuitable for server-side applications".
    for (int i = 0; i < 15; ++i)
        EXPECT_TRUE(mgr.pkeyAlloc().has_value()) << i;
    EXPECT_FALSE(mgr.pkeyAlloc().has_value());
    EXPECT_EQ(mgr.allocatedKeys(), 16u);
}

TEST_F(MpkTest, FreeMakesKeyReusable)
{
    auto key = mgr.pkeyAlloc();
    ASSERT_TRUE(key);
    EXPECT_TRUE(mgr.pkeyFree(*key));
    EXPECT_FALSE(mgr.pkeyFree(*key)); // double free
    EXPECT_FALSE(mgr.pkeyFree(0));    // default key not freeable
    auto again = mgr.pkeyAlloc();
    ASSERT_TRUE(again);
    EXPECT_EQ(*again, *key);
}

TEST_F(MpkTest, TaggingAndKeyLookup)
{
    auto base = mmu.mmap(4 * vm::kPageSize, vm::PageProt::ReadWrite);
    ASSERT_TRUE(base);
    auto key = mgr.pkeyAlloc();
    ASSERT_TRUE(key);
    EXPECT_TRUE(mgr.pkeyMprotect(*base, 2 * vm::kPageSize, *key));
    EXPECT_EQ(mgr.keyAt(*base), *key);
    EXPECT_EQ(mgr.keyAt(*base + vm::kPageSize), *key);
    EXPECT_EQ(mgr.keyAt(*base + 2 * vm::kPageSize), 0u);
    EXPECT_FALSE(mgr.pkeyMprotect(*base, vm::kPageSize, 9)); // unallocated
}

TEST_F(MpkTest, PkruGatesAccess)
{
    auto base = mmu.mmap(vm::kPageSize, vm::PageProt::ReadWrite);
    ASSERT_TRUE(base);
    auto key = mgr.pkeyAlloc();
    ASSERT_TRUE(key);
    mgr.pkeyMprotect(*base, vm::kPageSize, *key);

    // Default PKRU: everything open.
    EXPECT_TRUE(mgr.checkAccess(*base, true));

    // Close everything but key 0: the crypto domain's data is sealed.
    mgr.switchToDomain(0);
    EXPECT_FALSE(mgr.checkAccess(*base, false));
    EXPECT_FALSE(mgr.checkAccess(*base, true));
    EXPECT_TRUE(mgr.checkAccess(*base + vm::kPageSize, true)); // key 0

    // Switch into the domain: access restored.
    mgr.switchToDomain(*key);
    EXPECT_TRUE(mgr.checkAccess(*base, true));
}

TEST_F(MpkTest, WriteDisableIsSeparate)
{
    auto base = mmu.mmap(vm::kPageSize, vm::PageProt::ReadWrite);
    ASSERT_TRUE(base);
    auto key = mgr.pkeyAlloc();
    ASSERT_TRUE(key);
    mgr.pkeyMprotect(*base, vm::kPageSize, *key);

    std::array<PkeyRights, kNumPkeys> rights{};
    rights[*key] = PkeyRights{false, true}; // read-only
    mgr.wrpkru(rights);
    EXPECT_TRUE(mgr.checkAccess(*base, false));
    EXPECT_FALSE(mgr.checkAccess(*base, true));
}

TEST_F(MpkTest, WrpkruIsUserLevelCheap)
{
    const auto t0 = clock.now();
    mgr.switchToDomain(0);
    const auto cost = clock.now() - t0;
    EXPECT_EQ(cost, mgr.params().wrpkruCycles);
    EXPECT_EQ(mgr.wrpkruCount(), 1u);
}

TEST_F(MpkTest, PkeyMprotectPaysKernelCosts)
{
    auto base = mmu.mmap(1 << 20, vm::PageProt::ReadWrite);
    ASSERT_TRUE(base);
    auto key = mgr.pkeyAlloc();
    ASSERT_TRUE(key);
    const double t0 = clock.nowNs();
    mgr.pkeyMprotect(*base, 1 << 20, *key);
    // Tagging goes through the kernel: syscall + per-page PTE rewrite +
    // shootdown — the page-based cost HFI's userspace regions avoid.
    EXPECT_GT(clock.nowNs() - t0, 100'000.0);
}

TEST_F(MpkTest, DomainSwitchVsHfiTransitionCostShape)
{
    // Fig 5's ordering: one MPK crossing (2 wrpkru) is slightly cheaper
    // than one HFI native-sandbox crossing (serialized enter + exit +
    // metadata load), but both are within a small factor.
    core::HfiContext ctx(clock);
    const auto t0 = clock.now();
    mgr.switchToDomain(1);
    mgr.switchToDomain(0);
    const auto mpk_cost = clock.now() - t0;

    const auto t1 = clock.now();
    core::ExplicitDataRegion heap;
    heap.baseAddress = 0;
    heap.bound = 1 << 16;
    heap.permRead = true;
    heap.isLargeRegion = true;
    ctx.setRegion(core::kFirstExplicitRegion, heap);
    core::SandboxConfig cfg;
    cfg.isSerialized = true;
    cfg.isHybrid = false;
    ctx.enter(cfg);
    ctx.exit();
    const auto hfi_cost = clock.now() - t1;

    EXPECT_GT(hfi_cost, mpk_cost);
    EXPECT_LT(hfi_cost, mpk_cost * 4);
}

} // namespace
