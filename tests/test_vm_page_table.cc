/**
 * @file
 * Tests for the VMA-style page table: mapping, protection, splitting,
 * residency, and the madvise discard path that §6.3.1's teardown
 * experiments rely on.
 */

#include <gtest/gtest.h>

#include "vm/page_table.h"

namespace
{

using namespace hfi::vm;

TEST(PageProt, BitHelpers)
{
    EXPECT_TRUE(protReadable(PageProt::Read));
    EXPECT_TRUE(protReadable(PageProt::ReadWrite));
    EXPECT_FALSE(protReadable(PageProt::None));
    EXPECT_TRUE(protWritable(PageProt::ReadWrite));
    EXPECT_FALSE(protWritable(PageProt::Read));
    EXPECT_TRUE(protExecutable(PageProt::ReadExec));
    EXPECT_FALSE(protExecutable(PageProt::ReadWrite));
}

TEST(PageTable, UnmappedByDefault)
{
    PageTable table;
    EXPECT_FALSE(table.isMapped(0x1000));
    EXPECT_EQ(table.protectionAt(0x1000), PageProt::None);
    EXPECT_EQ(table.vmaCount(), 0u);
}

TEST(PageTable, MapAndQuery)
{
    PageTable table;
    table.map(0x10000, 0x4000, PageProt::ReadWrite);
    EXPECT_TRUE(table.isMapped(0x10000));
    EXPECT_TRUE(table.isMapped(0x13fff));
    EXPECT_FALSE(table.isMapped(0x14000));
    EXPECT_EQ(table.protectionAt(0x12000), PageProt::ReadWrite);
    EXPECT_EQ(table.vmaCount(), 1u);
}

TEST(PageTable, ProtNoneMappingIsStillMapped)
{
    // Guard regions are mmap(PROT_NONE): mapped (reserved) but with no
    // access — protectionAt reports None yet isMapped is true.
    PageTable table;
    table.map(0x10000, 0x1000, PageProt::None);
    EXPECT_TRUE(table.isMapped(0x10000));
    EXPECT_EQ(table.protectionAt(0x10000), PageProt::None);
}

TEST(PageTable, ProtectSplitsVma)
{
    PageTable table;
    table.map(0x10000, 0x10000, PageProt::None);
    table.protect(0x14000, 0x4000, PageProt::ReadWrite);
    EXPECT_EQ(table.vmaCount(), 3u);
    EXPECT_EQ(table.protectionAt(0x13fff), PageProt::None);
    EXPECT_EQ(table.protectionAt(0x14000), PageProt::ReadWrite);
    EXPECT_EQ(table.protectionAt(0x17fff), PageProt::ReadWrite);
    EXPECT_EQ(table.protectionAt(0x18000), PageProt::None);
}

TEST(PageTable, ProtectAtFrontAndBack)
{
    PageTable table;
    table.map(0x10000, 0x3000, PageProt::None);
    table.protect(0x10000, 0x1000, PageProt::Read);
    table.protect(0x12000, 0x1000, PageProt::ReadWrite);
    EXPECT_EQ(table.protectionAt(0x10000), PageProt::Read);
    EXPECT_EQ(table.protectionAt(0x11000), PageProt::None);
    EXPECT_EQ(table.protectionAt(0x12000), PageProt::ReadWrite);
}

TEST(PageTable, UnmapRemovesRangeAndResidency)
{
    PageTable table;
    table.map(0x10000, 0x4000, PageProt::ReadWrite);
    table.touch(0x11000);
    EXPECT_TRUE(table.isResident(0x11000));
    table.unmap(0x10000, 0x4000);
    EXPECT_FALSE(table.isMapped(0x11000));
    EXPECT_FALSE(table.isResident(0x11000));
    EXPECT_EQ(table.vmaCount(), 0u);
}

TEST(PageTable, UnmapMiddleSplits)
{
    PageTable table;
    table.map(0x10000, 0x6000, PageProt::ReadWrite);
    table.unmap(0x12000, 0x2000);
    EXPECT_TRUE(table.isMapped(0x11fff));
    EXPECT_FALSE(table.isMapped(0x12000));
    EXPECT_FALSE(table.isMapped(0x13fff));
    EXPECT_TRUE(table.isMapped(0x14000));
    EXPECT_EQ(table.vmaCount(), 2u);
}

TEST(PageTable, TouchTracksResidencyPerPage)
{
    PageTable table;
    table.map(0x10000, 0x4000, PageProt::ReadWrite);
    table.touch(0x10000);
    table.touch(0x10800); // same page
    table.touch(0x11000);
    EXPECT_EQ(table.residentPages(), 2u);
    EXPECT_TRUE(table.isResident(0x10fff));
    EXPECT_FALSE(table.isResident(0x12000));
}

TEST(PageTable, DiscardDropsResidencyNotMapping)
{
    PageTable table;
    table.map(0x10000, 0x8000, PageProt::ReadWrite);
    for (VAddr a = 0x10000; a < 0x14000; a += kPageSize)
        table.touch(a);
    EXPECT_EQ(table.residentPages(), 4u);

    const std::uint64_t discarded = table.discard(0x10000, 0x8000);
    EXPECT_EQ(discarded, 4u);
    EXPECT_EQ(table.residentPages(), 0u);
    EXPECT_TRUE(table.isMapped(0x10000)); // madvise keeps the mapping
    EXPECT_EQ(table.protectionAt(0x10000), PageProt::ReadWrite);
}

TEST(PageTable, DiscardCountsOnlyResidentInRange)
{
    PageTable table;
    table.map(0x10000, 0x8000, PageProt::ReadWrite);
    table.touch(0x10000);
    table.touch(0x16000);
    EXPECT_EQ(table.discard(0x10000, 0x2000), 1u);
    EXPECT_TRUE(table.isResident(0x16000));
}

TEST(PageTable, RemapOverwritesProtection)
{
    PageTable table;
    table.map(0x10000, 0x4000, PageProt::None);
    table.map(0x11000, 0x1000, PageProt::ReadExec);
    EXPECT_EQ(table.protectionAt(0x11000), PageProt::ReadExec);
    EXPECT_EQ(table.protectionAt(0x10000), PageProt::None);
    EXPECT_EQ(table.protectionAt(0x12000), PageProt::None);
}

} // namespace
