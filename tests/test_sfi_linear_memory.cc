/**
 * @file
 * Tests for the Wasm-style linear memory: 64 KiB-page growth semantics
 * and typed access.
 */

#include <gtest/gtest.h>

#include "sfi/linear_memory.h"

namespace
{

using namespace hfi::sfi;

TEST(LinearMemory, StartsAtInitialPages)
{
    LinearMemory mem(2, 10);
    EXPECT_EQ(mem.pages(), 2u);
    EXPECT_EQ(mem.size(), 2 * kWasmPageSize);
    EXPECT_EQ(mem.maxPages(), 10u);
}

TEST(LinearMemory, GrowReturnsPreviousSize)
{
    LinearMemory mem(1, 10);
    EXPECT_EQ(mem.grow(3), 1);
    EXPECT_EQ(mem.pages(), 4u);
    EXPECT_EQ(mem.grow(6), 4);
    EXPECT_EQ(mem.pages(), 10u);
}

TEST(LinearMemory, GrowBeyondMaxFails)
{
    LinearMemory mem(1, 4);
    EXPECT_EQ(mem.grow(4), -1);
    EXPECT_EQ(mem.pages(), 1u);
    EXPECT_EQ(mem.grow(3), 1);
    EXPECT_EQ(mem.grow(1), -1);
}

TEST(LinearMemory, NewPagesAreZero)
{
    LinearMemory mem(1, 4);
    mem.grow(1);
    for (std::uint64_t off = kWasmPageSize; off < 2 * kWasmPageSize;
         off += 4096)
        EXPECT_EQ(mem.load<std::uint64_t>(off), 0u);
}

TEST(LinearMemory, TypedRoundTrip)
{
    LinearMemory mem(1, 4);
    mem.store<std::uint8_t>(10, 0xab);
    mem.store<std::uint32_t>(20, 0xdeadbeef);
    mem.store<std::uint64_t>(32, 0x0123456789abcdefULL);
    EXPECT_EQ(mem.load<std::uint8_t>(10), 0xab);
    EXPECT_EQ(mem.load<std::uint32_t>(20), 0xdeadbeefu);
    EXPECT_EQ(mem.load<std::uint64_t>(32), 0x0123456789abcdefULL);
}

TEST(LinearMemory, UnalignedAccessWorks)
{
    LinearMemory mem(1, 4);
    mem.store<std::uint64_t>(3, 0x1122334455667788ULL);
    EXPECT_EQ(mem.load<std::uint64_t>(3), 0x1122334455667788ULL);
    EXPECT_EQ(mem.load<std::uint8_t>(3), 0x88);
}

TEST(LinearMemory, InBoundsEdgeCases)
{
    LinearMemory mem(1, 4);
    EXPECT_TRUE(mem.inBounds(kWasmPageSize - 8, 8));
    EXPECT_FALSE(mem.inBounds(kWasmPageSize - 7, 8));
    EXPECT_TRUE(mem.inBounds(0, kWasmPageSize));
    EXPECT_FALSE(mem.inBounds(UINT64_MAX, 1)); // overflow-safe
    EXPECT_TRUE(mem.inBounds(kWasmPageSize, 0));
}

TEST(LinearMemory, BulkCopies)
{
    LinearMemory mem(1, 4);
    const char text[] = "hello hfi";
    mem.writeBytes(100, text, sizeof(text));
    char back[sizeof(text)] = {};
    mem.readBytes(100, back, sizeof(text));
    EXPECT_STREQ(back, text);
}

} // namespace
