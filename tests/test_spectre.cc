/**
 * @file
 * The §5.3 security evaluation as tests: the Spectre-PHT (SafeSide) and
 * Spectre-BTB (TransientFail, concrete-control-flow per footnote 7)
 * attacks succeed on the unprotected pipeline and are defeated by HFI's
 * regions; plus the microarchitectural invariants behind the defense.
 */

#include <gtest/gtest.h>

#include "spectre/attacker.h"

namespace
{

using namespace hfi;
using namespace hfi::spectre;

TEST(SpectrePht, LeaksWithoutHfi)
{
    const auto result = runAttack(Variant::Pht, /*hfi*/ false, 'I');
    ASSERT_TRUE(result.pipeline.halted);
    EXPECT_TRUE(result.secretLeaked);
    EXPECT_EQ(result.hottestGuess, 'I');
    EXPECT_LT(result.probeLatency['I'], result.threshold);
    // Every other probe slot stayed cold (modulo the training value).
    unsigned hot = 0;
    for (unsigned g = 0; g < 256; ++g)
        hot += result.probeLatency[g] < result.threshold;
    EXPECT_LE(hot, 2u);
}

TEST(SpectrePht, BlockedWithHfi)
{
    const auto result = runAttack(Variant::Pht, /*hfi*/ true, 'I');
    ASSERT_TRUE(result.pipeline.halted); // no architectural fault either
    EXPECT_FALSE(result.secretLeaked);
    EXPECT_GE(result.probeLatency['I'], result.threshold);
    // The wrong-path fault was suppressed silently (no committed trap).
    EXPECT_FALSE(result.pipeline.faulted);
    EXPECT_GT(result.stats.hfiFaultsSuppressed, 0u);
}

TEST(SpectreBtb, LeaksWithoutHfi)
{
    const auto result = runAttack(Variant::Btb, false, 'S');
    ASSERT_TRUE(result.pipeline.halted);
    EXPECT_TRUE(result.secretLeaked);
    EXPECT_EQ(result.hottestGuess, 'S');
}

TEST(SpectreBtb, BlockedWithHfi)
{
    const auto result = runAttack(Variant::Btb, true, 'S');
    ASSERT_TRUE(result.pipeline.halted);
    EXPECT_FALSE(result.secretLeaked);
    EXPECT_FALSE(result.pipeline.faulted);
}

/** Sweep several secret bytes through both variants: the attack always
 *  recovers the byte without HFI and never with it. */
class SecretSweep
    : public ::testing::TestWithParam<std::tuple<Variant, std::uint8_t>>
{
};

TEST_P(SecretSweep, RecoveredIffUnprotected)
{
    const auto [variant, secret] = GetParam();
    const auto open_run = runAttack(variant, false, secret);
    EXPECT_TRUE(open_run.secretLeaked);
    EXPECT_EQ(open_run.hottestGuess, secret);

    const auto protected_run = runAttack(variant, true, secret);
    EXPECT_FALSE(protected_run.secretLeaked);
}

INSTANTIATE_TEST_SUITE_P(
    Bytes, SecretSweep,
    ::testing::Combine(::testing::Values(Variant::Pht, Variant::Btb),
                       ::testing::Values(std::uint8_t{1}, std::uint8_t{42},
                                         std::uint8_t{'H'},
                                         std::uint8_t{200},
                                         std::uint8_t{255})),
    [](const auto &info) {
        return std::string(std::get<0>(info.param) == Variant::Pht ? "Pht"
                                                                   : "Btb") +
               "_" + std::to_string(std::get<1>(info.param));
    });

TEST(SpectreInvariants, WithoutHfiTheVictimStillBehavesCorrectly)
{
    // The out-of-bounds call architecturally returns without touching
    // the probe: only the *speculative* path leaks. We verify the
    // victim's architectural effects by checking that no fault commits
    // and the program halts normally in every configuration.
    for (bool hfi_on : {false, true}) {
        const auto result = runAttack(Variant::Pht, hfi_on, 99);
        EXPECT_TRUE(result.pipeline.halted);
        EXPECT_FALSE(result.pipeline.faulted);
    }
}

TEST(SpectreInvariants, TrainingRoundsMatter)
{
    // With zero training the bounds check predicts "taken" from its
    // weakly-not-taken... actually cold counters start not-taken, so
    // even an untrained attack may leak; what must hold is that more
    // training never *hurts* the unprotected attack and never *helps*
    // against HFI.
    const auto trained = runAttack(Variant::Pht, false, 77, 12);
    EXPECT_TRUE(trained.secretLeaked);
    const auto hfi_trained = runAttack(Variant::Pht, true, 77, 12);
    EXPECT_FALSE(hfi_trained.secretLeaked);
}

TEST(SpectreInvariants, ThresholdSeparatesHitFromMiss)
{
    const auto result = runAttack(Variant::Pht, false, 'Z');
    unsigned min_lat = UINT32_MAX, max_lat = 0;
    for (unsigned g = 0; g < 256; ++g) {
        min_lat = std::min(min_lat, result.probeLatency[g]);
        max_lat = std::max(max_lat, result.probeLatency[g]);
    }
    EXPECT_LT(min_lat, result.threshold);
    EXPECT_GT(max_lat, result.threshold);
}

TEST(SpectreInvariants, ManySquashedInstructionsInBothModes)
{
    // Speculation happens in both configurations — HFI does not work by
    // disabling speculation (that would be the costly alternative the
    // paper argues against) but by checking it.
    const auto open_run = runAttack(Variant::Pht, false, 7);
    const auto protected_run = runAttack(Variant::Pht, true, 7);
    EXPECT_GT(open_run.stats.squashed, 10u);
    EXPECT_GT(protected_run.stats.squashed, 10u);
    EXPECT_GT(protected_run.stats.hfiDataChecks, 50u);
}

TEST(ExitBypass, UnserializedExitLeaks)
{
    // §3.4: "malicious code cannot speculatively disable HFI, and then
    // speculatively execute a code path that would never happen under
    // non-speculative execution" — unless the exit is unprotected.
    const auto result = runExitBypassAttack(ExitPosture::Unserialized, 'X');
    ASSERT_TRUE(result.pipeline.halted);
    EXPECT_TRUE(result.secretLeaked);
    EXPECT_EQ(result.hottestGuess, 'X');
}

TEST(ExitBypass, SerializedExitBlocks)
{
    const auto result = runExitBypassAttack(ExitPosture::Serialized, 'X');
    ASSERT_TRUE(result.pipeline.halted);
    EXPECT_FALSE(result.secretLeaked);
}

TEST(ExitBypass, SwitchOnExitBlocksWithoutSerialization)
{
    // §4.5: the speculative hfi_exit lands in the runtime's register
    // bank, whose regions also exclude the secret — the speculative
    // access faults (suppressed) instead of filling the cache.
    const auto result =
        runExitBypassAttack(ExitPosture::SwitchOnExit, 'X');
    ASSERT_TRUE(result.pipeline.halted);
    EXPECT_FALSE(result.secretLeaked);
    EXPECT_GT(result.stats.hfiFaultsSuppressed, 0u);
}

TEST(ExitBypass, SwitchOnExitIsCheaperThanSerialized)
{
    const auto soe = runExitBypassAttack(ExitPosture::SwitchOnExit, 'X');
    const auto serialized =
        runExitBypassAttack(ExitPosture::Serialized, 'X');
    // Same program shape; the serialized variant drains the pipeline on
    // every training-round exit.
    EXPECT_LT(soe.pipeline.cycles, serialized.pipeline.cycles);
}

class ExitBypassSecretSweep
    : public ::testing::TestWithParam<std::uint8_t>
{
};

TEST_P(ExitBypassSecretSweep, LeaksOnlyUnserialized)
{
    const std::uint8_t secret = GetParam();
    EXPECT_TRUE(
        runExitBypassAttack(ExitPosture::Unserialized, secret).secretLeaked);
    EXPECT_FALSE(
        runExitBypassAttack(ExitPosture::Serialized, secret).secretLeaked);
    EXPECT_FALSE(runExitBypassAttack(ExitPosture::SwitchOnExit, secret)
                     .secretLeaked);
}

INSTANTIATE_TEST_SUITE_P(Bytes, ExitBypassSecretSweep,
                         ::testing::Values(std::uint8_t{3},
                                           std::uint8_t{'q'},
                                           std::uint8_t{250}));

} // namespace
